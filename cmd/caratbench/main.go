// Command caratbench regenerates the paper's tables and figures from the
// simulated system (see DESIGN.md's experiment index).
//
// Usage:
//
//	caratbench -exp all                 # every experiment, test scale
//	caratbench -exp fig2 -scale small   # one figure at paper scale
//	caratbench -exp table3 -only canneal,mcf_s
//	caratbench -exp table3 -json        # machine-readable document on stdout
//	caratbench -exp table3 -trace t.json -metrics m.json
//	caratbench -exp defrag -policy p.json
//	caratbench -exp all -http 127.0.0.1:0 -http-linger 30s
//
// -json replaces the text tables with one versioned JSON document
// (schema carat.bench.result; see DESIGN.md "Observability"). -trace
// writes a Chrome trace_event file viewable in Perfetto; -metrics writes
// the final metrics-registry snapshot. -policy writes the decision log of
// the last policy-daemon experiment (defrag, tiering, policy) as a
// carat.policy document.
//
// -http serves live telemetry while the experiments run: /metrics
// (Prometheus text), /profile (cycle-sampling profiler), /trace?sec=N
// (windowed trace capture), /healthz, and /readyz (503 until the
// experiments finish). The bound address is printed to stderr; with
// -http-linger the server stays up that long after the run so scrapers
// can collect final state.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"carat/internal/bench"
	"carat/internal/fault"
	"carat/internal/mmpolicy"
	"carat/internal/obs"
	"carat/internal/obs/telemetry"
	"carat/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or \"all\"")
	scale := flag.String("scale", "test", "problem scale: "+strings.Join(workload.ScaleNames, ", "))
	only := flag.String("only", "", "comma-separated benchmark subset (default: all 22)")
	list := flag.Bool("list", false, "list experiments and benchmarks, then exit")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document instead of text tables")
	traceFile := flag.String("trace", "", "write a Chrome trace_event file (open in Perfetto)")
	metricsFile := flag.String("metrics", "", "write the final metrics snapshot as JSON")
	policyFile := flag.String("policy", "", "write the policy daemon's decision log as JSON (carat.policy)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker-pool width for per-workload experiment legs (1 = sequential)")
	faults := flag.String("faults", "",
		"inject faults into policy experiments: seed:rate sets every injection point to rate (e.g. 42:0.01)")
	pauseBudget := flag.Uint64("pausebudget", 0,
		"max world-stop pause in cycles for policy experiments: runs incremental moves with the largest batch that fits (0 = legacy full stops)")
	closure := flag.Bool("closure", false,
		"run every VM on the closure compilation tier (fastest engine; modeled results are byte-identical)")
	httpAddr := flag.String("http", "",
		"serve live telemetry (/metrics, /profile, /trace, /healthz, /readyz) on this address (e.g. 127.0.0.1:8080, :0 picks a port)")
	httpLinger := flag.Duration("http-linger", 0,
		"keep the -http server up this long after the experiments finish")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-11s %s\n", e.ID, e.Title)
		}
		fmt.Println("benchmarks:")
		for _, w := range workload.All() {
			fmt.Printf("  %-14s [%s] %s\n", w.Name, w.Suite, w.Desc)
		}
		return
	}

	sc, err := workload.ParseScale(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caratbench:", err)
		os.Exit(2)
	}

	o := bench.DefaultOptions(sc)
	o.Workers = *workers
	o.PauseBudget = *pauseBudget
	o.Closure = *closure
	if *only != "" {
		o.Only = strings.Split(*only, ",")
	}
	if *jsonOut || *metricsFile != "" || *httpAddr != "" {
		o.Obs = obs.NewRegistry()
	}
	if *httpAddr != "" {
		o.Sampler = obs.NewSampler(0)
	}

	var policyDoc *mmpolicy.Document
	if *policyFile != "" {
		o.PolicySink = func(doc *mmpolicy.Document) { policyDoc = doc }
	}

	if *faults != "" {
		seed, rate, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caratbench:", err)
			os.Exit(2)
		}
		o.Fault = fault.New(seed, o.Obs)
		for _, p := range fault.Points {
			o.Fault.SetRate(p, rate)
		}
	}

	var traceClose func() error
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caratbench:", err)
			os.Exit(1)
		}
		o.Trace = obs.NewTracer(f, nil)
		o.Fault.SetTracer(o.Trace) // nil-safe when -faults is unset
		traceClose = func() error {
			if err := o.Trace.Close(); err != nil {
				return err
			}
			return f.Close()
		}
	}

	// Bind and print the address before any experiment starts, so the
	// bind line never interleaves with result output and harnesses can
	// scrape the port immediately (same contract as caratvm and caratd).
	var tele *telemetry.Server
	if *httpAddr != "" {
		tele = &telemetry.Server{Registry: o.Obs, Sampler: o.Sampler, Tracer: o.Trace}
		addr, err := tele.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caratbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "caratbench: telemetry on http://%s\n", addr)
	}

	if *jsonOut {
		err = bench.RunJSON(*exp, o, os.Stdout)
	} else {
		err = bench.RunByID(*exp, o, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "caratbench:", err)
		os.Exit(1)
	}
	if tele != nil {
		// Experiments are done: final metrics and the full profile are now
		// scrapeable, which /readyz signals to automation.
		tele.SetReady(true)
	}

	if traceClose != nil {
		if err := traceClose(); err != nil {
			fmt.Fprintln(os.Stderr, "caratbench: trace:", err)
			os.Exit(1)
		}
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caratbench:", err)
			os.Exit(1)
		}
		werr := o.Obs.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "caratbench: metrics:", werr)
			os.Exit(1)
		}
	}
	if *policyFile != "" {
		if policyDoc == nil {
			fmt.Fprintln(os.Stderr, "caratbench: -policy set but no policy experiment ran (use -exp defrag, tiering, policy, or all)")
			os.Exit(1)
		}
		f, err := os.Create(*policyFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caratbench:", err)
			os.Exit(1)
		}
		werr := policyDoc.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "caratbench: policy:", werr)
			os.Exit(1)
		}
	}
	if tele != nil {
		time.Sleep(*httpLinger)
		tele.Close()
	}
}
