// Command caratbench regenerates the paper's tables and figures from the
// simulated system (see DESIGN.md's experiment index).
//
// Usage:
//
//	caratbench -exp all                 # every experiment, test scale
//	caratbench -exp fig2 -scale small   # one figure at paper scale
//	caratbench -exp table3 -only canneal,mcf_s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"carat/internal/bench"
	"carat/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig2 table1 fig3a fig3b fig4 table2 fig5 fig6 fig7 fig9 table3 all")
	scale := flag.String("scale", "test", "problem scale: test, small, ref")
	only := flag.String("only", "", "comma-separated benchmark subset (default: all 22)")
	list := flag.Bool("list", false, "list experiments and benchmarks, then exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("benchmarks:")
		for _, w := range workload.All() {
			fmt.Printf("  %-14s [%s] %s\n", w.Name, w.Suite, w.Desc)
		}
		return
	}

	var sc workload.Scale
	switch *scale {
	case "test":
		sc = workload.ScaleTest
	case "small":
		sc = workload.ScaleSmall
	case "ref":
		sc = workload.ScaleRef
	default:
		fmt.Fprintf(os.Stderr, "caratbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	o := bench.DefaultOptions(sc)
	if *only != "" {
		o.Only = strings.Split(*only, ",")
	}
	if err := bench.RunByID(*exp, o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "caratbench:", err)
		os.Exit(1)
	}
}
