// Command caratvm compiles and executes a textual IR module on the
// simulated CARAT machine (or under the traditional paging model for
// comparison), reporting the result and execution statistics.
//
// Usage:
//
//	caratvm [-level carat] [-mode carat|traditional] [-mech range|mpx|iftree|bsearch] file.cir
//	caratvm -json file.cir              # machine-readable run report
//	caratvm -trace t.json file.cir      # Chrome trace_event file (Perfetto)
//	caratvm -metrics m.json file.cir    # metrics-registry snapshot
//	caratvm -http :0 -http-linger 30s file.cir   # live telemetry server
//
// -http serves /metrics (Prometheus text), /profile (cycle-sampling
// profiler), /trace?sec=N, /healthz, and /readyz while the program runs;
// -http-linger keeps the server up after the run so scrapers can collect
// final state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"carat/internal/cc"

	"carat/internal/core"
	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/obs/telemetry"
	"carat/internal/passes"
	"carat/internal/vm"
)

// Schema of the -json run report. Bump the version on any incompatible
// field change (see DESIGN.md "Observability").
const (
	runSchema  = "carat.vm.run"
	runVersion = 1
)

// runReport is the -json document: the run's outcome plus the full
// cycle-attribution profile and metrics snapshot.
type runReport struct {
	Schema  string            `json:"schema"`
	Version int               `json:"version"`
	Module  string            `json:"module"`
	Exit    int64             `json:"exit"`
	Instrs  uint64            `json:"instrs"`
	Cycles  uint64            `json:"cycles"`
	CPI     float64           `json:"cpi"`
	Profile *obs.CycleProfile `json:"profile"`
	Metrics obs.Snapshot      `json:"metrics"`
	Output  []int64           `json:"output,omitempty"`
}

func main() {
	level := flag.String("level", "carat", "pipeline level: none, guards, guards-opt, carat, tracking-only")
	mode := flag.String("mode", "carat", "address translation model: carat or traditional")
	mech := flag.String("mech", "range", "guard mechanism: range, mpx, iftree, bsearch, linear")
	closure := flag.Bool("closure", false,
		"execute on the closure compilation tier (fastest engine; modeled results are byte-identical)")
	heap := flag.Uint64("heap", 1<<26, "heap bytes")
	stack := flag.Uint64("stack", 1<<20, "stack bytes per thread")
	mem := flag.Uint64("mem", 1<<28, "physical memory bytes")
	jsonOut := flag.Bool("json", false, "emit a machine-readable run report instead of text")
	traceFile := flag.String("trace", "", "write a Chrome trace_event file (open in Perfetto)")
	metricsFile := flag.String("metrics", "", "write the final metrics snapshot as JSON")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"functions compiled concurrently (1 = sequential; output is identical)")
	httpAddr := flag.String("http", "",
		"serve live telemetry (/metrics, /profile, /trace, /healthz, /readyz) on this address (e.g. 127.0.0.1:8080, :0 picks a port)")
	httpLinger := flag.Duration("http-linger", 0,
		"keep the -http server up this long after the run finishes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: caratvm [flags] file.cir")
		flag.Usage()
		os.Exit(2)
	}

	cfg := vm.DefaultConfig()
	cfg.HeapBytes, cfg.StackBytes, cfg.MemBytes = *heap, *stack, *mem
	cfg.Closure = *closure
	switch *mode {
	case "carat":
		cfg.Mode = vm.ModeCARAT
	case "traditional":
		cfg.Mode = vm.ModeTraditional
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	switch *mech {
	case "range":
		cfg.GuardMech = guard.MechRange
	case "mpx":
		cfg.GuardMech = guard.MechMPX
	case "iftree":
		cfg.GuardMech = guard.MechIfTree
	case "bsearch":
		cfg.GuardMech = guard.MechBinarySearch
	case "linear":
		cfg.GuardMech = guard.MechLinear
	default:
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}

	lvl := map[string]passes.Level{
		"none": passes.LevelNone, "guards": passes.LevelGuardsOnly,
		"guards-opt": passes.LevelGuardsOpt, "carat": passes.LevelTracking,
		"tracking-only": passes.LevelTrackingOnly,
	}
	l, ok := lvl[*level]
	if !ok {
		fatal(fmt.Errorf("unknown level %q", *level))
	}

	var traceF *os.File
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fatal(err)
		}
		traceF = f
		cfg.Trace = obs.NewTracer(traceF, nil)
	}

	// One registry spans compile and run, so carat.passes.* metrics land
	// in the same -metrics / -json snapshot as the VM's counters.
	cfg.Obs = obs.NewRegistry()

	// The telemetry server comes up — and the bound address is printed —
	// before the module is even loaded, so scrapers can attach without
	// racing the run and the bind line never interleaves with results
	// (same contract as caratd's "listening on" line).
	var tele *telemetry.Server
	if *httpAddr != "" {
		cfg.Sampler = obs.NewSampler(0)
		tele = &telemetry.Server{Registry: cfg.Obs, Sampler: cfg.Sampler, Tracer: cfg.Trace}
		addr, err := tele.Start(*httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "caratvm: telemetry on http://%s\n", addr)
		defer func() {
			time.Sleep(*httpLinger)
			tele.Close()
		}()
	}

	m, err := loadModule(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	c, err := core.NewCompiler(l)
	if err != nil {
		fatal(err)
	}
	c.Workers = *workers
	c.Obs = cfg.Obs
	res, err := c.Compile(m)
	if err != nil {
		fatal(err)
	}
	v, ret, err := core.NewSystem(c, cfg).Run(res)
	if err != nil {
		fatal(err)
	}
	if tele != nil {
		// The run is over: final metrics and the full profile are now
		// scrapeable, which /readyz signals to automation.
		tele.SetReady(true)
	}

	if cfg.Trace != nil {
		if err := cfg.Trace.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := traceF.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err != nil {
			fatal(err)
		}
		werr := v.Obs().WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(fmt.Errorf("metrics: %w", werr))
		}
	}

	if *jsonOut {
		rep := runReport{
			Schema:  runSchema,
			Version: runVersion,
			Module:  m.Name,
			Exit:    ret,
			Instrs:  v.Instrs,
			Cycles:  v.Cycles,
			CPI:     float64(v.Cycles) / float64(v.Instrs),
			Profile: v.Prof,
			Metrics: v.Obs().Snapshot(),
			Output:  v.Output,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		return
	}

	for _, out := range v.Output {
		fmt.Println(out)
	}
	fmt.Fprintf(os.Stderr, "exit: %d\n", ret)
	fmt.Fprintf(os.Stderr, "instrs: %d, cycles: %d (CPI %.2f)\n",
		v.Instrs, v.Cycles, float64(v.Cycles)/float64(v.Instrs))
	fmt.Fprintf(os.Stderr, "guards: %d checks\n", v.GuardChecks)
	rs := v.Runtime().Stats
	fmt.Fprintf(os.Stderr, "tracking: %d allocs, %d frees, %d escape events\n",
		rs.Allocs.Get(), rs.Frees.Get(), rs.EscapeEvents.Get())
	if h := v.Hierarchy(); h != nil {
		fmt.Fprintf(os.Stderr, "tlb: %.3f DTLB MPKI, %d walks (avg %.1f cyc)\n",
			h.DTLBMPKI(v.Instrs), h.Stats.Walks.Get(), h.AvgWalkCycles())
	}
}

// loadModule reads a program: .cc files are CARAT-C source, anything else
// is textual IR.
func loadModule(path string) (*ir.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".cc") {
		return cc.Compile(strings.TrimSuffix(filepath.Base(path), ".cc"), string(src))
	}
	return ir.Parse(string(src))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caratvm:", err)
	os.Exit(1)
}
