// Command caratc is the CARAT compiler driver: it parses a textual IR
// module, runs the configured pass pipeline (guard injection and
// optimization, allocation/escape tracking), signs the result, and prints
// the transformed module and/or compilation statistics.
//
// Usage:
//
//	caratc [-level none|guards|guards-opt|carat|tracking-only] [-workers N] [-emit] [-stats] [-metrics m.json] file.cir | file.cc
//
// -metrics writes the compile pipeline's metrics-registry snapshot
// (schema carat.metrics: carat.passes.* counters and per-pass cycle
// histograms) as JSON, the same registry the caratvm and caratbench
// telemetry endpoints expose live.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"carat/internal/cc"

	"carat/internal/core"
	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/signing"
)

func main() {
	level := flag.String("level", "carat", "pipeline level: none, guards, guards-opt, carat, tracking-only")
	emit := flag.Bool("emit", false, "print the transformed module")
	stats := flag.Bool("stats", true, "print compilation statistics")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"functions compiled concurrently (1 = sequential; output is identical)")
	metricsFile := flag.String("metrics", "", "write the compile-pipeline metrics snapshot as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: caratc [flags] file.cir")
		flag.Usage()
		os.Exit(2)
	}

	lvl, err := parseLevel(*level)
	if err != nil {
		fatal(err)
	}
	m, err := loadModule(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	c, err := core.NewCompiler(lvl)
	if err != nil {
		fatal(err)
	}
	c.Workers = *workers
	reg := obs.NewRegistry()
	c.Obs = reg
	res, err := c.Compile(m)
	if err != nil {
		fatal(err)
	}

	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err != nil {
			fatal(err)
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fatal(fmt.Errorf("metrics: %w", werr))
		}
	}

	if *emit {
		fmt.Print(res.Binary.Module.String())
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "guards: injected %d (load %d, store %d, call %d)\n",
			s.GuardsInjected, s.LoadGuards, s.StoreGuards, s.CallGuards)
		fmt.Fprintf(os.Stderr, "  hoisted %d, merged %d (+%d range guards), removed %d, remaining %d\n",
			s.Hoisted, s.Merged, s.RangeNew, s.Removed, s.GuardsRemaining)
		fmt.Fprintf(os.Stderr, "tracking: %d alloc, %d free, %d escape callbacks\n",
			s.AllocCallbacks, s.FreeCallbacks, s.EscapeCallbacks)
		fmt.Fprintf(os.Stderr, "general opts: folded %d, dce %d, cse %d, licm %d\n",
			s.Folded, s.DCEd, s.CSEd, s.LICMMoved)
		fmt.Fprintf(os.Stderr, "signed by %s (key %s)\n",
			res.Binary.Toolchain, signing.Fingerprint(c.Toolchain.Public()))
	}
}

func parseLevel(s string) (passes.Level, error) {
	switch s {
	case "none":
		return passes.LevelNone, nil
	case "guards":
		return passes.LevelGuardsOnly, nil
	case "guards-opt":
		return passes.LevelGuardsOpt, nil
	case "carat":
		return passes.LevelTracking, nil
	case "tracking-only":
		return passes.LevelTrackingOnly, nil
	}
	return 0, fmt.Errorf("caratc: unknown level %q", s)
}

// loadModule reads a program: .cc files are CARAT-C source, anything else
// is textual IR.
func loadModule(path string) (*ir.Module, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".cc") {
		return cc.Compile(strings.TrimSuffix(filepath.Base(path), ".cc"), string(src))
	}
	return ir.Parse(string(src))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "caratc:", err)
	os.Exit(1)
}
