// Command caratd is the long-running multi-tenant CARAT execution server:
// tenants POST CARAT-C or .cir source (or precompiled module refs) and the
// daemon compiles through the pass pipeline (LRU module cache, bounded
// compile pool) and executes each request as a kernel.Process over ONE
// shared physical memory, with the mmpolicy daemon running as a true
// background service on the same machine. Telemetry (/metrics, /profile,
// /healthz, /readyz) is mounted on the same listener.
//
//	caratd -config configs/caratd.sample.json
//	caratd -addr localhost:9321
//
// SIGTERM/SIGINT triggers a graceful drain: admission stops (new work gets
// 503, /readyz flips to 503), in-flight runs finish, the ballast service
// halts after a final integrity verification, and caratd exits nonzero if
// any invariant violation was observed during its lifetime.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"carat/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "caratd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		configPath   = flag.String("config", "", "JSON config file (server.Config); flags override")
		addr         = flag.String("addr", "", "listen address (overrides config; default localhost:0)")
		memBytes     = flag.Uint64("mem", 0, "shared physical memory bytes (overrides config)")
		maxInflight  = flag.Int("max-inflight", 0, "machine-wide concurrent request cap (overrides config)")
		noBallast    = flag.Bool("no-ballast", false, "disable the background mmpolicy ballast service")
		pauseBudget  = flag.Uint64("pausebudget", 0, "max world-stop pause in cycles per tenant run: 0 keeps legacy full stops (overrides config)")
		closure      = flag.Bool("closure", false, "run tenant VMs on the closure compilation tier (overrides config)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	cfg := server.DefaultServerConfig()
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			return fmt.Errorf("parse %s: %w", *configPath, err)
		}
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *memBytes != 0 {
		cfg.MemBytes = *memBytes
	}
	if *maxInflight != 0 {
		cfg.MaxInflight = *maxInflight
	}
	if *noBallast {
		cfg.Ballast.Disabled = true
	}
	if *pauseBudget != 0 {
		cfg.PauseBudgetCycles = *pauseBudget
	}
	if *closure {
		cfg.Closure = true
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	bound, err := s.Start()
	if err != nil {
		return err
	}
	// The bind line goes out before any request is served, so harnesses can
	// scrape the port without racing the workload (same contract as the
	// -http flag on caratvm/caratbench).
	fmt.Fprintf(os.Stderr, "caratd: listening on http://%s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(os.Stderr, "caratd: %s received, draining\n", got)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	violations, err := s.Drain(ctx)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if violations > 0 {
		return fmt.Errorf("%d invariant violation(s) observed — machine integrity was breached", violations)
	}
	fmt.Fprintln(os.Stderr, "caratd: drained cleanly")
	return nil
}
