package cc

import (
	"fmt"

	"carat/internal/ir"
)

// Compile parses and lowers CARAT-C source to an IR module ready for the
// pass pipeline.
func Compile(name, src string) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(name, prog)
}

// ctype is the lowering-time type of an expression.
type ctype int

const (
	cInt ctype = iota
	cFloat
	cPtr
	cBool // i1, the transient type of comparisons
	cVoid
)

func (c ctype) String() string {
	return [...]string{"int", "float", "ptr", "bool", "void"}[c]
}

func (tn TypeName) ctype() ctype {
	switch tn.Kind {
	case "int":
		return cInt
	case "float":
		return cFloat
	case "ptr":
		return cPtr
	}
	return cVoid
}

func irType(c ctype) *ir.Type {
	switch c {
	case cInt:
		return ir.I64
	case cFloat:
		return ir.F64
	case cPtr:
		return ir.Ptr
	case cBool:
		return ir.I1
	}
	return ir.Void
}

// local is a stack slot for a CARAT-C variable.
type local struct {
	slot ir.Value // alloca
	typ  ctype
}

// lowerer carries the per-module lowering state.
type lowerer struct {
	m       *ir.Module
	prog    *Program
	globals map[string]*globalInfo
	funcs   map[string]*FuncDecl
	irFuncs map[string]*ir.Func

	// builtins
	malloc, free, printI, printF *ir.Func
}

type globalInfo struct {
	g    *ir.Global
	elem ctype
	arr  bool
}

// Lower converts a parsed program into an IR module.
func Lower(name string, prog *Program) (*ir.Module, error) {
	lo := &lowerer{
		m:       ir.NewModule(name),
		prog:    prog,
		globals: map[string]*globalInfo{},
		funcs:   map[string]*FuncDecl{},
		irFuncs: map[string]*ir.Func{},
	}
	lo.malloc = lo.m.DeclareFunc(ir.FnMalloc, ir.Ptr, ir.I64)
	lo.free = lo.m.DeclareFunc(ir.FnFree, ir.Void, ir.Ptr)
	lo.printI = lo.m.DeclareFunc(ir.FnPrintI64, ir.Void, ir.I64)
	lo.printF = lo.m.DeclareFunc(ir.FnPrintF64, ir.Void, ir.F64)

	for _, g := range prog.Globals {
		if _, dup := lo.globals[g.Name]; dup {
			return nil, fmt.Errorf("cc: line %d: duplicate global %q", g.Line, g.Name)
		}
		elem := g.Type.ctype()
		var t *ir.Type
		if g.Type.ArrLen > 0 {
			t = ir.ArrayOf(irType(elem), g.Type.ArrLen)
		} else {
			t = irType(elem)
		}
		lo.globals[g.Name] = &globalInfo{
			g:    lo.m.AddGlobal(g.Name, t),
			elem: elem,
			arr:  g.Type.ArrLen > 0,
		}
	}

	// Declare all function signatures first so calls resolve forward.
	for _, f := range prog.Funcs {
		if _, dup := lo.funcs[f.Name]; dup {
			return nil, fmt.Errorf("cc: line %d: duplicate function %q", f.Line, f.Name)
		}
		lo.funcs[f.Name] = f
		params := make([]*ir.Param, len(f.Params))
		for i, pr := range f.Params {
			params[i] = &ir.Param{Name: pr.Name, Typ: irType(pr.Type.ctype())}
		}
		ret := ir.Void
		if f.Ret.Kind != "" {
			ret = irType(f.Ret.ctype())
		}
		lo.irFuncs[f.Name] = lo.m.AddFunc(f.Name, ret, params...)
	}
	for _, f := range prog.Funcs {
		if err := lo.lowerFunc(f); err != nil {
			return nil, err
		}
	}
	if f := lo.m.Func("main"); f == nil || f.IsDecl() {
		return nil, fmt.Errorf("cc: program has no func main")
	}
	if err := lo.m.Verify(); err != nil {
		return nil, fmt.Errorf("cc: internal: lowered module invalid: %w", err)
	}
	return lo.m, nil
}

// fnLowerer is the per-function lowering state.
type fnLowerer struct {
	*lowerer
	fd      *FuncDecl
	fn      *ir.Func
	b       *ir.Builder
	scopes  []map[string]local
	done    bool // current block already terminated
	nAllocs int  // allocas placed at the head of the entry block
}

// newSlot creates a stack slot in the function's ENTRY block regardless of
// the current lowering position: a `var` inside a loop body must not
// re-alloca every iteration (the frame would grow without bound).
func (fl *fnLowerer) newSlot(t *ir.Type) ir.Value {
	in := &ir.Instr{Op: ir.OpAlloca, Name: fl.freshSlotName(), Typ: ir.Ptr,
		Elem: t, Args: []ir.Value{ir.ConstInt(ir.I64, 1)}}
	entry := fl.fn.Entry()
	if fl.nAllocs >= len(entry.Instrs) {
		entry.Append(in)
	} else {
		entry.InsertBefore(in, entry.Instrs[fl.nAllocs])
	}
	fl.nAllocs++
	return in
}

var slotCounter int

func (fl *fnLowerer) freshSlotName() string {
	slotCounter++
	return fmt.Sprintf("slot%d", slotCounter)
}

func (lo *lowerer) lowerFunc(fd *FuncDecl) error {
	fn := lo.irFuncs[fd.Name]
	fl := &fnLowerer{lowerer: lo, fd: fd, fn: fn, b: ir.NewBuilder(fn)}
	fl.push()
	// Spill parameters into stack slots so they are assignable.
	for i, pr := range fd.Params {
		slot := fl.newSlot(irType(pr.Type.ctype()))
		fl.b.Store(fn.Params[i], slot)
		fl.scopes[0][pr.Name] = local{slot: slot, typ: pr.Type.ctype()}
	}
	if err := fl.lowerBlock(fd.Body); err != nil {
		return err
	}
	if !fl.done {
		// Fall off the end: implicit return.
		if fd.Ret.Kind == "" {
			fl.b.Ret(nil)
		} else if fd.Ret.ctype() == cFloat {
			fl.b.Ret(ir.ConstFloat(0))
		} else if fd.Ret.ctype() == cPtr {
			fl.b.Ret(ir.ConstNull())
		} else {
			fl.b.Ret(ir.ConstInt(ir.I64, 0))
		}
	}
	return nil
}

func (fl *fnLowerer) push() { fl.scopes = append(fl.scopes, map[string]local{}) }
func (fl *fnLowerer) pop()  { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *fnLowerer) lookup(name string) (local, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if l, ok := fl.scopes[i][name]; ok {
			return l, true
		}
	}
	return local{}, false
}

func (fl *fnLowerer) lowerBlock(b *Block) error {
	fl.push()
	defer fl.pop()
	for _, s := range b.Stmts {
		if fl.done {
			return nil // unreachable code after return: drop it
		}
		if err := fl.lowerStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fl *fnLowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return fl.lowerBlock(st)

	case *VarStmt:
		v, t, err := fl.lowerExpr(st.Init)
		if err != nil {
			return err
		}
		if t == cBool {
			v, t = fl.boolToInt(v), cInt
		}
		if t == cVoid {
			return fmt.Errorf("cc: line %d: void value in var initializer", st.Line)
		}
		slot := fl.newSlot(irType(t))
		fl.b.Store(v, slot)
		fl.scopes[len(fl.scopes)-1][st.Name] = local{slot: slot, typ: t}
		return nil

	case *AssignStmt:
		v, vt, err := fl.lowerExpr(st.Value)
		if err != nil {
			return err
		}
		if vt == cBool {
			v, vt = fl.boolToInt(v), cInt
		}
		addr, et, err := fl.lvalueAddr(st.Target)
		if err != nil {
			return err
		}
		if et != vt {
			return fmt.Errorf("cc: line %d: cannot assign %s to %s", st.Line, vt, et)
		}
		fl.b.Store(v, addr)
		return nil

	case *ReturnStmt:
		want := fl.fd.Ret.ctype()
		if st.Value == nil {
			if fl.fd.Ret.Kind != "" {
				return fmt.Errorf("cc: line %d: missing return value", st.Line)
			}
			fl.b.Ret(nil)
			fl.done = true
			return nil
		}
		v, t, err := fl.lowerExpr(st.Value)
		if err != nil {
			return err
		}
		if t == cBool {
			v, t = fl.boolToInt(v), cInt
		}
		if fl.fd.Ret.Kind == "" || t != want {
			return fmt.Errorf("cc: line %d: return type mismatch (%s vs %s)", st.Line, t, want)
		}
		fl.b.Ret(v)
		fl.done = true
		return nil

	case *ExprStmt:
		_, _, err := fl.lowerExpr(st.X)
		return err

	case *IfStmt:
		cond, err := fl.lowerCond(st.Cond)
		if err != nil {
			return err
		}
		thenB := fl.b.NewBlock("if.then")
		elseB := fl.b.NewBlock("if.else")
		exitB := fl.b.NewBlock("if.exit")
		fl.b.CondBr(cond, thenB, elseB)

		fl.b.SetBlock(thenB)
		fl.done = false
		if err := fl.lowerBlock(st.Then); err != nil {
			return err
		}
		thenDone := fl.done
		if !thenDone {
			fl.b.Br(exitB)
		}

		fl.b.SetBlock(elseB)
		fl.done = false
		if st.Else != nil {
			if err := fl.lowerStmt(st.Else); err != nil {
				return err
			}
		}
		elseDone := fl.done
		if !elseDone {
			fl.b.Br(exitB)
		}

		fl.b.SetBlock(exitB)
		fl.done = thenDone && elseDone
		if fl.done {
			// Exit block is unreachable; terminate it for the verifier.
			fl.b.Unreachable()
		}
		return nil

	case *WhileStmt:
		head := fl.b.NewBlock("while.head")
		body := fl.b.NewBlock("while.body")
		exit := fl.b.NewBlock("while.exit")
		fl.b.Br(head)
		fl.b.SetBlock(head)
		cond, err := fl.lowerCond(st.Cond)
		if err != nil {
			return err
		}
		fl.b.CondBr(cond, body, exit)
		fl.b.SetBlock(body)
		fl.done = false
		if err := fl.lowerBlock(st.Body); err != nil {
			return err
		}
		if !fl.done {
			fl.b.Br(head)
		}
		fl.b.SetBlock(exit)
		fl.done = false
		return nil

	case *ForStmt:
		fl.push()
		defer fl.pop()
		if st.Init != nil {
			if err := fl.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		head := fl.b.NewBlock("for.head")
		body := fl.b.NewBlock("for.body")
		post := fl.b.NewBlock("for.post")
		exit := fl.b.NewBlock("for.exit")
		fl.b.Br(head)
		fl.b.SetBlock(head)
		if st.Cond != nil {
			cond, err := fl.lowerCond(st.Cond)
			if err != nil {
				return err
			}
			fl.b.CondBr(cond, body, exit)
		} else {
			fl.b.Br(body)
		}
		fl.b.SetBlock(body)
		fl.done = false
		if err := fl.lowerBlock(st.Body); err != nil {
			return err
		}
		if !fl.done {
			fl.b.Br(post)
		}
		fl.b.SetBlock(post)
		if st.Post != nil {
			if err := fl.lowerStmt(st.Post); err != nil {
				return err
			}
		}
		fl.b.Br(head)
		fl.b.SetBlock(exit)
		fl.done = false
		return nil
	}
	return fmt.Errorf("cc: unhandled statement %T", s)
}

// boolToInt widens an i1 to i64.
func (fl *fnLowerer) boolToInt(v ir.Value) ir.Value {
	return fl.b.Cast(ir.OpZExt, v, ir.I64)
}

// lowerCond lowers an expression used as a branch condition to an i1.
func (fl *fnLowerer) lowerCond(e Expr) (ir.Value, error) {
	v, t, err := fl.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	switch t {
	case cBool:
		return v, nil
	case cInt:
		return fl.b.ICmp(ir.PredNE, v, ir.ConstInt(ir.I64, 0)), nil
	case cPtr:
		return fl.b.ICmp(ir.PredNE, v, ir.ConstNull()), nil
	}
	return nil, fmt.Errorf("cc: %s value used as condition", t)
}

// lvalueAddr lowers an assignment target to (address, element type).
func (fl *fnLowerer) lvalueAddr(e Expr) (ir.Value, ctype, error) {
	switch x := e.(type) {
	case *Ident:
		if l, ok := fl.lookup(x.Name); ok {
			return l.slot, l.typ, nil
		}
		if g, ok := fl.globals[x.Name]; ok {
			if g.arr {
				return nil, cVoid, fmt.Errorf("cc: line %d: cannot assign to array %q", x.Line, x.Name)
			}
			return g.g, g.elem, nil
		}
		return nil, cVoid, fmt.Errorf("cc: line %d: undefined variable %q", x.Line, x.Name)
	case *IndexExpr:
		return fl.indexAddr(x)
	}
	return nil, cVoid, fmt.Errorf("cc: invalid assignment target")
}

// indexAddr lowers base[idx] to (element address, element type).
func (fl *fnLowerer) indexAddr(x *IndexExpr) (ir.Value, ctype, error) {
	idx, it, err := fl.lowerExpr(x.Idx)
	if err != nil {
		return nil, cVoid, err
	}
	if it != cInt {
		return nil, cVoid, fmt.Errorf("cc: line %d: index must be int", x.Line)
	}
	// Global arrays keep their element type; raw pointers index as int.
	if id, ok := x.Base.(*Ident); ok {
		if g, okg := fl.globals[id.Name]; okg && g.arr {
			return fl.b.GEP(irType(g.elem), g.g, idx), g.elem, nil
		}
	}
	base, bt, err := fl.lowerExpr(x.Base)
	if err != nil {
		return nil, cVoid, err
	}
	if bt != cPtr {
		return nil, cVoid, fmt.Errorf("cc: line %d: cannot index %s", x.Line, bt)
	}
	return fl.b.GEP(ir.I64, base, idx), cInt, nil
}

var cmpPreds = map[string]ir.Pred{
	"==": ir.PredEQ, "!=": ir.PredNE,
	"<": ir.PredLT, "<=": ir.PredLE, ">": ir.PredGT, ">=": ir.PredGE,
}

var intOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

var floatOps = map[string]ir.Op{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}

// lowerExpr lowers an expression to (value, type).
func (fl *fnLowerer) lowerExpr(e Expr) (ir.Value, ctype, error) {
	switch x := e.(type) {
	case *IntLit:
		return ir.ConstInt(ir.I64, x.Val), cInt, nil
	case *FloatLit:
		return ir.ConstFloat(x.Val), cFloat, nil

	case *Ident:
		if l, ok := fl.lookup(x.Name); ok {
			return fl.b.Load(irType(l.typ), l.slot), l.typ, nil
		}
		if g, ok := fl.globals[x.Name]; ok {
			if g.arr {
				return g.g, cPtr, nil // array decays to pointer
			}
			return fl.b.Load(irType(g.elem), g.g), g.elem, nil
		}
		return nil, cVoid, fmt.Errorf("cc: line %d: undefined variable %q", x.Line, x.Name)

	case *IndexExpr:
		addr, et, err := fl.indexAddr(x)
		if err != nil {
			return nil, cVoid, err
		}
		return fl.b.Load(irType(et), addr), et, nil

	case *UnExpr:
		v, t, err := fl.lowerExpr(x.X)
		if err != nil {
			return nil, cVoid, err
		}
		switch x.Op {
		case "-":
			switch t {
			case cInt:
				return fl.b.Sub(ir.ConstInt(ir.I64, 0), v), cInt, nil
			case cFloat:
				return fl.b.FSub(ir.ConstFloat(0), v), cFloat, nil
			}
		case "!":
			if t == cBool {
				return fl.b.Xor(v, ir.ConstInt(ir.I1, 1)), cBool, nil
			}
			if t == cInt {
				return fl.b.ICmp(ir.PredEQ, v, ir.ConstInt(ir.I64, 0)), cBool, nil
			}
		}
		return nil, cVoid, fmt.Errorf("cc: bad operand of unary %s", x.Op)

	case *BinExpr:
		return fl.lowerBin(x)

	case *CallExpr:
		return fl.lowerCall(x)
	}
	return nil, cVoid, fmt.Errorf("cc: unhandled expression %T", e)
}

func (fl *fnLowerer) lowerBin(x *BinExpr) (ir.Value, ctype, error) {
	// Short-circuit && and || lower through control flow.
	if x.Op == "&&" || x.Op == "||" {
		return fl.lowerShortCircuit(x)
	}
	l, lt, err := fl.lowerExpr(x.L)
	if err != nil {
		return nil, cVoid, err
	}
	r, rt, err := fl.lowerExpr(x.R)
	if err != nil {
		return nil, cVoid, err
	}
	if lt == cBool {
		l, lt = fl.boolToInt(l), cInt
	}
	if rt == cBool {
		r, rt = fl.boolToInt(r), cInt
	}
	if pred, ok := cmpPreds[x.Op]; ok {
		if lt != rt {
			return nil, cVoid, fmt.Errorf("cc: line %d: comparing %s with %s", x.Line, lt, rt)
		}
		if lt == cFloat {
			return fl.b.FCmp(pred, l, r), cBool, nil
		}
		return fl.b.ICmp(pred, l, r), cBool, nil
	}
	if lt != rt {
		return nil, cVoid, fmt.Errorf("cc: line %d: mixed operands %s %s %s", x.Line, lt, x.Op, rt)
	}
	switch lt {
	case cInt:
		op, ok := intOps[x.Op]
		if !ok {
			return nil, cVoid, fmt.Errorf("cc: line %d: bad int operator %q", x.Line, x.Op)
		}
		return fl.b.Binary(op, l, r), cInt, nil
	case cFloat:
		op, ok := floatOps[x.Op]
		if !ok {
			return nil, cVoid, fmt.Errorf("cc: line %d: bad float operator %q", x.Line, x.Op)
		}
		return fl.b.Binary(op, l, r), cFloat, nil
	}
	return nil, cVoid, fmt.Errorf("cc: line %d: bad operands of %q", x.Line, x.Op)
}

// lowerShortCircuit lowers && and || with proper control flow, producing a
// bool via a value stored in a temporary slot (keeps the lowering simple
// and phi-free).
func (fl *fnLowerer) lowerShortCircuit(x *BinExpr) (ir.Value, ctype, error) {
	tmp := fl.newSlot(ir.I64)
	lCond, err := fl.lowerCond(x.L)
	if err != nil {
		return nil, cVoid, err
	}
	rhsB := fl.b.NewBlock("sc.rhs")
	exitB := fl.b.NewBlock("sc.exit")
	if x.Op == "&&" {
		fl.b.Store(ir.ConstInt(ir.I64, 0), tmp)
		fl.b.CondBr(lCond, rhsB, exitB)
	} else {
		fl.b.Store(ir.ConstInt(ir.I64, 1), tmp)
		fl.b.CondBr(lCond, exitB, rhsB)
	}
	fl.b.SetBlock(rhsB)
	rCond, err := fl.lowerCond(x.R)
	if err != nil {
		return nil, cVoid, err
	}
	fl.b.Store(fl.boolToInt(rCond), tmp)
	fl.b.Br(exitB)
	fl.b.SetBlock(exitB)
	v := fl.b.Load(ir.I64, tmp)
	return fl.b.ICmp(ir.PredNE, v, ir.ConstInt(ir.I64, 0)), cBool, nil
}

func (fl *fnLowerer) lowerCall(x *CallExpr) (ir.Value, ctype, error) {
	lowerArgs := func(want []ctype) ([]ir.Value, error) {
		if len(x.Args) != len(want) {
			return nil, fmt.Errorf("cc: line %d: %s takes %d arguments", x.Line, x.Name, len(want))
		}
		out := make([]ir.Value, len(want))
		for i, a := range x.Args {
			v, t, err := fl.lowerExpr(a)
			if err != nil {
				return nil, err
			}
			if t == cBool && want[i] == cInt {
				v, t = fl.boolToInt(v), cInt
			}
			if t != want[i] {
				return nil, fmt.Errorf("cc: line %d: %s argument %d is %s, want %s",
					x.Line, x.Name, i+1, t, want[i])
			}
			out[i] = v
		}
		return out, nil
	}

	switch x.Name {
	case "malloc":
		args, err := lowerArgs([]ctype{cInt})
		if err != nil {
			return nil, cVoid, err
		}
		return fl.b.Call(fl.malloc, args...), cPtr, nil
	case "free":
		args, err := lowerArgs([]ctype{cPtr})
		if err != nil {
			return nil, cVoid, err
		}
		fl.b.Call(fl.free, args...)
		return nil, cVoid, nil
	case "print_int":
		args, err := lowerArgs([]ctype{cInt})
		if err != nil {
			return nil, cVoid, err
		}
		fl.b.Call(fl.printI, args...)
		return nil, cVoid, nil
	case "print_float":
		args, err := lowerArgs([]ctype{cFloat})
		if err != nil {
			return nil, cVoid, err
		}
		fl.b.Call(fl.printF, args...)
		return nil, cVoid, nil
	}

	fd, ok := fl.funcs[x.Name]
	if !ok {
		return nil, cVoid, fmt.Errorf("cc: line %d: undefined function %q", x.Line, x.Name)
	}
	want := make([]ctype, len(fd.Params))
	for i, pr := range fd.Params {
		want[i] = pr.Type.ctype()
	}
	args, err := lowerArgs(want)
	if err != nil {
		return nil, cVoid, err
	}
	call := fl.b.Call(fl.irFuncs[x.Name], args...)
	if fd.Ret.Kind == "" {
		return nil, cVoid, nil
	}
	return call, fd.Ret.ctype(), nil
}
