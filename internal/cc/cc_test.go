package cc

import (
	"strings"
	"testing"

	"carat/internal/core"
	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

// runCC compiles CARAT-C source through the full pipeline and executes it.
func runCC(t *testing.T, src string, lvl passes.Level) (*vm.VM, int64) {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 19
	v, ret, err := core.CompileAndRun(m, lvl, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, ret
}

func TestLexBasics(t *testing.T) {
	toks, err := lex(`func f(x: int): int { return x << 2; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"func", "f", "(", "x", ":", "int", "<<", "2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing token %q in %q", want, joined)
		}
	}
	if _, err := lex("@"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("1 /* multi\nline */ 2 // eol\n3")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // 1 2 3 EOF
		t.Errorf("tokens = %d, want 4", len(toks))
	}
	if toks[2].line != 3 {
		t.Errorf("line tracking wrong: %d", toks[2].line)
	}
}

func TestSimpleReturn(t *testing.T) {
	_, ret := runCC(t, `func main(): int { return 6*7; }`, passes.LevelNone)
	if ret != 42 {
		t.Errorf("ret = %d", ret)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	_, ret := runCC(t, `
func main(): int {
    return 2 + 3 * 4 - 10 / 2 + (1 << 4) % 7;
}`, passes.LevelNone)
	// 2 + 12 - 5 + 16%7=2 => 11 + 2 = wait: 2+12=14, -5=9, +2=11.
	if ret != 11 {
		t.Errorf("ret = %d, want 11", ret)
	}
}

func TestVariablesAndLoops(t *testing.T) {
	_, ret := runCC(t, `
func main(): int {
    var acc = 0;
    for (var i = 0; i < 10; i = i + 1) {
        acc = acc + i;
    }
    var j = 0;
    while (j < 5) {
        acc = acc + 100;
        j = j + 1;
    }
    return acc;
}`, passes.LevelTracking)
	if ret != 45+500 {
		t.Errorf("ret = %d, want 545", ret)
	}
}

func TestIfElseChains(t *testing.T) {
	src := `
func classify(x: int): int {
    if (x < 0) {
        return 0 - 1;
    } else if (x == 0) {
        return 0;
    } else {
        return 1;
    }
}
func main(): int {
    return classify(0-5)*100 + classify(0)*10 + classify(7);
}`
	_, ret := runCC(t, src, passes.LevelGuardsOpt)
	if ret != -100+0+1 {
		t.Errorf("ret = %d, want -99", ret)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
global table: [64]int;
global total: int;

func main(): int {
    for (var i = 0; i < 64; i = i + 1) {
        table[i] = i * i;
    }
    total = 0;
    for (var i = 0; i < 64; i = i + 1) {
        total = total + table[i];
    }
    return total;
}`
	_, ret := runCC(t, src, passes.LevelTracking)
	want := int64(0)
	for i := int64(0); i < 64; i++ {
		want += i * i
	}
	if ret != want {
		t.Errorf("ret = %d, want %d", ret, want)
	}
}

func TestHeapAndBuiltins(t *testing.T) {
	src := `
func main(): int {
    var p = malloc(800);
    for (var i = 0; i < 100; i = i + 1) {
        p[i] = i * 3;
    }
    var s = 0;
    for (var i = 0; i < 100; i = i + 1) {
        s = s + p[i];
    }
    print_int(s);
    free(p);
    return s;
}`
	v, ret := runCC(t, src, passes.LevelTracking)
	if ret != 99*100/2*3 {
		t.Errorf("ret = %d", ret)
	}
	if len(v.Output) != 1 || v.Output[0] != ret {
		t.Errorf("print output = %v", v.Output)
	}
	if v.Runtime().Stats.Frees.Get() != 1 {
		t.Error("free not tracked")
	}
}

func TestFloats(t *testing.T) {
	src := `
global fs: [8]float;
func main(): int {
    fs[0] = 1.5;
    fs[1] = 2.25;
    var x = fs[0] * 4.0 + fs[1];
    if (x > 8.0) {
        return 1;
    }
    return 0;
}`
	_, ret := runCC(t, src, passes.LevelGuardsOpt)
	if ret != 1 { // 6 + 2.25 = 8.25 > 8
		t.Errorf("ret = %d, want 1", ret)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
global hits: int;
func bump(): int {
    hits = hits + 1;
    return 1;
}
func main(): int {
    hits = 0;
    if (0 != 0 && bump() != 0) { }
    if (1 == 1 || bump() != 0) { }
    return hits;
}`
	_, ret := runCC(t, src, passes.LevelNone)
	if ret != 0 {
		t.Errorf("short-circuit evaluated RHS: hits = %d", ret)
	}
}

func TestRecursionCC(t *testing.T) {
	src := `
func fib(n: int): int {
    if (n < 2) { return n; }
    return fib(n-1) + fib(n-2);
}
func main(): int { return fib(12); }`
	_, ret := runCC(t, src, passes.LevelGuardsOpt)
	if ret != 144 {
		t.Errorf("fib(12) = %d, want 144", ret)
	}
}

func TestVarInLoopDoesNotLeakStack(t *testing.T) {
	// `var` inside a loop body must not grow the frame per iteration.
	src := `
func main(): int {
    var acc = 0;
    for (var i = 0; i < 100000; i = i + 1) {
        var tmp = i & 7;
        acc = acc + tmp;
    }
    return acc & 1023;
}`
	m, err := Compile("test", src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 23
	cfg.HeapBytes = 1 << 18
	cfg.StackBytes = 1 << 14 // tiny: would overflow if vars leaked
	v, err := vm.Load(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		`func main(): int { return 1.5; }`,                        // float to int return
		`func main(): int { var x = 1; x = 2.0; return x; }`,      // mixed assign
		`func main(): int { return nosuch(); }`,                   // undefined fn
		`func main(): int { return y; }`,                          // undefined var
		`global g: [4]int; func main(): int { g = 1; return 0; }`, // assign to array
		`func main(): int { return 1 + 2.0; }`,                    // mixed operands
		`func f(): int { return 0; }`,                             // no main
		`func main(): int { malloc(1, 2); return 0; }`,            // arity
	}
	for _, src := range bad {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("accepted invalid program: %s", src)
		}
	}
}

func TestParseErrorsCC(t *testing.T) {
	bad := []string{
		`func`, `global x`, `func main() { return`, `func main(): int { if x { } }`,
		`func main(): int { var = 3; }`,
	}
	for _, src := range bad {
		if _, err := Compile("bad", src); err == nil {
			t.Errorf("accepted malformed program: %s", src)
		}
	}
}

func TestCCThroughFullCARAT(t *testing.T) {
	// A CARAT-C program must behave identically across pipeline levels.
	src := `
global data: [128]int;
func main(): int {
    for (var i = 0; i < 128; i = i + 1) {
        data[i] = i * 7 & 255;
    }
    var sum = 0;
    for (var i = 0; i < 128; i = i + 1) {
        sum = sum + data[i & 127];
    }
    return sum;
}`
	_, base := runCC(t, src, passes.LevelNone)
	vFull, full := runCC(t, src, passes.LevelTracking)
	if base != full {
		t.Errorf("baseline %d != CARAT %d", base, full)
	}
	if vFull.GuardChecks == 0 {
		t.Error("no guards ran")
	}
	_ = ir.Module{}
}
