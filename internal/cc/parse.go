package cc

import (
	"fmt"
	"strconv"
)

// Parse parses CARAT-C source into an AST.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, fmt.Errorf("cc: line %d: %w", p.cur().line, err)
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().kind == tPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tIdent && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("expected %q, got %q", text, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	if p.cur().kind != tIdent {
		return "", fmt.Errorf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tEOF {
		switch {
		case p.acceptKw("global"):
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case p.acceptKw("func"):
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, fmt.Errorf("expected 'global' or 'func', got %q", p.cur().text)
		}
	}
	return prog, nil
}

func (p *parser) typeName() (TypeName, error) {
	if p.accept("[") {
		if p.cur().kind != tInt {
			return TypeName{}, fmt.Errorf("expected array length")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n <= 0 {
			return TypeName{}, fmt.Errorf("bad array length")
		}
		if err := p.expect("]"); err != nil {
			return TypeName{}, err
		}
		elem, err := p.ident()
		if err != nil {
			return TypeName{}, err
		}
		if elem != "int" && elem != "float" && elem != "ptr" {
			return TypeName{}, fmt.Errorf("bad array element type %q", elem)
		}
		return TypeName{Kind: elem, ArrLen: n}, nil
	}
	name, err := p.ident()
	if err != nil {
		return TypeName{}, err
	}
	switch name {
	case "int", "float", "ptr":
		return TypeName{Kind: name}, nil
	}
	return TypeName{}, fmt.Errorf("unknown type %q", name)
}

func (p *parser) globalDecl() (*GlobalDecl, error) {
	line := p.cur().line
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	tn, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &GlobalDecl{Name: name, Type: tn, Line: line}, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.cur().line
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var params []Param
	for !p.accept(")") {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pn, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		tn, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if tn.ArrLen != 0 {
			return nil, fmt.Errorf("array parameters are not supported; pass a ptr")
		}
		params = append(params, Param{Name: pn, Type: tn})
	}
	ret := TypeName{}
	if p.accept(":") {
		r, err := p.typeName()
		if err != nil {
			return nil, err
		}
		ret = r
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Params: params, Ret: ret, Body: body, Line: line}, nil
}

func (p *parser) block() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		if p.cur().kind == tEOF {
			return nil, fmt.Errorf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.cur().kind == tPunct && p.cur().text == "{":
		return p.block()

	case p.acceptKw("var"):
		line := p.cur().line
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &VarStmt{Name: name, Init: e, Line: line}, nil

	case p.acceptKw("if"):
		return p.ifStmt()

	case p.acceptKw("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil

	case p.acceptKw("for"):
		return p.forStmt()

	case p.acceptKw("return"):
		line := p.cur().line
		if p.accept(";") {
			return &ReturnStmt{Line: line}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: e, Line: line}, nil
	}

	// Assignment or expression statement.
	return p.simpleStmt(true)
}

// simpleStmt parses `lvalue = expr` or a bare expression; when wantSemi it
// also consumes the trailing semicolon.
func (p *parser) simpleStmt(wantSemi bool) (Stmt, error) {
	line := p.cur().line
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	var st Stmt
	if p.accept("=") {
		switch e.(type) {
		case *Ident, *IndexExpr:
		default:
			return nil, fmt.Errorf("invalid assignment target")
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		st = &AssignStmt{Target: e, Value: v, Line: line}
	} else {
		st = &ExprStmt{X: e}
	}
	if wantSemi {
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.acceptKw("else") {
		if p.acceptKw("if") {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	if !p.accept(";") {
		if p.acceptKw("var") {
			line := p.cur().line
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Init = &VarStmt{Name: name, Init: e, Line: line}
		} else {
			s, err := p.simpleStmt(false)
			if err != nil {
				return nil, err
			}
			f.Init = s
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		f.Cond = cond
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(")") {
		s, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		f.Post = s
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression parsing: precedence climbing.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.accept("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "-", X: x}, nil
	}
	if p.accept("!") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: "!", X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		if p.accept("[") {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Idx: idx, Line: p.cur().line}
			continue
		}
		return e, nil
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", t.text)
		}
		return &IntLit{Val: v}, nil
	case t.kind == tFloat:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q", t.text)
		}
		return &FloatLit{Val: v}, nil
	case t.kind == tIdent:
		p.next()
		if p.accept("(") {
			call := &CallExpr{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			return call, nil
		}
		return &Ident{Name: t.text, Line: t.line}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("unexpected token %q", t.text)
}
