// Package cc implements a small C-like frontend for the CARAT toolchain.
// The paper's pipeline starts from "arbitrary code (C, C++, ...)" lowered
// to IR by the compiler front end; this package plays that role for a
// C-subset language ("CARAT-C") so programs can be written as source text
// rather than hand-assembled IR:
//
//	global table: [256]int;
//
//	func sum(n: int): int {
//	    var acc = 0;
//	    for (var i = 0; i < n; i = i + 1) {
//	        acc = acc + table[i & 255];
//	    }
//	    return acc;
//	}
//
//	func main(): int {
//	    return sum(1000);
//	}
//
// Types are int (i64), float (f64), and ptr; globals may be scalars or
// fixed arrays; malloc/free/print_int/print_float are builtins. The
// restrictions of §2.2 hold by construction: no casts between function and
// data pointers, no inline assembly, no self-modifying code.
package cc

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct // operators and separators
)

type token struct {
	kind tokKind
	text string
	line int
}

// multi-char operators, longest first.
var operators = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "&", "|", "^", "<", ">", "=", "!",
	"(", ")", "{", "}", "[", "]", ",", ";", ":",
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes src, returning a token slice ending in tEOF.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tEOF, line: l.line})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case unicode.IsLetter(rune(c)) || c == '_':
			start := l.pos
			for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{tIdent, l.src[start:l.pos], l.line})
		case unicode.IsDigit(rune(c)):
			start := l.pos
			isFloat := false
			for l.pos < len(l.src) {
				d := l.src[l.pos]
				if d == '.' {
					isFloat = true
					l.pos++
					continue
				}
				if d == 'x' || d == 'X' || isHexByte(d) {
					l.pos++
					continue
				}
				break
			}
			kind := tInt
			if isFloat {
				kind = tFloat
			}
			l.toks = append(l.toks, token{kind, l.src[start:l.pos], l.line})
		default:
			matched := false
			for _, op := range operators {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{tPunct, op, l.line})
					l.pos += len(op)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("cc: line %d: unexpected character %q", l.line, c)
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
