package cc

// The CARAT-C abstract syntax tree.

// Program is a parsed translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// TypeName is a CARAT-C surface type.
type TypeName struct {
	Kind   string // "int", "float", "ptr"
	ArrLen int    // > 0 for global array declarations
}

// GlobalDecl is `global name: type;` or `global name: [N]type;`.
type GlobalDecl struct {
	Name string
	Type TypeName
	Line int
}

// FuncDecl is `func name(params): ret { body }`.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    TypeName // Kind "" for void
	Body   *Block
	Line   int
}

// Param is one formal parameter.
type Param struct {
	Name string
	Type TypeName
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is `{ stmts }`.
type Block struct {
	Stmts []Stmt
}

// VarStmt is `var name = expr;`.
type VarStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt is `lvalue = expr;` where lvalue is a name or index.
type AssignStmt struct {
	Target Expr // *Ident or *IndexExpr
	Value  Expr
	Line   int
}

// IfStmt is `if (cond) block [else block|if]`.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *IfStmt, or nil
}

// WhileStmt is `while (cond) block`.
type WhileStmt struct {
	Cond Expr
	Body *Block
}

// ForStmt is `for (init; cond; post) block`.
type ForStmt struct {
	Init Stmt // VarStmt or AssignStmt, may be nil
	Cond Expr
	Post Stmt // AssignStmt, may be nil
	Body *Block
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Value Expr // nil for void
	Line  int
}

// ExprStmt is an expression used for effect (calls).
type ExprStmt struct {
	X Expr
}

func (*Block) stmt()      {}
func (*VarStmt) stmt()    {}
func (*AssignStmt) stmt() {}
func (*IfStmt) stmt()     {}
func (*WhileStmt) stmt()  {}
func (*ForStmt) stmt()    {}
func (*ReturnStmt) stmt() {}
func (*ExprStmt) stmt()   {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// FloatLit is a floating literal.
type FloatLit struct{ Val float64 }

// Ident references a local, parameter, or global.
type Ident struct {
	Name string
	Line int
}

// IndexExpr is `base[idx]` (array or pointer indexing).
type IndexExpr struct {
	Base Expr
	Idx  Expr
	Line int
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnExpr is unary `-x` or `!x`.
type UnExpr struct {
	Op string
	X  Expr
}

// CallExpr is `fn(args...)`; fn may be a builtin.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*IntLit) expr()    {}
func (*FloatLit) expr()  {}
func (*Ident) expr()     {}
func (*IndexExpr) expr() {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*CallExpr) expr()  {}
