package mmpolicy

import (
	"carat/internal/guard"
	"carat/internal/kernel"
)

// NUMARebalance migrates a process's memory onto its first-touch home
// node (§7 "migration between NUMA zones"). The model splits physical
// memory into two nodes at the halfway page; a process's home is fixed by
// its first recorded access. Each tick the policy finds regions resident
// off-node and moves them, steering the destination with the allocator's
// placement preference.
type NUMARebalance struct {
	// MaxMovesPerTick bounds migration work per wakeup.
	MaxMovesPerTick int
}

// NewNUMARebalance returns a NUMA rebalancing policy.
func NewNUMARebalance() *NUMARebalance {
	return &NUMARebalance{MaxMovesPerTick: 4}
}

// Name implements Policy.
func (p *NUMARebalance) Name() string { return "numa" }

// Tick implements Policy.
func (p *NUMARebalance) Tick(d *Daemon, now uint64) error {
	moves := 0
	for _, mp := range d.procs {
		home := mp.Home()
		if home < 0 {
			continue
		}
		start, pages := d.nodePages(home)
		lo, hi := start*kernel.PageSize, (start+pages)*kernel.PageSize
		// Snapshot: RequestMove mutates the region set mid-iteration.
		regions := append([]guard.Region(nil), mp.Proc.Regions.Regions()...)
		d.chargeScan(uint64(len(regions)) * cycPerPageScan)
		for _, reg := range regions {
			if moves >= p.MaxMovesPerTick {
				return nil
			}
			if reg.Base >= lo && reg.End() <= hi {
				continue // already resident on the home node
			}
			d.K.Alloc.Prefer(start, pages)
			res, ok := d.tryMove(mp, p.Name(), reg.Base, (reg.Len+kernel.PageSize-1)/kernel.PageSize, now)
			d.K.Alloc.ClearPreference()
			if !ok {
				continue
			}
			moves++
			bd := lastBreakdown(mp.RT)
			reason := "numa rebalance"
			if d.node(res.Dst) != home {
				// The home node had no room; the move landed off-node.
				// Count it as work done but flag the miss.
				reason = "numa rebalance (off-node fallback)"
			}
			d.record(now, p.Name(), ActionMove, mp.Name, res.Src, res.Pages,
				bd.TotalCycles(), reason)
			d.stats.NUMAMoves.Inc()
		}
	}
	return nil
}
