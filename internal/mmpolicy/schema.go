package mmpolicy

import (
	"encoding/json"
	"io"

	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// Machine-readable policy output. Like the other carat.* documents the
// format is versioned: bump SchemaVersion whenever a field is renamed,
// removed, or changes meaning (additions are compatible). The schema is
// documented in DESIGN.md ("Observability") and validated by
// scripts/validatejson.

// Schema identifies the policy-decision document format.
const Schema = "carat.policy"

// SchemaVersion is the current document format version.
// v2 adds pause_p99_cycles and pause_budget_cycles (the bounded-pause
// protocol's headline number and its knob); pause_cycles existed in v1.
const SchemaVersion = 2

// Decision actions.
const (
	ActionMove    = "move"     // compaction / migration page move
	ActionSwapOut = "swap_out" // tiering eviction
	ActionSwapIn  = "swap_in"  // poison-fault restore
	ActionVeto    = "veto"     // a change request the system refused
	ActionPin     = "pin"      // page pinned after repeated move failures
)

// Decision is one policy action the daemon took (or had vetoed).
type Decision struct {
	Tick   int    `json:"tick"`
	Cycle  uint64 `json:"cycle"` // simulated cycle of the wakeup
	Policy string `json:"policy"`
	Action string `json:"action"`
	Proc   string `json:"proc"`
	Base   uint64 `json:"base"`
	Pages  uint64 `json:"pages"`
	// Cycles is the modeled cost of executing the decision (for moves,
	// the runtime's Table 3 breakdown total).
	Cycles uint64 `json:"cycles"`
	Reason string `json:"reason,omitempty"`
}

// Totals aggregates the decision log.
type Totals struct {
	Moves    uint64 `json:"moves"`
	SwapOuts uint64 `json:"swap_outs"`
	SwapIns  uint64 `json:"swap_ins"`
	Vetoes   uint64 `json:"vetoes"`
	Pins     uint64 `json:"pins"`
	// MoveCycles is the modeled cost of all executed decisions;
	// DaemonCycles is the daemon's own scan/dispatch overhead.
	MoveCycles   uint64 `json:"move_cycles"`
	DaemonCycles uint64 `json:"daemon_cycles"`
}

// Document is the top-level machine-readable record of a daemon run.
type Document struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Policies lists the active policies in tick order.
	Policies  []string   `json:"policies"`
	Ticks     int        `json:"ticks"`
	Decisions []Decision `json:"decisions"`
	Totals    Totals     `json:"totals"`
	// FragBefore/FragAfter bracket the run's fragmentation picture:
	// before is captured at the first tick (or CaptureFragBefore), after
	// at Report time.
	FragBefore *kernel.FragStats `json:"frag_before,omitempty"`
	FragAfter  *kernel.FragStats `json:"frag_after,omitempty"`
	// PauseCycles is the carat.runtime.pause_cycles histogram at Report
	// time: every world-stop window (moves, aborts, protection flips,
	// swaps) across all managed processes, with p50/p95/p99. All the
	// harness's runtimes share the kernel's registry, so this aggregates
	// the whole machine.
	PauseCycles *obs.HistogramSnapshot `json:"pause_cycles,omitempty"`
	// PauseP99Cycles (v2) surfaces the p99 pause as a first-class column so
	// policy comparisons don't have to dig into the histogram; it equals
	// PauseCycles.P99 (0 when no pauses were recorded).
	PauseP99Cycles float64 `json:"pause_p99_cycles"`
	// PauseBudgetCycles (v2) records the max-pause budget the run was
	// configured with (HarnessConfig.PauseBudget); 0 means the legacy
	// full-stop protocol with no bound.
	PauseBudgetCycles uint64 `json:"pause_budget_cycles"`
}

// Report assembles the versioned decision document for the run so far.
func (d *Daemon) Report() *Document {
	d.mu.Lock()
	defer d.mu.Unlock()
	doc := &Document{
		Schema:     Schema,
		Version:    SchemaVersion,
		Ticks:      d.ticks,
		Decisions:  append([]Decision(nil), d.decisions...),
		Totals:     d.totals,
		FragBefore: d.fragBefore,
	}
	for _, p := range d.policies {
		doc.Policies = append(doc.Policies, p.Name())
	}
	fs := d.K.Alloc.FragStats()
	doc.FragAfter = &fs
	doc.PauseBudgetCycles = d.PauseBudget
	if ps := d.K.Obs.Histogram(runtime.PauseHist).Snapshot(); ps.Count > 0 {
		doc.PauseCycles = &ps
		doc.PauseP99Cycles = ps.P99
	}
	return doc
}

// WriteJSON writes the document as indented JSON.
func (doc *Document) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
