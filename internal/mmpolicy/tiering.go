package mmpolicy

// Tiering is the hot/cold memory-tiering policy (§2.2 swap, §7): under
// memory pressure it evicts the coldest allocations — lowest decayed
// access heat — to swap via runtime.SwapOut, releasing their frames. A
// later touch faults on the poison pointer and Daemon.FaultIn restores
// the allocation wherever free frames exist (running direct reclaim if
// none do).
type Tiering struct {
	// LowWater starts eviction when the free-page fraction drops below
	// it; eviction continues until HighWater is restored.
	LowWater  float64
	HighWater float64
	// MaxSwapsPerTick bounds eviction work per wakeup.
	MaxSwapsPerTick int
	// Decay multiplies every heat entry per tick, aging old accesses out
	// (0 < Decay < 1).
	Decay float64
}

// NewTiering returns a tiering policy with Linux-kswapd-like watermarks.
func NewTiering() *Tiering {
	return &Tiering{LowWater: 0.25, HighWater: 0.40, MaxSwapsPerTick: 8, Decay: 0.5}
}

// Name implements Policy.
func (p *Tiering) Name() string { return "tiering" }

// swapMaxBytes mirrors the runtime's swap-slot offset encoding limit (16
// offset bits): larger allocations cannot be swapped.
const swapMaxBytes = 1 << 16

// Tick implements Policy.
func (p *Tiering) Tick(d *Daemon, now uint64) error {
	var entries uint64
	for _, mp := range d.procs {
		mp.mu.Lock()
		for base := range mp.heat {
			mp.heat[base] *= p.Decay
			entries++
		}
		mp.mu.Unlock()
	}
	d.chargeScan(entries * cycPerPageScan)

	alloc := d.K.Alloc
	total := float64(alloc.TotalPages())
	freeFrac := float64(alloc.FreePages()) / total
	if freeFrac >= p.LowWater {
		return nil
	}
	skip := make(map[uint64]bool)
	for swaps := 0; swaps < p.MaxSwapsPerTick && freeFrac < p.HighWater; {
		_, evicted, any := d.evictColdest(p.Name(), skip, now, "cold")
		if !any {
			break
		}
		if evicted {
			swaps++
			freeFrac = float64(alloc.FreePages()) / total
		}
	}
	return nil
}
