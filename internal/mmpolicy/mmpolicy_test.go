package mmpolicy

import (
	"strings"
	"sync"
	"testing"

	"carat/internal/guard"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// TestRareMigrationMatchesModulo pins the refactor that moved the paging
// model's migration pacing here: for a counter advancing by 1, RareMigration
// fires exactly where the old `count % period == 0` injector did.
func TestRareMigrationMatchesModulo(t *testing.T) {
	const period = 25
	r := NewRareMigration(period)
	var got []uint64
	for now := uint64(1); now <= 100; now++ {
		if r.Due(now) {
			got = append(got, now)
		}
	}
	want := []uint64{25, 50, 75, 100}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

func TestRareMigrationZeroPeriodNeverFires(t *testing.T) {
	r := NewRareMigration(0)
	for now := uint64(0); now < 1000; now += 100 {
		if r.Due(now) {
			t.Fatalf("zero-period migrator fired at %d", now)
		}
	}
}

// TestRareMigrationLargeJump: a counter that leaps over several periods
// fires once, then re-arms relative to the observed position (deficit
// semantics), matching the VM safepoint injector's behavior.
func TestRareMigrationLargeJump(t *testing.T) {
	r := NewRareMigration(100)
	if !r.Due(550) {
		t.Fatal("expected fire on first crossing")
	}
	if r.Due(600) {
		t.Fatal("re-armed too early")
	}
	if !r.Due(650) {
		t.Fatal("expected fire one period after last")
	}
}

// testProc hand-builds one managed process: kernel process + runtime wired
// as its move handler.
func testProc(t *testing.T, d *Daemon, k *kernel.Kernel, name string) (*ManagedProc, *kernel.Process, *runtime.Runtime) {
	t.Helper()
	p := k.NewProcess()
	rt := runtime.NewWith(k.Mem, nil, k.Obs)
	p.Handler = rt
	return d.Attach(name, p, rt), p, rt
}

// grantAlloc grants and tracks a heap allocation of n pages.
func grantAlloc(t *testing.T, p *kernel.Process, rt *runtime.Runtime, pages uint64) uint64 {
	t.Helper()
	base, err := p.GrantRegion(pages*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	if err := rt.TrackAlloc(base, pages*kernel.PageSize); err != nil {
		t.Fatalf("track: %v", err)
	}
	return base
}

func freeAlloc(t *testing.T, p *kernel.Process, rt *runtime.Runtime, base, pages uint64) {
	t.Helper()
	if err := rt.TrackFree(base); err != nil {
		t.Fatalf("free: %v", err)
	}
	if err := p.ReleaseRegion(base, pages*kernel.PageSize); err != nil {
		t.Fatalf("release: %v", err)
	}
}

// TestDefragAssemblesTargetRun fragments a small arena checkerboard-style
// and checks the daemon compacts it back to a target contiguous run.
func TestDefragAssemblesTargetRun(t *testing.T) {
	const targetRun = 32
	k := kernel.New(256 * kernel.PageSize)
	d := New(k, NewDefrag(targetRun))
	_, p, rt := testProc(t, d, k, "frag")

	// Fill the arena with single pages, then free every other one:
	// checkerboard of one-page holes, largest free run well under target.
	var bases []uint64
	for {
		base, err := p.GrantRegion(kernel.PageSize, guard.PermRW)
		if err != nil {
			break // arena full
		}
		if err := rt.TrackAlloc(base, kernel.PageSize); err != nil {
			t.Fatal(err)
		}
		bases = append(bases, base)
	}
	for i := 0; i < len(bases); i += 2 {
		freeAlloc(t, p, rt, bases[i], 1)
	}
	before := k.Alloc.FragStats()
	if before.LargestRun >= targetRun {
		t.Fatalf("setup failed to fragment: largest run %d", before.LargestRun)
	}

	var now uint64
	for tick := 0; tick < 50; tick++ {
		consumed, err := d.Tick(now)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		now += consumed + 10_000
		if k.Alloc.FragStats().LargestRun >= targetRun {
			break
		}
	}
	after := k.Alloc.FragStats()
	if after.LargestRun < targetRun {
		t.Fatalf("defrag stalled: largest run %d, want >= %d (before %d)",
			after.LargestRun, targetRun, before.LargestRun)
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Fatalf("table invariants after compaction: %v", err)
	}

	doc := d.Report()
	if doc.Schema != Schema || doc.Version != SchemaVersion {
		t.Fatalf("bad document header: %q v%d", doc.Schema, doc.Version)
	}
	if doc.Totals.Moves == 0 {
		t.Fatal("no moves recorded for a compaction run")
	}
	if doc.FragBefore == nil || doc.FragAfter == nil {
		t.Fatal("document missing frag bracket")
	}
	if doc.FragAfter.LargestRun < doc.FragBefore.LargestRun {
		t.Fatalf("report says fragmentation worsened: %d -> %d",
			doc.FragBefore.LargestRun, doc.FragAfter.LargestRun)
	}
	for _, dec := range doc.Decisions {
		if dec.Action == ActionMove && dec.Cycles == 0 {
			t.Fatalf("move decision with zero modeled cost: %+v", dec)
		}
	}
	if got := d.Stats().DefragMove.Get(); got != doc.Totals.Moves {
		t.Fatalf("metric/document mismatch: %d defrag_moves vs %d moves", got, doc.Totals.Moves)
	}
}

// TestTieringSwapRoundTrip drives the full cold path: pressure pushes the
// coldest allocation out to swap; a later access faults on the poison
// pointer and FaultIn restores it, data intact, escape re-patched.
func TestTieringSwapRoundTrip(t *testing.T) {
	k := kernel.New(64 * kernel.PageSize)
	d := New(k, NewTiering())
	mp, p, rt := testProc(t, d, k, "cold")

	// Root slot page (static) holding the pointer to the cold allocation.
	root, err := p.GrantRegion(kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TrackStatic(root, kernel.PageSize); err != nil {
		t.Fatal(err)
	}
	cold := grantAlloc(t, p, rt, 1)
	const stamp = 0xDEAD_BEEF_CAFE_F00D
	k.Mem.Store64(cold, stamp)
	k.Mem.Store64(root, cold)
	rt.TrackEscape(root, cold)

	// A big hot filler (too large to swap) drops free pages below the low
	// watermark, leaving the untouched cold allocation as the only victim.
	grantAlloc(t, p, rt, 50)

	if _, err := d.Tick(0); err != nil {
		t.Fatal(err)
	}
	ptr := k.Mem.Load64(root)
	if !kernel.IsPoison(ptr) {
		t.Fatalf("cold allocation not evicted: slot holds %#x", ptr)
	}
	if got := d.Stats().SwapOuts.Get(); got != 1 {
		t.Fatalf("swap_outs = %d, want 1", got)
	}

	newBase, cost, err := d.FaultIn(mp, ptr, 5000)
	if err != nil {
		t.Fatalf("fault-in: %v", err)
	}
	if cost == 0 {
		t.Fatal("fault-in reported zero cost")
	}
	if got := k.Mem.Load64(root); got != newBase {
		t.Fatalf("escape not re-patched: slot %#x, new base %#x", got, newBase)
	}
	if got := k.Mem.Load64(newBase); got != uint64(stamp) {
		t.Fatalf("data lost across swap: %#x, want %#x", got, uint64(stamp))
	}
	doc := d.Report()
	if doc.Totals.SwapOuts != 1 || doc.Totals.SwapIns != 1 {
		t.Fatalf("totals = %+v, want one swap-out and one swap-in", doc.Totals)
	}
}

// TestNUMARebalanceMovesToHomeNode: a process whose first touch lands on
// node 0 gets its off-node region migrated back.
func TestNUMARebalanceMovesToHomeNode(t *testing.T) {
	k := kernel.New(128 * kernel.PageSize) // node 0: pages [0,64), node 1: [64,128)
	d := New(k, NewNUMARebalance())
	mp, p, rt := testProc(t, d, k, "numa")

	low := grantAlloc(t, p, rt, 2)
	d.RecordAccess(mp, low) // first touch on node 0 fixes home
	if mp.Home() != 0 {
		t.Fatalf("home = %d, want 0", mp.Home())
	}

	// Land an allocation on node 1 by filling the rest of node 0 first,
	// granting the target, then releasing the filler.
	fillerPages := k.Alloc.FreePages() - (k.Alloc.TotalPages() - 64)
	filler := grantAlloc(t, p, rt, fillerPages)
	remote := grantAlloc(t, p, rt, 2)
	if d.node(remote) != 1 {
		t.Fatalf("setup: remote allocation landed on node %d", d.node(remote))
	}
	freeAlloc(t, p, rt, filler, fillerPages)

	if _, err := d.Tick(0); err != nil {
		t.Fatal(err)
	}
	// The remote allocation must now live on node 0. Find it via the table
	// (the move rebased it).
	onHome := 0
	rt.Table.ForEach(func(a *runtime.Allocation) bool {
		if d.node(a.Base) == 0 {
			onHome++
		}
		return true
	})
	if onHome != 2 {
		t.Fatalf("%d of 2 allocations on home node after rebalance", onHome)
	}
	if got := d.Stats().NUMAMoves.Get(); got == 0 {
		t.Fatal("no NUMA migrations recorded")
	}
	doc := d.Report()
	found := false
	for _, dec := range doc.Decisions {
		if dec.Policy == "numa" && dec.Action == ActionMove &&
			strings.HasPrefix(dec.Reason, "numa rebalance") {
			found = true
		}
	}
	if !found {
		t.Fatal("no numa move decision in the document")
	}
}

// TestHarnessIntegrityUnderAllPolicies is the end-to-end pressure run:
// three workload kinds, all three policies, auto-ticking daemon — and
// afterwards every process still finds every stamp.
func TestHarnessIntegrityUnderAllPolicies(t *testing.T) {
	h, err := NewHarness(HarnessConfig{
		MemBytes:  1 << 21, // 512 pages
		TickEvery: 50_000,
		Procs: []ProcSpec{
			{Name: "churn-a", Kind: Churn, Slots: 48, MaxPages: 4, Seed: 1},
			{Name: "churn-b", Kind: Churn, Slots: 48, MaxPages: 4, Seed: 2},
			{Name: "stream", Kind: Stream, Slots: 12, MaxPages: 2, Seed: 3},
			{Name: "cold", Kind: ColdStore, Slots: 12, MaxPages: 2, Seed: 4},
		},
		Policies: []Policy{NewDefrag(64), NewTiering(), NewNUMARebalance()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(1200); err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	doc := h.D.Report()
	if doc.Ticks == 0 {
		t.Fatal("daemon never ticked")
	}
	if len(doc.Decisions) == 0 {
		t.Fatal("daemon made no decisions under pressure")
	}
	if doc.Totals.DaemonCycles == 0 {
		t.Fatal("daemon cycles unaccounted")
	}
	// The clock must have advanced past the work the daemon charged.
	if h.Cycles < doc.Totals.DaemonCycles {
		t.Fatalf("clock %d behind daemon cost %d", h.Cycles, doc.Totals.DaemonCycles)
	}
}

// TestHarnessPauseAttributionAndPolicyProfile: the same pressure run, with
// the telemetry plumbing attached. World-stop pause cycles must surface in
// the policy document with percentiles, and the daemon's "policy" phase
// must show up in the attached sampler.
func TestHarnessPauseAttributionAndPolicyProfile(t *testing.T) {
	s := obs.NewSampler(2048)
	h, err := NewHarness(HarnessConfig{
		MemBytes:  1 << 21,
		TickEvery: 50_000,
		Procs: []ProcSpec{
			{Name: "churn-a", Kind: Churn, Slots: 48, MaxPages: 4, Seed: 1},
			{Name: "churn-b", Kind: Churn, Slots: 48, MaxPages: 4, Seed: 2},
			{Name: "cold", Kind: ColdStore, Slots: 12, MaxPages: 2, Seed: 4},
		},
		Policies: []Policy{NewDefrag(64), NewTiering()},
		Sampler:  s,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(1200); err != nil {
		t.Fatal(err)
	}
	doc := h.D.Report()
	if doc.PauseCycles == nil {
		t.Fatal("policy document has no pause_cycles histogram after moves/swaps")
	}
	p := doc.PauseCycles
	if p.Count == 0 || p.P99 == 0 || p.Max == 0 {
		t.Fatalf("pause histogram empty: %+v", p)
	}
	if p.P50 > p.P95 || p.P95 > p.P99 || p.P99 > float64(p.Max) {
		t.Fatalf("pause percentiles not ordered: p50 %.0f p95 %.0f p99 %.0f max %d",
			p.P50, p.P95, p.P99, p.Max)
	}
	// World stops are observe-only: the whole machine shares one registry,
	// and every per-cause histogram must sum into the aggregate.
	var perCause uint64
	for _, cause := range runtime.PauseCauses {
		perCause += h.K.Obs.Histogram(runtime.PauseHist + "." + cause).Count()
	}
	if perCause != p.Count {
		t.Errorf("per-cause pause counts sum to %d, aggregate has %d", perCause, p.Count)
	}
	if ps := s.PhaseSamples(); ps["policy"] == 0 {
		t.Errorf("daemon produced no policy-phase samples: %v", ps)
	}
}

// TestHarnessDeterminism: same config, same decisions — the experiments
// depend on reproducible runs.
func TestHarnessDeterminism(t *testing.T) {
	run := func() (uint64, int, Totals) {
		h, err := NewHarness(HarnessConfig{
			MemBytes:  1 << 21,
			TickEvery: 50_000,
			Procs: []ProcSpec{
				{Name: "churn", Kind: Churn, Slots: 48, MaxPages: 4, Seed: 7},
				{Name: "cold", Kind: ColdStore, Slots: 12, MaxPages: 2, Seed: 8},
			},
			Policies: []Policy{NewDefrag(64), NewTiering()},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Run(600); err != nil {
			t.Fatal(err)
		}
		doc := h.D.Report()
		return h.Cycles, len(doc.Decisions), doc.Totals
	}
	c1, n1, t1 := run()
	c2, n2, t2 := run()
	if c1 != c2 || n1 != n2 || t1 != t2 {
		t.Fatalf("nondeterministic run: (%d,%d,%+v) vs (%d,%d,%+v)", c1, n1, t1, c2, n2, t2)
	}
}

// TestConcurrentAccessors exercises the daemon's lock discipline under
// the race detector: ticks, access recording, and report reads in
// parallel.
func TestConcurrentAccessors(t *testing.T) {
	k := kernel.New(256 * kernel.PageSize)
	d := New(k, NewDefrag(16), NewTiering())
	mp, p, rt := testProc(t, d, k, "racer")
	base := grantAlloc(t, p, rt, 1)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.RecordAccess(mp, base)
				_ = mp.Heat(base)
				_ = mp.Home()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := d.Tick(uint64(i) * 1000); err != nil {
				t.Error(err)
				return
			}
			_ = d.Report()
			_ = d.Procs()
		}
	}()
	wg.Wait()
	if got := d.Stats().Accesses.Get(); got != 800 {
		t.Fatalf("accesses = %d, want 800", got)
	}
}
