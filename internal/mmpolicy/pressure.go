package mmpolicy

import (
	"fmt"
	"math/rand"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// Multi-process pressure harness: several synthetic workloads run as
// separate kernel.Processes over one shared physical memory, interleaved
// round-robin on a simulated cycle clock, with the policy daemon ticking
// in between. Each process keeps a root slot array (a static allocation)
// whose slots hold pointers to its heap allocations — tracked escapes, so
// the move and swap machinery patches them and the harness can verify
// integrity afterwards against per-allocation stamps.

// WorkKind selects a workload's allocation behavior.
type WorkKind int

const (
	// Churn allocates and frees variable-sized blocks at random: the
	// fragmentation generator.
	Churn WorkKind = iota
	// Stream pre-allocates its slots and touches them continuously: hot
	// memory that tiering should leave alone.
	Stream
	// ColdStore pre-allocates its slots and then rarely touches them:
	// prime eviction candidates.
	ColdStore
)

func (k WorkKind) String() string {
	switch k {
	case Churn:
		return "churn"
	case Stream:
		return "stream"
	case ColdStore:
		return "coldstore"
	}
	return "unknown"
}

// ProcSpec describes one workload process.
type ProcSpec struct {
	Name  string
	Kind  WorkKind
	Slots int
	// MaxPages is the largest allocation, in pages (default 4; keep at or
	// below 16 so allocations stay swappable).
	MaxPages uint64
	Seed     int64
}

// HarnessConfig sizes the simulated machine and its workloads.
type HarnessConfig struct {
	MemBytes uint64
	// Kernel, when non-nil, attaches the harness to an existing machine
	// instead of creating a private one (MemBytes is then ignored, and the
	// kernel's tracer/injector are left to its owner). caratd uses this to
	// run the policy daemon and its ballast processes over the same
	// physical memory that serves tenant requests.
	Kernel *kernel.Kernel
	// TickEvery wakes the daemon each time the clock advances this many
	// cycles (0 disables auto-ticking; drive Daemon.Tick by hand).
	TickEvery uint64
	Procs     []ProcSpec
	Policies  []Policy
	// Obs, when non-nil, is the shared metrics registry (a private one is
	// created otherwise); Trace, when non-nil, receives kernel, runtime,
	// and policy.* daemon events.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Fault, when non-nil, is threaded through the kernel, every process
	// runtime, and the daemon: the whole machine then runs under the same
	// seeded fault schedule (see internal/fault and scripts/soak).
	Fault *fault.Injector
	// Sampler, when non-nil, receives the daemon's "policy"-phase cycle
	// samples (see Daemon.AttachSampler).
	Sampler *obs.Sampler
	// PauseBudget, when non-zero, is the max-pause budget in modeled
	// cycles: every process runtime switches to the incremental bounded-
	// pause move protocol with the largest batch whose worst-case pause
	// (runtime.PauseBound) fits the budget. 0 keeps the legacy full-stop
	// protocol. Modeled cycles and memory digests are identical either way;
	// only the pause histogram changes shape.
	PauseBudget uint64
}

// WorkProc is one workload process in the harness.
type WorkProc struct {
	MP   *ManagedProc
	Spec ProcSpec

	root    uint64 // base of the slot array (kept current across moves)
	rootLen uint64
	rng     *rand.Rand
	stamps  map[int]uint64
	step    uint64
}

// Harness wires kernel, daemon, and workload processes together.
type Harness struct {
	K     *kernel.Kernel
	D     *Daemon
	Procs []*WorkProc

	// Cycles is the simulated clock, advanced by workload ops, faults, and
	// daemon ticks.
	Cycles    uint64
	tickEvery uint64
	nextTick  uint64
}

// Modeled workload op costs in cycles.
const (
	cycOpIdle  = 100
	cycOpTouch = 200
	cycOpAlloc = 1200
	cycOpFree  = 800
)

// NewHarness builds the machine: one kernel, one daemon running
// cfg.Policies, and one managed process per spec. Stream and ColdStore
// processes pre-allocate their slots.
func NewHarness(cfg HarnessConfig) (*Harness, error) {
	k := cfg.Kernel
	if k == nil {
		k = kernel.NewWith(cfg.MemBytes, cfg.Obs)
		k.SetTracer(cfg.Trace)
		k.SetInjector(cfg.Fault)
	}
	d := New(k, cfg.Policies...)
	d.SetTracer(cfg.Trace)
	d.SetInjector(cfg.Fault)
	d.AttachSampler(cfg.Sampler)
	d.PauseBudget = cfg.PauseBudget
	h := &Harness{K: k, D: d, tickEvery: cfg.TickEvery, nextTick: cfg.TickEvery}
	for _, spec := range cfg.Procs {
		if spec.MaxPages == 0 {
			spec.MaxPages = 4
		}
		p := k.NewProcess()
		rt := runtime.NewWith(k.Mem, nil, k.Obs)
		rt.SetTracer(cfg.Trace)
		rt.SetInjector(cfg.Fault)
		if cfg.PauseBudget > 0 {
			rt.SetIncremental(runtime.BatchForBudget(cfg.PauseBudget))
		}
		p.Handler = rt
		mp := d.Attach(spec.Name, p, rt)
		wp := &WorkProc{
			MP: mp, Spec: spec,
			rng:    rand.New(rand.NewSource(spec.Seed)),
			stamps: make(map[int]uint64),
		}
		wp.rootLen = roundUpPages(uint64(spec.Slots) * 8)
		base, err := p.GrantRegion(wp.rootLen, guard.PermRW)
		if err != nil {
			return nil, fmt.Errorf("mmpolicy: harness: grant %s root: %w", spec.Name, err)
		}
		if err := rt.TrackStatic(base, wp.rootLen); err != nil {
			return nil, err
		}
		wp.root = base
		rt.AddMoveListener(func(src, dst, length uint64) {
			if wp.root >= src && wp.root < src+length {
				wp.root = wp.root - src + dst
			}
		})
		h.Procs = append(h.Procs, wp)
		if spec.Kind == Stream || spec.Kind == ColdStore {
			for i := 0; i < spec.Slots; i++ {
				if err := h.allocSlot(wp, i); err != nil {
					return nil, err
				}
			}
		}
	}
	return h, nil
}

func roundUpPages(n uint64) uint64 {
	return (n + kernel.PageSize - 1) / kernel.PageSize * kernel.PageSize
}

func (wp *WorkProc) slotAddr(i int) uint64 { return wp.root + uint64(i)*8 }

// resolve returns the pointer in slot i, handling a swap poison fault by
// swapping the allocation back in (the harness's page-fault handler).
// Returns 0 for an empty slot.
func (h *Harness) resolve(wp *WorkProc, i int) (uint64, error) {
	val := h.K.Mem.Load64(wp.slotAddr(i))
	if val == 0 || !kernel.IsPoison(val) {
		return val, nil
	}
	_, cost, err := h.D.FaultIn(wp.MP, val, h.Cycles)
	if err != nil {
		return 0, fmt.Errorf("mmpolicy: harness: %s slot %d: %w", wp.Spec.Name, i, err)
	}
	h.Cycles += cost
	// SwapIn patched the slot (a tracked escape) forward.
	return h.K.Mem.Load64(wp.slotAddr(i)), nil
}

// setSlot stores a pointer into slot i and reports the escape.
func (h *Harness) setSlot(wp *WorkProc, i int, val uint64) {
	h.K.Mem.Store64(wp.slotAddr(i), val)
	wp.MP.RT.TrackEscape(wp.slotAddr(i), val)
}

// allocSlot fills slot i with a fresh stamped allocation. Out-of-memory is
// not an error: under pressure the op simply fails and the clock advances.
func (h *Harness) allocSlot(wp *WorkProc, i int) error {
	pages := 1 + uint64(wp.rng.Int63n(int64(wp.Spec.MaxPages)))
	base, err := wp.MP.Proc.GrantRegion(pages*kernel.PageSize, guard.PermRW)
	if err != nil {
		h.Cycles += cycOpIdle
		return nil
	}
	if err := wp.MP.RT.TrackAlloc(base, pages*kernel.PageSize); err != nil {
		return err
	}
	stamp := wp.rng.Uint64() | 1
	h.K.Mem.Store64(base, stamp)
	wp.stamps[i] = stamp
	h.setSlot(wp, i, base)
	h.D.RecordAccess(wp.MP, base)
	h.Cycles += cycOpAlloc
	return nil
}

// freeSlot releases slot i's allocation (faulting it in first if it was
// swapped out — free needs the allocation resident and tracked).
func (h *Harness) freeSlot(wp *WorkProc, i int) error {
	base, err := h.resolve(wp, i)
	if err != nil || base == 0 {
		return err
	}
	a := wp.MP.RT.Table.Covering(base)
	if a == nil {
		return fmt.Errorf("mmpolicy: harness: %s slot %d: untracked %#x", wp.Spec.Name, i, base)
	}
	pages := (a.Len + kernel.PageSize - 1) / kernel.PageSize
	if err := wp.MP.RT.TrackFree(base); err != nil {
		return err
	}
	if err := wp.MP.Proc.ReleaseRegion(base, pages*kernel.PageSize); err != nil {
		return err
	}
	h.setSlot(wp, i, 0)
	wp.MP.forget(base)
	delete(wp.stamps, i)
	h.Cycles += cycOpFree
	return nil
}

// touchSlot simulates work against slot i's allocation.
func (h *Harness) touchSlot(wp *WorkProc, i int) error {
	base, err := h.resolve(wp, i)
	if err != nil || base == 0 {
		h.Cycles += cycOpIdle
		return err
	}
	h.K.Mem.Store64(base+8, wp.rng.Uint64())
	h.D.RecordAccess(wp.MP, base)
	h.Cycles += cycOpTouch
	return nil
}

// stepProc runs one workload op for wp.
func (h *Harness) stepProc(wp *WorkProc) error {
	wp.step++
	switch wp.Spec.Kind {
	case Churn:
		i := wp.rng.Intn(wp.Spec.Slots)
		if h.K.Mem.Load64(wp.slotAddr(i)) == 0 {
			return h.allocSlot(wp, i)
		}
		if wp.rng.Float64() < 0.45 {
			return h.freeSlot(wp, i)
		}
		return h.touchSlot(wp, i)
	case Stream:
		return h.touchSlot(wp, int(wp.step)%wp.Spec.Slots)
	case ColdStore:
		if wp.step%64 == 0 {
			return h.touchSlot(wp, wp.rng.Intn(wp.Spec.Slots))
		}
		h.Cycles += cycOpIdle
		return nil
	}
	return fmt.Errorf("mmpolicy: harness: unknown work kind %d", wp.Spec.Kind)
}

// Run interleaves the workloads for steps rounds (one op per process per
// round), waking the daemon whenever the clock crosses the tick interval.
func (h *Harness) Run(steps int) error {
	for s := 0; s < steps; s++ {
		for _, wp := range h.Procs {
			if err := h.stepProc(wp); err != nil {
				return err
			}
		}
		if h.tickEvery != 0 && h.Cycles >= h.nextTick {
			consumed, err := h.D.Tick(h.Cycles)
			h.Cycles += consumed
			if err != nil {
				return err
			}
			h.nextTick = h.Cycles + h.tickEvery
		}
	}
	return nil
}

// Verify checks end-to-end integrity: every live slot must still reach its
// allocation (faulting swapped ones back in) and find its stamp, and every
// runtime's allocation table must pass its invariant check. This is the
// harness's proof that policy-driven moves and swaps never corrupted a
// process's view of its memory.
func (h *Harness) Verify() error {
	for _, wp := range h.Procs {
		wp.MP.RT.Flush()
		for i := 0; i < wp.Spec.Slots; i++ {
			base, err := h.resolve(wp, i)
			if err != nil {
				return err
			}
			stamp, live := wp.stamps[i]
			if base == 0 {
				if live {
					return fmt.Errorf("mmpolicy: harness: %s slot %d lost its allocation", wp.Spec.Name, i)
				}
				continue
			}
			if !live {
				return fmt.Errorf("mmpolicy: harness: %s slot %d holds %#x but was freed", wp.Spec.Name, i, base)
			}
			if got := h.K.Mem.Load64(base); got != stamp {
				return fmt.Errorf("mmpolicy: harness: %s slot %d: stamp %#x, want %#x",
					wp.Spec.Name, i, got, stamp)
			}
		}
		if err := wp.MP.RT.Table.MaybeCheckInvariants(); err != nil {
			return fmt.Errorf("mmpolicy: harness: %s: %w", wp.Spec.Name, err)
		}
	}
	return nil
}
