// Package mmpolicy is the kernel-side memory-management policy daemon the
// paper's §7 sketches as CARAT's payoff: once moves are cheap and
// runtime-mediated, the kernel can run real services — defragmentation to
// assemble superpage-sized contiguous runs, hot/cold tiering via swap, and
// NUMA-style migration — instead of relying on hardware virtual memory.
//
// The daemon runs on simulated cycles and drives the existing Figure 8
// move protocol (kernel.Process.RequestMove → runtime patch engine) and
// the swap machinery (runtime.SwapOut / SwapIn). It manages any number of
// processes over one shared physical memory; pressure.go adds a
// multi-process workload harness so fragmentation and eviction actually
// occur. Every decision is observable: carat.policy.* metrics, trace
// instants per decision, and a versioned carat.policy JSON document
// (schema.go).
package mmpolicy

import (
	"fmt"
	"math"
	"sync"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/runtime"
)

// RareMigration paces kernel-initiated migrations: it fires once each
// time the driving count (demand allocations for the paging model,
// retired instructions for the VM's move injector) advances Period past
// the previous firing. It implements kernel.Migrator, and replaces the
// hardcoded modulo injector that used to live in kernel/paging.go — the
// Table 2 model and the Figure 9 injector now share this one policy.
type RareMigration struct {
	Period uint64
	next   uint64
}

// NewRareMigration returns a migrator firing once per period. A zero
// period never fires.
func NewRareMigration(period uint64) *RareMigration {
	return &RareMigration{Period: period, next: period}
}

// Due implements kernel.Migrator.
func (r *RareMigration) Due(now uint64) bool {
	if r.Period == 0 || now < r.next {
		return false
	}
	r.next = now + r.Period
	return true
}

// Pending reports what Due(now) would return, without arming the next
// period. Hot paths use it to skip a safepoint entirely when no migration
// is due: Due has no side effect in exactly the cases Pending is false.
func (r *RareMigration) Pending(now uint64) bool {
	return r.Period != 0 && now >= r.next
}

// Policy is one pluggable management strategy the daemon runs per tick.
type Policy interface {
	Name() string
	// Tick examines the system and issues change requests. now is the
	// simulated cycle of the wakeup.
	Tick(d *Daemon, now uint64) error
}

// ManagedProc is one process under the daemon's management: its kernel
// process, its CARAT runtime, and the daemon's per-process bookkeeping
// (access heat for tiering, first-touch NUMA home, live swap slots).
type ManagedProc struct {
	Name string
	Proc *kernel.Process
	RT   *runtime.Runtime

	// mu guards the fields below. It is deliberately separate from the
	// daemon's lock: move listeners fire from inside the runtime's move
	// path (which a daemon tick itself triggers), so they must not need
	// the daemon lock.
	mu        sync.Mutex
	home      int                // NUMA home node, -1 until first touch
	heat      map[uint64]float64 // allocation base -> decayed access count
	swapPages map[uint64]uint64  // swap slot -> pages released at swap-out
}

// Heat returns the current access heat of the allocation based at base.
func (mp *ManagedProc) Heat(base uint64) float64 {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	return mp.heat[base]
}

// Home returns the process's first-touch NUMA home node (-1 if it has not
// touched memory yet).
func (mp *ManagedProc) Home() int {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	return mp.home
}

// forget drops an allocation's heat (freed or evicted).
func (mp *ManagedProc) forget(base uint64) {
	mp.mu.Lock()
	delete(mp.heat, base)
	mp.mu.Unlock()
}

// rebaseHeat relocates heat entries when the runtime moves allocations.
func (mp *ManagedProc) rebaseHeat(src, dst, length uint64) {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	type kv struct {
		base uint64
		heat float64
	}
	var moved []kv
	for base, h := range mp.heat {
		if base >= src && base < src+length {
			moved = append(moved, kv{base, h})
		}
	}
	for _, m := range moved {
		delete(mp.heat, m.base)
		mp.heat[m.base-src+dst] = m.heat
	}
}

// Stats is the daemon's typed view over its carat.policy.* metrics. The
// policy layer owns decision accounting — which service moved/evicted
// what and at what modeled cost; the underlying page and move mechanics
// remain owned by carat.kernel.* and carat.runtime.*.
type Stats struct {
	Ticks      *obs.Counter // daemon wakeups
	Decisions  *obs.Counter // every recorded decision (incl. vetoes)
	DefragMove *obs.Counter // compaction moves issued
	SwapOuts   *obs.Counter // tiering evictions
	SwapIns    *obs.Counter // poison-fault restores
	NUMAMoves  *obs.Counter // home-node migrations
	Accesses   *obs.Counter // RecordAccess calls (the tiering heat feed)
	MoveCycles *obs.Counter // modeled cycles of all decisions executed
	FragScore  *obs.Gauge   // FragStats.Score * 1000, updated per tick
	LargestRun *obs.Gauge   // largest contiguous free run, pages
	FreePages  *obs.Gauge

	// Failure-policy accounting (see tryMove and FaultIn): moves retried
	// after backoff, pages pinned after repeated failures, and swap-ins
	// retried past injected I/O errors.
	Retries     *obs.Counter
	Pins        *obs.Counter
	PinnedPages *obs.Gauge // carat.policy.pinned_pages
	SwapRetries *obs.Counter
}

func newStats(reg *obs.Registry) Stats {
	return Stats{
		Ticks:      reg.Counter("carat.policy.ticks"),
		Decisions:  reg.Counter("carat.policy.decisions"),
		DefragMove: reg.Counter("carat.policy.defrag_moves"),
		SwapOuts:   reg.Counter("carat.policy.tier_swap_outs"),
		SwapIns:    reg.Counter("carat.policy.tier_swap_ins"),
		NUMAMoves:  reg.Counter("carat.policy.numa_migrations"),
		Accesses:   reg.Counter("carat.policy.accesses"),
		MoveCycles: reg.Counter("carat.policy.move_cycles"),
		FragScore:  reg.Gauge("carat.policy.frag_score_milli"),
		LargestRun: reg.Gauge("carat.policy.largest_free_run"),
		FreePages:  reg.Gauge("carat.policy.free_pages"),

		Retries:     reg.Counter("carat.policy.move_retries"),
		Pins:        reg.Counter("carat.policy.pins"),
		PinnedPages: reg.Gauge("carat.policy.pinned_pages"),
		SwapRetries: reg.Counter("carat.policy.swap_retries"),
	}
}

// Modeled daemon costs in cycles, alongside the runtime's move-path
// constants: scans walk the allocator bitmap or region lists; swaps pay
// the world-stop barrier plus copy bandwidth (the runtime models the
// patching itself, the daemon accounts the I/O-side cost).
const (
	cycTickBase    = 500 // wakeup + policy dispatch
	cycPerPageScan = 1   // bitmap / heat / region scan, per page examined
	cycSwapBarrier = 400 // world-stop round trip for a swap
	cycSwapPerByte = 1   // swap copy, bytes per cycle
	cycFaultEntry  = 700 // poison-fault trap + handler dispatch

	// cycSwapSlowMax bounds an injected swap slow-path delay (a seek, a
	// congested device queue); maxSwapRetries bounds the swap-in retry
	// loop past injected I/O errors. Sized so that at the soak harness's
	// rate ceiling exhausting the retries is out of reach.
	cycSwapSlowMax = 5000
	maxSwapRetries = 16
)

// Daemon is the memory-management policy daemon. All entry points are
// mutex-guarded; within one simulated machine it is typically driven from
// the harness's single scheduling loop, but concurrent access is safe.
type Daemon struct {
	K *kernel.Kernel

	// PauseBudget is the max-pause budget (modeled cycles) the run was
	// configured with, recorded into the policy document. Informational:
	// the budget is enforced by the runtimes the harness configures, not by
	// the daemon. 0 = legacy full-stop protocol.
	PauseBudget uint64

	mu        sync.Mutex
	procs     []*ManagedProc
	policies  []Policy
	stats     Stats
	tr        *obs.Tracer
	inj       *fault.Injector
	ticks     int
	decisions []Decision
	totals    Totals
	track     *obs.Track // "policy" phase stream when a sampler is attached

	// Failure policy for issued moves (see tryMove): per-source-page
	// failure records with exponential backoff, and the set of pages
	// pinned after repeated failures.
	moveFails map[uint64]*moveFailure
	pinned    map[uint64]bool

	fragBefore    *kernel.FragStats
	fragCaptured  bool
	pendingCycles uint64 // cycles consumed since the caller last collected
}

// New creates a daemon over k running the given policies each tick, in
// order. Metrics go to k's registry.
func New(k *kernel.Kernel, policies ...Policy) *Daemon {
	return &Daemon{
		K: k, policies: policies, stats: newStats(k.Obs),
		moveFails: make(map[uint64]*moveFailure),
		pinned:    make(map[uint64]bool),
	}
}

// SetTracer attaches an event tracer (nil disables tracing).
func (d *Daemon) SetTracer(tr *obs.Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tr = tr
}

// AttachSampler registers the daemon as a track in the cycle-sampling
// profiler: the daemon's own scan/dispatch cycles plus the modeled cost
// of executed decisions fold into "policy"-phase samples at each tick.
func (d *Daemon) AttachSampler(s *obs.Sampler) {
	if s == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.track = s.NewTrack()
}

// SetInjector attaches a fault injector (nil disables injection). The
// daemon itself injects swap slow-path delays; it also owns the recovery
// side — retrying failed moves with backoff, pinning repeat offenders,
// and retrying swap-ins past injected I/O errors.
func (d *Daemon) SetInjector(in *fault.Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inj = in
}

func (d *Daemon) injector() *fault.Injector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inj
}

// Stats returns the daemon's metric handles.
func (d *Daemon) Stats() Stats { return d.stats }

// Attach places a process (and its runtime) under management. The
// runtime's move listener keeps the daemon's heat map valid across moves.
func (d *Daemon) Attach(name string, p *kernel.Process, rt *runtime.Runtime) *ManagedProc {
	mp := &ManagedProc{
		Name: name, Proc: p, RT: rt,
		home:      -1,
		heat:      make(map[uint64]float64),
		swapPages: make(map[uint64]uint64),
	}
	rt.AddMoveListener(mp.rebaseHeat)
	d.mu.Lock()
	d.procs = append(d.procs, mp)
	d.mu.Unlock()
	return mp
}

// Procs returns the managed processes in attach order.
func (d *Daemon) Procs() []*ManagedProc {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*ManagedProc(nil), d.procs...)
}

// RecordAccess feeds the tiering heat map: the process touched the
// allocation based at base. The first recorded access also fixes the
// process's NUMA home node (first-touch placement, like Linux's default
// NUMA policy).
func (d *Daemon) RecordAccess(mp *ManagedProc, base uint64) {
	d.stats.Accesses.Inc()
	node := d.node(base)
	mp.mu.Lock()
	mp.heat[base]++
	if mp.home < 0 {
		mp.home = node
	}
	mp.mu.Unlock()
}

// node maps a physical address to a modeled NUMA node: node 0 is the
// lower half of physical memory, node 1 the upper half.
func (d *Daemon) node(addr uint64) int {
	half := d.K.Alloc.TotalPages() / 2
	if addr/kernel.PageSize < half {
		return 0
	}
	return 1
}

// nodePages returns node n's page window [start, start+pages).
func (d *Daemon) nodePages(n int) (start, pages uint64) {
	total := d.K.Alloc.TotalPages()
	half := total / 2
	if n == 0 {
		return 1, half - 1 // page 0 is reserved
	}
	return half, total - half
}

// owner finds the managed process whose region set contains addr.
func (d *Daemon) owner(addr uint64) (*ManagedProc, guard.Region, bool) {
	for _, mp := range d.procs {
		if reg, ok := mp.Proc.Regions.Find(addr); ok {
			return mp, reg, true
		}
	}
	return nil, guard.Region{}, false
}

// CaptureFragBefore snapshots the current fragmentation picture as the
// report's "before" state. Tick does this automatically on first wakeup;
// call it explicitly to measure from an earlier point.
func (d *Daemon) CaptureFragBefore() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.captureFragLocked()
}

func (d *Daemon) captureFragLocked() {
	if d.fragCaptured {
		return
	}
	fs := d.K.Alloc.FragStats()
	d.fragBefore = &fs
	d.fragCaptured = true
}

// Tick runs one daemon wakeup at simulated cycle now: every policy
// examines the system and may issue change requests. It returns the
// modeled cycles the wakeup consumed (daemon scans plus executed
// decisions) so the caller can advance its clock.
func (d *Daemon) Tick(now uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.captureFragLocked()
	d.ticks++
	d.stats.Ticks.Inc()
	d.pendingCycles += cycTickBase
	d.totals.DaemonCycles += cycTickBase

	fs := d.K.Alloc.FragStats()
	d.stats.FragScore.Set(uint64(fs.Score * 1000))
	d.stats.LargestRun.Set(fs.LargestRun)
	d.stats.FreePages.Set(fs.FreePages)

	for _, pol := range d.policies {
		start := d.pendingCycles
		if err := pol.Tick(d, now); err != nil {
			return d.collectCycles(), fmt.Errorf("mmpolicy: %s: %w", pol.Name(), err)
		}
		d.tr.SpanAt("policy."+pol.Name(), "policy", now+start, d.pendingCycles-start,
			obs.A("tick", d.ticks))
	}
	if d.track != nil {
		d.track.FoldPhase("policy", d.totals.DaemonCycles+d.totals.MoveCycles)
	}
	return d.collectCycles(), nil
}

func (d *Daemon) collectCycles() uint64 {
	c := d.pendingCycles
	d.pendingCycles = 0
	return c
}

// chargeScan accounts modeled daemon scan work (bitmap walks, heat
// scans). Called by policies during Tick (daemon lock held).
func (d *Daemon) chargeScan(cycles uint64) {
	d.pendingCycles += cycles
	d.totals.DaemonCycles += cycles
}

// record logs one decision: into the document, the metrics registry, and
// the trace stream. Called with the daemon lock held.
func (d *Daemon) record(now uint64, policy, action string, proc string, base, pages, cycles uint64, reason string) {
	d.decisions = append(d.decisions, Decision{
		Tick: d.ticks, Cycle: now, Policy: policy, Action: action,
		Proc: proc, Base: base, Pages: pages, Cycles: cycles, Reason: reason,
	})
	d.pendingCycles += cycles
	d.stats.Decisions.Inc()
	d.stats.MoveCycles.Add(cycles)
	switch action {
	case ActionMove:
		d.totals.Moves++
		d.totals.MoveCycles += cycles
	case ActionSwapOut:
		d.totals.SwapOuts++
		d.totals.MoveCycles += cycles
	case ActionSwapIn:
		d.totals.SwapIns++
		d.totals.MoveCycles += cycles
	case ActionVeto:
		d.totals.Vetoes++
	case ActionPin:
		d.totals.Pins++
	}
	d.tr.InstantAt("policy."+action, "policy", now,
		obs.A("policy", policy), obs.A("proc", proc), obs.A("base", base),
		obs.A("pages", pages), obs.A("cycles", cycles), obs.A("reason", reason))
}

// Failure policy for policy-issued moves: a page whose move fails is
// retried on later ticks with exponentially growing backoff; after
// maxMoveRetries failures the page is pinned — the daemon stops trying to
// move it, trading layout quality for forward progress.
const (
	maxMoveRetries  = 4
	retryBackoffCyc = 20_000 // first-retry backoff, doubling per failure
)

// moveFailure tracks one source page's move-failure history.
type moveFailure struct {
	fails     int
	nextRetry uint64 // simulated cycle before which no retry is attempted
}

// tryMove wraps Process.RequestMove with the daemon's failure policy. On
// success it returns the result and true; the caller records the success
// decision (callers attach policy-specific reasons). On failure it
// records a veto — or, after repeated failures, a pin — updates the
// backoff state, and returns false. Pinned and backing-off pages return
// false without a decision record, so steady-state skips do not flood the
// document. Caller holds d.mu.
func (d *Daemon) tryMove(mp *ManagedProc, policy string, addr, pages, now uint64) (kernel.MoveResult, bool) {
	page := addr &^ (kernel.PageSize - 1)
	if d.pinned[page] {
		return kernel.MoveResult{}, false
	}
	f := d.moveFails[page]
	if f != nil {
		if now < f.nextRetry {
			return kernel.MoveResult{}, false
		}
		d.stats.Retries.Inc()
	}
	res, err := mp.Proc.RequestMove(addr, pages)
	if err == nil {
		delete(d.moveFails, page)
		return res, true
	}
	if f == nil {
		f = &moveFailure{}
		d.moveFails[page] = f
	}
	f.fails++
	f.nextRetry = now + retryBackoffCyc<<(f.fails-1)
	if f.fails >= maxMoveRetries {
		delete(d.moveFails, page)
		d.pinned[page] = true
		d.stats.Pins.Inc()
		d.stats.PinnedPages.Set(uint64(len(d.pinned)))
		d.record(now, policy, ActionPin, mp.Name, addr, pages, 0, err.Error())
		return kernel.MoveResult{}, false
	}
	d.record(now, policy, ActionVeto, mp.Name, addr, 0, 0, err.Error())
	return kernel.MoveResult{}, false
}

// coldestSwappable returns the swappable allocation with the lowest heat
// across all managed processes. Swappable means: heap (non-static), small
// enough for a swap slot, and page-granular (base and length page-aligned)
// so its frames can be released without touching a neighbor. Caller holds
// d.mu.
func (d *Daemon) coldestSwappable(skip map[uint64]bool) (*ManagedProc, uint64, uint64, bool) {
	var (
		bestProc *ManagedProc
		bestBase uint64
		bestLen  uint64
		bestHeat = math.Inf(1)
	)
	for _, mp := range d.procs {
		mp.mu.Lock()
		mp.RT.Table.ForEach(func(a *runtime.Allocation) bool {
			if a.Static || a.Len > swapMaxBytes || skip[a.Base] {
				return true
			}
			if a.Base%kernel.PageSize != 0 || a.Len%kernel.PageSize != 0 {
				return true
			}
			if h := mp.heat[a.Base]; h < bestHeat {
				bestProc, bestBase, bestLen, bestHeat = mp, a.Base, a.Len, h
			}
			return true
		})
		mp.mu.Unlock()
	}
	return bestProc, bestBase, bestLen, bestProc != nil
}

// evictColdest swaps out the coldest swappable allocation and releases its
// frames — the one reclaim step shared by the background tiering policy
// and the fault path's direct reclaim. It returns the modeled eviction
// cost, whether an eviction happened, and whether any candidate remained
// (false means reclaim is exhausted). A vetoed candidate is added to skip
// and reported as (0, false, true): the caller may retry. Caller holds
// d.mu.
func (d *Daemon) evictColdest(policy string, skip map[uint64]bool, now uint64, reason string) (uint64, bool, bool) {
	mp, base, length, ok := d.coldestSwappable(skip)
	if !ok {
		return 0, false, false
	}
	slot, err := mp.RT.SwapOut(base)
	if err != nil {
		skip[base] = true
		d.record(now, policy, ActionVeto, mp.Name, base, 0, 0, err.Error())
		return 0, false, true
	}
	pages := (length + kernel.PageSize - 1) / kernel.PageSize
	if err := mp.Proc.ReleaseRegion(base, pages*kernel.PageSize); err != nil {
		// The runtime and kernel disagree about this allocation: surface
		// loudly, this must not happen.
		panic(fmt.Sprintf("mmpolicy: release after swap-out: %v", err))
	}
	cost := uint64(cycSwapBarrier) + length*cycSwapPerByte + d.inj.Delay(fault.SwapDelay, cycSwapSlowMax)
	mp.forget(base)
	mp.mu.Lock()
	mp.swapPages[slot] = pages
	mp.mu.Unlock()
	d.record(now, policy, ActionSwapOut, mp.Name, base, pages, cost, reason)
	d.stats.SwapOuts.Inc()
	return cost, true, true
}

// FaultIn handles a poison fault on a swapped pointer (§2.2's fault
// path) at simulated cycle now: it decodes the slot, grants fresh frames,
// and swaps the allocation back in — the runtime patches every poisoned
// pointer forward. If no frames fit, it runs direct reclaim (evicting the
// coldest resident allocations) until the grant succeeds. It returns the
// allocation's new base address and the modeled fault cost in cycles.
func (d *Daemon) FaultIn(mp *ManagedProc, poison uint64, now uint64) (uint64, uint64, error) {
	slot, _, ok := runtime.DecodeSwapPoison(poison)
	if !ok {
		return 0, 0, fmt.Errorf("mmpolicy: fault on non-swap poison %#x", poison)
	}
	length, err := mp.RT.SwappedLen(slot)
	if err != nil {
		return 0, 0, err
	}
	var reclaimCost uint64
	newBase, err := mp.Proc.GrantRegion(length, guard.PermRW)
	if err != nil {
		// Direct reclaim: push other cold memory out to make room.
		d.mu.Lock()
		skip := make(map[uint64]bool)
		for tries := 0; err != nil && tries < 64; tries++ {
			c, evicted, any := d.evictColdest("tiering", skip, now, "direct reclaim")
			if !any {
				break
			}
			if !evicted {
				continue
			}
			reclaimCost += c
			newBase, err = mp.Proc.GrantRegion(length, guard.PermRW)
		}
		d.mu.Unlock()
		if err != nil {
			return 0, 0, fmt.Errorf("mmpolicy: swap-in grant failed after reclaim: %w", err)
		}
	}
	// An injected swap-in I/O error is transient: the fault handler
	// retries, paying another barrier round trip per attempt. Retrying is
	// safe because the runtime checks injection before mutating the slot.
	var retryCost uint64
	err = mp.RT.SwapIn(slot, newBase)
	for attempts := 1; err != nil && fault.Injected(err) && attempts < maxSwapRetries; attempts++ {
		d.stats.SwapRetries.Inc()
		retryCost += cycSwapBarrier
		err = mp.RT.SwapIn(slot, newBase)
	}
	if err != nil {
		// Give the granted frames back before surfacing the failure, so a
		// failed fault-in leaks nothing.
		pgs := (length + kernel.PageSize - 1) / kernel.PageSize
		_ = mp.Proc.ReleaseRegion(newBase, pgs*kernel.PageSize)
		return 0, 0, err
	}
	pages := (length + kernel.PageSize - 1) / kernel.PageSize
	cost := cycFaultEntry + cycSwapBarrier + length*cycSwapPerByte + retryCost +
		d.injector().Delay(fault.SwapDelay, cycSwapSlowMax)
	mp.mu.Lock()
	delete(mp.swapPages, slot)
	mp.mu.Unlock()

	d.mu.Lock()
	d.record(now, "tiering", ActionSwapIn, mp.Name, newBase, pages, cost, "poison fault")
	// The fault and reclaim costs are returned to the caller directly;
	// keep them out of the next Tick's collected cycles so they are not
	// charged twice.
	d.pendingCycles -= cost + reclaimCost
	d.stats.SwapIns.Inc()
	d.mu.Unlock()
	return newBase, cost + reclaimCost, nil
}

// lastBreakdown returns the runtime's most recent per-move cost
// decomposition — the Table 3 numbers for a move the daemon just issued.
func lastBreakdown(rt *runtime.Runtime) runtime.MoveBreakdown {
	if n := len(rt.MoveStats); n > 0 {
		return rt.MoveStats[n-1]
	}
	return runtime.MoveBreakdown{}
}
