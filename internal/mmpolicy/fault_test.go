package mmpolicy

import (
	"testing"

	"carat/internal/fault"
	"carat/internal/kernel"
)

// TestTryMoveRetryBackoffAndPin walks one page through the daemon's whole
// failure policy under a kernel that vetoes every move: first failure,
// silent backoff window, exponentially spaced retries, and finally a pin
// — each stage observable through the carat.policy.* metrics and the
// decision log.
func TestTryMoveRetryBackoffAndPin(t *testing.T) {
	k := kernel.New(1 << 20)
	d := New(k)
	mp, p, rt := testProc(t, d, k, "victim")
	base := grantAlloc(t, p, rt, 1)

	inj := fault.New(1, k.Obs)
	inj.SetRate(fault.KernelVeto, 1) // every negotiation fails
	k.SetInjector(inj)

	try := func(now uint64) bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		_, ok := d.tryMove(mp, "test", base, 1, now)
		return ok
	}

	// First attempt: a plain failure, not a retry. Backoff starts.
	if try(0) {
		t.Fatal("move succeeded under an always-veto kernel")
	}
	if got := d.Stats().Retries.Get(); got != 0 {
		t.Errorf("first failure counted as a retry: %d", got)
	}
	if got := k.Stats.MoveVetoes.Get(); got != 1 {
		t.Fatalf("kernel vetoes = %d, want 1", got)
	}

	// Inside the backoff window the daemon must not even ask the kernel.
	if try(retryBackoffCyc - 1) {
		t.Fatal("backing-off page moved")
	}
	if got := k.Stats.MoveVetoes.Get(); got != 1 {
		t.Errorf("daemon retried inside the backoff window (vetoes = %d)", got)
	}

	// Retries at the exponential boundaries: 20k, 20k+40k, 60k+80k.
	for i, now := range []uint64{
		retryBackoffCyc,
		retryBackoffCyc + retryBackoffCyc<<1,
		retryBackoffCyc + retryBackoffCyc<<1 + retryBackoffCyc<<2,
	} {
		if try(now) {
			t.Fatalf("retry %d succeeded under an always-veto kernel", i+1)
		}
		if got := d.Stats().Retries.Get(); got != uint64(i+1) {
			t.Errorf("carat.policy.move_retries = %d after retry %d", got, i+1)
		}
	}

	// Fourth failure pinned the page.
	if got := d.Stats().Pins.Get(); got != 1 {
		t.Errorf("carat.policy.pins = %d, want 1", got)
	}
	if got := d.Stats().PinnedPages.Get(); got != 1 {
		t.Errorf("carat.policy.pinned_pages = %d, want 1", got)
	}
	if len(d.moveFails) != 0 {
		t.Error("pinned page still carries a failure record")
	}

	// A pinned page is skipped silently — even with faults disabled the
	// daemon never asks the kernel about it again.
	inj.SetRate(fault.KernelVeto, 0)
	vetoes := k.Stats.MoveVetoes.Get()
	if try(1 << 40) {
		t.Fatal("pinned page moved")
	}
	if got := k.Stats.MoveVetoes.Get(); got != vetoes {
		t.Error("daemon issued a move request for a pinned page")
	}

	// The decision log records the terminal pin (and the earlier vetoes).
	doc := d.Report()
	if doc.Totals.Pins != 1 {
		t.Errorf("decision-log pins = %d, want 1", doc.Totals.Pins)
	}
	var pins int
	for _, dec := range doc.Decisions {
		if dec.Action == ActionPin {
			pins++
			if dec.Base != base {
				t.Errorf("pin recorded for base %#x, want %#x", dec.Base, base)
			}
		}
	}
	if pins != 1 {
		t.Errorf("pin decisions = %d, want 1", pins)
	}
	if inj.InjectedCount() == 0 {
		t.Error("carat.fault.injected not advanced")
	}
}

// TestTryMoveRecoversAfterTransientFailure: one injected veto, then the
// fault clears. The retry after backoff succeeds and the failure record
// is dropped — no pin, no lingering backoff state.
func TestTryMoveRecoversAfterTransientFailure(t *testing.T) {
	k := kernel.New(1 << 20)
	d := New(k)
	mp, p, rt := testProc(t, d, k, "victim")
	base := grantAlloc(t, p, rt, 1)

	inj := fault.New(1, k.Obs)
	k.SetInjector(inj)
	inj.Arm(fault.KernelVeto, 1)

	d.mu.Lock()
	if _, ok := d.tryMove(mp, "test", base, 1, 0); ok {
		t.Fatal("armed veto did not fail the move")
	}
	res, ok := d.tryMove(mp, "test", base, 1, retryBackoffCyc)
	d.mu.Unlock()
	if !ok {
		t.Fatal("retry after a transient failure did not succeed")
	}
	if res.Dst == base {
		t.Error("successful retry did not relocate the page")
	}
	if got := d.Stats().Retries.Get(); got != 1 {
		t.Errorf("carat.policy.move_retries = %d, want 1", got)
	}
	if d.Stats().Pins.Get() != 0 || len(d.pinned) != 0 {
		t.Error("transient failure escalated to a pin")
	}
	if len(d.moveFails) != 0 {
		t.Error("failure record survived a successful retry")
	}
}
