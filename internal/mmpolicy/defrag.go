package mmpolicy

import (
	"carat/internal/kernel"
)

// Defrag is the compaction policy (§7 "defragmentation for superpages"):
// when the largest contiguous free run drops below TargetRun pages, it
// picks the page window cheapest to vacate, isolates it from allocation
// (so move destinations cannot land inside it), and issues change
// requests until the window — a superpage candidate — is free.
type Defrag struct {
	// TargetRun is the contiguous free run to assemble, in pages. 512
	// 4 KB pages would make a 2 MB superpage; the experiments use 64 to
	// keep simulated memories small.
	TargetRun uint64
	// MaxMovesPerTick bounds compaction work per wakeup, so the daemon
	// amortizes the cost over many ticks instead of stalling the system.
	MaxMovesPerTick int
}

// NewDefrag returns a defragmentation policy assembling targetRun pages.
func NewDefrag(targetRun uint64) *Defrag {
	return &Defrag{TargetRun: targetRun, MaxMovesPerTick: 8}
}

// Name implements Policy.
func (p *Defrag) Name() string { return "defrag" }

// Tick implements Policy.
func (p *Defrag) Tick(d *Daemon, now uint64) error {
	fs := d.K.Alloc.FragStats()
	d.chargeScan(fs.TotalPages * cycPerPageScan)
	if p.TargetRun == 0 || fs.LargestRun >= p.TargetRun || fs.FreePages < p.TargetRun {
		return nil
	}
	start, ok := p.bestWindow(d)
	if !ok {
		return nil
	}
	// Isolate the window: the kernel's destination negotiation allocates
	// through the same PageAllocator, so without isolation a move's
	// destination could land inside the run we are assembling.
	d.K.Alloc.Isolate(start, p.TargetRun)
	defer d.K.Alloc.ClearIsolation()

	moves := 0
	pg, end := start, start+p.TargetRun
	for pg < end && moves < p.MaxMovesPerTick {
		addr := pg * kernel.PageSize
		if !d.K.Alloc.Reserved(addr) {
			pg++
			continue
		}
		mp, reg, ok := d.owner(addr)
		if !ok {
			// An unmanaged (unmovable) page: this window cannot be
			// assembled; give up until the layout changes.
			return nil
		}
		res, ok := d.tryMove(mp, p.Name(), addr, 1, now)
		if !ok {
			// Vetoed (e.g. no destination fits, or an injected failure),
			// backing off, or pinned. Skip past the owning region and keep
			// draining what we can.
			pg = reg.End() / kernel.PageSize
			continue
		}
		moves++
		bd := lastBreakdown(mp.RT)
		d.record(now, p.Name(), ActionMove, mp.Name, res.Src, res.Pages,
			bd.TotalCycles(), "compaction")
		d.stats.DefragMove.Inc()
		// The move vacated [res.Src, res.Src+res.Pages); rescan from pg.
	}
	return nil
}

// bestWindow slides a TargetRun-sized window over the page bitmap and
// returns the start of the window with the fewest occupied pages —
// cheapest to vacate — skipping windows containing pages the daemon
// cannot move (pages owned by no managed process, and page 0).
func (p *Defrag) bestWindow(d *Daemon) (uint64, bool) {
	total := d.K.Alloc.TotalPages()
	if total <= p.TargetRun {
		return 0, false
	}
	used := make([]bool, total)
	unmovable := make([]bool, total)
	unmovable[0] = true
	for pg := uint64(1); pg < total; pg++ {
		addr := pg * kernel.PageSize
		if d.K.Alloc.Reserved(addr) {
			used[pg] = true
			if _, _, ok := d.owner(addr); !ok {
				unmovable[pg] = true
			}
		}
	}
	d.chargeScan(total * cycPerPageScan)

	bestStart, bestUsed := uint64(0), int(p.TargetRun)+1
	usedCnt, badCnt := 0, 0
	for pg := uint64(0); pg < total; pg++ {
		if used[pg] {
			usedCnt++
		}
		if unmovable[pg] {
			badCnt++
		}
		if pg >= p.TargetRun {
			if used[pg-p.TargetRun] {
				usedCnt--
			}
			if unmovable[pg-p.TargetRun] {
				badCnt--
			}
		}
		if pg >= p.TargetRun-1 {
			start := pg + 1 - p.TargetRun
			if badCnt == 0 && usedCnt < bestUsed {
				bestStart, bestUsed = start, usedCnt
			}
		}
	}
	if bestUsed > int(p.TargetRun) {
		return 0, false
	}
	return bestStart, true
}
