// Package passes implements the CARAT compiler's middle end (paper §4.1):
// guard injection, the three CARAT-specific guard optimizations (hoisting,
// SCEV range merging, AC/DC redundant-guard elimination), allocation and
// escape tracking injection, and a set of "readily available" general
// optimizations (constant folding, DCE, CSE, LICM) used as the Figure 3(a)
// baseline.
//
// The middle end is organized like LLVM's new pass manager: passes are
// function-at-a-time (FuncPass) or module-wide (ModulePass), every
// function carries an analysis cache (analysis.FuncAnalyses), and each
// mutating pass declares which analyses it preserves so the manager
// invalidates only what went stale. Function passes run concurrently over
// a bounded worker pool; output is byte-identical to sequential mode
// because no pass depends on cross-function state and synthesized value
// names use per-function counters.
package passes

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"carat/internal/analysis"
	"carat/internal/ir"
	"carat/internal/obs"
)

// Pass is anything the PassManager can schedule. Concrete passes implement
// FuncPass or ModulePass (or both Setup and FuncPass).
type Pass interface {
	// Name identifies the pass in statistics and logs.
	Name() string
}

// FuncPass transforms one function at a time. RunOnFunc may be called
// concurrently for different functions; it must not touch module-level
// state or other functions (beyond reading callee signatures).
type FuncPass interface {
	Pass
	// RunOnFunc applies the pass to f, looking analyses up through fa and
	// recording statistics in the function's own stats.
	RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error
	// Preserves declares the analyses this pass keeps valid; the manager
	// invalidates everything else (closed over dependencies) after the
	// pass runs on a function.
	Preserves() analysis.Preserved
}

// ModulePass transforms the whole module serially and acts as a barrier
// between parallel function stages.
type ModulePass interface {
	Pass
	RunOnModule(m *ir.Module, stats *Stats) error
}

// ModuleSetup is an optional hook for a FuncPass that needs serial
// module-level preparation (declaring runtime callees, say) before the
// parallel function sweep begins. Setup hooks run in pass order, before
// any function work.
type ModuleSetup interface {
	Setup(m *ir.Module) error
}

// Stats accumulates compilation statistics; the guard counters regenerate
// Table 1. The pass manager keeps one Stats per function while passes run
// and folds them into the module total (in m.Funcs order) afterwards, so
// the counters are deterministic under parallel compilation.
type Stats struct {
	// GuardsInjected is the number of guards inserted by guard injection,
	// by kind.
	GuardsInjected int
	LoadGuards     int
	StoreGuards    int
	CallGuards     int

	// Guard optimization accounting. Each originally injected guard is
	// attributed to at most one optimization, mirroring Table 1's columns.
	Hoisted   int // Opt 1: moved to a preheader
	Merged    int // Opt 2: folded into a range guard
	Removed   int // Opt 3: eliminated as redundant
	RangeNew  int // range guards created by Opt 2
	Untouched int // computed by FinishGuardStats

	// GuardsRemaining is the static guard count after all optimizations.
	GuardsRemaining int

	// Tracking instrumentation counts.
	AllocCallbacks  int
	FreeCallbacks   int
	EscapeCallbacks int

	// General optimization counts.
	Folded    int
	DCEd      int
	CSEd      int
	LICMMoved int

	// attributed tracks which guards have already been credited to one of
	// the optimizations, so a guard that is hoisted and later merged or
	// removed counts once (Table 1 attributes each guard to one column).
	// Guards are function-local, so the map is scoped to one function's
	// Stats and dies with it; it never enters the merged module totals.
	attributed map[*ir.Instr]bool
}

// Attribute credits guard g to an optimization, returning false when the
// guard was already credited (the caller must then not bump its counter).
func (s *Stats) Attribute(g *ir.Instr) bool {
	if s.attributed == nil {
		s.attributed = make(map[*ir.Instr]bool)
	}
	if s.attributed[g] {
		return false
	}
	s.attributed[g] = true
	return true
}

// Merge folds one function's statistics into s. Only the integer counters
// transfer; the attribution map stays with the per-function value.
func (s *Stats) Merge(o *Stats) {
	s.GuardsInjected += o.GuardsInjected
	s.LoadGuards += o.LoadGuards
	s.StoreGuards += o.StoreGuards
	s.CallGuards += o.CallGuards
	s.Hoisted += o.Hoisted
	s.Merged += o.Merged
	s.Removed += o.Removed
	s.RangeNew += o.RangeNew
	s.AllocCallbacks += o.AllocCallbacks
	s.FreeCallbacks += o.FreeCallbacks
	s.EscapeCallbacks += o.EscapeCallbacks
	s.Folded += o.Folded
	s.DCEd += o.DCEd
	s.CSEd += o.CSEd
	s.LICMMoved += o.LICMMoved
}

// FinishGuardStats derives the Table 1 row fields after all passes ran.
func (s *Stats) FinishGuardStats(m *ir.Module) {
	remaining := 0
	for _, f := range m.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.OpGuard {
				remaining++
			}
		})
	}
	s.GuardsRemaining = remaining
	s.Untouched = s.GuardsInjected - s.Hoisted - s.Merged - s.Removed
	if s.Untouched < 0 {
		s.Untouched = 0
	}
}

// Fraction helpers for Table 1, all relative to the injected guard count.

// FracRemaining returns GuardsRemaining / GuardsInjected ("Opt. Guards").
func (s *Stats) FracRemaining() float64 { return s.frac(s.GuardsRemaining) }

// FracUntouched returns the fraction of guards untouched by any opt.
func (s *Stats) FracUntouched() float64 { return s.frac(s.Untouched) }

// FracHoisted returns the fraction of guards optimized by hoisting (Opt 1).
func (s *Stats) FracHoisted() float64 { return s.frac(s.Hoisted) }

// FracMerged returns the fraction optimized by scalar evolution (Opt 2).
func (s *Stats) FracMerged() float64 { return s.frac(s.Merged) }

// FracRemoved returns the fraction eliminated as redundant (Opt 3).
func (s *Stats) FracRemoved() float64 { return s.frac(s.Removed) }

func (s *Stats) frac(n int) float64 {
	if s.GuardsInjected == 0 {
		return 0
	}
	return float64(n) / float64(s.GuardsInjected)
}

// PassManager schedules an ordered list of passes over a module. Runs of
// consecutive function passes form a stage executed function-at-a-time
// over a bounded worker pool; module passes are serial barriers. Each
// function keeps its analysis cache and Stats across stages, so an
// analysis computed by Opt 1 and preserved through Opt 2 is a cache hit,
// and guard attribution spans the whole pipeline.
type PassManager struct {
	Passes []Pass
	// Stats holds the module totals after Run: per-function statistics
	// folded in m.Funcs order plus anything module passes recorded.
	Stats Stats
	// Workers bounds how many functions are transformed concurrently.
	// 0 means GOMAXPROCS; 1 compiles sequentially. Output is
	// byte-identical across worker counts.
	Workers int

	// Obs, when non-nil, receives the carat.passes.* counters after Run.
	Obs *obs.Registry

	cache analysis.CacheStats
}

// funcState is one function's slice of the compilation: its statistics,
// analysis cache, and the first error a stage produced for it.
type funcState struct {
	stats Stats
	fa    *analysis.FuncAnalyses
	err   error
}

// Run applies every pass in order. Function passes verify each function
// they touched; a final module-wide Verify runs before stats are merged.
func (pm *PassManager) Run(m *ir.Module) error {
	start := time.Now()
	// Serial module preparation, in pass order, before any function work.
	for _, p := range pm.Passes {
		if s, ok := p.(ModuleSetup); ok {
			if err := s.Setup(m); err != nil {
				return fmt.Errorf("passes: %s: %w", p.Name(), err)
			}
		}
	}
	fstate := make(map[*ir.Func]*funcState)
	for i := 0; i < len(pm.Passes); {
		if mp, ok := pm.Passes[i].(ModulePass); ok {
			if err := mp.RunOnModule(m, &pm.Stats); err != nil {
				return fmt.Errorf("passes: %s: %w", mp.Name(), err)
			}
			if err := m.Verify(); err != nil {
				return fmt.Errorf("passes: after %s: %w", mp.Name(), err)
			}
			// A module pass may rewrite anything: drop all cached analyses.
			for _, st := range fstate {
				st.fa.InvalidateAll()
			}
			i++
			continue
		}
		var stage []FuncPass
		for i < len(pm.Passes) {
			fp, ok := pm.Passes[i].(FuncPass)
			if !ok {
				break
			}
			stage = append(stage, fp)
			i++
		}
		if len(stage) == 0 {
			return fmt.Errorf("passes: %s implements neither FuncPass nor ModulePass", pm.Passes[i].Name())
		}
		if err := pm.runFuncStage(m, stage, fstate); err != nil {
			return err
		}
	}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("passes: %w", err)
	}
	// Deterministic fold: per-function stats merge in m.Funcs order.
	for _, f := range m.Funcs {
		if st := fstate[f]; st != nil {
			pm.Stats.Merge(&st.stats)
		}
	}
	pm.Stats.FinishGuardStats(m)
	pm.publish(time.Since(start))
	return nil
}

// runFuncStage applies a run of function passes to every defined function,
// in parallel when Workers allows. Each function runs the full stage
// (pass, invalidate, verify) independently; errors are reported for the
// first failing function in m.Funcs order.
func (pm *PassManager) runFuncStage(m *ir.Module, stage []FuncPass, fstate map[*ir.Func]*funcState) error {
	var work []*ir.Func
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if fstate[f] == nil {
			fstate[f] = &funcState{fa: analysis.NewFuncAnalyses(f, &pm.cache)}
		}
		work = append(work, f)
	}
	runOne := func(f *ir.Func) error {
		st := fstate[f]
		for _, fp := range stage {
			if err := fp.RunOnFunc(f, &st.stats, st.fa); err != nil {
				return fmt.Errorf("passes: %s: @%s: %w", fp.Name(), f.Name, err)
			}
			st.fa.Invalidate(fp.Preserves())
			if err := ir.VerifyFunc(f); err != nil {
				return fmt.Errorf("passes: after %s: %w", fp.Name(), err)
			}
		}
		return nil
	}
	workers := pm.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers <= 1 {
		for _, f := range work {
			if err := runOne(f); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan *ir.Func)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range jobs {
				fstate[f].err = runOne(f)
			}
		}()
	}
	for _, f := range work {
		jobs <- f
	}
	close(jobs)
	wg.Wait()
	for _, f := range work {
		if err := fstate[f].err; err != nil {
			return err
		}
	}
	return nil
}

// AnalysisStats returns the analysis-cache counters accumulated so far.
func (pm *PassManager) AnalysisStats() analysis.CacheSnapshot { return pm.cache.Snapshot() }

// publish adds this module's compile-time statistics to the registry.
// Counters accumulate across modules sharing a registry (a bench sweep).
func (pm *PassManager) publish(wall time.Duration) {
	if pm.Obs == nil {
		return
	}
	add := func(name string, v int) {
		if v > 0 {
			pm.Obs.Counter("carat.passes." + name).Add(uint64(v))
		}
	}
	add("guards_injected", pm.Stats.GuardsInjected)
	add("guards_remaining", pm.Stats.GuardsRemaining)
	add("guards_hoisted", pm.Stats.Hoisted)
	add("guards_merged", pm.Stats.Merged)
	add("guards_removed", pm.Stats.Removed)
	add("alloc_callbacks", pm.Stats.AllocCallbacks)
	add("free_callbacks", pm.Stats.FreeCallbacks)
	add("escape_callbacks", pm.Stats.EscapeCallbacks)
	cs := pm.cache.Snapshot()
	pm.Obs.Counter("carat.passes.analysis.hits").Add(cs.Hits)
	pm.Obs.Counter("carat.passes.analysis.misses").Add(cs.Misses)
	pm.Obs.Counter("carat.passes.analysis.invalidations").Add(cs.Invalidations)
	pm.Obs.Counter("carat.passes.analysis.recomputes").Add(cs.Recomputes)
	pm.Obs.Counter("carat.passes.compile_wall_ns").Add(uint64(wall.Nanoseconds()))
}

// Level selects how much of the CARAT pipeline to run.
type Level int

// Pipeline levels.
const (
	// LevelNone runs only general optimizations (the uninstrumented
	// baseline of Figures 3, 6, 7, 9).
	LevelNone Level = iota
	// LevelGuardsOnly adds guard injection with general optimizations
	// only (Figure 3a).
	LevelGuardsOnly
	// LevelGuardsOpt adds the CARAT-specific guard optimizations
	// (Figure 3b, Table 1).
	LevelGuardsOpt
	// LevelTracking is guards + optimizations + allocation/escape
	// tracking: the full CARAT build (Figures 5-7, 9; Tables 2-3).
	LevelTracking
	// LevelTrackingOnly is tracking without guards, used to isolate
	// tracking overhead exactly as Figure 7 does.
	LevelTrackingOnly
)

// Build returns the standard pass manager for a level.
func Build(level Level) *PassManager {
	p := &PassManager{}
	add := func(ps ...Pass) { p.Passes = append(p.Passes, ps...) }
	add(&ConstFold{}, &CSE{}, &LICM{}, &DCE{})
	switch level {
	case LevelNone:
	case LevelGuardsOnly:
		add(&GuardInject{})
	case LevelGuardsOpt:
		add(&GuardInject{}, &HoistGuards{}, &MergeGuards{}, &RedundantGuards{})
	case LevelTracking:
		add(&GuardInject{}, &HoistGuards{}, &MergeGuards{}, &RedundantGuards{}, &TrackingInject{})
	case LevelTrackingOnly:
		add(&TrackingInject{})
	}
	return p
}

// replaceUses rewrites every use of old as new throughout the function.
func replaceUses(f *ir.Func, old, new ir.Value) {
	f.ForEachInstr(func(in *ir.Instr) {
		for i, a := range in.Args {
			if a == old {
				in.Args[i] = new
			}
		}
	})
}
