// Package passes implements the CARAT compiler's middle end (paper §4.1):
// guard injection, the three CARAT-specific guard optimizations (hoisting,
// SCEV range merging, AC/DC redundant-guard elimination), allocation and
// escape tracking injection, and a set of "readily available" general
// optimizations (constant folding, DCE, CSE, LICM) used as the Figure 3(a)
// baseline.
package passes

import (
	"fmt"

	"carat/internal/ir"
	"carat/internal/obs"
)

// Pass transforms a module in place.
type Pass interface {
	// Name identifies the pass in statistics and logs.
	Name() string
	// Run applies the pass, recording anything of interest in stats.
	Run(m *ir.Module, stats *Stats) error
}

// Stats accumulates per-module compilation statistics; the guard counters
// regenerate Table 1.
type Stats struct {
	// GuardsInjected is the number of guards inserted by guard injection,
	// by kind.
	GuardsInjected int
	LoadGuards     int
	StoreGuards    int
	CallGuards     int

	// Guard optimization accounting. Each originally injected guard is
	// attributed to at most one optimization, mirroring Table 1's columns.
	Hoisted   int // Opt 1: moved to a preheader
	Merged    int // Opt 2: folded into a range guard
	Removed   int // Opt 3: eliminated as redundant
	RangeNew  int // range guards created by Opt 2
	Untouched int // computed by FinishGuardStats

	// GuardsRemaining is the static guard count after all optimizations.
	GuardsRemaining int

	// Tracking instrumentation counts.
	AllocCallbacks  int
	FreeCallbacks   int
	EscapeCallbacks int

	// General optimization counts.
	Folded    int
	DCEd      int
	CSEd      int
	LICMMoved int

	// attributed tracks which guards have already been credited to one of
	// the optimizations, so a guard that is hoisted and later merged
	// counts once (Table 1 attributes each guard to one column).
	attributed map[*ir.Instr]bool
}

// Attribute credits guard g to an optimization, returning false when the
// guard was already credited (the caller must then not bump its counter).
func (s *Stats) Attribute(g *ir.Instr) bool {
	if s.attributed == nil {
		s.attributed = make(map[*ir.Instr]bool)
	}
	if s.attributed[g] {
		return false
	}
	s.attributed[g] = true
	return true
}

// FinishGuardStats derives the Table 1 row fields after all passes ran.
func (s *Stats) FinishGuardStats(m *ir.Module) {
	remaining := 0
	for _, f := range m.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.OpGuard {
				remaining++
			}
		})
	}
	s.GuardsRemaining = remaining
	s.Untouched = s.GuardsInjected - s.Hoisted - s.Merged - s.Removed
	if s.Untouched < 0 {
		s.Untouched = 0
	}
}

// Fraction helpers for Table 1, all relative to the injected guard count.

// FracRemaining returns GuardsRemaining / GuardsInjected ("Opt. Guards").
func (s *Stats) FracRemaining() float64 { return s.frac(s.GuardsRemaining) }

// FracUntouched returns the fraction of guards untouched by any opt.
func (s *Stats) FracUntouched() float64 { return s.frac(s.Untouched) }

// FracHoisted returns the fraction of guards optimized by hoisting (Opt 1).
func (s *Stats) FracHoisted() float64 { return s.frac(s.Hoisted) }

// FracMerged returns the fraction optimized by scalar evolution (Opt 2).
func (s *Stats) FracMerged() float64 { return s.frac(s.Merged) }

// FracRemoved returns the fraction eliminated as redundant (Opt 3).
func (s *Stats) FracRemoved() float64 { return s.frac(s.Removed) }

func (s *Stats) frac(n int) float64 {
	if s.GuardsInjected == 0 {
		return 0
	}
	return float64(n) / float64(s.GuardsInjected)
}

// Pipeline is an ordered list of passes with shared statistics. Stats stays
// a plain value type (compilation is single-threaded and per-module); when
// Obs is set, Run additionally publishes the totals as carat.passes.*
// counters so compile-time accounting lands in the same registry as the
// runtime metrics.
type Pipeline struct {
	Passes []Pass
	Stats  Stats

	// Obs, when non-nil, receives the carat.passes.* counters after Run.
	Obs *obs.Registry
}

// Run applies every pass in order, verifying the module after each one.
func (p *Pipeline) Run(m *ir.Module) error {
	for _, ps := range p.Passes {
		if err := ps.Run(m, &p.Stats); err != nil {
			return fmt.Errorf("passes: %s: %w", ps.Name(), err)
		}
		if err := m.Verify(); err != nil {
			return fmt.Errorf("passes: after %s: %w", ps.Name(), err)
		}
	}
	p.Stats.FinishGuardStats(m)
	p.publish()
	return nil
}

// publish adds this module's compile-time statistics to the registry.
// Counters accumulate across modules sharing a registry (a bench sweep).
func (p *Pipeline) publish() {
	if p.Obs == nil {
		return
	}
	add := func(name string, v int) {
		if v > 0 {
			p.Obs.Counter("carat.passes." + name).Add(uint64(v))
		}
	}
	add("guards_injected", p.Stats.GuardsInjected)
	add("guards_remaining", p.Stats.GuardsRemaining)
	add("guards_hoisted", p.Stats.Hoisted)
	add("guards_merged", p.Stats.Merged)
	add("guards_removed", p.Stats.Removed)
	add("alloc_callbacks", p.Stats.AllocCallbacks)
	add("free_callbacks", p.Stats.FreeCallbacks)
	add("escape_callbacks", p.Stats.EscapeCallbacks)
}

// Level selects how much of the CARAT pipeline to run.
type Level int

// Pipeline levels.
const (
	// LevelNone runs only general optimizations (the uninstrumented
	// baseline of Figures 3, 6, 7, 9).
	LevelNone Level = iota
	// LevelGuardsOnly adds guard injection with general optimizations
	// only (Figure 3a).
	LevelGuardsOnly
	// LevelGuardsOpt adds the CARAT-specific guard optimizations
	// (Figure 3b, Table 1).
	LevelGuardsOpt
	// LevelTracking is guards + optimizations + allocation/escape
	// tracking: the full CARAT build (Figures 5-7, 9; Tables 2-3).
	LevelTracking
	// LevelTrackingOnly is tracking without guards, used to isolate
	// tracking overhead exactly as Figure 7 does.
	LevelTrackingOnly
)

// Build returns the standard pipeline for a level.
func Build(level Level) *Pipeline {
	p := &Pipeline{}
	add := func(ps ...Pass) { p.Passes = append(p.Passes, ps...) }
	add(&ConstFold{}, &CSE{}, &LICM{}, &DCE{})
	switch level {
	case LevelNone:
	case LevelGuardsOnly:
		add(&GuardInject{})
	case LevelGuardsOpt:
		add(&GuardInject{}, &HoistGuards{}, &MergeGuards{}, &RedundantGuards{})
	case LevelTracking:
		add(&GuardInject{}, &HoistGuards{}, &MergeGuards{}, &RedundantGuards{}, &TrackingInject{})
	case LevelTrackingOnly:
		add(&TrackingInject{})
	}
	return p
}

// replaceUses rewrites every use of old as new throughout the function.
func replaceUses(f *ir.Func, old, new ir.Value) {
	f.ForEachInstr(func(in *ir.Instr) {
		for i, a := range in.Args {
			if a == old {
				in.Args[i] = new
			}
		}
	})
}
