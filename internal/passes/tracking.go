package passes

import (
	"carat/internal/analysis"
	"carat/internal/ir"
)

// TrackingInject inserts the CARAT runtime callbacks (§4.1.2):
//
//   - after every call to an allocation function: carat.alloc(ptr, size)
//   - before every call to a deallocation function: carat.free(ptr)
//   - after every alloca: carat.alloc(ptr, size) — stack allocations are
//     allocations too in the CARAT model
//   - after every store of a pointer-typed value: carat.escape(loc, value)
//
// Static allocations (globals) are recorded by the loader at program load
// time, not by instrumentation.
//
// The callback declarations are module mutations, so they happen in the
// serial Setup hook; the per-function instrumentation then runs in the
// parallel function sweep.
type TrackingInject struct {
	allocCB, freeCB, escCB *ir.Func
}

// Name implements Pass.
func (*TrackingInject) Name() string { return "carat-tracking" }

// Setup implements ModuleSetup: declare the runtime callbacks once, before
// any function is instrumented concurrently.
func (t *TrackingInject) Setup(m *ir.Module) error {
	t.allocCB = m.DeclareFunc(ir.FnTrackAlloc, ir.Void, ir.Ptr, ir.I64)
	t.freeCB = m.DeclareFunc(ir.FnTrackFree, ir.Void, ir.Ptr)
	t.escCB = m.DeclareFunc(ir.FnTrackEscape, ir.Void, ir.Ptr, ir.Ptr)
	return nil
}

// Preserves implements FuncPass. Inserted calls and size multiplies are
// new values (and real calls), so everything derived from instruction
// contents — alias, ranges, invariance, SCEV — goes stale; only block
// structure survives.
func (*TrackingInject) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (t *TrackingInject) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	for _, b := range f.Blocks {
		// Iterate over a snapshot: insertions must not be revisited.
		snapshot := append([]*ir.Instr(nil), b.Instrs...)
		for _, in := range snapshot {
			switch {
			case in.Op == ir.OpCall && in.Callee != nil && ir.IsAllocFn(in.Callee.Name):
				size := allocSizeValue(f, b, in)
				cb := &ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: t.allocCB,
					Args: []ir.Value{in, size}}
				insertAfter(b, cb, in)
				stats.AllocCallbacks++

			case in.Op == ir.OpCall && in.Callee != nil && in.Callee.Name == ir.FnFree:
				cb := &ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: t.freeCB,
					Args: []ir.Value{in.Args[0]}}
				b.InsertBefore(cb, in)
				stats.FreeCallbacks++

			case in.Op == ir.OpAlloca:
				size := allocaSizeValue(f, b, in)
				cb := &ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: t.allocCB,
					Args: []ir.Value{in, size}}
				insertAfter(b, cb, in)
				stats.AllocCallbacks++

			case in.Op == ir.OpStore && in.Args[0].Type().IsPtr():
				// A pointer was copied into memory: an escape (§2.2).
				cb := &ir.Instr{Op: ir.OpCall, Typ: ir.Void, Callee: t.escCB,
					Args: []ir.Value{in.Args[1], in.Args[0]}}
				insertAfter(b, cb, in)
				stats.EscapeCallbacks++
			}
		}
	}
	return nil
}

// insertAfter places in immediately after pos within b. If pos is the
// block terminator (it never is for the cases above), this panics via
// InsertBefore's invariants.
func insertAfter(b *ir.Block, in, pos *ir.Instr) {
	for i, x := range b.Instrs {
		if x == pos {
			if i+1 == len(b.Instrs) {
				b.Append(in)
			} else {
				b.InsertBefore(in, b.Instrs[i+1])
			}
			return
		}
	}
	panic("passes: insertAfter: position not in block")
}

// allocSizeValue returns the byte size of a malloc/calloc result as a
// Value, inserting a multiply before the call for calloc.
func allocSizeValue(f *ir.Func, b *ir.Block, call *ir.Instr) ir.Value {
	if call.Callee.Name == ir.FnMalloc {
		return call.Args[0]
	}
	// calloc(n, size)
	mul := &ir.Instr{Op: ir.OpMul, Name: f.FreshName("tk"), Typ: ir.I64,
		Args: []ir.Value{call.Args[0], call.Args[1]}}
	b.InsertBefore(mul, call)
	return mul
}

// allocaSizeValue returns the byte size of an alloca as a Value.
func allocaSizeValue(f *ir.Func, b *ir.Block, al *ir.Instr) ir.Value {
	elem := al.Elem.Size()
	if c, ok := al.Args[0].(*ir.Const); ok {
		return ir.ConstInt(ir.I64, c.Int*elem)
	}
	mul := &ir.Instr{Op: ir.OpMul, Name: f.FreshName("tk"), Typ: ir.I64,
		Args: []ir.Value{al.Args[0], ir.ConstInt(ir.I64, elem)}}
	b.InsertBefore(mul, al)
	return mul
}
