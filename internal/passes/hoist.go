package passes

import (
	"carat/internal/analysis"
	"carat/internal/ir"
)

// HoistGuards is Optimization 1 (§4.1.1): a guard whose address is
// loop-invariant is moved into the loop preheader, so it executes once per
// loop entry instead of once per iteration. Call guards are hoisted out of
// loops that perform no stack allocation. The pass applies itself
// recursively: after an inner loop's guards move to its preheader, a later
// iteration can move them out of the enclosing loop.
type HoistGuards struct{}

// Name implements Pass.
func (*HoistGuards) Name() string { return "carat-hoist" }

// hoistPreserved: moving a guard changes no block structure (CFG, domtree,
// loop forest survive), introduces no new values (alias facts and range
// memos survive), but does change what executes inside each loop body, so
// invariance and SCEV are not preserved.
var hoistPreserved = analysis.Preserve(analysis.IDCFG, analysis.IDDom,
	analysis.IDLoops, analysis.IDAlias, analysis.IDRanges)

// Preserves implements FuncPass.
func (*HoistGuards) Preserves() analysis.Preserved { return hoistPreserved }

// RunOnFunc implements FuncPass.
func (*HoistGuards) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	for {
		if hoistFunc(f, stats, fa) == 0 {
			break
		}
		// Another sweep follows over the mutated loop bodies: drop what
		// this pass does not keep valid before re-querying invariance.
		fa.Invalidate(hoistPreserved)
	}
	return nil
}

// hoistFunc performs one innermost-to-outermost hoisting sweep and returns
// how many guards moved. Stats.Attribute ensures each original guard counts
// at most once toward the Opt 1 statistics even when hoisted through
// several loop levels.
func hoistFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) int {
	cfg := fa.CFG()
	dom := fa.Dom()
	loops := fa.Loops()
	moved := 0
	all := loops.All()
	for i := len(all) - 1; i >= 0; i-- { // innermost first
		l := all[i]
		ph := l.Preheader(cfg)
		if ph == nil {
			continue
		}
		inv := fa.Invariance(l)
		latches := l.Latches(cfg)
		stackFree := inv.StackAllocFree()
		for _, b := range l.Ordered {
			for j := 0; j < len(b.Instrs); j++ {
				in := b.Instrs[j]
				if in.Op != ir.OpGuard {
					continue
				}
				// The guarded path must run every iteration; otherwise
				// hoisting would guard an access that may never happen,
				// turning a legal run into a fault.
				if !dominatesAll(dom, b, latches) {
					continue
				}
				ok := false
				switch in.Kind {
				case ir.GuardCall:
					// Safe when the loop allocates no stack: the footprint
					// check result cannot change across iterations.
					ok = stackFree
				case ir.GuardLoad, ir.GuardStore, ir.GuardRange, ir.GuardRangeStore:
					ok = inv.Invariant(in.Args[0]) && inv.Invariant(in.Args[1]) &&
						operandsAvailable(dom, l, in, ph)
				}
				if !ok {
					continue
				}
				b.Remove(in)
				ph.InsertBefore(in, ph.Term())
				// Range guards belong to Opt 2's statistics; each guard
				// is attributed to one optimization only.
				if in.Kind != ir.GuardRange && in.Kind != ir.GuardRangeStore {
					if stats.Attribute(in) {
						stats.Hoisted++
					}
				}
				moved++
				j--
			}
		}
	}
	return moved
}
