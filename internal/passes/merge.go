package passes

import (
	"carat/internal/analysis"
	"carat/internal/ir"
)

// MergeGuards is Optimization 2 (§4.1.1): when a loop walks an affine
// address sequence base + start + k*step for k in [0, trips), the
// per-iteration guards are replaced by a single range guard in the
// preheader checking the lowest and highest address the loop will touch.
// The range extent is computed at run time from the loop bound; the VM
// treats a non-positive extent as a trivially passing guard (the loop body
// never runs).
//
// A second merging rule uses the value-range analysis (the paper combines
// SCEV with a value range analysis): a guard whose index is not affine but
// provably bounded — rnd & (N-1), x urem N — merges into a constant range
// guard over the index's whole addressable window. This is what lets the
// random-access benchmarks (canneal, deepsjeng, xz) amortize their guards.
type MergeGuards struct{}

// Name implements Pass.
func (*MergeGuards) Name() string { return "carat-scev-merge" }

// Preserves implements FuncPass. Merging keeps block structure intact but
// synthesizes new values (range-guard address arithmetic) the precomputed
// alias and range analyses have never seen, so only the structural
// analyses survive.
func (*MergeGuards) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (*MergeGuards) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	mergeFunc(f, stats, fa)
	return nil
}

func mergeFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) {
	cfg := fa.CFG()
	dom := fa.Dom()
	loops := fa.Loops()
	all := loops.All()
	for i := len(all) - 1; i >= 0; i-- { // innermost first
		l := all[i]
		ph := l.Preheader(cfg)
		if ph == nil {
			continue
		}
		scev := fa.SCEV(l) // pulls the loop's invariance facts through the cache
		latches := l.Latches(cfg)

		// Collect mergeable guards grouped by (base, kind irrelevant):
		// every affine guard over the same base and bound merges into one
		// range check covering the union of the per-guard ranges.
		type cand struct {
			g   *ir.Instr
			acc *analysis.AffineAccess
			sz  int64
		}
		ranges := fa.Ranges()
		var cands []cand
		var bounded []boundedCand
		for _, b := range l.Ordered {
			if !dominatesAll(dom, b, latches) {
				continue // conditional accesses cannot be over-guarded
			}
			for _, in := range b.Instrs {
				if in.Op != ir.OpGuard || (in.Kind != ir.GuardLoad && in.Kind != ir.GuardStore) {
					continue
				}
				szc, ok := in.Args[1].(*ir.Const)
				if !ok {
					continue
				}
				if acc, ok := scev.AffineAccessOf(in.Args[0]); ok {
					// The base pointer, bound, and IV start must be
					// available at the preheader.
					if bi, isInstr := acc.Base.(*ir.Instr); isInstr {
						if l.Contains(bi.Block) || !dom.Dominates(bi.Block, ph) {
							continue
						}
					}
					if valueAvailableAt(dom, l, acc.Bound.Bound, ph) &&
						valueAvailableAt(dom, l, acc.Lin.IV.Start, ph) {
						cands = append(cands, cand{g: in, acc: acc, sz: szc.Int})
						continue
					}
				}
				if bc, ok := boundedAccessOf(ranges, dom, l, ph, in, szc.Int); ok {
					bounded = append(bounded, bc)
				}
			}
		}
		for _, c := range cands {
			kind := ir.GuardRange
			if c.g.Kind == ir.GuardStore {
				kind = ir.GuardRangeStore
			}
			lastAdj := c.acc.Bound.LastIVAdjust(l, c.g.Block)
			emitRangeGuard(f, ph, c.acc, c.sz, lastAdj, kind)
			c.g.Block.Remove(c.g)
			if stats.Attribute(c.g) {
				stats.Merged++
			}
			stats.RangeNew++
		}
		// Bounded-index guards over the same (base, window, kind) share
		// one constant range guard in the preheader.
		type key struct {
			base    ir.Value
			lo, sp  int64
			isStore bool
		}
		emitted := map[key]bool{}
		for _, bc := range bounded {
			k := key{bc.base, bc.loOff, bc.span, bc.isStore}
			if !emitted[k] {
				emitted[k] = true
				kind := ir.GuardRange
				if bc.isStore {
					kind = ir.GuardRangeStore
				}
				emitConstRangeGuard(f, ph, bc.base, bc.loOff, bc.span, kind)
				stats.RangeNew++
			}
			bc.g.Block.Remove(bc.g)
			if stats.Attribute(bc.g) {
				stats.Merged++
			}
		}
	}
}

// boundedCand is a guard mergeable by the bounded-index rule.
type boundedCand struct {
	g       *ir.Instr
	base    ir.Value
	loOff   int64 // constant byte offset of the lowest address
	span    int64 // constant byte extent
	isStore bool
}

// boundedAccessOf recognizes a guard whose address is gep(base, idx) with
// a loop-invariant, preheader-available base and an index whose unsigned
// value range is bounded: the guard merges into a constant range guard
// over [base + lo*elem, base + hi*elem + size).
func boundedAccessOf(ranges *analysis.Ranges, dom *analysis.DomTree, l *analysis.Loop,
	ph *ir.Block, g *ir.Instr, size int64) (bc boundedCand, ok bool) {
	gep, isGep := g.Args[0].(*ir.Instr)
	if !isGep || gep.Op != ir.OpGEP || len(gep.Args) != 2 {
		return bc, false
	}
	base := gep.Args[0]
	if bi, isInstr := base.(*ir.Instr); isInstr {
		if l.Contains(bi.Block) || !dom.Dominates(bi.Block, ph) {
			return bc, false
		}
	}
	iv := ranges.Of(gep.Args[1])
	if iv.IsFull() {
		return bc, false
	}
	elem := gep.Elem.Size()
	// Keep spans sane: a window above 1 GiB is no longer a useful merge.
	const maxSpan = int64(1) << 30
	if iv.Hi > uint64(maxSpan)/uint64(elem) {
		return bc, false
	}
	lo := int64(iv.Lo) * elem
	hi := int64(iv.Hi)*elem + size
	bc.g = g
	bc.base = base
	bc.loOff = lo
	bc.span = hi - lo
	bc.isStore = g.Kind == ir.GuardStore
	return bc, true
}

// emitConstRangeGuard inserts, before ph's terminator, a range guard over
// [base+loOff, base+loOff+span).
func emitConstRangeGuard(f *ir.Func, ph *ir.Block, base ir.Value, loOff, span int64, kind ir.GuardKind) {
	term := ph.Term()
	lo := &ir.Instr{Op: ir.OpGEP, Name: f.FreshName("rg"), Typ: ir.Ptr, Elem: ir.I8,
		Args: []ir.Value{base, ir.ConstInt(ir.I64, loOff)}}
	ph.InsertBefore(lo, term)
	gu := &ir.Instr{Op: ir.OpGuard, Typ: ir.Void, Kind: kind,
		Args: []ir.Value{lo, ir.ConstInt(ir.I64, span)}}
	ph.InsertBefore(gu, term)
}

// valueAvailableAt reports whether v is usable at block ph.
func valueAvailableAt(dom *analysis.DomTree, l *analysis.Loop, v ir.Value, ph *ir.Block) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	return !l.Contains(in.Block) && dom.Dominates(in.Block, ph)
}

// emitRangeGuard inserts, before ph's terminator:
//
//	lowOff  = K*start + C
//	lo      = gep i8 base, lowOff
//	span    = K*(bound+lastAdj) + C + size - lowOff
//	guard range lo, span
//
// where bound+lastAdj is the maximum induction value the guarded access
// observes (see TripBound.LastIVAdjust). All arithmetic is i64; the VM
// treats a non-positive span as a trivially passing guard.
func emitRangeGuard(f *ir.Func, ph *ir.Block, acc *analysis.AffineAccess, size, lastAdj int64, kind ir.GuardKind) {
	term := ph.Term()
	ins := func(in *ir.Instr) *ir.Instr {
		ph.InsertBefore(in, term)
		return in
	}
	newv := func(op ir.Op, a, b ir.Value) *ir.Instr {
		return ins(&ir.Instr{Op: op, Name: f.FreshName("rg"), Typ: ir.I64, Args: []ir.Value{a, b}})
	}
	k := ir.ConstInt(ir.I64, acc.Lin.K)
	cOff := ir.ConstInt(ir.I64, acc.Lin.C)

	start := widenToI64(f, ph, term, acc.Lin.IV.Start)
	bound := widenToI64(f, ph, term, acc.Bound.Bound)

	lowOff := newv(ir.OpAdd, newv(ir.OpMul, k, start), cOff)
	lo := ins(&ir.Instr{Op: ir.OpGEP, Name: f.FreshName("rg"), Typ: ir.Ptr, Elem: ir.I8,
		Args: []ir.Value{acc.Base, lowOff}})

	hiConst := acc.Lin.K*lastAdj + acc.Lin.C + size
	hiOff := newv(ir.OpAdd, newv(ir.OpMul, k, bound), ir.ConstInt(ir.I64, hiConst))
	span := newv(ir.OpSub, hiOff, lowOff)
	ins(&ir.Instr{Op: ir.OpGuard, Typ: ir.Void, Kind: kind, Args: []ir.Value{lo, span}})
}

// widenToI64 sign-extends v to i64 at the insertion point if needed.
func widenToI64(f *ir.Func, ph *ir.Block, term *ir.Instr, v ir.Value) ir.Value {
	if v.Type().Equal(ir.I64) {
		return v
	}
	if c, ok := v.(*ir.Const); ok {
		return ir.ConstInt(ir.I64, c.Int)
	}
	in := &ir.Instr{Op: ir.OpSExt, Name: f.FreshName("rgw"), Typ: ir.I64, Args: []ir.Value{v}}
	ph.InsertBefore(in, term)
	return in
}
