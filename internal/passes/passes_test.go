package passes

import (
	"strings"
	"testing"

	"carat/internal/analysis"
	"carat/internal/ir"
)

func countGuards(m *ir.Module) (total int, byKind map[ir.GuardKind]int) {
	byKind = make(map[ir.GuardKind]int)
	for _, f := range m.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op == ir.OpGuard {
				total++
				byKind[in.Kind]++
			}
		})
	}
	return
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

const loopSrc = `module "m"
global @a : [1024 x i64]
global @lim : i64
func @f(%n: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %p = gep i64, @a, %i
  %v = load i64, %p
  %lim1 = load i64, @lim
  %v2 = add i64 %v, %lim1
  store i64 %v2, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`

func TestGuardInjectCounts(t *testing.T) {
	m := ir.MustParse(loopSrc)
	pl := &PassManager{Passes: []Pass{&GuardInject{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	total, byKind := countGuards(m)
	// 2 loads + 1 store, no calls.
	if total != 3 || byKind[ir.GuardLoad] != 2 || byKind[ir.GuardStore] != 1 {
		t.Fatalf("guards = %d %v, want 3 (2 load, 1 store)", total, byKind)
	}
	if pl.Stats.GuardsInjected != 3 {
		t.Errorf("stats.GuardsInjected = %d", pl.Stats.GuardsInjected)
	}
	// Guards must immediately precede their accesses.
	f := m.Func("f")
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpGuard && in.Kind == ir.GuardLoad {
				next := b.Instrs[i+1]
				if next.Op != ir.OpLoad || next.Args[0] != in.Args[0] {
					t.Errorf("load guard not adjacent to its load: %s then %s", in, next)
				}
			}
		}
	}
}

func TestGuardInjectCallGuard(t *testing.T) {
	m := ir.MustParse(`module "m"
func @callee(%x: i64) -> i64 {
entry:
  ret i64 %x
}
func @main() -> i64 {
entry:
  %r = call i64 @callee(i64 7)
  ret i64 %r
}`)
	m.Func("callee").StackFootprint = 64
	pl := &PassManager{Passes: []Pass{&GuardInject{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	_, byKind := countGuards(m)
	if byKind[ir.GuardCall] != 1 {
		t.Fatalf("call guards = %d, want 1", byKind[ir.GuardCall])
	}
	var g *ir.Instr
	m.Func("main").ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpGuard {
			g = in
		}
	})
	if c, ok := g.Args[1].(*ir.Const); !ok || c.Int != 64 {
		t.Errorf("call guard footprint = %v, want 64", g.Args[1])
	}
}

func TestGuardInjectSkipsRuntimeCalls(t *testing.T) {
	m := ir.NewModule("m")
	malloc := m.DeclareFunc(ir.FnMalloc, ir.Ptr, ir.I64)
	f := m.AddFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.Call(malloc, b.I64(64))
	b.Ret(nil)
	pl := &PassManager{Passes: []Pass{&GuardInject{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	if total, _ := countGuards(m); total != 0 {
		t.Errorf("runtime call was guarded: %d guards", total)
	}
}

func TestHoistInvariantGuard(t *testing.T) {
	m := ir.MustParse(loopSrc)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &HoistGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	// The @lim load guard has an invariant address: must be hoisted to the
	// preheader (entry). The @a[i] guards are variant and must stay.
	f := m.Func("f")
	var entryGuards, bodyGuards int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpGuard {
				continue
			}
			switch b.Name {
			case "entry":
				entryGuards++
			case "body":
				bodyGuards++
			}
		}
	}
	if entryGuards != 1 {
		t.Errorf("entry guards = %d, want 1 (hoisted @lim guard)", entryGuards)
	}
	if bodyGuards != 2 {
		t.Errorf("body guards = %d, want 2 (variant @a[i] guards)", bodyGuards)
	}
	if pl.Stats.Hoisted != 1 {
		t.Errorf("stats.Hoisted = %d, want 1", pl.Stats.Hoisted)
	}
}

func TestMergeAffineGuards(t *testing.T) {
	m := ir.MustParse(loopSrc)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &MergeGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	_, byKind := countGuards(m)
	// Both @a[i] guards (load+store) merge into range guards in the
	// preheader; a read range and a write range guard must exist.
	if byKind[ir.GuardRange] < 1 || byKind[ir.GuardRangeStore] != 1 {
		t.Fatalf("range guards missing: %v", byKind)
	}
	if byKind[ir.GuardLoad] != 1 { // only the @lim guard remains as a load guard
		t.Errorf("load guards = %d, want 1", byKind[ir.GuardLoad])
	}
	if byKind[ir.GuardStore] != 0 {
		t.Errorf("store guards = %d, want 0", byKind[ir.GuardStore])
	}
	if pl.Stats.Merged != 2 {
		t.Errorf("stats.Merged = %d, want 2", pl.Stats.Merged)
	}
	// Range guards must be in the preheader (entry).
	f := m.Func("f")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpGuard && (in.Kind == ir.GuardRange || in.Kind == ir.GuardRangeStore) {
				if b.Name != "entry" {
					t.Errorf("range guard in ^%s, want entry", b.Name)
				}
			}
		}
	}
}

func TestRedundantGuardElimination(t *testing.T) {
	m := ir.MustParse(`module "m"
global @g : i64
func @f() -> i64 {
entry:
  %a = load i64, @g
  %b = load i64, @g
  store i64 %b, @g
  %c = load i64, @g
  ret i64 %c
}`)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &RedundantGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	_, byKind := countGuards(m)
	// Three load guards on the same address collapse to one; the store
	// guard (different permission) must survive.
	if byKind[ir.GuardLoad] != 1 {
		t.Errorf("load guards = %d, want 1", byKind[ir.GuardLoad])
	}
	if byKind[ir.GuardStore] != 1 {
		t.Errorf("store guards = %d, want 1", byKind[ir.GuardStore])
	}
	if pl.Stats.Removed != 2 {
		t.Errorf("stats.Removed = %d, want 2", pl.Stats.Removed)
	}
}

func TestRedundantAcrossDiamond(t *testing.T) {
	m := ir.MustParse(`module "m"
global @g : i64
func @f(%c: i1) -> i64 {
entry:
  %a = load i64, @g
  condbr %c, ^l, ^r
l:
  %x = load i64, @g
  br ^merge
r:
  br ^merge
merge:
  %y = load i64, @g
  ret i64 %y
}`)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &RedundantGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	total, _ := countGuards(m)
	// entry guard survives; l and merge guards are subsumed (available on
	// all paths from entry).
	if total != 1 {
		t.Errorf("guards remaining = %d, want 1", total)
	}
}

func TestRedundantOneArmNotSubsumed(t *testing.T) {
	m := ir.MustParse(`module "m"
global @g : i64
global @h : i64
func @f(%c: i1) -> i64 {
entry:
  condbr %c, ^l, ^r
l:
  %x = load i64, @h
  br ^merge
r:
  br ^merge
merge:
  %y = load i64, @h
  ret i64 %y
}`)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &RedundantGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	total, _ := countGuards(m)
	// The guard in l is only on one path: the merge guard must survive.
	if total != 2 {
		t.Errorf("guards remaining = %d, want 2", total)
	}
}

func TestRedundantSizeSubsumption(t *testing.T) {
	m := ir.NewModule("m")
	g := m.AddGlobal("g", ir.ArrayOf(ir.I8, 64))
	f := m.AddFunc("f", ir.Void)
	b := ir.NewBuilder(f)
	b.Guard(ir.GuardLoad, g, b.I64(8))  // wide check first
	b.Guard(ir.GuardLoad, g, b.I64(4))  // narrower: subsumed
	b.Guard(ir.GuardLoad, g, b.I64(16)) // wider: NOT subsumed
	b.Ret(nil)
	pl := &PassManager{Passes: []Pass{&RedundantGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	total, _ := countGuards(m)
	if total != 2 {
		t.Errorf("guards remaining = %d, want 2 (8-byte and 16-byte)", total)
	}
}

func TestTrackingInject(t *testing.T) {
	m := ir.MustParse(`module "m"
global @slot : ptr
func @malloc(%sz: i64) -> ptr
func @free(%p: ptr) -> void
func @main() -> i64 {
entry:
  %p = call ptr @malloc(i64 128)
  store ptr %p, @slot
  call void @free(ptr %p)
  %s = alloca i64, 4
  ret i64 0
}`)
	pl := &PassManager{Passes: []Pass{&TrackingInject{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	st := pl.Stats
	if st.AllocCallbacks != 2 { // malloc + alloca
		t.Errorf("alloc callbacks = %d, want 2", st.AllocCallbacks)
	}
	if st.FreeCallbacks != 1 {
		t.Errorf("free callbacks = %d, want 1", st.FreeCallbacks)
	}
	if st.EscapeCallbacks != 1 {
		t.Errorf("escape callbacks = %d, want 1", st.EscapeCallbacks)
	}
	text := m.String()
	for _, want := range []string{"carat.alloc", "carat.free", "carat.escape"} {
		if !strings.Contains(text, want) {
			t.Errorf("instrumented module missing %s", want)
		}
	}
	// The escape callback must come after its store and carry (loc, val).
	main := m.Func("main")
	entry := main.Entry()
	for i, in := range entry.Instrs {
		if in.Op == ir.OpStore {
			next := entry.Instrs[i+1]
			if next.Op != ir.OpCall || next.Callee.Name != ir.FnTrackEscape {
				t.Fatalf("instruction after store is %s, want carat.escape", next)
			}
			if next.Args[0] != in.Args[1] || next.Args[1] != in.Args[0] {
				t.Error("escape callback arguments wrong")
			}
		}
	}
}

func TestTrackingCallocSize(t *testing.T) {
	m := ir.NewModule("m")
	calloc := m.DeclareFunc(ir.FnCalloc, ir.Ptr, ir.I64, ir.I64)
	f := m.AddFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.Call(calloc, b.I64(10), b.I64(8))
	b.Ret(nil)
	pl := &PassManager{Passes: []Pass{&TrackingInject{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	// After constant folding the size argument the callback should see 80;
	// here we just check a mul feeding the callback exists.
	var cb *ir.Instr
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Callee.Name == ir.FnTrackAlloc {
			cb = in
		}
	})
	if cb == nil {
		t.Fatal("no alloc callback for calloc")
	}
	mul, ok := cb.Args[1].(*ir.Instr)
	if !ok || mul.Op != ir.OpMul {
		t.Errorf("calloc size not computed: %v", cb.Args[1])
	}
}

func TestConstFold(t *testing.T) {
	m := ir.MustParse(`module "m"
func @f() -> i64 {
entry:
  %a = add i64 2, 3
  %b = mul i64 %a, 4
  %c = sub i64 %b, 0
  ret i64 %c
}`)
	pl := &PassManager{Passes: []Pass{&ConstFold{}, &DCE{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	if n := f.NumInstrs(); n != 1 {
		t.Errorf("instructions after fold+dce = %d, want 1 (ret)", n)
	}
	ret := f.Entry().Term()
	if c, ok := ret.Args[0].(*ir.Const); !ok || c.Int != 20 {
		t.Errorf("folded value = %v, want 20", ret.Args[0])
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := ir.MustParse(`module "m"
global @g : i64
func @f() -> void {
entry:
  %dead = add i64 1, 2
  store i64 5, @g
  ret void
}`)
	pl := &PassManager{Passes: []Pass{&DCE{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	if countOps(f, ir.OpStore) != 1 {
		t.Error("DCE removed a store")
	}
	if countOps(f, ir.OpAdd) != 0 {
		t.Error("DCE kept dead add")
	}
}

func TestDCEDivByZeroKept(t *testing.T) {
	m := ir.MustParse(`module "m"
func @f(%x: i64) -> void {
entry:
  %d = sdiv i64 %x, 0
  ret void
}`)
	pl := &PassManager{Passes: []Pass{&DCE{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	if countOps(m.Func("f"), ir.OpSDiv) != 1 {
		t.Error("DCE removed a potentially trapping division")
	}
}

func TestCSE(t *testing.T) {
	m := ir.MustParse(`module "m"
global @a : [64 x i64]
func @f(%i: i64) -> i64 {
entry:
  %p1 = gep i64, @a, %i
  %p2 = gep i64, @a, %i
  %v1 = load i64, %p1
  %v2 = load i64, %p2
  %s = add i64 %v1, %v2
  ret i64 %s
}`)
	pl := &PassManager{Passes: []Pass{&CSE{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	if countOps(m.Func("f"), ir.OpGEP) != 1 {
		t.Error("CSE did not merge identical GEPs")
	}
	if pl.Stats.CSEd != 1 {
		t.Errorf("stats.CSEd = %d, want 1", pl.Stats.CSEd)
	}
}

func TestLICMHoistsInvariantArith(t *testing.T) {
	m := ir.MustParse(`module "m"
global @a : [64 x i64]
func @f(%n: i64, %k: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %kk = mul i64 %k, %k
  %p = gep i64, @a, %i
  store i64 %kk, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`)
	pl := &PassManager{Passes: []Pass{&LICM{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	// %kk must have moved to entry (the preheader).
	entry := f.Entry()
	found := false
	for _, in := range entry.Instrs {
		if in.Name == "kk" {
			found = true
		}
	}
	if !found {
		t.Error("LICM did not hoist invariant multiply")
	}
	if pl.Stats.LICMMoved == 0 {
		t.Error("stats.LICMMoved = 0")
	}
}

func TestFullPipelineLevels(t *testing.T) {
	for _, lvl := range []Level{LevelNone, LevelGuardsOnly, LevelGuardsOpt, LevelTracking, LevelTrackingOnly} {
		m := ir.MustParse(loopSrc)
		pl := Build(lvl)
		if err := pl.Run(m); err != nil {
			t.Fatalf("level %d: %v", lvl, err)
		}
		total, byKind := countGuards(m)
		switch lvl {
		case LevelNone, LevelTrackingOnly:
			if total != 0 {
				t.Errorf("level %d has %d guards, want 0", lvl, total)
			}
		case LevelGuardsOnly:
			if total != 3 {
				t.Errorf("level %d has %d guards, want 3", lvl, total)
			}
		case LevelGuardsOpt, LevelTracking:
			// The loop-body load/store guards must have been merged into
			// preheader range guards; no per-iteration store guard remains.
			if byKind[ir.GuardStore] != 0 {
				t.Errorf("level %d: %d store guards remain in loop", lvl, byKind[ir.GuardStore])
			}
			if byKind[ir.GuardRange]+byKind[ir.GuardRangeStore] == 0 {
				t.Errorf("level %d: no range guards produced", lvl)
			}
		}
	}
}

func TestTable1InvariantFractionsSum(t *testing.T) {
	m := ir.MustParse(loopSrc)
	pl := Build(LevelGuardsOpt)
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	s := pl.Stats
	sum := s.FracUntouched() + s.FracHoisted() + s.FracMerged() + s.FracRemoved()
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %f, want 1.0 (untouched %f hoist %f merge %f remove %f)",
			sum, s.FracUntouched(), s.FracHoisted(), s.FracMerged(), s.FracRemoved())
	}
}

func TestPipelineVerifiesAfterEachPass(t *testing.T) {
	// A pass that corrupts a function must be caught by the per-function
	// verifier right after it runs.
	m := ir.MustParse(loopSrc)
	bad := funcPassStub{name: "corrupt", fn: func(f *ir.Func, _ *Stats, _ *analysis.FuncAnalyses) error {
		f.Blocks[0].Instrs = nil // unterminate entry
		return nil
	}}
	pl := &PassManager{Passes: []Pass{bad}}
	if err := pl.Run(m); err == nil {
		t.Error("pass manager did not catch corrupted function")
	}
}

type funcPassStub struct {
	name string
	fn   func(*ir.Func, *Stats, *analysis.FuncAnalyses) error
}

func (p funcPassStub) Name() string                  { return p.name }
func (p funcPassStub) Preserves() analysis.Preserved { return analysis.PreserveNone }
func (p funcPassStub) RunOnFunc(f *ir.Func, s *Stats, fa *analysis.FuncAnalyses) error {
	return p.fn(f, s, fa)
}

func TestBoundedIndexMerge(t *testing.T) {
	// Random masked indices are not affine, but the value-range rule must
	// still merge their guards into one constant range guard.
	m := ir.MustParse(`module "b"
global @tbl : [256 x i64]
global @rng : i64
func @f(%n: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%i1, ^header]
  %r = load i64, @rng
  %r1 = xor i64 %r, 12345
  store i64 %r1, @rng
  %idx = and i64 %r1, 255
  %p = gep i64, @tbl, %idx
  %v = load i64, %p
  store i64 %v, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, %n
  condbr %c, ^header, ^exit
exit:
  ret i64 0
}`)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &MergeGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	_, byKind := countGuards(m)
	// The masked load AND store on @tbl merge; a read-range and a
	// write-range guard appear in the preheader.
	if byKind[ir.GuardRange] < 1 || byKind[ir.GuardRangeStore] != 1 {
		t.Fatalf("bounded merge missing range guards: %v", byKind)
	}
	// Verify the constant window covers exactly the 256-entry table.
	f := m.Func("f")
	found := false
	for _, in := range f.Entry().Instrs {
		if in.Op == ir.OpGuard && in.Kind == ir.GuardRangeStore {
			span := in.Args[1].(*ir.Const).Int
			if span != 255*8+8 {
				t.Errorf("range span = %d, want %d", span, 255*8+8)
			}
			found = true
		}
	}
	if !found {
		t.Error("no rangestore guard in preheader")
	}
	if pl.Stats.Merged < 2 {
		t.Errorf("stats.Merged = %d, want >= 2", pl.Stats.Merged)
	}
}
