package passes

import (
	"reflect"
	"testing"

	"carat/internal/ir"
)

// attrSrc has two loads of the same global: one in the entry block and one
// inside a self-loop. Guard injection guards both; hoisting moves the loop
// guard into the preheader (= entry), where AC/DC then finds it redundant
// against the entry guard. The hoisted-then-removed guard must count toward
// exactly one Table 1 column.
const attrSrc = `module "attr"
global @lim : i64
func @f(%n: i64) -> i64 {
entry:
  %a = load i64, @lim
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^header]
  %b = load i64, @lim
  %next = add i64 %i, 1
  %cmp = icmp slt i64 %next, %b
  condbr %cmp, ^header, ^exit
exit:
  ret i64 %a
}`

func TestGuardAttributedOnce(t *testing.T) {
	m := ir.MustParse(attrSrc)
	pl := &PassManager{Passes: []Pass{&GuardInject{}, &HoistGuards{}, &RedundantGuards{}}}
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	s := &pl.Stats
	if s.GuardsInjected != 2 {
		t.Fatalf("GuardsInjected = %d, want 2", s.GuardsInjected)
	}
	if s.Hoisted != 1 {
		t.Errorf("Hoisted = %d, want 1", s.Hoisted)
	}
	// The hoisted guard was then deleted as redundant, but it was already
	// credited to Opt 1: Removed must stay 0.
	if s.Removed != 0 {
		t.Errorf("Removed = %d, want 0 (guard already attributed to hoisting)", s.Removed)
	}
	if s.GuardsRemaining != 1 {
		t.Errorf("GuardsRemaining = %d, want 1", s.GuardsRemaining)
	}
	if s.Untouched != 1 {
		t.Errorf("Untouched = %d, want 1", s.Untouched)
	}
	if s.Hoisted+s.Merged+s.Removed+s.Untouched != s.GuardsInjected {
		t.Errorf("attribution columns %d+%d+%d+%d do not sum to injected %d",
			s.Hoisted, s.Merged, s.Removed, s.Untouched, s.GuardsInjected)
	}
	// Attribution is per-function state; it must not leak into the merged
	// module totals.
	if s.attributed != nil {
		t.Error("module Stats.attributed is non-nil after Run")
	}
}

func TestAttributeCreditsOnce(t *testing.T) {
	var s Stats
	g := &ir.Instr{Op: ir.OpGuard}
	if !s.Attribute(g) {
		t.Error("first Attribute = false, want true")
	}
	if s.Attribute(g) {
		t.Error("second Attribute = true, want false")
	}
}

func TestAnalysisCacheHitsAcrossOpts(t *testing.T) {
	m := ir.MustParse(loopSrc)
	pl := Build(LevelGuardsOpt)
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	cs := pl.AnalysisStats()
	if cs.Hits == 0 {
		t.Error("analysis cache hits = 0; Opt1→Opt2→Opt3 should share analyses")
	}
	if cs.Misses == 0 {
		t.Error("analysis cache misses = 0; something must have been computed")
	}
	if cs.Invalidations == 0 {
		t.Error("analysis invalidations = 0; mutating passes should drop results")
	}
}

func TestPassManagerWorkersDeterministic(t *testing.T) {
	for _, lvl := range []Level{LevelNone, LevelGuardsOnly, LevelGuardsOpt, LevelTracking} {
		m1 := ir.MustParse(loopSrc)
		p1 := Build(lvl)
		p1.Workers = 1
		if err := p1.Run(m1); err != nil {
			t.Fatal(err)
		}
		m8 := ir.MustParse(loopSrc)
		p8 := Build(lvl)
		p8.Workers = 8
		if err := p8.Run(m8); err != nil {
			t.Fatal(err)
		}
		if m1.String() != m8.String() {
			t.Errorf("level %d: workers=1 and workers=8 produced different IR", lvl)
		}
		if !reflect.DeepEqual(p1.Stats, p8.Stats) {
			t.Errorf("level %d: workers=1 and workers=8 produced different stats", lvl)
		}
	}
}
