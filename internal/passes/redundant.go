package passes

import (
	"carat/internal/analysis"
	"carat/internal/ir"
)

// RedundantGuards is Optimization 3, the paper's AC/DC analysis ("Address
// Checking for Data Custody", §4.1.1): a guard is removed when the same
// (address, at-least-as-large size) has already been checked on every path
// reaching it. The analysis is the available-expressions dataflow over
// pointer definitions: GEN is the guard's (addr, size) fact; nothing kills
// a fact because SSA values are never redefined and kernel-initiated
// mapping changes patch pointers so that a previously validated pointer
// stays valid (§2.2).
type RedundantGuards struct{}

// Name implements Pass.
func (*RedundantGuards) Name() string { return "carat-acdc" }

// guardFact identifies what a guard established.
type guardFact struct {
	addr ir.Value
	kind ir.GuardKind // call guards only subsume call guards
}

// Preserves implements FuncPass. Removing a guard deletes a void
// instruction nothing references: block structure, alias facts, and value
// ranges all survive; only the per-loop analyses (which record loop
// contents) go stale.
func (*RedundantGuards) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops,
		analysis.IDAlias, analysis.IDRanges)
}

// RunOnFunc implements FuncPass.
func (*RedundantGuards) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	acdcFunc(f, stats, fa)
	return nil
}

func acdcFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) {
	// Build the fact universe: one fact per distinct (addr value, kind),
	// carrying the maximum size guaranteed when the fact holds. To stay
	// conservative the fact's size is the MINIMUM of the generating
	// guards' sizes, since availability only promises the smallest check
	// seen on some path... strictly, per-path sizes could differ; we track
	// facts per exact (addr, size) when sizes are constants, which avoids
	// the issue entirely: a guard only subsumes guards with size <= its own
	// generated size facts.
	type factInfo struct {
		id   int
		size int64 // constant size of this fact
	}
	facts := map[guardFact][]factInfo{} // (addr,kind) -> facts by size
	var nFacts int
	factOf := map[*ir.Instr]int{}

	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op != ir.OpGuard {
			return
		}
		szc, ok := in.Args[1].(*ir.Const)
		if !ok {
			return // dynamic sizes participate only as consumers
		}
		key := guardFact{addr: in.Args[0], kind: normKind(in.Kind)}
		for _, fi := range facts[key] {
			if fi.size == szc.Int {
				factOf[in] = fi.id
				return
			}
		}
		fi := factInfo{id: nFacts, size: szc.Int}
		nFacts++
		facts[key] = append(facts[key], fi)
		factOf[in] = fi.id
	})
	if nFacts == 0 {
		return
	}

	cfg := fa.CFG()
	ins := analysis.ForwardMust(cfg, nFacts, func(b *ir.Block, in analysis.Bits) analysis.Bits {
		for _, i := range b.Instrs {
			if i.Op == ir.OpGuard {
				if id, ok := factOf[i]; ok {
					in.Set(id)
				}
			}
		}
		return in
	})

	// subsumes returns whether an available fact set covers guard g.
	subsumes := func(avail analysis.Bits, g *ir.Instr) bool {
		szc, ok := g.Args[1].(*ir.Const)
		if !ok {
			return false
		}
		key := guardFact{addr: g.Args[0], kind: normKind(g.Kind)}
		for _, fi := range facts[key] {
			if fi.size >= szc.Int && avail.Has(fi.id) {
				return true
			}
		}
		return false
	}

	for _, b := range cfg.RPO {
		avail := ins[b].Copy()
		for i := 0; i < len(b.Instrs); i++ {
			g := b.Instrs[i]
			if g.Op != ir.OpGuard {
				continue
			}
			if subsumes(avail, g) {
				b.Remove(g)
				if stats.Attribute(g) {
					stats.Removed++
				}
				i--
				continue
			}
			if id, ok := factOf[g]; ok {
				avail.Set(id)
			}
		}
	}
}

// normKind maps guard kinds onto the permission they establish, so that
// subsumption stays sound: read guards subsume only read guards, write
// guards only write guards, call guards only call guards.
func normKind(k ir.GuardKind) ir.GuardKind {
	switch k {
	case ir.GuardRange:
		return ir.GuardLoad
	case ir.GuardRangeStore:
		return ir.GuardStore
	}
	return k
}
