package passes

import (
	"carat/internal/analysis"
	"carat/internal/ir"
)

// GuardInject conceptually places a guard before every load, store, and
// call instruction (paper §2.2, §4.1.1). Load and store guards validate the
// accessed byte range; a call guard validates that the callee's maximum
// stack footprint stays within a valid region, covering the return-address
// push and the callee's prologue/epilogue accesses.
type GuardInject struct{}

// Name implements Pass.
func (*GuardInject) Name() string { return "guard-inject" }

// Preserves implements FuncPass. Guards are void instructions nothing else
// references: block structure, alias facts, and value ranges all survive.
// The per-loop analyses are not preserved (loop bodies now contain the
// guards, and downstream passes must see them with fresh eyes).
func (*GuardInject) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops,
		analysis.IDAlias, analysis.IDRanges)
}

// RunOnFunc implements FuncPass.
func (*GuardInject) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	for _, b := range f.Blocks {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			var g *ir.Instr
			switch in.Op {
			case ir.OpLoad:
				g = &ir.Instr{
					Op: ir.OpGuard, Typ: ir.Void, Kind: ir.GuardLoad,
					Args: []ir.Value{in.Args[0], ir.ConstInt(ir.I64, in.AccessSize())},
				}
				stats.LoadGuards++
			case ir.OpStore:
				g = &ir.Instr{
					Op: ir.OpGuard, Typ: ir.Void, Kind: ir.GuardStore,
					Args: []ir.Value{in.Args[1], ir.ConstInt(ir.I64, in.AccessSize())},
				}
				stats.StoreGuards++
			case ir.OpCall:
				// Calls into the trusted runtime are not guarded: the
				// runtime is part of the TCB (§2.4) and guarding its
				// own callbacks would recurse.
				if in.Callee != nil && ir.IsRuntimeFn(in.Callee.Name) {
					continue
				}
				foot := in.Callee.StackFootprint
				if foot == 0 {
					foot = DefaultStackFootprint
				}
				g = &ir.Instr{
					Op: ir.OpGuard, Typ: ir.Void, Kind: ir.GuardCall,
					Args: []ir.Value{in.Callee, ir.ConstInt(ir.I64, foot)},
				}
				stats.CallGuards++
			default:
				continue
			}
			b.InsertBefore(g, in)
			stats.GuardsInjected++
			i++ // skip over the instruction we just guarded
		}
	}
	return nil
}

// DefaultStackFootprint is the assumed maximum stack footprint in bytes of
// a function whose frame size has not been computed (return address plus a
// conservative frame estimate). The VM uses the same constant.
const DefaultStackFootprint = 256
