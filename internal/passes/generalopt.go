package passes

import (
	"fmt"

	"carat/internal/analysis"
	"carat/internal/ir"
)

// ConstFold folds instructions whose operands are all constants, and
// simplifies algebraic identities (x+0, x*1, x*0).
type ConstFold struct{}

// Name implements Pass.
func (*ConstFold) Name() string { return "constfold" }

// Preserves implements FuncPass: folding rewrites operands and removes
// instructions without touching block structure.
func (*ConstFold) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (*ConstFold) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	for {
		folded := 0
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				in := b.Instrs[i]
				if c := foldInstr(in); c != nil {
					replaceUses(f, in, c)
					b.Remove(in)
					i--
					folded++
				}
			}
		}
		stats.Folded += folded
		if folded == 0 {
			break
		}
	}
	return nil
}

// foldInstr returns the constant an instruction folds to, or nil.
func foldInstr(in *ir.Instr) *ir.Const {
	if in.Op.IsBinary() && in.Typ.IsInt() {
		a, okA := in.Args[0].(*ir.Const)
		b, okB := in.Args[1].(*ir.Const)
		if okA && okB {
			if v, ok := evalIntBinop(in.Op, a.Int, b.Int); ok {
				return ir.ConstInt(in.Typ, truncToWidth(v, in.Typ.Bits))
			}
		}
		// Identities.
		if okB {
			switch {
			case b.Int == 0 && (in.Op == ir.OpAdd || in.Op == ir.OpSub || in.Op == ir.OpOr ||
				in.Op == ir.OpXor || in.Op == ir.OpShl || in.Op == ir.OpLShr || in.Op == ir.OpAShr):
				if c, ok := in.Args[0].(*ir.Const); ok {
					return c
				}
			case b.Int == 1 && (in.Op == ir.OpMul || in.Op == ir.OpSDiv || in.Op == ir.OpUDiv):
				if c, ok := in.Args[0].(*ir.Const); ok {
					return c
				}
			case b.Int == 0 && in.Op == ir.OpMul:
				return ir.ConstInt(in.Typ, 0)
			case b.Int == 0 && in.Op == ir.OpAnd:
				return ir.ConstInt(in.Typ, 0)
			}
		}
	}
	if in.Op == ir.OpICmp {
		a, okA := in.Args[0].(*ir.Const)
		b, okB := in.Args[1].(*ir.Const)
		if okA && okB && a.Typ.IsInt() {
			return ir.ConstInt(ir.I1, boolToInt(evalICmp(in.Pred, a.Int, b.Int)))
		}
	}
	if in.Op.IsBinary() && in.Typ.IsFloat() {
		a, okA := in.Args[0].(*ir.Const)
		b, okB := in.Args[1].(*ir.Const)
		if okA && okB {
			switch in.Op {
			case ir.OpFAdd:
				return ir.ConstFloat(a.Float + b.Float)
			case ir.OpFSub:
				return ir.ConstFloat(a.Float - b.Float)
			case ir.OpFMul:
				return ir.ConstFloat(a.Float * b.Float)
			case ir.OpFDiv:
				if b.Float != 0 {
					return ir.ConstFloat(a.Float / b.Float)
				}
			}
		}
	}
	if in.Op.IsCast() {
		if a, ok := in.Args[0].(*ir.Const); ok {
			switch in.Op {
			case ir.OpTrunc:
				return ir.ConstInt(in.Typ, truncToWidth(a.Int, in.Typ.Bits))
			case ir.OpZExt:
				src := a.Typ.Bits
				masked := uint64(a.Int)
				if src < 64 {
					masked &= 1<<uint(src) - 1
				}
				return ir.ConstInt(in.Typ, truncToWidth(int64(masked), in.Typ.Bits))
			case ir.OpSExt:
				return ir.ConstInt(in.Typ, a.Int)
			case ir.OpSIToFP:
				return ir.ConstFloat(float64(a.Int))
			case ir.OpFPToSI:
				return ir.ConstInt(in.Typ, int64(a.Float))
			}
		}
	}
	return nil
}

func evalIntBinop(op ir.Op, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.OpSRem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.OpUDiv:
		if b == 0 {
			return 0, false
		}
		return int64(uint64(a) / uint64(b)), true
	case ir.OpURem:
		if b == 0 {
			return 0, false
		}
		return int64(uint64(a) % uint64(b)), true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpLShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	case ir.OpAShr:
		return a >> (uint64(b) & 63), true
	}
	return 0, false
}

func evalICmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	case ir.PredULT:
		return uint64(a) < uint64(b)
	case ir.PredULE:
		return uint64(a) <= uint64(b)
	case ir.PredUGT:
		return uint64(a) > uint64(b)
	case ir.PredUGE:
		return uint64(a) >= uint64(b)
	}
	return false
}

func truncToWidth(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	mask := int64(1)<<uint(bits) - 1
	v &= mask
	// sign-extend back for signed interpretation consistency
	if v&(1<<uint(bits-1)) != 0 {
		v |= ^mask
	}
	if bits == 1 {
		v &= 1
	}
	return v
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// DCE removes instructions whose results are unused and that have no side
// effects, iterating to a fixed point.
type DCE struct{}

// Name implements Pass.
func (*DCE) Name() string { return "dce" }

// Preserves implements FuncPass: removals keep block structure intact.
func (*DCE) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (*DCE) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	for {
		used := make(map[ir.Value]bool)
		f.ForEachInstr(func(in *ir.Instr) {
			for _, a := range in.Args {
				used[a] = true
			}
		})
		removed := 0
		for _, b := range f.Blocks {
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if sideEffectFree(in) && !used[in] {
					b.Remove(in)
					removed++
				}
			}
		}
		stats.DCEd += removed
		if removed == 0 {
			break
		}
	}
	return nil
}

// sideEffectFree reports whether removing in cannot change behaviour
// (assuming its result is unused).
func sideEffectFree(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpCall, ir.OpBr, ir.OpCondBr, ir.OpRet,
		ir.OpUnreachable, ir.OpGuard, ir.OpAlloca:
		return false
	case ir.OpSDiv, ir.OpSRem, ir.OpUDiv, ir.OpURem:
		// May trap on zero divisors; keep unless divisor is a nonzero const.
		c, ok := in.Args[1].(*ir.Const)
		return ok && c.Int != 0
	case ir.OpLoad:
		// A load is observable under CARAT only through its guard, which
		// is separate; the load itself is removable when unused.
		return true
	}
	return true
}

// CSE performs dominance-based common subexpression elimination on pure
// instructions.
type CSE struct{}

// Name implements Pass.
func (*CSE) Name() string { return "cse" }

// Preserves implements FuncPass: merging uses keeps block structure intact.
func (*CSE) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (*CSE) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	cfg := fa.CFG()
	dom := fa.Dom()
	table := make(map[string][]*ir.Instr)
	for _, b := range cfg.RPO {
		for i := 0; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if !pureValueOp(in) {
				continue
			}
			key := exprKey(in)
			replaced := false
			for _, prev := range table[key] {
				if dom.InstrDominates(prev, in) {
					replaceUses(f, in, prev)
					b.Remove(in)
					i--
					stats.CSEd++
					replaced = true
					break
				}
			}
			if !replaced {
				table[key] = append(table[key], in)
			}
		}
	}
	return nil
}

// pureValueOp reports whether in computes a pure value eligible for CSE.
func pureValueOp(in *ir.Instr) bool {
	if in.Op.IsBinary() || in.Op.IsCast() {
		return true
	}
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp, ir.OpGEP, ir.OpSelect:
		return true
	}
	return false
}

// exprKey builds a structural key for an instruction's computation.
func exprKey(in *ir.Instr) string {
	key := fmt.Sprintf("%d/%d/%s", in.Op, in.Pred, in.Typ)
	if in.Elem != nil {
		key += "/" + in.Elem.String()
	}
	for _, a := range in.Args {
		key += "|" + opdKey(a)
	}
	return key
}

func opdKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Const:
		return "c" + x.Ref() + x.Typ.String()
	case *ir.Global:
		return "@" + x.Name
	case *ir.Param:
		return fmt.Sprintf("p%d", x.Idx)
	case *ir.Func:
		return "f" + x.Name
	case *ir.Instr:
		return fmt.Sprintf("i%p", x)
	}
	return "?"
}

// LICM hoists loop-invariant pure computations to loop preheaders. Loads
// are hoisted only when the alias chain proves no in-loop store clobbers
// them and the load is guaranteed to execute (its block dominates every
// latch).
type LICM struct{}

// Name implements Pass.
func (*LICM) Name() string { return "licm" }

// Preserves implements FuncPass: moving instructions to preheaders keeps
// block structure intact but changes loop contents (invariance, SCEV) and
// the homes of values the alias/range analyses memoized.
func (*LICM) Preserves() analysis.Preserved {
	return analysis.Preserve(analysis.IDCFG, analysis.IDDom, analysis.IDLoops)
}

// RunOnFunc implements FuncPass.
func (*LICM) RunOnFunc(f *ir.Func, stats *Stats, fa *analysis.FuncAnalyses) error {
	cfg := fa.CFG()
	dom := fa.Dom()
	loops := fa.Loops()
	// Innermost-first so hoisted code can cascade outward on later runs.
	all := loops.All()
	for i := len(all) - 1; i >= 0; i-- {
		l := all[i]
		ph := l.Preheader(cfg)
		if ph == nil {
			continue
		}
		inv := fa.Invariance(l)
		latches := l.Latches(cfg)
		for _, b := range l.Ordered {
			for j := 0; j < len(b.Instrs); j++ {
				in := b.Instrs[j]
				if !hoistable(in) {
					continue
				}
				if in.Op == ir.OpLoad && !dominatesAll(dom, b, latches) {
					continue
				}
				if !invariantInstr(inv, in) {
					continue
				}
				// Operands must be available at the preheader.
				if !operandsAvailable(dom, l, in, ph) {
					continue
				}
				b.Remove(in)
				ph.InsertBefore(in, ph.Term())
				stats.LICMMoved++
				j--
			}
		}
	}
	return nil
}

func hoistable(in *ir.Instr) bool {
	if in.Op.IsBinary() || in.Op.IsCast() {
		return true
	}
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp, ir.OpGEP, ir.OpSelect, ir.OpLoad:
		return true
	}
	return false
}

// invariantInstr checks the instruction itself (not just a Value use).
func invariantInstr(inv *analysis.Invariance, in *ir.Instr) bool {
	if in.Op == ir.OpLoad {
		return inv.Invariant(in)
	}
	for _, a := range in.Args {
		if !inv.Invariant(a) {
			return false
		}
	}
	return true
}

// operandsAvailable reports whether every operand of in is defined outside
// the loop (so it dominates the preheader) or is a non-instruction value.
func operandsAvailable(dom *analysis.DomTree, l *analysis.Loop, in *ir.Instr, ph *ir.Block) bool {
	for _, a := range in.Args {
		ai, ok := a.(*ir.Instr)
		if !ok {
			continue
		}
		if l.Contains(ai.Block) {
			return false
		}
		if !dom.Dominates(ai.Block, ph) {
			return false
		}
	}
	return true
}

func dominatesAll(dom *analysis.DomTree, b *ir.Block, targets []*ir.Block) bool {
	for _, t := range targets {
		if !dom.Dominates(b, t) {
			return false
		}
	}
	return true
}
