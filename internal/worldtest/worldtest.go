// Package worldtest is the shared conformance suite for implementations of
// runtime.BoundedWorld — the stop-the-world interface the incremental move
// protocol batches through. Both the runtime's test fake and the VM's real
// scheduler must satisfy the same contract: stops and resumes pair up,
// RegSet handles from the opening stop stay valid (and patches through them
// stay visible) across ResumeBatch/StopBatch round trips, and nested stops
// are rejected loudly. The suite lives in its own package so the runtime's
// external tests and the VM's internal tests can drive the identical
// assertions without an import cycle.
package worldtest

import (
	"testing"
	"time"

	"carat/internal/runtime"
)

// FakeRegs is a mutable register file for the fake world.
type FakeRegs struct{ Vals []uint64 }

// Regs implements runtime.RegSet.
func (f *FakeRegs) Regs() []uint64 { return append([]uint64(nil), f.Vals...) }

// SetReg implements runtime.RegSet.
func (f *FakeRegs) SetReg(i int, v uint64) { f.Vals[i] = v }

// Fake is an in-memory BoundedWorld for runtime-level tests: it hands out
// stable handles to its register files and counts every stop and resume so
// tests can assert on the pause structure of an operation.
type Fake struct {
	RegSets []*FakeRegs

	Stops, Resumes           int // full StopTheWorld / ResumeTheWorld
	BatchStops, BatchResumes int // bounded-window round trips
	Suspends, SusResumes     int // ragged per-process suspensions
	stopped                  bool
	suspended                int
}

// NewFake builds a fake world over the given register files.
func NewFake(regs ...*FakeRegs) *Fake { return &Fake{RegSets: regs} }

// StopTheWorld implements runtime.World.
func (f *Fake) StopTheWorld() []runtime.RegSet {
	if f.stopped {
		panic("worldtest: nested world stop")
	}
	f.stopped = true
	f.Stops++
	return f.handles()
}

// ResumeTheWorld implements runtime.World.
func (f *Fake) ResumeTheWorld() { f.stopped = false; f.Resumes++ }

// StopBatch implements runtime.BoundedWorld.
func (f *Fake) StopBatch() []runtime.RegSet {
	if f.stopped {
		panic("worldtest: nested world stop")
	}
	f.stopped = true
	f.BatchStops++
	return f.handles()
}

// ResumeBatch implements runtime.BoundedWorld.
func (f *Fake) ResumeBatch() { f.stopped = false; f.BatchResumes++ }

// Suspend implements Suspender: the fake has no concurrently running
// guest, so suspension just counts and nests.
func (f *Fake) Suspend() (resume func()) {
	f.suspended++
	f.Suspends++
	done := false
	return func() {
		if done {
			return
		}
		done = true
		f.suspended--
		f.SusResumes++
	}
}

func (f *Fake) handles() []runtime.RegSet {
	out := make([]runtime.RegSet, len(f.RegSets))
	for i, r := range f.RegSets {
		out[i] = r
	}
	return out
}

// Conformance drives w through the BoundedWorld contract. The world must be
// running (not stopped) on entry and is left running on return. Register-
// mutation assertions only engage for handles that expose registers; a
// world with no live threads still has its stop/resume structure checked.
func Conformance(t *testing.T, name string, w runtime.BoundedWorld) {
	t.Helper()

	regs := w.StopTheWorld()

	// Nested stops of either flavor are protocol bugs and must panic.
	mustPanic(t, name+": StopTheWorld while stopped", func() { w.StopTheWorld() })
	mustPanic(t, name+": StopBatch while stopped", func() { w.StopBatch() })

	before := make([][]uint64, len(regs))
	for i, rs := range regs {
		before[i] = append([]uint64(nil), rs.Regs()...)
	}

	// One bounded round trip: the window closes, mutators may advance to
	// their next safepoints, the world stops again.
	w.ResumeBatch()
	w.StopBatch()
	mustPanic(t, name+": StopBatch after StopBatch", func() { w.StopBatch() })

	// The handles from the opening stop must still read the same registers.
	for i, rs := range regs {
		now := rs.Regs()
		if len(now) != len(before[i]) {
			t.Errorf("%s: regset %d has %d regs after batch round trip, had %d at stop",
				name, i, len(now), len(before[i]))
			continue
		}
		for j := range now {
			if now[j] != before[i][j] {
				t.Errorf("%s: regset %d reg %d = %#x after batch round trip, was %#x",
					name, i, j, now[j], before[i][j])
			}
		}
	}

	// A patch through an opening-stop handle must stay visible across a
	// further round trip (the incremental protocol patches registers in one
	// window and relies on them in the next).
	for i, rs := range regs {
		if len(before[i]) == 0 {
			continue
		}
		rs.SetReg(0, before[i][0]+0x10_0000)
	}
	w.ResumeBatch()
	w.StopBatch()
	for i, rs := range regs {
		if len(before[i]) == 0 {
			continue
		}
		if got := rs.Regs()[0]; got != before[i][0]+0x10_0000 {
			t.Errorf("%s: regset %d patch lost across batch round trip: reg 0 = %#x, want %#x",
				name, i, got, before[i][0]+0x10_0000)
		}
		rs.SetReg(0, before[i][0]) // restore
	}

	// Pairing: a full resume ends the stop, after which a fresh full stop
	// must succeed and see the same thread population.
	w.ResumeTheWorld()
	regs2 := w.StopTheWorld()
	if len(regs2) != len(regs) {
		t.Errorf("%s: re-stop returned %d regsets, first stop returned %d",
			name, len(regs2), len(regs))
	}
	w.ResumeTheWorld()
}

// Suspender is the per-process half of the ragged-safepoint protocol: a
// world that can park ONE process's guest execution at a safepoint from an
// external goroutine, returning an idempotent resume. The VM scheduler and
// the worldtest fake both implement it.
type Suspender interface {
	Suspend() (resume func())
}

// SuspendConformance drives s through the suspension contract: pairing,
// nesting (the process stays parked until the LAST suspension resumes),
// and idempotent resume functions. The process must not be suspended on
// entry and is left unsuspended on return.
func SuspendConformance(t *testing.T, name string, s Suspender) {
	t.Helper()

	// Single suspension pairs with its resume; double resume is a no-op.
	r := s.Suspend()
	r()
	r()

	// Nesting: two suspensions stack; each resume releases one.
	r1 := s.Suspend()
	r2 := s.Suspend()
	r1()
	r1() // idempotent mid-stack
	r2()

	// After full release, a fresh suspension must still work.
	r3 := s.Suspend()
	r3()
	_ = name
}

// RaggedIsolation asserts the core multi-core invariant: suspending
// process A must not block process B. It suspends a, then drives run()
// — which must execute process B's workload to completion — on its own
// goroutine. If B's block-head fast path wrongly acknowledges A's stop
// request, run() hangs and the watchdog fails the test. a is resumed
// before return.
func RaggedIsolation(t *testing.T, name string, a Suspender, run func() error) {
	t.Helper()
	resume := a.Suspend()
	defer resume()

	done := make(chan error, 1)
	go func() { done <- run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("%s: process B failed while A was suspended: %v", name, err)
		}
	case <-time.After(30 * time.Second):
		t.Errorf("%s: process B blocked by process A's suspension (ragged stop leaked)", name)
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	fn()
}
