// Package signing implements CARAT's binary signing (paper §2.2, §4.1):
// the compiler toolchain signs the produced module so the kernel can
// validate its provenance before loading it — the same trust scheme as
// .NET's signed CIL bytecode, realized here with ed25519 over the
// canonical textual form of the module.
package signing

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"

	"carat/internal/ir"
)

// Toolchain is a compiler identity: a signing key pair. A kernel trusts a
// set of toolchain public keys.
type Toolchain struct {
	Name string
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewToolchain generates a toolchain identity using the given entropy
// source (crypto/rand.Reader in production, a seeded reader in tests).
func NewToolchain(name string, entropy io.Reader) (*Toolchain, error) {
	pub, priv, err := ed25519.GenerateKey(entropy)
	if err != nil {
		return nil, fmt.Errorf("signing: keygen: %w", err)
	}
	return &Toolchain{Name: name, pub: pub, priv: priv}, nil
}

// Public returns the toolchain's public key.
func (tc *Toolchain) Public() ed25519.PublicKey { return tc.pub }

// SignedModule is a module plus its provenance signature: the artifact the
// kernel receives ("Carat Binary (signed)" in Figure 1b).
type SignedModule struct {
	Module    *ir.Module
	Toolchain string
	Digest    [32]byte
	Sig       []byte
}

// digest canonicalizes the module (its printed form) and hashes it.
func digest(m *ir.Module) [32]byte {
	return sha256.Sum256([]byte(m.String()))
}

// Sign produces the signed binary for m.
func (tc *Toolchain) Sign(m *ir.Module) *SignedModule {
	d := digest(m)
	return &SignedModule{
		Module:    m,
		Toolchain: tc.Name,
		Digest:    d,
		Sig:       ed25519.Sign(tc.priv, d[:]),
	}
}

// ErrUntrusted is returned when no trusted key validates the signature.
var ErrUntrusted = errors.New("signing: module not signed by a trusted toolchain")

// ErrTampered is returned when the module no longer matches its digest.
var ErrTampered = errors.New("signing: module digest mismatch (tampered after signing)")

// TrustStore is the kernel's set of trusted toolchain public keys.
type TrustStore struct {
	keys map[string]ed25519.PublicKey
}

// NewTrustStore returns an empty store.
func NewTrustStore() *TrustStore {
	return &TrustStore{keys: make(map[string]ed25519.PublicKey)}
}

// Trust adds a toolchain's public key.
func (ts *TrustStore) Trust(name string, pub ed25519.PublicKey) {
	ts.keys[name] = pub
}

// Verify checks that sm was signed by a trusted toolchain and that the
// module has not been modified since signing. This is the load-time check
// of §2.2 ("the kernel first validates the signature on the binary, and
// then decides whether to trust the compiler ... that built it").
func (ts *TrustStore) Verify(sm *SignedModule) error {
	if digest(sm.Module) != sm.Digest {
		return ErrTampered
	}
	pub, ok := ts.keys[sm.Toolchain]
	if !ok {
		return fmt.Errorf("%w: unknown toolchain %q", ErrUntrusted, sm.Toolchain)
	}
	if !ed25519.Verify(pub, sm.Digest[:], sm.Sig) {
		return fmt.Errorf("%w: bad signature from %q", ErrUntrusted, sm.Toolchain)
	}
	return nil
}

// Fingerprint renders a short human-readable key fingerprint.
func Fingerprint(pub ed25519.PublicKey) string {
	h := sha256.Sum256(pub)
	return hex.EncodeToString(h[:8])
}
