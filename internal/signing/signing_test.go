package signing

import (
	"math/rand"
	"testing"

	"carat/internal/ir"
)

// detRand is a deterministic entropy source for tests.
type detRand struct{ r *rand.Rand }

func (d detRand) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(d.r.Intn(256))
	}
	return len(p), nil
}

func newTC(t *testing.T, name string, seed int64) *Toolchain {
	tc, err := NewToolchain(name, detRand{rand.New(rand.NewSource(seed))})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func testModule() *ir.Module {
	m := ir.NewModule("signed")
	f := m.AddFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.I64(7))
	return m
}

func TestSignAndVerify(t *testing.T) {
	tc := newTC(t, "carat-llvm", 1)
	m := testModule()
	sm := tc.Sign(m)

	ts := NewTrustStore()
	ts.Trust(tc.Name, tc.Public())
	if err := ts.Verify(sm); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestUntrustedToolchainRejected(t *testing.T) {
	tc := newTC(t, "evil-cc", 2)
	sm := tc.Sign(testModule())
	ts := NewTrustStore()
	if err := ts.Verify(sm); err == nil {
		t.Error("unknown toolchain accepted")
	}
	// Trusting a DIFFERENT key under the same name must also fail.
	other := newTC(t, "evil-cc", 3)
	ts.Trust("evil-cc", other.Public())
	if err := ts.Verify(sm); err == nil {
		t.Error("signature from wrong key accepted")
	}
}

func TestTamperDetected(t *testing.T) {
	tc := newTC(t, "carat-llvm", 4)
	m := testModule()
	sm := tc.Sign(m)
	ts := NewTrustStore()
	ts.Trust(tc.Name, tc.Public())

	// Modify the module after signing: inject an extra instruction.
	f := m.Func("main")
	b := ir.NewBuilder(f)
	b.Blk.InsertBefore(&ir.Instr{Op: ir.OpAdd, Name: "evil", Typ: ir.I64,
		Args: []ir.Value{ir.ConstInt(ir.I64, 1), ir.ConstInt(ir.I64, 2)}}, f.Entry().Term())
	if err := ts.Verify(sm); err == nil {
		t.Error("tampered module accepted")
	}
}

func TestFingerprintStable(t *testing.T) {
	tc := newTC(t, "x", 5)
	f1 := Fingerprint(tc.Public())
	f2 := Fingerprint(tc.Public())
	if f1 != f2 || len(f1) != 16 {
		t.Errorf("fingerprint unstable or wrong length: %q %q", f1, f2)
	}
}
