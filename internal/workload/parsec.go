package workload

import "carat/internal/ir"

// The PARSEC benchmarks span the locality spectrum: blackscholes and
// swaptions are compute-bound with tiny working sets; canneal is the
// suite's TLB killer (random swaps over a huge netlist); freqmine builds
// and chases a heap tree; streamcluster produces its escapes early then
// goes quiet (§3); swaptions is Figure 6's tracking-memory outlier because
// it allocates enormous numbers of short-lived blocks.

func init() {
	register(&Workload{Name: "blackscholes", Suite: "parsec",
		Desc: "streaming option pricing: unit-stride, pure FP", Build: buildBlackscholes})
	register(&Workload{Name: "bodytrack", Suite: "parsec",
		Desc: "particle filter: medium arrays, mixed access", Build: buildBodytrack})
	register(&Workload{Name: "canneal", Suite: "parsec",
		Desc: "simulated annealing: random element swaps over a huge netlist", Build: buildCanneal})
	register(&Workload{Name: "fluidanimate", Suite: "parsec",
		Desc: "SPH fluid: grid with neighbor-cell access", Build: buildFluidanimate})
	register(&Workload{Name: "freqmine", Suite: "parsec",
		Desc: "FP-growth: heap-allocated tree build and chase", Build: buildFreqmine})
	register(&Workload{Name: "streamcluster", Suite: "parsec",
		Desc: "online clustering: early escapes, then pure distance compute", Build: buildStreamcluster})
	register(&Workload{Name: "swaptions", Suite: "parsec",
		Desc: "HJM Monte Carlo: huge number of short-lived allocations", Build: buildSwaptions})
	register(&Workload{Name: "x264", Suite: "parsec",
		Desc: "video encode: sequential macroblocks + motion search window", Build: buildX264Parsec})
}

func buildBlackscholes(s Scale) *ir.Module {
	n := s.pick(1<<10, 1<<15, 1<<18)
	iters := s.pick(8, 16, 32)

	p := newProg("blackscholes")
	spot := p.farray("spot", n)
	strike := p.farray("strike", n)
	out := p.farray("out", n)

	p.Loop(p.I64(0), p.I64(n), p.I64(1), func(i ir.Value) {
		f := p.SIToFP(p.And(i, p.I64(1023)))
		p.Store(p.FAdd(f, p.F64V(10)), p.GEP(ir.F64, spot, i))
		p.Store(p.FAdd(f, p.F64V(12)), p.GEP(ir.F64, strike, i))
	})
	p.Loop(p.I64(0), p.I64(iters), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(n), p.I64(1), func(i ir.Value) {
			sp := p.Load(ir.F64, p.GEP(ir.F64, spot, i))
			st := p.Load(ir.F64, p.GEP(ir.F64, strike, i))
			// A chain of FP ops models the CNDF evaluation.
			r := p.FDiv(sp, st)
			r2 := p.FMul(r, r)
			r3 := p.FAdd(r2, p.FMul(r, p.F64V(0.08)))
			r4 := p.FSub(r3, p.FDiv(r2, p.F64V(3.0)))
			r5 := p.FMul(r4, p.F64V(0.39894228))
			p.Store(r5, p.GEP(ir.F64, out, i))
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, out, p.I64(5)))))
}

func buildBodytrack(s Scale) *ir.Module {
	particles := s.pick(1<<8, 1<<11, 1<<13)
	frames := s.pick(4, 10, 20)
	edge := int64(1 << 12) // image rows

	p := newProg("bodytrack")
	img := p.array("image", edge*4)
	weights := p.farray("weights", particles)
	state := p.farray("state", particles*4)

	p.Loop(p.I64(0), p.I64(edge*4), p.I64(1), func(i ir.Value) {
		p.storeIdx(img, i, p.And(i, p.I64(255)))
	})
	p.Loop(p.I64(0), p.I64(frames), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(particles), p.I64(1), func(i ir.Value) {
			// Each particle samples a few semi-random image rows.
			r1 := p.randMod(edge * 4)
			r2 := p.randMod(edge * 4)
			v1 := p.loadIdx(img, r1)
			v2 := p.loadIdx(img, r2)
			w := p.SIToFP(p.Add(v1, v2))
			p.Store(w, p.GEP(ir.F64, weights, i))
			p.Loop(p.I64(0), p.I64(4), p.I64(1), func(d ir.Value) {
				si := p.Add(p.Mul(i, p.I64(4)), d)
				old := p.Load(ir.F64, p.GEP(ir.F64, state, si))
				p.Store(p.FAdd(old, p.FMul(w, p.F64V(0.001))), p.GEP(ir.F64, state, si))
			})
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, weights, p.I64(3)))))
}

func buildCanneal(s Scale) *ir.Module {
	elems := s.pick(1<<12, 1<<21, 1<<22) // netlist elements (i64 each)
	swaps := s.pick(1<<12, 1<<17, 1<<19)

	p := newProg("canneal")
	net := p.array("netlist", elems)

	p.Loop(p.I64(0), p.I64(elems), p.I64(1), func(i ir.Value) {
		p.storeIdx(net, i, i)
	})
	// Annealing: pick two random elements, compute "cost", swap.
	p.Loop(p.I64(0), p.I64(swaps), p.I64(1), func(_ ir.Value) {
		a := p.randMod(elems)
		b := p.randMod(elems)
		va := p.loadIdx(net, a)
		vb := p.loadIdx(net, b)
		cost := p.Sub(va, vb)
		keep := p.ICmp(ir.PredLT, cost, p.I64(1<<40))
		sa := p.Select(keep, vb, va)
		sb := p.Select(keep, va, vb)
		p.storeIdx(net, a, sa)
		p.storeIdx(net, b, sb)
	})
	return p.finish(p.loadIdx(net, p.I64(9)))
}

func buildFluidanimate(s Scale) *ir.Module {
	grid := s.pick(16, 48, 64) // grid edge; cells = grid^2
	steps := s.pick(4, 12, 24)

	p := newProg("fluidanimate")
	cells := grid * grid
	density := p.farray("density", cells)
	next := p.farray("next", cells)

	p.Loop(p.I64(0), p.I64(cells), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(p.And(i, p.I64(63))), p.GEP(ir.F64, density, i))
	})
	p.Loop(p.I64(0), p.I64(steps), p.I64(1), func(_ ir.Value) {
		// Interior sweep with 4-neighbor stencil.
		p.Loop(p.I64(1), p.I64(grid-1), p.I64(1), func(y ir.Value) {
			p.Loop(p.I64(1), p.I64(grid-1), p.I64(1), func(x ir.Value) {
				idx := p.Add(p.Mul(y, p.I64(grid)), x)
				c := p.Load(ir.F64, p.GEP(ir.F64, density, idx))
				l := p.Load(ir.F64, p.GEP(ir.F64, density, p.Sub(idx, p.I64(1))))
				r := p.Load(ir.F64, p.GEP(ir.F64, density, p.Add(idx, p.I64(1))))
				u := p.Load(ir.F64, p.GEP(ir.F64, density, p.Sub(idx, p.I64(grid))))
				d := p.Load(ir.F64, p.GEP(ir.F64, density, p.Add(idx, p.I64(grid))))
				sum := p.FAdd(p.FAdd(l, r), p.FAdd(u, d))
				p.Store(p.FAdd(p.FMul(c, p.F64V(0.6)), p.FMul(sum, p.F64V(0.1))),
					p.GEP(ir.F64, next, idx))
			})
		})
		// Copy back.
		p.Loop(p.I64(0), p.I64(cells), p.I64(1), func(i ir.Value) {
			p.Store(p.Load(ir.F64, p.GEP(ir.F64, next, i)), p.GEP(ir.F64, density, i))
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, density, p.I64(grid+1)))))
}

// buildFreqmine models FP-growth: build a heap-allocated k-ary tree of
// {value, child pointers} nodes, then repeatedly descend random paths.
// Node: {i64 count, [4 x ptr] children} = 40 bytes.
func buildFreqmine(s Scale) *ir.Module {
	// Tree build (tracked) amortizes over a much longer mining phase.
	nodes := s.pick(1<<9, 1<<14, 1<<16)
	probes := s.pick(1<<14, 1<<19, 1<<21)

	p := newProg("freqmine")
	nodeT := ir.StructOf(ir.I64, ir.ArrayOf(ir.Ptr, 4))
	pool := p.m.AddGlobal("pool", ir.ArrayOf(ir.Ptr, int(nodes)))
	root := p.m.AddGlobal("root", ir.Ptr)

	// Allocate all nodes; link each as a child of a random earlier node
	// (pointer escapes into the parent's child slot).
	first := p.Call(p.malloc, p.I64(nodeT.Size()))
	p.Store(first, root)
	p.Store(first, p.GEP(ir.Ptr, pool, p.I64(0)))
	p.Loop(p.I64(1), p.I64(nodes), p.I64(1), func(i ir.Value) {
		n := p.Call(p.malloc, p.I64(nodeT.Size()))
		p.Store(n, p.GEP(ir.Ptr, pool, i))
		p.Store(i, p.GEP(nodeT, n, p.I64(0), p.I64(0)))
		parentIdx := p.URem(p.And(p.rand(), p.I64(0x7FFFFFFF)), i)
		parent := p.Load(ir.Ptr, p.GEP(ir.Ptr, pool, parentIdx))
		slot := p.And(p.rand(), p.I64(3))
		p.Store(n, p.GEP(nodeT, parent, p.I64(0), p.I64(1), slot))
	})
	// Probe: descend from root until a null child.
	total := p.Alloca(ir.I64, nil)
	p.Store(p.I64(0), total)
	p.Loop(p.I64(0), p.I64(probes), p.I64(1), func(_ ir.Value) {
		start := p.Load(ir.Ptr, p.GEP(ir.Ptr, pool, p.randMod(nodes)))
		cnt := p.Load(ir.I64, p.GEP(nodeT, start, p.I64(0), p.I64(0)))
		child := p.Load(ir.Ptr, p.GEP(nodeT, start, p.I64(0), p.I64(1), p.And(p.rand(), p.I64(3))))
		isNull := p.ICmp(ir.PredEQ, p.Cast(ir.OpPtrToInt, child, ir.I64), p.I64(0))
		childCnt := p.Select(isNull, p.I64(0), p.I64(1))
		t := p.Load(ir.I64, total)
		p.Store(p.Add(t, p.Add(cnt, childCnt)), total)
	})
	return p.finish(p.Load(ir.I64, total))
}

// buildStreamcluster: a point set is allocated and escape-linked up front
// (many escapes early, §3), then the run is dominated by escape-free
// distance computation.
func buildStreamcluster(s Scale) *ir.Module {
	points := s.pick(1<<8, 1<<12, 1<<14)
	const dim = 8
	rounds := s.pick(8, 24, 48)

	p := newProg("streamcluster")
	index := p.m.AddGlobal("index", ir.ArrayOf(ir.Ptr, int(points)))
	centers := p.farray("centers", dim*8)

	// Early phase: allocate every point, escape it into the index.
	p.Loop(p.I64(0), p.I64(points), p.I64(1), func(i ir.Value) {
		pt := p.Call(p.malloc, p.I64(dim*8))
		p.Store(pt, p.GEP(ir.Ptr, index, i))
		p.Loop(p.I64(0), p.I64(dim), p.I64(1), func(d ir.Value) {
			p.Store(p.SIToFP(p.Add(i, d)), p.GEP(ir.F64, pt, d))
		})
	})
	// Steady state: distance computations, no new escapes.
	best := p.Alloca(ir.F64, nil)
	p.Loop(p.I64(0), p.I64(rounds), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(points), p.I64(1), func(i ir.Value) {
			pt := p.Load(ir.Ptr, p.GEP(ir.Ptr, index, i))
			p.Store(p.F64V(1e18), best)
			p.Loop(p.I64(0), p.I64(8), p.I64(1), func(c ir.Value) {
				d0 := p.Load(ir.F64, p.GEP(ir.F64, pt, p.I64(0)))
				c0 := p.Load(ir.F64, p.GEP(ir.F64, centers, p.Mul(c, p.I64(dim))))
				diff := p.FSub(d0, c0)
				dist := p.FMul(diff, diff)
				b := p.Load(ir.F64, best)
				lt := p.FCmp(ir.PredLT, dist, b)
				p.Store(p.Select(lt, dist, b), best)
			})
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, best)))
}

// buildSwaptions: Monte Carlo paths, each simulated in a freshly allocated
// buffer that is freed immediately — the allocation-count outlier that
// blows up Figure 6's tracking-memory ratio relative to its tiny live
// footprint.
func buildSwaptions(s Scale) *ir.Module {
	trials := s.pick(1<<8, 1<<13, 1<<15)
	const pathLen = 64

	p := newProg("swaptions")
	price := p.farray("price", 8)
	p.Loop(p.I64(0), p.I64(trials), p.I64(1), func(i ir.Value) {
		path := p.Call(p.malloc, p.I64(pathLen*8))
		p.Loop(p.I64(0), p.I64(pathLen), p.I64(1), func(j ir.Value) {
			r := p.SIToFP(p.And(p.rand(), p.I64(1023)))
			p.Store(p.FMul(r, p.F64V(0.001)), p.GEP(ir.F64, path, j))
		})
		acc := p.Load(ir.F64, p.GEP(ir.F64, path, p.I64(pathLen-1)))
		slot := p.And(i, p.I64(7))
		old := p.Load(ir.F64, p.GEP(ir.F64, price, slot))
		p.Store(p.FAdd(old, acc), p.GEP(ir.F64, price, slot))
		p.Call(p.free, path)
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, price, p.I64(0)))))
}

func buildX264Parsec(s Scale) *ir.Module {
	return buildX264("x264", s)
}

// buildX264 models H.264 encoding: sequential macroblock residuals plus a
// bounded random motion search in a reference window.
func buildX264(name string, s Scale) *ir.Module {
	mbs := s.pick(1<<8, 1<<12, 1<<14) // macroblocks
	window := int64(1 << 14)          // reference window in i64s

	p := newProg(name)
	frame := p.array("frame", mbs*16)
	ref := p.array("ref", window)

	p.Loop(p.I64(0), p.I64(window), p.I64(1), func(i ir.Value) {
		p.storeIdx(ref, i, p.And(i, p.I64(255)))
	})
	sad := p.Alloca(ir.I64, nil)
	p.Loop(p.I64(0), p.I64(mbs), p.I64(1), func(mb ir.Value) {
		p.Store(p.I64(0), sad)
		// Residual: sequential 16-pixel block.
		p.Loop(p.I64(0), p.I64(16), p.I64(1), func(k ir.Value) {
			idx := p.Add(p.Mul(mb, p.I64(16)), k)
			cur := p.loadIdx(frame, idx)
			p.storeIdx(frame, idx, p.Add(cur, k))
		})
		// Motion search: 8 random probes in the reference window.
		p.Loop(p.I64(0), p.I64(8), p.I64(1), func(_ ir.Value) {
			pos := p.randMod(window)
			v := p.loadIdx(ref, pos)
			cur := p.Load(ir.I64, sad)
			p.Store(p.Add(cur, v), sad)
		})
	})
	return p.finish(p.Load(ir.I64, sad))
}
