package workload

import (
	"testing"

	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

func TestAllRegistered(t *testing.T) {
	ws := All()
	if len(ws) != 22 {
		names := make([]string, len(ws))
		for i, w := range ws {
			names[i] = w.Name
		}
		t.Fatalf("registered %d workloads, want 22: %v", len(ws), names)
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
		if w.Desc == "" || w.Suite == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
	}
	for _, name := range []string{"HPCCG", "canneal", "mcf_s", "xz_s", "EP"} {
		if !seen[name] {
			t.Errorf("missing workload %s", name)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("notabenchmark"); err == nil {
		t.Error("Get of unknown workload succeeded")
	}
	w, err := Get("canneal")
	if err != nil || w.Name != "canneal" {
		t.Errorf("Get(canneal) = %v, %v", w, err)
	}
}

func TestAllBuildAndVerify(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			m := w.Build(ScaleTest)
			if err := m.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			if m.Func("main") == nil {
				t.Fatal("no main")
			}
			if n := m.NumInstrs(); n < 10 {
				t.Errorf("suspiciously small program: %d instructions", n)
			}
		})
	}
}

// runCfg runs a workload module under the given pipeline level and mode,
// returning the VM.
func runCfg(t *testing.T, w *Workload, lvl passes.Level, mode vm.Mode) (*vm.VM, int64) {
	t.Helper()
	m := w.Build(ScaleTest)
	pl := passes.Build(lvl)
	if err := pl.Run(m); err != nil {
		t.Fatalf("%s: passes: %v", w.Name, err)
	}
	cfg := vm.DefaultConfig()
	cfg.Mode = mode
	cfg.MemBytes = 1 << 27
	cfg.HeapBytes = 1 << 24
	v, err := vm.Load(m, cfg)
	if err != nil {
		t.Fatalf("%s: load: %v", w.Name, err)
	}
	ret, err := v.Run()
	if err != nil {
		t.Fatalf("%s: run: %v", w.Name, err)
	}
	return v, ret
}

func TestAllRunBaseline(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			v, _ := runCfg(t, w, passes.LevelNone, vm.ModeCARAT)
			if v.Instrs == 0 {
				t.Error("no instructions executed")
			}
		})
	}
}

func TestAllRunFullCARATMatchesBaseline(t *testing.T) {
	// The fully instrumented build (guards + opts + tracking) must compute
	// the same result as the uninstrumented baseline for every benchmark —
	// the suite-wide semantic-preservation invariant.
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			_, base := runCfg(t, w, passes.LevelNone, vm.ModeCARAT)
			vFull, full := runCfg(t, w, passes.LevelTracking, vm.ModeCARAT)
			if base != full {
				t.Errorf("results differ: baseline %d, CARAT %d", base, full)
			}
			if vFull.GuardChecks == 0 {
				t.Error("no guards executed in instrumented build")
			}
		})
	}
}

func TestAllRunTraditional(t *testing.T) {
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			_, base := runCfg(t, w, passes.LevelNone, vm.ModeCARAT)
			vT, trad := runCfg(t, w, passes.LevelNone, vm.ModeTraditional)
			if base != trad {
				t.Errorf("traditional-mode result differs: %d vs %d", base, trad)
			}
			if vT.Hierarchy().Stats.Lookups.Get() == 0 {
				t.Error("no TLB activity in traditional mode")
			}
		})
	}
}

func TestLocalityClassesDiffer(t *testing.T) {
	// The suite must spread across the MPKI spectrum: canneal (random over
	// a big footprint) far above EP (tiny footprint).
	mpki := func(name string) float64 {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := runCfg(t, w, passes.LevelNone, vm.ModeTraditional)
		return v.Hierarchy().DTLBMPKI(v.Instrs)
	}
	ep := mpki("EP")
	can := mpki("canneal")
	if can < ep*5 {
		t.Errorf("canneal MPKI (%.3f) not well above EP (%.3f)", can, ep)
	}
}

func TestNABIsEscapeOutlier(t *testing.T) {
	// nab_s: few allocations with very many escapes (Figure 5).
	w, _ := Get("nab_s")
	v, _ := runCfg(t, w, passes.LevelTracking, vm.ModeCARAT)
	hist := v.Runtime().EscapeHistogram()
	max := 0
	for _, h := range hist {
		if h > max {
			max = h
		}
	}
	if max < 100 {
		t.Errorf("nab_s max escapes per allocation = %d, want >= 100", max)
	}
}

func TestSwaptionsChurnsAllocations(t *testing.T) {
	w, _ := Get("swaptions")
	v, _ := runCfg(t, w, passes.LevelTracking, vm.ModeCARAT)
	st := v.Runtime().Stats
	if st.Frees.Get() < 100 || st.Allocs.Get() < 100 {
		t.Errorf("swaptions alloc/free churn too low: %+v", st)
	}
}

func TestTable1ShapesPerClass(t *testing.T) {
	// Affine HPC kernels must see substantial Opt 2 (merge) activity;
	// every workload's fractions must sum to 1.
	for _, name := range []string{"LU", "lbm_s", "blackscholes"} {
		w, _ := Get(name)
		m := w.Build(ScaleTest)
		pl := passes.Build(passes.LevelGuardsOpt)
		if err := pl.Run(m); err != nil {
			t.Fatal(err)
		}
		s := pl.Stats
		sum := s.FracUntouched() + s.FracHoisted() + s.FracMerged() + s.FracRemoved()
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum %.3f", name, sum)
		}
		if name == "LU" && s.FracMerged() == 0 {
			t.Errorf("LU: no guards merged by scalar evolution")
		}
	}
}

func TestScalesGrow(t *testing.T) {
	w, _ := Get("EP")
	small := w.Build(ScaleTest)
	big := w.Build(ScaleSmall)
	// Program text identical, but loop bounds must differ.
	if small.String() == big.String() {
		t.Error("scales produce identical programs")
	}
}

func TestRandDeterministic(t *testing.T) {
	// Two builds of the same workload produce identical IR (bit-for-bit):
	// randomness lives inside the program, not the builder.
	w, _ := Get("canneal")
	a := w.Build(ScaleTest).String()
	b := w.Build(ScaleTest).String()
	if a != b {
		t.Error("workload build not deterministic")
	}
	_ = ir.Module{}
}
