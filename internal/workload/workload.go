// Package workload provides the 22-benchmark suite the paper evaluates
// (Mantevo HPCCG; NAS CG/EP/FT/LU; PARSEC blackscholes, bodytrack, canneal,
// fluidanimate, freqmine, streamcluster, swaptions, x264; SPEC2017
// deepsjeng, lbm, mcf, nab, namd, omnetpp, x264, xalancbmk, xz) as
// synthetic IR programs. Each builder reproduces the original's
// memory-system personality — footprint, locality class, allocation
// behaviour, and escape density — which is what drives every experiment's
// shape (see DESIGN.md). Absolute performance is not modeled; relative
// behaviour across the suite is.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"carat/internal/ir"
)

// Scale selects the problem size.
type Scale int

// Problem scales.
const (
	// ScaleTest runs in well under a second per benchmark; used by unit
	// tests and quick experiment smoke runs.
	ScaleTest Scale = iota
	// ScaleSmall is the default for regenerating the paper's tables and
	// figures: large enough that footprint/locality effects dominate.
	ScaleSmall
	// ScaleRef is larger still, for longer-running studies.
	ScaleRef
)

// ScaleNames lists the accepted scale spellings in order.
var ScaleNames = []string{"test", "small", "ref"}

// String names the scale ("test", "small", "ref").
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleSmall:
		return "small"
	case ScaleRef:
		return "ref"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale maps a scale name to its Scale; unknown names get an error
// that lists the valid spellings.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "test":
		return ScaleTest, nil
	case "small":
		return ScaleSmall, nil
	case "ref":
		return ScaleRef, nil
	}
	return 0, fmt.Errorf("workload: unknown scale %q (valid scales: %s)",
		name, strings.Join(ScaleNames, ", "))
}

// pick returns the value for the current scale.
func (s Scale) pick(test, small, ref int64) int64 {
	switch s {
	case ScaleSmall:
		return small
	case ScaleRef:
		return ref
	}
	return test
}

// Workload is one benchmark model.
type Workload struct {
	// Name is the paper's benchmark name (e.g. "canneal", "mcf_s").
	Name string
	// Suite is the originating suite (mantevo, nas, parsec, spec2017).
	Suite string
	// Desc summarizes the memory personality being modeled.
	Desc string
	// Build constructs the program at the given scale.
	Build func(s Scale) *ir.Module
}

var registry = map[string]*Workload{}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workload: duplicate " + w.Name)
	}
	registry[w.Name] = w
}

// Get returns the named workload.
func Get(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return w, nil
}

// All returns every workload in the paper's presentation order.
func All() []*Workload {
	order := []string{
		"HPCCG", "CG", "EP", "FT", "LU",
		"blackscholes", "bodytrack", "canneal", "fluidanimate", "freqmine",
		"streamcluster", "swaptions", "x264",
		"deepsjeng_s", "lbm_s", "mcf_s", "nab_s", "namd_r", "omnetpp_s",
		"x264_s", "xalancbmk_s", "xz_s",
	}
	out := make([]*Workload, 0, len(order))
	for _, n := range order {
		if w, ok := registry[n]; ok {
			out = append(out, w)
		}
	}
	// Catch stragglers not in the order list.
	if len(out) != len(registry) {
		var extra []string
		for n := range registry {
			found := false
			for _, o := range order {
				if o == n {
					found = true
					break
				}
			}
			if !found {
				extra = append(extra, n)
			}
		}
		sort.Strings(extra)
		for _, n := range extra {
			out = append(out, registry[n])
		}
	}
	return out
}

// prog is the builder context shared by all benchmark constructors.
type prog struct {
	*ir.Builder
	m      *ir.Module
	main   *ir.Func
	malloc *ir.Func
	free   *ir.Func
	print  *ir.Func

	rngState *ir.Global
}

func newProg(name string) *prog {
	m := ir.NewModule(name)
	malloc := m.DeclareFunc(ir.FnMalloc, ir.Ptr, ir.I64)
	free := m.DeclareFunc(ir.FnFree, ir.Void, ir.Ptr)
	print := m.DeclareFunc(ir.FnPrintI64, ir.Void, ir.I64)
	main := m.AddFunc("main", ir.I64)
	p := &prog{
		Builder: ir.NewBuilder(main),
		m:       m, main: main, malloc: malloc, free: free, print: print,
	}
	p.rngState = m.AddGlobal("rng.state", ir.I64)
	p.rngState.Init = le64(88172645463325252)
	return p
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// finish terminates main and verifies the module.
func (p *prog) finish(ret ir.Value) *ir.Module {
	if ret == nil {
		ret = p.I64(0)
	}
	p.Ret(ret)
	if err := p.m.Verify(); err != nil {
		panic(fmt.Sprintf("workload %s: %v", p.m.Name, err))
	}
	return p.m
}

// rand emits an xorshift step on the global RNG state and returns a fresh
// pseudo-random i64. In-program randomness keeps the access patterns
// inside the simulated machine (and identical across modes).
func (p *prog) rand() ir.Value {
	x := p.Load(ir.I64, p.rngState)
	x1 := p.Xor(x, p.Shl(x, p.I64(13)))
	x2 := p.Xor(x1, p.LShr(x1, p.I64(7)))
	x3 := p.Xor(x2, p.Shl(x2, p.I64(17)))
	p.Store(x3, p.rngState)
	return x3
}

// randMod emits rand() modulo n (n a power of two is cheapest but any
// positive n works via urem).
func (p *prog) randMod(n int64) ir.Value {
	r := p.rand()
	if n&(n-1) == 0 {
		return p.And(r, p.I64(n-1))
	}
	masked := p.And(r, p.I64(0x7FFFFFFFFFFFFFFF))
	return p.URem(masked, p.I64(n))
}

// array adds a global array of n i64 elements.
func (p *prog) array(name string, n int64) *ir.Global {
	return p.m.AddGlobal(name, ir.ArrayOf(ir.I64, int(n)))
}

// farray adds a global array of n f64 elements.
func (p *prog) farray(name string, n int64) *ir.Global {
	return p.m.AddGlobal(name, ir.ArrayOf(ir.F64, int(n)))
}

// sumInto loads p.acc-style accumulation: acc += a[idx].
func (p *prog) loadIdx(arr ir.Value, idx ir.Value) ir.Value {
	return p.Load(ir.I64, p.GEP(ir.I64, arr, idx))
}

func (p *prog) storeIdx(arr ir.Value, idx, val ir.Value) {
	p.Store(val, p.GEP(ir.I64, arr, idx))
}
