package workload

import "carat/internal/ir"

// The SPEC2017 benchmark models. The pointer-heavy ones (mcf, omnetpp,
// xalancbmk) chase heap structures and exhibit the paper's high DTLB miss
// rates; lbm streams enormous arrays; deepsjeng and xz hammer large tables
// at random; nab is Figure 5's escape outlier: a handful of allocations
// referenced from thousands of locations.

func init() {
	register(&Workload{Name: "deepsjeng_s", Suite: "spec2017",
		Desc: "chess search: random transposition-table probes", Build: buildDeepsjeng})
	register(&Workload{Name: "lbm_s", Suite: "spec2017",
		Desc: "lattice Boltzmann: streaming sweeps over huge arrays", Build: buildLBM})
	register(&Workload{Name: "mcf_s", Suite: "spec2017",
		Desc: "network simplex: pointer chasing over a heap graph", Build: buildMCF})
	register(&Workload{Name: "nab_s", Suite: "spec2017",
		Desc: "molecular dynamics: few allocations, thousands of escapes each", Build: buildNAB})
	register(&Workload{Name: "namd_r", Suite: "spec2017",
		Desc: "particle interactions via neighbor lists, good locality", Build: buildNAMD})
	register(&Workload{Name: "omnetpp_s", Suite: "spec2017",
		Desc: "discrete event simulation: event objects churn through a heap", Build: buildOmnetpp})
	register(&Workload{Name: "x264_s", Suite: "spec2017",
		Desc: "video encode (SPEC input): macroblocks + motion search", Build: func(s Scale) *ir.Module { return buildX264("x264_s", s) }})
	register(&Workload{Name: "xalancbmk_s", Suite: "spec2017",
		Desc: "XSLT: DOM tree of small nodes, pointer traversal", Build: buildXalancbmk})
	register(&Workload{Name: "xz_s", Suite: "spec2017",
		Desc: "LZMA: random dictionary back-references + streaming output", Build: buildXZ})
}

func buildDeepsjeng(s Scale) *ir.Module {
	ttSize := s.pick(1<<12, 1<<21, 1<<22) // transposition entries (i64)
	probes := s.pick(1<<12, 1<<17, 1<<19)

	p := newProg("deepsjeng_s")
	tt := p.array("ttable", ttSize)
	board := p.array("board", 64)

	p.Loop(p.I64(0), p.I64(64), p.I64(1), func(i ir.Value) {
		p.storeIdx(board, i, p.And(i, p.I64(15)))
	})
	p.Loop(p.I64(0), p.I64(probes), p.I64(1), func(i ir.Value) {
		// Hash the (hot, cached) board, probe the (cold, huge) table.
		sq := p.And(i, p.I64(63))
		piece := p.loadIdx(board, sq)
		h := p.Xor(p.rand(), p.Mul(piece, p.I64(0x1E3779B97F4A7C15)))
		slot := p.And(h, p.I64(ttSize-1))
		old := p.loadIdx(tt, slot)
		score := p.Add(old, p.I64(1))
		p.storeIdx(tt, slot, score)
		p.storeIdx(board, sq, p.And(score, p.I64(15)))
	})
	return p.finish(p.loadIdx(tt, p.I64(12)))
}

func buildLBM(s Scale) *ir.Module {
	cells := s.pick(1<<13, 1<<20, 1<<22) // lattice cells
	sweeps := s.pick(2, 4, 8)

	p := newProg("lbm_s")
	src := p.farray("srcGrid", cells)
	dst := p.farray("dstGrid", cells)

	p.Loop(p.I64(0), p.I64(cells), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(p.And(i, p.I64(127))), p.GEP(ir.F64, src, i))
	})
	p.Loop(p.I64(0), p.I64(sweeps), p.I64(1), func(_ ir.Value) {
		// Stream+collide: read neighbors at fixed offsets, write dst;
		// every page of both arrays is touched once per sweep.
		p.Loop(p.I64(1), p.I64(cells-1), p.I64(1), func(i ir.Value) {
			c := p.Load(ir.F64, p.GEP(ir.F64, src, i))
			w := p.Load(ir.F64, p.GEP(ir.F64, src, p.Sub(i, p.I64(1))))
			e := p.Load(ir.F64, p.GEP(ir.F64, src, p.Add(i, p.I64(1))))
			v := p.FAdd(p.FMul(c, p.F64V(0.9)), p.FMul(p.FAdd(w, e), p.F64V(0.05)))
			p.Store(v, p.GEP(ir.F64, dst, i))
		})
		p.Loop(p.I64(0), p.I64(cells), p.I64(1), func(i ir.Value) {
			p.Store(p.Load(ir.F64, p.GEP(ir.F64, dst, i)), p.GEP(ir.F64, src, i))
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, src, p.I64(33)))))
}

// buildMCF: a heap-allocated graph of nodes {potential, [2 x ptr]} chased
// along random arcs — SPEC's classic TLB antagonist with a high allocation
// count (Table 2 measures 1.6M page allocations).
func buildMCF(s Scale) *ir.Module {
	// The graph build (tracked allocations/escapes) is a small prefix of a
	// long pointer-chasing steady state, as in the real benchmark.
	nodes := s.pick(1<<12, 1<<15, 1<<17)
	hops := s.pick(1<<16, 1<<20, 1<<22)

	p := newProg("mcf_s")
	nodeT := ir.StructOf(ir.I64, ir.ArrayOf(ir.Ptr, 2))
	index := p.m.AddGlobal("index", ir.ArrayOf(ir.Ptr, int(nodes)))

	p.Loop(p.I64(0), p.I64(nodes), p.I64(1), func(i ir.Value) {
		n := p.Call(p.malloc, p.I64(nodeT.Size()))
		p.Store(n, p.GEP(ir.Ptr, index, i))
		p.Store(i, p.GEP(nodeT, n, p.I64(0), p.I64(0)))
	})
	// Wire arcs to random nodes (escapes into node bodies).
	p.Loop(p.I64(0), p.I64(nodes), p.I64(1), func(i ir.Value) {
		n := p.Load(ir.Ptr, p.GEP(ir.Ptr, index, i))
		t0 := p.Load(ir.Ptr, p.GEP(ir.Ptr, index, p.randMod(nodes)))
		t1 := p.Load(ir.Ptr, p.GEP(ir.Ptr, index, p.randMod(nodes)))
		p.Store(t0, p.GEP(nodeT, n, p.I64(0), p.I64(1), p.I64(0)))
		p.Store(t1, p.GEP(nodeT, n, p.I64(0), p.I64(1), p.I64(1)))
	})
	// Simplex-ish walk: chase arcs, update potentials.
	cur := p.m.AddGlobal("cur", ir.Ptr)
	p.Store(p.Load(ir.Ptr, p.GEP(ir.Ptr, index, p.I64(0))), cur)
	p.Loop(p.I64(0), p.I64(hops), p.I64(1), func(_ ir.Value) {
		n := p.Load(ir.Ptr, cur)
		pot := p.Load(ir.I64, p.GEP(nodeT, n, p.I64(0), p.I64(0)))
		p.Store(p.Add(pot, p.I64(1)), p.GEP(nodeT, n, p.I64(0), p.I64(0)))
		arc := p.And(p.rand(), p.I64(1))
		next := p.Load(ir.Ptr, p.GEP(nodeT, n, p.I64(0), p.I64(1), arc))
		p.Store(next, cur)
	})
	final := p.Load(ir.Ptr, cur)
	return p.finish(p.Load(ir.I64, p.GEP(nodeT, final, p.I64(0), p.I64(0))))
}

// buildNAB: a handful of large coordinate arrays, with a big bonded-pair
// table holding pointers INTO those arrays — Figure 5(a)'s outlier, where
// single allocations accumulate thousands of escapes.
func buildNAB(s Scale) *ir.Module {
	atoms := s.pick(1<<8, 1<<12, 1<<14)
	pairs := s.pick(1<<10, 1<<14, 1<<16)
	steps := s.pick(16, 40, 80)

	p := newProg("nab_s")
	pairTable := p.m.AddGlobal("pairs", ir.ArrayOf(ir.Ptr, int(2*pairs)))

	coords := p.Call(p.malloc, p.I64(atoms*8)) // ONE allocation...
	forces := p.Call(p.malloc, p.I64(atoms*8)) // ...and another
	p.Loop(p.I64(0), p.I64(atoms), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(i), p.GEP(ir.F64, coords, i))
		p.Store(p.F64V(0), p.GEP(ir.F64, forces, i))
	})
	// ...with thousands of interior pointers escaping into the pair table.
	p.Loop(p.I64(0), p.I64(pairs), p.I64(1), func(k ir.Value) {
		a := p.randMod(atoms)
		b := p.randMod(atoms)
		p.Store(p.GEP(ir.F64, coords, a), p.GEP(ir.Ptr, pairTable, p.Mul(k, p.I64(2))))
		p.Store(p.GEP(ir.F64, forces, b), p.GEP(ir.Ptr, pairTable, p.Add(p.Mul(k, p.I64(2)), p.I64(1))))
	})
	// MD steps: walk the pair table, accumulate forces.
	p.Loop(p.I64(0), p.I64(steps), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(pairs), p.I64(1), func(k ir.Value) {
			cp := p.Load(ir.Ptr, p.GEP(ir.Ptr, pairTable, p.Mul(k, p.I64(2))))
			fp := p.Load(ir.Ptr, p.GEP(ir.Ptr, pairTable, p.Add(p.Mul(k, p.I64(2)), p.I64(1))))
			c := p.Load(ir.F64, cp)
			f := p.Load(ir.F64, fp)
			p.Store(p.FAdd(f, p.FMul(c, p.F64V(1e-6))), fp)
		})
	})
	r := p.Load(ir.F64, p.GEP(ir.F64, forces, p.I64(3)))
	return p.finish(p.FPToSI(r))
}

func buildNAMD(s Scale) *ir.Module {
	atoms := s.pick(1<<9, 1<<13, 1<<15)
	const neigh = 8
	steps := s.pick(4, 12, 24)

	p := newProg("namd_r")
	pos := p.farray("pos", atoms)
	force := p.farray("force", atoms)
	nlist := p.array("nlist", atoms*neigh)

	p.Loop(p.I64(0), p.I64(atoms), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(i), p.GEP(ir.F64, pos, i))
		// Neighbors cluster near i: locality is good but not unit-stride.
		p.Loop(p.I64(0), p.I64(neigh), p.I64(1), func(j ir.Value) {
			d := p.And(p.rand(), p.I64(31))
			n := p.URem(p.Add(i, d), p.I64(atoms))
			p.storeIdx(nlist, p.Add(p.Mul(i, p.I64(neigh)), j), n)
		})
	})
	p.Loop(p.I64(0), p.I64(steps), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(atoms), p.I64(1), func(i ir.Value) {
			xi := p.Load(ir.F64, p.GEP(ir.F64, pos, i))
			p.Loop(p.I64(0), p.I64(neigh), p.I64(1), func(j ir.Value) {
				n := p.loadIdx(nlist, p.Add(p.Mul(i, p.I64(neigh)), j))
				xj := p.Load(ir.F64, p.GEP(ir.F64, pos, n))
				d := p.FSub(xi, xj)
				fi := p.Load(ir.F64, p.GEP(ir.F64, force, i))
				p.Store(p.FAdd(fi, p.FMul(d, p.F64V(1e-3))), p.GEP(ir.F64, force, i))
			})
		})
	})
	return p.finish(p.FPToSI(p.Load(ir.F64, p.GEP(ir.F64, force, p.I64(7)))))
}

// buildOmnetpp: a discrete-event loop over a binary heap of pointers to
// heap-allocated event objects, with constant allocate/schedule/free churn.
func buildOmnetpp(s Scale) *ir.Module {
	heapCap := s.pick(1<<8, 1<<12, 1<<13)
	events := s.pick(1<<11, 1<<15, 1<<17)

	p := newProg("omnetpp_s")
	evT := ir.StructOf(ir.I64, ir.I64) // {time, payload}
	pq := p.m.AddGlobal("pq", ir.ArrayOf(ir.Ptr, int(heapCap)))
	size := p.m.AddGlobal("pqsize", ir.I64)

	// Seed the queue half full.
	p.Loop(p.I64(0), p.I64(heapCap/2), p.I64(1), func(i ir.Value) {
		e := p.Call(p.malloc, p.I64(evT.Size()))
		p.Store(p.And(p.rand(), p.I64(0xFFFF)), p.GEP(evT, e, p.I64(0), p.I64(0)))
		p.Store(e, p.GEP(ir.Ptr, pq, i))
	})
	p.Store(p.I64(heapCap/2), size)
	// Event loop: pop a pseudo-min slot, process it (scan a queue window,
	// the way heap sifting and module processing do in the real
	// simulator), then push a new event. The per-event processing work
	// amortizes the allocation churn, as it does in omnetpp itself.
	acc := p.Alloca(ir.I64, nil)
	p.Loop(p.I64(0), p.I64(events), p.I64(1), func(_ ir.Value) {
		n := p.Load(ir.I64, size)
		slot := p.URem(p.And(p.rand(), p.I64(0x7FFFFFFF)), n)
		e := p.Load(ir.Ptr, p.GEP(ir.Ptr, pq, slot))
		t := p.Load(ir.I64, p.GEP(evT, e, p.I64(0), p.I64(0)))
		p.Store(p.I64(0), acc)
		p.Loop(p.I64(0), p.I64(96), p.I64(1), func(k ir.Value) {
			idx := p.URem(p.Add(slot, k), n)
			other := p.Load(ir.Ptr, p.GEP(ir.Ptr, pq, idx))
			ot := p.Load(ir.I64, p.GEP(evT, other, p.I64(0), p.I64(0)))
			cur := p.Load(ir.I64, acc)
			lt := p.ICmp(ir.PredLT, ot, t)
			p.Store(p.Add(cur, p.Select(lt, p.I64(1), p.I64(0))), acc)
		})
		p.Call(p.free, e)
		ne := p.Call(p.malloc, p.I64(evT.Size()))
		rank := p.Load(ir.I64, acc)
		p.Store(p.Add(p.Add(t, rank), p.And(p.rand(), p.I64(255))), p.GEP(evT, ne, p.I64(0), p.I64(0)))
		p.Store(ne, p.GEP(ir.Ptr, pq, slot))
	})
	last := p.Load(ir.Ptr, p.GEP(ir.Ptr, pq, p.I64(0)))
	return p.finish(p.Load(ir.I64, p.GEP(evT, last, p.I64(0), p.I64(0))))
}

// buildXalancbmk: a DOM-like tree of many small heap nodes traversed along
// random paths — small-object pointer chasing over a big total footprint.
func buildXalancbmk(s Scale) *ir.Module {
	// Tree construction is tracked; the traversal steady state is not.
	nodes := s.pick(1<<9, 1<<15, 1<<17)
	walks := s.pick(1<<14, 1<<19, 1<<21)

	p := newProg("xalancbmk_s")
	nodeT := ir.StructOf(ir.I64, ir.ArrayOf(ir.Ptr, 3)) // {tag, children}
	pool := p.m.AddGlobal("dompool", ir.ArrayOf(ir.Ptr, int(nodes)))

	first := p.Call(p.malloc, p.I64(nodeT.Size()))
	p.Store(first, p.GEP(ir.Ptr, pool, p.I64(0)))
	p.Loop(p.I64(1), p.I64(nodes), p.I64(1), func(i ir.Value) {
		n := p.Call(p.malloc, p.I64(nodeT.Size()))
		p.Store(n, p.GEP(ir.Ptr, pool, i))
		p.Store(p.And(i, p.I64(63)), p.GEP(nodeT, n, p.I64(0), p.I64(0)))
		parent := p.Load(ir.Ptr, p.GEP(ir.Ptr, pool, p.URem(p.And(p.rand(), p.I64(0x7FFFFFFF)), i)))
		p.Store(n, p.GEP(nodeT, parent, p.I64(0), p.I64(1), p.And(p.rand(), p.I64(1))))
	})
	tags := p.Alloca(ir.I64, nil)
	p.Store(p.I64(0), tags)
	p.Loop(p.I64(0), p.I64(walks), p.I64(1), func(_ ir.Value) {
		n := p.Load(ir.Ptr, p.GEP(ir.Ptr, pool, p.randMod(nodes)))
		tag := p.Load(ir.I64, p.GEP(nodeT, n, p.I64(0), p.I64(0)))
		child := p.Load(ir.Ptr, p.GEP(nodeT, n, p.I64(0), p.I64(1), p.And(p.rand(), p.I64(2))))
		cNull := p.ICmp(ir.PredEQ, p.Cast(ir.OpPtrToInt, child, ir.I64), p.I64(0))
		bonus := p.Select(cNull, p.I64(0), p.I64(3))
		t := p.Load(ir.I64, tags)
		p.Store(p.Add(t, p.Add(tag, bonus)), tags)
	})
	return p.finish(p.Load(ir.I64, tags))
}

// buildXZ: LZMA-style compression: sequential input scan with random
// back-references into a large dictionary window.
func buildXZ(s Scale) *ir.Module {
	dict := s.pick(1<<12, 1<<20, 1<<22) // dictionary bytes as i64 slots
	input := s.pick(1<<12, 1<<16, 1<<18)

	p := newProg("xz_s")
	window := p.array("window", dict)
	out := p.array("out", input)

	p.Loop(p.I64(0), p.I64(dict), p.I64(1), func(i ir.Value) {
		p.storeIdx(window, i, p.And(p.rand(), p.I64(255)))
	})
	p.Loop(p.I64(0), p.I64(input), p.I64(1), func(i ir.Value) {
		// Hash-chain probe: 3 random historical positions.
		m1 := p.loadIdx(window, p.randMod(dict))
		m2 := p.loadIdx(window, p.randMod(dict))
		m3 := p.loadIdx(window, p.randMod(dict))
		best := p.Add(p.Add(m1, m2), m3)
		p.storeIdx(out, i, best)
		p.storeIdx(window, p.And(i, p.I64(dict-1)), best)
	})
	return p.finish(p.loadIdx(out, p.I64(4)))
}
