package workload

import "carat/internal/ir"

// The HPC benchmarks: Mantevo HPCCG and the NAS kernels CG, EP, FT, LU.
// Their shared personality: large statically-allocated (global) arrays —
// the paper notes their static footprint and total allocations are nearly
// identical (Table 2) — with loop nests whose addresses are affine in the
// induction variables, which is why Table 1 shows them dominated by the
// hoisting and scalar-evolution optimizations.

func init() {
	register(&Workload{
		Name: "HPCCG", Suite: "mantevo",
		Desc:  "sparse CG solve: banded CSR matvec over global arrays",
		Build: buildHPCCG,
	})
	register(&Workload{
		Name: "CG", Suite: "nas",
		Desc:  "conjugate gradient with wider random sparsity than HPCCG",
		Build: buildCG,
	})
	register(&Workload{
		Name: "EP", Suite: "nas",
		Desc:  "embarrassingly parallel RNG kernel: tiny footprint, pure compute",
		Build: buildEP,
	})
	register(&Workload{
		Name: "FT", Suite: "nas",
		Desc:  "FFT-style strided passes over large global (bss) arrays",
		Build: buildFT,
	})
	register(&Workload{
		Name: "LU", Suite: "nas",
		Desc:  "blocked dense solver: unit-stride inner loops over globals",
		Build: buildLU,
	})
}

// buildHPCCG models a CG iteration on a banded sparse matrix in CSR-like
// form: y[i] = sum_j vals[i*nz+j] * x[cols[i*nz+j]], cols within a band of
// i, repeated for several solver iterations.
func buildHPCCG(s Scale) *ir.Module {
	rows := s.pick(1<<10, 1<<14, 1<<16)
	const nz = 8
	iters := s.pick(4, 8, 16)

	p := newProg("HPCCG")
	vals := p.farray("vals", rows*nz)
	cols := p.array("cols", rows*nz)
	x := p.farray("x", rows)
	y := p.farray("y", rows)

	// Init: band structure cols[i*nz+j] = clamp(i + j - nz/2).
	p.Loop(p.I64(0), p.I64(rows), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(i), p.GEP(ir.F64, x, i))
		p.Loop(p.I64(0), p.I64(nz), p.I64(1), func(j ir.Value) {
			idx := p.Add(p.Mul(i, p.I64(nz)), j)
			c := p.Add(i, j)
			// clamp into [0, rows)
			cm := p.URem(c, p.I64(rows))
			p.storeIdx(cols, idx, cm)
			p.Store(p.F64V(0.5), p.GEP(ir.F64, vals, idx))
		})
	})
	// Solver iterations. The accumulator cell lives in the entry frame:
	// allocas inside loops would grow the frame every iteration.
	acc := p.Alloca(ir.F64, nil)
	p.Loop(p.I64(0), p.I64(iters), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(rows), p.I64(1), func(i ir.Value) {
			p.Store(p.F64V(0), acc)
			p.Loop(p.I64(0), p.I64(nz), p.I64(1), func(j ir.Value) {
				idx := p.Add(p.Mul(i, p.I64(nz)), j)
				v := p.Load(ir.F64, p.GEP(ir.F64, vals, idx))
				c := p.loadIdx(cols, idx)
				xv := p.Load(ir.F64, p.GEP(ir.F64, x, c))
				cur := p.Load(ir.F64, acc)
				p.Store(p.FAdd(cur, p.FMul(v, xv)), acc)
			})
			p.Store(p.Load(ir.F64, acc), p.GEP(ir.F64, y, i))
		})
	})
	r := p.Load(ir.F64, p.GEP(ir.F64, y, p.I64(1)))
	return p.finish(p.FPToSI(r))
}

// SIToFP/FPToSI helpers keep builders terse.
func (p *prog) SIToFP(v ir.Value) ir.Value { return p.Cast(ir.OpSIToFP, v, ir.F64) }
func (p *prog) FPToSI(v ir.Value) ir.Value { return p.Cast(ir.OpFPToSI, v, ir.I64) }

// buildCG is HPCCG with randomized (non-banded) column indices: the gather
// x[cols[k]] jumps across the whole vector, raising TLB pressure.
func buildCG(s Scale) *ir.Module {
	rows := s.pick(1<<10, 1<<15, 1<<17)
	const nz = 6
	iters := s.pick(3, 6, 12)

	p := newProg("CG")
	vals := p.farray("vals", rows*nz)
	cols := p.array("cols", rows*nz)
	x := p.farray("x", rows)
	y := p.farray("y", rows)

	p.Loop(p.I64(0), p.I64(rows*nz), p.I64(1), func(k ir.Value) {
		p.storeIdx(cols, k, p.randMod(rows))
		p.Store(p.F64V(0.25), p.GEP(ir.F64, vals, k))
	})
	p.Loop(p.I64(0), p.I64(rows), p.I64(1), func(i ir.Value) {
		p.Store(p.SIToFP(i), p.GEP(ir.F64, x, i))
	})
	acc := p.Alloca(ir.F64, nil)
	p.Loop(p.I64(0), p.I64(iters), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(rows), p.I64(1), func(i ir.Value) {
			p.Store(p.F64V(0), acc)
			p.Loop(p.I64(0), p.I64(nz), p.I64(1), func(j ir.Value) {
				idx := p.Add(p.Mul(i, p.I64(nz)), j)
				c := p.loadIdx(cols, idx)
				xv := p.Load(ir.F64, p.GEP(ir.F64, x, c))
				v := p.Load(ir.F64, p.GEP(ir.F64, vals, idx))
				cur := p.Load(ir.F64, acc)
				p.Store(p.FAdd(cur, p.FMul(v, xv)), acc)
			})
			p.Store(p.Load(ir.F64, acc), p.GEP(ir.F64, y, i))
		})
	})
	r := p.Load(ir.F64, p.GEP(ir.F64, y, p.I64(2)))
	return p.finish(p.FPToSI(r))
}

// buildEP models NAS EP: long RNG/compute chains with a tiny accumulator
// table — essentially no memory pressure and (per Table 2) almost no page
// allocations beyond the initial mapping.
func buildEP(s Scale) *ir.Module {
	pairs := s.pick(1<<13, 1<<17, 1<<20)

	p := newProg("EP")
	hist := p.array("hist", 16)
	p.Loop(p.I64(0), p.I64(pairs), p.I64(1), func(_ ir.Value) {
		a := p.rand()
		b := p.rand()
		x := p.SIToFP(p.And(a, p.I64(0xFFFF)))
		y := p.SIToFP(p.And(b, p.I64(0xFFFF)))
		t := p.FAdd(p.FMul(x, x), p.FMul(y, y))
		bucket := p.And(p.FPToSI(p.FDiv(t, p.F64V(6.7108864e7))), p.I64(15))
		cur := p.loadIdx(hist, bucket)
		p.storeIdx(hist, bucket, p.Add(cur, p.I64(1)))
	})
	return p.finish(p.loadIdx(hist, p.I64(0)))
}

// buildFT models NAS FT: multi-pass strided sweeps over a large global
// array (the bss-resident working set that dominates FT's static
// footprint in Table 2). Strides of 1, 64, and 4096 elements model the
// dimension-wise FFT passes.
func buildFT(s Scale) *ir.Module {
	n := s.pick(1<<14, 1<<20, 1<<22) // elements (i64)
	passes := s.pick(2, 3, 4)

	p := newProg("FT")
	data := p.array("grid", n)
	strides := []int64{1, 64, 4096}
	p.Loop(p.I64(0), p.I64(passes), p.I64(1), func(_ ir.Value) {
		for _, st := range strides {
			if st >= n {
				continue
			}
			// for base in [0, st): for i = base; i < n; i += st
			p.Loop(p.I64(0), p.I64(st), p.I64(1), func(base ir.Value) {
				p.Loop(base, p.I64(n), p.I64(st), func(i ir.Value) {
					v := p.loadIdx(data, i)
					tw := p.Add(p.Mul(v, p.I64(3)), p.I64(1))
					p.storeIdx(data, i, tw)
				})
			})
		}
	})
	return p.finish(p.loadIdx(data, p.I64(7)))
}

// buildLU models NAS LU: a blocked dense update C[i][j] -= A[i][k]*B[k][j]
// with unit-stride inner loops over global matrices, the pattern Table 1
// credits mostly to the scalar-evolution merge (Opt 2).
func buildLU(s Scale) *ir.Module {
	dim := s.pick(32, 96, 160) // matrix dimension
	iters := s.pick(2, 4, 6)

	p := newProg("LU")
	a := p.farray("A", dim*dim)
	b := p.farray("B", dim*dim)
	c := p.farray("C", dim*dim)

	p.Loop(p.I64(0), p.I64(dim*dim), p.I64(1), func(k ir.Value) {
		f := p.SIToFP(p.And(k, p.I64(255)))
		p.Store(f, p.GEP(ir.F64, a, k))
		p.Store(p.FMul(f, p.F64V(0.5)), p.GEP(ir.F64, b, k))
		p.Store(p.F64V(0), p.GEP(ir.F64, c, k))
	})
	p.Loop(p.I64(0), p.I64(iters), p.I64(1), func(_ ir.Value) {
		p.Loop(p.I64(0), p.I64(dim), p.I64(1), func(i ir.Value) {
			p.Loop(p.I64(0), p.I64(dim), p.I64(1), func(k ir.Value) {
				av := p.Load(ir.F64, p.GEP(ir.F64, a, p.Add(p.Mul(i, p.I64(dim)), k)))
				p.Loop(p.I64(0), p.I64(dim), p.I64(1), func(j ir.Value) {
					bi := p.Add(p.Mul(k, p.I64(dim)), j)
					ci := p.Add(p.Mul(i, p.I64(dim)), j)
					bv := p.Load(ir.F64, p.GEP(ir.F64, b, bi))
					cv := p.Load(ir.F64, p.GEP(ir.F64, c, ci))
					p.Store(p.FSub(cv, p.FMul(av, bv)), p.GEP(ir.F64, c, ci))
				})
			})
		})
	})
	r := p.Load(ir.F64, p.GEP(ir.F64, c, p.I64(3)))
	return p.finish(p.FPToSI(r))
}
