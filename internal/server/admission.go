package server

import (
	"sync/atomic"

	"carat/internal/kernel"
	"carat/internal/obs"
)

// Admission states, published as the carat.server.admission_state gauge.
// The controller is a small state machine evaluated per request:
//
//	Admitting ──(inflight cap or memory over watermark)──▶ Throttled
//	Throttled ──(pressure subsides)─────────────────────▶ Admitting
//	any ──(Drain)──▶ Draining (terminal: no new work, in-flight finishes)
const (
	stateAdmitting = iota
	stateThrottled
	stateDraining
)

// admission decides whether a request may start executing. Two pressure
// signals gate admission before any per-tenant quota is consulted: the
// global in-flight cap (how many processes the machine runs at once) and
// the mmpolicy free-memory watermark (fraction of physical pages in use).
// Rejections are cheap 429s with Retry-After — the alternative, admitting
// everyone, degrades every tenant at once.
type admission struct {
	kern        *kernel.Kernel
	maxInflight int64
	highWater   float64 // reject when used-page fraction exceeds this
	retryAfter  int     // seconds, advertised on 429

	inflight atomic.Int64
	peak     atomic.Int64 // high-water mark of inflight over the process lifetime
	draining atomic.Bool

	inflightG  *obs.Gauge
	peakG      *obs.Gauge
	stateG     *obs.Gauge
	rejections *obs.Counter
}

func newAdmission(k *kernel.Kernel, maxInflight int, highWater float64, retryAfter int, reg *obs.Registry) *admission {
	if maxInflight <= 0 {
		maxInflight = 32
	}
	if highWater <= 0 || highWater > 1 {
		highWater = 0.85
	}
	if retryAfter <= 0 {
		retryAfter = 1
	}
	return &admission{
		kern:        k,
		maxInflight: int64(maxInflight),
		highWater:   highWater,
		retryAfter:  retryAfter,
		inflightG:   reg.Gauge("carat.server.inflight"),
		peakG:       reg.Gauge("carat.server.inflight_peak"),
		stateG:      reg.Gauge("carat.server.admission_state"),
		rejections:  reg.Counter("carat.server.admission_rejections"),
	}
}

// overWatermark reports whether the shared machine's used-page fraction
// exceeds the high watermark — the same free-memory signal the mmpolicy
// tiering daemon steers by.
func (a *admission) overWatermark() bool {
	total := a.kern.Alloc.TotalPages()
	if total == 0 {
		return false
	}
	used := total - a.kern.Alloc.FreePages()
	return float64(used)/float64(total) > a.highWater
}

// admit tries to claim an execution slot. On success it returns a release
// function and ok=true. On rejection ok=false and httpStatus/reason say
// why (503 while draining, 429 otherwise).
func (a *admission) admit() (release func(), httpStatus int, reason string, ok bool) {
	if a.draining.Load() {
		return nil, 503, "draining", false
	}
	if n := a.inflight.Add(1); n > a.maxInflight {
		a.inflight.Add(-1)
		a.rejections.Inc()
		a.stateG.Set(stateThrottled)
		return nil, 429, "inflight cap", false
	}
	if a.overWatermark() {
		a.inflight.Add(-1)
		a.rejections.Inc()
		a.stateG.Set(stateThrottled)
		return nil, 429, "memory watermark", false
	}
	a.stateG.Set(stateAdmitting)
	n := a.inflight.Load()
	a.inflightG.Set(uint64(n))
	// Lifetime high-water mark: loadgen asserts it exceeds 1 under a
	// concurrent session load — the proof the server actually overlaps
	// tenant executions instead of silently serializing them.
	for {
		p := a.peak.Load()
		if n <= p {
			break
		}
		if a.peak.CompareAndSwap(p, n) {
			a.peakG.Set(uint64(n))
			break
		}
	}
	return func() {
		a.inflight.Add(-1)
		a.inflightG.Set(uint64(max64(a.inflight.Load(), 0)))
	}, 0, "", true
}

// setDraining flips the controller into its terminal state.
func (a *admission) setDraining() {
	a.draining.Store(true)
	a.stateG.Set(stateDraining)
}

// RetryAfter returns the advertised backoff in seconds.
func (a *admission) RetryAfter() int { return a.retryAfter }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
