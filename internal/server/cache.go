package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"carat/internal/ir"
	"carat/internal/obs"
)

// moduleEntry is one compiled, signature-verified module in the cache.
// After insertion the module is immutable (compilation mutates its input,
// so every compile parses a fresh module from source) and is shared by
// every VM that runs it concurrently.
type moduleEntry struct {
	ref   string
	mod   *ir.Module
	kind  string
	level string
	name  string
	bytes uint64 // source size, the unit of the cache's byte bound
}

// compileJob is one in-flight compilation; duplicate requests for the same
// key join it instead of compiling again (single-flight).
type compileJob struct {
	done  chan struct{}
	entry *moduleEntry
	err   error
}

// moduleCache is an LRU of compiled modules keyed by source hash, with a
// bounded compile worker pool in front: cache misses queue onto the pool,
// so a burst of distinct sources compiles at most `workers` at a time
// while identical sources coalesce into one job.
type moduleCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   uint64
	bytes      uint64
	ll         *list.List // front = most recently used; values are *moduleEntry
	items      map[string]*list.Element
	inflight   map[string]*compileJob

	sem chan struct{} // compile worker slots

	hits, misses, evictions *obs.Counter
	queueDepth              *obs.Gauge
}

func newModuleCache(maxEntries int, maxBytes uint64, workers int, reg *obs.Registry) *moduleCache {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	if workers <= 0 {
		workers = 2
	}
	return &moduleCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		inflight:   make(map[string]*compileJob),
		sem:        make(chan struct{}, workers),
		hits:       reg.Counter("carat.server.module_cache.hits"),
		misses:     reg.Counter("carat.server.module_cache.misses"),
		evictions:  reg.Counter("carat.server.module_cache.evictions"),
		queueDepth: reg.Gauge("carat.server.compile_queue_depth"),
	}
}

// cacheKey derives the module reference: a hash over everything that
// determines the compiled artifact — source language, pipeline level,
// module name, and the source text itself.
func cacheKey(kind, level, name, source string) string {
	h := sha256.New()
	for _, part := range []string{kind, level, name, source} {
		var n [8]byte
		for i, l := 0, len(part); i < 8; i++ {
			n[i] = byte(l >> (8 * i))
		}
		h.Write(n[:]) // length-prefix each part so field boundaries can't collide
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the entry for ref, bumping it to most-recently-used. The
// miss counter is NOT advanced here: a ref lookup miss is the client's
// error (404), not cache pressure.
func (c *moduleCache) get(ref string) *moduleEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[ref]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*moduleEntry)
}

// getOrCompile returns the cached entry for the key, or runs compile on
// the bounded worker pool (coalescing concurrent identical requests) and
// caches the result. The bool reports whether the entry came from cache.
func (c *moduleCache) getOrCompile(key string, compile func() (*moduleEntry, error)) (*moduleEntry, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		c.mu.Unlock()
		return el.Value.(*moduleEntry), true, nil
	}
	if job, ok := c.inflight[key]; ok {
		// Someone is already compiling this source: join their flight.
		c.mu.Unlock()
		<-job.done
		return job.entry, true, job.err
	}
	c.misses.Inc()
	job := &compileJob{done: make(chan struct{})}
	c.inflight[key] = job
	c.mu.Unlock()

	c.queueDepth.Add(1)
	c.sem <- struct{}{} // wait for a compile worker slot
	job.entry, job.err = compile()
	<-c.sem
	c.queueDepth.Add(^uint64(0)) // -1

	c.mu.Lock()
	delete(c.inflight, key)
	if job.err == nil {
		job.entry.ref = key
		c.insert(key, job.entry)
	}
	c.mu.Unlock()
	close(job.done)
	return job.entry, false, job.err
}

// insert adds the entry and evicts from the LRU tail until both bounds
// hold. Called with c.mu held.
func (c *moduleCache) insert(key string, e *moduleEntry) {
	if el, ok := c.items[key]; ok { // lost a benign race; keep the first
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += e.bytes
	for c.ll.Len() > c.maxEntries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		old := tail.Value.(*moduleEntry)
		c.ll.Remove(tail)
		delete(c.items, old.ref)
		c.bytes -= old.bytes
		c.evictions.Inc()
	}
}

// Len reports the number of cached modules (for tests).
func (c *moduleCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
