package server

import (
	"log"
	"time"

	"carat/internal/mmpolicy"
	"carat/internal/obs"
)

// BallastConfig sizes the background mmpolicy service. The ballast is a
// set of synthetic workload processes (churn, stream, coldstore) managed
// by the policy daemon on the SAME kernel that serves tenant requests:
// the daemon's defragmentation, tiering, and isolation windows genuinely
// contend with tenant page grants, while its moves and swaps stay scoped
// to the ballast processes — tenant runs are never relocated, which keeps
// their modeled results byte-identical under any interleaving.
type BallastConfig struct {
	// Disabled turns the background service off entirely.
	Disabled bool `json:"disabled"`
	// ChurnSlots/StreamSlots/ColdSlots size the three workload processes
	// (slot = one pointer to a stamped allocation). Zero picks defaults.
	ChurnSlots  int `json:"churn_slots"`
	StreamSlots int `json:"stream_slots"`
	ColdSlots   int `json:"cold_slots"`
	// TickEvery is the daemon's wake interval on the harness's modeled
	// clock; StepBatch is how many workload rounds run between checks of
	// the stop channel; VerifyEvery counts batches between full
	// stamp-integrity verifications. Zero picks defaults.
	TickEvery   uint64 `json:"tick_every"`
	StepBatch   int    `json:"step_batch"`
	VerifyEvery int    `json:"verify_every"`
	// Pace sleeps this long between batches so the ballast competes with
	// tenant traffic without monopolizing a host core.
	Pace time.Duration `json:"-"`
	// Seed drives the workloads' allocation randomness.
	Seed int64 `json:"seed"`
}

func (c BallastConfig) withDefaults() BallastConfig {
	if c.ChurnSlots == 0 {
		c.ChurnSlots = 48
	}
	if c.StreamSlots == 0 {
		c.StreamSlots = 12
	}
	if c.ColdSlots == 0 {
		c.ColdSlots = 12
	}
	if c.TickEvery == 0 {
		c.TickEvery = 50_000
	}
	if c.StepBatch == 0 {
		c.StepBatch = 32
	}
	if c.VerifyEvery == 0 {
		c.VerifyEvery = 64
	}
	if c.Pace == 0 {
		c.Pace = 200 * time.Microsecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ballast runs the mmpolicy harness as a long-lived background goroutine.
type ballast struct {
	h    *mmpolicy.Harness
	cfg  BallastConfig
	stop chan struct{}
	done chan struct{}

	steps      *obs.Counter
	violations *obs.Counter
}

func (s *Server) newBallast(cfg BallastConfig) (*ballast, error) {
	cfg = cfg.withDefaults()
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		Kernel:    s.kern,
		TickEvery: cfg.TickEvery,
		Procs: []mmpolicy.ProcSpec{
			{Name: "ballast-churn", Kind: mmpolicy.Churn, Slots: cfg.ChurnSlots, MaxPages: 4, Seed: cfg.Seed},
			{Name: "ballast-stream", Kind: mmpolicy.Stream, Slots: cfg.StreamSlots, MaxPages: 2, Seed: cfg.Seed + 1},
			{Name: "ballast-cold", Kind: mmpolicy.ColdStore, Slots: cfg.ColdSlots, MaxPages: 2, Seed: cfg.Seed + 2},
		},
		Policies: []mmpolicy.Policy{
			mmpolicy.NewDefrag(64),
			mmpolicy.NewTiering(),
			mmpolicy.NewNUMARebalance(),
		},
		// The ballast's pauses land in the same tenant-visible pause
		// histogram as everything else, so it honors the server's budget.
		PauseBudget: s.cfg.PauseBudgetCycles,
	})
	if err != nil {
		return nil, err
	}
	return &ballast{
		h:          h,
		cfg:        cfg,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		steps:      s.reg.Counter("carat.server.ballast_steps"),
		violations: s.reg.Counter("carat.server.invariant_violations"),
	}, nil
}

// run is the service loop: workload rounds interleaved with daemon ticks,
// a full integrity verification every VerifyEvery batches, and a final
// verification at shutdown. Every violation increments the counter that
// Drain inspects — caratd exits nonzero if any occurred.
func (b *ballast) run() {
	defer close(b.done)
	batches := 0
	for {
		select {
		case <-b.stop:
			b.verify()
			return
		default:
		}
		if err := b.h.Run(b.cfg.StepBatch); err != nil {
			log.Printf("caratd: ballast harness error: %v", err)
			b.violations.Inc()
			b.verify()
			return
		}
		b.steps.Add(uint64(b.cfg.StepBatch))
		batches++
		if batches%b.cfg.VerifyEvery == 0 {
			b.verify()
		}
		if b.cfg.Pace > 0 {
			time.Sleep(b.cfg.Pace)
		}
	}
}

func (b *ballast) verify() {
	if err := b.h.Verify(); err != nil {
		log.Printf("caratd: ballast invariant violation: %v", err)
		b.violations.Inc()
	}
}

// halt stops the loop and waits for the final verification.
func (b *ballast) halt() {
	select {
	case <-b.stop:
	default:
		close(b.stop)
	}
	<-b.done
}
