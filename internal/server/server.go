// Package server implements caratd: a long-running multi-tenant CARAT
// execution service. Tenants POST source (CARAT-C or .cir IR) or a
// precompiled module reference; the server compiles through the standard
// pass pipeline (with an LRU compiled-module cache and a bounded compile
// worker pool), then executes each request as its own kernel.Process over
// ONE shared PhysMem — while the mmpolicy daemon runs as a true background
// service on the same machine, competing with tenant traffic for pages.
//
// Tenant processes load as dark capsules (§3): one contiguous region per
// request. Besides matching the paper's linkage model, this makes the
// guard cost of a run independent of where in physical memory the capsule
// landed — which is what keeps modeled results byte-identical for the
// same module no matter how many other tenants are running.
package server

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"carat/internal/cc"
	"carat/internal/core"
	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/obs/telemetry"
	"carat/internal/passes"
	rt "carat/internal/runtime"
	"carat/internal/signing"
	"carat/internal/vm"
)

// Config configures a caratd instance.
type Config struct {
	// Addr is the listen address ("localhost:8080"; ":0" for an ephemeral
	// port).
	Addr string `json:"addr"`

	// MemBytes sizes the ONE physical memory every tenant shares.
	MemBytes uint64 `json:"mem_bytes"`
	// HeapBytes/StackBytes size each request's capsule heap and initial
	// stack (stacks are carved from the capsule heap).
	HeapBytes  uint64 `json:"heap_bytes"`
	StackBytes uint64 `json:"stack_bytes"`
	// MaxInstrs aborts runaway requests (a server-wide backstop under the
	// per-tenant cycle quota).
	MaxInstrs uint64 `json:"max_instrs"`
	// MaxBodyBytes caps request body size.
	MaxBodyBytes int64 `json:"max_body_bytes"`

	// CompileWorkers bounds concurrent compilations; CacheEntries and
	// CacheBytes bound the compiled-module LRU.
	CompileWorkers int    `json:"compile_workers"`
	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     uint64 `json:"cache_bytes"`

	// MaxInflight caps concurrently executing requests machine-wide;
	// HighWatermark is the used-page fraction beyond which admission
	// throttles; RetryAfterSec is advertised on every 429.
	MaxInflight   int     `json:"max_inflight"`
	HighWatermark float64 `json:"high_watermark"`
	RetryAfterSec int     `json:"retry_after_sec"`

	// DefaultQuota applies to tenants not named in Tenants.
	DefaultQuota Quota            `json:"default_quota"`
	Tenants      map[string]Quota `json:"tenants"`

	// Ballast configures the background mmpolicy service.
	Ballast BallastConfig `json:"ballast"`

	// PauseBudgetCycles, when non-zero, runs every request's runtime under
	// the incremental bounded-pause move protocol with the largest batch
	// whose worst-case pause (runtime.PauseBound) fits the budget. Zero
	// keeps the legacy full-stop protocol. Either way the pause histograms
	// land tenant-visible on /metrics; modeled results are identical.
	PauseBudgetCycles uint64 `json:"pause_budget_cycles"`

	// Closure runs every tenant VM on the closure compilation tier (the
	// fastest engine; modeled results are byte-identical with the
	// predecode tier, so this is a pure host-throughput knob).
	Closure bool `json:"closure"`

	// Obs, when non-nil, is the metrics registry (a private one is created
	// otherwise). The telemetry endpoints serve whichever is used.
	Obs *obs.Registry `json:"-"`
}

// DefaultServerConfig returns a configuration suitable for local serving
// and the loadgen harness.
func DefaultServerConfig() Config {
	return Config{
		Addr:           "localhost:0",
		MemBytes:       1 << 29, // 512 MB shared
		HeapBytes:      1 << 22, // 4 MB capsule heap per request
		StackBytes:     1 << 18, // 256 KB initial stack, carved from the heap
		MaxInstrs:      200_000_000,
		MaxBodyBytes:   1 << 20,
		CompileWorkers: 4,
		CacheEntries:   256,
		CacheBytes:     1 << 24,
		MaxInflight:    32,
		HighWatermark:  0.85,
		RetryAfterSec:  1,
		DefaultQuota:   Quota{MaxConcurrent: 16, MaxPages: 1 << 14, MaxCycles: 5_000_000_000},
	}
}

// Server is a caratd instance.
type Server struct {
	cfg  Config
	reg  *obs.Registry
	kern *kernel.Kernel

	compilers map[passes.Level]*core.Compiler
	trust     *signing.TrustStore
	cache     *moduleCache
	adm       *admission
	bal       *ballast
	tel       *telemetry.Server

	tenMu   sync.Mutex
	tenants map[string]*tenant

	inflight sync.WaitGroup // executing /v1 requests, for Drain

	mu       sync.Mutex
	ln       net.Listener
	http     *http.Server
	draining bool

	reqTotal *obs.Counter
	reqNS    *obs.Histogram
	drainMS  *obs.Gauge
}

// New builds a server: one shared kernel, one compiler per pipeline level
// (each with its own signing identity, all trusted), the module cache,
// admission control, and — unless disabled — the ballast mmpolicy service
// (not yet started; Start launches it).
func New(cfg Config) (*Server, error) {
	def := DefaultServerConfig()
	if cfg.MemBytes == 0 {
		cfg.MemBytes = def.MemBytes
	}
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = def.HeapBytes
	}
	if cfg.StackBytes == 0 {
		cfg.StackBytes = def.StackBytes
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = def.MaxInstrs
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = def.MaxBodyBytes
	}
	if cfg.Addr == "" {
		cfg.Addr = def.Addr
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:       cfg,
		reg:       reg,
		kern:      kernel.NewWith(cfg.MemBytes, reg),
		compilers: make(map[passes.Level]*core.Compiler),
		trust:     signing.NewTrustStore(),
		tenants:   make(map[string]*tenant),
		reqTotal:  reg.Counter("carat.server.requests_total"),
		reqNS:     reg.Histogram("carat.server.request_ns"),
		drainMS:   reg.Gauge("carat.server.drain_duration_ms"),
	}
	for _, lvl := range []passes.Level{
		passes.LevelNone, passes.LevelGuardsOnly, passes.LevelGuardsOpt,
		passes.LevelTracking, passes.LevelTrackingOnly,
	} {
		// One signing identity per level: the trust store keys by toolchain
		// name, so the names must be distinct.
		tc, err := signing.NewToolchain(fmt.Sprintf("caratd-cc-l%d", lvl), rand.Reader)
		if err != nil {
			return nil, fmt.Errorf("server: toolchain for level %v: %w", lvl, err)
		}
		// Workers=1: the server's parallelism comes from concurrent
		// requests, not from fanning one compile across cores.
		s.compilers[lvl] = &core.Compiler{Level: lvl, Toolchain: tc, Workers: 1, Obs: reg}
		s.trust.Trust(tc.Name, tc.Public())
	}
	s.cache = newModuleCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CompileWorkers, reg)
	s.adm = newAdmission(s.kern, cfg.MaxInflight, cfg.HighWatermark, cfg.RetryAfterSec, reg)
	s.tel = &telemetry.Server{Registry: reg}
	if !cfg.Ballast.Disabled {
		b, err := s.newBallast(cfg.Ballast)
		if err != nil {
			return nil, fmt.Errorf("server: ballast: %w", err)
		}
		s.bal = b
	}
	return s, nil
}

// Obs returns the server's metrics registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Kernel returns the shared machine (for tests).
func (s *Server) Kernel() *kernel.Kernel { return s.kern }

// Handler returns the full caratd mux: /v1/run and /v1/modules plus the
// telemetry endpoints (/metrics, /profile, /trace, /healthz, /readyz) on
// the same listener. StartBackground must have run for ballast traffic.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.tel.Handler())
	mux.HandleFunc("/v1/run", s.instrument(s.handleRun))
	mux.HandleFunc("/v1/modules", s.instrument(s.handleModules))
	return mux
}

// StartBackground launches the ballast service and flips /readyz to 200.
// Called by Start; tests using Handler() directly call it themselves.
func (s *Server) StartBackground() {
	if s.bal != nil {
		go s.bal.run()
	}
	s.tel.SetReady(true)
}

// Start binds the configured address, launches background services, and
// serves in a goroutine. It returns the bound address.
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.http = ln, srv
	s.mu.Unlock()
	s.StartBackground()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Drain/Close
	return ln.Addr().String(), nil
}

// Drain performs graceful shutdown: stop admitting (new /v1 requests get
// 503, /readyz flips to 503), let in-flight runs finish, halt the ballast
// service (final integrity verification included), and stop the listener.
// It returns the number of invariant violations observed over the
// server's lifetime — nonzero means the machine's integrity was breached
// and caratd should exit nonzero.
func (s *Server) Drain(ctx context.Context) (uint64, error) {
	start := time.Now()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return s.violations(), nil
	}
	s.draining = true
	srv := s.http
	s.mu.Unlock()

	s.tel.SetReady(false)
	s.adm.setDraining()
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
	}
	if s.bal != nil {
		s.bal.halt()
	}
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.drainMS.Set(uint64(time.Since(start).Milliseconds()))
	return s.violations(), err
}

// Close force-stops without draining (tests).
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http, s.ln = nil, nil
	s.mu.Unlock()
	if s.bal != nil {
		s.bal.halt()
	}
	if srv != nil {
		return srv.Close()
	}
	return nil
}

func (s *Server) violations() uint64 {
	return s.reg.Counter("carat.server.invariant_violations").Get()
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a /v1 handler with the request counters, the latency
// histogram, and the in-flight waitgroup Drain blocks on.
func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Done()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: 200}
		h(sw, r)
		s.reqTotal.Inc()
		s.reg.Counter("carat.server.requests." + strconv.Itoa(sw.code)).Inc()
		s.reqNS.Observe(uint64(time.Since(start).Nanoseconds()))
	}
}

// runRequest is the body of POST /v1/run (and, minus Ref/Seed semantics,
// POST /v1/modules). Exactly one of Source or Ref must be set for runs;
// modules require Source.
type runRequest struct {
	Tenant string `json:"tenant"`
	// Kind is the source language: "cc" (CARAT-C) or "cir" (textual IR).
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Source string `json:"source"`
	// Ref runs a previously compiled module by its cache reference.
	Ref string `json:"ref"`
	// Level is the pipeline level ("none", "guards", "guards-opt",
	// "carat", "tracking-only"); default "carat".
	Level string `json:"level"`
	// Seed is an opaque client token echoed into the response and its
	// digest context: identical (module, seed) requests must produce
	// byte-identical modeled results regardless of server concurrency.
	Seed int64 `json:"seed"`
}

// runResponse is the carat.server.result v1 document.
type runResponse struct {
	Schema      string  `json:"schema"`
	Version     int     `json:"version"`
	Ref         string  `json:"ref"`
	Cached      bool    `json:"cached"`
	Seed        int64   `json:"seed"`
	Exit        int64   `json:"exit"`
	Instrs      uint64  `json:"instrs"`
	Cycles      uint64  `json:"cycles"`
	GuardChecks uint64  `json:"guard_checks"`
	Output      []int64 `json:"output"`
	Digest      string  `json:"digest"`
	WallMS      float64 `json:"wall_ms"`
}

type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // best-effort over HTTP
}

func (s *Server) writeError(w http.ResponseWriter, code int, reason string, err error) {
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.adm.RetryAfter()))
	}
	writeJSON(w, code, errorResponse{Error: err.Error(), Reason: reason})
}

func parseLevel(name string) (passes.Level, error) {
	switch name {
	case "", "carat":
		return passes.LevelTracking, nil
	case "none":
		return passes.LevelNone, nil
	case "guards":
		return passes.LevelGuardsOnly, nil
	case "guards-opt":
		return passes.LevelGuardsOpt, nil
	case "tracking-only":
		return passes.LevelTrackingOnly, nil
	}
	return 0, fmt.Errorf("unknown level %q", name)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request) (*runRequest, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "method", errors.New("POST required"))
		return nil, false
	}
	var req runRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "body", fmt.Errorf("decode request: %w", err))
		return nil, false
	}
	if req.Name == "" {
		req.Name = "mod"
	}
	return &req, true
}

// compileEntry parses and compiles one source through the level's
// toolchain, verifying the signature against the trust store before the
// module becomes shareable. The returned module is immutable from here on.
func (s *Server) compileEntry(req *runRequest) (*moduleEntry, error) {
	lvl, err := parseLevel(req.Level)
	if err != nil {
		return nil, err
	}
	var mod *ir.Module
	switch req.Kind {
	case "", "cc":
		mod, err = cc.Compile(req.Name, req.Source)
	case "cir":
		mod, err = ir.Parse(req.Source)
	default:
		err = fmt.Errorf("unknown source kind %q", req.Kind)
	}
	if err != nil {
		return nil, err
	}
	res, err := s.compilers[lvl].Compile(mod)
	if err != nil {
		return nil, err
	}
	if err := s.trust.Verify(res.Binary); err != nil {
		return nil, fmt.Errorf("signature rejected: %w", err)
	}
	return &moduleEntry{
		mod:   res.Binary.Module,
		kind:  req.Kind,
		level: req.Level,
		name:  req.Name,
		bytes: uint64(len(req.Source)),
	}, nil
}

// resolve finds or builds the compiled module for a request.
func (s *Server) resolve(req *runRequest) (*moduleEntry, bool, int, string, error) {
	if req.Ref != "" {
		if e := s.cache.get(req.Ref); e != nil {
			return e, true, 0, "", nil
		}
		return nil, false, http.StatusNotFound, "unknown ref",
			fmt.Errorf("module %s not in cache (POST it to /v1/modules first)", req.Ref)
	}
	if req.Source == "" {
		return nil, false, http.StatusBadRequest, "body", errors.New("one of source or ref is required")
	}
	key := cacheKey(req.Kind, req.Level, req.Name, req.Source)
	e, cached, err := s.cache.getOrCompile(key, func() (*moduleEntry, error) { return s.compileEntry(req) })
	if err != nil {
		return nil, false, http.StatusBadRequest, "compile", err
	}
	return e, cached, 0, "", nil
}

// handleModules compiles (or finds) a module and returns its reference
// without running it — the precompile path.
func (s *Server) handleModules(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	if s.adm.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", errors.New("server is draining"))
		return
	}
	start := time.Now()
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "body", errors.New("source is required"))
		return
	}
	key := cacheKey(req.Kind, req.Level, req.Name, req.Source)
	e, cached, err := s.cache.getOrCompile(key, func() (*moduleEntry, error) { return s.compileEntry(req) })
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "compile", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ref":     e.ref,
		"cached":  cached,
		"name":    e.name,
		"level":   e.level,
		"wall_ms": float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleRun executes a module as a fresh kernel.Process on the shared
// machine and returns the carat.server.result v1 document.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decode(w, r)
	if !ok {
		return
	}
	start := time.Now()

	release, code, reason, ok := s.adm.admit()
	if !ok {
		s.writeError(w, code, reason, fmt.Errorf("request rejected: %s", reason))
		return
	}
	defer release()

	ten := s.tenantFor(req.Tenant)
	if err := ten.acquireSlot(); err != nil {
		s.reg.Counter("carat.server.quota_rejections").Inc()
		s.writeError(w, http.StatusTooManyRequests, "tenant concurrency quota", err)
		return
	}
	defer ten.releaseSlot()

	entry, cached, code, reason, err := s.resolve(req)
	if err != nil {
		s.writeError(w, code, reason, err)
		return
	}

	// Each run gets a PRIVATE registry: the vm folds runtime cycle counters
	// into its modeled clock as deltas, and a shared registry would leak
	// other tenants' concurrent tracking cycles into this run's deltas —
	// breaking byte-identical results. Counters are merged into the shared
	// registry after the run, so /metrics still sees machine-wide totals.
	runReg := obs.NewRegistry()
	v, err := vm.Load(entry.mod, vm.Config{
		Mode:        vm.ModeCARAT,
		GuardMech:   guard.MechRange,
		Kernel:      s.kern,
		Limiter:     ten,
		Capsule:     true,
		HeapBytes:   s.cfg.HeapBytes,
		StackBytes:  s.cfg.StackBytes,
		MaxInstrs:   s.cfg.MaxInstrs,
		MaxCycles:   ten.quota.MaxCycles,
		Predecode:   true,
		XCache:      true,
		Closure:     s.cfg.Closure,
		Obs:         runReg,
		Incremental: s.cfg.PauseBudgetCycles > 0,
		MoveBatch:   rt.BatchForBudget(s.cfg.PauseBudgetCycles),
	})
	if err != nil {
		switch {
		case errors.Is(err, kernel.ErrQuota):
			s.reg.Counter("carat.server.quota_rejections").Inc()
			s.writeError(w, http.StatusTooManyRequests, "tenant page quota", err)
		case errors.Is(err, kernel.ErrNoMemory):
			s.reg.Counter("carat.server.admission_rejections").Inc()
			s.writeError(w, http.StatusTooManyRequests, "memory pressure", err)
		default:
			s.writeError(w, http.StatusInternalServerError, "load", err)
		}
		return
	}
	defer v.Release() //nolint:errcheck // teardown; double-free is checked in tests
	defer func() {
		// Counters in a fresh registry are exact per-run totals; adding
		// them into the shared registry keeps carat.vm.* / carat.runtime.*
		// machine-wide on /metrics without contaminating any run's deltas.
		// Histograms merge bucket-wise the same way — this is what makes
		// the runtime's pause histograms (carat.runtime.pause_cycles*)
		// tenant-visible on /metrics, so a tenant can read the p99 pause
		// its requests actually experienced.
		snap := runReg.Snapshot()
		for name, val := range snap.Counters {
			s.reg.Counter(name).Add(val)
		}
		for name, hs := range snap.Histograms {
			s.reg.Histogram(name).Merge(hs)
		}
	}()

	ret, err := v.Run()
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "runtime", err)
		return
	}
	s.reg.Histogram("carat.server.exec_cycles").Observe(v.Cycles)

	resp := runResponse{
		Schema:      "carat.server.result",
		Version:     1,
		Ref:         entry.ref,
		Cached:      cached,
		Seed:        req.Seed,
		Exit:        ret,
		Instrs:      v.Instrs,
		Cycles:      v.Cycles,
		GuardChecks: v.GuardChecks,
		Output:      v.Output,
		WallMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	resp.Digest = digest(&resp)
	writeJSON(w, http.StatusOK, resp)
}

// digest fingerprints the modeled result: every field that must be
// byte-identical for identical (module, seed) requests regardless of
// concurrency. Wall time and cache state are deliberately excluded.
func digest(r *runResponse) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(r.Seed))
	put(uint64(r.Exit))
	put(r.Instrs)
	put(r.Cycles)
	put(r.GuardChecks)
	put(uint64(len(r.Output)))
	for _, v := range r.Output {
		put(uint64(v))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
