package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"carat/internal/kernel"
)

// Three deterministic CARAT-C workloads: heap writes, global histogram,
// printed output — everything the digest covers, no pointer printing.
const progSum = `
global acc: [8]int;
func main(): int {
    var buf = malloc(8 * 256);
    for (var i = 0; i < 256; i = i + 1) { buf[i] = i * 3; }
    var t = 0;
    for (var i = 0; i < 256; i = i + 1) {
        t = t + buf[i];
        acc[i & 7] = acc[i & 7] + buf[i];
    }
    for (var b = 0; b < 8; b = b + 1) { print_int(acc[b]); }
    free(buf);
    return t;
}`

const progChain = `
func main(): int {
    var a = malloc(8 * 64);
    var b = malloc(8 * 64);
    for (var i = 0; i < 64; i = i + 1) { a[i] = i; }
    for (var i = 0; i < 64; i = i + 1) { b[i] = a[63 - i] * 2; }
    var t = 0;
    for (var i = 0; i < 64; i = i + 1) { t = t + b[i]; }
    free(a);
    free(b);
    print_int(t);
    return t;
}`

const progLoop = `
func main(): int {
    var s = 1;
    for (var i = 0; i < 10000; i = i + 1) {
        s = (s * 31 + i) & 1048575;
    }
    print_int(s);
    return s;
}`

func testConfig() Config {
	cfg := DefaultServerConfig()
	cfg.MemBytes = 1 << 26  // 64 MB is plenty for tests
	cfg.HeapBytes = 1 << 20 // 1 MB capsules
	cfg.StackBytes = 1 << 17
	cfg.Ballast.Disabled = true
	return cfg
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.StartBackground()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, req any) (*http.Response, map[string]any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp, doc
}

// TestRunDeterministicUnderConcurrency is the server's core promise: with
// the ballast mmpolicy daemon churning the same physical memory and many
// tenants running at once, identical (module, seed) requests produce
// byte-identical modeled results.
func TestRunDeterministicUnderConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.Ballast.Disabled = false
	cfg.Ballast.Pace = 50 * time.Microsecond
	s, ts := newTestServer(t, cfg)

	progs := []string{progSum, progChain, progLoop}
	const goroutines = 32
	const perG = 4
	digests := make([][]string, len(progs))
	for i := range digests {
		digests[i] = make([]string, 0, goroutines*perG)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perG; k++ {
				pi := (g + k) % len(progs)
				req := runRequest{
					Tenant: fmt.Sprintf("tenant-%d", g%4),
					Source: progs[pi],
					Name:   fmt.Sprintf("prog-%d", pi),
					Seed:   int64(pi),
				}
				for {
					resp, doc := post(t, ts.URL+"/v1/run", req)
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("prog %d: status %d: %v", pi, resp.StatusCode, doc["error"])
						return
					}
					mu.Lock()
					digests[pi] = append(digests[pi], doc["digest"].(string))
					mu.Unlock()
					break
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for pi, ds := range digests {
		if len(ds) == 0 {
			t.Fatalf("prog %d: no successful runs", pi)
		}
		for _, d := range ds {
			if d != ds[0] {
				t.Fatalf("prog %d: digest diverged: %s vs %s", pi, d, ds[0])
			}
		}
	}
	if n, err := s.Drain(context.Background()); err != nil || n != 0 {
		t.Fatalf("drain: violations=%d err=%v", n, err)
	}
}

func TestModuleCachePrecompileAndRun(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	resp, doc := post(t, ts.URL+"/v1/modules", runRequest{Tenant: "a", Source: progSum, Name: "sum"})
	if resp.StatusCode != 200 {
		t.Fatalf("modules: status %d: %v", resp.StatusCode, doc["error"])
	}
	if doc["cached"] != false {
		t.Fatalf("first compile reported cached: %v", doc)
	}
	ref := doc["ref"].(string)

	resp, doc = post(t, ts.URL+"/v1/modules", runRequest{Tenant: "a", Source: progSum, Name: "sum"})
	if resp.StatusCode != 200 || doc["cached"] != true {
		t.Fatalf("second compile not a cache hit: %d %v", resp.StatusCode, doc)
	}

	resp, doc = post(t, ts.URL+"/v1/run", runRequest{Tenant: "a", Ref: ref})
	if resp.StatusCode != 200 {
		t.Fatalf("run by ref: status %d: %v", resp.StatusCode, doc["error"])
	}
	if doc["cached"] != true || doc["ref"] != ref {
		t.Fatalf("run by ref: %v", doc)
	}

	resp, _ = post(t, ts.URL+"/v1/run", runRequest{Tenant: "a", Ref: "deadbeef"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ref: status %d, want 404", resp.StatusCode)
	}

	if hits := s.reg.Counter("carat.server.module_cache.hits").Get(); hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", hits)
	}
	if misses := s.reg.Counter("carat.server.module_cache.misses").Get(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1", misses)
	}
}

func TestModuleCacheEviction(t *testing.T) {
	cfg := testConfig()
	cfg.CacheEntries = 2
	s, ts := newTestServer(t, cfg)

	refs := make([]string, 3)
	for i, src := range []string{progSum, progChain, progLoop} {
		resp, doc := post(t, ts.URL+"/v1/modules", runRequest{Source: src, Name: fmt.Sprintf("m%d", i)})
		if resp.StatusCode != 200 {
			t.Fatalf("compile %d: %v", i, doc["error"])
		}
		refs[i] = doc["ref"].(string)
	}
	if ev := s.reg.Counter("carat.server.module_cache.evictions").Get(); ev == 0 {
		t.Fatal("no evictions with CacheEntries=2 and 3 modules")
	}
	if s.cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", s.cache.Len())
	}
	// The first module was least recently used; its ref must be gone.
	resp, _ := post(t, ts.URL+"/v1/run", runRequest{Ref: refs[0]})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted ref: status %d, want 404", resp.StatusCode)
	}
}

func TestTenantPageQuota(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = map[string]Quota{
		"small": {MaxPages: 16}, // far below one capsule
	}
	s, ts := newTestServer(t, cfg)

	resp, doc := post(t, ts.URL+"/v1/run", runRequest{Tenant: "small", Source: progSum})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %v", resp.StatusCode, doc)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.reg.Counter("carat.server.quota_rejections").Get(); got == 0 {
		t.Fatal("quota_rejections not incremented")
	}
	// The failed load must not leak its partial reservation.
	if lp := s.tenantFor("small").LivePages(); lp != 0 {
		t.Fatalf("tenant leaked %d pages after rejected load", lp)
	}
}

func TestTenantCycleQuota(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = map[string]Quota{
		"tiny": {MaxCycles: 1000},
	}
	_, ts := newTestServer(t, cfg)

	resp, doc := post(t, ts.URL+"/v1/run", runRequest{Tenant: "tiny", Source: progLoop})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %v", resp.StatusCode, doc)
	}
}

func TestTenantConcurrencySlots(t *testing.T) {
	ten := &tenant{name: "x", quota: Quota{MaxConcurrent: 2}}
	if err := ten.acquireSlot(); err != nil {
		t.Fatal(err)
	}
	if err := ten.acquireSlot(); err != nil {
		t.Fatal(err)
	}
	if err := ten.acquireSlot(); !errors.Is(err, kernel.ErrQuota) {
		t.Fatalf("third slot: %v, want ErrQuota", err)
	}
	ten.releaseSlot()
	if err := ten.acquireSlot(); err != nil {
		t.Fatalf("slot after release: %v", err)
	}
}

func TestAdmissionWatermark(t *testing.T) {
	cfg := testConfig()
	cfg.HighWatermark = 0.000001 // page 0 alone is over it
	s, ts := newTestServer(t, cfg)

	resp, doc := post(t, ts.URL+"/v1/run", runRequest{Source: progSum})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %v", resp.StatusCode, doc)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("watermark 429 without Retry-After")
	}
	if got := s.reg.Counter("carat.server.admission_rejections").Get(); got == 0 {
		t.Fatal("admission_rejections not incremented")
	}
}

func TestDrainRejectsAndFlipsReadyz(t *testing.T) {
	s, ts := newTestServer(t, testConfig())

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz before drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	rresp, doc := post(t, ts.URL+"/v1/run", runRequest{Source: progSum})
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: status %d: %v", rresp.StatusCode, doc)
	}
	if s.reg.Gauge("carat.server.drain_duration_ms").Get() == 0 {
		// Draining an idle server can round to 0ms; the gauge must at
		// least exist in the registry snapshot.
		if _, ok := s.reg.Snapshot().Gauges["carat.server.drain_duration_ms"]; !ok {
			t.Fatal("drain_duration_ms gauge missing")
		}
	}
}

// TestMemoryReturnedAfterRuns pins the teardown path: after any mix of
// successful runs the shared machine has every tenant page back and the
// tenants hold zero live pages.
func TestMemoryReturnedAfterRuns(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	before := s.kern.Alloc.FreePages()

	for i := 0; i < 10; i++ {
		src := []string{progSum, progChain, progLoop}[i%3]
		resp, doc := post(t, ts.URL+"/v1/run", runRequest{Tenant: "t", Source: src, Name: fmt.Sprintf("m%d", i%3)})
		if resp.StatusCode != 200 {
			t.Fatalf("run %d: status %d: %v", i, resp.StatusCode, doc["error"])
		}
	}

	if after := s.kern.Alloc.FreePages(); after != before {
		t.Fatalf("free pages: %d before, %d after — %d pages leaked",
			before, after, int64(before)-int64(after))
	}
	if lp := s.tenantFor("t").LivePages(); lp != 0 {
		t.Fatalf("tenant still holds %d pages", lp)
	}
}

// TestCompileCoalescing pins single-flight: concurrent identical sources
// compile once.
func TestCompileCoalescing(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL+"/v1/modules", runRequest{Source: progChain, Name: "co"})
			if resp.StatusCode != 200 {
				t.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if misses := s.reg.Counter("carat.server.module_cache.misses").Get(); misses != 1 {
		t.Fatalf("cache misses = %d, want 1 (single-flight)", misses)
	}
}

func TestMetricsExposedOnSameListener(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	resp, doc := post(t, ts.URL+"/v1/run", runRequest{Source: progSum})
	if resp.StatusCode != 200 {
		t.Fatalf("run: %v", doc["error"])
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body) //nolint:errcheck
	body := buf.String()
	for _, want := range []string{
		"carat_server_requests_total",
		"carat_server_inflight",
		"carat_server_module_cache_misses",
		"carat_vm_instrs",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("/metrics missing %s\n%s", want, body[:min(len(body), 2000)])
		}
	}
}
