package server

import (
	"fmt"
	"sync"

	"carat/internal/kernel"
)

// Quota bounds what one tenant may consume. Zero values mean "unlimited"
// for that dimension.
type Quota struct {
	// MaxConcurrent caps how many of the tenant's requests may execute at
	// once (each request is one kernel.Process on the shared machine).
	MaxConcurrent int `json:"max_concurrent"`
	// MaxPages caps the tenant's live physical pages across all of its
	// concurrent processes — the "max live allocations" quota. Enforced by
	// the kernel at grant time through the Limiter interface.
	MaxPages uint64 `json:"max_pages"`
	// MaxCycles caps the modeled cycles of a single request; runs past the
	// budget abort at the next safepoint.
	MaxCycles uint64 `json:"max_cycles"`
}

// tenant is the server-side state for one tenant name. It implements
// kernel.Limiter, so every page the tenant's processes grant is charged
// here — including transient move destinations.
type tenant struct {
	name  string
	quota Quota

	mu      sync.Mutex
	pages   uint64 // live pages across all of the tenant's processes
	running int    // requests currently executing
}

// ReservePages implements kernel.Limiter.
func (t *tenant) ReservePages(n uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxPages > 0 && t.pages+n > t.quota.MaxPages {
		return fmt.Errorf("%w: tenant %q over %d live pages (%d held, %d requested)",
			kernel.ErrQuota, t.name, t.quota.MaxPages, t.pages, n)
	}
	t.pages += n
	return nil
}

// ReleasePages implements kernel.Limiter.
func (t *tenant) ReleasePages(n uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.pages {
		n = t.pages // defensive: never underflow
	}
	t.pages -= n
}

// acquireSlot claims one of the tenant's concurrent-request slots.
func (t *tenant) acquireSlot() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.quota.MaxConcurrent > 0 && t.running >= t.quota.MaxConcurrent {
		return fmt.Errorf("%w: tenant %q at %d concurrent requests",
			kernel.ErrQuota, t.name, t.quota.MaxConcurrent)
	}
	t.running++
	return nil
}

func (t *tenant) releaseSlot() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.running > 0 {
		t.running--
	}
}

// LivePages reports the tenant's current page footprint (for tests).
func (t *tenant) LivePages() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pages
}

// tenantFor returns (creating on first sight) the state for name. Tenants
// named in Config.Tenants get their configured quota; everyone else gets
// the default.
func (s *Server) tenantFor(name string) *tenant {
	if name == "" {
		name = "anonymous"
	}
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t
	}
	q := s.cfg.DefaultQuota
	if cq, ok := s.cfg.Tenants[name]; ok {
		q = cq
	}
	t := &tenant{name: name, quota: q}
	s.tenants[name] = t
	return t
}
