package guard

import "fmt"

// Mechanism selects a guard implementation strategy (§3 "Protection can be
// Maintained through Other Mechanisms", Figures 3 and 4).
type Mechanism int

// The guard mechanisms.
const (
	// MechRange is the straightforward compare-and-branch bounds check
	// ("Range Guard" in Figure 3). For multi-region sets it degenerates to
	// MechBinarySearch.
	MechRange Mechanism = iota
	// MechMPX models Intel MPX's single-cycle bounds-check instruction
	// ("MPX Guard" in Figure 3): one cycle, no register pressure, as long
	// as the region fits the bounds registers.
	MechMPX
	// MechBinarySearch searches the sorted region array (Figure 4a).
	MechBinarySearch
	// MechIfTree is the statically laid out comparison tree (Figure 4).
	MechIfTree
	// MechLinear scans regions in order; the baseline worst case.
	MechLinear
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MechRange:
		return "range"
	case MechMPX:
		return "mpx"
	case MechBinarySearch:
		return "bsearch"
	case MechIfTree:
		return "iftree"
	case MechLinear:
		return "linear"
	}
	return fmt.Sprintf("mech(%d)", int(m))
}

// Cycle cost constants of the microarchitectural model. The values follow
// the paper's observations: an MPX bounds check is single-cycle; a
// compare+branch pair costs a couple of cycles when predicted and a
// pipeline refill (~14 cycles on Haswell-class cores) when mispredicted.
const (
	costCmpBranch   = 1  // predicted compare+branch
	costMispredict  = 14 // branch mispredict penalty
	costMPX         = 1  // bndcu/bndcl pair, fused
	costLoadRegion  = 2  // L1 hit loading a region descriptor
	costSearchSetup = 2  // index arithmetic per search step
)

// Evaluator performs guard checks against a region set with a chosen
// mechanism, accumulating a modeled cycle cost. It carries branch-history
// state so repeated (strided) access patterns predict well while random
// patterns mispredict, reproducing the spread in Figure 4.
type Evaluator struct {
	Mech Mechanism
	Set  *RegionSet

	// Cycles accumulates the modeled cost of all checks.
	Cycles uint64
	// Checks counts guard evaluations.
	Checks uint64
	// Faults counts failed checks.
	Faults uint64

	// branch history: last direction taken at each comparison site.
	// lpBits mirrors lastPath[0:64] as a bitset (bit idx set == true) so
	// the xcache hit path can test "recorded path still matches history"
	// with one mask compare instead of a replay loop; every write to
	// lastPath below index 64 must keep it in sync, and both resets that
	// reallocate lastPath zero it.
	lastPath  []bool
	lpBits    uint64
	lastLeaf  int
	treeEpoch uint64
	tree      []treeNode

	// recording state for CheckCached: while recOn, the search mechanisms
	// append their branch path to recSteps and count mispredicts in
	// recMisp, so the xcache can replay the walk's exact cost later.
	recOn    bool
	recSteps []pathStep
	recMisp  int
}

// NewEvaluator returns an evaluator over set using mech.
func NewEvaluator(mech Mechanism, set *RegionSet) *Evaluator {
	return &Evaluator{Mech: mech, Set: set}
}

// treeNode is one comparison node of the static if-tree.
type treeNode struct {
	boundary    uint64 // go left if addr < boundary
	left, right int    // child indices; negative encodes ^region leaf
}

// buildTree lays out a balanced comparison tree over region boundaries.
func (e *Evaluator) buildTree() {
	e.tree = e.tree[:0]
	var build func(lo, hi int) int
	build = func(lo, hi int) int {
		if lo == hi {
			return -(lo + 1) // leaf: region index lo
		}
		mid := (lo + hi) / 2
		idx := len(e.tree)
		e.tree = append(e.tree, treeNode{boundary: e.Set.regions[mid].End()})
		l := build(lo, mid)
		r := build(mid+1, hi)
		e.tree[idx].left, e.tree[idx].right = l, r
		return idx
	}
	if e.Set.Len() > 0 {
		build(0, e.Set.Len()-1)
	}
	e.treeEpoch = e.Set.Epoch
	if n := len(e.tree); len(e.lastPath) < n {
		e.lastPath = make([]bool, n)
		e.lpBits = 0
	}
}

// Check validates the access and returns whether it is permitted. The
// modeled cycle cost of the check is added to e.Cycles.
func (e *Evaluator) Check(addr, size uint64, p Perm) bool {
	e.Checks++
	var ok bool
	var cost uint64
	switch e.Mech {
	case MechMPX:
		ok, cost = e.checkMPX(addr, size, p)
	case MechIfTree:
		ok, cost = e.checkIfTree(addr, size, p)
	case MechLinear:
		ok, cost = e.checkLinear(addr, size, p)
	case MechBinarySearch:
		ok, cost = e.checkBinary(addr, size, p)
	default: // MechRange
		if e.Set.Len() <= 1 {
			ok, cost = e.checkSingle(addr, size, p)
		} else {
			ok, cost = e.checkBinary(addr, size, p)
		}
	}
	e.Cycles += cost
	if !ok {
		e.Faults++
	}
	return ok
}

// checkSingle is the one-region fast path: two compares and the permission
// test. This is the "dark capsule" optimal case of §3.
func (e *Evaluator) checkSingle(addr, size uint64, p Perm) (bool, uint64) {
	if e.Set.Len() == 0 {
		return false, costCmpBranch
	}
	r := e.Set.regions[0]
	return r.Contains(addr, size) && r.Perm&p == p, 2 * costCmpBranch
}

// checkMPX models the MPX bounds-check instruction: single cycle against
// the bounds registers; with more regions than bounds registers (4 pairs)
// it falls back to binary search after the miss.
func (e *Evaluator) checkMPX(addr, size uint64, p Perm) (bool, uint64) {
	n := e.Set.Len()
	if n == 0 {
		return false, costMPX
	}
	if n <= 4 {
		for i := 0; i < n; i++ {
			if e.Set.regions[i].Contains(addr, size) {
				return e.Set.regions[i].Perm&p == p, costMPX
			}
		}
		return false, costMPX
	}
	ok, c := e.checkBinary(addr, size, p)
	return ok, c + costMPX
}

func (e *Evaluator) checkLinear(addr, size uint64, p Perm) (bool, uint64) {
	var cost uint64
	for _, r := range e.Set.regions {
		cost += costCmpBranch + costLoadRegion
		if r.Contains(addr, size) {
			return r.Perm&p == p, cost
		}
	}
	return false, cost
}

// checkBinary searches the sorted region array. Each step costs the index
// arithmetic, a descriptor load, and a compare+branch whose misprediction
// is modeled with per-depth branch history.
func (e *Evaluator) checkBinary(addr, size uint64, p Perm) (bool, uint64) {
	lo, hi := 0, e.Set.Len()-1
	var cost uint64
	depth := 0
	if len(e.lastPath) < 64 {
		e.lastPath = make([]bool, 64)
		e.lpBits = 0
	}
	for lo <= hi {
		mid := (lo + hi) / 2
		r := e.Set.regions[mid]
		cost += costSearchSetup + costLoadRegion + costCmpBranch
		goLeft := addr < r.Base
		if e.lastPath[depth] != goLeft {
			cost += costMispredict
			e.lastPath[depth] = goLeft
			e.lpBits ^= 1 << depth // depth < 64: lastPath is 64 long here
			if e.recOn {
				e.recMisp++
			}
		}
		if e.recOn {
			e.recSteps = append(e.recSteps, pathStep{idx: int32(depth), left: goLeft})
		}
		depth++
		switch {
		case goLeft:
			hi = mid - 1
		case addr >= r.End():
			lo = mid + 1
		default:
			return r.Contains(addr, size) && r.Perm&p == p, cost
		}
	}
	return false, cost
}

// checkIfTree walks the static comparison tree. Inner nodes are pure
// compare+branch (no descriptor loads — boundaries are immediates in the
// generated code), so a well-predicted walk is cheap; path changes pay the
// misprediction penalty, which is why random access in Figure 4 is an
// order of magnitude costlier than strided access.
func (e *Evaluator) checkIfTree(addr, size uint64, p Perm) (bool, uint64) {
	if e.treeEpoch != e.Set.Epoch || (len(e.tree) == 0 && e.Set.Len() > 0) {
		e.buildTree()
	}
	if e.Set.Len() == 0 {
		return false, costCmpBranch
	}
	if e.Set.Len() == 1 {
		return e.checkSingle(addr, size, p)
	}
	node := 0
	var cost uint64
	for {
		n := e.tree[node]
		cost += costCmpBranch
		goLeft := addr < n.boundary
		if e.lastPath[node] != goLeft {
			cost += costMispredict
			e.lastPath[node] = goLeft
			if node < 64 {
				e.lpBits ^= 1 << node
			}
			if e.recOn {
				e.recMisp++
			}
		}
		if e.recOn {
			e.recSteps = append(e.recSteps, pathStep{idx: int32(node), left: goLeft})
		}
		next := n.right
		if goLeft {
			next = n.left
		}
		if next < 0 {
			r := e.Set.regions[-next-1]
			cost += 2 * costCmpBranch // final range + perm test
			return r.Contains(addr, size) && r.Perm&p == p, cost
		}
		node = next
	}
}

// Reset clears the accumulated statistics but keeps prediction state.
func (e *Evaluator) Reset() { e.Cycles, e.Checks, e.Faults = 0, 0, 0 }

// AvgCycles returns the mean modeled cycles per check.
func (e *Evaluator) AvgCycles() float64 {
	if e.Checks == 0 {
		return 0
	}
	return float64(e.Cycles) / float64(e.Checks)
}
