package guard

import "testing"

// xcFill runs one successful cached check per page so the cache holds a
// known population.
func xcFill(t *testing.T, e *Evaluator, c *XCache, pages ...uint64) {
	t.Helper()
	for _, pg := range pages {
		if !e.CheckCached(c, pg<<xcachePageShift, 8, PermRead) {
			t.Fatalf("fill check of page %#x failed", pg)
		}
	}
}

func TestXCacheHitMissCounters(t *testing.T) {
	s := mkSet(t, Region{Base: 0x10000, Len: 0x10000, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()

	if !e.CheckCached(c, 0x10008, 8, PermRead) {
		t.Fatal("in-bounds check failed")
	}
	if c.Hits != 0 || c.Misses != 1 {
		t.Fatalf("cold check: hits=%d misses=%d, want 0/1", c.Hits, c.Misses)
	}
	for i := 0; i < 10; i++ {
		if !e.CheckCached(c, 0x10010+uint64(i)*8, 8, PermRead) {
			t.Fatal("warm check failed")
		}
	}
	if c.Hits != 10 || c.Misses != 1 {
		t.Fatalf("warm checks: hits=%d misses=%d, want 10/1", c.Hits, c.Misses)
	}
}

func TestXCacheCostParityWithColdWalk(t *testing.T) {
	// The cached fast path must charge exactly what the uncached walk
	// would for an identical access sequence — cycle accounting is part of
	// the model, so the cache may only change host speed.
	mkAccesses := func() [][2]uint64 {
		var out [][2]uint64
		for i := 0; i < 200; i++ {
			// Alternate between two regions so branch-history divergence
			// (the mispredict penalty path) is exercised, not just the
			// steady state.
			if i%3 == 0 {
				out = append(out, [2]uint64{0x30000 + uint64(i%512)*8, 8})
			} else {
				out = append(out, [2]uint64{0x10000 + uint64(i%512)*8, 8})
			}
		}
		return out
	}
	regions := []Region{
		{Base: 0x10000, Len: 0x1000, Perm: PermRW},
		{Base: 0x30000, Len: 0x1000, Perm: PermRW},
		{Base: 0x50000, Len: 0x1000, Perm: PermRead},
	}
	for _, mech := range []Mechanism{MechRange, MechMPX, MechIfTree, MechBinarySearch, MechLinear} {
		plain := NewEvaluator(mech, mkSet(t, regions...))
		cached := NewEvaluator(mech, mkSet(t, regions...))
		c := NewXCache()
		for _, a := range mkAccesses() {
			p := plain.Check(a[0], a[1], PermRead)
			q := cached.CheckCached(c, a[0], a[1], PermRead)
			if p != q {
				t.Fatalf("mech %v: verdict diverges at %#x", mech, a[0])
			}
		}
		if plain.Cycles != cached.Cycles || plain.Checks != cached.Checks {
			t.Errorf("mech %v: cycles %d/%d checks %d/%d diverge (cached vs plain)",
				mech, cached.Cycles, plain.Cycles, cached.Checks, plain.Checks)
		}
		if c.Hits == 0 {
			t.Errorf("mech %v: no cache hits on a repeating access pattern", mech)
		}
	}
}

func TestXCacheFaultsNeverCached(t *testing.T) {
	s := mkSet(t, Region{Base: 0x10000, Len: 0x1000, Perm: PermRead})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	for i := 0; i < 5; i++ {
		if e.CheckCached(c, 0x20000, 8, PermRead) {
			t.Fatal("out-of-bounds access permitted")
		}
		// A write to a read-only region must fault even though the page
		// has a cached READ entry.
		if !e.CheckCached(c, 0x10000, 8, PermRead) {
			t.Fatal("read denied")
		}
		if e.CheckCached(c, 0x10000, 8, PermWrite) {
			t.Fatal("write to read-only region permitted")
		}
	}
	if c.Hits == 0 {
		t.Error("read path never hit")
	}
	if len(c.ValidPages()) != 1 {
		t.Errorf("faulting checks populated the cache: %v", c.ValidPages())
	}
}

func TestXCacheInvalidateRangePrecision(t *testing.T) {
	s := mkSet(t, Region{Base: 0, Len: 1 << 20, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	// Three distinct pages.
	xcFill(t, e, c, 1, 2, 3)
	if n := len(c.ValidPages()); n != 3 {
		t.Fatalf("cache holds %d pages, want 3", n)
	}
	// Invalidate page 2 only.
	c.InvalidateRange(2<<xcachePageShift, 1<<xcachePageShift)
	pages := c.ValidPages()
	if len(pages) != 2 {
		t.Fatalf("InvalidateRange dropped wrong entries: %v", pages)
	}
	for _, pg := range pages {
		if pg == 2<<xcachePageShift {
			t.Fatal("invalidated page survived")
		}
	}
	if c.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", c.Invalidations)
	}
	// The invalidated page misses; the others still hit.
	h := c.Hits
	if !e.CheckCached(c, 2<<xcachePageShift, 8, PermRead) {
		t.Fatal("re-check failed")
	}
	if c.Hits != h {
		t.Error("invalidated page hit the cache")
	}
	if !e.CheckCached(c, 1<<xcachePageShift, 8, PermRead) || c.Hits != h+1 {
		t.Error("unaffected page lost its entry")
	}
}

func TestXCacheInvalidateRangePartialPageOverlap(t *testing.T) {
	s := mkSet(t, Region{Base: 0, Len: 1 << 20, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	xcFill(t, e, c, 4, 5)
	// A byte range straddling the end of page 4 must drop page 4 AND
	// page 5 (both overlap), even though neither is fully covered.
	c.InvalidateRange(4<<xcachePageShift+100, 1<<xcachePageShift)
	if n := len(c.ValidPages()); n != 0 {
		t.Fatalf("straddling invalidation left %d entries", n)
	}
}

func TestXCacheInvalidateAll(t *testing.T) {
	s := mkSet(t, Region{Base: 0, Len: 1 << 20, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	xcFill(t, e, c, 1, 2, 3, 4)
	c.InvalidateAll()
	if len(c.ValidPages()) != 0 {
		t.Fatal("InvalidateAll left live entries")
	}
	if c.Invalidations != 4 {
		t.Errorf("Invalidations = %d, want 4", c.Invalidations)
	}
}

func TestXCacheEpochStampSafetyNet(t *testing.T) {
	// Even with NO explicit invalidation, a region-set mutation bumps the
	// epoch and silently expires every cached entry — the last line of
	// defense if an invalidation hook were ever missed.
	s := mkSet(t, Region{Base: 0x10000, Len: 0x10000, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	xcFill(t, e, c, 0x10000>>xcachePageShift)
	h, m := c.Hits, c.Misses
	if !e.CheckCached(c, 0x10008, 8, PermRead) {
		t.Fatal("warm check failed")
	}
	if c.Hits != h+1 {
		t.Fatal("warm check did not hit")
	}
	// Mutate the region set behind the cache's back.
	s.Remove(0x18000, 0x1000)
	if !e.CheckCached(c, 0x10008, 8, PermRead) {
		t.Fatal("check after epoch bump failed")
	}
	if c.Misses != m+1 {
		t.Errorf("stale-epoch entry hit: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestXCacheAccessOutsideCachedWindowMisses(t *testing.T) {
	// The cached window is page ∩ region. An access inside the page but
	// outside the region must NOT be admitted by the cached entry.
	s := mkSet(t, Region{Base: 0x10000, Len: 0x100, Perm: PermRW})
	e := NewEvaluator(MechRange, s)
	c := NewXCache()
	if !e.CheckCached(c, 0x10000, 8, PermRead) {
		t.Fatal("in-region check failed")
	}
	if e.CheckCached(c, 0x10200, 8, PermRead) {
		t.Fatal("access beyond region end permitted by cached page entry")
	}
	// Spanning the region end must also fault.
	if e.CheckCached(c, 0x100f8, 16, PermRead) {
		t.Fatal("access spanning region end permitted")
	}
}
