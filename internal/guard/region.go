// Package guard implements CARAT's protection machinery: the kernel-supplied
// region set ("landing zone" of §4.2) and the guard mechanisms that validate
// a prospective physical address range against it — linear scan, binary
// search, a statically laid-out if-tree, and a modeled Intel MPX bounds
// check. Each mechanism reports a cycle cost per check from a simple
// microarchitectural model (comparisons + branch prediction), which is what
// Figure 4 of the paper measures on hardware.
package guard

import (
	"fmt"
	"sort"
)

// Perm is an access-permission bitmask, mirroring the x64 possibilities the
// paper lists in §3 ({none, read, read+write} x {none, exec}).
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// PermRW is the common read+write permission.
const PermRW = PermRead | PermWrite

// String renders the permission like "rw-".
func (p Perm) String() string {
	b := []byte("---")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Region is a contiguous run of physical addresses with one permission.
type Region struct {
	Base uint64
	Len  uint64
	Perm Perm
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Len }

// Contains reports whether [addr, addr+size) lies inside the region.
func (r Region) Contains(addr, size uint64) bool {
	return addr >= r.Base && addr+size <= r.End()
}

// String renders the region for diagnostics.
func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x) %s", r.Base, r.End(), r.Perm)
}

// RegionSet is the ordered array of permitted regions the kernel writes
// into the process (§4.2 "Protection"). Regions are kept sorted by base
// address and non-overlapping; adjacent regions with equal permissions are
// coalesced, since fewer regions means cheaper guards (§2.3).
type RegionSet struct {
	regions []Region
	// Epoch increments on every mutation; guard mechanisms that build
	// per-set state (the if-tree) use it to invalidate caches.
	Epoch uint64
	// fwd is the forwarding window of an in-flight incremental move (see
	// forward.go); opening, flipping, or closing it also bumps Epoch.
	fwd forwardWindow
}

// NewRegionSet returns an empty region set.
func NewRegionSet() *RegionSet { return &RegionSet{} }

// Len returns the number of regions.
func (s *RegionSet) Len() int { return len(s.regions) }

// Regions returns the regions in address order. The caller must not
// mutate the returned slice.
func (s *RegionSet) Regions() []Region { return s.regions }

// Clone returns an independent copy of the set.
func (s *RegionSet) Clone() *RegionSet {
	c := &RegionSet{regions: make([]Region, len(s.regions)), Epoch: s.Epoch}
	copy(c.regions, s.regions)
	return c
}

// Add inserts a region. It returns an error if the region overlaps an
// existing one with different permissions; equal-permission overlap is
// merged.
func (s *RegionSet) Add(r Region) error {
	if r.Len == 0 {
		return fmt.Errorf("guard: empty region")
	}
	for _, x := range s.regions {
		if r.Base < x.End() && x.Base < r.End() && x.Perm != r.Perm {
			return fmt.Errorf("guard: region %v overlaps %v with different permissions", r, x)
		}
	}
	s.regions = append(s.regions, r)
	sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
	s.coalesce()
	s.Epoch++
	return nil
}

// Remove deletes the address range [base, base+length) from the set,
// splitting regions as needed.
func (s *RegionSet) Remove(base, length uint64) {
	end := base + length
	var out []Region
	for _, x := range s.regions {
		if x.End() <= base || x.Base >= end {
			out = append(out, x)
			continue
		}
		if x.Base < base {
			out = append(out, Region{Base: x.Base, Len: base - x.Base, Perm: x.Perm})
		}
		if x.End() > end {
			out = append(out, Region{Base: end, Len: x.End() - end, Perm: x.Perm})
		}
	}
	s.regions = out
	s.Epoch++
}

// SetPerm changes the permission of the range [base, base+length),
// which must be fully covered by existing regions.
func (s *RegionSet) SetPerm(base, length uint64, p Perm) error {
	if !s.covered(base, length) {
		return fmt.Errorf("guard: SetPerm range [%#x,%#x) not covered", base, base+length)
	}
	s.Remove(base, length)
	return s.Add(Region{Base: base, Len: length, Perm: p})
}

func (s *RegionSet) covered(base, length uint64) bool {
	addr, end := base, base+length
	for _, x := range s.regions {
		if addr >= end {
			break
		}
		if x.Base <= addr && addr < x.End() {
			addr = x.End()
		}
	}
	return addr >= end
}

func (s *RegionSet) coalesce() {
	if len(s.regions) < 2 {
		return
	}
	out := s.regions[:1]
	for _, x := range s.regions[1:] {
		last := &out[len(out)-1]
		if x.Base <= last.End() && x.Perm == last.Perm {
			if x.End() > last.End() {
				last.Len = x.End() - last.Base
			}
			continue
		}
		out = append(out, x)
	}
	s.regions = out
}

// Find returns the region containing addr, if any, using binary search.
func (s *RegionSet) Find(addr uint64) (Region, bool) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].End() > addr })
	if i < len(s.regions) && s.regions[i].Base <= addr {
		return s.regions[i], true
	}
	return Region{}, false
}

// Check reports whether the access [addr, addr+size) with permission p is
// permitted. An access must lie within a single region (regions with
// different permissions are never coalesced).
func (s *RegionSet) Check(addr, size uint64, p Perm) bool {
	r, ok := s.Find(addr)
	if !ok || !r.Contains(addr, size) {
		return false
	}
	return r.Perm&p == p
}

// String lists the regions.
func (s *RegionSet) String() string {
	out := ""
	for i, r := range s.regions {
		if i > 0 {
			out += " "
		}
		out += r.String()
	}
	return out
}
