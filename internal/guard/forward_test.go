package guard

import "testing"

func TestForwardIdentityWhenClosed(t *testing.T) {
	s := NewRegionSet()
	for _, a := range []uint64{0, 0x1000, 0xdeadbeef} {
		if got := s.Forward(a); got != a {
			t.Errorf("Forward(%#x) with no window = %#x", a, got)
		}
	}
	if s.ForwardActive() {
		t.Error("ForwardActive true with no window")
	}
}

func TestForwardDstToSrcBeforeFlip(t *testing.T) {
	s := NewRegionSet()
	if err := s.OpenForward(0x1000, 0x9000, 0x2000); err != nil {
		t.Fatal(err)
	}
	// Destination addresses forward back to the source (data not yet moved).
	if got := s.Forward(0x9000); got != 0x1000 {
		t.Errorf("Forward(dst base) = %#x, want 0x1000", got)
	}
	if got := s.Forward(0x9fff); got != 0x1fff {
		t.Errorf("Forward(dst mid) = %#x, want 0x1fff", got)
	}
	// Source and unrelated addresses pass through.
	if got := s.Forward(0x1234); got != 0x1234 {
		t.Errorf("Forward(src) = %#x, want identity", got)
	}
	if got := s.Forward(0xb000); got != 0xb000 {
		t.Errorf("Forward(past dst end) = %#x, want identity", got)
	}
}

func TestForwardSrcToDstAfterFlip(t *testing.T) {
	s := NewRegionSet()
	if err := s.OpenForward(0x1000, 0x9000, 0x2000); err != nil {
		t.Fatal(err)
	}
	s.FlipForward()
	if got := s.Forward(0x1000); got != 0x9000 {
		t.Errorf("Forward(src base) after flip = %#x, want 0x9000", got)
	}
	if got := s.Forward(0x2fff); got != 0xafff {
		t.Errorf("Forward(src end-1) after flip = %#x, want 0xafff", got)
	}
	if got := s.Forward(0x9000); got != 0x9000 {
		t.Errorf("Forward(dst) after flip = %#x, want identity", got)
	}
	if got := s.Forward(0x3000); got != 0x3000 {
		t.Errorf("Forward(past src end) after flip = %#x, want identity", got)
	}
}

func TestForwardCloseRestoresIdentity(t *testing.T) {
	s := NewRegionSet()
	if err := s.OpenForward(0x1000, 0x9000, 0x1000); err != nil {
		t.Fatal(err)
	}
	s.CloseForward()
	if s.ForwardActive() {
		t.Error("window still active after CloseForward")
	}
	if got := s.Forward(0x9000); got != 0x9000 {
		t.Errorf("Forward after close = %#x, want identity", got)
	}
	// Closing an already-closed window is a no-op, not a panic.
	s.CloseForward()
}

func TestForwardNestedOpenRejected(t *testing.T) {
	s := NewRegionSet()
	if err := s.OpenForward(0x1000, 0x9000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := s.OpenForward(0x2000, 0xa000, 0x1000); err == nil {
		t.Fatal("nested OpenForward accepted")
	}
	// The original window must be untouched by the rejected open.
	if got := s.Forward(0x9000); got != 0x1000 {
		t.Errorf("original window broken after rejected open: Forward(0x9000) = %#x", got)
	}
	if err := s.OpenForward(0, 0x1000, 0); err == nil {
		t.Error("zero-length OpenForward accepted")
	}
}

func TestForwardTransitionsBumpEpoch(t *testing.T) {
	s := NewRegionSet()
	e0 := s.Epoch
	if err := s.OpenForward(0x1000, 0x9000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if s.Epoch <= e0 {
		t.Error("OpenForward did not bump epoch")
	}
	e1 := s.Epoch
	s.FlipForward()
	if s.Epoch <= e1 {
		t.Error("FlipForward did not bump epoch")
	}
	e2 := s.Epoch
	s.CloseForward()
	if s.Epoch <= e2 {
		t.Error("CloseForward did not bump epoch")
	}
	// Flip/Close with no window must not bump the epoch.
	e3 := s.Epoch
	s.FlipForward()
	s.CloseForward()
	if s.Epoch != e3 {
		t.Error("no-op flip/close bumped epoch")
	}
}

// An open forwarding window invalidates xcache entries purely through the
// epoch stamp: a hit requires an exact epoch match, so entries filled
// before OpenForward can never serve an access that raced into the window.
func TestForwardInvalidatesXCacheViaEpoch(t *testing.T) {
	s := NewRegionSet()
	if err := s.Add(Region{Base: 0x1000, Len: 0x2000, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(MechRange, s)
	c := NewXCache()
	if !ev.CheckCached(c, 0x1100, 8, PermRead) {
		t.Fatal("check failed")
	}
	if !ev.CheckCached(c, 0x1100, 8, PermRead) {
		t.Fatal("check failed")
	}
	if c.Hits != 1 {
		t.Fatalf("expected 1 hit before window, got %d", c.Hits)
	}
	if err := s.OpenForward(0x1000, 0x9000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if !ev.CheckCached(c, 0x1100, 8, PermRead) {
		t.Fatal("check failed")
	}
	if c.Hits != 1 {
		t.Errorf("stale entry served across OpenForward (hits %d)", c.Hits)
	}
	if c.Misses != 2 {
		t.Errorf("misses = %d, want 2 (initial fill, refill after epoch bump)", c.Misses)
	}
}
