package guard

import "fmt"

// Forwarding window: the read barrier that lets incremental moves resume
// mutator threads between patch batches. While a move is in flight the
// address space is intentionally inconsistent — some escapes already name
// the destination while the data still lives at the source (before the
// copy), and stale pointers may still name the source after the data has
// moved (after the copy). The window records the in-flight [src,dst,len)
// pair and which side is authoritative, and Forward rewrites any access
// that lands on the non-authoritative side.
//
// The window piggybacks on the region-set epoch: OpenForward, FlipForward,
// and CloseForward each bump Epoch, so every per-thread xcache entry and
// per-set mechanism cache stamped with an older epoch misses and re-walks.
// That is the whole invalidation story — no extra flush protocol. Epoch
// bumps are host-speed events only (an xcache hit replays the exact modeled
// cycles of the walk it cached), so opening and closing windows never
// perturbs modeled results.
type forwardWindow struct {
	active  bool
	flipped bool // false: dst forwards to src (data at src); true: src forwards to dst
	src     uint64
	dst     uint64
	length  uint64
}

// OpenForward opens the forwarding window for an in-flight move of
// [src, src+length) to [dst, dst+length). Until FlipForward, the source
// side is authoritative: accesses to the destination range forward back to
// the source (patched pointers already name dst while the bytes are still
// at src). Only one window may be open at a time; a nested open is a
// protocol violation and is rejected.
func (s *RegionSet) OpenForward(src, dst, length uint64) error {
	if s.fwd.active {
		return fmt.Errorf("guard: forwarding window already open ([%#x,%#x) -> %#x)",
			s.fwd.src, s.fwd.src+s.fwd.length, s.fwd.dst)
	}
	if length == 0 {
		return fmt.Errorf("guard: empty forwarding window")
	}
	s.fwd = forwardWindow{active: true, src: src, dst: dst, length: length}
	s.Epoch++
	return nil
}

// FlipForward marks the destination authoritative: the data has been
// copied, so from here until CloseForward accesses to the (stale) source
// range forward to the destination.
func (s *RegionSet) FlipForward() {
	if !s.fwd.active {
		return
	}
	s.fwd.flipped = true
	s.Epoch++
}

// CloseForward ends the window (move committed at RetireSrc, or rolled
// back). Safe to call when no window is open.
func (s *RegionSet) CloseForward() {
	if !s.fwd.active {
		return
	}
	s.fwd = forwardWindow{}
	s.Epoch++
}

// ForwardActive reports whether a forwarding window is open.
func (s *RegionSet) ForwardActive() bool { return s.fwd.active }

// Forward translates addr through the open forwarding window: an address on
// the non-authoritative side of the in-flight move is redirected to its
// image on the authoritative side. Identity when no window is open or addr
// is outside both ranges.
func (s *RegionSet) Forward(addr uint64) uint64 {
	if !s.fwd.active {
		return addr
	}
	if s.fwd.flipped {
		// Data is at dst: stale source pointers forward src -> dst.
		if addr >= s.fwd.src && addr < s.fwd.src+s.fwd.length {
			return addr - s.fwd.src + s.fwd.dst
		}
		return addr
	}
	// Data is still at src: patched pointers forward dst -> src.
	if addr >= s.fwd.dst && addr < s.fwd.dst+s.fwd.length {
		return addr - s.fwd.dst + s.fwd.src
	}
	return addr
}
