package guard

// The translation/guard cache ("xcache"). CARAT's argument is that software
// translation approaches hardware speed by exploiting locality; the xcache
// models the software analogue of an inline TLB fast path: a small
// direct-mapped cache in front of the guard evaluator keyed by (page, perm).
// A hit replays the *recorded* evaluator outcome — including the exact
// modeled cycle cost and the branch-predictor state transitions the full
// walk would have performed — so the modeled cycle accounting is
// byte-identical with the cache on or off. The cache is a host-speed
// optimization only: it changes how fast the interpreter runs on the host,
// never what the model observes.
//
// Validity has two layers:
//
//   - every entry is stamped with the RegionSet epoch at fill time and a
//     hit requires an exact epoch match, so any region-set mutation
//     (grant/release/protect, Fig-8 page moves) implicitly invalidates the
//     whole cache even if an explicit flush is missed;
//   - explicit invalidation (InvalidateAll on region-set changes,
//     InvalidateRange for map changes that leave the region set alone —
//     allocation-granularity moves, swap in/out) clears entries eagerly and
//     feeds the carat.vm.xcache.invalidations counter.

// xcachePageShift matches kernel.PageSize (4 KiB); guard cannot import
// kernel (kernel imports guard), so the constant is mirrored here.
const xcachePageShift = 12

// xcacheSlots is the number of direct-mapped entries. 64 entries cover a
// 256 KiB working set of guarded pages, far beyond the loop footprints the
// Fig-3 workloads touch between map changes.
const xcacheSlots = 64

// pathStep records one branch direction of a search walk: the predictor
// slot it consulted (depth for binary search, node id for the if-tree) and
// the direction taken.
type pathStep struct {
	idx  int32
	left bool
}

// xslot is one direct-mapped cache entry. It caches a *successful* check of
// the interval [lo, hi) — the intersection of the matched region with the
// page — together with the base cost of the walk (all cycles except
// mispredict penalties) and the walk's branch path for replay.
//
// Page, permission, and validity pack into one key word so the hot probes
// match an entry with a single compare: key is xslotKey(page, perm) when
// valid and 0 when empty (xslotKey is never 0 — bit 0 is always set).
//
// The first xslotInlSteps path steps pack into the slot itself (idx<<1 |
// left), so the common shallow walk replays without chasing a separate
// steps slice; deeper walks spill the remainder to more.
type xslot struct {
	key    uint64 // page<<8 | perm<<1 | 1; 0 when invalid
	epoch  uint64 // RegionSet.Epoch at fill
	lo     uint64 // first valid byte
	hi     uint64 // first invalid byte
	base   uint64 // modeled cycles excluding mispredicts
	nsteps int32  // count of packed steps in inl
	fast   bool   // pmask/pvals cover every step (all idx < 64, distinct)
	inl    [xslotInlSteps]int32
	more   []pathStep // path steps beyond inl (deep walks only)

	// pmask/pvals summarize the recorded path as a bitset over predictor
	// slots: when fast, e.lpBits&pmask == pvals means every recorded step
	// matches live history — the walk replays at exactly base cost with no
	// predictor updates, so the hit path can skip the replay loop.
	pmask uint64
	pvals uint64
}

// xslotInlSteps is how many path steps fit inline in a slot: binary-search
// walks over realistic region counts and shallow if-tree walks fit; only
// deep trees spill.
const xslotInlSteps = 6

// replay applies the recorded branch path against the evaluator's live
// predictor history and returns the walk's modeled cost.
func (s *xslot) replay(e *Evaluator) uint64 {
	cost := s.base
	lp := e.lastPath
	for i := 0; i < int(s.nsteps); i++ {
		w := s.inl[i]
		idx, left := w>>1, w&1 != 0
		if lp[idx] != left {
			cost += costMispredict
			lp[idx] = left
			if idx < 64 {
				e.lpBits ^= 1 << idx
			}
		}
	}
	for _, st := range s.more {
		if lp[st.idx] != st.left {
			cost += costMispredict
			lp[st.idx] = st.left
			if st.idx < 64 {
				e.lpBits ^= 1 << st.idx
			}
		}
	}
	return cost
}

// fill populates a slot from a just-recorded walk.
func (s *xslot) fill(key, epoch, lo, hi, base uint64, steps []pathStep) {
	*s = xslot{key: key, epoch: epoch, lo: lo, hi: hi, base: base}
	fast := true
	for _, st := range steps {
		if st.idx >= 64 || s.pmask&(1<<st.idx) != 0 {
			fast = false // deep tree or revisited slot: mask can't summarize
			break
		}
		s.pmask |= 1 << st.idx
		if st.left {
			s.pvals |= 1 << st.idx
		}
	}
	s.fast = fast
	if !fast {
		s.pmask, s.pvals = 0, 0
	}
	n := len(steps)
	if n > xslotInlSteps {
		s.more = append([]pathStep(nil), steps[xslotInlSteps:]...)
		n = xslotInlSteps
	}
	for i := 0; i < n; i++ {
		w := steps[i].idx << 1
		if steps[i].left {
			w |= 1
		}
		s.inl[i] = w
	}
	s.nsteps = int32(n)
}

// xslotKey packs a page number and permission into the slot-match word.
// Pages are physical-address>>12, far below 2^56, so the shift is lossless.
func xslotKey(page uint64, p Perm) uint64 {
	return page<<8 | uint64(p)<<1 | 1
}

// XCache is a per-thread direct-mapped guard/translation cache. It is not
// safe for concurrent use; each VM thread owns one.
type XCache struct {
	slots [xcacheSlots]xslot

	// Hits, Misses and Invalidations count cache events. Invalidations
	// counts entries actually dropped, not flush calls.
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// NewXCache returns an empty cache.
func NewXCache() *XCache { return &XCache{} }

func xslotIndex(page uint64, p Perm) int {
	h := (page ^ uint64(p)<<56) * 0x9E3779B97F4A7C15
	return int(h >> 58) // top 6 bits: 64 slots
}

// InvalidateAll drops every entry. Used when the region set itself changes
// (search paths shift globally, so no entry can be trusted).
func (c *XCache) InvalidateAll() {
	for i := range c.slots {
		if c.slots[i].key != 0 {
			c.slots[i].key = 0
			c.Invalidations++
		}
	}
}

// InvalidateRange drops entries whose page overlaps [base, base+length).
// Used for map changes that do not touch the region set (allocation-
// granularity moves, swap in/out), where only the affected pages go stale.
func (c *XCache) InvalidateRange(base, length uint64) {
	if length == 0 {
		return
	}
	first := base >> xcachePageShift
	last := (base + length - 1) >> xcachePageShift
	for i := range c.slots {
		s := &c.slots[i]
		if page := s.key >> 8; s.key != 0 && page >= first && page <= last {
			s.key = 0
			c.Invalidations++
		}
	}
}

// ValidPages returns the page base addresses currently cached, for tests
// asserting invalidation precision.
func (c *XCache) ValidPages() []uint64 {
	var pages []uint64
	for i := range c.slots {
		if c.slots[i].key != 0 {
			pages = append(pages, (c.slots[i].key>>8)<<xcachePageShift)
		}
	}
	return pages
}

// CheckTranslateCached is the fused guard-check + address-translation fast
// path used by the closure execution tier: one epoch-stamped probe that, on
// a hit, both validates the access and proves identity translation safe, so
// the caller can go straight to physical memory without a separate
// translate step. The fusion is sound because a cached hit proves
// [addr, addr+size) lies inside a granted region — granted regions are in
// physical bounds by construction — and a hit is impossible while an
// incremental-move forwarding window could redirect the access:
// OpenForward/FlipForward/CloseForward each bump the epoch (invalidating
// every earlier entry on the stamp), and no entry is ever filled while a
// window is open (CheckCached refuses to cache then).
//
// On a hit it charges exactly the cycles CheckCached would have charged and
// returns (addr, true). On any other outcome it returns (0, false) without
// touching the hit/miss counters: the caller then takes the unfused
// CheckCached + translate path, which counts the miss once — keeping the
// cache counters byte-identical with the predecode tier.
func (e *Evaluator) CheckTranslateCached(c *XCache, addr, size uint64, p Perm) (uint64, bool) {
	if c == nil {
		return 0, false
	}
	page := addr >> xcachePageShift
	s := &c.slots[xslotIndex(page, p)]
	// One fused compare covers validity, page, perm, and epoch.
	if ((s.key^xslotKey(page, p))|(s.epoch^e.Set.Epoch)) == 0 &&
		addr >= s.lo && addr+size <= s.hi && size <= s.hi-s.lo {
		c.Hits++
		e.Checks++
		if s.fast && e.lpBits&s.pmask == s.pvals {
			e.Cycles += s.base // path matches history: zero mispredicts
		} else {
			e.Cycles += s.replay(e)
		}
		return addr, true
	}
	return 0, false
}

// CheckCached is Check fronted by the xcache. On a hit it charges exactly
// the cycles the full walk would have charged (base cost plus a mispredict
// penalty for every recorded step that diverges from the current branch
// history, updating the history as the real walk would). On a miss it runs
// the full walk in recording mode and fills the entry.
//
// Only successful checks are cached: a fault is a cold path by definition
// and takes the full walk every time.
func (e *Evaluator) CheckCached(c *XCache, addr, size uint64, p Perm) bool {
	if c == nil {
		return e.Check(addr, size, p)
	}
	page := addr >> xcachePageShift
	s := &c.slots[xslotIndex(page, p)]
	if ((s.key^xslotKey(page, p))|(s.epoch^e.Set.Epoch)) == 0 &&
		addr >= s.lo && addr+size <= s.hi && size <= s.hi-s.lo {
		c.Hits++
		e.Checks++
		if s.fast && e.lpBits&s.pmask == s.pvals {
			e.Cycles += s.base
		} else {
			e.Cycles += s.replay(e)
		}
		return true
	}
	c.Misses++

	// Full walk in recording mode.
	e.recOn = true
	e.recSteps = e.recSteps[:0]
	e.recMisp = 0
	before := e.Cycles
	ok := e.Check(addr, size, p)
	e.recOn = false
	if !ok {
		return false
	}
	if e.Set.ForwardActive() {
		// Never cache inside a forwarding window: an entry stamped with the
		// window's epoch would let the fused translate path bypass the
		// forwarding redirect. The window is brief and bumps the epoch again
		// when it closes, so nothing of value is lost.
		return true
	}
	r, found := e.Set.Find(addr)
	if !found {
		return ok // cannot happen for a passing check; be safe
	}
	pageBase := page << xcachePageShift
	lo, hi := r.Base, r.End()
	if lo < pageBase {
		lo = pageBase
	}
	if end := pageBase + (1 << xcachePageShift); hi > end {
		hi = end
	}
	walkCost := e.Cycles - before
	s.fill(xslotKey(page, p), e.Set.Epoch, lo, hi, walkCost-uint64(e.recMisp)*costMispredict, e.recSteps)
	return true
}
