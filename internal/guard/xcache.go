package guard

// The translation/guard cache ("xcache"). CARAT's argument is that software
// translation approaches hardware speed by exploiting locality; the xcache
// models the software analogue of an inline TLB fast path: a small
// direct-mapped cache in front of the guard evaluator keyed by (page, perm).
// A hit replays the *recorded* evaluator outcome — including the exact
// modeled cycle cost and the branch-predictor state transitions the full
// walk would have performed — so the modeled cycle accounting is
// byte-identical with the cache on or off. The cache is a host-speed
// optimization only: it changes how fast the interpreter runs on the host,
// never what the model observes.
//
// Validity has two layers:
//
//   - every entry is stamped with the RegionSet epoch at fill time and a
//     hit requires an exact epoch match, so any region-set mutation
//     (grant/release/protect, Fig-8 page moves) implicitly invalidates the
//     whole cache even if an explicit flush is missed;
//   - explicit invalidation (InvalidateAll on region-set changes,
//     InvalidateRange for map changes that leave the region set alone —
//     allocation-granularity moves, swap in/out) clears entries eagerly and
//     feeds the carat.vm.xcache.invalidations counter.

// xcachePageShift matches kernel.PageSize (4 KiB); guard cannot import
// kernel (kernel imports guard), so the constant is mirrored here.
const xcachePageShift = 12

// xcacheSlots is the number of direct-mapped entries. 64 entries cover a
// 256 KiB working set of guarded pages, far beyond the loop footprints the
// Fig-3 workloads touch between map changes.
const xcacheSlots = 64

// pathStep records one branch direction of a search walk: the predictor
// slot it consulted (depth for binary search, node id for the if-tree) and
// the direction taken.
type pathStep struct {
	idx  int32
	left bool
}

// xslot is one direct-mapped cache entry. It caches a *successful* check of
// the interval [lo, hi) — the intersection of the matched region with the
// page — together with the base cost of the walk (all cycles except
// mispredict penalties) and the walk's branch path for replay.
type xslot struct {
	valid bool
	perm  Perm
	page  uint64 // addr >> xcachePageShift
	epoch uint64 // RegionSet.Epoch at fill
	lo    uint64 // first valid byte
	hi    uint64 // first invalid byte
	base  uint64 // modeled cycles excluding mispredicts
	steps []pathStep
}

// XCache is a per-thread direct-mapped guard/translation cache. It is not
// safe for concurrent use; each VM thread owns one.
type XCache struct {
	slots [xcacheSlots]xslot

	// Hits, Misses and Invalidations count cache events. Invalidations
	// counts entries actually dropped, not flush calls.
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// NewXCache returns an empty cache.
func NewXCache() *XCache { return &XCache{} }

func xslotIndex(page uint64, p Perm) int {
	h := (page ^ uint64(p)<<56) * 0x9E3779B97F4A7C15
	return int(h >> 58) // top 6 bits: 64 slots
}

// InvalidateAll drops every entry. Used when the region set itself changes
// (search paths shift globally, so no entry can be trusted).
func (c *XCache) InvalidateAll() {
	for i := range c.slots {
		if c.slots[i].valid {
			c.slots[i].valid = false
			c.Invalidations++
		}
	}
}

// InvalidateRange drops entries whose page overlaps [base, base+length).
// Used for map changes that do not touch the region set (allocation-
// granularity moves, swap in/out), where only the affected pages go stale.
func (c *XCache) InvalidateRange(base, length uint64) {
	if length == 0 {
		return
	}
	first := base >> xcachePageShift
	last := (base + length - 1) >> xcachePageShift
	for i := range c.slots {
		s := &c.slots[i]
		if s.valid && s.page >= first && s.page <= last {
			s.valid = false
			c.Invalidations++
		}
	}
}

// ValidPages returns the page base addresses currently cached, for tests
// asserting invalidation precision.
func (c *XCache) ValidPages() []uint64 {
	var pages []uint64
	for i := range c.slots {
		if c.slots[i].valid {
			pages = append(pages, c.slots[i].page<<xcachePageShift)
		}
	}
	return pages
}

// CheckCached is Check fronted by the xcache. On a hit it charges exactly
// the cycles the full walk would have charged (base cost plus a mispredict
// penalty for every recorded step that diverges from the current branch
// history, updating the history as the real walk would). On a miss it runs
// the full walk in recording mode and fills the entry.
//
// Only successful checks are cached: a fault is a cold path by definition
// and takes the full walk every time.
func (e *Evaluator) CheckCached(c *XCache, addr, size uint64, p Perm) bool {
	if c == nil {
		return e.Check(addr, size, p)
	}
	page := addr >> xcachePageShift
	s := &c.slots[xslotIndex(page, p)]
	if s.valid && s.page == page && s.perm == p && s.epoch == e.Set.Epoch &&
		addr >= s.lo && addr+size <= s.hi && size <= s.hi-s.lo {
		c.Hits++
		e.Checks++
		cost := s.base
		for _, st := range s.steps {
			if e.lastPath[st.idx] != st.left {
				cost += costMispredict
				e.lastPath[st.idx] = st.left
			}
		}
		e.Cycles += cost
		return true
	}
	c.Misses++

	// Full walk in recording mode.
	e.recOn = true
	e.recSteps = e.recSteps[:0]
	e.recMisp = 0
	before := e.Cycles
	ok := e.Check(addr, size, p)
	e.recOn = false
	if !ok {
		return false
	}
	r, found := e.Set.Find(addr)
	if !found {
		return ok // cannot happen for a passing check; be safe
	}
	pageBase := page << xcachePageShift
	lo, hi := r.Base, r.End()
	if lo < pageBase {
		lo = pageBase
	}
	if end := pageBase + (1 << xcachePageShift); hi > end {
		hi = end
	}
	walkCost := e.Cycles - before
	*s = xslot{
		valid: true,
		perm:  p,
		page:  page,
		epoch: e.Set.Epoch,
		lo:    lo,
		hi:    hi,
		base:  walkCost - uint64(e.recMisp)*costMispredict,
		steps: append([]pathStep(nil), e.recSteps...),
	}
	return true
}
