package guard

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkSet(t testing.TB, rs ...Region) *RegionSet {
	s := NewRegionSet()
	for _, r := range rs {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add(%v): %v", r, err)
		}
	}
	return s
}

func TestRegionSetAddSorted(t *testing.T) {
	s := mkSet(t,
		Region{Base: 0x3000, Len: 0x1000, Perm: PermRW},
		Region{Base: 0x1000, Len: 0x1000, Perm: PermRead},
	)
	rs := s.Regions()
	if len(rs) != 2 || rs[0].Base != 0x1000 || rs[1].Base != 0x3000 {
		t.Fatalf("regions not sorted: %v", rs)
	}
}

func TestRegionSetCoalesce(t *testing.T) {
	s := mkSet(t,
		Region{Base: 0x1000, Len: 0x1000, Perm: PermRW},
		Region{Base: 0x2000, Len: 0x1000, Perm: PermRW},
	)
	if s.Len() != 1 {
		t.Fatalf("adjacent same-perm regions not coalesced: %v", s.Regions())
	}
	if r := s.Regions()[0]; r.Base != 0x1000 || r.Len != 0x2000 {
		t.Fatalf("coalesced region wrong: %v", r)
	}
	// Different perms must not coalesce.
	s2 := mkSet(t,
		Region{Base: 0x1000, Len: 0x1000, Perm: PermRW},
		Region{Base: 0x2000, Len: 0x1000, Perm: PermRead},
	)
	if s2.Len() != 2 {
		t.Fatalf("different-perm regions coalesced: %v", s2.Regions())
	}
}

func TestRegionSetOverlapRejected(t *testing.T) {
	s := mkSet(t, Region{Base: 0x1000, Len: 0x1000, Perm: PermRW})
	err := s.Add(Region{Base: 0x1800, Len: 0x1000, Perm: PermRead})
	if err == nil {
		t.Fatal("overlapping region with different perm accepted")
	}
	if err := s.Add(Region{Base: 0x1800, Len: 0x1000, Perm: PermRW}); err != nil {
		t.Fatalf("same-perm overlap should merge: %v", err)
	}
	if s.Len() != 1 || s.Regions()[0].End() != 0x2800 {
		t.Fatalf("merge wrong: %v", s.Regions())
	}
}

func TestRegionSetRemoveSplits(t *testing.T) {
	s := mkSet(t, Region{Base: 0x1000, Len: 0x3000, Perm: PermRW})
	s.Remove(0x2000, 0x1000)
	rs := s.Regions()
	if len(rs) != 2 {
		t.Fatalf("Remove did not split: %v", rs)
	}
	if rs[0].Base != 0x1000 || rs[0].End() != 0x2000 || rs[1].Base != 0x3000 || rs[1].End() != 0x4000 {
		t.Fatalf("split ranges wrong: %v", rs)
	}
	if s.Check(0x2800, 8, PermRead) {
		t.Error("removed range still permitted")
	}
}

func TestRegionSetSetPerm(t *testing.T) {
	s := mkSet(t, Region{Base: 0x1000, Len: 0x3000, Perm: PermRW})
	if err := s.SetPerm(0x2000, 0x1000, PermRead); err != nil {
		t.Fatal(err)
	}
	if s.Check(0x2000, 8, PermWrite) {
		t.Error("write permitted after downgrade to read-only")
	}
	if !s.Check(0x2000, 8, PermRead) {
		t.Error("read denied after SetPerm")
	}
	if !s.Check(0x1000, 8, PermWrite) {
		t.Error("untouched range lost write permission")
	}
	if err := s.SetPerm(0x7000, 0x1000, PermRead); err == nil {
		t.Error("SetPerm outside coverage should fail")
	}
}

func TestCheckSpanningRegions(t *testing.T) {
	s := mkSet(t,
		Region{Base: 0x1000, Len: 0x1000, Perm: PermRW},
		Region{Base: 0x2000, Len: 0x1000, Perm: PermRead},
	)
	// Access spanning two different-perm regions must fail.
	if s.Check(0xff8, 16, PermRead) {
		t.Error("access starting before region permitted")
	}
	if s.Check(0x1ff8, 16, PermRead) {
		t.Error("access spanning perm boundary permitted")
	}
}

func TestFind(t *testing.T) {
	s := mkSet(t,
		Region{Base: 0x1000, Len: 0x1000, Perm: PermRW},
		Region{Base: 0x5000, Len: 0x1000, Perm: PermRead},
	)
	if r, ok := s.Find(0x1500); !ok || r.Base != 0x1000 {
		t.Error("Find missed containing region")
	}
	if _, ok := s.Find(0x3000); ok {
		t.Error("Find hit a gap")
	}
	if _, ok := s.Find(0x2000); ok {
		t.Error("Find hit one-past-end")
	}
}

// buildRegions makes n equal-size regions with gaps between them.
func buildRegions(t testing.TB, n int) *RegionSet {
	s := NewRegionSet()
	base := uint64(0x10000)
	for i := 0; i < n; i++ {
		if err := s.Add(Region{Base: base, Len: 0x1000, Perm: PermRW}); err != nil {
			t.Fatal(err)
		}
		base += 0x2000 // leave a gap so nothing coalesces
	}
	return s
}

func TestMechanismsAgree(t *testing.T) {
	// All mechanisms must return identical verdicts for all probes
	// (a DESIGN.md invariant).
	s := buildRegions(t, 37)
	mechs := []Mechanism{MechRange, MechMPX, MechBinarySearch, MechIfTree, MechLinear}
	evs := make([]*Evaluator, len(mechs))
	for i, m := range mechs {
		evs[i] = NewEvaluator(m, s)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(0x80000))
		size := uint64(1 + rng.Intn(16))
		perm := Perm(1 + rng.Intn(3))
		want := s.Check(addr, size, perm)
		for j, ev := range evs {
			if got := ev.Check(addr, size, perm); got != want {
				t.Fatalf("mech %v disagrees at %#x+%d %v: got %v want %v",
					mechs[j], addr, size, perm, got, want)
			}
		}
	}
}

func TestQuickMechanismsAgree(t *testing.T) {
	s := buildRegions(t, 9)
	evA := NewEvaluator(MechIfTree, s)
	evB := NewEvaluator(MechBinarySearch, s)
	f := func(addr uint64, szRaw uint8) bool {
		addr %= 0x40000
		size := uint64(szRaw%32) + 1
		return evA.Check(addr, size, PermRead) == evB.Check(addr, size, PermRead)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSingleRegionFastPath(t *testing.T) {
	s := mkSet(t, Region{Base: 0x1000, Len: 0x100000, Perm: PermRW})
	ev := NewEvaluator(MechRange, s)
	if !ev.Check(0x5000, 8, PermRead) {
		t.Fatal("in-range check failed")
	}
	if ev.Cycles != 2*costCmpBranch {
		t.Errorf("single-region cost = %d, want %d", ev.Cycles, 2*costCmpBranch)
	}
	if ev.Check(0x200000, 8, PermRead) {
		t.Fatal("out-of-range check passed")
	}
	if ev.Faults != 1 {
		t.Errorf("faults = %d, want 1", ev.Faults)
	}
}

func TestMPXCheapForFewRegions(t *testing.T) {
	s := buildRegions(t, 3)
	ev := NewEvaluator(MechMPX, s)
	ev.Check(0x10008, 8, PermRead)
	if ev.Cycles != costMPX {
		t.Errorf("MPX cost with 3 regions = %d, want %d", ev.Cycles, costMPX)
	}
}

func TestStridedCheaperThanRandom(t *testing.T) {
	// Figure 4's headline shape: for an if-tree over many regions, strided
	// access (predictable path) must be much cheaper than random access.
	s := buildRegions(t, 1024)
	strided := NewEvaluator(MechIfTree, s)
	random := NewEvaluator(MechIfTree, s)
	rng := rand.New(rand.NewSource(7))
	const probes = 20000
	addr := uint64(0x10000)
	for i := 0; i < probes; i++ {
		strided.Check(addr, 8, PermRead)
		addr += 8
		if addr >= 0x10000+0x1000 {
			addr = 0x10000 // stay within one region: perfectly predictable
		}
	}
	for i := 0; i < probes; i++ {
		region := rng.Intn(1024)
		a := 0x10000 + uint64(region)*0x2000 + uint64(rng.Intn(0x1000/8)*8)
		random.Check(a, 8, PermRead)
	}
	if strided.AvgCycles()*3 > random.AvgCycles() {
		t.Errorf("strided (%.1f cyc) not much cheaper than random (%.1f cyc)",
			strided.AvgCycles(), random.AvgCycles())
	}
}

func TestGuardCostGrowsWithRegions(t *testing.T) {
	// Random-access guard cost must grow with the region count (Figure 4a).
	rng := rand.New(rand.NewSource(3))
	avg := func(n int) float64 {
		s := buildRegions(t, n)
		ev := NewEvaluator(MechBinarySearch, s)
		for i := 0; i < 5000; i++ {
			region := rng.Intn(n)
			a := 0x10000 + uint64(region)*0x2000 + 8
			ev.Check(a, 8, PermRead)
		}
		return ev.AvgCycles()
	}
	small, large := avg(4), avg(4096)
	if small >= large {
		t.Errorf("cost did not grow: 4 regions %.1f, 4096 regions %.1f", small, large)
	}
}

func TestIfTreeRebuildOnEpochChange(t *testing.T) {
	s := buildRegions(t, 8)
	ev := NewEvaluator(MechIfTree, s)
	if !ev.Check(0x10000, 8, PermRead) {
		t.Fatal("check failed")
	}
	// Mutate the set: if-tree must rebuild and see the new region.
	if err := s.Add(Region{Base: 0x900000, Len: 0x1000, Perm: PermRead}); err != nil {
		t.Fatal(err)
	}
	if !ev.Check(0x900008, 8, PermRead) {
		t.Error("if-tree stale after region set mutation")
	}
	if ev.Check(0x900008, 8, PermWrite) {
		t.Error("permission ignored")
	}
}

func TestEmptySet(t *testing.T) {
	s := NewRegionSet()
	for _, m := range []Mechanism{MechRange, MechMPX, MechBinarySearch, MechIfTree, MechLinear} {
		ev := NewEvaluator(m, s)
		if ev.Check(0x1000, 8, PermRead) {
			t.Errorf("mech %v permitted access against empty set", m)
		}
	}
}

func TestPermString(t *testing.T) {
	if got := (PermRead | PermExec).String(); got != "r-x" {
		t.Errorf("Perm string = %q, want r-x", got)
	}
	if got := PermRW.String(); got != "rw-" {
		t.Errorf("Perm string = %q, want rw-", got)
	}
}

func TestClone(t *testing.T) {
	s := buildRegions(t, 4)
	c := s.Clone()
	c.Remove(0x10000, 0x1000)
	if s.Len() != 4 || c.Len() != 3 {
		t.Error("Clone shares storage with original")
	}
}
