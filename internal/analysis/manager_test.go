package analysis

import "testing"

func TestManagerCachesAndCountsHits(t *testing.T) {
	_, f := loopFn(t)
	var stats CacheStats
	fa := NewFuncAnalyses(f, &stats)

	cfg := fa.CFG()
	if got := stats.Misses.Load(); got != 1 {
		t.Fatalf("misses after first CFG = %d, want 1", got)
	}
	if fa.CFG() != cfg {
		t.Error("second CFG() returned a different object")
	}
	if got := stats.Hits.Load(); got != 1 {
		t.Errorf("hits after second CFG = %d, want 1", got)
	}

	// Dom pulls CFG through the cache: one miss for dom, one hit for cfg.
	fa.Dom()
	if got := stats.Misses.Load(); got != 2 {
		t.Errorf("misses after Dom = %d, want 2", got)
	}
	if got := stats.Hits.Load(); got != 2 {
		t.Errorf("hits after Dom = %d, want 2", got)
	}
}

func TestManagerLoopKeysCachePerLoop(t *testing.T) {
	_, f := loopFn(t)
	fa := NewFuncAnalyses(f, nil)
	loops := fa.Loops().All()
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	inv := fa.Invariance(l)
	if fa.Invariance(l) != inv {
		t.Error("second Invariance(l) returned a different object")
	}
	scev := fa.SCEV(l)
	if fa.SCEV(l) != scev {
		t.Error("second SCEV(l) returned a different object")
	}
}

func TestInvalidateClosesOverDeps(t *testing.T) {
	_, f := loopFn(t)
	var stats CacheStats
	fa := NewFuncAnalyses(f, &stats)
	fa.CFG()
	dom := fa.Dom()

	// Preserving Dom without CFG keeps nothing: Dom was derived from the
	// discarded CFG.
	fa.Invalidate(Preserve(IDDom))
	if got := stats.Invalidations.Load(); got != 2 {
		t.Errorf("invalidations = %d, want 2 (cfg and dom)", got)
	}
	if fa.Dom() == dom {
		t.Error("Dom survived an invalidation that dropped its CFG")
	}
	if got := stats.Recomputes.Load(); got != 2 {
		t.Errorf("recomputes = %d, want 2 (cfg and dom rebuilt)", got)
	}
}

func TestInvalidatePreservesClosedSets(t *testing.T) {
	_, f := loopFn(t)
	var stats CacheStats
	fa := NewFuncAnalyses(f, &stats)
	cfg := fa.CFG()
	dom := fa.Dom()
	loops := fa.Loops()

	fa.Invalidate(Preserve(IDCFG, IDDom, IDLoops))
	if stats.Invalidations.Load() != 0 {
		t.Errorf("invalidations = %d, want 0", stats.Invalidations.Load())
	}
	if fa.CFG() != cfg || fa.Dom() != dom || fa.Loops() != loops {
		t.Error("a preserved analysis was dropped")
	}
}

func TestInvalidateDropsLoopResults(t *testing.T) {
	_, f := loopFn(t)
	var stats CacheStats
	fa := NewFuncAnalyses(f, &stats)
	l := fa.Loops().All()[0]
	inv := fa.Invariance(l)

	fa.Invalidate(Preserve(IDCFG, IDDom, IDLoops, IDAlias))
	if fa.Invariance(l) == inv {
		t.Error("per-loop invariance survived invalidation")
	}
	if stats.Recomputes.Load() == 0 {
		t.Error("expected a recompute after invalidation")
	}
}

func TestPreservedClosure(t *testing.T) {
	cases := []struct {
		in, want Preserved
	}{
		{Preserve(IDLoops), PreserveNone},
		{Preserve(IDCFG, IDLoops), Preserve(IDCFG)},
		{Preserve(IDCFG, IDDom, IDLoops), Preserve(IDCFG, IDDom, IDLoops)},
		{Preserve(IDSCEV, IDRanges), Preserve(IDRanges)},
		{PreserveAll, PreserveAll},
	}
	for _, c := range cases {
		if got := c.in.closure(); got != c.want {
			t.Errorf("closure(%b) = %b, want %b", c.in, got, c.want)
		}
	}
}
