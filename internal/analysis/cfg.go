// Package analysis implements the code analyses the CARAT compiler relies
// on (paper §4.1): CFG utilities, dominators, natural loops, a chained
// alias-analysis stack, loop-invariance powered by the alias results (the
// paper's "program dependence" enhancement), scalar evolution, and the
// available-pointer-definitions dataflow used by the AC/DC redundant-guard
// elimination.
package analysis

import "carat/internal/ir"

// CFG caches the predecessor lists and a reverse postorder of a function's
// blocks. Build one per function per pass invocation; it is invalidated by
// any mutation of block structure.
type CFG struct {
	Fn    *ir.Func
	Preds map[*ir.Block][]*ir.Block
	// RPO is a reverse postorder over blocks reachable from the entry.
	RPO []*ir.Block
	// RPONum maps a block to its position in RPO (-1 if unreachable).
	RPONum map[*ir.Block]int
}

// NewCFG computes the CFG caches for f.
func NewCFG(f *ir.Func) *CFG {
	c := &CFG{
		Fn:     f,
		Preds:  make(map[*ir.Block][]*ir.Block),
		RPONum: make(map[*ir.Block]int),
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}
	// Postorder DFS from entry, then reverse.
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	c.RPO = make([]*ir.Block, len(post))
	for i := range post {
		c.RPO[i] = post[len(post)-1-i]
	}
	for _, b := range f.Blocks {
		c.RPONum[b] = -1
	}
	for i, b := range c.RPO {
		c.RPONum[b] = i
	}
	return c
}

// Reachable reports whether b is reachable from the function entry.
func (c *CFG) Reachable(b *ir.Block) bool { return c.RPONum[b] >= 0 }
