package analysis

import (
	"testing"

	"carat/internal/ir"
)

// diamond builds:  entry -> {left, right} -> merge -> exit
func diamond(t testing.TB) (*ir.Module, *ir.Func) {
	m := ir.MustParse(`module "d"
func @f(%c: i1) -> i64 {
entry:
  condbr %c, ^left, ^right
left:
  br ^merge
right:
  br ^merge
merge:
  %x = phi i64 [1, ^left], [2, ^right]
  br ^exit
exit:
  ret i64 %x
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, m.Func("f")
}

func loopFn(t testing.TB) (*ir.Module, *ir.Func) {
	m := ir.MustParse(`module "l"
global @a : [128 x i64]
func @f(%n: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %p = gep i64, @a, %i
  %v = load i64, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m, m.Func("f")
}

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestCFGRPO(t *testing.T) {
	_, f := diamond(t)
	c := NewCFG(f)
	if len(c.RPO) != 5 {
		t.Fatalf("RPO has %d blocks, want 5", len(c.RPO))
	}
	if c.RPO[0] != f.Entry() {
		t.Error("RPO does not start at entry")
	}
	merge := blockByName(f, "merge")
	if len(c.Preds[merge]) != 2 {
		t.Errorf("merge has %d preds, want 2", len(c.Preds[merge]))
	}
	// entry must come before everything; exit last.
	if c.RPONum[blockByName(f, "exit")] != 4 {
		t.Errorf("exit RPO position = %d, want 4", c.RPONum[blockByName(f, "exit")])
	}
}

func TestCFGUnreachable(t *testing.T) {
	m := ir.MustParse(`module "u"
func @f() -> i64 {
entry:
  ret i64 0
dead:
  ret i64 1
}`)
	f := m.Func("f")
	c := NewCFG(f)
	if c.Reachable(blockByName(f, "dead")) {
		t.Error("dead block reported reachable")
	}
	if !c.Reachable(f.Entry()) {
		t.Error("entry not reachable")
	}
}

func TestDominators(t *testing.T) {
	_, f := diamond(t)
	c := NewCFG(f)
	dom := NewDomTree(c)
	entry := f.Entry()
	left := blockByName(f, "left")
	right := blockByName(f, "right")
	merge := blockByName(f, "merge")
	exit := blockByName(f, "exit")

	if dom.IDom(merge) != entry {
		t.Errorf("idom(merge) = %v, want entry", dom.IDom(merge))
	}
	if dom.IDom(exit) != merge {
		t.Errorf("idom(exit) = %v, want merge", dom.IDom(exit))
	}
	if !dom.Dominates(entry, exit) || !dom.Dominates(merge, exit) {
		t.Error("dominance facts wrong")
	}
	if dom.Dominates(left, merge) || dom.Dominates(right, merge) {
		t.Error("branch arm should not dominate merge")
	}
	if !dom.Dominates(entry, entry) {
		t.Error("dominance should be reflexive")
	}
}

func TestInstrDominates(t *testing.T) {
	_, f := loopFn(t)
	c := NewCFG(f)
	dom := NewDomTree(c)
	header := blockByName(f, "header")
	body := blockByName(f, "body")
	phi := header.Instrs[0]
	load := body.Instrs[1]
	if !dom.InstrDominates(phi, load) {
		t.Error("phi should dominate load in body")
	}
	if dom.InstrDominates(load, phi) {
		t.Error("load should not dominate phi")
	}
	cmp := header.Instrs[1]
	if !dom.InstrDominates(phi, cmp) || dom.InstrDominates(cmp, phi) {
		t.Error("same-block ordering wrong")
	}
}

func TestFindLoops(t *testing.T) {
	_, f := loopFn(t)
	c := NewCFG(f)
	dom := NewDomTree(c)
	lf := FindLoops(c, dom)
	if len(lf.Top) != 1 {
		t.Fatalf("found %d top loops, want 1", len(lf.Top))
	}
	l := lf.Top[0]
	if l.Header != blockByName(f, "header") {
		t.Error("wrong loop header")
	}
	for _, name := range []string{"header", "body", "latch"} {
		if !l.Contains(blockByName(f, name)) {
			t.Errorf("loop missing block %s", name)
		}
	}
	if l.Contains(blockByName(f, "exit")) || l.Contains(f.Entry()) {
		t.Error("loop includes non-loop block")
	}
	if ph := l.Preheader(c); ph != f.Entry() {
		t.Errorf("preheader = %v, want entry", ph)
	}
	exits := l.Exits()
	if len(exits) != 1 || exits[0] != blockByName(f, "exit") {
		t.Errorf("exits = %v", exits)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
}

func TestNestedLoops(t *testing.T) {
	m := ir.MustParse(`module "n"
func @f(%n: i64) -> i64 {
entry:
  br ^oh
oh:
  %i = phi i64 [0, ^entry], [%inext, ^olatch]
  %oc = icmp slt i64 %i, %n
  condbr %oc, ^ih, ^done
ih:
  %j = phi i64 [0, ^oh], [%jnext, ^ibody]
  %ic = icmp slt i64 %j, %n
  condbr %ic, ^ibody, ^olatch
ibody:
  %jnext = add i64 %j, 1
  br ^ih
olatch:
  %inext = add i64 %i, 1
  br ^oh
done:
  ret i64 0
}`)
	f := m.Func("f")
	c := NewCFG(f)
	lf := FindLoops(c, NewDomTree(c))
	if len(lf.Top) != 1 {
		t.Fatalf("top loops = %d, want 1", len(lf.Top))
	}
	outer := lf.Top[0]
	if len(outer.Subs) != 1 {
		t.Fatalf("outer has %d subs, want 1", len(outer.Subs))
	}
	inner := outer.Subs[0]
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths: outer %d inner %d", outer.Depth, inner.Depth)
	}
	ih := blockByName(f, "ih")
	if lf.Innermost[ih] != inner {
		t.Error("innermost map wrong for inner header")
	}
	if got := len(lf.All()); got != 2 {
		t.Errorf("All() = %d loops, want 2", got)
	}
}

func TestDecomposePtr(t *testing.T) {
	m := ir.NewModule("t")
	g := m.AddGlobal("g", ir.ArrayOf(ir.I64, 16))
	f := m.AddFunc("f", ir.Void, &ir.Param{Name: "i", Typ: ir.I64})
	b := ir.NewBuilder(f)
	p1 := b.GEP(ir.I64, g, b.I64(3))
	p2 := b.GEP(ir.I64, p1, b.I64(2))
	p3 := b.GEP(ir.I64, g, f.Params[0])
	b.Ret(nil)

	base, off, exact := DecomposePtr(p2)
	if base != ir.Value(g) || off != 40 || !exact {
		t.Errorf("DecomposePtr(p2) = (%v, %d, %v), want (@g, 40, true)", base, off, exact)
	}
	base, _, exact = DecomposePtr(p3)
	if base != ir.Value(g) || exact {
		t.Errorf("DecomposePtr(p3) = (%v, _, %v), want (@g, false)", base, exact)
	}
}

func TestDecomposeStructGEP(t *testing.T) {
	m := ir.NewModule("t")
	st := ir.StructOf(ir.I64, ir.F64, ir.Ptr)
	g := m.AddGlobal("s", ir.ArrayOf(st, 8))
	f := m.AddFunc("f", ir.Void)
	b := ir.NewBuilder(f)
	// &s[2].field1  => 2*24 + 8 = 56
	p := b.GEP(st, g, b.I64(2), b.I64(1))
	b.Ret(nil)
	base, off, exact := DecomposePtr(p)
	if base != ir.Value(g) || off != 56 || !exact {
		t.Errorf("struct GEP decompose = (%v, %d, %v), want (@s, 56, true)", base, off, exact)
	}
}

func TestBaseObjectAA(t *testing.T) {
	m := ir.NewModule("t")
	g1 := m.AddGlobal("g1", ir.ArrayOf(ir.I64, 8))
	g2 := m.AddGlobal("g2", ir.ArrayOf(ir.I64, 8))
	f := m.AddFunc("f", ir.Void, &ir.Param{Name: "p", Typ: ir.Ptr})
	b := ir.NewBuilder(f)
	a1 := b.Alloca(ir.I64, nil)
	a2 := b.Alloca(ir.I64, nil)
	pg1a := b.GEP(ir.I64, g1, b.I64(0))
	pg1b := b.GEP(ir.I64, g1, b.I64(1))
	pg1c := b.GEP(ir.I64, g1, b.I64(0))
	b.Ret(nil)

	aa := &BaseObjectAA{}
	if r := aa.Alias(g1, 8, g2, 8); r != NoAlias {
		t.Errorf("distinct globals: %v, want no", r)
	}
	if r := aa.Alias(a1, 8, a2, 8); r != NoAlias {
		t.Errorf("distinct allocas: %v, want no", r)
	}
	if r := aa.Alias(a1, 8, g1, 8); r != NoAlias {
		t.Errorf("alloca vs global: %v, want no", r)
	}
	if r := aa.Alias(pg1a, 8, pg1b, 8); r != NoAlias {
		t.Errorf("disjoint offsets: %v, want no", r)
	}
	if r := aa.Alias(pg1a, 8, pg1c, 8); r != MustAlias {
		t.Errorf("same offset: %v, want must", r)
	}
	if r := aa.Alias(f.Params[0], 8, g1, 8); r != MayAlias {
		t.Errorf("unknown param vs global: %v, want may", r)
	}
}

func TestBaseObjectAAMallocs(t *testing.T) {
	m := ir.NewModule("t")
	malloc := m.DeclareFunc(ir.FnMalloc, ir.Ptr, ir.I64)
	f := m.AddFunc("f", ir.Void)
	b := ir.NewBuilder(f)
	h1 := b.Call(malloc, b.I64(64))
	h2 := b.Call(malloc, b.I64(64))
	g := m.AddGlobal("g", ir.I64)
	b.Ret(nil)
	aa := &BaseObjectAA{}
	if r := aa.Alias(h1, 8, h2, 8); r != NoAlias {
		t.Errorf("two mallocs: %v, want no", r)
	}
	if r := aa.Alias(h1, 8, g, 8); r != NoAlias {
		t.Errorf("malloc vs global: %v, want no", r)
	}
	if r := aa.Alias(h1, 8, h1, 8); r != MustAlias {
		t.Errorf("same malloc same offset: %v, want must", r)
	}
}

func TestPointsToAA(t *testing.T) {
	m := ir.MustParse(`module "p"
global @g1 : [8 x i64]
global @g2 : [8 x i64]
func @f(%c: i1, %unk: ptr) -> void {
entry:
  %a = alloca i64, 1
  condbr %c, ^l, ^r
l:
  %p1 = gep i64, @g1, 0
  br ^m
r:
  %p2 = gep i64, @g2, 0
  br ^m
m:
  %sel = phi ptr [%p1, ^l], [%p2, ^r]
  ret void
}`)
	f := m.Func("f")
	pt := NewPointsToAA(f)
	var sel, a ir.Value
	f.ForEachInstr(func(in *ir.Instr) {
		switch in.Name {
		case "sel":
			sel = in
		case "a":
			a = in
		}
	})
	// sel points to {g1,g2}; a points to its alloca: disjoint.
	if r := pt.Alias(sel, 8, a, 8); r != NoAlias {
		t.Errorf("phi(globals) vs alloca: %v, want no", r)
	}
	// sel may alias g1.
	if r := pt.Alias(sel, 8, m.Global("g1"), 8); r != MayAlias {
		t.Errorf("phi vs member global: %v, want may", r)
	}
	// unknown param must stay may.
	if r := pt.Alias(f.Params[1], 8, a, 8); r != MayAlias {
		t.Errorf("unknown vs alloca: %v, want may", r)
	}
}

func TestChainPrecedence(t *testing.T) {
	_, f := loopFn(t)
	ch := NewChain(f)
	m := ir.NewModule("x")
	g1 := m.AddGlobal("g1", ir.I64)
	g2 := m.AddGlobal("g2", ir.I64)
	if r := ch.Alias(g1, 8, g2, 8); r != NoAlias {
		t.Errorf("chain on distinct globals: %v", r)
	}
}

func TestInvariance(t *testing.T) {
	m := ir.MustParse(`module "inv"
global @a : [64 x i64]
global @lim : i64
func @f(%n: i64, %base: ptr) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %liminv = load i64, @lim
  %p = gep i64, @a, %i
  %v = load i64, %p
  store i64 %v, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`)
	f := m.Func("f")
	c := NewCFG(f)
	lf := FindLoops(c, NewDomTree(c))
	l := lf.Top[0]
	inv := NewInvariance(l, NewChain(f))

	vals := map[string]ir.Value{}
	f.ForEachInstr(func(in *ir.Instr) { vals[in.Name] = in })

	if !inv.Invariant(f.Params[0]) || !inv.Invariant(f.Params[1]) {
		t.Error("params should be invariant")
	}
	if inv.Invariant(vals["i"]) || inv.Invariant(vals["next"]) {
		t.Error("induction variable should be variant")
	}
	if inv.Invariant(vals["p"]) {
		t.Error("iv-dependent gep should be variant")
	}
	// @lim load: address invariant, and the loop's only store targets @a,
	// which base-object AA proves cannot alias @lim.
	if !inv.Invariant(vals["liminv"]) {
		t.Error("load of untouched global should be invariant (needs alias analysis)")
	}
	if !inv.StackAllocFree() {
		t.Error("loop has no allocas")
	}
}

func TestInvarianceClobberedLoad(t *testing.T) {
	m := ir.MustParse(`module "inv2"
global @a : [64 x i64]
func @f(%n: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %x = load i64, @a
  %p = gep i64, @a, %i
  store i64 %x, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`)
	f := m.Func("f")
	c := NewCFG(f)
	l := FindLoops(c, NewDomTree(c)).Top[0]
	inv := NewInvariance(l, NewChain(f))
	var x ir.Value
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Name == "x" {
			x = in
		}
	})
	// The store to @a[i] may alias @a[0], so the load is not invariant.
	if inv.Invariant(x) {
		t.Error("load clobbered by may-aliasing store reported invariant")
	}
}

func TestSCEVIndVar(t *testing.T) {
	_, f := loopFn(t)
	c := NewCFG(f)
	l := FindLoops(c, NewDomTree(c)).Top[0]
	inv := NewInvariance(l, NewChain(f))
	s := NewSCEV(c, l, inv)

	phi := blockByName(f, "header").Instrs[0]
	iv, ok := s.IndVarOf(phi)
	if !ok {
		t.Fatal("induction variable not recognized")
	}
	if iv.Step != 1 {
		t.Errorf("step = %d, want 1", iv.Step)
	}
	if cst, ok := iv.Start.(*ir.Const); !ok || cst.Int != 0 {
		t.Errorf("start = %v, want 0", iv.Start)
	}

	tb, ok := s.TripBoundOf()
	if !ok {
		t.Fatal("trip bound not recognized")
	}
	if tb.Inclusive {
		t.Error("slt bound should be exclusive")
	}
	if tb.Bound != ir.Value(f.Params[0]) {
		t.Errorf("bound = %v, want %%n", tb.Bound)
	}
}

func TestSCEVAffineAccess(t *testing.T) {
	_, f := loopFn(t)
	c := NewCFG(f)
	l := FindLoops(c, NewDomTree(c)).Top[0]
	inv := NewInvariance(l, NewChain(f))
	s := NewSCEV(c, l, inv)

	var gep *ir.Instr
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpGEP {
			gep = in
		}
	})
	acc, ok := s.AffineAccessOf(gep)
	if !ok {
		t.Fatal("affine access not recognized")
	}
	if acc.StepBytes != 8 {
		t.Errorf("step bytes = %d, want 8", acc.StepBytes)
	}
	if acc.Lin.C != 0 || acc.Lin.K != 8 {
		t.Errorf("linear = %d*iv+%d, want 8*iv+0", acc.Lin.K, acc.Lin.C)
	}
}

func TestSCEVLinearCombinations(t *testing.T) {
	m := ir.MustParse(`module "lin"
global @a : [4096 x i64]
func @f(%n: i64) -> i64 {
entry:
  br ^header
header:
  %i = phi i64 [0, ^entry], [%next, ^latch]
  %cmp = icmp slt i64 %i, %n
  condbr %cmp, ^body, ^exit
body:
  %i4 = mul i64 %i, 4
  %i4p2 = add i64 %i4, 2
  %p = gep i64, @a, %i4p2
  %v = load i64, %p
  br ^latch
latch:
  %next = add i64 %i, 1
  br ^header
exit:
  ret i64 0
}`)
	f := m.Func("f")
	c := NewCFG(f)
	l := FindLoops(c, NewDomTree(c)).Top[0]
	inv := NewInvariance(l, NewChain(f))
	s := NewSCEV(c, l, inv)
	var gep *ir.Instr
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpGEP {
			gep = in
		}
	})
	acc, ok := s.AffineAccessOf(gep)
	if !ok {
		t.Fatal("linear access not recognized")
	}
	if acc.Lin.K != 32 || acc.Lin.C != 16 {
		t.Errorf("linear bytes = %d*iv+%d, want 32*iv+16", acc.Lin.K, acc.Lin.C)
	}
	if acc.StepBytes != 32 {
		t.Errorf("step = %d, want 32", acc.StepBytes)
	}
}

func TestBits(t *testing.T) {
	b := NewBits(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Error("bit ops wrong")
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Clear failed")
	}
	c := b.Copy()
	if !c.Equal(b) {
		t.Error("Copy not equal")
	}
	c.Set(5)
	if c.Equal(b) {
		t.Error("copies aliased")
	}
	d := NewBits(130)
	d.FillAll(130)
	if !d.Has(129) || !d.Has(0) {
		t.Error("FillAll failed")
	}
	e := d.Copy()
	if changed := e.AndWith(b); !changed || !e.Equal(b) {
		t.Error("AndWith wrong")
	}
	if changed := e.OrWith(d); !changed {
		t.Error("OrWith should change")
	}
}

func TestForwardMustAvailability(t *testing.T) {
	// Availability of "fact 0" generated in entry should reach exit through
	// both arms; fact 1 generated only in left must not be available at merge.
	_, f := diamond(t)
	c := NewCFG(f)
	gen := map[string]int{"entry": 0, "left": 1}
	ins := ForwardMust(c, 2, func(b *ir.Block, in Bits) Bits {
		if i, ok := gen[b.Name]; ok {
			in.Set(i)
		}
		return in
	})
	merge := blockByName(f, "merge")
	if !ins[merge].Has(0) {
		t.Error("fact from entry should be available at merge")
	}
	if ins[merge].Has(1) {
		t.Error("one-arm fact must not be available at merge")
	}
	exit := blockByName(f, "exit")
	if !ins[exit].Has(0) || ins[exit].Has(1) {
		t.Error("exit availability wrong")
	}
}

func TestForwardMustLoop(t *testing.T) {
	// A fact generated before a loop stays available inside it.
	_, f := loopFn(t)
	c := NewCFG(f)
	ins := ForwardMust(c, 1, func(b *ir.Block, in Bits) Bits {
		if b.Name == "entry" {
			in.Set(0)
		}
		return in
	})
	for _, name := range []string{"header", "body", "latch", "exit"} {
		if !ins[blockByName(f, name)].Has(0) {
			t.Errorf("fact not available at %s", name)
		}
	}
}

func TestRangesBasics(t *testing.T) {
	m := ir.MustParse(`module "rg"
func @f(%x: i64, %n: i64) -> i64 {
entry:
  %m = and i64 %x, 255
  %r = urem i64 %x, 100
  %sh = lshr i64 %m, 2
  %sum = add i64 %m, %r
  %sc = mul i64 %m, 8
  %sel = select i64 1, %m, %r
  ret i64 %sum
}`)
	f := m.Func("f")
	vals := map[string]ir.Value{}
	f.ForEachInstr(func(in *ir.Instr) { vals[in.Name] = in })
	r := NewRanges()

	check := func(name string, lo, hi uint64) {
		t.Helper()
		iv := r.Of(vals[name])
		if iv.Lo != lo || iv.Hi != hi {
			t.Errorf("%s: range [%d,%d], want [%d,%d]", name, iv.Lo, iv.Hi, lo, hi)
		}
	}
	check("m", 0, 255)
	check("r", 0, 99)
	check("sh", 0, 63)
	check("sum", 0, 354)
	check("sc", 0, 2040)
	check("sel", 0, 255)
	if !r.Of(f.Params[0]).IsFull() {
		t.Error("unconstrained parameter should be full range")
	}
}

func TestRangesWidthBound(t *testing.T) {
	m := ir.NewModule("w")
	f := m.AddFunc("f", ir.Void, &ir.Param{Name: "b", Typ: ir.I8})
	r := NewRanges()
	iv := r.Of(f.Params[0])
	if iv.Lo != 0 || iv.Hi != 255 {
		t.Errorf("i8 param range = [%d,%d], want [0,255]", iv.Lo, iv.Hi)
	}
}

func TestRangesPhiConservative(t *testing.T) {
	m := ir.MustParse(`module "p"
func @f(%c: i1, %u: i64) -> i64 {
entry:
  %a = and i64 %u, 15
  condbr %c, ^l, ^r
l:
  br ^m
r:
  br ^m
m:
  %phi = phi i64 [%a, ^l], [7, ^r]
  %bad = phi i64 [%u, ^l], [3, ^r]
  ret i64 %phi
}`)
	f := m.Func("f")
	vals := map[string]ir.Value{}
	f.ForEachInstr(func(in *ir.Instr) { vals[in.Name] = in })
	r := NewRanges()
	iv := r.Of(vals["phi"])
	if iv.Lo != 0 || iv.Hi != 15 {
		t.Errorf("phi range = [%d,%d], want [0,15]", iv.Lo, iv.Hi)
	}
	if !r.Of(vals["bad"]).IsFull() {
		t.Error("phi with unconstrained incoming should be full")
	}
}
