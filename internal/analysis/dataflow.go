package analysis

import "carat/internal/ir"

// Bits is a fixed-width bitset used by the dataflow framework.
type Bits []uint64

// NewBits returns a bitset able to hold n bits, all clear.
func NewBits(n int) Bits { return make(Bits, (n+63)/64) }

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports whether bit i is set.
func (b Bits) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Copy returns an independent copy of b.
func (b Bits) Copy() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// AndWith intersects b with o in place and reports whether b changed.
func (b Bits) AndWith(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// OrWith unions o into b in place and reports whether b changed.
func (b Bits) OrWith(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports whether b and o have identical contents.
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// FillAll sets every bit in the universe of size n.
func (b Bits) FillAll(n int) {
	for i := 0; i < n; i++ {
		b.Set(i)
	}
}

// ForwardMust runs a forward "must" (intersection-confluence) dataflow to a
// fixed point, as used by available-expressions style analyses (the AC/DC
// analysis of paper §4.1.1). universe is the number of facts; transfer maps
// a block's IN set to its OUT set (it must not retain or mutate in). The
// returned map gives each reachable block's IN set. The entry block starts
// from the empty set; all other blocks start from the full set (top).
func ForwardMust(c *CFG, universe int, transfer func(b *ir.Block, in Bits) Bits) map[*ir.Block]Bits {
	ins := make(map[*ir.Block]Bits, len(c.RPO))
	outs := make(map[*ir.Block]Bits, len(c.RPO))
	for i, b := range c.RPO {
		in := NewBits(universe)
		if i > 0 {
			in.FillAll(universe)
		}
		ins[b] = in
		out := NewBits(universe)
		out.FillAll(universe)
		outs[b] = out
	}
	for changed := true; changed; {
		changed = false
		for i, b := range c.RPO {
			in := ins[b]
			if i > 0 {
				first := true
				for _, p := range c.Preds[b] {
					if !c.Reachable(p) {
						continue
					}
					if first {
						copy(in, outs[p])
						first = false
					} else {
						in.AndWith(outs[p])
					}
				}
				if first { // no reachable preds (shouldn't happen past entry)
					for j := range in {
						in[j] = 0
					}
				}
			}
			out := transfer(b, in.Copy())
			if !out.Equal(outs[b]) {
				outs[b] = out
				changed = true
			}
		}
	}
	return ins
}
