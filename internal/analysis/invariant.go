package analysis

import "carat/internal/ir"

// Invariance decides loop-invariance of SSA values with respect to one
// loop. Unlike a purely syntactic check, it uses the alias-analysis chain
// to prove loads invariant when nothing in the loop can clobber their
// address — the paper's "enhanced loop invariant analysis that relies on
// the PD analysis of CARAT" (§4.1.1, Optimization 1).
type Invariance struct {
	Loop *Loop
	AA   AliasAnalysis

	memo     map[ir.Value]int8 // 0 unknown, 1 invariant, 2 variant
	stores   []*ir.Instr
	clobbers bool // loop contains a call that may write arbitrary memory
}

// NewInvariance prepares invariance queries for l using aa.
func NewInvariance(l *Loop, aa AliasAnalysis) *Invariance {
	iv := &Invariance{Loop: l, AA: aa, memo: make(map[ir.Value]int8)}
	for _, b := range l.Ordered {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				iv.stores = append(iv.stores, in)
			case ir.OpCall:
				if in.Callee == nil || !pureCall(in.Callee.Name) {
					iv.clobbers = true
				}
			}
		}
	}
	return iv
}

// pureCall reports whether a call to name cannot write program-visible
// memory. The runtime tracking callbacks mutate only runtime state, and
// malloc/calloc return fresh memory, so none of them clobber existing
// program data.
func pureCall(name string) bool {
	return ir.IsRuntimeFn(name)
}

// Invariant reports whether v has the same value on every iteration of the
// loop.
func (iv *Invariance) Invariant(v ir.Value) bool {
	switch x := v.(type) {
	case *ir.Const, *ir.Global, *ir.Func, *ir.Param:
		return true
	case *ir.Instr:
		if !iv.Loop.ContainsInstr(x) {
			return true
		}
		switch iv.memo[x] {
		case 1:
			return true
		case 2:
			return false
		}
		iv.memo[x] = 2 // break cycles (phis) pessimistically
		res := iv.invariantInstr(x)
		if res {
			iv.memo[x] = 1
		}
		return res
	}
	return false
}

func (iv *Invariance) invariantInstr(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpPhi, ir.OpAlloca, ir.OpCall, ir.OpStore,
		ir.OpBr, ir.OpCondBr, ir.OpRet, ir.OpUnreachable, ir.OpGuard:
		return false
	case ir.OpLoad:
		if iv.clobbers {
			return false
		}
		addr := in.Args[0]
		if !iv.Invariant(addr) {
			return false
		}
		size := in.AccessSize()
		for _, st := range iv.stores {
			if iv.AA.Alias(addr, size, st.Args[1], st.Args[0].Type().Size()) != NoAlias {
				return false
			}
		}
		return true
	default:
		for _, a := range in.Args {
			if !iv.Invariant(a) {
				return false
			}
		}
		return true
	}
}

// StackAllocFree reports whether the loop performs no stack allocation, the
// condition under which a call guard may be hoisted out of it (§4.1.1).
func (iv *Invariance) StackAllocFree() bool {
	for b := range iv.Loop.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				return false
			}
		}
	}
	return true
}
