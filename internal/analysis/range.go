package analysis

import "carat/internal/ir"

// Value-range analysis (the paper's §4.1.1 cites Birch et al.'s analysis
// of conditionally updated variables and pointers). This implementation
// computes conservative unsigned intervals for integer SSA values by
// structural recursion over their defining expressions. Optimization 2
// uses it to merge guards whose index is not affine but provably bounded —
// e.g. rnd & (N-1) or x urem N — into a single range guard covering the
// whole addressable window.

// Interval is an inclusive unsigned range [Lo, Hi]. The zero Interval is
// the single value 0.
type Interval struct {
	Lo, Hi uint64
}

// FullInterval is the unconstrained 64-bit range.
var FullInterval = Interval{0, ^uint64(0)}

// IsFull reports whether the interval carries no information.
func (iv Interval) IsFull() bool { return iv == FullInterval }

// Width returns Hi-Lo (saturating semantics are unnecessary: Hi >= Lo).
func (iv Interval) Width() uint64 { return iv.Hi - iv.Lo }

// Ranges computes intervals for integer values. It is loop-aware only in
// the negative sense: phi nodes and loads are unconstrained unless their
// width bounds them. Memoized per instance.
type Ranges struct {
	memo map[ir.Value]Interval
}

// NewRanges returns an empty analysis instance.
func NewRanges() *Ranges {
	return &Ranges{memo: make(map[ir.Value]Interval)}
}

// Of returns a conservative unsigned interval for v. Any integer value is
// at least bounded by its type width.
func (r *Ranges) Of(v ir.Value) Interval {
	if iv, ok := r.memo[v]; ok {
		return iv
	}
	// Seed with the type-width bound and the pessimistic answer so that
	// cycles (phis) terminate conservatively.
	r.memo[v] = widthBound(v)
	iv := r.compute(v)
	// Intersect with the width bound: compute can only tighten.
	wb := widthBound(v)
	if iv.Lo < wb.Lo {
		iv.Lo = wb.Lo
	}
	if iv.Hi > wb.Hi {
		iv.Hi = wb.Hi
	}
	if iv.Lo > iv.Hi { // contradictory (shouldn't happen): give up safely
		iv = wb
	}
	r.memo[v] = iv
	return iv
}

func widthBound(v ir.Value) Interval {
	t := v.Type()
	if !t.IsInt() || t.Bits >= 64 {
		return FullInterval
	}
	return Interval{0, 1<<uint(t.Bits) - 1}
}

func (r *Ranges) compute(v ir.Value) Interval {
	switch x := v.(type) {
	case *ir.Const:
		if x.Typ.IsInt() && x.Int >= 0 {
			return Interval{uint64(x.Int), uint64(x.Int)}
		}
		return FullInterval
	case *ir.Instr:
		return r.computeInstr(x)
	}
	return widthBound(v)
}

func (r *Ranges) computeInstr(in *ir.Instr) Interval {
	switch in.Op {
	case ir.OpAnd:
		// x & mask <= mask (for non-negative masks); also <= other side.
		a, b := r.Of(in.Args[0]), r.Of(in.Args[1])
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return Interval{0, hi}

	case ir.OpURem:
		// x urem m < m (when m's range excludes 0 we could do better; the
		// VM traps on 0 divisors, so using Hi-1 is sound for executions
		// that continue).
		m := r.Of(in.Args[1])
		if m.Hi == 0 {
			return Interval{0, 0}
		}
		return Interval{0, m.Hi - 1}

	case ir.OpLShr:
		a := r.Of(in.Args[0])
		if c, ok := in.Args[1].(*ir.Const); ok && c.Int >= 0 && c.Int < 64 {
			return Interval{a.Lo >> uint(c.Int), a.Hi >> uint(c.Int)}
		}
		return Interval{0, a.Hi}

	case ir.OpAdd:
		a, b := r.Of(in.Args[0]), r.Of(in.Args[1])
		lo, hi := a.Lo+b.Lo, a.Hi+b.Hi
		if hi < a.Hi || hi < b.Hi { // overflow: give up
			return FullInterval
		}
		return Interval{lo, hi}

	case ir.OpSub:
		a, b := r.Of(in.Args[0]), r.Of(in.Args[1])
		if a.Lo >= b.Hi { // cannot underflow
			return Interval{a.Lo - b.Hi, a.Hi - b.Lo}
		}
		return FullInterval

	case ir.OpMul:
		a, b := r.Of(in.Args[0]), r.Of(in.Args[1])
		if a.Hi != 0 && b.Hi != 0 {
			hi := a.Hi * b.Hi
			if hi/a.Hi != b.Hi { // overflow
				return FullInterval
			}
			return Interval{a.Lo * b.Lo, hi}
		}
		return Interval{0, 0}

	case ir.OpShl:
		a := r.Of(in.Args[0])
		if c, ok := in.Args[1].(*ir.Const); ok && c.Int >= 0 && c.Int < 64 {
			hi := a.Hi << uint(c.Int)
			if hi>>uint(c.Int) != a.Hi { // overflow
				return FullInterval
			}
			return Interval{a.Lo << uint(c.Int), hi}
		}
		return FullInterval

	case ir.OpSelect:
		a, b := r.Of(in.Args[1]), r.Of(in.Args[2])
		lo, hi := a.Lo, a.Hi
		if b.Lo < lo {
			lo = b.Lo
		}
		if b.Hi > hi {
			hi = b.Hi
		}
		return Interval{lo, hi}

	case ir.OpZExt:
		return r.Of(in.Args[0])

	case ir.OpPhi:
		// Bounded only when every incoming is already memoized-bounded;
		// the seed in Of makes recursive self-references safe.
		iv := Interval{^uint64(0), 0}
		for _, a := range in.Args {
			av := r.Of(a)
			if av.IsFull() {
				return FullInterval
			}
			if av.Lo < iv.Lo {
				iv.Lo = av.Lo
			}
			if av.Hi > iv.Hi {
				iv.Hi = av.Hi
			}
		}
		if iv.Lo > iv.Hi {
			return FullInterval
		}
		return iv
	}
	return widthBound(in)
}
