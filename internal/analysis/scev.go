package analysis

import "carat/internal/ir"

// SCEV implements a restricted scalar-evolution analysis: it recognizes
// affine induction variables (iv = {start, +, step} over a loop) and linear
// expressions over them, which is what Optimization 2 (guard range merging)
// needs to compute the byte range a loop's accesses cover (§4.1.1).
type SCEV struct {
	Loop *Loop
	Inv  *Invariance
	cfg  *CFG
}

// NewSCEV prepares scalar-evolution queries for l.
func NewSCEV(c *CFG, l *Loop, inv *Invariance) *SCEV {
	return &SCEV{Loop: l, Inv: inv, cfg: c}
}

// IndVar describes a recognized affine induction variable:
// on iteration k the phi holds Start + k*Step.
type IndVar struct {
	Phi   *ir.Instr
	Start ir.Value // loop-invariant initial value
	Step  int64    // constant per-iteration increment (may be negative)
}

// IndVarOf recognizes phi as an affine induction variable of the loop:
// a header phi whose in-loop incoming value is phi+const and whose
// out-of-loop incoming value is loop-invariant.
func (s *SCEV) IndVarOf(phi *ir.Instr) (*IndVar, bool) {
	if phi.Op != ir.OpPhi || phi.Block != s.Loop.Header || !phi.Typ.IsInt() {
		return nil, false
	}
	var start ir.Value
	var step int64
	haveStep := false
	for i, incoming := range phi.Args {
		fromLoop := s.Loop.Contains(phi.Preds[i])
		if !fromLoop {
			if start != nil || !s.Inv.Invariant(incoming) {
				return nil, false
			}
			start = incoming
			continue
		}
		in, ok := incoming.(*ir.Instr)
		if !ok || (in.Op != ir.OpAdd && in.Op != ir.OpSub) {
			return nil, false
		}
		c, okC := in.Args[1].(*ir.Const)
		if !okC || in.Args[0] != ir.Value(phi) {
			return nil, false
		}
		st := c.Int
		if in.Op == ir.OpSub {
			st = -st
		}
		if haveStep && st != step {
			return nil, false
		}
		step, haveStep = st, true
	}
	if start == nil || !haveStep {
		return nil, false
	}
	return &IndVar{Phi: phi, Start: start, Step: step}, true
}

// Linear is a linear function K*iv + C of an induction variable.
type Linear struct {
	IV *IndVar
	K  int64
	C  int64
}

// LinearOf expresses v as K*iv + C over a recognized induction variable of
// the loop, when possible. Loop-invariant values are not Linear (they are
// handled separately by callers).
func (s *SCEV) LinearOf(v ir.Value) (*Linear, bool) {
	switch x := v.(type) {
	case *ir.Instr:
		if x.Op == ir.OpPhi {
			if iv, ok := s.IndVarOf(x); ok {
				return &Linear{IV: iv, K: 1, C: 0}, true
			}
			return nil, false
		}
		if !s.Loop.ContainsInstr(x) {
			return nil, false
		}
		switch x.Op {
		case ir.OpAdd, ir.OpSub:
			l, okL := s.LinearOf(x.Args[0])
			c, okC := x.Args[1].(*ir.Const)
			if okL && okC {
				if x.Op == ir.OpAdd {
					return &Linear{IV: l.IV, K: l.K, C: l.C + c.Int}, true
				}
				return &Linear{IV: l.IV, K: l.K, C: l.C - c.Int}, true
			}
			if x.Op == ir.OpAdd {
				// const + linear
				if c2, ok := x.Args[0].(*ir.Const); ok {
					if l2, ok2 := s.LinearOf(x.Args[1]); ok2 {
						return &Linear{IV: l2.IV, K: l2.K, C: l2.C + c2.Int}, true
					}
				}
			}
			return nil, false
		case ir.OpMul:
			if l, ok := s.LinearOf(x.Args[0]); ok {
				if c, okC := x.Args[1].(*ir.Const); okC {
					return &Linear{IV: l.IV, K: l.K * c.Int, C: l.C * c.Int}, true
				}
			}
			if c, okC := x.Args[0].(*ir.Const); okC {
				if l, ok := s.LinearOf(x.Args[1]); ok {
					return &Linear{IV: l.IV, K: l.K * c.Int, C: l.C * c.Int}, true
				}
			}
			return nil, false
		case ir.OpShl:
			if l, ok := s.LinearOf(x.Args[0]); ok {
				if c, okC := x.Args[1].(*ir.Const); okC && c.Int >= 0 && c.Int < 63 {
					m := int64(1) << uint(c.Int)
					return &Linear{IV: l.IV, K: l.K * m, C: l.C * m}, true
				}
			}
			return nil, false
		case ir.OpZExt, ir.OpSExt:
			return s.LinearOf(x.Args[0])
		}
	}
	return nil, false
}

// TripBound describes the loop's controlling bound: the test compared
// iv+CmpOff against Bound, continuing while < (or <= when Inclusive).
// Combined with whether a guarded block runs before or after this test in
// the iteration, callers derive the maximum induction value a guarded
// access can see (see LastIVAdjust).
type TripBound struct {
	IV        *IndVar
	Bound     ir.Value // loop-invariant
	CmpOff    int64    // the compared value is iv + CmpOff
	Inclusive bool
}

// TripBoundOf recognizes the loop exit test in the header: condbr
// (icmp slt/sle X, bound), inLoop, exit — where X is the induction
// variable or iv+const (the rotated/do-while form that compares the
// incremented value), and bound is loop-invariant with a positive step.
func (s *SCEV) TripBoundOf() (*TripBound, bool) {
	term := s.Loop.Header.Term()
	if term == nil || term.Op != ir.OpCondBr {
		return nil, false
	}
	if !s.Loop.Contains(term.Succs[0]) || s.Loop.Contains(term.Succs[1]) {
		return nil, false // need taken=stay, not-taken=exit
	}
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp {
		return nil, false
	}
	if cmp.Pred != ir.PredLT && cmp.Pred != ir.PredLE &&
		cmp.Pred != ir.PredULT && cmp.Pred != ir.PredULE {
		return nil, false
	}
	var iv *IndVar
	var cmpOff int64
	if phi, isInstr := cmp.Args[0].(*ir.Instr); isInstr && phi.Op == ir.OpPhi {
		v, ok := s.IndVarOf(phi)
		if !ok {
			return nil, false
		}
		iv = v
	} else if lin, ok := s.LinearOf(cmp.Args[0]); ok && lin.K == 1 {
		iv, cmpOff = lin.IV, lin.C
	} else {
		return nil, false
	}
	if iv.Step <= 0 {
		return nil, false
	}
	if !s.Inv.Invariant(cmp.Args[1]) {
		return nil, false
	}
	incl := cmp.Pred == ir.PredLE || cmp.Pred == ir.PredULE
	return &TripBound{IV: iv, Bound: cmp.Args[1], CmpOff: cmpOff, Inclusive: incl}, true
}

// LastIVAdjust returns A such that the maximum induction value observed by
// an access in guardBlock is Bound + A. Derivation: entering the iteration
// with value iv requires the previous test (on iv-step+CmpOff) to have
// passed; the access additionally requires the current test to have passed
// when the test block (the header) executes before guardBlock within the
// iteration — which is every case except guardBlock being the header
// itself, where the access precedes the block-ending test.
func (tb *TripBound) LastIVAdjust(l *Loop, guardBlock *ir.Block) int64 {
	a := -tb.CmpOff - 1
	if tb.Inclusive {
		a++
	}
	if guardBlock == l.Header {
		a += tb.IV.Step // test for this iv has not run yet
	}
	return a
}

// AffineAccess describes a memory access whose address is an affine
// function of the loop's bounded induction variable:
//
//	addr(k) = Base + StartOff + k*StepBytes, for k in [0, trips)
//
// where Base is loop-invariant. This is the unit Optimization 2 merges.
type AffineAccess struct {
	Base      ir.Value // loop-invariant pointer
	Lin       *Linear  // byte offset as linear function of the IV
	StepBytes int64    // bytes advanced per IV increment (Lin.K * elem; >0)
	Bound     *TripBound
}

// AffineAccessOf recognizes ptr (the address operand of a load/store in the
// loop) as an affine access tied to the loop's trip bound. The element size
// of the GEP scales the linear function.
func (s *SCEV) AffineAccessOf(ptr ir.Value) (*AffineAccess, bool) {
	gep, ok := ptr.(*ir.Instr)
	if !ok || gep.Op != ir.OpGEP || len(gep.Args) != 2 {
		return nil, false
	}
	if !s.Inv.Invariant(gep.Args[0]) {
		return nil, false
	}
	lin, ok := s.LinearOf(gep.Args[1])
	if !ok {
		return nil, false
	}
	bound, ok := s.TripBoundOf()
	if !ok || bound.IV.Phi != lin.IV.Phi {
		return nil, false
	}
	elem := gep.Elem.Size()
	stepBytes := lin.K * lin.IV.Step * elem
	if stepBytes <= 0 {
		return nil, false
	}
	return &AffineAccess{
		Base:      gep.Args[0],
		Lin:       &Linear{IV: lin.IV, K: lin.K * elem, C: lin.C * elem},
		StepBytes: stepBytes,
		Bound:     bound,
	}, true
}
