package analysis

import "carat/internal/ir"

// AliasResult is the verdict of an alias query.
type AliasResult int

// Alias verdicts.
const (
	MayAlias AliasResult = iota
	NoAlias
	MustAlias
)

// String returns a readable verdict name.
func (r AliasResult) String() string {
	switch r {
	case NoAlias:
		return "no"
	case MustAlias:
		return "must"
	}
	return "may"
}

// AliasAnalysis answers whether two (pointer, size) accesses may overlap.
// Implementations must be conservative: MayAlias is always a safe answer.
type AliasAnalysis interface {
	// Name identifies the analysis in statistics output.
	Name() string
	// Alias reports the relation between the byte ranges [a, a+asz) and
	// [b, b+bsz).
	Alias(a ir.Value, asz int64, b ir.Value, bsz int64) AliasResult
}

// Chain combines several alias analyses with LLVM's "alias chaining"
// best-of-N discipline (paper §4.1.1): the first definitive answer
// (NoAlias or MustAlias) wins; otherwise MayAlias.
type Chain struct {
	AAs []AliasAnalysis
}

// NewChain returns the default chained stack used by the CARAT passes for
// function f.
func NewChain(f *ir.Func) *Chain {
	return &Chain{AAs: []AliasAnalysis{
		&BaseObjectAA{},
		NewPointsToAA(f),
	}}
}

// Name implements AliasAnalysis.
func (c *Chain) Name() string { return "chain" }

// Alias implements AliasAnalysis by querying each member in order.
func (c *Chain) Alias(a ir.Value, asz int64, b ir.Value, bsz int64) AliasResult {
	for _, aa := range c.AAs {
		if r := aa.Alias(a, asz, b, bsz); r != MayAlias {
			return r
		}
	}
	return MayAlias
}

// DecomposePtr strips a chain of GEPs off v, returning the underlying base
// pointer, the accumulated byte offset, and whether the offset is exact
// (false when any GEP index is non-constant).
func DecomposePtr(v ir.Value) (base ir.Value, offset int64, exact bool) {
	offset, exact = 0, true
	for {
		in, ok := v.(*ir.Instr)
		if !ok || in.Op != ir.OpGEP {
			return v, offset, exact
		}
		// First index scales by the element size; subsequent indices step
		// into aggregates.
		t := in.Elem
		for i, idx := range in.Args[1:] {
			c, isConst := idx.(*ir.Const)
			var scale int64
			if i == 0 {
				scale = t.Size()
			} else {
				switch t.Kind {
				case ir.ArrayKind:
					t = t.Elem
					scale = t.Size()
				case ir.StructKind:
					if !isConst {
						return in.Args[0], 0, false
					}
					offset += t.FieldOffset(int(c.Int))
					t = t.Fields[c.Int]
					continue
				default:
					scale = t.Size()
				}
			}
			if !isConst {
				exact = false
				continue
			}
			offset += c.Int * scale
		}
		v = in.Args[0]
	}
}

// UnderlyingObject returns the allocation site a pointer is derived from:
// a *ir.Global, an alloca *ir.Instr, a malloc/calloc call *ir.Instr, or
// nil when the object cannot be identified (params, loads, phis, casts).
func UnderlyingObject(v ir.Value) ir.Value {
	base, _, _ := DecomposePtr(v)
	switch x := base.(type) {
	case *ir.Global:
		return x
	case *ir.Instr:
		if x.Op == ir.OpAlloca {
			return x
		}
		if x.Op == ir.OpCall && x.Callee != nil && ir.IsAllocFn(x.Callee.Name) {
			return x
		}
	}
	return nil
}

// ObjectSize returns the size in bytes of an identified object, or -1 when
// unknown (e.g. malloc with a non-constant size).
func ObjectSize(obj ir.Value) int64 {
	switch x := obj.(type) {
	case *ir.Global:
		return x.Size()
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			if c, ok := x.Args[0].(*ir.Const); ok {
				return c.Int * x.Elem.Size()
			}
		case ir.OpCall:
			if x.Callee.Name == ir.FnMalloc {
				if c, ok := x.Args[0].(*ir.Const); ok {
					return c.Int
				}
			}
			if x.Callee.Name == ir.FnCalloc && len(x.Args) == 2 {
				n, ok1 := x.Args[0].(*ir.Const)
				s, ok2 := x.Args[1].(*ir.Const)
				if ok1 && ok2 {
					return n.Int * s.Int
				}
			}
		}
	}
	return -1
}

// BaseObjectAA disambiguates accesses by identifying the allocation each
// pointer is derived from: distinct identified objects never alias, and
// same-object accesses with exact offsets alias iff their ranges overlap.
type BaseObjectAA struct{}

// Name implements AliasAnalysis.
func (*BaseObjectAA) Name() string { return "base-object" }

// Alias implements AliasAnalysis.
func (*BaseObjectAA) Alias(a ir.Value, asz int64, b ir.Value, bsz int64) AliasResult {
	baseA, offA, exactA := DecomposePtr(a)
	baseB, offB, exactB := DecomposePtr(b)
	objA, objB := UnderlyingObject(a), UnderlyingObject(b)
	if objA != nil && objB != nil && objA != objB {
		return NoAlias
	}
	if baseA == baseB {
		if exactA && exactB {
			if offA == offB && asz == bsz {
				return MustAlias
			}
			if offA+asz <= offB || offB+bsz <= offA {
				return NoAlias
			}
			return MayAlias
		}
		return MayAlias
	}
	return MayAlias
}

// PointsToAA is a flow-insensitive, function-local inclusion-based
// points-to analysis in the style of Steensgaard/Andersen. Each pointer
// SSA value gets a set of abstract objects (allocas, globals, allocation
// calls); values whose provenance cannot be tracked (parameters, loads,
// external calls, inttoptr) point to a distinguished unknown object.
type PointsToAA struct {
	sets map[ir.Value]map[ir.Value]bool // nil set means "unknown"
}

var unknownObj = &ir.Global{Name: "<unknown>"}

// NewPointsToAA computes points-to sets for every pointer value in f.
func NewPointsToAA(f *ir.Func) *PointsToAA {
	pt := &PointsToAA{sets: make(map[ir.Value]map[ir.Value]bool)}
	if f == nil || f.IsDecl() {
		return pt
	}
	// Iterate to a fixed point; the lattice is small (sets only grow).
	for changed := true; changed; {
		changed = false
		f.ForEachInstr(func(in *ir.Instr) {
			if !in.Typ.IsPtr() {
				return
			}
			var add []ir.Value
			switch in.Op {
			case ir.OpAlloca:
				add = []ir.Value{in}
			case ir.OpCall:
				if in.Callee != nil && ir.IsAllocFn(in.Callee.Name) {
					add = []ir.Value{in}
				} else {
					add = []ir.Value{unknownObj}
				}
			case ir.OpGEP:
				add = pt.objectsOf(in.Args[0])
			case ir.OpPhi, ir.OpSelect:
				args := in.Args
				if in.Op == ir.OpSelect {
					args = in.Args[1:]
				}
				for _, a := range args {
					add = append(add, pt.objectsOf(a)...)
				}
			case ir.OpLoad, ir.OpIntToPtr:
				add = []ir.Value{unknownObj}
			default:
				add = []ir.Value{unknownObj}
			}
			s := pt.sets[in]
			if s == nil {
				s = make(map[ir.Value]bool)
				pt.sets[in] = s
			}
			for _, o := range add {
				if !s[o] {
					s[o] = true
					changed = true
				}
			}
		})
	}
	return pt
}

// objectsOf returns the abstract objects v may point to.
func (pt *PointsToAA) objectsOf(v ir.Value) []ir.Value {
	switch x := v.(type) {
	case *ir.Global:
		return []ir.Value{x}
	case *ir.Const:
		return nil // null points to nothing
	case *ir.Param:
		return []ir.Value{unknownObj}
	case *ir.Instr:
		s := pt.sets[x]
		if s == nil {
			return []ir.Value{unknownObj}
		}
		out := make([]ir.Value, 0, len(s))
		for o := range s {
			out = append(out, o)
		}
		return out
	}
	return []ir.Value{unknownObj}
}

// Name implements AliasAnalysis.
func (pt *PointsToAA) Name() string { return "points-to" }

// Alias implements AliasAnalysis: disjoint known points-to sets (neither
// containing the unknown object) cannot alias.
func (pt *PointsToAA) Alias(a ir.Value, asz int64, b ir.Value, bsz int64) AliasResult {
	sa := pt.objectsOf(a)
	sb := pt.objectsOf(b)
	if len(sa) == 0 || len(sb) == 0 {
		return NoAlias // null-derived pointer
	}
	inA := make(map[ir.Value]bool, len(sa))
	for _, o := range sa {
		if o == unknownObj {
			return MayAlias
		}
		inA[o] = true
	}
	for _, o := range sb {
		if o == unknownObj {
			return MayAlias
		}
		if inA[o] {
			return MayAlias
		}
	}
	return NoAlias
}
