package analysis

import "carat/internal/ir"

// DomTree is a dominator tree computed with the Cooper-Harvey-Kennedy
// iterative algorithm.
type DomTree struct {
	cfg  *CFG
	idom map[*ir.Block]*ir.Block
}

// NewDomTree computes the dominator tree of f's CFG.
func NewDomTree(c *CFG) *DomTree {
	d := &DomTree{cfg: c, idom: make(map[*ir.Block]*ir.Block)}
	if len(c.RPO) == 0 {
		return d
	}
	entry := c.RPO[0]
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO[1:] {
			var newIdom *ir.Block
			for _, p := range c.Preds[b] {
				if d.idom[p] == nil {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.cfg.RPONum[a] > d.cfg.RPONum[b] {
			a = d.idom[a]
		}
		for d.cfg.RPONum[b] > d.cfg.RPONum[a] {
			b = d.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (nil for the entry block and
// unreachable blocks).
func (d *DomTree) IDom(b *ir.Block) *ir.Block {
	id := d.idom[b]
	if id == b {
		return nil
	}
	return id
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	if !d.cfg.Reachable(a) || !d.cfg.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// InstrDominates reports whether instruction a dominates instruction b:
// a and b in the same block with a earlier, or a's block dominating b's.
func (d *DomTree) InstrDominates(a, b *ir.Instr) bool {
	if a.Block == b.Block {
		for _, in := range a.Block.Instrs {
			if in == a {
				return true
			}
			if in == b {
				return false
			}
		}
		return false
	}
	return d.Dominates(a.Block, b.Block)
}
