package analysis

import (
	"sync/atomic"

	"carat/internal/ir"
)

// Analysis manager: typed keys, a per-function result cache, and explicit
// invalidation. Passes look analyses up through FuncAnalyses instead of
// constructing them; results are cached until a transformation declares
// (via its preserved set) that they may be stale. The design mirrors
// LLVM's new pass manager: an analysis survives a pass only if the pass
// preserves it AND everything it was derived from.

// ID enumerates the cacheable analyses.
type ID int

// Analysis identifiers, ordered so that every analysis appears after its
// dependencies (Invalidate relies on this when computing the kept set).
const (
	IDCFG ID = iota
	IDDom
	IDLoops
	IDAlias
	IDRanges
	IDInvariance
	IDSCEV
	numIDs
)

// String names the analysis for logs and test failures.
func (id ID) String() string {
	switch id {
	case IDCFG:
		return "cfg"
	case IDDom:
		return "domtree"
	case IDLoops:
		return "loops"
	case IDAlias:
		return "alias"
	case IDRanges:
		return "ranges"
	case IDInvariance:
		return "invariance"
	case IDSCEV:
		return "scev"
	}
	return "unknown"
}

// Preserved is a set of analysis IDs a pass promises to keep valid.
type Preserved uint16

// PreserveNone is the empty set: every cached analysis is dropped.
const PreserveNone Preserved = 0

// PreserveAll keeps every cached analysis (an analysis-only pass).
const PreserveAll Preserved = 1<<numIDs - 1

// Preserve builds a preserved set from the given IDs.
func Preserve(ids ...ID) Preserved {
	var p Preserved
	for _, id := range ids {
		p |= 1 << id
	}
	return p
}

// Has reports whether id is in the set.
func (p Preserved) Has(id ID) bool { return p&(1<<id) != 0 }

// deps records what each analysis is derived from. An analysis is only
// valid while all of its dependencies are; Invalidate closes over this
// table so a pass cannot accidentally keep a dominator tree alive atop a
// discarded CFG.
var deps = [numIDs]Preserved{
	IDDom:        Preserve(IDCFG),
	IDLoops:      Preserve(IDCFG, IDDom),
	IDInvariance: Preserve(IDCFG, IDDom, IDLoops, IDAlias),
	IDSCEV:       Preserve(IDCFG, IDDom, IDLoops, IDAlias, IDInvariance),
}

// closure restricts p to the analyses whose full dependency chain is also
// preserved. IDs are ordered dependencies-first, so one forward sweep
// suffices.
func (p Preserved) closure() Preserved {
	var kept Preserved
	for id := ID(0); id < numIDs; id++ {
		if p.Has(id) && kept&deps[id] == deps[id] {
			kept |= 1 << id
		}
	}
	return kept
}

// CacheStats counts analysis-cache traffic. The counters are atomic so one
// CacheStats can be shared by every function of a parallel compilation.
type CacheStats struct {
	Hits          atomic.Uint64
	Misses        atomic.Uint64 // first-ever computation of an analysis
	Invalidations atomic.Uint64 // cached results dropped by Invalidate
	Recomputes    atomic.Uint64 // computations after an invalidation
}

// CacheSnapshot is a plain-value copy of CacheStats.
type CacheSnapshot struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Recomputes    uint64 `json:"recomputes"`
}

// Snapshot returns the current counter values.
func (s *CacheStats) Snapshot() CacheSnapshot {
	return CacheSnapshot{
		Hits:          s.Hits.Load(),
		Misses:        s.Misses.Load(),
		Invalidations: s.Invalidations.Load(),
		Recomputes:    s.Recomputes.Load(),
	}
}

// Key is a typed handle to a whole-function analysis: an identity plus the
// recipe for computing it. The compute function receives the FuncAnalyses
// so derived analyses (domtree, loops) fetch their inputs through the
// cache, which is what makes cross-pass sharing observable as hits.
type Key[T any] struct {
	id      ID
	compute func(*FuncAnalyses) T
}

// ID returns the key's analysis identifier.
func (k Key[T]) ID() ID { return k.id }

// LoopKey is a typed handle to a per-loop analysis; results are cached by
// loop identity under the key's ID.
type LoopKey[T any] struct {
	id      ID
	compute func(*FuncAnalyses, *Loop) T
}

// ID returns the key's analysis identifier.
func (k LoopKey[T]) ID() ID { return k.id }

// The registered analyses. Every pass in internal/passes goes through
// these keys; adding an analysis means adding an ID, a deps entry, and a
// key here.
var (
	// CFGKey caches block structure: RPO order, reachability, edges.
	CFGKey = Key[*CFG]{IDCFG, func(fa *FuncAnalyses) *CFG { return NewCFG(fa.F) }}
	// DomKey caches the dominator tree (derived from the CFG).
	DomKey = Key[*DomTree]{IDDom, func(fa *FuncAnalyses) *DomTree { return NewDomTree(Get(fa, CFGKey)) }}
	// LoopsKey caches the natural-loop forest.
	LoopsKey = Key[*LoopForest]{IDLoops, func(fa *FuncAnalyses) *LoopForest {
		return FindLoops(Get(fa, CFGKey), Get(fa, DomKey))
	}}
	// AliasKey caches the chain alias analysis (base-object + points-to).
	AliasKey = Key[AliasAnalysis]{IDAlias, func(fa *FuncAnalyses) AliasAnalysis { return NewChain(fa.F) }}
	// RangesKey caches the value-range memo table.
	RangesKey = Key[*Ranges]{IDRanges, func(fa *FuncAnalyses) *Ranges { return NewRanges() }}
	// InvarianceKey caches per-loop invariance facts.
	InvarianceKey = LoopKey[*Invariance]{IDInvariance, func(fa *FuncAnalyses, l *Loop) *Invariance {
		return NewInvariance(l, Get(fa, AliasKey))
	}}
	// SCEVKey caches per-loop scalar-evolution results.
	SCEVKey = LoopKey[*SCEV]{IDSCEV, func(fa *FuncAnalyses, l *Loop) *SCEV {
		return NewSCEV(Get(fa, CFGKey), l, GetLoop(fa, InvarianceKey, l))
	}}
)

// FuncAnalyses is the per-function analysis cache a pass manager threads
// through its passes. It is not safe for concurrent use; the parallel pass
// manager gives each function its own instance (sharing only the atomic
// CacheStats).
type FuncAnalyses struct {
	F     *ir.Func
	stats *CacheStats

	slots     [numIDs]any
	loopSlots [numIDs]map[*Loop]any
	// ever marks analyses computed at least once, distinguishing a first
	// miss from a recompute after invalidation.
	ever [numIDs]bool
}

// NewFuncAnalyses returns an empty cache for f. stats may be nil, in which
// case a private CacheStats is allocated.
func NewFuncAnalyses(f *ir.Func, stats *CacheStats) *FuncAnalyses {
	if stats == nil {
		stats = &CacheStats{}
	}
	return &FuncAnalyses{F: f, stats: stats}
}

// Get returns the cached result for k, computing and caching it on a miss.
func Get[T any](fa *FuncAnalyses, k Key[T]) T {
	if v := fa.slots[k.id]; v != nil {
		fa.stats.Hits.Add(1)
		return v.(T)
	}
	fa.countCompute(k.id)
	v := k.compute(fa)
	fa.slots[k.id] = v
	fa.ever[k.id] = true
	return v
}

// GetLoop returns the cached per-loop result for k, computing it on a miss.
func GetLoop[T any](fa *FuncAnalyses, k LoopKey[T], l *Loop) T {
	if m := fa.loopSlots[k.id]; m != nil {
		if v, ok := m[l]; ok {
			fa.stats.Hits.Add(1)
			return v.(T)
		}
	}
	fa.countCompute(k.id)
	v := k.compute(fa, l)
	if fa.loopSlots[k.id] == nil {
		fa.loopSlots[k.id] = make(map[*Loop]any)
	}
	fa.loopSlots[k.id][l] = v
	fa.ever[k.id] = true
	return v
}

func (fa *FuncAnalyses) countCompute(id ID) {
	if fa.ever[id] {
		fa.stats.Recomputes.Add(1)
	} else {
		fa.stats.Misses.Add(1)
	}
}

// Typed convenience accessors for the registered analyses.

// CFG returns the function's control-flow graph.
func (fa *FuncAnalyses) CFG() *CFG { return Get(fa, CFGKey) }

// Dom returns the dominator tree.
func (fa *FuncAnalyses) Dom() *DomTree { return Get(fa, DomKey) }

// Loops returns the natural-loop forest.
func (fa *FuncAnalyses) Loops() *LoopForest { return Get(fa, LoopsKey) }

// Alias returns the chain alias analysis.
func (fa *FuncAnalyses) Alias() AliasAnalysis { return Get(fa, AliasKey) }

// Ranges returns the value-range memo table.
func (fa *FuncAnalyses) Ranges() *Ranges { return Get(fa, RangesKey) }

// Invariance returns loop l's invariance facts.
func (fa *FuncAnalyses) Invariance(l *Loop) *Invariance { return GetLoop(fa, InvarianceKey, l) }

// SCEV returns loop l's scalar-evolution analysis.
func (fa *FuncAnalyses) SCEV(l *Loop) *SCEV { return GetLoop(fa, SCEVKey, l) }

// Invalidate drops every cached analysis not covered by preserved. The
// preserved set is closed over dependencies first: keeping the loop forest
// without also keeping the CFG and dominator tree it was built from keeps
// nothing.
func (fa *FuncAnalyses) Invalidate(preserved Preserved) {
	kept := preserved.closure()
	for id := ID(0); id < numIDs; id++ {
		if kept.Has(id) {
			continue
		}
		if fa.slots[id] != nil {
			fa.slots[id] = nil
			fa.stats.Invalidations.Add(1)
		}
		if m := fa.loopSlots[id]; len(m) > 0 {
			fa.loopSlots[id] = nil
			fa.stats.Invalidations.Add(uint64(len(m)))
		}
	}
}

// InvalidateAll drops every cached analysis.
func (fa *FuncAnalyses) InvalidateAll() { fa.Invalidate(PreserveNone) }
