package analysis

import "carat/internal/ir"

// Loop is a natural loop: a header plus the set of blocks that can reach a
// back edge to the header without leaving the loop.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	// Ordered lists the loop's blocks in CFG reverse postorder. Passes and
	// analyses iterate this instead of ranging over the Blocks set, so
	// synthesized code lands in the same order on every compile (Go map
	// iteration order is random).
	Ordered []*ir.Block
	Parent  *Loop   // enclosing loop, or nil for top-level loops
	Subs    []*Loop // directly nested loops
	Depth   int     // nesting depth, 1 for top-level
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// ContainsInstr reports whether in belongs to the loop.
func (l *Loop) ContainsInstr(in *ir.Instr) bool { return l.Blocks[in.Block] }

// Preheader returns the unique out-of-loop predecessor of the header, or
// nil when the header has multiple out-of-loop predecessors. The CARAT
// guard-hoisting pass creates one when needed.
func (l *Loop) Preheader(c *CFG) *ir.Block {
	var ph *ir.Block
	for _, p := range c.Preds[l.Header] {
		if l.Contains(p) {
			continue
		}
		if ph != nil {
			return nil
		}
		ph = p
	}
	// A preheader must branch only to the header.
	if ph != nil && len(ph.Succs()) != 1 {
		return nil
	}
	return ph
}

// Latches returns the in-loop predecessors of the header (back-edge sources).
func (l *Loop) Latches(c *CFG) []*ir.Block {
	var ls []*ir.Block
	for _, p := range c.Preds[l.Header] {
		if l.Contains(p) {
			ls = append(ls, p)
		}
	}
	return ls
}

// Exits returns the blocks outside the loop that are branched to from
// inside the loop.
func (l *Loop) Exits() []*ir.Block {
	seen := make(map[*ir.Block]bool)
	var out []*ir.Block
	for _, b := range l.Ordered {
		for _, s := range b.Succs() {
			if !l.Contains(s) && !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// LoopForest is the set of natural loops of a function, nested.
type LoopForest struct {
	// Top holds the outermost loops in header RPO order.
	Top []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop
	// Innermost maps each block to the innermost loop containing it.
	Innermost map[*ir.Block]*Loop
}

// FindLoops discovers the natural loops of f using dominance: an edge
// t→h is a back edge iff h dominates t; the loop body is found by a
// reverse flood from t stopping at h.
func FindLoops(c *CFG, dom *DomTree) *LoopForest {
	lf := &LoopForest{
		ByHeader:  make(map[*ir.Block]*Loop),
		Innermost: make(map[*ir.Block]*Loop),
	}
	// Collect loops in RPO so outer loops come before inner ones.
	for _, b := range c.RPO {
		for _, s := range b.Succs() {
			if dom.Dominates(s, b) { // back edge b→s
				l := lf.ByHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
					lf.ByHeader[s] = l
				}
				// Reverse flood from the latch.
				var stack []*ir.Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range c.Preds[x] {
						if !l.Blocks[p] && c.Reachable(p) {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Nest loops: loop A is inside loop B if B contains A's header and A≠B.
	var all []*Loop
	for _, b := range c.RPO {
		if l, ok := lf.ByHeader[b]; ok {
			all = append(all, l)
		}
	}
	for _, l := range all {
		for _, b := range c.RPO {
			if l.Blocks[b] {
				l.Ordered = append(l.Ordered, b)
			}
		}
	}
	for _, inner := range all {
		var best *Loop
		for _, outer := range all {
			if outer == inner || !outer.Contains(inner.Header) {
				continue
			}
			if best == nil || best.Contains(outer.Header) {
				best = outer
			}
		}
		inner.Parent = best
		if best != nil {
			best.Subs = append(best.Subs, inner)
		} else {
			lf.Top = append(lf.Top, inner)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, s := range l.Subs {
			setDepth(s, d+1)
		}
	}
	for _, l := range lf.Top {
		setDepth(l, 1)
	}
	// Innermost map: deeper loops overwrite shallower ones.
	var walk func(l *Loop)
	walk = func(l *Loop) {
		for b := range l.Blocks {
			if cur := lf.Innermost[b]; cur == nil || cur.Depth < l.Depth {
				lf.Innermost[b] = l
			}
		}
		for _, s := range l.Subs {
			walk(s)
		}
	}
	for _, l := range lf.Top {
		walk(l)
	}
	return lf
}

// All returns every loop in the forest, outermost first.
func (lf *LoopForest) All() []*Loop {
	var out []*Loop
	var walk func(*Loop)
	walk = func(l *Loop) {
		out = append(out, l)
		for _, s := range l.Subs {
			walk(s)
		}
	}
	for _, l := range lf.Top {
		walk(l)
	}
	return out
}
