package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSamplerDefaultInterval(t *testing.T) {
	if s := NewSampler(0); s.Interval != DefaultSampleInterval {
		t.Errorf("NewSampler(0).Interval = %d, want %d", s.Interval, DefaultSampleInterval)
	}
	if s := NewSampler(128); s.Interval != 128 {
		t.Errorf("NewSampler(128).Interval = %d", s.Interval)
	}
}

func TestTrackSampleCatchUp(t *testing.T) {
	s := NewSampler(100)
	tr := s.NewTrack()
	stack := func() string { return "main;hot" }

	if tr.Due(99) {
		t.Error("Due(99) before first interval")
	}
	tr.Sample(99, stack) // no-op below the first interval
	tr.Sample(250, stack)
	// 250 cycles at interval 100 = 2 whole intervals; remainder 50 carries.
	tr.Sample(299, stack) // still within the carried remainder: no-op
	tr.Sample(300, stack) // 1 more
	tr.Sample(1000, stack)

	doc := s.Snapshot()
	if doc.TotalSamples != 10 {
		t.Fatalf("total samples = %d, want 10 (1000 cycles / 100)", doc.TotalSamples)
	}
	if len(doc.Stacks) != 1 || doc.Stacks[0].Stack != "main;hot" || doc.Stacks[0].Phase != "exec" {
		t.Fatalf("stacks = %+v, want one exec bucket for main;hot", doc.Stacks)
	}
	if doc.PhaseTotals["exec"] != 10 {
		t.Errorf("exec phase total = %d, want 10", doc.PhaseTotals["exec"])
	}
}

func TestFoldPhaseRemainder(t *testing.T) {
	s := NewSampler(100)
	tr := s.NewTrack()

	tr.FoldPhase("move", 250) // 2 samples, remainder 50
	tr.FoldPhase("move", 250) // no new cycles: no-op
	tr.FoldPhase("move", 499) // 2 more (499-200 elapsed = 2 intervals)
	tr.FoldPhase("move", 500) // 1 more
	tr.FoldPhase("swap", 99)  // below one interval: nothing yet

	ps := s.PhaseSamples()
	if ps["move"] != 5 {
		t.Errorf("move samples = %d, want 5", ps["move"])
	}
	if ps["swap"] != 0 {
		t.Errorf("swap samples = %d, want 0 (sub-interval remainder)", ps["swap"])
	}
	// Reconciliation bound: samples * interval within one interval of the
	// cycle counter.
	if diff := int64(500) - int64(ps["move"]*100); diff < 0 || diff >= 100 {
		t.Errorf("move reconciliation off by %d cycles, want [0,100)", diff)
	}
}

// TestSamplerReconciliation drives a track like a VM run does — periodic
// exec samples plus cumulative phase counters — and checks the documented
// invariant: per-phase sample totals * interval reconcile with the cycle
// counters to within one interval per track.
func TestSamplerReconciliation(t *testing.T) {
	const interval = 512
	s := NewSampler(interval)
	tr := s.NewTrack()

	var cycles, guardCycles, moveCycles uint64
	x := uint64(2463534242)
	for step := 0; step < 3000; step++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		cycles += x%900 + 1
		guardCycles += x % 40
		if step%100 == 99 {
			moveCycles += 5000 + x%3000
		}
		if tr.Due(cycles) {
			tr.Sample(cycles, func() string { return "main;work" })
			tr.FoldPhase("guard", guardCycles)
			tr.FoldPhase("move", moveCycles)
		}
	}
	// Final settle, as VM.Run does before publishing.
	tr.Sample(cycles, func() string { return "main" })
	tr.FoldPhase("guard", guardCycles)
	tr.FoldPhase("move", moveCycles)

	ps := s.PhaseSamples()
	checks := []struct {
		phase  string
		cycles uint64
	}{{"exec", cycles}, {"guard", guardCycles}, {"move", moveCycles}}
	for _, c := range checks {
		folded := ps[c.phase] * interval
		if folded > c.cycles || c.cycles-folded >= interval {
			t.Errorf("phase %s: %d samples * %d = %d cycles, counter %d: off by >= one interval",
				c.phase, ps[c.phase], interval, folded, c.cycles)
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	s := NewSampler(10)
	tr := s.NewTrack()
	tr.Sample(55, func() string { return "main;a" })
	tr.FoldPhase("move", 30)
	tr.FoldPhase("guard", 30) // same count as move: sort must break the tie

	d1, d2 := s.Snapshot(), s.Snapshot()
	if !reflect.DeepEqual(d1, d2) {
		t.Errorf("consecutive snapshots differ:\n%+v\n%+v", d1, d2)
	}
	if d1.Stacks[0].Samples < d1.Stacks[len(d1.Stacks)-1].Samples {
		t.Error("stacks not sorted by descending samples")
	}
	var b1, b2 bytes.Buffer
	if err := d1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("JSON encodings of identical snapshots differ")
	}
}

func TestProfileDocInternallyConsistent(t *testing.T) {
	s := NewSampler(64)
	t1, t2 := s.NewTrack(), s.NewTrack()
	t1.Sample(640, func() string { return "main;f" })
	t1.FoldPhase("move", 320)
	t2.Sample(1280, func() string { return "main;g" })
	t2.FoldPhase("swap", 128)

	doc := s.Snapshot()
	if doc.Schema != ProfileSchema || doc.Version != ProfileSchemaVersion {
		t.Errorf("schema header %s v%d", doc.Schema, doc.Version)
	}
	if doc.Tracks != 2 {
		t.Errorf("tracks = %d, want 2", doc.Tracks)
	}
	var stackSum, phaseSum uint64
	for _, fs := range doc.Stacks {
		stackSum += fs.Samples
	}
	for _, n := range doc.PhaseTotals {
		phaseSum += n
	}
	if stackSum != doc.TotalSamples || phaseSum != doc.TotalSamples {
		t.Errorf("stacks sum %d, phases sum %d, total %d: must all agree",
			stackSum, phaseSum, doc.TotalSamples)
	}
	// Round-trip through JSON keeps the totals.
	var buf bytes.Buffer
	if err := doc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ProfileDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalSamples != doc.TotalSamples || len(back.Stacks) != len(doc.Stacks) {
		t.Error("JSON round-trip lost samples")
	}
}

func TestWriteFolded(t *testing.T) {
	s := NewSampler(100)
	tr := s.NewTrack()
	tr.Sample(300, func() string { return "main;hot" })
	tr.FoldPhase("move", 200)

	var buf bytes.Buffer
	if err := s.Snapshot().WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded output = %q, want 2 lines", buf.String())
	}
	// Sorted by samples: exec (3) before move (2). The phase is the root
	// frame; exec lines carry the guest stack after it.
	if lines[0] != "exec;main;hot 3" {
		t.Errorf("line 0 = %q, want %q", lines[0], "exec;main;hot 3")
	}
	if lines[1] != "move 2" {
		t.Errorf("line 1 = %q, want %q", lines[1], "move 2")
	}
}
