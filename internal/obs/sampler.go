package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Cycle-sampling profiler: every Interval *model* cycles the VM takes one
// sample at a safepoint, attributing it to (folded guest stack, runtime
// phase). Because the sampling clock is the simulated cycle counter — not
// host time — profiles are deterministic: the same program yields the
// same samples on any machine at any host speed.
//
// Phases partition every modeled cycle the machine spends:
//
//	exec          the interpreter retiring guest instructions (includes
//	              the paging model's walk/fault cycles in traditional mode)
//	guard         CARAT guard evaluation (the compiler-injected checks)
//	escape-flush  runtime tracking callbacks and escape-batch drains
//	move          the Fig-8 move protocol (world stopped)
//	swap          swap-out/swap-in patch + copy work (world stopped)
//	policy        the mmpolicy daemon's own scans and dispatch
//
// exec samples are taken live at safepoints and carry the real guest call
// stack. The other phases run inside the runtime/kernel where no guest
// stack exists; their cycle counters are folded into samples at the same
// Interval granularity (one sample per Interval cycles, remainder carried
// forward), so per-phase sample totals reconcile with the underlying
// cycle-attribution counters to within one sampling interval per track.
//
// Concurrency: the hot path (Track.Sample with no sample due) is a single
// uint64 comparison on a track owned by one goroutine — no locks, no
// atomics. When a sample IS due, the owner increments an atomic counter
// looked up in a per-track map; map mutation (first sighting of a stack)
// and snapshotting take the track mutex. An HTTP scrape can therefore
// read a live profile mid-run without stopping or skewing the program.

// DefaultSampleInterval is the default sampling period in model cycles.
const DefaultSampleInterval = 4096

// Profile document schema identifiers (validated by scripts/validatejson).
const (
	ProfileSchema        = "carat.profile"
	ProfileSchemaVersion = 1
)

// sampleKey identifies one folded-stack bucket.
type sampleKey struct {
	stack string // "main;hot;inner" — root first, ';'-separated
	phase string
}

// Sampler aggregates cycle samples from any number of tracks (one per VM,
// plus pseudo-tracks for daemon-side phases).
type Sampler struct {
	// Interval is the sampling period in model cycles. Fixed at creation.
	Interval uint64

	mu     sync.Mutex
	tracks []*Track
}

// NewSampler returns a sampler with the given period (0 selects
// DefaultSampleInterval).
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{Interval: interval}
}

// Track is one sampled cycle stream — a VM's model clock, or a daemon's.
// All Sample/FoldPhase calls on a track must come from a single goroutine
// at a time (the VM's baton discipline guarantees this); snapshotting from
// other goroutines is safe at any moment.
type Track struct {
	s *Sampler

	// Owner-goroutine state, never touched by readers.
	next        uint64 // model cycle at which the next exec sample is due
	lastSampled uint64 // exec cycles already converted to samples
	phaseRem    map[string]uint64

	mu     sync.Mutex
	counts map[sampleKey]*atomic.Uint64
	total  atomic.Uint64
}

// NewTrack registers a new sampled cycle stream.
func (s *Sampler) NewTrack() *Track {
	t := &Track{
		s:        s,
		next:     s.Interval,
		counts:   make(map[sampleKey]*atomic.Uint64),
		phaseRem: make(map[string]uint64),
	}
	s.mu.Lock()
	s.tracks = append(s.tracks, t)
	s.mu.Unlock()
	return t
}

// Due reports whether an exec sample is due at model cycle now. This is
// the entire hot-path cost of an attached profiler: one comparison.
func (t *Track) Due(now uint64) bool { return now >= t.next }

// Sample records exec samples for every whole interval elapsed up to
// model cycle now, attributed to the stack that stackFn builds. stackFn
// runs only when at least one sample is due; call sites guard with Due so
// stack construction stays off the hot path.
func (t *Track) Sample(now uint64, stackFn func() string) {
	if now < t.next {
		return
	}
	n := (now - t.lastSampled) / t.s.Interval
	t.lastSampled += n * t.s.Interval
	t.next = t.lastSampled + t.s.Interval
	t.add(sampleKey{stack: stackFn(), phase: "exec"}, n)
}

// FoldPhase converts a phase's cumulative cycle counter into samples:
// totalCycles is the phase's all-time total, and the track remembers how
// much it has already folded, carrying the sub-interval remainder forward.
// After the final fold, phase samples * Interval differs from the phase's
// cycle counter by less than one Interval.
func (t *Track) FoldPhase(phase string, totalCycles uint64) {
	folded := t.phaseRem[phase] // cycles already turned into samples
	if totalCycles <= folded {
		return
	}
	n := (totalCycles - folded) / t.s.Interval
	if n == 0 {
		return
	}
	t.phaseRem[phase] = folded + n*t.s.Interval
	t.add(sampleKey{stack: phase, phase: phase}, n)
}

// add increments a bucket by n samples. Existing buckets cost one map read
// plus an atomic add; new buckets take the track mutex once.
func (t *Track) add(k sampleKey, n uint64) {
	if n == 0 {
		return
	}
	t.mu.Lock()
	c, ok := t.counts[k]
	if !ok {
		c = &atomic.Uint64{}
		t.counts[k] = c
	}
	t.mu.Unlock()
	c.Add(n)
	t.total.Add(n)
}

// FoldedStack is one aggregated profile bucket.
type FoldedStack struct {
	// Stack is the folded call stack, root first, ';'-separated. For
	// non-exec phases it is the phase name itself.
	Stack string `json:"stack"`
	// Phase is the runtime phase the samples belong to.
	Phase string `json:"phase"`
	// Samples is the number of sampling intervals attributed to the stack.
	Samples uint64 `json:"samples"`
}

// ProfileDoc is the versioned machine-readable profile (carat.profile v1):
// folded stacks plus the sample metadata needed to reconstruct cycles
// (cycles ≈ samples * interval_cycles).
type ProfileDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// IntervalCycles is the sampling period in model cycles.
	IntervalCycles uint64 `json:"interval_cycles"`
	// Tracks is the number of sampled cycle streams that contributed.
	Tracks       int           `json:"tracks"`
	TotalSamples uint64        `json:"total_samples"`
	Stacks       []FoldedStack `json:"stacks"`
	// PhaseTotals sums samples per runtime phase.
	PhaseTotals map[string]uint64 `json:"phase_totals"`
}

// Snapshot aggregates every track into one profile document. Stacks merge
// across tracks and sort by descending samples (ties by stack, then phase,
// for deterministic output).
func (s *Sampler) Snapshot() *ProfileDoc {
	s.mu.Lock()
	tracks := append([]*Track(nil), s.tracks...)
	s.mu.Unlock()

	merged := make(map[sampleKey]uint64)
	doc := &ProfileDoc{
		Schema:         ProfileSchema,
		Version:        ProfileSchemaVersion,
		IntervalCycles: s.Interval,
		Tracks:         len(tracks),
		PhaseTotals:    make(map[string]uint64),
	}
	for _, t := range tracks {
		t.mu.Lock()
		for k, c := range t.counts {
			merged[k] += c.Load()
		}
		t.mu.Unlock()
	}
	doc.Stacks = make([]FoldedStack, 0, len(merged))
	for k, n := range merged {
		doc.Stacks = append(doc.Stacks, FoldedStack{Stack: k.stack, Phase: k.phase, Samples: n})
		doc.PhaseTotals[k.phase] += n
		doc.TotalSamples += n
	}
	sort.Slice(doc.Stacks, func(i, j int) bool {
		a, b := doc.Stacks[i], doc.Stacks[j]
		if a.Samples != b.Samples {
			return a.Samples > b.Samples
		}
		if a.Stack != b.Stack {
			return a.Stack < b.Stack
		}
		return a.Phase < b.Phase
	})
	return doc
}

// PhaseSamples returns the current per-phase sample totals (a cheap
// subset of Snapshot, used by reconciliation tests).
func (s *Sampler) PhaseSamples() map[string]uint64 {
	return s.Snapshot().PhaseTotals
}

// WriteJSON writes the profile as an indented, versioned JSON document.
func (doc *ProfileDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteFolded writes the profile in the standard folded-stack format
// consumed by flamegraph tooling: one "phase;frame1;frame2 count" line
// per bucket. The phase is the root frame, so a flamegraph's first tier
// is the runtime-phase decomposition.
func (doc *ProfileDoc) WriteFolded(w io.Writer) error {
	for _, fs := range doc.Stacks {
		line := fs.Phase
		if fs.Phase == "exec" && fs.Stack != "" {
			line += ";" + fs.Stack
		}
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, " "); err != nil {
			return err
		}
		var buf [20]byte
		b := appendUint(buf[:0], fs.Samples)
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}
