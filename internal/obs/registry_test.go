package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("carat.test.counter")
	c.Inc()
	c.Add(41)
	if got := c.Get(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("carat.test.counter") != c {
		t.Fatalf("Counter lookup not stable")
	}
	g := r.Gauge("carat.test.gauge")
	g.Set(7)
	g.Add(3)
	if got := g.Get(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("carat.test.shared")
			h := r.Histogram("carat.test.hist")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(uint64(j))
				r.Gauge("carat.test.gauge").Set(uint64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("carat.test.shared").Get(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("carat.test.hist").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v   uint64
		idx int
		le  uint64 // upper bound of that bucket
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 3, 7},
		{7, 3, 7},
		{8, 4, 15},
		{1023, 10, 1023},
		{1024, 11, 2047},
		{1<<63 - 1, 63, 1<<63 - 1},
		{1 << 63, 64, ^uint64(0)},
		{^uint64(0), 64, ^uint64(0)},
	}
	for _, tc := range cases {
		if got := BucketIndex(tc.v); got != tc.idx {
			t.Errorf("BucketIndex(%d) = %d, want %d", tc.v, got, tc.idx)
		}
		if got := BucketUpperBound(tc.idx); got != tc.le {
			t.Errorf("BucketUpperBound(%d) = %d, want %d", tc.idx, got, tc.le)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("carat.test.h")
	for _, v := range []uint64{5, 3, 12, 3, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["carat.test.h"]
	if s.Count != 5 || s.Sum != 123 || s.Min != 3 || s.Max != 100 {
		t.Fatalf("snapshot = %+v, want count=5 sum=123 min=3 max=100", s)
	}
	// 3,3 -> le 3; 5 -> le 7; 12 -> le 15; 100 -> le 127
	want := []BucketCount{{3, 2}, {7, 1}, {15, 1}, {127, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, s.Buckets[i], want[i])
		}
	}
	if got := h.Mean(); got != 123.0/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestSnapshotResetAndJSON(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("carat.vm.instrs")
	c.Add(99)
	r.Gauge("carat.runtime.escapes_live").Set(4)
	r.Histogram("carat.vm.alloc_bytes").Observe(64)

	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc MetricsDocument
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, b.String())
	}
	if doc.Schema != MetricsSchema || doc.Version != MetricsSchemaVersion {
		t.Fatalf("schema = %q v%d", doc.Schema, doc.Version)
	}
	if doc.Counters["carat.vm.instrs"] != 99 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if doc.Gauges["carat.runtime.escapes_live"] != 4 {
		t.Fatalf("gauges = %v", doc.Gauges)
	}
	if doc.Histograms["carat.vm.alloc_bytes"].Count != 1 {
		t.Fatalf("histograms = %v", doc.Histograms)
	}

	// JSON encoding must be byte-stable run to run (sorted map keys).
	var b2 strings.Builder
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatalf("metrics JSON not stable:\n%s\nvs\n%s", b.String(), b2.String())
	}

	r.Reset()
	if c.Get() != 0 {
		t.Fatalf("counter not reset")
	}
	c.Inc() // original pointer still live after reset
	if r.Counter("carat.vm.instrs").Get() != 1 {
		t.Fatalf("counter pointer invalidated by reset")
	}
	s := r.Snapshot()
	if s.Gauges["carat.runtime.escapes_live"] != 0 || s.Histograms["carat.vm.alloc_bytes"].Count != 0 {
		t.Fatalf("reset incomplete: %+v", s)
	}
}
