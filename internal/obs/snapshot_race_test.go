package obs

import (
	"sync"
	"testing"
)

// TestSnapshotUnderConcurrentWrites hammers Snapshot while 8 goroutines
// observe histograms and bump counters. Run under -race (make check does),
// this is the proof behind the telemetry server's claim that a live scrape
// never stops or corrupts the instrumented program. Asserted invariants:
// counts are monotonic across snapshots, and no snapshot is torn (bucket
// populations never lag the count they were read before).
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	r := NewRegistry()
	// Pre-register so writers share the same cells the reader snapshots.
	ctr := r.Counter("carat.test.ops")
	h := r.Histogram("carat.test.latency")
	g := r.Gauge("carat.test.level")

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				ctr.Inc()
				h.Observe(uint64(w*perG+i)%1000 + 1)
				g.Set(uint64(i))
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(start)

	var lastCount, lastHist uint64
	snapshots := 0
	running := true
	for running {
		select {
		case <-done:
			running = false // take one final racing snapshot, then stop
		default:
		}
		s := r.Snapshot()
		snapshots++
		if c := s.Counters["carat.test.ops"]; c < lastCount {
			t.Fatalf("counter went backwards: %d after %d", c, lastCount)
		} else {
			lastCount = c
		}
		hs := s.Histograms["carat.test.latency"]
		if hs.Count < lastHist {
			t.Fatalf("histogram count went backwards: %d after %d", hs.Count, lastHist)
		}
		lastHist = hs.Count
		// Observe bumps the bucket before the count, and the snapshot reads
		// the count first — so a torn snapshot can only show bucketSum >=
		// count, never a count the buckets cannot account for.
		var bucketSum uint64
		for _, b := range hs.Buckets {
			bucketSum += b.Count
		}
		if bucketSum < hs.Count {
			t.Fatalf("torn snapshot: %d bucketed observations < count %d", bucketSum, hs.Count)
		}
		if hs.Count > 0 && hs.Min > hs.Max {
			t.Fatalf("torn snapshot: min %d > max %d", hs.Min, hs.Max)
		}
	}
	if snapshots < 2 {
		t.Logf("only %d snapshots raced against the writers", snapshots)
	}

	s := r.Snapshot()
	const want = writers * perG
	if got := s.Counters["carat.test.ops"]; got != want {
		t.Errorf("final counter = %d, want %d", got, want)
	}
	hs := s.Histograms["carat.test.latency"]
	if hs.Count != want {
		t.Errorf("final histogram count = %d, want %d", hs.Count, want)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Errorf("final bucket sum %d != count %d", bucketSum, hs.Count)
	}
	if hs.Min != 1 || hs.Max != 1000 {
		t.Errorf("final min/max = %d/%d, want 1/1000", hs.Min, hs.Max)
	}
}

// TestSamplerConcurrentScrape races Snapshot against a track owner doing
// Sample/FoldPhase, the exact shape of an HTTP /profile scrape hitting a
// running VM. Under -race this validates the sampler's locking story.
func TestSamplerConcurrentScrape(t *testing.T) {
	s := NewSampler(16)
	tr := s.NewTrack()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cycles, moves uint64
		for i := 0; i < 20000; i++ {
			cycles += 7
			moves += 3
			if tr.Due(cycles) {
				tr.Sample(cycles, func() string { return "main;loop" })
				tr.FoldPhase("move", moves)
			}
		}
	}()
	var last uint64
	for {
		doc := s.Snapshot()
		if doc.TotalSamples < last {
			t.Fatalf("profile total went backwards: %d after %d", doc.TotalSamples, last)
		}
		last = doc.TotalSamples
		select {
		case <-done:
			return
		default:
		}
	}
}
