// Package telemetry is the embeddable HTTP export surface of the obs
// layer: live Prometheus metrics, folded-stack cycle profiles, windowed
// trace capture, and health/readiness probes. caratvm and caratbench
// mount it behind a -http flag; the planned caratd server will embed the
// same handler per tenant.
//
// Endpoints:
//
//	/metrics   Prometheus text exposition (version 0.0.4) of every
//	           counter, gauge, and histogram in the registry
//	/profile   carat.profile v1 JSON (default) or raw folded stacks
//	           with ?format=folded — flamegraph.pl-compatible
//	/trace     carat.trace v1 JSON holding the events emitted during a
//	           ?sec=N host-time window (requires an attached tracer)
//	/healthz   liveness: always 200 once the server is up
//	/readyz    readiness: 503 until the host process calls SetReady —
//	           lets scripts poll for "experiments finished" before
//	           scraping final numbers
//
// Everything is read-only and safe to scrape mid-run: metrics are atomic
// snapshots, profiles aggregate lock-free sample buckets, and the trace
// window taps the event stream without touching the trace file.
package telemetry

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"carat/internal/obs"
)

// Server serves telemetry for one registry/sampler/tracer triple. Only
// Registry is required; nil Sampler disables /profile content (it serves
// an empty profile) and nil Tracer makes /trace report 503.
type Server struct {
	Registry *obs.Registry
	Sampler  *obs.Sampler
	Tracer   *obs.Tracer

	ready atomic.Bool

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// SetReady flips the /readyz probe: false (the initial state) answers
// 503, true answers 200.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// Handler returns the telemetry mux, for embedding into a larger server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// Start binds addr (e.g. "localhost:9100" or ":0") and serves in a
// background goroutine. It returns the bound address, so callers using
// port 0 can discover the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.http = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return ln.Addr().String(), nil
}

// Close stops the listener. In-flight requests are not drained — the
// process is exiting anyway.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if s.Registry == nil {
		return
	}
	WritePrometheus(w, s.Registry.Snapshot())
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	var doc *obs.ProfileDoc
	if s.Sampler != nil {
		doc = s.Sampler.Snapshot()
	} else {
		doc = &obs.ProfileDoc{
			Schema:         obs.ProfileSchema,
			Version:        obs.ProfileSchemaVersion,
			Stacks:         []obs.FoldedStack{},
			PhaseTotals:    map[string]uint64{},
			IntervalCycles: obs.DefaultSampleInterval,
		}
	}
	if r.URL.Query().Get("format") == "folded" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		doc.WriteFolded(w) //nolint:errcheck // best-effort over HTTP
		return
	}
	w.Header().Set("Content-Type", "application/json")
	doc.WriteJSON(w) //nolint:errcheck // best-effort over HTTP
}

// maxTraceWindow bounds /trace capture so a bad query can't pin the tap
// (and its per-event callback cost) on the hot path indefinitely.
const maxTraceWindow = 30 * time.Second

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.Tracer == nil {
		http.Error(w, "no tracer attached (run with -trace or telemetry tracing)", http.StatusServiceUnavailable)
		return
	}
	sec := 1.0
	if q := r.URL.Query().Get("sec"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v <= 0 {
			http.Error(w, "sec must be a positive number", http.StatusBadRequest)
			return
		}
		sec = v
	}
	window := time.Duration(sec * float64(time.Second))
	if window > maxTraceWindow {
		window = maxTraceWindow
	}

	var mu sync.Mutex
	var events []string
	s.Tracer.SetTap(func(body string) {
		mu.Lock()
		events = append(events, body)
		mu.Unlock()
	})
	select {
	case <-time.After(window):
	case <-r.Context().Done():
	}
	s.Tracer.SetTap(nil)

	w.Header().Set("Content-Type", "application/json")
	mu.Lock()
	defer mu.Unlock()
	fmt.Fprint(w, obs.TraceHeader())
	for i, body := range events {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, "\n{", body, "}")
	}
	fmt.Fprint(w, obs.TraceFooter())
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format. Metric names translate by replacing every character
// outside [a-zA-Z0-9_:] with '_' (so carat.vm.instrs becomes
// carat_vm_instrs); histograms emit the classic cumulative _bucket
// series ending in le="+Inf", plus _sum and _count. Output is sorted by
// name, so scrapes of an idle process are byte-stable.
func WritePrometheus(w interface{ Write([]byte) (int, error) }, snap obs.Snapshot) {
	var b strings.Builder

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name])
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", pn, promLe(bk.Le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}

	w.Write([]byte(b.String())) //nolint:errcheck // best-effort over HTTP
}

// promName maps a dotted registry name to a legal Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLe renders a bucket upper bound. The top log2 bucket's bound is
// MaxUint64, which exceeds float64 precision — render it as +Inf's
// predecessor in decimal to keep le values strictly increasing.
func promLe(le uint64) string {
	if le == ^uint64(0) {
		return strconv.FormatFloat(math.MaxFloat64, 'g', -1, 64)
	}
	return strconv.FormatUint(le, 10)
}
