package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"carat/internal/obs"
)

// startServer brings up a Server on a loopback port with a populated
// registry and sampler, returning the base URL and a cleanup.
func startServer(t *testing.T, tracer *obs.Tracer) (*obs.Registry, *obs.Sampler, *Server, string) {
	t.Helper()
	reg := obs.NewRegistry()
	reg.Counter("carat.vm.instrs").Add(12345)
	reg.Gauge("carat.kernel.free_pages").Set(512)
	h := reg.Histogram("carat.runtime.pause_cycles")
	for _, v := range []uint64{400, 455, 900, 6000, 6100} {
		h.Observe(v)
	}

	s := obs.NewSampler(100)
	tr := s.NewTrack()
	tr.Sample(500, func() string { return "main;hot" })
	tr.FoldPhase("move", 300)

	srv := &Server{Registry: reg, Sampler: s, Tracer: tracer}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return reg, s, srv, "http://" + addr
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpoint(t *testing.T) {
	reg, _, _, base := startServer(t, nil)
	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	// Every registered metric must appear under its Prometheus-mapped name.
	snap := reg.Snapshot()
	for name := range snap.Counters {
		if !strings.Contains(body, promName(name)) {
			t.Errorf("/metrics missing counter %s (as %s)", name, promName(name))
		}
	}
	for name := range snap.Gauges {
		if !strings.Contains(body, promName(name)) {
			t.Errorf("/metrics missing gauge %s (as %s)", name, promName(name))
		}
	}
	for name := range snap.Histograms {
		if !strings.Contains(body, promName(name)+"_bucket") {
			t.Errorf("/metrics missing histogram %s", name)
		}
	}
	for _, want := range []string{
		"# TYPE carat_vm_instrs counter",
		"carat_vm_instrs 12345",
		"# TYPE carat_kernel_free_pages gauge",
		"carat_kernel_free_pages 512",
		"# TYPE carat_runtime_pause_cycles histogram",
		`le="+Inf"`,
		"carat_runtime_pause_cycles_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, sampler, _, base := startServer(t, nil)
	code, body, _ := get(t, base+"/profile")
	if code != http.StatusOK {
		t.Fatalf("/profile status %d", code)
	}
	var doc obs.ProfileDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/profile not JSON: %v", err)
	}
	if doc.Schema != obs.ProfileSchema || doc.Version != obs.ProfileSchemaVersion {
		t.Errorf("schema header %s v%d", doc.Schema, doc.Version)
	}
	want := sampler.Snapshot()
	if doc.TotalSamples != want.TotalSamples {
		t.Errorf("total samples %d, sampler says %d", doc.TotalSamples, want.TotalSamples)
	}
	var sum uint64
	for _, fs := range doc.Stacks {
		sum += fs.Samples
	}
	if sum != doc.TotalSamples {
		t.Errorf("stacks sum to %d, total says %d", sum, doc.TotalSamples)
	}

	code, folded, _ := get(t, base+"/profile?format=folded")
	if code != http.StatusOK {
		t.Fatalf("/profile?format=folded status %d", code)
	}
	if !strings.Contains(folded, "exec;main;hot 5") || !strings.Contains(folded, "move 3") {
		t.Errorf("folded output unexpected:\n%s", folded)
	}
}

func TestProfileEndpointNoSampler(t *testing.T) {
	srv := &Server{Registry: obs.NewRegistry()}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body, _ := get(t, "http://"+addr+"/profile")
	if code != http.StatusOK {
		t.Fatalf("/profile status %d with no sampler", code)
	}
	var doc obs.ProfileDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("empty profile not JSON: %v", err)
	}
	if doc.TotalSamples != 0 {
		t.Errorf("empty profile has %d samples", doc.TotalSamples)
	}
}

func TestHealthAndReady(t *testing.T) {
	_, _, srv, base := startServer(t, nil)
	if code, body, _ := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", code)
	}
	srv.SetReady(true)
	if code, _, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz after SetReady = %d, want 200", code)
	}
}

func TestTraceEndpoint(t *testing.T) {
	tracer := obs.NewTracer(nil, nil) // sink-less: events exist only for taps
	_, _, _, base := startServer(t, tracer)

	type result struct {
		code int
		body string
	}
	ch := make(chan result, 1)
	go func() {
		code, body, _ := get(t, base+"/trace?sec=0.3")
		ch <- result{code, body}
	}()
	// Emit events while the capture window is open.
	time.Sleep(100 * time.Millisecond)
	tracer.Instant("checkpoint", "test", obs.Arg{Key: "n", Value: 1})
	tracer.Instant("checkpoint", "test", obs.Arg{Key: "n", Value: 2})

	r := <-ch
	if r.code != http.StatusOK {
		t.Fatalf("/trace status %d", r.code)
	}
	var doc struct {
		Schema      string            `json:"schema"`
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(r.body), &doc); err != nil {
		t.Fatalf("/trace output not JSON: %v\n%s", err, r.body)
	}
	if doc.Schema != "carat.trace" {
		t.Errorf("trace schema %q", doc.Schema)
	}
	if len(doc.TraceEvents) != 2 {
		t.Errorf("captured %d events, want 2", len(doc.TraceEvents))
	}
}

func TestTraceEndpointNoTracer(t *testing.T) {
	srv := &Server{Registry: obs.NewRegistry()}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _, _ := get(t, "http://"+addr+"/trace"); code != http.StatusServiceUnavailable {
		t.Errorf("/trace with no tracer = %d, want 503", code)
	}
}
