package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Tracer streams events in the Chrome trace_event JSON format (the
// "JSON Array Format" with an object wrapper), loadable in Perfetto or
// chrome://tracing. Timestamps are the VM's *simulated* cycle clock, not
// wall time: one trace microsecond equals one modeled cycle, so a span's
// on-screen duration is its modeled cycle cost (at the modeled 2.3 GHz a
// trace "µs" is ~0.43 real ns; only relative widths matter).
//
// A nil *Tracer is the disabled state: every method is nil-receiver-safe
// and returns immediately, so instrumentation sites call methods on a
// possibly-nil tracer without branching. The VM hot loop additionally
// keeps its cycle accounting out of the tracer entirely — tracing on or
// off never changes modeled results (asserted by a differential test in
// internal/bench).
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	clock func() uint64
	first bool
	pid   int
	err   error
	tap   func(body string)
}

// Trace document schema identifiers. The schema/version pair rides in the
// trace's top-level object next to the standard trace_event keys.
const (
	TraceSchema        = "carat.trace"
	TraceSchemaVersion = 1
)

// NewTracer starts a trace stream on w. clock supplies simulated-cycle
// timestamps for Instant events; it may be nil until SetClock. Call Close
// to terminate the JSON document. A nil w makes a sink-less tracer that
// only feeds taps (see SetTap) — the telemetry server uses this to serve
// windowed traces without writing a file.
func NewTracer(w io.Writer, clock func() uint64) *Tracer {
	t := &Tracer{clock: clock, first: true}
	if w != nil {
		t.w = bufio.NewWriter(w)
		fmt.Fprintf(t.w, "{\"schema\":%q,\"version\":%d,\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
			TraceSchema, TraceSchemaVersion)
	}
	return t
}

// SetTap installs (or clears, with nil) a callback that receives every
// event body — the JSON object content without the surrounding braces —
// in emission order. The callback runs with the tracer's lock held, so it
// must be fast and must not call back into the tracer.
func (t *Tracer) SetTap(tap func(body string)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tap = tap
	t.mu.Unlock()
}

// TraceHeader returns the opening of a carat.trace v1 document, for
// callers re-framing tapped events into a complete trace.
func TraceHeader() string {
	return fmt.Sprintf("{\"schema\":%q,\"version\":%d,\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
		TraceSchema, TraceSchemaVersion)
}

// TraceFooter returns the closing of a carat.trace v1 document.
func TraceFooter() string { return "\n]}\n" }

// SetClock replaces the simulated-cycle clock (the VM installs its cycle
// counter at Load time).
func (t *Tracer) SetClock(clock func() uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = clock
	t.mu.Unlock()
}

// Now reads the simulated-cycle clock (0 when no clock is installed or
// the tracer is nil).
func (t *Tracer) Now() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

func (t *Tracer) now() uint64 {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}

// BeginProcess opens a new trace process (a new pid lane) named name —
// one per VM run, so sequential workloads in a bench sweep stay separate
// in the viewer.
func (t *Tracer) BeginProcess(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pid++
	t.event(`"name":"process_name","ph":"M","pid":` + strconv.Itoa(t.pid) +
		`,"tid":1,"args":{"name":` + quote(name) + `}`)
}

// Arg is one key/value pair attached to a trace event's args object.
type Arg struct {
	Key   string
	Value any
}

// A builds an Arg.
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// SpanAt emits a complete span (ph "X") covering simulated cycles
// [startCyc, startCyc+durCyc) in category cat.
func (t *Tracer) SpanAt(name, cat string, startCyc, durCyc uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	b.WriteString(`"name":`)
	b.WriteString(quote(name))
	b.WriteString(`,"cat":`)
	b.WriteString(quote(cat))
	b.WriteString(`,"ph":"X","ts":`)
	b.WriteString(strconv.FormatUint(startCyc, 10))
	b.WriteString(`,"dur":`)
	b.WriteString(strconv.FormatUint(durCyc, 10))
	t.finishEvent(&b, args)
}

// Instant emits an instant event (ph "i") at the current simulated cycle.
func (t *Tracer) Instant(name, cat string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instantAt(name, cat, t.now(), args)
}

// InstantAt emits an instant event at an explicit simulated cycle.
func (t *Tracer) InstantAt(name, cat string, tsCyc uint64, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.instantAt(name, cat, tsCyc, args)
}

func (t *Tracer) instantAt(name, cat string, tsCyc uint64, args []Arg) {
	var b strings.Builder
	b.WriteString(`"name":`)
	b.WriteString(quote(name))
	b.WriteString(`,"cat":`)
	b.WriteString(quote(cat))
	b.WriteString(`,"ph":"i","s":"t","ts":`)
	b.WriteString(strconv.FormatUint(tsCyc, 10))
	t.finishEvent(&b, args)
}

// finishEvent appends pid/tid and args to a half-built event body and
// writes it. Caller holds t.mu.
func (t *Tracer) finishEvent(b *strings.Builder, args []Arg) {
	pid := t.pid
	if pid == 0 {
		pid = 1
	}
	b.WriteString(`,"pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":1`)
	if len(args) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(quote(a.Key))
			b.WriteByte(':')
			b.WriteString(encodeValue(a.Value))
		}
		b.WriteByte('}')
	}
	t.event(b.String())
}

// event writes one event object body (without braces). Caller holds t.mu.
func (t *Tracer) event(body string) {
	if t.tap != nil {
		t.tap(body)
	}
	if t.w == nil || t.err != nil {
		return
	}
	if t.first {
		t.first = false
	} else {
		t.w.WriteByte(',')
	}
	t.w.WriteByte('\n')
	t.w.WriteByte('{')
	t.w.WriteString(body)
	if _, err := t.w.WriteString("}"); err != nil {
		t.err = err
	}
}

// Close terminates the trace document and flushes it. Returns the first
// write error, if any.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return t.err
	}
	t.w.WriteString("\n]}\n")
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	t.w = nil
	return t.err
}

// quote JSON-escapes a string. Event and metric names are plain ASCII, so
// the simple escaper keeps output byte-stable for golden-file tests.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, "\\u%04x", c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// encodeValue encodes an Arg value. Integers and booleans stay native;
// everything else becomes a string.
func encodeValue(v any) string {
	switch x := v.(type) {
	case uint64:
		return strconv.FormatUint(x, 10)
	case uint32:
		return strconv.FormatUint(uint64(x), 10)
	case uint:
		return strconv.FormatUint(uint64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int:
		return strconv.Itoa(x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	case string:
		return quote(x)
	default:
		return quote(fmt.Sprint(x))
	}
}
