package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// buildSampleTrace emits a small, fully deterministic trace using a fake
// simulated-cycle clock.
func buildSampleTrace(w *strings.Builder) {
	var cyc uint64
	tr := NewTracer(w, func() uint64 { return cyc })
	tr.BeginProcess("workload \"EP\"")
	tr.SpanAt("move.world_stop", "protocol", 100, 50, A("threads", 2))
	tr.SpanAt("move.copy_data", "protocol", 150, 4096, A("bytes", uint64(4096)), A("dry", false))
	cyc = 5000
	tr.Instant("guard.fault", "guard", A("addr", "0xffff800000000000"))
	tr.InstantAt("page.demand_alloc", "paging", 6000)
	tr.Close()
}

func TestTraceGolden(t *testing.T) {
	var b strings.Builder
	buildSampleTrace(&b)
	got := b.String()

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace output differs from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTraceParsesAsChromeFormat(t *testing.T) {
	var b strings.Builder
	buildSampleTrace(&b)
	var doc struct {
		Schema      string `json:"schema"`
		Version     int    `json:"version"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace does not parse as JSON: %v\n%s", err, b.String())
	}
	if doc.Schema != TraceSchema || doc.Version != TraceSchemaVersion {
		t.Fatalf("schema = %q v%d", doc.Schema, doc.Version)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event should be process metadata, got %+v", doc.TraceEvents[0])
	}
	span := doc.TraceEvents[2]
	if span.Name != "move.copy_data" || span.Ph != "X" || span.Ts != 150 || span.Dur != 4096 {
		t.Fatalf("span = %+v", span)
	}
	if span.Args["bytes"].(float64) != 4096 || span.Args["dry"].(bool) != false {
		t.Fatalf("span args = %+v", span.Args)
	}
	inst := doc.TraceEvents[3]
	if inst.Name != "guard.fault" || inst.Ph != "i" || inst.Ts != 5000 {
		t.Fatalf("instant = %+v", inst)
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	// Every exported method must be callable on a nil tracer.
	tr.SetClock(func() uint64 { return 1 })
	if tr.Now() != 0 {
		t.Fatal("nil tracer Now should be 0")
	}
	tr.BeginProcess("x")
	tr.SpanAt("a", "b", 0, 1, A("k", 1))
	tr.Instant("a", "b")
	tr.InstantAt("a", "b", 5)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerMultiProcess(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b, nil)
	tr.BeginProcess("run1")
	tr.SpanAt("s", "c", 0, 1)
	tr.BeginProcess("run2")
	tr.SpanAt("s", "c", 0, 1)
	tr.Close()
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents[1].Pid != 1 || doc.TraceEvents[3].Pid != 2 {
		t.Fatalf("pids = %+v", doc.TraceEvents)
	}
}

// BenchmarkNilTracer measures the disabled-tracing fast path: a method
// call on a nil *Tracer must compile down to a receiver check and return.
func BenchmarkNilTracer(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.SpanAt("move.copy_data", "protocol", uint64(i), 10)
	}
}

func BenchmarkTracerSpan(b *testing.B) {
	tr := NewTracer(discard{}, nil)
	defer tr.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SpanAt("move.copy_data", "protocol", uint64(i), 10, A("bytes", uint64(4096)))
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
