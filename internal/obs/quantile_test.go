package obs

import (
	"math"
	"testing"
)

// Quantile estimates come from log2 buckets with geometric intra-bucket
// interpolation, so tolerances below are relative: an estimate may be off
// by a fraction of one bucket's width but never outside [Min, Max].

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %v, want 0", got)
	}
	s := h.Snapshot()
	if s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot percentiles = %v/%v/%v, want zeros", s.P50, s.P95, s.P99)
	}
}

func TestQuantileSingleValue(t *testing.T) {
	var h Histogram
	h.Observe(100)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %v, want 100 (clamped to the only observation)", q, got)
		}
	}
}

func TestQuantileConstant(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(777)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got := h.Quantile(q); got != 777 {
			t.Errorf("Quantile(%v) = %v, want 777", q, got)
		}
	}
}

func TestQuantileSingleBucketReturnsBound(t *testing.T) {
	// All observations land in one log2 bucket ([8,15]): interpolating
	// inside it would manufacture spread, so mid-range quantiles return the
	// bucket bound clamped to the observed envelope.
	var h Histogram
	for _, v := range []uint64{9, 11, 14} {
		h.Observe(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		if got := h.Quantile(q); got != 14 {
			t.Errorf("single-bucket Quantile(%v) = %v, want bucket bound clamped to Max 14", q, got)
		}
	}
	if got := h.Quantile(0); got != 9 {
		t.Errorf("single-bucket Quantile(0) = %v, want Min 9", got)
	}
}

func TestQuantileEmptySnapshotBuckets(t *testing.T) {
	// A snapshot with a count but no buckets (can arise from a hand-built
	// document) must return 0 rather than divide across nothing.
	s := HistogramSnapshot{Count: 5}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("bucketless snapshot Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for v := uint64(1); v <= 100; v++ {
		a.Observe(v)
		whole.Observe(v)
	}
	for v := uint64(500); v <= 600; v++ {
		b.Observe(v)
		whole.Observe(v)
	}
	var merged Histogram
	merged.Merge(a.Snapshot())
	merged.Merge(b.Snapshot())
	ms, ws := merged.Snapshot(), whole.Snapshot()
	if ms.Count != ws.Count || ms.Sum != ws.Sum || ms.Min != ws.Min || ms.Max != ws.Max {
		t.Errorf("merged summary %+v != direct %+v", ms, ws)
	}
	if len(ms.Buckets) != len(ws.Buckets) {
		t.Fatalf("merged has %d buckets, direct has %d", len(ms.Buckets), len(ws.Buckets))
	}
	for i := range ms.Buckets {
		if ms.Buckets[i] != ws.Buckets[i] {
			t.Errorf("bucket %d: merged %+v != direct %+v", i, ms.Buckets[i], ws.Buckets[i])
		}
	}
	if ms.P50 != ws.P50 || ms.P95 != ws.P95 || ms.P99 != ws.P99 {
		t.Errorf("merged percentiles %v/%v/%v != direct %v/%v/%v",
			ms.P50, ms.P95, ms.P99, ws.P50, ws.P95, ws.P99)
	}
	var empty Histogram
	empty.Merge(HistogramSnapshot{})
	if empty.Count() != 0 {
		t.Errorf("merging an empty snapshot observed something: count %d", empty.Count())
	}
}

func TestQuantileUniform(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 500},
		{0.95, 950},
		{0.99, 990},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if rel := math.Abs(got-c.want) / c.want; rel > 0.10 {
			t.Errorf("uniform 1..1000: Quantile(%v) = %.1f, want %.0f +/- 10%%", c.q, got, c.want)
		}
	}
}

func TestQuantileBimodal(t *testing.T) {
	// 95% of observations at 10, 5% at 10000: the median must land in the
	// low mode's bucket and p99 in the high mode's.
	var h Histogram
	for i := 0; i < 95; i++ {
		h.Observe(10)
	}
	for i := 0; i < 5; i++ {
		h.Observe(10000)
	}
	if p50 := h.Quantile(0.50); p50 < 8 || p50 > 15 {
		t.Errorf("bimodal p50 = %.1f, want within the [8,15] bucket of the low mode", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 8192 || p99 > 10000 {
		t.Errorf("bimodal p99 = %.1f, want in the high mode's bucket (clamped at max 10000)", p99)
	}
}

func TestQuantileMonotoneAndBounded(t *testing.T) {
	var h Histogram
	// Deterministic pseudo-random values spanning several buckets.
	x := uint64(88172645463325252)
	for i := 0; i < 5000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		h.Observe(x % 100000)
	}
	s := h.Snapshot()
	prev := float64(s.Min)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%v) = %.1f < previous quantile %.1f: not monotone", q, got, prev)
		}
		if got < float64(s.Min) || got > float64(s.Max) {
			t.Errorf("Quantile(%v) = %.1f outside observed [%d, %d]", q, got, s.Min, s.Max)
		}
		prev = got
	}
}

func TestQuantileBoundsClamp(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	if got := h.Quantile(0); got != 3 {
		t.Errorf("Quantile(0) = %v, want Min 3", got)
	}
	if got := h.Quantile(1); got != 300 {
		t.Errorf("Quantile(1) = %v, want Max 300", got)
	}
}

func TestSnapshotPercentilesMatchQuantile(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 300; v++ {
		h.Observe(v * 7)
	}
	s := h.Snapshot()
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Errorf("snapshot percentiles %v/%v/%v disagree with Quantile calls %v/%v/%v",
			s.P50, s.P95, s.P99, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	}
}
