package obs

import (
	"encoding/json"
	"testing"
)

func TestCategoryNames(t *testing.T) {
	want := map[Category]string{
		CatCompute: "compute", CatGuard: "guard", CatTracking: "tracking",
		CatPagewalk: "pagewalk", CatPageFault: "pagefault",
		CatProtocol: "protocol", CatAlloc: "alloc",
	}
	for c, name := range want {
		if c.String() != name {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), name)
		}
	}
	if Category(-1).String() != "unknown" || NumCategories.String() != "unknown" {
		t.Error("out-of-range category should be unknown")
	}
}

func TestCycleProfile(t *testing.T) {
	p := NewCycleProfile()
	p.Cat[CatCompute] += 100
	p.Cat[CatGuard] += 20
	f := p.Func("main")
	f.Calls++
	f.Instrs += 10
	f.Cycles += 100
	g := p.Func("helper")
	g.Cycles += 200
	if p.Func("main") != f {
		t.Fatal("Func lookup not stable")
	}
	if p.Total() != 120 {
		t.Fatalf("total = %d", p.Total())
	}
	funcs := p.Funcs()
	if len(funcs) != 2 || funcs[0].Name != "helper" || funcs[1].Name != "main" {
		t.Fatalf("funcs order = %+v", funcs)
	}
	bc := p.ByCategory()
	if bc["compute"] != 100 || bc["guard"] != 20 || len(bc) != 2 {
		t.Fatalf("by-category = %v", bc)
	}

	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Categories map[string]uint64 `json:"categories"`
		Functions  []FuncProfile     `json:"functions"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Categories["compute"] != 100 || len(out.Functions) != 2 {
		t.Fatalf("marshal = %s", data)
	}

	reg := NewRegistry()
	p.PublishTo(reg, "carat.vm")
	s := reg.Snapshot()
	if s.Counters["carat.vm.cycles.compute"] != 100 ||
		s.Counters["carat.vm.cycles.guard"] != 20 ||
		s.Counters["carat.vm.cycles.total"] != 120 {
		t.Fatalf("published = %v", s.Counters)
	}
	// PublishTo accumulates across runs.
	p.PublishTo(reg, "carat.vm")
	if reg.Counter("carat.vm.cycles.total").Get() != 240 {
		t.Fatal("PublishTo should accumulate")
	}
	// nil registry is a no-op.
	p.PublishTo(nil, "carat.vm")
}
