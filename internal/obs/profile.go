package obs

import (
	"encoding/json"
	"sort"
)

// Category buckets a modeled cycle by what the machine was doing when it
// was spent. The VM interpreter attributes every cycle it charges to
// exactly one category, replacing the old opaque single total: compute is
// the application's own work, guard/tracking are CARAT's compiler- and
// runtime-injected overheads, pagewalk/pagefault are the traditional-VM
// costs CARAT removes, and protocol is the kernel-initiated move protocol
// (Table 3's subject).
type Category int

// The cycle categories, in presentation order.
const (
	CatCompute Category = iota
	CatGuard
	CatTracking
	CatPagewalk
	CatPageFault
	CatProtocol
	CatAlloc
	NumCategories
)

var categoryNames = [NumCategories]string{
	"compute", "guard", "tracking", "pagewalk", "pagefault", "protocol", "alloc",
}

// String names the category (used as a metric-name suffix).
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return "unknown"
	}
	return categoryNames[c]
}

// FuncProfile accumulates per-function interpreter costs.
type FuncProfile struct {
	Name   string `json:"name"`
	Calls  uint64 `json:"calls"`
	Instrs uint64 `json:"instrs"`
	Cycles uint64 `json:"cycles"`
}

// CycleProfile is the VM's cycle-attribution profile: a per-category
// breakdown plus per-function compute costs. It is owned by a single VM
// and updated from the interpreter loop without synchronization, so it
// adds no atomics to the hot path.
type CycleProfile struct {
	Cat   [NumCategories]uint64
	funcs map[string]*FuncProfile
}

// NewCycleProfile returns an empty profile.
func NewCycleProfile() *CycleProfile {
	return &CycleProfile{funcs: make(map[string]*FuncProfile)}
}

// Func returns the named function's bucket, creating it if needed. The
// pointer is stable; the VM resolves it once per function at load time.
func (p *CycleProfile) Func(name string) *FuncProfile {
	f, ok := p.funcs[name]
	if !ok {
		f = &FuncProfile{Name: name}
		p.funcs[name] = f
	}
	return f
}

// Total returns the sum over all categories.
func (p *CycleProfile) Total() uint64 {
	var t uint64
	for _, c := range p.Cat {
		t += c
	}
	return t
}

// Funcs returns the per-function buckets sorted by descending cycles
// (ties broken by name for determinism).
func (p *CycleProfile) Funcs() []*FuncProfile {
	out := make([]*FuncProfile, 0, len(p.funcs))
	for _, f := range p.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByCategory returns the breakdown as a name→cycles map.
func (p *CycleProfile) ByCategory() map[string]uint64 {
	m := make(map[string]uint64, NumCategories)
	for c := Category(0); c < NumCategories; c++ {
		if p.Cat[c] > 0 {
			m[c.String()] = p.Cat[c]
		}
	}
	return m
}

// MarshalJSON encodes the profile as {"categories":{...},"functions":[...]}.
func (p *CycleProfile) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Categories map[string]uint64 `json:"categories"`
		Functions  []*FuncProfile    `json:"functions,omitempty"`
	}{p.ByCategory(), p.Funcs()})
}

// PublishTo adds the profile into reg as counters under prefix:
// <prefix>.cycles.<category> plus <prefix>.cycles.total. Using Add (not
// Set) lets a bench sweep accumulate across sequential VM runs sharing
// one registry.
func (p *CycleProfile) PublishTo(reg *Registry, prefix string) {
	if reg == nil {
		return
	}
	for c := Category(0); c < NumCategories; c++ {
		if p.Cat[c] > 0 {
			reg.Counter(prefix + ".cycles." + c.String()).Add(p.Cat[c])
		}
	}
	reg.Counter(prefix + ".cycles.total").Add(p.Total())
}
