// Package obs is the unified observability layer of the simulated CARAT
// system: a metrics registry (counters, gauges, log-scale histograms), a
// Chrome trace_event tracer driven by the simulated cycle clock, and a
// cycle-attribution profile that decomposes the VM's single cycle total
// into categories and per-function buckets.
//
// The paper's whole argument is cost accounting — per-step move-protocol
// cycles (Table 3), guard overhead decomposition (Fig 3), paging-event
// rates (Table 2) — so every layer (vm, runtime, kernel, tlb, passes,
// bench) publishes into one obs.Registry under a dotted namespace
// (carat.vm.*, carat.runtime.*, carat.kernel.*, carat.tlb.*,
// carat.passes.*; ownership documented in DESIGN.md) and, when a tracer is
// attached, emits spans and instants on the modeled timeline. Everything
// is pure stdlib.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with atomic updates. The
// zero value is usable, but counters are normally obtained from a Registry
// so they appear in snapshots.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v.Load() }

// Gauge is a point-in-time value with atomic updates.
type Gauge struct{ v atomic.Uint64 }

// Set stores n.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Add adds delta (which may wrap; gauges are unsigned).
func (g *Gauge) Add(n uint64) { g.v.Add(n) }

// Get returns the current value.
func (g *Gauge) Get() uint64 { return g.v.Load() }

// HistogramBuckets is the fixed bucket count of a log-scale histogram:
// bucket i counts observations whose bit length is i, i.e. bucket 0 holds
// the value 0 and bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
const HistogramBuckets = 65

// Histogram is a log2-bucketed histogram with atomic updates, suitable for
// cycle counts and byte sizes spanning many orders of magnitude.
type Histogram struct {
	buckets  [HistogramBuckets]atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Uint64
	min, max atomic.Uint64
	minInit  atomic.Bool
}

// BucketIndex returns the bucket an observation of v lands in.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketUpperBound returns the largest value bucket i holds.
func BucketUpperBound(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.buckets[BucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if !h.minInit.Load() && h.minInit.CompareAndSwap(false, true) {
		h.min.Store(v)
		return
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the arithmetic mean of observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the value at quantile q (0 < q <= 1) estimated from
// the live bucket counts with intra-bucket log interpolation. 0 when the
// histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	return h.snapshot().Quantile(q)
}

// BucketCount is one non-empty histogram bucket in a snapshot: Count
// observations were <= Le (and greater than the previous bucket's Le).
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at snapshot time. P50/P95/P99
// are the standard latency quantiles, estimated from the log-scale
// buckets with intra-bucket log interpolation (see Quantile).
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns the value at quantile q (0 < q <= 1) estimated from the
// snapshot's bucket counts. Because buckets are log2-scaled, the position
// within a bucket is interpolated geometrically (log interpolation):
// value = lo * (hi/lo)^frac, where frac is the fraction of the bucket's
// observations below the target rank. The estimate is clamped to the
// observed [Min, Max] envelope. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	if len(s.Buckets) == 1 {
		// Every observation shares one bucket: interpolating across it
		// would manufacture spread the data does not have (and divides
		// across a zero-width range when the bucket holds one value).
		// Return the bucket's upper bound clamped to the envelope.
		v := float64(s.Buckets[0].Le)
		v = math.Max(v, float64(s.Min))
		v = math.Min(v, float64(s.Max))
		return v
	}
	// Target rank in [1, Count]: the ceil makes p100 land on the last
	// observation and keeps single-observation histograms exact.
	rank := math.Ceil(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for _, b := range s.Buckets {
		prev := cum
		cum += float64(b.Count)
		if cum < rank {
			continue
		}
		// Bucket holding Le covers [lo, Le] where lo is its lower bound:
		// 0 for the zero bucket, else 2^(len-1) (the previous power of two).
		if b.Le == 0 {
			return 0
		}
		lo := float64(uint64(1) << (bits.Len64(b.Le) - 1))
		hi := float64(b.Le)
		frac := (rank - prev) / float64(b.Count)
		v := lo * math.Pow(hi/lo, frac)
		// Clamp to the observed envelope: the true extremes are known
		// exactly, and no estimate can lie outside them.
		v = math.Max(v, float64(s.Min))
		v = math.Min(v, float64(s.Max))
		return v
	}
	return float64(s.Max)
}

// Snapshot returns a point-in-time copy of the histogram's state,
// including the estimated p50/p95/p99.
func (h *Histogram) Snapshot() HistogramSnapshot { return h.snapshot() }

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Min: h.min.Load(), Max: h.max.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketUpperBound(i), Count: n})
		}
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Merge folds a snapshot taken from another histogram into h, as if every
// observation behind the snapshot had been observed here. Bucket shapes are
// identical across all Histograms (fixed log2 scale), so the fold is exact.
// The server uses this to roll per-request registries into tenant-visible
// totals — counters merge by addition, histograms merge with Merge.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	for _, b := range s.Buckets {
		i := bits.Len64(b.Le)
		if i >= HistogramBuckets {
			i = HistogramBuckets - 1
		}
		h.buckets[i].Add(b.Count)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
	if !h.minInit.Load() && h.minInit.CompareAndSwap(false, true) {
		h.min.Store(s.Min)
		return
	}
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(0)
	h.max.Store(0)
	h.minInit.Store(false)
}

// Registry is a named collection of metrics. Lookup creates on first use;
// the returned Counter/Gauge/Histogram pointers are stable, so hot paths
// resolve a metric once and update it with a single atomic add.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. Maps
// marshal with sorted keys, so the JSON encoding is stable.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Get()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Get()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Reset zeroes every metric, keeping the registered names and pointers
// valid (holders of a *Counter keep writing to the same cell).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Metrics document schema identifiers (see DESIGN.md "Observability").
const (
	MetricsSchema        = "carat.metrics"
	MetricsSchemaVersion = 1
)

// MetricsDocument is the versioned machine-readable encoding of a registry
// snapshot, written by the -metrics flag of caratvm and caratbench.
type MetricsDocument struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Snapshot
}

// WriteJSON writes the registry's snapshot as an indented, versioned JSON
// document.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := MetricsDocument{Schema: MetricsSchema, Version: MetricsSchemaVersion, Snapshot: r.Snapshot()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
