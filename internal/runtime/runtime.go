package runtime

import (
	"fmt"
	"sync"

	"carat/internal/kernel"
)

// World is how the runtime reaches the program's threads. The VM
// implements it: StopTheWorld forces every thread to a safepoint — the
// moral equivalent of the signal handlers in Figure 8 dumping register
// state on their stacks — and returns the threads' register snapshots for
// patching. ResumeTheWorld releases the barrier.
type World interface {
	StopTheWorld() []RegSet
	ResumeTheWorld()
}

// RegSet exposes one stopped thread's pointer-bearing registers.
type RegSet interface {
	// Regs returns the register values.
	Regs() []uint64
	// SetReg patches register i.
	SetReg(i int, v uint64)
}

// noWorld is used when the runtime runs without live threads (unit tests,
// offline table manipulation).
type noWorld struct{}

func (noWorld) StopTheWorld() []RegSet { return nil }
func (noWorld) ResumeTheWorld()        {}

// Stats accumulates runtime-side tracking statistics (Figures 5-7).
type Stats struct {
	Allocs        uint64 // carat.alloc callbacks
	Frees         uint64 // carat.free callbacks
	EscapeEvents  uint64 // carat.escape callbacks (pre-batching)
	EscapesLive   uint64 // escapes currently tracked
	BatchFlushes  uint64
	UntrackedEsc  uint64 // escapes whose target was not a tracked allocation
	TrackingCycle uint64 // modeled cycles spent in tracking callbacks
	SwapOuts      uint64
	SwapIns       uint64
}

// Modeled per-operation tracking costs in cycles. An allocation insert is
// a red/black tree insert (pointer chasing, ~L2 latencies); an escape is
// an amortized batched hash insert. These constants put the tracking
// overhead in the low single-digit percent range the paper measures
// (Figure 7: geomean 1.9%).
const (
	cycAllocInsert = 40
	cycFree        = 30
	cycEscapeEnq   = 2  // append to batch buffer
	cycEscapeProc  = 10 // table lookup + set insert at flush time
)

// Runtime is the CARAT runtime linked into the program (§4.2). It keeps
// the Allocation Table and escape map current via the injected callbacks,
// and executes the kernel's protection and mapping change requests.
type Runtime struct {
	Table *AllocationTable
	Stats Stats

	mem   *kernel.PhysMem
	world World

	mu sync.Mutex

	// Escape batching (§4.2: "The Allocation Map changes slowly, while the
	// Allocation to Escape Map changes quickly. By batching the latter, we
	// can mitigate redundant/outdated work.")
	batch     []escapeEvent
	batchMax  int
	MoveStats []MoveBreakdown

	// moveListeners are notified, world still stopped, after a move has
	// patched memory and registers; the VM uses this to rebase its own
	// non-program bookkeeping (heap break, stack bases, global addresses).
	moveListeners []func(src, dst, length uint64)

	// swapSlots holds evicted allocations (see swap.go); a nil entry is a
	// slot that has been swapped back in.
	swapSlots []*swapRecord
}

// AddMoveListener registers fn to run after every completed move, while
// the world is still stopped.
func (r *Runtime) AddMoveListener(fn func(src, dst, length uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.moveListeners = append(r.moveListeners, fn)
}

type escapeEvent struct {
	loc, val uint64
}

// DefaultBatchSize is the escape batch flush threshold.
const DefaultBatchSize = 1024

// New creates a runtime over the given physical memory. world may be nil
// when no threads exist yet.
func New(mem *kernel.PhysMem, world World) *Runtime {
	if world == nil {
		world = noWorld{}
	}
	return &Runtime{
		Table:    NewAllocationTable(),
		mem:      mem,
		world:    world,
		batchMax: DefaultBatchSize,
	}
}

// SetWorld installs the thread controller (the VM does this at startup).
func (r *Runtime) SetWorld(w World) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.world = w
}

// TrackAlloc is the carat.alloc callback: a new allocation [base,
// base+length) exists.
func (r *Runtime) TrackAlloc(base, length uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackAllocLocked(base, length, false)
}

// TrackStatic records a load-time (static) allocation: a global, the
// stack, or program code.
func (r *Runtime) TrackStatic(base, length uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackAllocLocked(base, length, true)
}

func (r *Runtime) trackAllocLocked(base, length uint64, static bool) error {
	if _, err := r.Table.Insert(base, length, static); err != nil {
		return err
	}
	r.Stats.Allocs++
	r.Stats.TrackingCycle += cycAllocInsert
	return nil
}

// TrackFree is the carat.free callback.
func (r *Runtime) TrackFree(base uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Pending escapes may reference the dying allocation: flush first so
	// stale batch entries cannot resurrect it.
	r.flushLocked()
	a := r.Table.Remove(base)
	if a == nil {
		return fmt.Errorf("runtime: free of untracked allocation %#x", base)
	}
	if a.Static {
		// Reinsert: freeing a static allocation is a program bug, and the
		// table must stay consistent.
		_, _ = r.Table.Insert(a.Base, a.Len, true)
		return fmt.Errorf("runtime: free of static allocation %#x", base)
	}
	r.Stats.Frees++
	r.Stats.TrackingCycle += cycFree
	return nil
}

// TrackEscape is the carat.escape callback: memory location loc now holds
// the pointer value val. Events are batched; the batch drains at the flush
// threshold, at world stops, and at queries.
func (r *Runtime) TrackEscape(loc, val uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Stats.EscapeEvents++
	r.Stats.TrackingCycle += cycEscapeEnq
	r.batch = append(r.batch, escapeEvent{loc, val})
	if len(r.batch) >= r.batchMax {
		r.flushLocked()
	}
}

// Flush drains the escape batch into the table.
func (r *Runtime) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

func (r *Runtime) flushLocked() {
	if len(r.batch) == 0 {
		return
	}
	// Within a batch only the last write to a location matters: dedupe so
	// outdated work is dropped (the batching win the paper describes).
	last := make(map[uint64]uint64, len(r.batch))
	order := make([]uint64, 0, len(r.batch))
	for _, e := range r.batch {
		if _, seen := last[e.loc]; !seen {
			order = append(order, e.loc)
		}
		last[e.loc] = e.val
	}
	for _, loc := range order {
		val := last[loc]
		if kernel.IsPoison(val) || val == 0 {
			r.Table.RemoveEscape(loc)
			continue
		}
		if !r.Table.AddEscape(loc, val) {
			r.Stats.UntrackedEsc++
		}
		r.Stats.TrackingCycle += cycEscapeProc
	}
	r.batch = r.batch[:0]
	r.Stats.BatchFlushes++
	r.Stats.EscapesLive = uint64(r.Table.EscapeCount())
}

// UntrackStackRange drops every non-static allocation fully inside
// [lo, hi): the runtime's handling of stack-frame destruction. The VM
// calls it when a function activation returns, destroying its allocas
// (§4.1.2: "The runtime handles static and stack allocations as well").
func (r *Runtime) UntrackStackRange(lo, hi uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var dead []uint64
	for _, a := range r.Table.Overlapping(lo, hi) {
		if !a.Static && a.Base >= lo && a.End() <= hi {
			dead = append(dead, a.Base)
		}
	}
	for _, base := range dead {
		r.Table.Remove(base)
	}
}

// tombstoneBytes is the record the prototype retains per freed allocation
// (allocation history kept for diagnostics and move auditing). This
// retention is what makes allocation-churn benchmarks like swaptions the
// memory-overhead outlier in Figure 6.
const tombstoneBytes = 48

// MemoryOverheadBytes reports the tracking structures' footprint
// (Figure 6): live table + escape map, the batch buffer, and the retained
// tombstones of freed allocations.
func (r *Runtime) MemoryOverheadBytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Table.MemoryFootprint() + uint64(cap(r.batch))*16 + r.Stats.Frees*tombstoneBytes
}

// EscapeHistogram returns, for each tracked allocation, its escape count —
// the raw data behind Figure 5.
func (r *Runtime) EscapeHistogram() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var out []int
	r.Table.ForEach(func(a *Allocation) bool {
		out = append(out, len(a.Escapes))
		return true
	})
	return out
}
