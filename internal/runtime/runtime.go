package runtime

import (
	"fmt"
	"sync"

	"carat/internal/fault"
	"carat/internal/kernel"
	"carat/internal/obs"
)

// World is how the runtime reaches the program's threads. The VM
// implements it: StopTheWorld forces every thread to a safepoint — the
// moral equivalent of the signal handlers in Figure 8 dumping register
// state on their stacks — and returns the threads' register snapshots for
// patching. ResumeTheWorld releases the barrier.
type World interface {
	StopTheWorld() []RegSet
	ResumeTheWorld()
}

// RegSet exposes one stopped thread's pointer-bearing registers.
type RegSet interface {
	// Regs returns the register values.
	Regs() []uint64
	// SetReg patches register i.
	SetReg(i int, v uint64)
}

// BoundedWorld is a World that can also pause in bounded batches: stop,
// run one patch batch, resume, repeat. The incremental move/swap protocol
// (SetIncremental) uses it to cap every mutator pause at one batch plus
// the barrier round trip instead of the whole patch+copy.
//
// Contract (verified by the internal/worldtest conformance suite):
//
//   - StopBatch stops the world exactly like StopTheWorld and returns the
//     same thread register snapshots; ResumeBatch releases it.
//   - RegSet handles returned by any stop stay valid across ResumeBatch/
//     StopBatch cycles — patching may continue on the same snapshots, and
//     values written through them are visible after the next stop.
//   - Nested stops are rejected: calling StopTheWorld or StopBatch while
//     the world is already stopped panics. The move protocol never nests
//     stops; a nest means re-entrancy the protocol cannot survive.
type BoundedWorld interface {
	World
	// StopBatch stops the world for one incremental batch.
	StopBatch() []RegSet
	// ResumeBatch releases a batch stop, letting every thread run to its
	// next safepoint.
	ResumeBatch()
}

// noWorld is used when the runtime runs without live threads (unit tests,
// offline table manipulation, the mmpolicy pressure harness). It is a
// BoundedWorld so the incremental protocol works — there is simply nobody
// to stop — and it enforces the no-nested-stops contract.
type noWorld struct{ stopped bool }

func (w *noWorld) StopTheWorld() []RegSet {
	if w.stopped {
		panic("runtime: nested world stop")
	}
	w.stopped = true
	return nil
}
func (w *noWorld) ResumeTheWorld() { w.stopped = false }
func (w *noWorld) StopBatch() []RegSet {
	return w.StopTheWorld()
}
func (w *noWorld) ResumeBatch() { w.stopped = false }

// Stats is the runtime's typed view over its obs.Registry metrics
// (Figures 5-7). Each field is a live handle into the registry under the
// carat.runtime.* namespace; read with Get(). The runtime layer owns
// allocation/escape *tracking* and the per-move cost breakdown — page
// lifecycle counts (grants, frees, moves) are owned by carat.kernel.*
// (see DESIGN.md "Observability" for the full ownership table).
type Stats struct {
	Allocs        *obs.Counter // carat.alloc callbacks
	Frees         *obs.Counter // carat.free callbacks
	EscapeEvents  *obs.Counter // carat.escape callbacks (pre-batching)
	EscapesLive   *obs.Gauge   // escapes currently tracked
	BatchFlushes  *obs.Counter
	UntrackedEsc  *obs.Counter // escapes whose target was not a tracked allocation
	TrackingCycle *obs.Counter // modeled cycles spent in tracking callbacks
	SwapOuts      *obs.Counter
	SwapIns       *obs.Counter
	SwapCycles    *obs.Counter // modeled world-stopped cycles across all swaps
	Moves         *obs.Counter // completed kernel-initiated moves
	MoveCycles    *obs.Counter // total modeled cycles across all moves
	MoveRollbacks *obs.Counter // aborted moves rolled back to the pre-move state
	BatchPauses   *obs.Counter // bounded stop windows opened by the incremental protocol
	FlushRetries  *obs.Counter // escape-buffer flushes retried after an injected failure
	MemoHits      *obs.Gauge   // shard-memo fast-path hits on escape resolution
	MemoMisses    *obs.Gauge   // shard-memo misses (full tree descent)
}

func newStats(reg *obs.Registry) Stats {
	return Stats{
		Allocs:        reg.Counter("carat.runtime.allocs"),
		Frees:         reg.Counter("carat.runtime.frees"),
		EscapeEvents:  reg.Counter("carat.runtime.escape_events"),
		EscapesLive:   reg.Gauge("carat.runtime.escapes_live"),
		BatchFlushes:  reg.Counter("carat.runtime.batch_flushes"),
		UntrackedEsc:  reg.Counter("carat.runtime.untracked_escapes"),
		TrackingCycle: reg.Counter("carat.runtime.tracking_cycles"),
		SwapOuts:      reg.Counter("carat.runtime.swap_outs"),
		SwapIns:       reg.Counter("carat.runtime.swap_ins"),
		SwapCycles:    reg.Counter("carat.runtime.swap_cycles"),
		Moves:         reg.Counter("carat.runtime.moves"),
		MoveCycles:    reg.Counter("carat.runtime.move_cycles"),
		MoveRollbacks: reg.Counter("carat.runtime.move_rollbacks"),
		BatchPauses:   reg.Counter("carat.runtime.batch_pauses"),
		FlushRetries:  reg.Counter("carat.runtime.flush_retries"),
		MemoHits:      reg.Gauge("carat.runtime.table.memo_hits"),
		MemoMisses:    reg.Gauge("carat.runtime.table.memo_misses"),
	}
}

// Modeled per-operation tracking costs in cycles. An allocation insert is
// a red/black tree insert (pointer chasing, ~L2 latencies); an escape is
// an amortized batched hash insert. These constants put the tracking
// overhead in the low single-digit percent range the paper measures
// (Figure 7: geomean 1.9%).
const (
	cycAllocInsert = 40
	cycFree        = 30
	cycEscapeEnq   = 2  // append to batch buffer
	cycEscapeProc  = 10 // table lookup + set insert at flush time
)

// Runtime is the CARAT runtime linked into the program (§4.2). It keeps
// the Allocation Table and escape map current via the injected callbacks,
// and executes the kernel's protection and mapping change requests.
//
// Concurrency: the table is internally sharded (see AllocationTable), so
// the tracking callbacks take no runtime-wide lock — TrackEscape appends
// to a per-thread EscapeBuffer and the occasional flush runs under the
// shard locks. opMu serializes the heavyweight map-changing operations
// (moves, swaps, protect) against each other; stateMu guards the cold
// registration state. No lock is ever held while user callbacks (move and
// invalidation listeners) run, so a listener may freely re-enter
// TrackAlloc/TrackFree or even start another move.
type Runtime struct {
	Table *AllocationTable
	Stats Stats

	// Obs is the registry backing Stats; moveHist is the log-scale
	// histogram of per-move total cycles (carat.runtime.move_cycles_hist);
	// pauseHist is the all-causes world-stop pause histogram (PauseHist).
	Obs       *obs.Registry
	moveHist  *obs.Histogram
	pauseHist *obs.Histogram

	mem *kernel.PhysMem

	// opMu serializes moves, swaps, and protect flips. It is released
	// before listeners fire.
	opMu sync.Mutex

	// stateMu guards the fields below (registration-time state and the
	// swap-slot directory).
	stateMu       sync.Mutex
	tr            *obs.Tracer
	inj           *fault.Injector
	world         World
	bufs          []*EscapeBuffer
	moveListeners []func(src, dst, length uint64)
	invListeners  []func(base, length uint64)

	// swapSlots holds evicted allocations (see swap.go); a nil entry is a
	// slot that has been swapped back in. Guarded by opMu.
	swapSlots []*swapRecord

	// MoveStats collects one breakdown per completed move. Appends happen
	// under opMu; readers (experiment harnesses) read between runs.
	MoveStats []MoveBreakdown

	// defBuf is the escape buffer behind the plain TrackEscape entry
	// point; batchMax is the per-buffer flush threshold.
	defBuf   *EscapeBuffer
	batchMax int

	// moveBatch, when positive, enables the incremental bounded-pause
	// move/swap protocol with that many escape patches per stop window
	// (see pause.go). Zero is the committed legacy full-stop protocol.
	// Guarded by stateMu.
	moveBatch int
}

// SetIncremental enables the incremental bounded-pause protocol with the
// given patch batch size (escape patches per stop window); batch <= 0
// disables it, restoring the legacy full-stop protocol. Batches below
// MinMoveBatch are clamped up so the bounded-pause guarantee (PauseBound)
// covers every metered work item. The protocol only engages when the
// installed World is a BoundedWorld; otherwise moves fall back to legacy
// attribution. Incremental mode never changes the program clock or the
// fault-injection draw sequence — modeled cycles and memory digests are
// byte-identical with the flag on or off.
func (r *Runtime) SetIncremental(batch int) {
	if batch > 0 && batch < MinMoveBatch {
		batch = MinMoveBatch
	}
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	if batch <= 0 {
		batch = 0
	}
	r.moveBatch = batch
}

// IncrementalBatch returns the configured incremental batch size (0 when
// the legacy protocol is active).
func (r *Runtime) IncrementalBatch() int {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.moveBatch
}

// AddMoveListener registers fn to run after every completed move, while
// the world is still stopped. Listeners run outside all runtime locks: a
// listener may re-enter the runtime (TrackAlloc, TrackFree, even another
// move).
func (r *Runtime) AddMoveListener(fn func(src, dst, length uint64)) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.moveListeners = append(r.moveListeners, fn)
}

// AddInvalidationListener registers fn to run after an operation changed
// the address map without going through the move protocol — swap-out and
// swap-in — with the affected byte range. The VM uses this to invalidate
// its per-thread guard/translation caches; mmpolicy-driven swaps reach the
// VM the same way. Listeners run outside all runtime locks.
func (r *Runtime) AddInvalidationListener(fn func(base, length uint64)) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.invListeners = append(r.invListeners, fn)
}

func (r *Runtime) copyMoveListeners() []func(src, dst, length uint64) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	out := make([]func(src, dst, length uint64), len(r.moveListeners))
	copy(out, r.moveListeners)
	return out
}

func (r *Runtime) copyInvListeners() []func(base, length uint64) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	out := make([]func(base, length uint64), len(r.invListeners))
	copy(out, r.invListeners)
	return out
}

// notifyInvalidate runs the invalidation listeners for [base, base+length).
func (r *Runtime) notifyInvalidate(base, length uint64) {
	for _, fn := range r.copyInvListeners() {
		fn(base, length)
	}
}

// PauseHist names the all-causes world-stop pause histogram. Every
// stop-the-world window — moves (including aborted ones), protection
// flips, swap-outs, swap-ins — observes its modeled duration here and
// into a per-cause histogram named PauseHist + "." + cause. The p50/p95/
// p99 of this histogram are the bounded-pause evidence the incremental-
// move work will be judged against; observations never feed back into
// the VM's cycle count, so attaching the histogram cannot perturb
// modeled results.
const PauseHist = "carat.runtime.pause_cycles"

// PauseCauses enumerates the world-stop causes the runtime attributes
// pauses to (the per-cause histogram suffixes).
var PauseCauses = []string{"move", "move_abort", "protect", "swap_out", "swap_in"}

// observePause records one world-stop window of the given modeled length.
// Observe-only: callers must not charge cycles to the program clock here.
func (r *Runtime) observePause(cause string, cycles uint64) {
	r.pauseHist.Observe(cycles)
	r.Obs.Histogram(PauseHist + "." + cause).Observe(cycles)
	r.tracer().Instant("pause", "protocol",
		obs.A("cause", cause), obs.A("cycles", cycles))
}

type escapeEvent struct {
	loc, val uint64
}

// DefaultBatchSize is the escape batch flush threshold.
const DefaultBatchSize = 1024

// New creates a runtime over the given physical memory. world may be nil
// when no threads exist yet. Metrics go to a private registry; use
// NewWith to share one across layers.
func New(mem *kernel.PhysMem, world World) *Runtime {
	return NewWith(mem, world, nil)
}

// NewWith is New with an explicit metrics registry (created if nil).
func NewWith(mem *kernel.PhysMem, world World, reg *obs.Registry) *Runtime {
	if world == nil {
		world = &noWorld{}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Runtime{
		Table:     NewAllocationTable(),
		Stats:     newStats(reg),
		Obs:       reg,
		moveHist:  reg.Histogram("carat.runtime.move_cycles_hist"),
		pauseHist: reg.Histogram(PauseHist),
		mem:       mem,
		world:     world,
		batchMax:  DefaultBatchSize,
	}
	r.defBuf = r.NewEscapeBuffer()
	return r
}

// SetTracer attaches an event tracer (nil disables tracing).
func (r *Runtime) SetTracer(tr *obs.Tracer) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.tr = tr
}

func (r *Runtime) tracer() *obs.Tracer {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.tr
}

// SetInjector attaches a fault injector (nil disables injection). The
// runtime's injection points are mid-move aborts at Fig-8 step boundaries,
// per-escape patch failures, swap I/O errors and delays, and escape-buffer
// flush failures; see internal/fault.
func (r *Runtime) SetInjector(in *fault.Injector) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.inj = in
}

func (r *Runtime) injector() *fault.Injector {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.inj
}

// SetWorld installs the thread controller (the VM does this at startup).
func (r *Runtime) SetWorld(w World) {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.world = w
}

func (r *Runtime) getWorld() World {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.world
}

// TrackAlloc is the carat.alloc callback: a new allocation [base,
// base+length) exists.
func (r *Runtime) TrackAlloc(base, length uint64) error {
	return r.trackAlloc(base, length, false)
}

// TrackStatic records a load-time (static) allocation: a global, the
// stack, or program code.
func (r *Runtime) TrackStatic(base, length uint64) error {
	return r.trackAlloc(base, length, true)
}

func (r *Runtime) trackAlloc(base, length uint64, static bool) error {
	if _, err := r.Table.Insert(base, length, static); err != nil {
		return err
	}
	r.Stats.Allocs.Inc()
	r.Stats.TrackingCycle.Add(cycAllocInsert)
	return nil
}

// TrackFree is the carat.free callback.
func (r *Runtime) TrackFree(base uint64) error {
	// Pending escapes may reference the dying allocation: flush first so
	// stale batch entries cannot resurrect it.
	r.Flush()
	a := r.Table.Remove(base)
	if a == nil {
		return fmt.Errorf("runtime: free of untracked allocation %#x", base)
	}
	if a.Static {
		// Reinsert: freeing a static allocation is a program bug, and the
		// table must stay consistent.
		_, _ = r.Table.Insert(a.Base, a.Len, true)
		return fmt.Errorf("runtime: free of static allocation %#x", base)
	}
	r.Stats.Frees.Inc()
	r.Stats.TrackingCycle.Add(cycFree)
	return nil
}

// EscapeBuffer is a per-thread escape-event batch (§4.2: "The Allocation
// Map changes slowly, while the Allocation to Escape Map changes quickly.
// By batching the latter, we can mitigate redundant/outdated work.").
// Each VM thread owns one, so the hot tracking path contends on nothing
// wider than its own buffer; the batch drains into the sharded table at
// the flush threshold, at world stops, and at queries.
type EscapeBuffer struct {
	r      *Runtime
	mu     sync.Mutex
	events []escapeEvent
}

// NewEscapeBuffer creates and registers a per-thread escape buffer. The
// runtime drains all registered buffers at world stops and queries.
func (r *Runtime) NewEscapeBuffer() *EscapeBuffer {
	b := &EscapeBuffer{r: r}
	r.stateMu.Lock()
	r.bufs = append(r.bufs, b)
	r.stateMu.Unlock()
	return b
}

// Track appends one escape event; the buffer self-flushes at the batch
// threshold.
func (b *EscapeBuffer) Track(loc, val uint64) {
	r := b.r
	r.Stats.EscapeEvents.Inc()
	r.Stats.TrackingCycle.Add(cycEscapeEnq)
	b.mu.Lock()
	b.events = append(b.events, escapeEvent{loc, val})
	full := len(b.events) >= r.batchMax
	b.mu.Unlock()
	if full {
		b.Flush()
	}
}

// Flush drains this buffer into the table. An injected flush failure is
// retried to completion: moves and swaps patch from the escape map under a
// stopped world, so a flush that silently gave up would leave them patching
// from stale data — the drain must land before this returns.
func (b *EscapeBuffer) Flush() {
	b.mu.Lock()
	drain := append([]escapeEvent(nil), b.events...)
	b.events = b.events[:0]
	b.mu.Unlock()
	for b.r.injector().Should(fault.FlushFail) {
		b.r.Stats.FlushRetries.Inc()
	}
	b.r.apply(drain)
}

func (b *EscapeBuffer) footprint() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return uint64(cap(b.events)) * 16
}

// TrackEscape is the carat.escape callback: memory location loc now holds
// the pointer value val. Events are batched through the default buffer;
// threaded callers use a dedicated EscapeBuffer instead.
func (r *Runtime) TrackEscape(loc, val uint64) { r.defBuf.Track(loc, val) }

// Flush drains every registered escape buffer into the table.
func (r *Runtime) Flush() {
	r.stateMu.Lock()
	bufs := append([]*EscapeBuffer(nil), r.bufs...)
	r.stateMu.Unlock()
	for _, b := range bufs {
		b.Flush()
	}
}

// apply drains one batch into the sharded table. Within a batch only the
// last write to a location matters: dedupe so outdated work is dropped
// (the batching win the paper describes).
func (r *Runtime) apply(events []escapeEvent) {
	if len(events) == 0 {
		return
	}
	last := make(map[uint64]uint64, len(events))
	order := make([]uint64, 0, len(events))
	for _, e := range events {
		if _, seen := last[e.loc]; !seen {
			order = append(order, e.loc)
		}
		last[e.loc] = e.val
	}
	for _, loc := range order {
		val := last[loc]
		if kernel.IsPoison(val) || val == 0 {
			r.Table.RemoveEscape(loc)
			continue
		}
		if !r.Table.AddEscape(loc, val) {
			r.Stats.UntrackedEsc.Inc()
		}
		r.Stats.TrackingCycle.Add(cycEscapeProc)
	}
	r.Stats.BatchFlushes.Inc()
	r.Stats.EscapesLive.Set(uint64(r.Table.EscapeCount()))
	hits, misses := r.Table.MemoStats()
	r.Stats.MemoHits.Set(hits)
	r.Stats.MemoMisses.Set(misses)
}

// UntrackStackRange drops every non-static allocation fully inside
// [lo, hi): the runtime's handling of stack-frame destruction. The VM
// calls it when a function activation returns, destroying its allocas
// (§4.1.2: "The runtime handles static and stack allocations as well").
func (r *Runtime) UntrackStackRange(lo, hi uint64) {
	r.Flush()
	var dead []uint64
	for _, a := range r.Table.Overlapping(lo, hi) {
		if !a.Static && a.Base >= lo && a.End() <= hi {
			dead = append(dead, a.Base)
		}
	}
	for _, base := range dead {
		r.Table.Remove(base)
	}
}

// tombstoneBytes is the record the prototype retains per freed allocation
// (allocation history kept for diagnostics and move auditing). This
// retention is what makes allocation-churn benchmarks like swaptions the
// memory-overhead outlier in Figure 6.
const tombstoneBytes = 48

// MemoryOverheadBytes reports the tracking structures' footprint
// (Figure 6): live table + escape map, the batch buffers, and the retained
// tombstones of freed allocations.
func (r *Runtime) MemoryOverheadBytes() uint64 {
	r.stateMu.Lock()
	bufs := append([]*EscapeBuffer(nil), r.bufs...)
	r.stateMu.Unlock()
	var batch uint64
	for _, b := range bufs {
		batch += b.footprint()
	}
	return r.Table.MemoryFootprint() + batch + r.Stats.Frees.Get()*tombstoneBytes
}

// EscapeHistogram returns, for each tracked allocation, its escape count —
// the raw data behind Figure 5.
func (r *Runtime) EscapeHistogram() []int {
	r.Flush()
	var out []int
	r.Table.ForEach(func(a *Allocation) bool {
		out = append(out, a.EscapeCount())
		return true
	})
	return out
}
