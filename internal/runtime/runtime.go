package runtime

import (
	"fmt"
	"sync"

	"carat/internal/kernel"
	"carat/internal/obs"
)

// World is how the runtime reaches the program's threads. The VM
// implements it: StopTheWorld forces every thread to a safepoint — the
// moral equivalent of the signal handlers in Figure 8 dumping register
// state on their stacks — and returns the threads' register snapshots for
// patching. ResumeTheWorld releases the barrier.
type World interface {
	StopTheWorld() []RegSet
	ResumeTheWorld()
}

// RegSet exposes one stopped thread's pointer-bearing registers.
type RegSet interface {
	// Regs returns the register values.
	Regs() []uint64
	// SetReg patches register i.
	SetReg(i int, v uint64)
}

// noWorld is used when the runtime runs without live threads (unit tests,
// offline table manipulation).
type noWorld struct{}

func (noWorld) StopTheWorld() []RegSet { return nil }
func (noWorld) ResumeTheWorld()        {}

// Stats is the runtime's typed view over its obs.Registry metrics
// (Figures 5-7). Each field is a live handle into the registry under the
// carat.runtime.* namespace; read with Get(). The runtime layer owns
// allocation/escape *tracking* and the per-move cost breakdown — page
// lifecycle counts (grants, frees, moves) are owned by carat.kernel.*
// (see DESIGN.md "Observability" for the full ownership table).
type Stats struct {
	Allocs        *obs.Counter // carat.alloc callbacks
	Frees         *obs.Counter // carat.free callbacks
	EscapeEvents  *obs.Counter // carat.escape callbacks (pre-batching)
	EscapesLive   *obs.Gauge   // escapes currently tracked
	BatchFlushes  *obs.Counter
	UntrackedEsc  *obs.Counter // escapes whose target was not a tracked allocation
	TrackingCycle *obs.Counter // modeled cycles spent in tracking callbacks
	SwapOuts      *obs.Counter
	SwapIns       *obs.Counter
	Moves         *obs.Counter // completed kernel-initiated moves
	MoveCycles    *obs.Counter // total modeled cycles across all moves
}

func newStats(reg *obs.Registry) Stats {
	return Stats{
		Allocs:        reg.Counter("carat.runtime.allocs"),
		Frees:         reg.Counter("carat.runtime.frees"),
		EscapeEvents:  reg.Counter("carat.runtime.escape_events"),
		EscapesLive:   reg.Gauge("carat.runtime.escapes_live"),
		BatchFlushes:  reg.Counter("carat.runtime.batch_flushes"),
		UntrackedEsc:  reg.Counter("carat.runtime.untracked_escapes"),
		TrackingCycle: reg.Counter("carat.runtime.tracking_cycles"),
		SwapOuts:      reg.Counter("carat.runtime.swap_outs"),
		SwapIns:       reg.Counter("carat.runtime.swap_ins"),
		Moves:         reg.Counter("carat.runtime.moves"),
		MoveCycles:    reg.Counter("carat.runtime.move_cycles"),
	}
}

// Modeled per-operation tracking costs in cycles. An allocation insert is
// a red/black tree insert (pointer chasing, ~L2 latencies); an escape is
// an amortized batched hash insert. These constants put the tracking
// overhead in the low single-digit percent range the paper measures
// (Figure 7: geomean 1.9%).
const (
	cycAllocInsert = 40
	cycFree        = 30
	cycEscapeEnq   = 2  // append to batch buffer
	cycEscapeProc  = 10 // table lookup + set insert at flush time
)

// Runtime is the CARAT runtime linked into the program (§4.2). It keeps
// the Allocation Table and escape map current via the injected callbacks,
// and executes the kernel's protection and mapping change requests.
type Runtime struct {
	Table *AllocationTable
	Stats Stats

	// Obs is the registry backing Stats; moveHist is the log-scale
	// histogram of per-move total cycles (carat.runtime.move_cycles_hist).
	Obs      *obs.Registry
	moveHist *obs.Histogram
	tr       *obs.Tracer

	mem   *kernel.PhysMem
	world World

	mu sync.Mutex

	// Escape batching (§4.2: "The Allocation Map changes slowly, while the
	// Allocation to Escape Map changes quickly. By batching the latter, we
	// can mitigate redundant/outdated work.")
	batch     []escapeEvent
	batchMax  int
	MoveStats []MoveBreakdown

	// moveListeners are notified, world still stopped, after a move has
	// patched memory and registers; the VM uses this to rebase its own
	// non-program bookkeeping (heap break, stack bases, global addresses).
	moveListeners []func(src, dst, length uint64)

	// swapSlots holds evicted allocations (see swap.go); a nil entry is a
	// slot that has been swapped back in.
	swapSlots []*swapRecord
}

// AddMoveListener registers fn to run after every completed move, while
// the world is still stopped.
func (r *Runtime) AddMoveListener(fn func(src, dst, length uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.moveListeners = append(r.moveListeners, fn)
}

type escapeEvent struct {
	loc, val uint64
}

// DefaultBatchSize is the escape batch flush threshold.
const DefaultBatchSize = 1024

// New creates a runtime over the given physical memory. world may be nil
// when no threads exist yet. Metrics go to a private registry; use
// NewWith to share one across layers.
func New(mem *kernel.PhysMem, world World) *Runtime {
	return NewWith(mem, world, nil)
}

// NewWith is New with an explicit metrics registry (created if nil).
func NewWith(mem *kernel.PhysMem, world World, reg *obs.Registry) *Runtime {
	if world == nil {
		world = noWorld{}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Runtime{
		Table:    NewAllocationTable(),
		Stats:    newStats(reg),
		Obs:      reg,
		moveHist: reg.Histogram("carat.runtime.move_cycles_hist"),
		mem:      mem,
		world:    world,
		batchMax: DefaultBatchSize,
	}
}

// SetTracer attaches an event tracer (nil disables tracing).
func (r *Runtime) SetTracer(tr *obs.Tracer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tr = tr
}

// SetWorld installs the thread controller (the VM does this at startup).
func (r *Runtime) SetWorld(w World) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.world = w
}

// TrackAlloc is the carat.alloc callback: a new allocation [base,
// base+length) exists.
func (r *Runtime) TrackAlloc(base, length uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackAllocLocked(base, length, false)
}

// TrackStatic records a load-time (static) allocation: a global, the
// stack, or program code.
func (r *Runtime) TrackStatic(base, length uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trackAllocLocked(base, length, true)
}

func (r *Runtime) trackAllocLocked(base, length uint64, static bool) error {
	if _, err := r.Table.Insert(base, length, static); err != nil {
		return err
	}
	r.Stats.Allocs.Inc()
	r.Stats.TrackingCycle.Add(cycAllocInsert)
	return nil
}

// TrackFree is the carat.free callback.
func (r *Runtime) TrackFree(base uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Pending escapes may reference the dying allocation: flush first so
	// stale batch entries cannot resurrect it.
	r.flushLocked()
	a := r.Table.Remove(base)
	if a == nil {
		return fmt.Errorf("runtime: free of untracked allocation %#x", base)
	}
	if a.Static {
		// Reinsert: freeing a static allocation is a program bug, and the
		// table must stay consistent.
		_, _ = r.Table.Insert(a.Base, a.Len, true)
		return fmt.Errorf("runtime: free of static allocation %#x", base)
	}
	r.Stats.Frees.Inc()
	r.Stats.TrackingCycle.Add(cycFree)
	return nil
}

// TrackEscape is the carat.escape callback: memory location loc now holds
// the pointer value val. Events are batched; the batch drains at the flush
// threshold, at world stops, and at queries.
func (r *Runtime) TrackEscape(loc, val uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Stats.EscapeEvents.Inc()
	r.Stats.TrackingCycle.Add(cycEscapeEnq)
	r.batch = append(r.batch, escapeEvent{loc, val})
	if len(r.batch) >= r.batchMax {
		r.flushLocked()
	}
}

// Flush drains the escape batch into the table.
func (r *Runtime) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

func (r *Runtime) flushLocked() {
	if len(r.batch) == 0 {
		return
	}
	// Within a batch only the last write to a location matters: dedupe so
	// outdated work is dropped (the batching win the paper describes).
	last := make(map[uint64]uint64, len(r.batch))
	order := make([]uint64, 0, len(r.batch))
	for _, e := range r.batch {
		if _, seen := last[e.loc]; !seen {
			order = append(order, e.loc)
		}
		last[e.loc] = e.val
	}
	for _, loc := range order {
		val := last[loc]
		if kernel.IsPoison(val) || val == 0 {
			r.Table.RemoveEscape(loc)
			continue
		}
		if !r.Table.AddEscape(loc, val) {
			r.Stats.UntrackedEsc.Inc()
		}
		r.Stats.TrackingCycle.Add(cycEscapeProc)
	}
	r.batch = r.batch[:0]
	r.Stats.BatchFlushes.Inc()
	r.Stats.EscapesLive.Set(uint64(r.Table.EscapeCount()))
}

// UntrackStackRange drops every non-static allocation fully inside
// [lo, hi): the runtime's handling of stack-frame destruction. The VM
// calls it when a function activation returns, destroying its allocas
// (§4.1.2: "The runtime handles static and stack allocations as well").
func (r *Runtime) UntrackStackRange(lo, hi uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var dead []uint64
	for _, a := range r.Table.Overlapping(lo, hi) {
		if !a.Static && a.Base >= lo && a.End() <= hi {
			dead = append(dead, a.Base)
		}
	}
	for _, base := range dead {
		r.Table.Remove(base)
	}
}

// tombstoneBytes is the record the prototype retains per freed allocation
// (allocation history kept for diagnostics and move auditing). This
// retention is what makes allocation-churn benchmarks like swaptions the
// memory-overhead outlier in Figure 6.
const tombstoneBytes = 48

// MemoryOverheadBytes reports the tracking structures' footprint
// (Figure 6): live table + escape map, the batch buffer, and the retained
// tombstones of freed allocations.
func (r *Runtime) MemoryOverheadBytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Table.MemoryFootprint() + uint64(cap(r.batch))*16 + r.Stats.Frees.Get()*tombstoneBytes
}

// EscapeHistogram returns, for each tracked allocation, its escape count —
// the raw data behind Figure 5.
func (r *Runtime) EscapeHistogram() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var out []int
	r.Table.ForEach(func(a *Allocation) bool {
		out = append(out, len(a.Escapes))
		return true
	})
	return out
}
