package runtime

import (
	"fmt"
)

// Allocation is one tracked memory block: a static allocation (global,
// stack region) or a dynamic one (malloc, alloca). Escapes is the
// Allocation to Escape Map entry: the set of memory addresses that hold a
// pointer into this allocation (§4.2 "Tracking").
type Allocation struct {
	Base uint64
	Len  uint64
	// Escapes holds the addresses of memory locations containing a
	// pointer into [Base, Base+Len). Implemented as the Go analogue of
	// the paper's C++ unordered_set.
	Escapes map[uint64]struct{}
	// Static marks load-time allocations (globals, stacks) that free()
	// must never release.
	Static bool
}

// End returns one past the allocation's last byte.
func (a *Allocation) End() uint64 { return a.Base + a.Len }

// Covers reports whether addr falls inside the allocation.
func (a *Allocation) Covers(addr uint64) bool { return addr >= a.Base && addr < a.End() }

// AllocationTable is the runtime's hard-state structure: a red/black tree
// keyed by allocation base address (§4.2), answering point queries
// ("which allocation covers this address?") and range queries ("which
// allocations overlap this page range?").
type AllocationTable struct {
	tree rbTree
	// locToAlloc maps an escape location to the allocation its stored
	// pointer targets, so that overwriting a pointer retargets the escape.
	locToAlloc map[uint64]*Allocation

	// escapeCount tracks the total escapes across all allocations.
	escapeCount int
}

// NewAllocationTable returns an empty table.
func NewAllocationTable() *AllocationTable {
	return &AllocationTable{locToAlloc: make(map[uint64]*Allocation)}
}

// Len returns the number of tracked allocations.
func (t *AllocationTable) Len() int { return t.tree.Len() }

// EscapeCount returns the total number of tracked escapes.
func (t *AllocationTable) EscapeCount() int { return t.escapeCount }

// Insert records a new allocation. Overlapping an existing allocation is
// an error: the tracked program produced inconsistent callbacks.
func (t *AllocationTable) Insert(base, length uint64, static bool) (*Allocation, error) {
	if length == 0 {
		return nil, fmt.Errorf("runtime: zero-length allocation at %#x", base)
	}
	if a := t.Covering(base); a != nil {
		return nil, fmt.Errorf("runtime: allocation [%#x,%#x) overlaps existing [%#x,%#x)",
			base, base+length, a.Base, a.End())
	}
	if _, next, ok := t.tree.Ceiling(base); ok && next.Base < base+length {
		return nil, fmt.Errorf("runtime: allocation [%#x,%#x) overlaps following [%#x,%#x)",
			base, base+length, next.Base, next.End())
	}
	a := &Allocation{Base: base, Len: length, Escapes: make(map[uint64]struct{}), Static: static}
	t.tree.Insert(base, a)
	return a, nil
}

// Remove drops the allocation based exactly at base, unlinking all of its
// escapes. It returns the removed allocation, or nil if none was tracked.
func (t *AllocationTable) Remove(base uint64) *Allocation {
	a := t.tree.Get(base)
	if a == nil {
		return nil
	}
	for loc := range a.Escapes {
		delete(t.locToAlloc, loc)
	}
	t.escapeCount -= len(a.Escapes)
	t.tree.Delete(base)
	return a
}

// Covering returns the allocation containing addr, or nil. This is the
// core query of both escape resolution and move negotiation.
func (t *AllocationTable) Covering(addr uint64) *Allocation {
	_, a, ok := t.tree.Floor(addr)
	if !ok || !a.Covers(addr) {
		return nil
	}
	return a
}

// Overlapping returns the allocations intersecting [lo, hi), in address
// order.
func (t *AllocationTable) Overlapping(lo, hi uint64) []*Allocation {
	var out []*Allocation
	// An allocation with base < lo can still overlap: check the floor.
	if _, a, ok := t.tree.Floor(lo); ok && a.End() > lo && a.Base < hi {
		out = append(out, a)
	}
	t.tree.Ascend(lo, hi, func(_ uint64, a *Allocation) bool {
		if len(out) > 0 && out[len(out)-1] == a {
			return true
		}
		if a.Base >= hi {
			return false
		}
		out = append(out, a)
		return true
	})
	return out
}

// AddEscape records that memory location loc holds a pointer into the
// allocation covering target. If loc previously escaped a different
// allocation, that stale escape is removed first (the location was
// overwritten). It reports whether the target was a tracked allocation.
func (t *AllocationTable) AddEscape(loc, target uint64) bool {
	if prev, ok := t.locToAlloc[loc]; ok {
		delete(prev.Escapes, loc)
		delete(t.locToAlloc, loc)
		t.escapeCount--
	}
	a := t.Covering(target)
	if a == nil {
		return false
	}
	a.Escapes[loc] = struct{}{}
	t.locToAlloc[loc] = a
	t.escapeCount++
	return true
}

// RemoveEscape forgets the escape at loc (the location was overwritten
// with a non-pointer or destroyed).
func (t *AllocationTable) RemoveEscape(loc uint64) {
	if prev, ok := t.locToAlloc[loc]; ok {
		delete(prev.Escapes, loc)
		delete(t.locToAlloc, loc)
		t.escapeCount--
	}
}

// EscapeTarget returns the allocation the escape at loc points into, if
// tracked.
func (t *AllocationTable) EscapeTarget(loc uint64) (*Allocation, bool) {
	a, ok := t.locToAlloc[loc]
	return a, ok
}

// relinkEscape records that loc escapes into allocation a, maintaining the
// reverse index and counts; used when swap-in reconstructs an allocation's
// escape set.
func (t *AllocationTable) relinkEscape(loc uint64, a *Allocation) {
	if prev, ok := t.locToAlloc[loc]; ok {
		if prev == a {
			return
		}
		delete(prev.Escapes, loc)
		t.escapeCount--
	}
	a.Escapes[loc] = struct{}{}
	t.locToAlloc[loc] = a
	t.escapeCount++
}

// Rebase moves allocation a (which must be tracked) so its base becomes
// newBase, keeping escape sets attached. Escape locations are NOT
// rewritten here; the move engine handles location rebasing since it knows
// the moved byte range.
func (t *AllocationTable) Rebase(a *Allocation, newBase uint64) {
	t.tree.Delete(a.Base)
	a.Base = newBase
	t.tree.Insert(a.Base, a)
}

// RebaseEscapeLocs rewrites every tracked escape location within
// [lo, hi) to location-lo+newLo, in both the per-allocation escape sets
// and the reverse index. It returns how many locations moved. The move
// engine calls this when the moved byte range itself contained pointers.
func (t *AllocationTable) RebaseEscapeLocs(lo, hi, newLo uint64) int {
	type moved struct {
		oldLoc, newLoc uint64
		a              *Allocation
	}
	var ms []moved
	for loc, a := range t.locToAlloc {
		if loc >= lo && loc < hi {
			ms = append(ms, moved{loc, loc - lo + newLo, a})
		}
	}
	for _, m := range ms {
		delete(m.a.Escapes, m.oldLoc)
		delete(t.locToAlloc, m.oldLoc)
		m.a.Escapes[m.newLoc] = struct{}{}
		t.locToAlloc[m.newLoc] = m.a
	}
	return len(ms)
}

// ForEach visits all allocations in address order.
func (t *AllocationTable) ForEach(fn func(*Allocation) bool) {
	t.tree.AscendAll(func(_ uint64, a *Allocation) bool { return fn(a) })
}

// MemoryFootprint estimates the bytes the table's data structures occupy,
// for the Figure 6 tracking-memory-overhead experiment: tree nodes plus
// escape-set and reverse-index entries.
func (t *AllocationTable) MemoryFootprint() uint64 {
	const (
		nodeBytes  = 64 // rb node + Allocation header
		entryBytes = 48 // one escape: set entry + reverse-map entry
	)
	return uint64(t.tree.Len())*nodeBytes + uint64(t.escapeCount)*entryBytes
}

// CheckInvariants verifies the red-black tree shape, that allocations do
// not overlap, and that the reverse escape index is consistent. Tests and
// the property suite call this after mutation storms.
func (t *AllocationTable) CheckInvariants() error {
	if err := t.tree.checkInvariants(); err != nil {
		return err
	}
	var prev *Allocation
	var bad error
	count := 0
	t.tree.AscendAll(func(_ uint64, a *Allocation) bool {
		if prev != nil && prev.End() > a.Base {
			bad = fmt.Errorf("runtime: allocations overlap: [%#x,%#x) then [%#x,%#x)",
				prev.Base, prev.End(), a.Base, a.End())
			return false
		}
		count += len(a.Escapes)
		for loc := range a.Escapes {
			if t.locToAlloc[loc] != a {
				bad = fmt.Errorf("runtime: reverse index missing escape %#x", loc)
				return false
			}
		}
		prev = a
		return true
	})
	if bad != nil {
		return bad
	}
	if count != t.escapeCount {
		return fmt.Errorf("runtime: escape count %d != tracked %d", count, t.escapeCount)
	}
	if count != len(t.locToAlloc) {
		return fmt.Errorf("runtime: reverse index size %d != escapes %d", len(t.locToAlloc), count)
	}
	return nil
}
