package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// escShards is the number of escape shards. Escape locations are hashed
// across shards so concurrent trackers (the multi-process pressure
// workloads) contend on different locks; 16 is comfortably above the
// process counts those harnesses run.
const escShards = 16

// shardOf hashes an escape location to its shard. The low 4 bits below the
// 16-byte allocator alignment are dropped so consecutive pointer slots
// spread across shards.
func shardOf(loc uint64) int { return int((loc >> 4) & (escShards - 1)) }

// Allocation is one tracked memory block: a static allocation (global,
// stack region) or a dynamic one (malloc, alloca). The escape set — the
// Allocation to Escape Map entry of §4.2 "Tracking" — is stored sharded by
// escape location: escs[s] holds this allocation's escapes whose location
// hashes to shard s, and is guarded by that shard's lock.
type Allocation struct {
	Base uint64
	Len  uint64
	// Static marks load-time allocations (globals, stacks) that free()
	// must never release.
	Static bool

	escs [escShards]map[uint64]struct{}
}

// End returns one past the allocation's last byte.
func (a *Allocation) End() uint64 { return a.Base + a.Len }

// Covers reports whether addr falls inside the allocation.
func (a *Allocation) Covers(addr uint64) bool { return addr >= a.Base && addr < a.End() }

// EscapeCount returns the number of tracked escapes into this allocation.
// It reads the sharded sets unsynchronized: callers must hold the table
// quiescent (world stopped, or single-threaded use).
func (a *Allocation) EscapeCount() int {
	n := 0
	for s := range a.escs {
		n += len(a.escs[s])
	}
	return n
}

// EscapeLocs returns the escape locations of this allocation, unordered.
// Same quiescence requirement as EscapeCount.
func (a *Allocation) EscapeLocs() []uint64 {
	out := make([]uint64, 0, a.EscapeCount())
	for s := range a.escs {
		for loc := range a.escs[s] {
			out = append(out, loc)
		}
	}
	return out
}

func (a *Allocation) addEsc(loc uint64) {
	s := shardOf(loc)
	if a.escs[s] == nil {
		a.escs[s] = make(map[uint64]struct{})
	}
	a.escs[s][loc] = struct{}{}
}

func (a *Allocation) delEsc(loc uint64) {
	delete(a.escs[shardOf(loc)], loc)
}

// escShard is one lock domain of the escape map: the reverse index for
// locations hashing here, plus a last-allocation memo exploiting
// TrackEscape's locality (consecutive escapes overwhelmingly target the
// same allocation, so the memo short-circuits the rbtree descent).
type escShard struct {
	mu         sync.Mutex
	locToAlloc map[uint64]*Allocation
	memo       *Allocation
}

// AllocationTable is the runtime's hard-state structure (§4.2): a red/black
// tree keyed by allocation base address answering point queries ("which
// allocation covers this address?") and range queries ("which allocations
// overlap this page range?"), plus the sharded location→allocation reverse
// index for escapes.
//
// Concurrency: the tree is guarded by treeMu (allocations and frees are
// rare next to escapes); each shard's reverse index, memo, and the escs
// sub-maps of every allocation for that shard are guarded by the shard
// lock. Lock order is treeMu before shard locks, shard locks in ascending
// index order. Individual operations are atomic; multi-step sequences (the
// move protocol) get their atomicity from the world stop, as in the paper.
type AllocationTable struct {
	treeMu sync.RWMutex
	tree   rbTree

	shards [escShards]escShard

	// escapeCount tracks the total escapes across all allocations.
	escapeCount atomic.Int64

	// memoHits/memoMisses count shard-memo outcomes for the
	// carat.runtime.table.* metrics.
	memoHits   atomic.Uint64
	memoMisses atomic.Uint64
}

// NewAllocationTable returns an empty table.
func NewAllocationTable() *AllocationTable {
	t := &AllocationTable{}
	for i := range t.shards {
		t.shards[i].locToAlloc = make(map[uint64]*Allocation)
	}
	return t
}

// Len returns the number of tracked allocations.
func (t *AllocationTable) Len() int {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	return t.tree.Len()
}

// EscapeCount returns the total number of tracked escapes.
func (t *AllocationTable) EscapeCount() int { return int(t.escapeCount.Load()) }

// MemoStats returns the shard-memo hit/miss counts.
func (t *AllocationTable) MemoStats() (hits, misses uint64) {
	return t.memoHits.Load(), t.memoMisses.Load()
}

// lockShards takes every shard lock in order; the caller must already hold
// treeMu (either mode) or be otherwise ordered before shard locks.
func (t *AllocationTable) lockShards() {
	for i := range t.shards {
		t.shards[i].mu.Lock()
	}
}

func (t *AllocationTable) unlockShards() {
	for i := range t.shards {
		t.shards[i].mu.Unlock()
	}
}

// Insert records a new allocation. Overlapping an existing allocation is
// an error: the tracked program produced inconsistent callbacks.
func (t *AllocationTable) Insert(base, length uint64, static bool) (*Allocation, error) {
	if length == 0 {
		return nil, fmt.Errorf("runtime: zero-length allocation at %#x", base)
	}
	t.treeMu.Lock()
	defer t.treeMu.Unlock()
	if _, a, ok := t.tree.Floor(base); ok && a.Covers(base) {
		return nil, fmt.Errorf("runtime: allocation [%#x,%#x) overlaps existing [%#x,%#x)",
			base, base+length, a.Base, a.End())
	}
	if _, next, ok := t.tree.Ceiling(base); ok && next.Base < base+length {
		return nil, fmt.Errorf("runtime: allocation [%#x,%#x) overlaps following [%#x,%#x)",
			base, base+length, next.Base, next.End())
	}
	a := &Allocation{Base: base, Len: length, Static: static}
	t.tree.Insert(base, a)
	return a, nil
}

// Remove drops the allocation based exactly at base, unlinking all of its
// escapes. It returns the removed allocation, or nil if none was tracked.
func (t *AllocationTable) Remove(base uint64) *Allocation {
	t.treeMu.Lock()
	defer t.treeMu.Unlock()
	a := t.tree.Get(base)
	if a == nil {
		return nil
	}
	removed := 0
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for loc := range a.escs[s] {
			delete(sh.locToAlloc, loc)
			removed++
		}
		if sh.memo == a {
			// The memo must never outlive its allocation: a stale memo
			// would report coverage for freed (and later reused) space.
			sh.memo = nil
		}
		sh.mu.Unlock()
	}
	t.escapeCount.Add(int64(-removed))
	t.tree.Delete(base)
	return a
}

// Covering returns the allocation containing addr, or nil. This is the
// core query of both escape resolution and move negotiation.
func (t *AllocationTable) Covering(addr uint64) *Allocation {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	return t.coveringLocked(addr)
}

func (t *AllocationTable) coveringLocked(addr uint64) *Allocation {
	_, a, ok := t.tree.Floor(addr)
	if !ok || !a.Covers(addr) {
		return nil
	}
	return a
}

// Overlapping returns the allocations intersecting [lo, hi), in address
// order.
func (t *AllocationTable) Overlapping(lo, hi uint64) []*Allocation {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	var out []*Allocation
	// An allocation with base < lo can still overlap: check the floor.
	if _, a, ok := t.tree.Floor(lo); ok && a.End() > lo && a.Base < hi {
		out = append(out, a)
	}
	t.tree.Ascend(lo, hi, func(_ uint64, a *Allocation) bool {
		if len(out) > 0 && out[len(out)-1] == a {
			return true
		}
		if a.Base >= hi {
			return false
		}
		out = append(out, a)
		return true
	})
	return out
}

// AddEscape records that memory location loc holds a pointer into the
// allocation covering target. If loc previously escaped a different
// allocation, that stale escape is removed first (the location was
// overwritten). It reports whether the target was a tracked allocation.
func (t *AllocationTable) AddEscape(loc, target uint64) bool {
	s := shardOf(loc)
	sh := &t.shards[s]
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.locToAlloc[loc]; ok {
		delete(prev.escs[s], loc)
		delete(sh.locToAlloc, loc)
		t.escapeCount.Add(-1)
	}
	var a *Allocation
	if m := sh.memo; m != nil && m.Covers(target) {
		a = m
		t.memoHits.Add(1)
	} else {
		a = t.coveringLocked(target)
		t.memoMisses.Add(1)
		if a != nil {
			sh.memo = a
		}
	}
	if a == nil {
		return false
	}
	if a.escs[s] == nil {
		a.escs[s] = make(map[uint64]struct{})
	}
	a.escs[s][loc] = struct{}{}
	sh.locToAlloc[loc] = a
	t.escapeCount.Add(1)
	return true
}

// RemoveEscape forgets the escape at loc (the location was overwritten
// with a non-pointer or destroyed).
func (t *AllocationTable) RemoveEscape(loc uint64) {
	s := shardOf(loc)
	sh := &t.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.locToAlloc[loc]; ok {
		delete(prev.escs[s], loc)
		delete(sh.locToAlloc, loc)
		t.escapeCount.Add(-1)
	}
}

// EscapeTarget returns the allocation the escape at loc points into, if
// tracked.
func (t *AllocationTable) EscapeTarget(loc uint64) (*Allocation, bool) {
	sh := &t.shards[shardOf(loc)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a, ok := sh.locToAlloc[loc]
	return a, ok
}

// EscapeLocsOf snapshots allocation a's escape locations under the shard
// locks; the move and swap engines iterate the snapshot while patching.
func (t *AllocationTable) EscapeLocsOf(a *Allocation) []uint64 {
	var out []uint64
	for s := range t.shards {
		sh := &t.shards[s]
		sh.mu.Lock()
		for loc := range a.escs[s] {
			out = append(out, loc)
		}
		sh.mu.Unlock()
	}
	return out
}

// relinkEscape records that loc escapes into allocation a, maintaining the
// reverse index and counts; used when swap-in reconstructs an allocation's
// escape set.
func (t *AllocationTable) relinkEscape(loc uint64, a *Allocation) {
	s := shardOf(loc)
	sh := &t.shards[s]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.locToAlloc[loc]; ok {
		if prev == a {
			return
		}
		delete(prev.escs[s], loc)
		t.escapeCount.Add(-1)
	}
	if a.escs[s] == nil {
		a.escs[s] = make(map[uint64]struct{})
	}
	a.escs[s][loc] = struct{}{}
	sh.locToAlloc[loc] = a
	t.escapeCount.Add(1)
}

// Rebase moves allocation a (which must be tracked) so its base becomes
// newBase, keeping escape sets attached. Escape locations are NOT
// rewritten here; the move engine handles location rebasing since it knows
// the moved byte range. Shard memos stay valid: they reference a itself,
// and Covers reads the live Base/Len.
func (t *AllocationTable) Rebase(a *Allocation, newBase uint64) {
	t.treeMu.Lock()
	defer t.treeMu.Unlock()
	t.tree.Delete(a.Base)
	a.Base = newBase
	t.tree.Insert(a.Base, a)
}

// RebaseEscapeLocs rewrites every tracked escape location within
// [lo, hi) to location-lo+newLo, in both the per-allocation escape sets
// and the reverse index. A rewritten location may hash to a different
// shard, so all shard locks are held. It returns how many locations moved.
// The move engine calls this when the moved byte range itself contained
// pointers.
func (t *AllocationTable) RebaseEscapeLocs(lo, hi, newLo uint64) int {
	type moved struct {
		oldLoc, newLoc uint64
		a              *Allocation
	}
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	t.lockShards()
	defer t.unlockShards()
	var ms []moved
	for s := range t.shards {
		for loc, a := range t.shards[s].locToAlloc {
			if loc >= lo && loc < hi {
				ms = append(ms, moved{loc, loc - lo + newLo, a})
			}
		}
	}
	for _, m := range ms {
		m.a.delEsc(m.oldLoc)
		delete(t.shards[shardOf(m.oldLoc)].locToAlloc, m.oldLoc)
		m.a.addEsc(m.newLoc)
		t.shards[shardOf(m.newLoc)].locToAlloc[m.newLoc] = m.a
	}
	return len(ms)
}

// ForEach visits all allocations in address order. The callback must not
// call table mutators (treeMu is held for reading across the walk).
func (t *AllocationTable) ForEach(fn func(*Allocation) bool) {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	t.tree.AscendAll(func(_ uint64, a *Allocation) bool { return fn(a) })
}

// MemoryFootprint estimates the bytes the table's data structures occupy,
// for the Figure 6 tracking-memory-overhead experiment: tree nodes plus
// escape-set and reverse-index entries.
func (t *AllocationTable) MemoryFootprint() uint64 {
	const (
		nodeBytes  = 64 // rb node + Allocation header
		entryBytes = 48 // one escape: set entry + reverse-map entry
	)
	t.treeMu.RLock()
	n := uint64(t.tree.Len())
	t.treeMu.RUnlock()
	return n*nodeBytes + uint64(t.EscapeCount())*entryBytes
}

// MaybeCheckInvariants runs CheckInvariants only in caratdebug builds; hot
// test loops call this so the full-table walk doesn't dominate ordinary
// runs (satellite: debug-gated invariant checking).
func (t *AllocationTable) MaybeCheckInvariants() error {
	if !debugInvariants {
		return nil
	}
	return t.CheckInvariants()
}

// CheckInvariants verifies the red-black tree shape, that allocations do
// not overlap, that the reverse escape index is consistent, and that every
// escape location lives in the shard its hash selects. Tests and the
// property suite call this after mutation storms; MaybeCheckInvariants is
// the debug-gated variant for hot loops.
func (t *AllocationTable) CheckInvariants() error {
	t.treeMu.RLock()
	defer t.treeMu.RUnlock()
	t.lockShards()
	defer t.unlockShards()
	if err := t.tree.checkInvariants(); err != nil {
		return err
	}
	var prev *Allocation
	var bad error
	count := 0
	t.tree.AscendAll(func(_ uint64, a *Allocation) bool {
		if prev != nil && prev.End() > a.Base {
			bad = fmt.Errorf("runtime: allocations overlap: [%#x,%#x) then [%#x,%#x)",
				prev.Base, prev.End(), a.Base, a.End())
			return false
		}
		for s := range a.escs {
			count += len(a.escs[s])
			for loc := range a.escs[s] {
				if shardOf(loc) != s {
					bad = fmt.Errorf("runtime: escape %#x stored in shard %d, hashes to %d",
						loc, s, shardOf(loc))
					return false
				}
				if t.shards[s].locToAlloc[loc] != a {
					bad = fmt.Errorf("runtime: reverse index missing escape %#x", loc)
					return false
				}
			}
		}
		prev = a
		return true
	})
	if bad != nil {
		return bad
	}
	if count != int(t.escapeCount.Load()) {
		return fmt.Errorf("runtime: escape count %d != tracked %d", count, t.escapeCount.Load())
	}
	rev := 0
	for s := range t.shards {
		for loc, a := range t.shards[s].locToAlloc {
			if shardOf(loc) != s {
				return fmt.Errorf("runtime: reverse entry %#x in shard %d, hashes to %d",
					loc, s, shardOf(loc))
			}
			if _, ok := a.escs[s][loc]; !ok {
				return fmt.Errorf("runtime: reverse entry %#x missing from allocation set", loc)
			}
		}
		rev += len(t.shards[s].locToAlloc)
	}
	if rev != count {
		return fmt.Errorf("runtime: reverse index size %d != escapes %d", rev, count)
	}
	return nil
}
