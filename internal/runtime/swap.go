package runtime

import (
	"fmt"

	"carat/internal/fault"
	"carat/internal/kernel"
	"carat/internal/obs"
)

// Swap support (§2.2): "To make a page unavailable, we patch its affected
// pointers to a physical address that will cause a fault. ... the specific
// non-canonical address can be used to encode different conditions (e.g.,
// swapped, demand-page, 'null pointer', etc)."
//
// SwapOut evicts one allocation: its bytes move to a swap slot and every
// escaped pointer (and in-register pointer) is patched to a non-canonical
// poison address encoding (slot, offset). The next guard on such a pointer
// faults; the fault handler calls SwapIn, which restores the data at a new
// physical location and patches every poisoned pointer forward.

// maxSwapLen bounds a swappable allocation so the offset fits the poison
// encoding's 16 offset bits.
const maxSwapLen = 1 << 16

type swapRecord struct {
	data    []byte
	length  uint64
	escapes map[uint64]uint64 // escape location -> offset within the allocation
	static  bool
}

// swapPoison encodes (slot, offset) into the non-canonical range.
func swapPoison(slot, off uint64) uint64 {
	return kernel.Poison(kernel.PoisonSwapped) | slot<<16 | off
}

// DecodeSwapPoison splits a poison address into (slot, offset). The second
// return is false if addr is not a swapped-pointer poison.
func DecodeSwapPoison(addr uint64) (slot, off uint64, ok bool) {
	if !kernel.IsPoison(addr) {
		return 0, 0, false
	}
	// Mask out the non-canonical prefix (bit 47 of the upper half) before
	// reading the kind field.
	if kernel.PoisonKind(addr>>32&0x7FFF) != kernel.PoisonSwapped {
		return 0, 0, false
	}
	return addr >> 16 & 0xFFFF, addr & 0xFFFF, true
}

// SwapOut evicts the allocation based at base into a swap slot, patching
// all of its escapes and in-register pointers to poison addresses. The
// vacated bytes are zeroed (the kernel is free to reuse the frames).
func (r *Runtime) SwapOut(base uint64) (uint64, error) {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()
	slot, length, err := r.swapOutLocked(base, regs)
	if err != nil {
		return 0, err
	}
	// The address map changed without a move: tell invalidation listeners
	// (the VM's guard caches) which bytes went away. Outside all locks.
	r.notifyInvalidate(base, length)
	return slot, nil
}

func (r *Runtime) swapOutLocked(base uint64, regs []RegSet) (uint64, uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	a := r.Table.Covering(base)
	if a == nil || a.Base != base {
		return 0, 0, fmt.Errorf("runtime: swap-out of untracked allocation %#x", base)
	}
	if a.Len > maxSwapLen {
		return 0, 0, fmt.Errorf("runtime: allocation too large to swap (%d bytes)", a.Len)
	}
	slot := uint64(len(r.swapSlots))
	if slot >= 1<<16 {
		return 0, 0, fmt.Errorf("runtime: out of swap slots")
	}
	// An injected I/O error models the write to the swap device failing.
	// Checked before any mutation, so a failed swap-out leaves the
	// allocation untouched and the caller simply skips or retries it.
	if err := r.injector().Fail(fault.SwapOutIO, fmt.Sprintf("slot %d write", slot)); err != nil {
		return 0, 0, err
	}

	rec := &swapRecord{length: a.Len, escapes: make(map[uint64]uint64), static: a.Static}
	data, err := r.mem.ReadAt(base, a.Len)
	if err != nil {
		return 0, 0, err
	}
	rec.data = data

	// Swaps take no batch-boundary faults: they mutate nothing the undo log
	// could restore (the poison patches are each individually reversible,
	// and a half-poisoned allocation is safe — poisoned pointers fault into
	// the swap-in path, unpoisoned ones still see live data at base).
	meter := r.newPauseMeter("swap_out", false)

	// Patch escapes to poison and remember their offsets.
	for _, loc := range r.Table.EscapeLocsOf(a) {
		val := r.mem.Load64(loc)
		if val >= base && val < base+a.Len {
			off := val - base
			r.mem.Store64(loc, swapPoison(slot, off))
			rec.escapes[loc] = off
			meter.add(cycEscapePatch) // never errors: no boundary fault point
		}
	}
	// Patch registers.
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			if v >= base && v < base+a.Len {
				rs.SetReg(i, swapPoison(slot, v-base))
			}
		}
	}
	r.Table.Remove(base)
	if err := r.mem.Zero(base, a.Len); err != nil {
		return 0, 0, err
	}
	r.swapSlots = append(r.swapSlots, rec)
	r.Stats.SwapOuts.Inc()
	// Modeled world-stop length of this swap: the barrier round trip, one
	// patch per poisoned escape, and the copy to the swap device. Observe-
	// only — swaps charge nothing to the program clock, so neither does the
	// pause accounting.
	// SwapCycles keeps the whole-operation formula in both modes; the pause
	// meter only re-attributes it. In incremental mode the copy to the swap
	// device is off-pause (it happens under I/O, not under the stop).
	pause := uint64(cycBarrier) + uint64(len(rec.escapes))*cycEscapePatch + a.Len*cycPerByteMove
	r.Stats.SwapCycles.Add(pause)
	meter.finish(pause)
	r.tracer().Instant("swap.out", "paging",
		obs.A("slot", slot), obs.A("bytes", a.Len), obs.A("escapes", len(rec.escapes)))
	return slot, a.Len, nil
}

// SwappedLen returns the byte length of the allocation in a swap slot.
func (r *Runtime) SwappedLen(slot uint64) (uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	if slot >= uint64(len(r.swapSlots)) || r.swapSlots[slot] == nil {
		return 0, fmt.Errorf("runtime: bad swap slot %d", slot)
	}
	return r.swapSlots[slot].length, nil
}

// SwapIn restores swap slot's allocation at newBase (caller-allocated, at
// least SwappedLen bytes) and patches every poisoned pointer — in memory
// and in registers — forward to the new location.
func (r *Runtime) SwapIn(slot, newBase uint64) error {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()
	length, err := r.swapInLocked(slot, newBase, regs)
	if err != nil {
		return err
	}
	// The destination range now maps live data it did not before: stale
	// cache entries covering it must go. Outside all locks.
	r.notifyInvalidate(newBase, length)
	return nil
}

func (r *Runtime) swapInLocked(slot, newBase uint64, regs []RegSet) (uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	if slot >= uint64(len(r.swapSlots)) || r.swapSlots[slot] == nil {
		return 0, fmt.Errorf("runtime: swap-in of bad slot %d", slot)
	}
	// An injected I/O error models the read from the swap device failing.
	// Checked before any mutation, so the slot stays intact and the fault
	// handler can retry the swap-in.
	if err := r.injector().Fail(fault.SwapInIO, fmt.Sprintf("slot %d read", slot)); err != nil {
		return 0, err
	}
	rec := r.swapSlots[slot]
	if err := r.mem.WriteAt(newBase, rec.data); err != nil {
		return 0, err
	}
	a, err := r.Table.Insert(newBase, rec.length, rec.static)
	if err != nil {
		return 0, fmt.Errorf("runtime: swap-in: %w", err)
	}
	meter := r.newPauseMeter("swap_in", false)
	for loc, off := range rec.escapes {
		r.mem.Store64(loc, newBase+off)
		r.Table.relinkEscape(loc, a)
		meter.add(cycEscapePatch) // never errors: no boundary fault point
	}
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			if s, off, ok := DecodeSwapPoison(v); ok && s == slot {
				rs.SetReg(i, newBase+off)
			}
		}
	}
	r.swapSlots[slot] = nil
	r.Stats.SwapIns.Inc()
	// Mirror of the swap-out pause model: barrier + per-pointer forward
	// patches + the copy back from the swap device.
	pause := uint64(cycBarrier) + uint64(len(rec.escapes))*cycEscapePatch + rec.length*cycPerByteMove
	r.Stats.SwapCycles.Add(pause)
	meter.finish(pause)
	r.tracer().Instant("swap.in", "paging", obs.A("slot", slot), obs.A("bytes", rec.length))
	return rec.length, nil
}

// rebaseSwapLocs keeps swap-record escape locations valid across page and
// allocation moves: a location inside a moved range is itself relocated.
// Callers hold opMu.
func (r *Runtime) rebaseSwapLocs(src, dst, length uint64) {
	for _, rec := range r.swapSlots {
		if rec == nil {
			continue
		}
		var moved [][2]uint64
		for loc, off := range rec.escapes {
			if loc >= src && loc < src+length {
				moved = append(moved, [2]uint64{loc, off})
			}
		}
		for _, m := range moved {
			delete(rec.escapes, m[0])
			rec.escapes[m[0]-src+dst] = m[1]
		}
	}
}
