package runtime

import (
	"fmt"

	"carat/internal/fault"
)

// The pause meter: bounded-window pause attribution for the incremental
// move/swap protocol.
//
// The legacy protocol stops the world once and observes the whole
// operation's modeled cost as a single pause. The incremental protocol
// keeps the same phases, the same fault-injection draw order, and the same
// program-clock formulas, but slices the stop-window *work* — table
// lookups, allocation scans, escape patches, register patches, metadata
// rebases — into windows of at most one batch, separated by ResumeBatch/
// StopBatch round trips on a BoundedWorld. Each window observes
// cycBarrier + (work in window) into the pause histograms, so no recorded
// pause ever exceeds PauseBound(batch).
//
// Work that a production implementation performs concurrently with the
// mutators — destination page allocation and the data copy, both protected
// by the guard-level forwarding window — is charged to the program clock
// exactly as in legacy mode but attributed off-pause.

// DefaultMoveBatch is the default incremental batch size: escape patches
// per stop window.
const DefaultMoveBatch = 8

// MinMoveBatch is the smallest accepted batch size. The window budget
// (MinMoveBatch * cycEscapePatch = 220 cycles) must exceed the largest
// single metered work item (a table lookup, cycTableLookup = 130), so a
// lone item can never blow the bounded-pause guarantee.
const MinMoveBatch = 4

// PauseBound returns the worst-case single pause of the incremental
// protocol at the given batch size: one barrier round trip plus one full
// batch of patch work. The soak harness's bounded-pause gate asserts the
// observed pause maximum against this.
func PauseBound(batch int) uint64 {
	if batch < MinMoveBatch {
		batch = MinMoveBatch
	}
	return cycBarrier + uint64(batch)*cycEscapePatch
}

// BatchForBudget returns the largest batch size whose PauseBound stays
// within budget modeled cycles (the mmpolicy max-pause knob). Budgets too
// small for even the minimum batch clamp to MinMoveBatch.
func BatchForBudget(budget uint64) int {
	min := PauseBound(MinMoveBatch)
	if budget <= min {
		return MinMoveBatch
	}
	return int((budget - cycBarrier) / cycEscapePatch)
}

// pauseMeter accumulates the stop-window work of one map-changing
// operation. In legacy mode (bw nil) it is inert: the caller observes the
// single whole-operation pause itself via finish/abort. In incremental
// mode it closes a window whenever the next work item would overflow the
// batch budget: observe the window's pause, resume the mutators, check the
// batch-boundary fault point, and stop again for the next batch.
type pauseMeter struct {
	r     *Runtime
	cause string
	bw    BoundedWorld // nil => legacy single-window attribution
	inj   *fault.Injector
	chunk uint64 // work-cycle budget per window
	acc   uint64 // work accumulated in the open window

	// checkBoundary consults fault.MoveBatch at every window close. Moves
	// set it (the undo log makes a boundary abort safe); swaps do not
	// (they mutate nothing until their single commit step).
	checkBoundary bool
}

// newPauseMeter builds the meter for one operation. Incremental windows
// engage only when SetIncremental is on AND the installed world supports
// bounded stops.
func (r *Runtime) newPauseMeter(cause string, checkBoundary bool) *pauseMeter {
	m := &pauseMeter{r: r, cause: cause}
	batch := r.IncrementalBatch()
	if batch <= 0 {
		return m
	}
	bw, ok := r.getWorld().(BoundedWorld)
	if !ok {
		return m
	}
	m.bw = bw
	m.chunk = uint64(batch) * cycEscapePatch
	m.inj = r.injector()
	m.checkBoundary = checkBoundary
	return m
}

// incremental reports whether this meter runs bounded windows.
func (m *pauseMeter) incremental() bool { return m.bw != nil }

// add charges c cycles of stop-window work, closing the window first if c
// would overflow it. The returned error is a batch-boundary abort.
func (m *pauseMeter) add(c uint64) error {
	if m.bw == nil {
		return nil
	}
	if m.acc > 0 && m.acc+c > m.chunk {
		if err := m.boundary(); err != nil {
			return err
		}
	}
	m.acc += c
	return nil
}

// addBulk charges n items of c cycles each, allowing window boundaries
// between items.
func (m *pauseMeter) addBulk(n int, c uint64) error {
	for i := 0; i < n; i++ {
		if err := m.add(c); err != nil {
			return err
		}
	}
	return nil
}

// boundary closes the current window: observe its pause, resume the
// mutators to their next safepoints, and stop again for the next batch.
// The RegSet handles from the operation's opening stop stay valid across
// the round trip (BoundedWorld contract), so patching continues on the
// same snapshots. An injected fault.MoveBatch fires here — the only place
// an incremental operation can abort that the legacy protocol cannot.
func (m *pauseMeter) boundary() error {
	m.closeWindow()
	m.bw.ResumeBatch()
	var err error
	if m.checkBoundary {
		if ferr := m.inj.Fail(fault.MoveBatch, m.cause+" batch boundary"); ferr != nil {
			err = fmt.Errorf("runtime: %s aborted at batch boundary: %w", m.cause, ferr)
		}
	}
	m.bw.StopBatch()
	return err
}

func (m *pauseMeter) closeWindow() {
	m.r.observePause(m.cause, cycBarrier+m.acc)
	m.r.Stats.BatchPauses.Inc()
	m.acc = 0
}

// finish observes the final window of a successful operation. legacyTotal
// is the whole-operation modeled pause recorded when incremental windows
// are off — byte-identical to the committed legacy attribution.
func (m *pauseMeter) finish(legacyTotal uint64) {
	if m.bw == nil {
		m.r.observePause(m.cause, legacyTotal)
		return
	}
	m.closeWindow()
}

// abort observes the window in which the operation failed under the abort
// cause. In incremental mode, windows closed before the abort were already
// published under the operation's own cause; only the aborting window
// lands in the abort histogram.
func (m *pauseMeter) abort(cause string, legacyTotal uint64) {
	if m.bw == nil {
		m.r.observePause(cause, legacyTotal)
		return
	}
	m.r.observePause(cause, cycBarrier+m.acc)
	m.r.Stats.BatchPauses.Inc()
	m.acc = 0
}
