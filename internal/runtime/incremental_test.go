package runtime

import (
	"reflect"
	"strings"
	"testing"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/kernel"
)

// buildDenseMoveFixture is buildMoveFixture with enough in-range escapes
// that an incremental move crosses several batch boundaries: one allocation
// on the to-be-moved page with escapeCount pointers to it parked on a later
// page, plus a pointer-bearing register file.
func buildDenseMoveFixture(t *testing.T, escapeCount int) (*kernel.Kernel, *kernel.Process, *Runtime, *fakeWorld, *fakeRegs, uint64) {
	t.Helper()
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	allocA := base + 64
	if err := rt.TrackAlloc(allocA, 1024); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < escapeCount; i++ {
		loc := base + 2*kernel.PageSize + uint64(i)*8
		val := allocA + uint64(i)*8
		k.Mem.Store64(loc, val)
		rt.TrackEscape(loc, val)
	}
	rt.Flush()
	regs := &fakeRegs{vals: []uint64{allocA + 96, 12345, allocA + 128}}
	world := &fakeWorld{regs: []*fakeRegs{regs}}
	rt.SetWorld(world)
	return k, p, rt, world, regs, base
}

// TestIncrementalMoveMatchesLegacy runs the same move under the legacy and
// the incremental protocol and requires the end states to be identical:
// memory image, regions, table, registers, free frames, the per-move
// breakdown, and the program-clock contribution. Only the pause attribution
// may differ — and in incremental mode every recorded pause must respect
// the PauseBound guarantee.
func TestIncrementalMoveMatchesLegacy(t *testing.T) {
	const escapes = 24
	const batch = MinMoveBatch

	type result struct {
		snap machineSnap
		bd   MoveBreakdown
		mc   uint64
	}
	run := func(incremental bool) (result, *Runtime, *fakeWorld) {
		k, p, rt, world, regs, base := buildDenseMoveFixture(t, escapes)
		if incremental {
			rt.SetIncremental(batch)
		}
		if _, err := p.RequestMove(base, 1); err != nil {
			t.Fatalf("move (incremental=%v): %v", incremental, err)
		}
		if len(rt.MoveStats) != 1 {
			t.Fatalf("move stats = %d entries", len(rt.MoveStats))
		}
		return result{
			snap: snapshot(k, p, rt, regs),
			bd:   rt.MoveStats[0],
			mc:   rt.Stats.MoveCycles.Get(),
		}, rt, world
	}

	legacy, lrt, lworld := run(false)
	incr, irt, iworld := run(true)

	if !reflect.DeepEqual(legacy.snap, incr.snap) {
		t.Errorf("end states differ:\n legacy      %+v\n incremental %+v", legacy.snap, incr.snap)
	}
	if legacy.bd != incr.bd {
		t.Errorf("move breakdowns differ:\n legacy      %+v\n incremental %+v", legacy.bd, incr.bd)
	}
	if legacy.mc != incr.mc {
		t.Errorf("program-clock move cycles differ: legacy %d, incremental %d", legacy.mc, incr.mc)
	}

	// Pause structure: legacy is one whole-operation stop; incremental is
	// several bounded windows, none exceeding the bound.
	if lworld.batchStops != 0 || lrt.Stats.BatchPauses.Get() != 0 {
		t.Errorf("legacy move opened batch windows: stops %d, pauses %d",
			lworld.batchStops, lrt.Stats.BatchPauses.Get())
	}
	if iworld.batchStops == 0 {
		t.Error("incremental move crossed no batch boundary despite dense escapes")
	}
	if iworld.batchStops != iworld.batchResumes {
		t.Errorf("batch stops/resumes unpaired: %d/%d", iworld.batchStops, iworld.batchResumes)
	}
	windows := irt.Stats.BatchPauses.Get()
	if want := uint64(iworld.batchStops + 1); windows != want {
		t.Errorf("batch pauses = %d, want boundaries+1 = %d", windows, want)
	}
	lh := lrt.Obs.Histogram(PauseHist).Snapshot()
	ih := irt.Obs.Histogram(PauseHist).Snapshot()
	bound := PauseBound(batch)
	if ih.Max > bound {
		t.Errorf("incremental pause max %d exceeds PauseBound(%d) = %d", ih.Max, batch, bound)
	}
	if lh.Max <= bound {
		t.Errorf("legacy pause max %d unexpectedly within the incremental bound %d — fixture too small", lh.Max, bound)
	}
	// Legacy attributes the whole operation (including page allocation and
	// the data copy) to one pause; incremental attributes only the metered
	// stop-window work — the prototype cost minus the opening barrier —
	// plus one barrier per window. The difference is exactly the off-pause
	// movement cost and the extra barrier round trips.
	if lh.Sum != legacy.bd.TotalCycles() {
		t.Errorf("legacy pause sum %d != whole-operation cycles %d", lh.Sum, legacy.bd.TotalCycles())
	}
	wantSum := incr.bd.PrototypeCycles() - cycBarrier + windows*cycBarrier
	if ih.Sum != wantSum {
		t.Errorf("incremental pause sum %d, want metered work + %d barriers = %d", ih.Sum, windows, wantSum)
	}
}

// TestIncrementalAbortAtEveryBatchBoundary arms fault.MoveBatch at each
// boundary an incremental move crosses, in turn, and requires the PR-5 undo
// log to restore the machine bit-identically — then the same move must
// succeed once the fault is exhausted. This is the per-batch extension of
// TestAbortAtEveryStepBoundaryRollsBack.
func TestIncrementalAbortAtEveryBatchBoundary(t *testing.T) {
	const escapes = 24
	const batch = MinMoveBatch

	// Discover how many boundaries a clean run crosses.
	_, p0, rt0, world0, _, base0 := buildDenseMoveFixture(t, escapes)
	rt0.SetIncremental(batch)
	if _, err := p0.RequestMove(base0, 1); err != nil {
		t.Fatalf("clean incremental move: %v", err)
	}
	boundaries := world0.batchStops
	if boundaries < 2 {
		t.Fatalf("fixture crosses only %d boundaries; need >= 2 for a meaningful sweep", boundaries)
	}

	for nth := 1; nth <= boundaries; nth++ {
		k, p, rt, _, regs, base := buildDenseMoveFixture(t, escapes)
		rt.SetIncremental(batch)
		inj := fault.New(1, nil)
		rt.SetInjector(inj)

		before := snapshot(k, p, rt, regs)
		vetoesBefore := k.Stats.MoveVetoes.Get()

		inj.Arm(fault.MoveBatch, nth)
		_, err := p.RequestMove(base, 1)
		if err == nil {
			t.Fatalf("boundary %d: armed batch abort did not fail the move", nth)
		}
		if !fault.Injected(err) {
			t.Fatalf("boundary %d: move error lost the injected fault: %v", nth, err)
		}
		if !strings.Contains(err.Error(), "aborted at batch boundary") {
			t.Errorf("boundary %d: unexpected abort error: %v", nth, err)
		}

		after := snapshot(k, p, rt, regs)
		if !reflect.DeepEqual(before, after) {
			t.Errorf("boundary %d: state differs after rollback:\n before %+v\n after  %+v", nth, before, after)
		}
		if err := rt.Table.CheckInvariants(); err != nil {
			t.Errorf("boundary %d: %v", nth, err)
		}
		if got := k.Stats.MoveVetoes.Get(); got != vetoesBefore+1 {
			t.Errorf("boundary %d: move vetoes = %d, want %d", nth, got, vetoesBefore+1)
		}
		if got := rt.Stats.MoveRollbacks.Get(); got != 1 {
			t.Errorf("boundary %d: rollbacks = %d, want 1", nth, got)
		}

		// Fault exhausted: the identical request must now succeed.
		res, err := p.RequestMove(base, 1)
		if err != nil {
			t.Fatalf("boundary %d: move after batch abort: %v", nth, err)
		}
		if res.Dst == res.Src {
			t.Errorf("boundary %d: successful move did not relocate the page", nth)
		}
	}
}

// TestBatchBoundaryFaultInertInLegacyMode: the MoveBatch point is only
// checked when incremental windows are open, so a legacy move must sail
// past an armed batch fault (and consume nothing from it).
func TestBatchBoundaryFaultInertInLegacyMode(t *testing.T) {
	_, p, rt, _, _, base := buildDenseMoveFixture(t, 24)
	inj := fault.New(1, nil)
	rt.SetInjector(inj)
	inj.Arm(fault.MoveBatch, 1)
	if _, err := p.RequestMove(base, 1); err != nil {
		t.Fatalf("legacy move tripped over an armed batch fault: %v", err)
	}
}

// TestIncrementalSwapPauseBounded: swaps run their escape-poisoning under
// the same bounded windows (without boundary faults — they have no undo
// log and need none).
func TestIncrementalSwapPauseBounded(t *testing.T) {
	const batch = MinMoveBatch
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TrackAlloc(base, 2048); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		loc := base + 2048 + uint64(i)*8
		k.Mem.Store64(loc, base+uint64(i)*8)
		rt.TrackEscape(loc, base+uint64(i)*8)
	}
	rt.Flush()
	k.Mem.Store64(base, 0xBEEF)
	rt.SetWorld(&fakeWorld{})
	rt.SetIncremental(batch)

	slot, err := rt.SwapOut(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SwapIn(slot, base); err != nil {
		t.Fatal(err)
	}
	if got := k.Mem.Load64(base); got != 0xBEEF {
		t.Errorf("data after swap round trip = %#x, want 0xBEEF", got)
	}
	if rt.Stats.BatchPauses.Get() == 0 {
		t.Error("incremental swaps opened no batch windows")
	}
	// Escapes outside the allocation don't get poisoned... only pointers
	// into [base, base+2048) count, which all 16 are.
	hist := rt.Obs.Histogram(PauseHist).Snapshot()
	if bound := PauseBound(batch); hist.Max > bound {
		t.Errorf("incremental swap pause max %d exceeds PauseBound(%d) = %d", hist.Max, batch, bound)
	}
	// SwapCycles keeps the legacy whole-operation formula in both modes.
	wantSwap := 2 * (uint64(cycBarrier) + 16*cycEscapePatch + 2048*cycPerByteMove)
	if got := rt.Stats.SwapCycles.Get(); got != wantSwap {
		t.Errorf("swap cycles = %d, want legacy formula %d", got, wantSwap)
	}
}
