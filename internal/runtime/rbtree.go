// Package runtime implements the CARAT runtime (paper §4.2): the Allocation
// Table (a red/black tree keyed by allocation base address), the Allocation
// to Escape Map, batched escape tracking, and the patch engine that executes
// kernel-initiated protection and mapping changes via the world-stop
// protocol of Figure 8.
package runtime

// The red/black tree below is written from scratch (no stdlib container
// fits): an ordered map from uint64 keys to *Allocation supporting
// predecessor queries ("find the allocation covering this address") and
// in-order range iteration ("find all allocations overlapping this page
// range"), both needed on the move path.

type color bool

const (
	red   color = false
	black color = true
)

type rbNode struct {
	key                 uint64
	val                 *Allocation
	left, right, parent *rbNode
	col                 color
}

// rbTree is a left-leaning-free classic red-black tree.
type rbTree struct {
	root *rbNode
	size int
}

// Len returns the number of entries.
func (t *rbTree) Len() int { return t.size }

// Get returns the value stored at key, or nil.
func (t *rbTree) Get(key uint64) *Allocation {
	n := t.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return n.val
		}
	}
	return nil
}

// Floor returns the entry with the largest key <= key, or nil.
func (t *rbTree) Floor(key uint64) (uint64, *Allocation, bool) {
	var best *rbNode
	n := t.root
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return 0, nil, false
	}
	return best.key, best.val, true
}

// Ceiling returns the entry with the smallest key >= key, or nil.
func (t *rbTree) Ceiling(key uint64) (uint64, *Allocation, bool) {
	var best *rbNode
	n := t.root
	for n != nil {
		if n.key == key {
			return n.key, n.val, true
		}
		if n.key > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return 0, nil, false
	}
	return best.key, best.val, true
}

// Ascend calls fn for every entry with lo <= key < hi in key order; fn
// returning false stops the walk.
func (t *rbTree) Ascend(lo, hi uint64, fn func(key uint64, val *Allocation) bool) {
	var walk func(n *rbNode) bool
	walk = func(n *rbNode) bool {
		if n == nil {
			return true
		}
		if n.key >= lo {
			if !walk(n.left) {
				return false
			}
			if n.key < hi {
				if !fn(n.key, n.val) {
					return false
				}
			}
		}
		if n.key < hi {
			return walk(n.right)
		}
		return true
	}
	walk(t.root)
}

// AscendAll walks the whole tree in key order.
func (t *rbTree) AscendAll(fn func(key uint64, val *Allocation) bool) {
	t.Ascend(0, ^uint64(0), fn)
}

func (t *rbTree) rotateLeft(x *rbNode) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *rbTree) rotateRight(x *rbNode) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Insert adds or replaces the entry for key. It returns true when a new
// node was created (false for replacement).
func (t *rbTree) Insert(key uint64, val *Allocation) bool {
	var parent *rbNode
	n := t.root
	for n != nil {
		parent = n
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			n.val = val
			return false
		}
	}
	node := &rbNode{key: key, val: val, col: red, parent: parent}
	switch {
	case parent == nil:
		t.root = node
	case key < parent.key:
		parent.left = node
	default:
		parent.right = node
	}
	t.size++
	t.insertFixup(node)
	return true
}

func (t *rbTree) insertFixup(z *rbNode) {
	for z.parent != nil && z.parent.col == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.col == red {
				z.parent.col = black
				u.col = black
				gp.col = red
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.col = black
				gp.col = red
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if u != nil && u.col == red {
				z.parent.col = black
				u.col = black
				gp.col = red
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.col = black
				gp.col = red
				t.rotateLeft(gp)
			}
		}
	}
	t.root.col = black
}

// Delete removes key and returns whether it was present.
func (t *rbTree) Delete(key uint64) bool {
	z := t.root
	for z != nil && z.key != key {
		if key < z.key {
			z = z.left
		} else {
			z = z.right
		}
	}
	if z == nil {
		return false
	}
	t.size--

	y := z
	yOrig := y.col
	var x *rbNode
	var xParent *rbNode
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right
		for y.left != nil {
			y = y.left
		}
		yOrig = y.col
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.col = z.col
	}
	if yOrig == black {
		t.deleteFixup(x, xParent)
	}
	return true
}

func (t *rbTree) transplant(u, v *rbNode) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *rbTree) deleteFixup(x *rbNode, parent *rbNode) {
	for x != t.root && isBlack(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if w != nil && w.col == red {
				w.col = black
				parent.col = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.left) && isBlack(w.right) {
				w.col = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.right) {
					if w.left != nil {
						w.left.col = black
					}
					w.col = red
					t.rotateRight(w)
					w = parent.right
				}
				w.col = parent.col
				parent.col = black
				if w.right != nil {
					w.right.col = black
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w != nil && w.col == red {
				w.col = black
				parent.col = red
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if isBlack(w.right) && isBlack(w.left) {
				w.col = red
				x = parent
				parent = x.parent
			} else {
				if isBlack(w.left) {
					if w.right != nil {
						w.right.col = black
					}
					w.col = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.col = parent.col
				parent.col = black
				if w.left != nil {
					w.left.col = black
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.col = black
	}
}

func isBlack(n *rbNode) bool { return n == nil || n.col == black }

// checkInvariants validates the red-black properties; used by tests.
func (t *rbTree) checkInvariants() error {
	if t.root != nil && t.root.col != black {
		return errRBRootRed
	}
	_, err := checkNode(t.root)
	return err
}

var (
	errRBRootRed   = rbError("root is red")
	errRBRedRed    = rbError("red node with red child")
	errRBBlackPath = rbError("unequal black heights")
	errRBOrder     = rbError("BST order violated")
)

type rbError string

func (e rbError) Error() string { return "rbtree: " + string(e) }

func checkNode(n *rbNode) (int, error) {
	if n == nil {
		return 1, nil
	}
	if n.col == red {
		if !isBlack(n.left) || !isBlack(n.right) {
			return 0, errRBRedRed
		}
	}
	if n.left != nil && n.left.key >= n.key {
		return 0, errRBOrder
	}
	if n.right != nil && n.right.key <= n.key {
		return 0, errRBOrder
	}
	lh, err := checkNode(n.left)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errRBBlackPath
	}
	if n.col == black {
		lh++
	}
	return lh, nil
}
