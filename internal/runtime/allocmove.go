package runtime

import (
	"fmt"

	"carat/internal/kernel"
)

// This file implements the paper's §6 "Allocation Granularity" extension:
// moving a single allocation instead of whole pages. Because allocations
// move in their entirety by construction, there is no page-expand
// negotiation and no impedance mismatch with page semantics — the paper
// predicts (Table 3's last column) that this removes ~95% of the move cost
// for most benchmarks. MoveAllocationTo realizes that design so the
// ablation benchmark can measure it.

// MoveAllocationTo relocates the single allocation based at base to dst
// (a caller-provided destination of at least the allocation's size that
// must not overlap it). It performs the same world-stop, escape-patch,
// register-patch, data-copy sequence as a page move, minus expansion and
// page negotiation. The recorded MoveBreakdown has zero expand cost.
func (r *Runtime) MoveAllocationTo(base, dst uint64) (MoveBreakdown, error) {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()

	bd, length, err := r.moveAllocationLocked(base, dst, regs)
	if err != nil {
		return bd, err
	}
	// Listeners run with the world still stopped but outside every runtime
	// lock (same contract as HandleMove).
	for _, fn := range r.copyMoveListeners() {
		fn(base, dst, length)
	}
	return bd, nil
}

func (r *Runtime) moveAllocationLocked(base, dst uint64, regs []RegSet) (MoveBreakdown, uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	var bd MoveBreakdown
	a := r.Table.Covering(base)
	if a == nil || a.Base != base {
		return bd, 0, fmt.Errorf("runtime: no allocation based at %#x", base)
	}
	length := a.Len
	if dst < base+length && base < dst+length {
		return bd, 0, fmt.Errorf("runtime: allocation move ranges overlap")
	}
	bd.ExpandCycles = 0 // the whole point: no page expansion
	bd.PatchCycles += cycTableLookup
	bd.AllocsMoved = 1

	// Patch escapes of this allocation.
	for _, loc := range r.Table.EscapeLocsOf(a) {
		bd.PatchCycles += cycEscapePatch
		val := r.mem.Load64(loc)
		if val >= base && val < base+length {
			r.mem.Store64(loc, val-base+dst)
			bd.EscapesPatched++
		}
	}
	// Registers.
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			bd.RegCycles += cycRegScan
			if v >= base && v < base+length {
				rs.SetReg(i, v-base+dst)
				bd.RegCycles += cycRegPatch
				bd.RegsPatched++
			}
		}
	}
	// Table maintenance.
	r.Table.Rebase(a, dst)
	moved := r.Table.RebaseEscapeLocs(base, base+length, dst)
	bd.PatchCycles += uint64(moved) * cycEscapePatch
	r.rebaseSwapLocs(base, dst, length)

	// Copy only the allocation's bytes — not whole pages.
	data, err := r.mem.ReadAt(base, length)
	if err != nil {
		return bd, 0, err
	}
	if err := r.mem.WriteAt(dst, data); err != nil {
		return bd, 0, err
	}
	if err := r.mem.Zero(base, length); err != nil {
		return bd, 0, err
	}
	bd.MoveCycles += length * cycPerByteMove
	bd.PagesMoved = (length + kernel.PageSize - 1) / kernel.PageSize

	r.MoveStats = append(r.MoveStats, bd)
	return bd, length, nil
}

// WorstCaseHeapAllocation returns the base of the most-escaped non-static
// allocation within [lo, hi), for the allocation-granularity ablation
// (which relocates within the heap).
func (r *Runtime) WorstCaseHeapAllocation(lo, hi uint64) (base, length uint64, ok bool) {
	r.Flush()
	var best *Allocation
	bestN := -1
	r.Table.ForEach(func(a *Allocation) bool {
		if a.Static || a.Base < lo || a.End() > hi {
			return true
		}
		if n := a.EscapeCount(); n > bestN {
			best, bestN = a, n
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	return best.Base, best.Len, true
}
