package runtime

import (
	"fmt"

	"carat/internal/kernel"
)

// This file implements the paper's §6 "Allocation Granularity" extension:
// moving a single allocation instead of whole pages. Because allocations
// move in their entirety by construction, there is no page-expand
// negotiation and no impedance mismatch with page semantics — the paper
// predicts (Table 3's last column) that this removes ~95% of the move cost
// for most benchmarks. MoveAllocationTo realizes that design so the
// ablation benchmark can measure it.

// MoveAllocationTo relocates the single allocation based at base to dst
// (a caller-provided destination of at least the allocation's size that
// must not overlap it). It performs the same world-stop, escape-patch,
// register-patch, data-copy sequence as a page move, minus expansion and
// page negotiation. The recorded MoveBreakdown has zero expand cost.
func (r *Runtime) MoveAllocationTo(base, dst uint64) (MoveBreakdown, error) {
	regs := r.world.StopTheWorld()
	defer r.world.ResumeTheWorld()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()

	var bd MoveBreakdown
	a := r.Table.Covering(base)
	if a == nil || a.Base != base {
		return bd, fmt.Errorf("runtime: no allocation based at %#x", base)
	}
	length := a.Len
	if dst < base+length && base < dst+length {
		return bd, fmt.Errorf("runtime: allocation move ranges overlap")
	}
	bd.ExpandCycles = 0 // the whole point: no page expansion
	bd.PatchCycles += cycTableLookup
	bd.AllocsMoved = 1

	// Patch escapes of this allocation.
	for loc := range a.Escapes {
		bd.PatchCycles += cycEscapePatch
		val := r.mem.Load64(loc)
		if val >= base && val < base+length {
			r.mem.Store64(loc, val-base+dst)
			bd.EscapesPatched++
		}
	}
	// Registers.
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			bd.RegCycles += cycRegScan
			if v >= base && v < base+length {
				rs.SetReg(i, v-base+dst)
				bd.RegCycles += cycRegPatch
				bd.RegsPatched++
			}
		}
	}
	// Table maintenance.
	r.Table.Rebase(a, dst)
	moved := r.Table.RebaseEscapeLocs(base, base+length, dst)
	bd.PatchCycles += uint64(moved) * cycEscapePatch
	r.rebaseSwapLocs(base, dst, length)

	// Copy only the allocation's bytes — not whole pages.
	data, err := r.mem.ReadAt(base, length)
	if err != nil {
		return bd, err
	}
	if err := r.mem.WriteAt(dst, data); err != nil {
		return bd, err
	}
	if err := r.mem.Zero(base, length); err != nil {
		return bd, err
	}
	bd.MoveCycles += length * cycPerByteMove
	bd.PagesMoved = (length + kernel.PageSize - 1) / kernel.PageSize

	r.MoveStats = append(r.MoveStats, bd)
	for _, fn := range r.moveListeners {
		fn(base, dst, length)
	}
	return bd, nil
}

// WorstCaseHeapAllocation returns the base of the most-escaped non-static
// allocation within [lo, hi), for the allocation-granularity ablation
// (which relocates within the heap).
func (r *Runtime) WorstCaseHeapAllocation(lo, hi uint64) (base, length uint64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var best *Allocation
	r.Table.ForEach(func(a *Allocation) bool {
		if a.Static || a.Base < lo || a.End() > hi {
			return true
		}
		if best == nil || len(a.Escapes) > len(best.Escapes) {
			best = a
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	return best.Base, best.Len, true
}
