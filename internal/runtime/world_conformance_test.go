package runtime_test

// The BoundedWorld conformance suite, driven against the worldtest fake
// that runtime-level move tests build on. The VM's real scheduler runs the
// identical suite from its own package (it is the other BoundedWorld
// implementation), so both sides of the incremental protocol are held to
// the same stop/resume contract. This file is an external test
// (runtime_test) because worldtest imports runtime: an internal test file
// importing it would be an import cycle.

import (
	"testing"

	"carat/internal/worldtest"
)

func TestFakeWorldConformance(t *testing.T) {
	w := worldtest.NewFake(
		&worldtest.FakeRegs{Vals: []uint64{0x1000, 0x2000, 0x3000}},
		&worldtest.FakeRegs{Vals: []uint64{0x4000}},
		&worldtest.FakeRegs{}, // a thread with no pointer registers
	)
	worldtest.Conformance(t, "fakeWorld", w)
	if w.Stops == 0 || w.Stops != w.Resumes {
		t.Errorf("full stops/resumes not paired: %d/%d", w.Stops, w.Resumes)
	}
	if w.BatchStops != w.BatchResumes {
		t.Errorf("batch stops/resumes not paired: %d/%d", w.BatchStops, w.BatchResumes)
	}
}

func TestFakeWorldConformanceEmpty(t *testing.T) {
	// A world with no live threads still honors the stop/resume structure.
	worldtest.Conformance(t, "fakeWorld(empty)", worldtest.NewFake())
}
