package runtime

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/kernel"
)

// allocSnap is one allocation's identity-free view for state comparison.
type allocSnap struct {
	Base, Len uint64
	Static    bool
	Escapes   []uint64
}

// machineSnap captures everything a rolled-back move must restore
// bit-identically: the physical memory image, the region set, the
// allocation table with its escape map, the register file, and the
// kernel's free-frame count.
type machineSnap struct {
	MemSum    uint64
	Regions   []guard.Region
	Allocs    []allocSnap
	Regs      []uint64
	FreePages uint64
}

func snapshot(k *kernel.Kernel, p *kernel.Process, rt *Runtime, regs *fakeRegs) machineSnap {
	s := machineSnap{
		MemSum:    k.Mem.Checksum(),
		Regions:   append([]guard.Region(nil), p.Regions.Regions()...),
		Regs:      append([]uint64(nil), regs.vals...),
		FreePages: k.Alloc.FreePages(),
	}
	rt.Table.ForEach(func(a *Allocation) bool {
		locs := append([]uint64(nil), rt.Table.EscapeLocsOf(a)...)
		sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
		s.Allocs = append(s.Allocs, allocSnap{Base: a.Base, Len: a.Len, Static: a.Static, Escapes: locs})
		return true
	})
	sort.Slice(s.Allocs, func(i, j int) bool { return s.Allocs[i].Base < s.Allocs[j].Base })
	return s
}

// buildMoveFixture assembles the TestHandleMovePatchesEverything scene:
// escapes outside, inside, and across the to-be-moved page, plus a
// pointer-bearing register.
func buildMoveFixture(t *testing.T) (*kernel.Kernel, *kernel.Process, *Runtime, *fakeRegs, uint64) {
	t.Helper()
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	allocA := base + 64
	if err := rt.TrackAlloc(allocA, 512); err != nil {
		t.Fatal(err)
	}
	allocB := base + 3*kernel.PageSize
	if err := rt.TrackAlloc(allocB, 128); err != nil {
		t.Fatal(err)
	}
	outsideLoc := base + 2*kernel.PageSize
	insideLoc := allocA + 16
	locToB := allocA + 32
	k.Mem.Store64(outsideLoc, allocA+100)
	k.Mem.Store64(insideLoc, allocA+200)
	k.Mem.Store64(locToB, allocB+8)
	rt.TrackEscape(outsideLoc, allocA+100)
	rt.TrackEscape(insideLoc, allocA+200)
	rt.TrackEscape(locToB, allocB+8)
	rt.Flush()
	regs := &fakeRegs{vals: []uint64{allocA + 300, 12345, allocB}}
	rt.SetWorld(&fakeWorld{regs: []*fakeRegs{regs}})
	return k, p, rt, regs, base
}

// TestAbortAtEveryStepBoundaryRollsBack forces a mid-move abort at each
// of the four checked Fig-8 step boundaries in turn and requires the
// machine — memory image, region set, allocation table, escape map,
// registers, free frames — to be bit-identical to the pre-move snapshot.
// The final armed fault exhausted, the same move must then succeed.
func TestAbortAtEveryStepBoundaryRollsBack(t *testing.T) {
	boundaries := []string{
		"before destination negotiation",
		"after escape patch",
		"after register patch",
		"before data copy",
	}
	for nth, name := range boundaries {
		t.Run(name, func(t *testing.T) {
			k, p, rt, regs, base := buildMoveFixture(t)
			inj := fault.New(1, nil)
			rt.SetInjector(inj)

			before := snapshot(k, p, rt, regs)
			vetoesBefore := k.Stats.MoveVetoes.Get()

			inj.Arm(fault.MoveAbort, nth+1)
			_, err := p.RequestMove(base, 1)
			if err == nil {
				t.Fatalf("armed abort at %q did not fail the move", name)
			}
			if !fault.Injected(err) {
				t.Fatalf("move error lost the injected fault: %v", err)
			}
			if !strings.Contains(err.Error(), name) {
				t.Errorf("abort fired at the wrong boundary: %v", err)
			}

			after := snapshot(k, p, rt, regs)
			if !reflect.DeepEqual(before, after) {
				t.Errorf("state differs after rollback:\n before %+v\n after  %+v", before, after)
			}
			if err := rt.Table.CheckInvariants(); err != nil {
				t.Error(err)
			}
			if got := k.Stats.MoveVetoes.Get(); got != vetoesBefore+1 {
				t.Errorf("move vetoes = %d, want %d", got, vetoesBefore+1)
			}
			// The first boundary aborts before anything mutates; all later
			// ones must roll back a real transaction.
			wantRollbacks := uint64(1)
			if nth == 0 {
				wantRollbacks = 0
			}
			if got := rt.Stats.MoveRollbacks.Get(); got != wantRollbacks {
				t.Errorf("rollbacks = %d, want %d", got, wantRollbacks)
			}

			// Fault exhausted: the identical request must now succeed and
			// actually move the page.
			res, err := p.RequestMove(base, 1)
			if err != nil {
				t.Fatalf("move after abort: %v", err)
			}
			if res.Dst == res.Src {
				t.Error("successful move did not relocate the page")
			}
			if err := rt.Table.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPatchFailureRollsBackPatchedEscapes fails the patch of the second
// escape location: the first, already-patched escape must be restored to
// its pre-move value.
func TestPatchFailureRollsBackPatchedEscapes(t *testing.T) {
	k, p, rt, regs, base := buildMoveFixture(t)
	inj := fault.New(1, nil)
	rt.SetInjector(inj)

	before := snapshot(k, p, rt, regs)
	inj.Arm(fault.PatchFail, 2)
	if _, err := p.RequestMove(base, 1); err == nil || !fault.Injected(err) {
		t.Fatalf("armed patch failure did not abort the move: %v", err)
	}
	after := snapshot(k, p, rt, regs)
	if !reflect.DeepEqual(before, after) {
		t.Errorf("state differs after patch-failure rollback:\n before %+v\n after  %+v", before, after)
	}
	if rt.Stats.MoveRollbacks.Get() != 1 {
		t.Errorf("rollbacks = %d, want 1", rt.Stats.MoveRollbacks.Get())
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestSwapInjectionIsRetrySafe verifies a failed swap-out leaves the
// allocation untouched and a failed swap-in leaves the slot intact, so
// both simply succeed on retry.
func TestSwapInjectionIsRetrySafe(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TrackAlloc(base, kernel.PageSize); err != nil {
		t.Fatal(err)
	}
	k.Mem.Store64(base, 0xBEEF)
	inj := fault.New(1, nil)
	rt.SetInjector(inj)

	inj.Arm(fault.SwapOutIO, 1)
	if _, err := rt.SwapOut(base); err == nil || !fault.Injected(err) {
		t.Fatalf("armed swap-out failure: %v", err)
	}
	if rt.Table.Covering(base) == nil {
		t.Fatal("failed swap-out lost the allocation")
	}
	slot, err := rt.SwapOut(base)
	if err != nil {
		t.Fatalf("swap-out retry: %v", err)
	}

	inj.Arm(fault.SwapInIO, 1)
	if err := rt.SwapIn(slot, base); err == nil || !fault.Injected(err) {
		t.Fatalf("armed swap-in failure: %v", err)
	}
	if _, err := rt.SwappedLen(slot); err != nil {
		t.Fatalf("failed swap-in corrupted the slot: %v", err)
	}
	if err := rt.SwapIn(slot, base); err != nil {
		t.Fatalf("swap-in retry: %v", err)
	}
	if got := k.Mem.Load64(base); got != 0xBEEF {
		t.Errorf("data after swap round trip = %#x, want 0xBEEF", got)
	}
}

// TestFlushRetriesOnInjectedFailure verifies an injected flush failure
// only delays the drain — the escape still lands, with the retry counted.
func TestFlushRetriesOnInjectedFailure(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	if err := rt.TrackAlloc(0x10000, 256); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1, nil)
	rt.SetInjector(inj)
	inj.Arm(fault.FlushFail, 1)
	rt.TrackEscape(0x30000, 0x10000)
	rt.Flush()
	if rt.Table.EscapeCount() != 1 {
		t.Error("escape lost across a failed flush")
	}
	if rt.Stats.FlushRetries.Get() == 0 {
		t.Error("flush retry not counted")
	}
}
