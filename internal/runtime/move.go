package runtime

import (
	"fmt"

	"carat/internal/fault"
	"carat/internal/kernel"
	"carat/internal/obs"
)

// MoveBreakdown is the per-move cost decomposition of Table 3, in modeled
// cycles, plus the raw event counts behind each column.
type MoveBreakdown struct {
	ExpandCycles uint64 // "Page Expand": find + expand affected allocations
	PatchCycles  uint64 // "Patch Gen. & Exec.": escape patching
	RegCycles    uint64 // "Register Patch"
	MoveCycles   uint64 // "Allocation & Mem. Movement"

	AllocsMoved    int
	EscapesPatched int
	RegsPatched    int
	PagesMoved     uint64
}

// PrototypeCycles is ExpandCycles+PatchCycles+RegCycles: the prototype's
// cost excluding the data movement (Table 3 "Prototype Cost").
func (b *MoveBreakdown) PrototypeCycles() uint64 {
	return b.ExpandCycles + b.PatchCycles + b.RegCycles
}

// TotalCycles includes the movement ("Total Cost").
func (b *MoveBreakdown) TotalCycles() uint64 {
	return b.PrototypeCycles() + b.MoveCycles
}

// Modeled per-operation costs on the move path. Table lookups walk the
// red/black tree (cache-unfriendly); escape patches are a hash probe plus
// a read-modify-write of program memory.
const (
	cycTableLookup  = 130 // one Covering/Overlapping probe
	cycPerAllocScan = 60  // per affected allocation bookkeeping
	cycEscapePatch  = 55  // locate + rewrite one escape
	cycRegScan      = 2   // inspect one saved register
	cycRegPatch     = 9   // rewrite one saved register
	cycPageAlloc    = 900 // kernel page grant amortized per page
	cycPerByteMove  = 1   // data copy, bytes per cycle (DRAM bandwidth-ish)
	cycBarrier      = 400 // world-stop + resume round trip
)

// The barrier's cycBarrier cycles split across the Figure 8 barrier
// phases for trace attribution: the kernel's request delivery (step 1),
// interrupting the threads (2), the threads dumping register state (3),
// the world-stop rendezvous (4), and the retire/resume round trip (11).
// They must sum to cycBarrier so traced spans tile TotalCycles exactly.
const (
	cycStepRequest   = 50
	cycStepInterrupt = 100
	cycStepDumpRegs  = 150
	cycStepStop      = 50
	cycStepResume    = cycBarrier - cycStepRequest - cycStepInterrupt - cycStepDumpRegs - cycStepStop
)

// MoveStepNames are the 11 named steps of the Figure 8 move protocol, in
// protocol order — the span names a trace of one move contains.
var MoveStepNames = [11]string{
	"move.request",
	"move.interrupt_threads",
	"move.dump_registers",
	"move.world_stop",
	"move.expand_range",
	"move.find_allocations",
	"move.alloc_dst",
	"move.patch_escapes",
	"move.patch_registers",
	"move.copy_data",
	"move.retire_resume",
}

// HandleProtect implements kernel.MoveHandler: stop the world, let the
// kernel flip the region set, resume. The next guard sees the change
// (§2.2).
func (r *Runtime) HandleProtect(apply func() error) error {
	w := r.getWorld()
	w.StopTheWorld()
	defer w.ResumeTheWorld()
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()
	r.tracer().Instant("protect.apply", "protocol")
	err := apply()
	// A protection flip does no patching: its pause is the barrier alone.
	r.observePause("protect", cycBarrier)
	return err
}

// HandleMove implements kernel.MoveHandler, executing steps 2-12 of
// Figure 8:
//
//	2-4.  stop the world; threads dump registers (World.StopTheWorld)
//	5.    negotiate: expand the page range until no allocation straddles
//	      its boundary, then get a destination from the kernel
//	6.    determine affected allocations
//	7-8.  compute and execute patches on every escape of every affected
//	      allocation, and on saved registers
//	9-10. move the data, free the source
//	11-12. resume; report completion
func (r *Runtime) HandleMove(req *kernel.MoveRequest) (kernel.MoveResult, error) {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()

	res, src, dst, length, err := r.handleMoveLocked(req, regs)
	if err != nil {
		return res, err
	}
	// Listeners run with the world still stopped but outside every runtime
	// lock, so a listener may re-enter the runtime (satellite: no callback
	// under a held mutex).
	for _, fn := range r.copyMoveListeners() {
		fn(src, dst, length)
	}
	return res, nil
}

func (r *Runtime) handleMoveLocked(req *kernel.MoveRequest, regs []RegSet) (kernel.MoveResult, uint64, uint64, uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	var bd MoveBreakdown
	bd.ExpandCycles += cycBarrier

	// lookupCyc/scanCyc split ExpandCycles for trace attribution only;
	// both still flow into bd.ExpandCycles unchanged.
	var lookupCyc, scanCyc uint64

	// Step 5/6: expand [src, src+len) until its boundaries split no
	// allocation (allocations must move in their entirety, §4.3).
	src := req.Src
	length := req.Pages * kernel.PageSize
	var affected []*Allocation
	for {
		bd.ExpandCycles += cycTableLookup
		lookupCyc += cycTableLookup
		affected = r.Table.Overlapping(src, src+length)
		bd.ExpandCycles += uint64(len(affected)) * cycPerAllocScan
		scanCyc += uint64(len(affected)) * cycPerAllocScan
		grew := false
		if len(affected) > 0 {
			if first := affected[0]; first.Base < src {
				delta := src - alignDown(first.Base)
				src -= delta
				length += delta
				grew = true
			}
			if last := affected[len(affected)-1]; last.End() > src+length {
				length = alignUp(last.End()) - src
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	pages := length / kernel.PageSize

	// An abort here models the kernel cancelling its own request before a
	// destination exists: nothing has mutated yet, so a bare veto suffices.
	inj := r.injector()
	if err := inj.Fail(fault.MoveAbort, "before destination negotiation"); err != nil {
		req.Veto()
		r.observePause("move_abort", bd.TotalCycles())
		return kernel.MoveResult{}, 0, 0, 0, fmt.Errorf("runtime: move aborted: %w", err)
	}

	// Step 5: the kernel allocates and maps the destination.
	dst, err := req.NegotiateDst(src, pages)
	if err != nil {
		req.Veto()
		r.observePause("move_abort", bd.TotalCycles())
		return kernel.MoveResult{}, 0, 0, 0, fmt.Errorf("runtime: move negotiation failed: %w", err)
	}
	bd.MoveCycles += pages * cycPageAlloc

	// From here to the commit point at RetireSrc, every mutation is
	// recorded in txn before it is applied, so an abort at any later step
	// boundary rolls the address space back to the exact pre-move state.
	txn := &moveTxn{}
	abort := func(cause error) (kernel.MoveResult, uint64, uint64, uint64, error) {
		// The world stayed stopped through the work done so far plus the
		// rollback; bd holds the partial breakdown at the abort point.
		r.observePause("move_abort", bd.TotalCycles())
		return kernel.MoveResult{}, 0, 0, 0, r.rollbackMove(req, txn, src, dst, length, cause)
	}

	// Steps 7-8: patch every escape of every affected allocation so each
	// pointer names the address its target will have after the move.
	for _, a := range affected {
		bd.AllocsMoved++
		for _, loc := range r.Table.EscapeLocsOf(a) {
			bd.PatchCycles += cycEscapePatch
			val := r.mem.Load64(loc)
			if val >= src && val < src+length {
				if err := inj.Fail(fault.PatchFail, fmt.Sprintf("escape at %#x", loc)); err != nil {
					return abort(err)
				}
				txn.memWrites = append(txn.memWrites, memWrite{loc: loc, old: val})
				r.mem.Store64(loc, val-src+dst)
				bd.EscapesPatched++
			}
		}
	}
	if err := inj.Fail(fault.MoveAbort, "after escape patch"); err != nil {
		return abort(err)
	}
	// Registers (in-register pointers were dumped by the world stop).
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			bd.RegCycles += cycRegScan
			if v >= src && v < src+length {
				txn.regWrites = append(txn.regWrites, regWrite{rs: rs, i: i, old: v})
				rs.SetReg(i, v-src+dst)
				bd.RegCycles += cycRegPatch
				bd.RegsPatched++
			}
		}
	}
	if err := inj.Fail(fault.MoveAbort, "after register patch"); err != nil {
		return abort(err)
	}

	// Table maintenance: rebase moved allocations and any escape
	// locations that themselves live in the moved range.
	for _, a := range affected {
		r.Table.Rebase(a, a.Base-src+dst)
		txn.rebased = append(txn.rebased, a)
	}
	moved := r.Table.RebaseEscapeLocs(src, src+length, dst)
	txn.escMoved = true
	bd.PatchCycles += uint64(moved) * cycEscapePatch
	r.rebaseSwapLocs(src, dst, length)
	txn.swapMoved = true
	if err := inj.Fail(fault.MoveAbort, "before data copy"); err != nil {
		return abort(err)
	}

	// Steps 9-10: move the data and retire the source. RetireSrc is the
	// commit point — once the kernel retires the source frames the move is
	// final.
	if err := r.mem.Move(dst, src, length); err != nil {
		return abort(fmt.Errorf("runtime: data move failed: %w", err))
	}
	txn.copied = true
	bd.MoveCycles += length * cycPerByteMove
	bd.PagesMoved = pages
	if err := req.RetireSrc(src, pages); err != nil {
		return abort(fmt.Errorf("runtime: source retire failed: %w", err))
	}

	r.MoveStats = append(r.MoveStats, bd)
	r.Stats.Moves.Inc()
	r.Stats.MoveCycles.Add(bd.TotalCycles())
	r.moveHist.Observe(bd.TotalCycles())
	r.observePause("move", bd.TotalCycles())
	r.traceMove(&bd, src, dst, length, lookupCyc, scanCyc)
	return kernel.MoveResult{Src: src, Dst: dst, Pages: pages}, src, dst, length, nil
}

// moveTxn is the undo log of one in-flight move: every mutation made
// after destination negotiation, recorded before it is applied. The
// booleans mark the all-or-nothing table/copy steps; the write logs keep
// original values in application order so rollback can restore them in
// reverse.
type moveTxn struct {
	memWrites []memWrite    // escape-location rewrites
	regWrites []regWrite    // saved-register rewrites
	rebased   []*Allocation // allocations rebased src->dst
	escMoved  bool          // escape locations rebased src->dst
	swapMoved bool          // swap-record escape locations rebased
	copied    bool          // data copied to dst (source zeroed)
}

type memWrite struct{ loc, old uint64 }

type regWrite struct {
	rs  RegSet
	i   int
	old uint64
}

// rollbackMove restores the exact pre-move state after an abort: undo the
// data copy, rebase tables back, restore registers and memory words in
// reverse application order, and return the negotiated destination to the
// kernel — whose region release raises EventInvalidateRange, so the VM's
// guard/translation caches drop anything covering the stillborn
// destination. The abort counts as a veto in the kernel's accounting.
// Returns the error the failed move reports, wrapping cause.
func (r *Runtime) rollbackMove(req *kernel.MoveRequest, txn *moveTxn, src, dst, length uint64, cause error) error {
	if txn.copied {
		if err := r.mem.Move(src, dst, length); err != nil {
			return fmt.Errorf("runtime: rollback copy-back failed: %v (aborting move: %w)", err, cause)
		}
	}
	if txn.swapMoved {
		r.rebaseSwapLocs(dst, src, length)
	}
	if txn.escMoved {
		r.Table.RebaseEscapeLocs(dst, dst+length, src)
	}
	for i := len(txn.rebased) - 1; i >= 0; i-- {
		a := txn.rebased[i]
		r.Table.Rebase(a, a.Base-dst+src)
	}
	for i := len(txn.regWrites) - 1; i >= 0; i-- {
		w := txn.regWrites[i]
		w.rs.SetReg(w.i, w.old)
	}
	for i := len(txn.memWrites) - 1; i >= 0; i-- {
		w := txn.memWrites[i]
		r.mem.Store64(w.loc, w.old)
	}
	if err := req.AbortDst(dst, length/kernel.PageSize); err != nil {
		return fmt.Errorf("runtime: rollback destination release failed: %v (aborting move: %w)", err, cause)
	}
	req.Veto()
	r.Stats.MoveRollbacks.Inc()
	r.tracer().Instant("fault.rollback", "fault",
		obs.A("src", src), obs.A("dst", dst), obs.A("bytes", length),
		obs.A("cause", cause.Error()))
	if err := r.Table.MaybeCheckInvariants(); err != nil {
		return fmt.Errorf("runtime: invariants violated after rollback: %v (aborting move: %w)", err, cause)
	}
	return fmt.Errorf("runtime: move aborted and rolled back: %w", cause)
}

// traceMove emits one span per Figure 8 protocol step, laid end to end on
// the simulated timeline starting at the current cycle. The 11 durations
// tile bd.TotalCycles() exactly: the cycBarrier world-stop cost splits
// across steps 1-4 and 11, ExpandCycles (minus the barrier) splits into
// table lookups (step 5) and allocation scans (step 6), and the remaining
// steps map one-to-one onto the Table 3 columns. Tracing reads the
// breakdown after the fact and charges nothing — results are identical
// with tracing on or off.
func (r *Runtime) traceMove(bd *MoveBreakdown, src, dst, length, lookupCyc, scanCyc uint64) {
	tr := r.tracer()
	if tr == nil {
		return
	}
	ts := tr.Now()
	durs := [11]uint64{
		cycStepRequest,
		cycStepInterrupt,
		cycStepDumpRegs,
		cycStepStop,
		lookupCyc,
		scanCyc,
		bd.PagesMoved * cycPageAlloc,
		bd.PatchCycles,
		bd.RegCycles,
		length * cycPerByteMove,
		cycStepResume,
	}
	tr.SpanAt("move", "protocol", ts, bd.TotalCycles(),
		obs.A("src", src), obs.A("dst", dst), obs.A("bytes", length),
		obs.A("allocs_moved", bd.AllocsMoved), obs.A("escapes_patched", bd.EscapesPatched),
		obs.A("regs_patched", bd.RegsPatched))
	for i, name := range MoveStepNames {
		tr.SpanAt(name, "protocol", ts, durs[i], obs.A("step", i+1))
		ts += durs[i]
	}
}

// WorstCasePage returns the page-aligned base of the page overlapping the
// allocation with the most escapes — the page the Figure 9 experiment
// repeatedly moves ("the runtime selects a page that overlaps the
// allocation with the most pointer escapes").
func (r *Runtime) WorstCasePage() (uint64, bool) {
	r.Flush()
	var best *Allocation
	bestN := -1
	r.Table.ForEach(func(a *Allocation) bool {
		if n := a.EscapeCount(); n > bestN {
			best, bestN = a, n
		}
		return true
	})
	if best == nil {
		return 0, false
	}
	return alignDown(best.Base), true
}

func alignDown(a uint64) uint64 { return a &^ (kernel.PageSize - 1) }
func alignUp(a uint64) uint64   { return (a + kernel.PageSize - 1) &^ (kernel.PageSize - 1) }
