package runtime

import (
	"fmt"

	"carat/internal/kernel"
)

// MoveBreakdown is the per-move cost decomposition of Table 3, in modeled
// cycles, plus the raw event counts behind each column.
type MoveBreakdown struct {
	ExpandCycles uint64 // "Page Expand": find + expand affected allocations
	PatchCycles  uint64 // "Patch Gen. & Exec.": escape patching
	RegCycles    uint64 // "Register Patch"
	MoveCycles   uint64 // "Allocation & Mem. Movement"

	AllocsMoved    int
	EscapesPatched int
	RegsPatched    int
	PagesMoved     uint64
}

// PrototypeCycles is ExpandCycles+PatchCycles+RegCycles: the prototype's
// cost excluding the data movement (Table 3 "Prototype Cost").
func (b *MoveBreakdown) PrototypeCycles() uint64 {
	return b.ExpandCycles + b.PatchCycles + b.RegCycles
}

// TotalCycles includes the movement ("Total Cost").
func (b *MoveBreakdown) TotalCycles() uint64 {
	return b.PrototypeCycles() + b.MoveCycles
}

// Modeled per-operation costs on the move path. Table lookups walk the
// red/black tree (cache-unfriendly); escape patches are a hash probe plus
// a read-modify-write of program memory.
const (
	cycTableLookup  = 130 // one Covering/Overlapping probe
	cycPerAllocScan = 60  // per affected allocation bookkeeping
	cycEscapePatch  = 55  // locate + rewrite one escape
	cycRegScan      = 2   // inspect one saved register
	cycRegPatch     = 9   // rewrite one saved register
	cycPageAlloc    = 900 // kernel page grant amortized per page
	cycPerByteMove  = 1   // data copy, bytes per cycle (DRAM bandwidth-ish)
	cycBarrier      = 400 // world-stop + resume round trip
)

// HandleProtect implements kernel.MoveHandler: stop the world, let the
// kernel flip the region set, resume. The next guard sees the change
// (§2.2).
func (r *Runtime) HandleProtect(apply func() error) error {
	r.world.StopTheWorld()
	defer r.world.ResumeTheWorld()
	r.mu.Lock()
	r.flushLocked()
	r.mu.Unlock()
	return apply()
}

// HandleMove implements kernel.MoveHandler, executing steps 2-12 of
// Figure 8:
//
//	2-4.  stop the world; threads dump registers (World.StopTheWorld)
//	5.    negotiate: expand the page range until no allocation straddles
//	      its boundary, then get a destination from the kernel
//	6.    determine affected allocations
//	7-8.  compute and execute patches on every escape of every affected
//	      allocation, and on saved registers
//	9-10. move the data, free the source
//	11-12. resume; report completion
func (r *Runtime) HandleMove(req *kernel.MoveRequest) (kernel.MoveResult, error) {
	regs := r.world.StopTheWorld()
	defer r.world.ResumeTheWorld()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()

	var bd MoveBreakdown
	bd.ExpandCycles += cycBarrier

	// Step 5/6: expand [src, src+len) until its boundaries split no
	// allocation (allocations must move in their entirety, §4.3).
	src := req.Src
	length := req.Pages * kernel.PageSize
	var affected []*Allocation
	for {
		bd.ExpandCycles += cycTableLookup
		affected = r.Table.Overlapping(src, src+length)
		bd.ExpandCycles += uint64(len(affected)) * cycPerAllocScan
		grew := false
		if len(affected) > 0 {
			if first := affected[0]; first.Base < src {
				delta := src - alignDown(first.Base)
				src -= delta
				length += delta
				grew = true
			}
			if last := affected[len(affected)-1]; last.End() > src+length {
				length = alignUp(last.End()) - src
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	pages := length / kernel.PageSize

	// Step 5: the kernel allocates and maps the destination.
	dst, err := req.NegotiateDst(src, pages)
	if err != nil {
		req.Veto()
		return kernel.MoveResult{}, fmt.Errorf("runtime: move negotiation failed: %w", err)
	}
	bd.MoveCycles += pages * cycPageAlloc

	// Steps 7-8: patch every escape of every affected allocation so each
	// pointer names the address its target will have after the move.
	for _, a := range affected {
		bd.AllocsMoved++
		for loc := range a.Escapes {
			bd.PatchCycles += cycEscapePatch
			val := r.mem.Load64(loc)
			if val >= src && val < src+length {
				r.mem.Store64(loc, val-src+dst)
				bd.EscapesPatched++
			}
		}
	}
	// Registers (in-register pointers were dumped by the world stop).
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			bd.RegCycles += cycRegScan
			if v >= src && v < src+length {
				rs.SetReg(i, v-src+dst)
				bd.RegCycles += cycRegPatch
				bd.RegsPatched++
			}
		}
	}

	// Table maintenance: rebase moved allocations and any escape
	// locations that themselves live in the moved range.
	for _, a := range affected {
		r.Table.Rebase(a, a.Base-src+dst)
	}
	moved := r.Table.RebaseEscapeLocs(src, src+length, dst)
	bd.PatchCycles += uint64(moved) * cycEscapePatch
	r.rebaseSwapLocs(src, dst, length)

	// Steps 9-10: move the data and retire the source.
	if err := r.mem.Move(dst, src, length); err != nil {
		return kernel.MoveResult{}, fmt.Errorf("runtime: data move failed: %w", err)
	}
	bd.MoveCycles += length * cycPerByteMove
	bd.PagesMoved = pages
	if err := req.RetireSrc(src, pages); err != nil {
		return kernel.MoveResult{}, fmt.Errorf("runtime: source retire failed: %w", err)
	}

	r.MoveStats = append(r.MoveStats, bd)
	for _, fn := range r.moveListeners {
		fn(src, dst, length)
	}
	return kernel.MoveResult{Src: src, Dst: dst, Pages: pages}, nil
}

// WorstCasePage returns the page-aligned base of the page overlapping the
// allocation with the most escapes — the page the Figure 9 experiment
// repeatedly moves ("the runtime selects a page that overlaps the
// allocation with the most pointer escapes").
func (r *Runtime) WorstCasePage() (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	var best *Allocation
	r.Table.ForEach(func(a *Allocation) bool {
		if best == nil || len(a.Escapes) > len(best.Escapes) {
			best = a
		}
		return true
	})
	if best == nil {
		return 0, false
	}
	return alignDown(best.Base), true
}

func alignDown(a uint64) uint64 { return a &^ (kernel.PageSize - 1) }
func alignUp(a uint64) uint64   { return (a + kernel.PageSize - 1) &^ (kernel.PageSize - 1) }
