package runtime

import (
	"fmt"

	"carat/internal/kernel"
	"carat/internal/obs"
)

// MoveBreakdown is the per-move cost decomposition of Table 3, in modeled
// cycles, plus the raw event counts behind each column.
type MoveBreakdown struct {
	ExpandCycles uint64 // "Page Expand": find + expand affected allocations
	PatchCycles  uint64 // "Patch Gen. & Exec.": escape patching
	RegCycles    uint64 // "Register Patch"
	MoveCycles   uint64 // "Allocation & Mem. Movement"

	AllocsMoved    int
	EscapesPatched int
	RegsPatched    int
	PagesMoved     uint64
}

// PrototypeCycles is ExpandCycles+PatchCycles+RegCycles: the prototype's
// cost excluding the data movement (Table 3 "Prototype Cost").
func (b *MoveBreakdown) PrototypeCycles() uint64 {
	return b.ExpandCycles + b.PatchCycles + b.RegCycles
}

// TotalCycles includes the movement ("Total Cost").
func (b *MoveBreakdown) TotalCycles() uint64 {
	return b.PrototypeCycles() + b.MoveCycles
}

// Modeled per-operation costs on the move path. Table lookups walk the
// red/black tree (cache-unfriendly); escape patches are a hash probe plus
// a read-modify-write of program memory.
const (
	cycTableLookup  = 130 // one Covering/Overlapping probe
	cycPerAllocScan = 60  // per affected allocation bookkeeping
	cycEscapePatch  = 55  // locate + rewrite one escape
	cycRegScan      = 2   // inspect one saved register
	cycRegPatch     = 9   // rewrite one saved register
	cycPageAlloc    = 900 // kernel page grant amortized per page
	cycPerByteMove  = 1   // data copy, bytes per cycle (DRAM bandwidth-ish)
	cycBarrier      = 400 // world-stop + resume round trip
)

// The barrier's cycBarrier cycles split across the Figure 8 barrier
// phases for trace attribution: the kernel's request delivery (step 1),
// interrupting the threads (2), the threads dumping register state (3),
// the world-stop rendezvous (4), and the retire/resume round trip (11).
// They must sum to cycBarrier so traced spans tile TotalCycles exactly.
const (
	cycStepRequest   = 50
	cycStepInterrupt = 100
	cycStepDumpRegs  = 150
	cycStepStop      = 50
	cycStepResume    = cycBarrier - cycStepRequest - cycStepInterrupt - cycStepDumpRegs - cycStepStop
)

// MoveStepNames are the 11 named steps of the Figure 8 move protocol, in
// protocol order — the span names a trace of one move contains.
var MoveStepNames = [11]string{
	"move.request",
	"move.interrupt_threads",
	"move.dump_registers",
	"move.world_stop",
	"move.expand_range",
	"move.find_allocations",
	"move.alloc_dst",
	"move.patch_escapes",
	"move.patch_registers",
	"move.copy_data",
	"move.retire_resume",
}

// HandleProtect implements kernel.MoveHandler: stop the world, let the
// kernel flip the region set, resume. The next guard sees the change
// (§2.2).
func (r *Runtime) HandleProtect(apply func() error) error {
	w := r.getWorld()
	w.StopTheWorld()
	defer w.ResumeTheWorld()
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()
	r.tracer().Instant("protect.apply", "protocol")
	return apply()
}

// HandleMove implements kernel.MoveHandler, executing steps 2-12 of
// Figure 8:
//
//	2-4.  stop the world; threads dump registers (World.StopTheWorld)
//	5.    negotiate: expand the page range until no allocation straddles
//	      its boundary, then get a destination from the kernel
//	6.    determine affected allocations
//	7-8.  compute and execute patches on every escape of every affected
//	      allocation, and on saved registers
//	9-10. move the data, free the source
//	11-12. resume; report completion
func (r *Runtime) HandleMove(req *kernel.MoveRequest) (kernel.MoveResult, error) {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()

	res, src, dst, length, err := r.handleMoveLocked(req, regs)
	if err != nil {
		return res, err
	}
	// Listeners run with the world still stopped but outside every runtime
	// lock, so a listener may re-enter the runtime (satellite: no callback
	// under a held mutex).
	for _, fn := range r.copyMoveListeners() {
		fn(src, dst, length)
	}
	return res, nil
}

func (r *Runtime) handleMoveLocked(req *kernel.MoveRequest, regs []RegSet) (kernel.MoveResult, uint64, uint64, uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	var bd MoveBreakdown
	bd.ExpandCycles += cycBarrier

	// lookupCyc/scanCyc split ExpandCycles for trace attribution only;
	// both still flow into bd.ExpandCycles unchanged.
	var lookupCyc, scanCyc uint64

	// Step 5/6: expand [src, src+len) until its boundaries split no
	// allocation (allocations must move in their entirety, §4.3).
	src := req.Src
	length := req.Pages * kernel.PageSize
	var affected []*Allocation
	for {
		bd.ExpandCycles += cycTableLookup
		lookupCyc += cycTableLookup
		affected = r.Table.Overlapping(src, src+length)
		bd.ExpandCycles += uint64(len(affected)) * cycPerAllocScan
		scanCyc += uint64(len(affected)) * cycPerAllocScan
		grew := false
		if len(affected) > 0 {
			if first := affected[0]; first.Base < src {
				delta := src - alignDown(first.Base)
				src -= delta
				length += delta
				grew = true
			}
			if last := affected[len(affected)-1]; last.End() > src+length {
				length = alignUp(last.End()) - src
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	pages := length / kernel.PageSize

	// Step 5: the kernel allocates and maps the destination.
	dst, err := req.NegotiateDst(src, pages)
	if err != nil {
		req.Veto()
		return kernel.MoveResult{}, 0, 0, 0, fmt.Errorf("runtime: move negotiation failed: %w", err)
	}
	bd.MoveCycles += pages * cycPageAlloc

	// Steps 7-8: patch every escape of every affected allocation so each
	// pointer names the address its target will have after the move.
	for _, a := range affected {
		bd.AllocsMoved++
		for _, loc := range r.Table.EscapeLocsOf(a) {
			bd.PatchCycles += cycEscapePatch
			val := r.mem.Load64(loc)
			if val >= src && val < src+length {
				r.mem.Store64(loc, val-src+dst)
				bd.EscapesPatched++
			}
		}
	}
	// Registers (in-register pointers were dumped by the world stop).
	for _, rs := range regs {
		vals := rs.Regs()
		for i, v := range vals {
			bd.RegCycles += cycRegScan
			if v >= src && v < src+length {
				rs.SetReg(i, v-src+dst)
				bd.RegCycles += cycRegPatch
				bd.RegsPatched++
			}
		}
	}

	// Table maintenance: rebase moved allocations and any escape
	// locations that themselves live in the moved range.
	for _, a := range affected {
		r.Table.Rebase(a, a.Base-src+dst)
	}
	moved := r.Table.RebaseEscapeLocs(src, src+length, dst)
	bd.PatchCycles += uint64(moved) * cycEscapePatch
	r.rebaseSwapLocs(src, dst, length)

	// Steps 9-10: move the data and retire the source.
	if err := r.mem.Move(dst, src, length); err != nil {
		return kernel.MoveResult{}, 0, 0, 0, fmt.Errorf("runtime: data move failed: %w", err)
	}
	bd.MoveCycles += length * cycPerByteMove
	bd.PagesMoved = pages
	if err := req.RetireSrc(src, pages); err != nil {
		return kernel.MoveResult{}, 0, 0, 0, fmt.Errorf("runtime: source retire failed: %w", err)
	}

	r.MoveStats = append(r.MoveStats, bd)
	r.Stats.Moves.Inc()
	r.Stats.MoveCycles.Add(bd.TotalCycles())
	r.moveHist.Observe(bd.TotalCycles())
	r.traceMove(&bd, src, dst, length, lookupCyc, scanCyc)
	return kernel.MoveResult{Src: src, Dst: dst, Pages: pages}, src, dst, length, nil
}

// traceMove emits one span per Figure 8 protocol step, laid end to end on
// the simulated timeline starting at the current cycle. The 11 durations
// tile bd.TotalCycles() exactly: the cycBarrier world-stop cost splits
// across steps 1-4 and 11, ExpandCycles (minus the barrier) splits into
// table lookups (step 5) and allocation scans (step 6), and the remaining
// steps map one-to-one onto the Table 3 columns. Tracing reads the
// breakdown after the fact and charges nothing — results are identical
// with tracing on or off.
func (r *Runtime) traceMove(bd *MoveBreakdown, src, dst, length, lookupCyc, scanCyc uint64) {
	tr := r.tracer()
	if tr == nil {
		return
	}
	ts := tr.Now()
	durs := [11]uint64{
		cycStepRequest,
		cycStepInterrupt,
		cycStepDumpRegs,
		cycStepStop,
		lookupCyc,
		scanCyc,
		bd.PagesMoved * cycPageAlloc,
		bd.PatchCycles,
		bd.RegCycles,
		length * cycPerByteMove,
		cycStepResume,
	}
	tr.SpanAt("move", "protocol", ts, bd.TotalCycles(),
		obs.A("src", src), obs.A("dst", dst), obs.A("bytes", length),
		obs.A("allocs_moved", bd.AllocsMoved), obs.A("escapes_patched", bd.EscapesPatched),
		obs.A("regs_patched", bd.RegsPatched))
	for i, name := range MoveStepNames {
		tr.SpanAt(name, "protocol", ts, durs[i], obs.A("step", i+1))
		ts += durs[i]
	}
}

// WorstCasePage returns the page-aligned base of the page overlapping the
// allocation with the most escapes — the page the Figure 9 experiment
// repeatedly moves ("the runtime selects a page that overlaps the
// allocation with the most pointer escapes").
func (r *Runtime) WorstCasePage() (uint64, bool) {
	r.Flush()
	var best *Allocation
	bestN := -1
	r.Table.ForEach(func(a *Allocation) bool {
		if n := a.EscapeCount(); n > bestN {
			best, bestN = a, n
		}
		return true
	})
	if best == nil {
		return 0, false
	}
	return alignDown(best.Base), true
}

func alignDown(a uint64) uint64 { return a &^ (kernel.PageSize - 1) }
func alignUp(a uint64) uint64   { return (a + kernel.PageSize - 1) &^ (kernel.PageSize - 1) }
