package runtime

import (
	"fmt"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/kernel"
	"carat/internal/obs"
)

// MoveBreakdown is the per-move cost decomposition of Table 3, in modeled
// cycles, plus the raw event counts behind each column.
type MoveBreakdown struct {
	ExpandCycles uint64 // "Page Expand": find + expand affected allocations
	PatchCycles  uint64 // "Patch Gen. & Exec.": escape patching
	RegCycles    uint64 // "Register Patch"
	MoveCycles   uint64 // "Allocation & Mem. Movement"

	AllocsMoved    int
	EscapesPatched int
	RegsPatched    int
	PagesMoved     uint64
}

// PrototypeCycles is ExpandCycles+PatchCycles+RegCycles: the prototype's
// cost excluding the data movement (Table 3 "Prototype Cost").
func (b *MoveBreakdown) PrototypeCycles() uint64 {
	return b.ExpandCycles + b.PatchCycles + b.RegCycles
}

// TotalCycles includes the movement ("Total Cost").
func (b *MoveBreakdown) TotalCycles() uint64 {
	return b.PrototypeCycles() + b.MoveCycles
}

// Modeled per-operation costs on the move path. Table lookups walk the
// red/black tree (cache-unfriendly); escape patches are a hash probe plus
// a read-modify-write of program memory.
const (
	cycTableLookup  = 130 // one Covering/Overlapping probe
	cycPerAllocScan = 60  // per affected allocation bookkeeping
	cycEscapePatch  = 55  // locate + rewrite one escape
	cycRegScan      = 2   // inspect one saved register
	cycRegPatch     = 9   // rewrite one saved register
	cycPageAlloc    = 900 // kernel page grant amortized per page
	cycPerByteMove  = 1   // data copy, bytes per cycle (DRAM bandwidth-ish)
	cycBarrier      = 400 // world-stop + resume round trip
)

// The barrier's cycBarrier cycles split across the Figure 8 barrier
// phases for trace attribution: the kernel's request delivery (step 1),
// interrupting the threads (2), the threads dumping register state (3),
// the world-stop rendezvous (4), and the retire/resume round trip (11).
// They must sum to cycBarrier so traced spans tile TotalCycles exactly.
const (
	cycStepRequest   = 50
	cycStepInterrupt = 100
	cycStepDumpRegs  = 150
	cycStepStop      = 50
	cycStepResume    = cycBarrier - cycStepRequest - cycStepInterrupt - cycStepDumpRegs - cycStepStop
)

// MoveStepNames are the 11 named steps of the Figure 8 move protocol, in
// protocol order — the span names a trace of one move contains.
var MoveStepNames = [11]string{
	"move.request",
	"move.interrupt_threads",
	"move.dump_registers",
	"move.world_stop",
	"move.expand_range",
	"move.find_allocations",
	"move.alloc_dst",
	"move.patch_escapes",
	"move.patch_registers",
	"move.copy_data",
	"move.retire_resume",
}

// HandleProtect implements kernel.MoveHandler: stop the world, let the
// kernel flip the region set, resume. The next guard sees the change
// (§2.2).
func (r *Runtime) HandleProtect(apply func() error) error {
	w := r.getWorld()
	w.StopTheWorld()
	defer w.ResumeTheWorld()
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()
	r.tracer().Instant("protect.apply", "protocol")
	err := apply()
	// A protection flip does no patching: its pause is the barrier alone.
	r.observePause("protect", cycBarrier)
	return err
}

// HandleMove implements kernel.MoveHandler, executing steps 2-12 of
// Figure 8:
//
//	2-4.  stop the world; threads dump registers (World.StopTheWorld)
//	5.    negotiate: expand the page range until no allocation straddles
//	      its boundary, then get a destination from the kernel
//	6.    determine affected allocations
//	7-8.  compute and execute patches on every escape of every affected
//	      allocation, and on saved registers
//	9-10. move the data, free the source
//	11-12. resume; report completion
func (r *Runtime) HandleMove(req *kernel.MoveRequest) (kernel.MoveResult, error) {
	w := r.getWorld()
	regs := w.StopTheWorld()
	defer w.ResumeTheWorld()

	res, src, dst, length, err := r.handleMoveLocked(req, regs)
	if err != nil {
		return res, err
	}
	// Listeners run with the world still stopped but outside every runtime
	// lock, so a listener may re-enter the runtime (satellite: no callback
	// under a held mutex).
	for _, fn := range r.copyMoveListeners() {
		fn(src, dst, length)
	}
	return res, nil
}

// handleMoveLocked drives the move as a phase state machine: expand,
// negotiate, patch escapes, patch registers, rebase tables, copy, commit.
// In legacy mode the world stays stopped end to end and the whole modeled
// cost is one pause. In incremental mode (SetIncremental) the pause meter
// slices the patch phases into bounded windows separated by ResumeBatch/
// StopBatch round trips, with the guard-level forwarding window keeping
// accesses that race into the half-patched state correct in between.
// Phase order, every fault-injection draw, and every program-clock formula
// are identical in both modes: incremental changes pause *attribution*
// only, so modeled cycles and memory digests stay byte-identical per seed.
func (r *Runtime) handleMoveLocked(req *kernel.MoveRequest, regs []RegSet) (kernel.MoveResult, uint64, uint64, uint64, error) {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.Flush()

	st := &moveState{
		r:     r,
		req:   req,
		regs:  regs,
		inj:   r.injector(),
		meter: r.newPauseMeter("move", true),
	}
	st.bd.ExpandCycles += cycBarrier

	for _, phase := range []func() error{
		st.phaseExpand,
		st.phaseNegotiate,
		st.phasePatchEscapes,
		st.phasePatchRegisters,
		st.phaseRebase,
		st.phaseCopy,
		st.phaseCommit,
	} {
		if err := phase(); err != nil {
			return st.fail(err)
		}
	}

	r.MoveStats = append(r.MoveStats, st.bd)
	r.Stats.Moves.Inc()
	r.Stats.MoveCycles.Add(st.bd.TotalCycles())
	r.moveHist.Observe(st.bd.TotalCycles())
	st.meter.finish(st.bd.TotalCycles())
	r.traceMove(&st.bd, st.src, st.dst, st.length, st.lookupCyc, st.scanCyc)
	return kernel.MoveResult{Src: st.src, Dst: st.dst, Pages: st.pages}, st.src, st.dst, st.length, nil
}

// moveState carries one in-flight move through its phases. The undo log
// (txn) is nil until destination negotiation succeeds: a failure before
// that point needs only a veto, a failure after it rolls back.
type moveState struct {
	r     *Runtime
	req   *kernel.MoveRequest
	regs  []RegSet
	inj   *fault.Injector
	meter *pauseMeter

	bd MoveBreakdown
	// lookupCyc/scanCyc split ExpandCycles for trace attribution only;
	// both still flow into bd.ExpandCycles unchanged.
	lookupCyc, scanCyc uint64

	src, dst, length uint64
	pages            uint64
	affected         []*Allocation
	txn              *moveTxn
	fwd              *guard.RegionSet // set holding our open forwarding window
}

// phaseExpand implements steps 5/6: expand [src, src+len) until its
// boundaries split no allocation (allocations must move in their entirety,
// §4.3). The table is re-queried on every iteration, so in incremental
// mode a window boundary inside this phase is safe: allocation churn from
// briefly-resumed mutators is folded into the next query.
func (st *moveState) phaseExpand() error {
	st.src = st.req.Src
	st.length = st.req.Pages * kernel.PageSize
	for {
		st.bd.ExpandCycles += cycTableLookup
		st.lookupCyc += cycTableLookup
		if err := st.meter.add(cycTableLookup); err != nil {
			return err
		}
		st.affected = st.r.Table.Overlapping(st.src, st.src+st.length)
		st.bd.ExpandCycles += uint64(len(st.affected)) * cycPerAllocScan
		st.scanCyc += uint64(len(st.affected)) * cycPerAllocScan
		if err := st.meter.addBulk(len(st.affected), cycPerAllocScan); err != nil {
			return err
		}
		grew := false
		if len(st.affected) > 0 {
			if first := st.affected[0]; first.Base < st.src {
				delta := st.src - alignDown(first.Base)
				st.src -= delta
				st.length += delta
				grew = true
			}
			if last := st.affected[len(st.affected)-1]; last.End() > st.src+st.length {
				st.length = alignUp(last.End()) - st.src
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	st.pages = st.length / kernel.PageSize

	// An abort here models the kernel cancelling its own request before a
	// destination exists: nothing has mutated yet, so a bare veto suffices.
	if err := st.inj.Fail(fault.MoveAbort, "before destination negotiation"); err != nil {
		return fmt.Errorf("runtime: move aborted: %w", err)
	}
	return nil
}

// phaseNegotiate implements step 5: the kernel allocates and maps the
// destination. On success the undo log opens — every later mutation is
// recorded before it is applied — and, in incremental mode, so does the
// forwarding window: patched pointers will name the destination while the
// data still lives at the source, and the window forwards those accesses
// back until the copy lands.
func (st *moveState) phaseNegotiate() error {
	dst, err := st.req.NegotiateDst(st.src, st.pages)
	if err != nil {
		return fmt.Errorf("runtime: move negotiation failed: %w", err)
	}
	st.dst = dst
	st.bd.MoveCycles += st.pages * cycPageAlloc
	st.txn = &moveTxn{}
	if st.meter.incremental() {
		if rs := st.req.Regions(); rs != nil {
			if err := rs.OpenForward(st.src, st.dst, st.length); err == nil {
				st.fwd = rs
			}
		}
	}
	return nil
}

// phasePatchEscapes implements steps 7-8: patch every escape of every
// affected allocation so each pointer names the address its target will
// have after the move. This is the phase incremental batching exists for —
// escape density is what scales the pause (Table 3).
func (st *moveState) phasePatchEscapes() error {
	for _, a := range st.affected {
		st.bd.AllocsMoved++
		for _, loc := range st.r.Table.EscapeLocsOf(a) {
			st.bd.PatchCycles += cycEscapePatch
			if err := st.meter.add(cycEscapePatch); err != nil {
				return err
			}
			val := st.r.mem.Load64(loc)
			if val >= st.src && val < st.src+st.length {
				if err := st.inj.Fail(fault.PatchFail, fmt.Sprintf("escape at %#x", loc)); err != nil {
					return err
				}
				st.txn.memWrites = append(st.txn.memWrites, memWrite{loc: loc, old: val})
				st.r.mem.Store64(loc, val-st.src+st.dst)
				st.bd.EscapesPatched++
			}
		}
	}
	return st.inj.Fail(fault.MoveAbort, "after escape patch")
}

// phasePatchRegisters patches in-register pointers (dumped by the opening
// world stop; the RegSet handles stay valid across batch boundaries). A
// register patch is word-atomic, so a boundary between two registers is
// safe: the patched ones read through the forwarding window.
func (st *moveState) phasePatchRegisters() error {
	for _, rs := range st.regs {
		vals := rs.Regs()
		for i, v := range vals {
			st.bd.RegCycles += cycRegScan
			if err := st.meter.add(cycRegScan); err != nil {
				return err
			}
			if v >= st.src && v < st.src+st.length {
				st.txn.regWrites = append(st.txn.regWrites, regWrite{rs: rs, i: i, old: v})
				rs.SetReg(i, v-st.src+st.dst)
				st.bd.RegCycles += cycRegPatch
				if err := st.meter.add(cycRegPatch); err != nil {
					return err
				}
				st.bd.RegsPatched++
			}
		}
	}
	return st.inj.Fail(fault.MoveAbort, "after register patch")
}

// phaseRebase performs the table maintenance: rebase moved allocations and
// any escape locations that themselves live in the moved range.
func (st *moveState) phaseRebase() error {
	for _, a := range st.affected {
		st.r.Table.Rebase(a, a.Base-st.src+st.dst)
		st.txn.rebased = append(st.txn.rebased, a)
	}
	moved := st.r.Table.RebaseEscapeLocs(st.src, st.src+st.length, st.dst)
	st.txn.escMoved = true
	st.bd.PatchCycles += uint64(moved) * cycEscapePatch
	if err := st.meter.addBulk(moved, cycEscapePatch); err != nil {
		return err
	}
	st.r.rebaseSwapLocs(st.src, st.dst, st.length)
	st.txn.swapMoved = true
	return st.inj.Fail(fault.MoveAbort, "before data copy")
}

// phaseCopy implements step 9: move the data. The copy is charged to the
// program clock in both modes, but attributed off-pause in incremental
// mode — a production runtime copies concurrently under the forwarding
// window, and the flip to the destination happens inside the final stop.
func (st *moveState) phaseCopy() error {
	if err := st.r.mem.Move(st.dst, st.src, st.length); err != nil {
		return fmt.Errorf("runtime: data move failed: %w", err)
	}
	st.txn.copied = true
	st.bd.MoveCycles += st.length * cycPerByteMove
	st.bd.PagesMoved = st.pages
	if st.fwd != nil {
		// Data is at the destination now: stale source pointers forward.
		st.fwd.FlipForward()
	}
	return nil
}

// phaseCommit implements step 10: retire the source frames. RetireSrc is
// the commit point — once the kernel retires the source the move is final
// and the forwarding window closes.
func (st *moveState) phaseCommit() error {
	if err := st.req.RetireSrc(st.src, st.pages); err != nil {
		return fmt.Errorf("runtime: source retire failed: %w", err)
	}
	st.closeForward()
	return nil
}

func (st *moveState) closeForward() {
	if st.fwd != nil {
		st.fwd.CloseForward()
		st.fwd = nil
	}
}

// fail unwinds a failed phase. Before destination negotiation (txn nil)
// nothing has mutated: a bare veto suffices. After it, the undo log rolls
// the address space back to the exact pre-move state. The pause observed
// at the abort covers the work since the last window boundary (legacy:
// the whole partial breakdown), matching the committed abort attribution.
func (st *moveState) fail(cause error) (kernel.MoveResult, uint64, uint64, uint64, error) {
	st.meter.abort("move_abort", st.bd.TotalCycles())
	if st.txn == nil {
		st.req.Veto()
		return kernel.MoveResult{}, 0, 0, 0, cause
	}
	st.closeForward()
	return kernel.MoveResult{}, 0, 0, 0, st.r.rollbackMove(st.req, st.txn, st.src, st.dst, st.length, cause)
}

// moveTxn is the undo log of one in-flight move: every mutation made
// after destination negotiation, recorded before it is applied. The
// booleans mark the all-or-nothing table/copy steps; the write logs keep
// original values in application order so rollback can restore them in
// reverse.
type moveTxn struct {
	memWrites []memWrite    // escape-location rewrites
	regWrites []regWrite    // saved-register rewrites
	rebased   []*Allocation // allocations rebased src->dst
	escMoved  bool          // escape locations rebased src->dst
	swapMoved bool          // swap-record escape locations rebased
	copied    bool          // data copied to dst (source zeroed)
}

type memWrite struct{ loc, old uint64 }

type regWrite struct {
	rs  RegSet
	i   int
	old uint64
}

// rollbackMove restores the exact pre-move state after an abort: undo the
// data copy, rebase tables back, restore registers and memory words in
// reverse application order, and return the negotiated destination to the
// kernel — whose region release raises EventInvalidateRange, so the VM's
// guard/translation caches drop anything covering the stillborn
// destination. The abort counts as a veto in the kernel's accounting.
// Returns the error the failed move reports, wrapping cause.
func (r *Runtime) rollbackMove(req *kernel.MoveRequest, txn *moveTxn, src, dst, length uint64, cause error) error {
	if txn.copied {
		if err := r.mem.Move(src, dst, length); err != nil {
			return fmt.Errorf("runtime: rollback copy-back failed: %v (aborting move: %w)", err, cause)
		}
	}
	if txn.swapMoved {
		r.rebaseSwapLocs(dst, src, length)
	}
	if txn.escMoved {
		r.Table.RebaseEscapeLocs(dst, dst+length, src)
	}
	for i := len(txn.rebased) - 1; i >= 0; i-- {
		a := txn.rebased[i]
		r.Table.Rebase(a, a.Base-dst+src)
	}
	for i := len(txn.regWrites) - 1; i >= 0; i-- {
		w := txn.regWrites[i]
		w.rs.SetReg(w.i, w.old)
	}
	for i := len(txn.memWrites) - 1; i >= 0; i-- {
		w := txn.memWrites[i]
		r.mem.Store64(w.loc, w.old)
	}
	if err := req.AbortDst(dst, length/kernel.PageSize); err != nil {
		return fmt.Errorf("runtime: rollback destination release failed: %v (aborting move: %w)", err, cause)
	}
	req.Veto()
	r.Stats.MoveRollbacks.Inc()
	r.tracer().Instant("fault.rollback", "fault",
		obs.A("src", src), obs.A("dst", dst), obs.A("bytes", length),
		obs.A("cause", cause.Error()))
	if err := r.Table.MaybeCheckInvariants(); err != nil {
		return fmt.Errorf("runtime: invariants violated after rollback: %v (aborting move: %w)", err, cause)
	}
	return fmt.Errorf("runtime: move aborted and rolled back: %w", cause)
}

// traceMove emits one span per Figure 8 protocol step, laid end to end on
// the simulated timeline starting at the current cycle. The 11 durations
// tile bd.TotalCycles() exactly: the cycBarrier world-stop cost splits
// across steps 1-4 and 11, ExpandCycles (minus the barrier) splits into
// table lookups (step 5) and allocation scans (step 6), and the remaining
// steps map one-to-one onto the Table 3 columns. Tracing reads the
// breakdown after the fact and charges nothing — results are identical
// with tracing on or off.
func (r *Runtime) traceMove(bd *MoveBreakdown, src, dst, length, lookupCyc, scanCyc uint64) {
	tr := r.tracer()
	if tr == nil {
		return
	}
	ts := tr.Now()
	durs := [11]uint64{
		cycStepRequest,
		cycStepInterrupt,
		cycStepDumpRegs,
		cycStepStop,
		lookupCyc,
		scanCyc,
		bd.PagesMoved * cycPageAlloc,
		bd.PatchCycles,
		bd.RegCycles,
		length * cycPerByteMove,
		cycStepResume,
	}
	tr.SpanAt("move", "protocol", ts, bd.TotalCycles(),
		obs.A("src", src), obs.A("dst", dst), obs.A("bytes", length),
		obs.A("allocs_moved", bd.AllocsMoved), obs.A("escapes_patched", bd.EscapesPatched),
		obs.A("regs_patched", bd.RegsPatched))
	for i, name := range MoveStepNames {
		tr.SpanAt(name, "protocol", ts, durs[i], obs.A("step", i+1))
		ts += durs[i]
	}
}

// WorstCasePage returns the page-aligned base of the page overlapping the
// allocation with the most escapes — the page the Figure 9 experiment
// repeatedly moves ("the runtime selects a page that overlaps the
// allocation with the most pointer escapes").
func (r *Runtime) WorstCasePage() (uint64, bool) {
	r.Flush()
	var best *Allocation
	bestN := -1
	r.Table.ForEach(func(a *Allocation) bool {
		if n := a.EscapeCount(); n > bestN {
			best, bestN = a, n
		}
		return true
	})
	if best == nil {
		return 0, false
	}
	return alignDown(best.Base), true
}

func alignDown(a uint64) uint64 { return a &^ (kernel.PageSize - 1) }
func alignUp(a uint64) uint64   { return (a + kernel.PageSize - 1) &^ (kernel.PageSize - 1) }
