package runtime

import (
	"testing"

	"carat/internal/guard"
	"carat/internal/kernel"
)

func TestSwapOutPatchesEscapesAndRegisters(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	alloc := base + 128
	if err := rt.TrackAlloc(alloc, 512); err != nil {
		t.Fatal(err)
	}
	loc := base + 2*kernel.PageSize
	k.Mem.Store64(loc, alloc+40)
	rt.TrackEscape(loc, alloc+40)
	rt.Flush()

	world := &fakeWorld{regs: []*fakeRegs{{vals: []uint64{alloc + 64, 777}}}}
	rt.SetWorld(world)

	slot, err := rt.SwapOut(alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Escape and register became decodable poison.
	pv := k.Mem.Load64(loc)
	s, off, ok := DecodeSwapPoison(pv)
	if !ok || s != slot || off != 40 {
		t.Fatalf("escape poison = %#x (slot %d off %d ok %v)", pv, s, off, ok)
	}
	if s, off, ok := DecodeSwapPoison(world.regs[0].vals[0]); !ok || s != slot || off != 64 {
		t.Fatalf("register poison wrong: %#x", world.regs[0].vals[0])
	}
	if world.regs[0].vals[1] != 777 {
		t.Error("unrelated register clobbered")
	}
	// Allocation gone from the table; data zeroed.
	if rt.Table.Covering(alloc) != nil {
		t.Error("swapped-out allocation still tracked")
	}
	if got := k.Mem.Load64(alloc + 40); got != 0 {
		t.Error("swapped-out bytes not reclaimed")
	}

	// Swap back in at a new location.
	newBase := base + 3*kernel.PageSize
	if err := rt.SwapIn(slot, newBase); err != nil {
		t.Fatal(err)
	}
	if got := k.Mem.Load64(loc); got != newBase+40 {
		t.Errorf("escape after swap-in = %#x, want %#x", got, newBase+40)
	}
	if got := world.regs[0].vals[0]; got != newBase+64 {
		t.Errorf("register after swap-in = %#x, want %#x", got, newBase+64)
	}
	if a := rt.Table.Covering(newBase + 10); a == nil || a.EscapeCount() != 1 {
		t.Error("allocation not reconstructed with its escapes")
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// Double swap-in must fail.
	if err := rt.SwapIn(slot, newBase); err == nil {
		t.Error("swap-in of consumed slot succeeded")
	}
}

func TestSwapInterleavedWithPageMove(t *testing.T) {
	// The poisoned escape LOCATION itself lives on a page the kernel then
	// moves; swap-in afterwards must patch the relocated location.
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(6*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	victim := base + 64 // allocation to swap out
	if err := rt.TrackAlloc(victim, 256); err != nil {
		t.Fatal(err)
	}
	// holder: a tracked allocation on another page holding the pointer.
	holderPage := base + 3*kernel.PageSize
	if err := rt.TrackAlloc(holderPage, 1024); err != nil {
		t.Fatal(err)
	}
	loc := holderPage + 16
	k.Mem.Store64(loc, victim+8)
	rt.TrackEscape(loc, victim+8)
	rt.Flush()

	slot, err := rt.SwapOut(victim)
	if err != nil {
		t.Fatal(err)
	}

	// Kernel moves the holder's page while the victim is swapped out.
	res, err := p.RequestMove(holderPage, 1)
	if err != nil {
		t.Fatal(err)
	}
	movedLoc := loc - res.Src + res.Dst
	if s, _, ok := DecodeSwapPoison(k.Mem.Load64(movedLoc)); !ok || s != slot {
		t.Fatalf("moved location lost its poison: %#x", k.Mem.Load64(movedLoc))
	}

	// Swap back in: the RELOCATED location must be patched.
	newBase := base + 5*kernel.PageSize
	if err := rt.SwapIn(slot, newBase); err != nil {
		t.Fatal(err)
	}
	if got := k.Mem.Load64(movedLoc); got != newBase+8 {
		t.Errorf("relocated escape after swap-in = %#x, want %#x", got, newBase+8)
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSwapInAfterCompactionMoveOfEscapeHolder(t *testing.T) {
	// The defragmentation daemon compacts memory while allocations sit in
	// swap: SwapOut a victim, then move the NEIGHBORING allocation that
	// holds the victim's (now poisoned) pointer with an allocation-
	// granularity compaction move. SwapIn must patch the escape at its
	// post-compaction location — and the poison must survive the move
	// verbatim (a poison value is not a heap pointer, so the move's
	// escape-patch pass must leave it alone).
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(6*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	victim := base // page-aligned victim allocation
	if err := rt.TrackAlloc(victim, 256); err != nil {
		t.Fatal(err)
	}
	holder := base + kernel.PageSize
	if err := rt.TrackAlloc(holder, 512); err != nil {
		t.Fatal(err)
	}
	loc := holder + 24
	k.Mem.Store64(loc, victim+8)
	rt.TrackEscape(loc, victim+8)
	// The holder is itself escaped (so the compaction move has real escape
	// work) — track the self-referential style used by linked structures.
	selfLoc := base + 4*kernel.PageSize
	if err := rt.TrackAlloc(selfLoc, 64); err != nil {
		t.Fatal(err)
	}
	k.Mem.Store64(selfLoc, holder+24)
	rt.TrackEscape(selfLoc, holder+24)
	rt.Flush()

	slot, err := rt.SwapOut(victim)
	if err != nil {
		t.Fatal(err)
	}
	poison := k.Mem.Load64(loc)
	if s, off, ok := DecodeSwapPoison(poison); !ok || s != slot || off != 8 {
		t.Fatalf("escape not poisoned: %#x", poison)
	}

	// Compact: move the holder allocation to the far end of the region.
	dst := base + 5*kernel.PageSize
	bd, err := rt.MoveAllocationTo(holder, dst)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ExpandCycles != 0 {
		t.Errorf("allocation-granularity move charged expand cycles (%d)", bd.ExpandCycles)
	}
	movedLoc := loc - holder + dst
	if got := k.Mem.Load64(movedLoc); got != poison {
		t.Fatalf("poison corrupted by compaction move: %#x, want %#x", got, poison)
	}
	// The pointer TO the moved location was patched forward.
	if got := k.Mem.Load64(selfLoc); got != movedLoc {
		t.Fatalf("holder escape not patched: %#x, want %#x", got, movedLoc)
	}

	// Swap back in: the swap record must have followed the location move.
	newBase := base + 3*kernel.PageSize
	if err := rt.SwapIn(slot, newBase); err != nil {
		t.Fatal(err)
	}
	if got := k.Mem.Load64(movedLoc); got != newBase+8 {
		t.Errorf("post-compaction escape after swap-in = %#x, want %#x", got, newBase+8)
	}
	// The stale pre-move location must NOT have been written.
	if got := k.Mem.Load64(loc); got != 0 {
		t.Errorf("swap-in wrote through the stale location: %#x", got)
	}
	if a := rt.Table.Covering(newBase); a == nil || a.EscapeCount() != 1 {
		t.Error("swapped-in allocation missing its escape")
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestSwapOutRejectsOversizedAndUntracked(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	if _, err := rt.SwapOut(0x9999); err == nil {
		t.Error("swap-out of untracked address succeeded")
	}
	if err := rt.TrackAlloc(0x40000, maxSwapLen+16); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapOut(0x40000); err == nil {
		t.Error("swap-out of oversized allocation succeeded")
	}
	if _, err := rt.SwappedLen(99); err == nil {
		t.Error("SwappedLen of bad slot succeeded")
	}
	if err := rt.SwapIn(99, 0x50000); err == nil {
		t.Error("SwapIn of bad slot succeeded")
	}
}

func TestMoveVetoOnImpossibleDestination(t *testing.T) {
	// When the kernel cannot grant a destination (memory exhausted), the
	// negotiation is vetoed and the world resumes consistently.
	k := kernel.New(1 << 16) // 16 pages only
	p := k.NewProcess()
	rt := New(k.Mem, nil)
	p.Handler = rt
	base, err := p.GrantRegion(15*kernel.PageSize, guard.PermRW) // all 15 usable pages
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.TrackAlloc(base+8, 64); err != nil {
		t.Fatal(err)
	}
	// No free page remains: the move must fail cleanly.
	if _, err := p.RequestMove(base, 1); err == nil {
		t.Fatal("move succeeded with no free destination")
	}
	if k.Stats.MoveVetoes.Get() != 1 {
		t.Errorf("vetoes = %d, want 1", k.Stats.MoveVetoes.Get())
	}
	// The source must still be intact and accessible.
	if !p.Regions.Check(base, 8, guard.PermRead) {
		t.Error("vetoed move lost the source region")
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
