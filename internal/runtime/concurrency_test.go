package runtime

import (
	"sync"
	"testing"

	"carat/internal/guard"
	"carat/internal/kernel"
)

// The tracking callbacks must be callable from inside a move/invalidation
// listener: listeners run with the world stopped but outside every runtime
// lock, so re-entry into TrackAlloc/TrackFree/TrackEscape (e.g. a profiler
// reacting to a move) must not deadlock.
func TestMoveListenerMayReenterRuntime(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	allocA := base + 64
	if err := rt.TrackAlloc(allocA, 256); err != nil {
		t.Fatal(err)
	}

	scratch := base + 3*kernel.PageSize
	var calls int
	rt.AddMoveListener(func(src, dst, length uint64) {
		calls++
		// Re-enter the tracking API from inside the listener. Any of these
		// deadlocks if the runtime still holds a lock while notifying.
		if err := rt.TrackAlloc(scratch, 64); err != nil {
			t.Errorf("re-entrant TrackAlloc: %v", err)
		}
		rt.TrackEscape(scratch+8, scratch)
		rt.Flush()
		if err := rt.TrackFree(scratch); err != nil {
			t.Errorf("re-entrant TrackFree: %v", err)
		}
		if rt.Table.Covering(allocA-src+dst) == nil {
			t.Error("listener sees pre-move table state")
		}
	})

	if _, err := p.RequestMove(base, 1); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("move listener ran %d times, want 1", calls)
	}
	_ = k
}

// Same contract for the invalidation listeners fired by swap-out/swap-in.
func TestInvalidationListenerMayReenterRuntime(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	alloc := base + 128
	if err := rt.TrackAlloc(alloc, 256); err != nil {
		t.Fatal(err)
	}
	k.Mem.Store64(base+kernel.PageSize, alloc)
	rt.TrackEscape(base+kernel.PageSize, alloc)
	rt.Flush()

	var ranges [][2]uint64
	rt.AddInvalidationListener(func(b, l uint64) {
		ranges = append(ranges, [2]uint64{b, l})
		// Re-enter: a listener may consult or mutate tracking state.
		rt.TrackEscape(base+kernel.PageSize+8, 0)
		rt.Flush()
	})

	slot, err := rt.SwapOut(alloc)
	if err != nil {
		t.Fatal(err)
	}
	newBase := base + 2*kernel.PageSize
	if err := rt.SwapIn(slot, newBase); err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 2 {
		t.Fatalf("invalidation listener ran %d times, want 2", len(ranges))
	}
	if ranges[0] != [2]uint64{alloc, 256} {
		t.Errorf("swap-out invalidated %#x+%d, want %#x+256", ranges[0][0], ranges[0][1], alloc)
	}
	if ranges[1] != [2]uint64{newBase, 256} {
		t.Errorf("swap-in invalidated %#x+%d, want %#x+256", ranges[1][0], ranges[1][1], newBase)
	}
}

// Concurrent escape tracking through per-thread buffers against the
// sharded table: run with -race. Writers hammer disjoint escape
// locations targeting shared allocations while readers walk the table.
func TestConcurrentEscapeTrackingSharded(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	const nAllocs = 32
	for i := uint64(0); i < nAllocs; i++ {
		if err := rt.TrackAlloc(0x100000+i*0x1000, 0x800); err != nil {
			t.Fatal(err)
		}
	}

	const nWriters = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := rt.NewEscapeBuffer()
			for i := 0; i < perWriter; i++ {
				loc := 0x400000 + uint64(w)*perWriter*8 + uint64(i)*8
				target := 0x100000 + uint64((w*perWriter+i)%nAllocs)*0x1000
				buf.Track(loc, target+uint64(i%0x800))
				if i%257 == 0 {
					buf.Flush()
				}
			}
			buf.Flush()
		}(w)
	}
	// Readers exercise lookup paths concurrently with the flushes.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.Table.EscapeCount()
				rt.Table.Covering(0x100000 + 0x400)
				rt.Table.EscapeTarget(0x400000)
				rt.Table.ForEach(func(a *Allocation) bool { return true })
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	rt.Flush()

	if got, want := rt.Table.EscapeCount(), nWriters*perWriter; got != want {
		t.Errorf("escape count = %d, want %d", got, want)
	}
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// Concurrent frees racing escape flushes must leave a consistent table:
// every surviving escape location maps to a live allocation.
func TestConcurrentFreeVsEscapeFlush(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	const n = 64
	for i := uint64(0); i < n; i++ {
		if err := rt.TrackAlloc(0x200000+i*0x1000, 0x100); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		buf := rt.NewEscapeBuffer()
		for i := 0; i < 4000; i++ {
			buf.Track(0x600000+uint64(i)*8, 0x200000+uint64(i%n)*0x1000)
			if i%101 == 0 {
				buf.Flush()
			}
		}
		buf.Flush()
	}()
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; i += 2 {
			_ = rt.TrackFree(0x200000 + i*0x1000)
		}
	}()
	wg.Wait()
	rt.Flush()
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
