//go:build caratdebug

package runtime

// debugInvariants gates the hot-path invariant walks (see
// MaybeCheckInvariants). This build has them on.
const debugInvariants = true
