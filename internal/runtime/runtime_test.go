package runtime

import (
	"math/rand"
	"testing"
	"testing/quick"

	"carat/internal/guard"
	"carat/internal/kernel"
)

func TestRBTreeBasic(t *testing.T) {
	var tr rbTree
	a := &Allocation{Base: 10, Len: 5}
	b := &Allocation{Base: 20, Len: 5}
	tr.Insert(10, a)
	tr.Insert(20, b)
	if tr.Len() != 2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Get(10) != a || tr.Get(20) != b || tr.Get(15) != nil {
		t.Error("Get wrong")
	}
	if k, v, ok := tr.Floor(15); !ok || k != 10 || v != a {
		t.Error("Floor wrong")
	}
	if k, _, ok := tr.Ceiling(15); !ok || k != 20 {
		t.Error("Ceiling wrong")
	}
	if !tr.Delete(10) || tr.Delete(10) {
		t.Error("Delete wrong")
	}
	if tr.Len() != 1 {
		t.Errorf("len after delete = %d", tr.Len())
	}
}

func TestRBTreeInvariantsUnderChurn(t *testing.T) {
	var tr rbTree
	rng := rand.New(rand.NewSource(42))
	live := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(5000))
		if rng.Intn(3) == 0 {
			tr.Delete(k)
			delete(live, k)
		} else {
			tr.Insert(k, &Allocation{Base: k, Len: 1})
			live[k] = true
		}
		if i%500 == 0 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("iteration %d: size %d != %d", i, tr.Len(), len(live))
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// In-order walk must be sorted and complete.
	var prev uint64
	first := true
	count := 0
	tr.AscendAll(func(k uint64, _ *Allocation) bool {
		if !first && k <= prev {
			t.Fatalf("walk out of order: %d after %d", k, prev)
		}
		prev, first = k, false
		count++
		return true
	})
	if count != len(live) {
		t.Fatalf("walk visited %d, want %d", count, len(live))
	}
}

func TestQuickRBTreeMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		var tr rbTree
		ref := map[uint64]*Allocation{}
		for _, op := range ops {
			k := uint64(op % 512)
			if op&0x8000 != 0 {
				tr.Delete(k)
				delete(ref, k)
			} else {
				a := &Allocation{Base: k}
				tr.Insert(k, a)
				ref[k] = a
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if tr.Get(k) != v {
				return false
			}
		}
		return tr.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllocationTableCovering(t *testing.T) {
	tb := NewAllocationTable()
	if _, err := tb.Insert(0x1000, 0x100, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(0x2000, 0x200, false); err != nil {
		t.Fatal(err)
	}
	if a := tb.Covering(0x1080); a == nil || a.Base != 0x1000 {
		t.Error("Covering missed interior address")
	}
	if a := tb.Covering(0x10ff); a == nil {
		t.Error("Covering missed last byte")
	}
	if tb.Covering(0x1100) != nil {
		t.Error("Covering hit one-past-end")
	}
	if tb.Covering(0x500) != nil {
		t.Error("Covering hit before first")
	}
}

func TestAllocationTableOverlapRejected(t *testing.T) {
	tb := NewAllocationTable()
	if _, err := tb.Insert(0x1000, 0x100, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(0x1080, 0x100, false); err == nil {
		t.Error("overlap from below accepted")
	}
	if _, err := tb.Insert(0xF80, 0x100, false); err == nil {
		t.Error("overlap from above accepted")
	}
	if _, err := tb.Insert(0xF00, 0x2000, false); err == nil {
		t.Error("containing overlap accepted")
	}
}

func TestAllocationTableOverlappingQuery(t *testing.T) {
	tb := NewAllocationTable()
	for _, base := range []uint64{0x1000, 0x3000, 0x5000, 0x7000} {
		if _, err := tb.Insert(base, 0x1800, false); err != nil {
			t.Fatal(err)
		}
	}
	got := tb.Overlapping(0x3800, 0x5800)
	if len(got) != 2 || got[0].Base != 0x3000 || got[1].Base != 0x5000 {
		t.Fatalf("Overlapping = %+v", got)
	}
	// Range starting inside the first allocation.
	got = tb.Overlapping(0x1400, 0x1500)
	if len(got) != 1 || got[0].Base != 0x1000 {
		t.Fatalf("interior Overlapping = %+v", got)
	}
	if got := tb.Overlapping(0x2800, 0x2900); len(got) != 0 {
		t.Fatalf("gap Overlapping = %+v", got)
	}
}

func TestEscapeRetargeting(t *testing.T) {
	tb := NewAllocationTable()
	a, _ := tb.Insert(0x1000, 0x100, false)
	b, _ := tb.Insert(0x2000, 0x100, false)
	if !tb.AddEscape(0x9000, 0x1010) {
		t.Fatal("escape to tracked allocation rejected")
	}
	if a.EscapeCount() != 1 {
		t.Fatal("escape not recorded")
	}
	// Overwrite the same location with a pointer to b.
	tb.AddEscape(0x9000, 0x2020)
	if a.EscapeCount() != 0 || b.EscapeCount() != 1 {
		t.Error("escape not retargeted")
	}
	if tb.EscapeCount() != 1 {
		t.Errorf("escape count = %d, want 1", tb.EscapeCount())
	}
	tb.RemoveEscape(0x9000)
	if tb.EscapeCount() != 0 || b.EscapeCount() != 0 {
		t.Error("RemoveEscape failed")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRemoveDropsEscapes(t *testing.T) {
	tb := NewAllocationTable()
	tb.Insert(0x1000, 0x100, false)
	tb.AddEscape(0x9000, 0x1000)
	tb.AddEscape(0x9008, 0x1008)
	if tb.Remove(0x1000) == nil {
		t.Fatal("Remove failed")
	}
	if tb.EscapeCount() != 0 {
		t.Errorf("escapes survive removal: %d", tb.EscapeCount())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func newTestRuntime(t testing.TB) (*kernel.Kernel, *kernel.Process, *Runtime) {
	k := kernel.New(1 << 22) // 4 MB
	p := k.NewProcess()
	rt := New(k.Mem, nil)
	p.Handler = rt
	return k, p, rt
}

func TestTrackingCallbacks(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	if err := rt.TrackAlloc(0x10000, 256); err != nil {
		t.Fatal(err)
	}
	rt.TrackEscape(0x20000, 0x10040)
	rt.Flush()
	if rt.Stats.Allocs.Get() != 1 || rt.Stats.EscapeEvents.Get() != 1 {
		t.Errorf("stats = %+v", rt.Stats)
	}
	if rt.Table.EscapeCount() != 1 {
		t.Error("escape not in table after flush")
	}
	if err := rt.TrackFree(0x10000); err != nil {
		t.Fatal(err)
	}
	if rt.Table.Len() != 0 {
		t.Error("allocation survives free")
	}
	if err := rt.TrackFree(0x10000); err == nil {
		t.Error("double free not reported")
	}
}

func TestStaticAllocationsNotFreeable(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	if err := rt.TrackStatic(0x10000, 4096); err != nil {
		t.Fatal(err)
	}
	if err := rt.TrackFree(0x10000); err == nil {
		t.Error("freeing a static allocation must fail")
	}
	if rt.Table.Len() != 1 {
		t.Error("static allocation lost after bad free")
	}
}

func TestEscapeBatchDedup(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	rt.TrackAlloc(0x10000, 256)
	rt.TrackAlloc(0x20000, 256)
	// Same location written 100 times; only the last write counts.
	for i := 0; i < 99; i++ {
		rt.TrackEscape(0x30000, 0x10000)
	}
	rt.TrackEscape(0x30000, 0x20000)
	rt.Flush()
	hist := rt.EscapeHistogram()
	if len(hist) != 2 || hist[0] != 0 || hist[1] != 1 {
		t.Errorf("histogram = %v, want [0 1]", hist)
	}
}

func TestEscapeBatchAutoFlush(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	rt.TrackAlloc(0x10000, 8192)
	for i := 0; i < DefaultBatchSize; i++ {
		rt.TrackEscape(0x40000+uint64(i)*8, 0x10000+uint64(i))
	}
	if rt.Stats.BatchFlushes.Get() == 0 {
		t.Error("batch did not auto-flush at threshold")
	}
}

func TestEscapeToUntrackedTarget(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	rt.TrackEscape(0x30000, 0xDEAD0)
	rt.Flush()
	if rt.Stats.UntrackedEsc.Get() != 1 {
		t.Errorf("untracked escapes = %d", rt.Stats.UntrackedEsc.Get())
	}
}

// fakeRegs implements RegSet for move tests.
type fakeRegs struct{ vals []uint64 }

func (f *fakeRegs) Regs() []uint64         { return f.vals }
func (f *fakeRegs) SetReg(i int, v uint64) { f.vals[i] = v }

// fakeWorld hands back fixed register sets. It implements BoundedWorld
// (mirroring the worldtest fake, which internal test files cannot import —
// worldtest imports runtime) and panics on nested stops, like the real VM
// scheduler.
type fakeWorld struct {
	regs    []*fakeRegs
	stops   int
	resumes int

	batchStops   int
	batchResumes int
	stopped      bool
}

func (w *fakeWorld) handles() []RegSet {
	out := make([]RegSet, len(w.regs))
	for i, r := range w.regs {
		out[i] = r
	}
	return out
}

func (w *fakeWorld) StopTheWorld() []RegSet {
	if w.stopped {
		panic("fakeWorld: nested world stop")
	}
	w.stopped = true
	w.stops++
	return w.handles()
}
func (w *fakeWorld) ResumeTheWorld() { w.stopped = false; w.resumes++ }

func (w *fakeWorld) StopBatch() []RegSet {
	if w.stopped {
		panic("fakeWorld: nested world stop")
	}
	w.stopped = true
	w.batchStops++
	return w.handles()
}
func (w *fakeWorld) ResumeBatch() { w.stopped = false; w.batchResumes++ }

func TestHandleMovePatchesEverything(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(4*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}

	// Allocation A on the first page, with escapes: one outside the moved
	// range, one inside it (self-referential), one in a register.
	allocA := base + 64
	if err := rt.TrackAlloc(allocA, 512); err != nil {
		t.Fatal(err)
	}
	// A second allocation on a later page that must not move.
	allocB := base + 3*kernel.PageSize
	if err := rt.TrackAlloc(allocB, 128); err != nil {
		t.Fatal(err)
	}

	outsideLoc := base + 2*kernel.PageSize // holds pointer to A
	insideLoc := allocA + 16               // inside A, holds pointer to A
	k.Mem.Store64(outsideLoc, allocA+100)
	k.Mem.Store64(insideLoc, allocA+200)
	rt.TrackEscape(outsideLoc, allocA+100)
	rt.TrackEscape(insideLoc, allocA+200)
	// And a location inside the moved range pointing to B (loc moves, B not).
	locToB := allocA + 32
	k.Mem.Store64(locToB, allocB+8)
	rt.TrackEscape(locToB, allocB+8)
	rt.Flush()

	world := &fakeWorld{regs: []*fakeRegs{{vals: []uint64{allocA + 300, 12345, allocB}}}}
	rt.SetWorld(world)

	res, err := p.RequestMove(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 1 {
		t.Fatalf("pages moved = %d, want 1", res.Pages)
	}
	dst := res.Dst
	delta := dst - res.Src

	// Outside escape patched to the new location.
	if got := k.Mem.Load64(outsideLoc); got != allocA+100+delta {
		t.Errorf("outside escape = %#x, want %#x", got, allocA+100+delta)
	}
	// Inside escape moved with the page and patched.
	if got := k.Mem.Load64(insideLoc + delta); got != allocA+200+delta {
		t.Errorf("inside escape = %#x, want %#x", got, allocA+200+delta)
	}
	// Pointer to B moved with the page but its value must be unchanged.
	if got := k.Mem.Load64(locToB + delta); got != allocB+8 {
		t.Errorf("pointer to B = %#x, want unchanged %#x", got, allocB+8)
	}
	// Register patched; non-pointer register untouched; pointer to B kept.
	regs := world.regs[0].vals
	if regs[0] != allocA+300+delta {
		t.Errorf("register = %#x, want %#x", regs[0], allocA+300+delta)
	}
	if regs[1] != 12345 || regs[2] != allocB {
		t.Errorf("unrelated registers clobbered: %v", regs)
	}
	// Table updated.
	if a := rt.Table.Covering(allocA + delta); a == nil || a.Base != allocA+delta {
		t.Error("allocation not rebased in table")
	}
	if rt.Table.Covering(allocA) != nil {
		t.Error("stale allocation remains at old base")
	}
	// No escape may still point into the vacated range (DESIGN invariant).
	rt.Table.ForEach(func(a *Allocation) bool {
		for _, loc := range a.EscapeLocs() {
			v := k.Mem.Load64(loc)
			if v >= res.Src && v < res.Src+res.Pages*kernel.PageSize {
				t.Errorf("escape at %#x still points into vacated range: %#x", loc, v)
			}
		}
		return true
	})
	if err := rt.Table.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if world.stops != 1 || world.resumes != 1 {
		t.Errorf("world stop/resume = %d/%d", world.stops, world.resumes)
	}
	// Breakdown recorded.
	if len(rt.MoveStats) != 1 {
		t.Fatalf("move stats = %d entries", len(rt.MoveStats))
	}
	bd := rt.MoveStats[0]
	if bd.EscapesPatched != 2 || bd.RegsPatched != 1 || bd.PagesMoved != 1 {
		t.Errorf("breakdown = %+v", bd)
	}
	if bd.TotalCycles() <= bd.PrototypeCycles() {
		t.Error("total cycles must include movement")
	}
}

func TestHandleMoveExpandsStraddlingAllocation(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	base, err := p.GrantRegion(8*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	// Allocation straddles pages 1-2 (requested move: page 1 only).
	straddler := base + kernel.PageSize + kernel.PageSize/2
	if err := rt.TrackAlloc(straddler, kernel.PageSize); err != nil {
		t.Fatal(err)
	}
	k.Mem.Store64(straddler, 0xABCD)

	res, err := p.RequestMove(base+kernel.PageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages != 2 {
		t.Fatalf("expanded pages = %d, want 2", res.Pages)
	}
	// Data follows the allocation.
	newBase := straddler - res.Src + res.Dst
	if got := k.Mem.Load64(newBase); got != 0xABCD {
		t.Errorf("straddler data = %#x", got)
	}
	if a := rt.Table.Covering(newBase); a == nil {
		t.Error("straddler not rebased")
	}
}

func TestHandleProtectStopsWorld(t *testing.T) {
	k, p, rt := newTestRuntime(t)
	world := &fakeWorld{}
	rt.SetWorld(world)
	base, err := p.GrantRegion(2*kernel.PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RequestProtect(base, kernel.PageSize, guard.PermRead); err != nil {
		t.Fatal(err)
	}
	if world.stops != 1 || world.resumes != 1 {
		t.Error("protect did not stop/resume the world")
	}
	if p.Regions.Check(base, 8, guard.PermWrite) {
		t.Error("protection change not applied")
	}
	_ = k
}

func TestWorstCasePage(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	rt.TrackAlloc(0x10000, 256)
	rt.TrackAlloc(0x20000, 256)
	for i := 0; i < 5; i++ {
		rt.TrackEscape(0x5000+uint64(i)*8, 0x20000)
	}
	rt.TrackEscape(0x6000, 0x10000)
	page, ok := rt.WorstCasePage()
	if !ok || page != 0x20000 {
		t.Errorf("worst-case page = %#x, want 0x20000", page)
	}
}

func TestMemoryOverheadGrowsWithTracking(t *testing.T) {
	_, _, rt := newTestRuntime(t)
	before := rt.MemoryOverheadBytes()
	for i := uint64(0); i < 100; i++ {
		rt.TrackAlloc(0x100000+i*0x1000, 64)
		rt.TrackEscape(0x80000+i*8, 0x100000+i*0x1000)
	}
	rt.Flush()
	after := rt.MemoryOverheadBytes()
	if after <= before {
		t.Error("tracking memory overhead did not grow")
	}
}

// Property: random alloc/free/escape storms keep the table invariants.
func TestQuickTableInvariantsUnderStorm(t *testing.T) {
	f := func(seed int64) bool {
		_, _, rt := newTestRuntime(t)
		rng := rand.New(rand.NewSource(seed))
		bases := []uint64{}
		for i := 0; i < 500; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				base := 0x10000 + uint64(rng.Intn(1000))*0x200
				if rt.TrackAlloc(base, uint64(rng.Intn(0x1ff)+1)) == nil {
					bases = append(bases, base)
				}
			case 2:
				if len(bases) > 0 {
					i := rng.Intn(len(bases))
					if rt.TrackFree(bases[i]) == nil {
						bases = append(bases[:i], bases[i+1:]...)
					}
				}
			case 3:
				if len(bases) > 0 {
					target := bases[rng.Intn(len(bases))] + uint64(rng.Intn(32))
					rt.TrackEscape(0x400000+uint64(rng.Intn(4096))*8, target)
				}
			}
		}
		rt.Flush()
		return rt.Table.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
