//go:build !caratdebug

package runtime

// debugInvariants gates the hot-path invariant walks (see
// MaybeCheckInvariants). Build with -tags caratdebug to enable them.
const debugInvariants = false
