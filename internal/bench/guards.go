package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"carat/internal/guard"
)

// Fig4Point is one (mechanism/pattern, region count) measurement.
type Fig4Point struct {
	Mechanism string  `json:"mechanism"`
	Pattern   string  `json:"pattern"` // "random" or "stride N"
	Regions   int     `json:"regions"`
	AvgCycles float64 `json:"avg_cycles"`
}

// Fig4Result reproduces Figure 4: multi-region software guard performance
// as a function of region count, for random accesses (if-tree and binary
// search) and strided accesses (if-tree at several strides).
type Fig4Result struct {
	Points []Fig4Point `json:"points"`
}

// fig4RegionCounts mirrors the paper's x-axis (1 .. 16384, log scale).
var fig4RegionCounts = []int{1, 4, 16, 64, 256, 1024, 4096, 16384}

// fig4Strides mirrors Figure 4(b)'s stride series (bytes between probes).
var fig4Strides = []int{8, 64, 512, 4096, 16384}

// Fig4 runs the guard microbenchmark. It needs no workloads: it probes the
// guard mechanisms directly, the way the paper's t620 microbenchmark does.
func Fig4(o Options) (*Fig4Result, error) {
	const probes = 30000
	res := &Fig4Result{}
	for _, n := range fig4RegionCounts {
		set := guard.NewRegionSet()
		base := uint64(0x100000)
		regionSpan := uint64(0x2000)
		for i := 0; i < n; i++ {
			if err := set.Add(guard.Region{
				Base: base + uint64(i)*regionSpan, Len: 0x1000, Perm: guard.PermRW,
			}); err != nil {
				return nil, err
			}
		}
		total := uint64(n) * regionSpan

		// Random accesses: if-tree and binary search (Figure 4a).
		for _, mech := range []guard.Mechanism{guard.MechIfTree, guard.MechBinarySearch} {
			ev := guard.NewEvaluator(mech, set)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < probes; i++ {
				region := rng.Intn(n)
				addr := base + uint64(region)*regionSpan + uint64(rng.Intn(0x1000/8))*8
				ev.Check(addr, 8, guard.PermRead)
			}
			res.Points = append(res.Points, Fig4Point{
				Mechanism: mech.String(), Pattern: "random", Regions: n, AvgCycles: ev.AvgCycles(),
			})
		}
		// Strided accesses: if-tree at several strides (Figure 4b).
		for _, stride := range fig4Strides {
			ev := guard.NewEvaluator(guard.MechIfTree, set)
			addr := base
			for i := 0; i < probes; i++ {
				// Step by the stride, skipping the gaps between regions.
				off := (addr - base) % regionSpan
				if off >= 0x1000 {
					addr += regionSpan - off
				}
				if addr >= base+total {
					addr = base
				}
				ev.Check(addr, 8, guard.PermRead)
				addr += uint64(stride)
			}
			res.Points = append(res.Points, Fig4Point{
				Mechanism: "iftree", Pattern: fmt.Sprintf("stride %d", stride),
				Regions: n, AvgCycles: ev.AvgCycles(),
			})
		}
	}
	return res, nil
}

// Print renders both panels' series.
func (r *Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: multi-region software guard cost (cycles per check)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "mechanism\tpattern\tregions\tavg cycles")
		for _, p := range r.Points {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.2f\n", p.Mechanism, p.Pattern, p.Regions, p.AvgCycles)
		}
	})
}
