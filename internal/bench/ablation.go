package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/vm"
	"carat/internal/workload"
)

// Ablations of the design choices DESIGN.md calls out, realizing the
// paper's §6 future-work directions so they can be measured against the
// baseline design:
//
//   - allocation-granularity moves vs page-granularity moves (the paper
//     predicts a ~95% cost reduction from eliminating the page-semantics
//     impedance mismatch);
//   - the single-region "dark capsule" layout vs the multi-region layout
//     (the optimal case for guards, §3).

// AblAllocRow compares per-move prototype costs for one benchmark.
type AblAllocRow struct {
	Name       string  `json:"name"`
	PageCyc    float64 `json:"page_cycles"`  // avg total cycles per page-granularity move
	AllocCyc   float64 `json:"alloc_cycles"` // avg total cycles per allocation-granularity move
	Reduction  float64 `json:"reduction"`    // 1 - AllocCyc/PageCyc
	PageMoves  int     `json:"page_moves"`
	AllocMoves int     `json:"alloc_moves"`
	PageProto  float64 `json:"page_proto"` // prototype (non-data-movement) cycles
	AllocProto float64 `json:"alloc_proto"`
}

// AblAllocResult is the allocation-granularity ablation.
type AblAllocResult struct {
	Rows         []AblAllocRow `json:"rows"`
	GeoReduction float64       `json:"geomean_reduction"`
}

// AblationAllocGranularity measures both move engines on heap-allocating
// benchmarks.
func AblationAllocGranularity(o Options) (*AblAllocResult, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*AblAllocRow, error) {
		var pageVM, allocVM *vm.VM
		_, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange,
			func(v *vm.VM) {
				pageVM = v
				v.SetMovePolicy(moveEveryInstrs(o), func() error { return v.InjectWorstCaseMove() })
			})
		if err != nil {
			return nil, err
		}
		_, _, err = o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange,
			func(v *vm.VM) {
				allocVM = v
				v.SetMovePolicy(moveEveryInstrs(o), func() error {
					// Benchmarks without heap allocations cannot play.
					if e := v.InjectWorstCaseAllocationMove(); e != nil {
						return nil
					}
					return nil
				})
			})
		if err != nil {
			return nil, err
		}
		ps, as := pageVM.Runtime().MoveStats, allocVM.Runtime().MoveStats
		if len(ps) == 0 || len(as) == 0 {
			return nil, nil // nothing movable at both granularities: skip
		}
		row := &AblAllocRow{Name: w.Name, PageMoves: len(ps), AllocMoves: len(as)}
		for _, bd := range ps {
			row.PageCyc += float64(bd.TotalCycles())
			row.PageProto += float64(bd.PrototypeCycles())
		}
		for _, bd := range as {
			row.AllocCyc += float64(bd.TotalCycles())
			row.AllocProto += float64(bd.PrototypeCycles())
		}
		row.PageCyc /= float64(len(ps))
		row.PageProto /= float64(len(ps))
		row.AllocCyc /= float64(len(as))
		row.AllocProto /= float64(len(as))
		if row.PageCyc > 0 {
			row.Reduction = 1 - row.AllocCyc/row.PageCyc
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblAllocResult{}
	var reds []float64
	for _, rp := range rows {
		if rp == nil {
			continue
		}
		res.Rows = append(res.Rows, *rp)
		if rp.AllocCyc > 0 && rp.PageCyc > 0 {
			reds = append(reds, rp.AllocCyc/rp.PageCyc)
		}
	}
	if g := geomean(reds); g > 0 {
		res.GeoReduction = 1 - g
	}
	return res, nil
}

// Print renders the ablation table.
func (r *AblAllocResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: allocation-granularity vs page-granularity moves (§6)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tpage cyc/move\talloc cyc/move\treduction\tpage proto\talloc proto")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.1f%%\t%.0f\t%.0f\n",
				row.Name, row.PageCyc, row.AllocCyc, row.Reduction*100, row.PageProto, row.AllocProto)
		}
		fmt.Fprintf(tw, "geomean reduction\t\t\t%.1f%%\n", r.GeoReduction*100)
	})
}

// AblCapsuleRow compares guarded execution under the two layouts.
type AblCapsuleRow struct {
	Name       string  `json:"name"`
	MultiCyc   uint64  `json:"multi_cycles"`
	CapsuleCyc uint64  `json:"capsule_cycles"`
	Speedup    float64 `json:"speedup"` // MultiCyc / CapsuleCyc
}

// AblCapsuleResult is the dark-capsule ablation.
type AblCapsuleResult struct {
	Rows       []AblCapsuleRow `json:"rows"`
	GeoSpeedup float64         `json:"geomean_speedup"`
}

// AblationCapsule runs guarded builds under the multi-region and capsule
// layouts.
func AblationCapsule(o Options) (*AblCapsuleResult, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*AblCapsuleRow, error) {
		multi, _, err := o.buildAndRun(w, passes.LevelGuardsOpt, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		m := w.Build(o.Scale)
		pl := passes.Build(passes.LevelGuardsOpt)
		pl.Obs = o.Obs
		pl.Workers = 1
		if err := pl.Run(m); err != nil {
			return nil, err
		}
		cfg := o.vmConfig(vm.ModeCARAT, guard.MechRange)
		cfg.Capsule = true
		// The capsule heap also hosts stacks.
		cfg.HeapBytes += cfg.StackBytes * 2
		capV, err := vm.Load(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		if _, err := capV.Run(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		return &AblCapsuleRow{
			Name:       w.Name,
			MultiCyc:   multi.Cycles,
			CapsuleCyc: capV.Cycles,
			Speedup:    float64(multi.Cycles) / float64(capV.Cycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblCapsuleResult{}
	var sps []float64
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		sps = append(sps, rp.Speedup)
	}
	res.GeoSpeedup = geomean(sps)
	return res, nil
}

// Print renders the ablation table.
func (r *AblCapsuleResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Ablation: single-region capsule vs multi-region layout (guarded builds)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tmulti-region cyc\tcapsule cyc\tspeedup")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\n", row.Name, row.MultiCyc, row.CapsuleCyc, row.Speedup)
		}
		fmt.Fprintf(tw, "geomean\t\t\t%.3f\n", r.GeoSpeedup)
	})
}
