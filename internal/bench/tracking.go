package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/vm"
	"carat/internal/workload"
)

// ---------------------------------------------------------------- Figure 5

// Fig5Row summarizes one benchmark's escapes-per-allocation distribution.
type Fig5Row struct {
	Name        string `json:"name"`
	Allocations int    `json:"allocations"`
	// HistLow counts allocations by escape count for counts 0..50.
	HistLow [51]int `json:"hist_low"`
	// Over50 lists the escape counts of allocations with more than 50
	// escapes (Figure 5b's outliers).
	Over50 []int `json:"over50,omitempty"`
	// P90 is the 90th-percentile escape count.
	P90 int `json:"p90"`
	Max int `json:"max"`
}

// Fig5Result reproduces Figure 5, the escapes-per-allocation histograms.
type Fig5Result struct {
	Rows []Fig5Row `json:"rows"`
	// FracLE10 is the suite-wide fraction of allocations with <= 10
	// escapes (the paper reports 90%).
	FracLE10 float64 `json:"frac_le10"`
	// TotalOver50 is the suite-wide count of allocations with > 50
	// escapes (the paper counts 22).
	TotalOver50 int `json:"total_over50"`
}

// fig5Leg is one workload's histogram plus its contribution to the
// suite-wide fractions.
type fig5Leg struct {
	row         Fig5Row
	le10, total int
}

// Fig5 runs every benchmark fully instrumented and collects the histogram.
func Fig5(o Options) (*Fig5Result, error) {
	legs, err := eachWorkload(o, func(w *workload.Workload) (*fig5Leg, error) {
		v, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		hist := v.Runtime().EscapeHistogram()
		leg := &fig5Leg{row: Fig5Row{Name: w.Name, Allocations: len(hist)}}
		sorted := append([]int(nil), hist...)
		sort.Ints(sorted)
		for _, h := range hist {
			switch {
			case h <= 50:
				leg.row.HistLow[h]++
			default:
				leg.row.Over50 = append(leg.row.Over50, h)
			}
			if h <= 10 {
				leg.le10++
			}
			if h > leg.row.Max {
				leg.row.Max = h
			}
			leg.total++
		}
		if len(sorted) > 0 {
			leg.row.P90 = sorted[len(sorted)*9/10]
		}
		return leg, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var le10, total int
	for _, leg := range legs {
		res.TotalOver50 += len(leg.row.Over50)
		res.Rows = append(res.Rows, leg.row)
		le10 += leg.le10
		total += leg.total
	}
	if total > 0 {
		res.FracLE10 = float64(le10) / float64(total)
	}
	return res, nil
}

// Print renders the histograms' summary statistics.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: escapes per allocation")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tallocations\t0 esc\t1-2 esc\t3-10 esc\t11-50 esc\t>50 esc\tp90\tmax")
		for _, row := range r.Rows {
			b12 := row.HistLow[1] + row.HistLow[2]
			b310, b1150 := 0, 0
			for i := 3; i <= 10; i++ {
				b310 += row.HistLow[i]
			}
			for i := 11; i <= 50; i++ {
				b1150 += row.HistLow[i]
			}
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				row.Name, row.Allocations, row.HistLow[0], b12, b310, b1150,
				len(row.Over50), row.P90, row.Max)
		}
	})
	fmt.Fprintf(w, "suite: %.1f%% of allocations have <= 10 escapes; %d allocations exceed 50\n",
		r.FracLE10*100, r.TotalOver50)
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one benchmark's tracking-memory overhead.
type Fig6Row struct {
	Name          string  `json:"name"`
	BaselineBytes uint64  `json:"baseline_bytes"`
	TrackingBytes uint64  `json:"tracking_bytes"`
	Ratio         float64 `json:"ratio"` // (baseline+tracking)/baseline, Figure 6's bars
}

// Fig6Result reproduces Figure 6, "Memory overhead of tracking".
type Fig6Result struct {
	Rows    []Fig6Row `json:"rows"`
	Geomean float64   `json:"geomean"`
}

// Fig6 measures the allocation-table and escape-map footprint against the
// program's own memory.
func Fig6(o Options) (*Fig6Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Fig6Row, error) {
		v, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		base := v.ProgramFootprintBytes()
		track := v.Runtime().MemoryOverheadBytes()
		return &Fig6Row{
			Name:          w.Name,
			BaselineBytes: base,
			TrackingBytes: track,
			Ratio:         float64(base+track) / float64(base),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	var ratios []float64
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		ratios = append(ratios, rp.Ratio)
	}
	res.Geomean = geomean(ratios)
	return res, nil
}

// Print renders the figure's bars.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: memory overhead of tracking (normalized, baseline = 1.0)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tbaseline bytes\ttracking bytes\tCARAT/baseline")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\n", row.Name, row.BaselineBytes, row.TrackingBytes, row.Ratio)
		}
		fmt.Fprintf(tw, "geomean\t\t\t%.3f\n", r.Geomean)
	})
}

// ---------------------------------------------------------------- Figure 7

// Fig7Row is one benchmark's tracking-time overhead.
type Fig7Row struct {
	Name     string  `json:"name"`
	Baseline uint64  `json:"baseline_cycles"` // cycles, uninstrumented
	CARAT    uint64  `json:"carat_cycles"`    // cycles, tracking only (no guards)
	Ratio    float64 `json:"ratio"`
}

// Fig7Result reproduces Figure 7, "Time overhead of tracking allocations &
// escapes".
type Fig7Result struct {
	Rows    []Fig7Row `json:"rows"`
	Geomean float64   `json:"geomean"`
}

// Fig7 compares tracking-only builds against the baseline.
func Fig7(o Options) (*Fig7Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Fig7Row, error) {
		base, _, err := o.buildAndRun(w, passes.LevelNone, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		tr, _, err := o.buildAndRun(w, passes.LevelTrackingOnly, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		return &Fig7Row{
			Name:     w.Name,
			Baseline: base.Cycles,
			CARAT:    tr.Cycles,
			Ratio:    float64(tr.Cycles) / float64(base.Cycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	var ratios []float64
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		ratios = append(ratios, rp.Ratio)
	}
	res.Geomean = geomean(ratios)
	return res, nil
}

// Print renders the figure's bars.
func (r *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: time overhead of tracking (normalized, baseline = 1.0)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tbaseline cyc\tCARAT cyc\tratio")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\n", row.Name, row.Baseline, row.CARAT, row.Ratio)
		}
		fmt.Fprintf(tw, "geomean\t\t\t%.3f\n", r.Geomean)
	})
}
