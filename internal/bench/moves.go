package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/runtime"
	"carat/internal/vm"
	"carat/internal/workload"
)

// Fig9Rates are the forced worst-case page-move rates (moves per simulated
// second) that Figure 9 sweeps.
var Fig9Rates = []float64{1, 100, 10000, 20000}

// Fig9Row is one benchmark's overhead across the rate sweep.
type Fig9Row struct {
	Name     string `json:"name"`
	Baseline uint64 `json:"baseline_cycles"` // cycles of the CARAT build with no forced moves
	// Overhead[i] is cycles(rate i)/Baseline; Moves[i] counts moves done.
	Overhead []float64 `json:"overhead"`
	Moves    []int     `json:"moves"`
}

// Fig9Result reproduces Figure 9, "Worst-case page movement overheads".
type Fig9Result struct {
	Rates    []float64 `json:"rates"`
	Rows     []Fig9Row `json:"rows"`
	Geomeans []float64 `json:"geomeans"`
}

// Fig9 runs each benchmark fully instrumented while a move policy forces a
// worst-case page move (the page overlapping the most-escaped allocation)
// at each target rate. Rates are converted from moves/second to an
// instruction period using the benchmark's own baseline CPI at the modeled
// 2.3 GHz clock.
func Fig9(o Options) (*Fig9Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Fig9Row, error) {
		base, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		cpi := float64(base.Cycles) / float64(base.Instrs)
		row := &Fig9Row{Name: w.Name, Baseline: base.Cycles}
		for _, rate := range Fig9Rates {
			period := uint64(CPUFreqHz / (rate * cpi))
			if period == 0 {
				period = 1
			}
			moves := 0
			v, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange,
				func(v *vm.VM) {
					v.SetMovePolicy(period, func() error {
						moves++
						return v.InjectWorstCaseMove()
					})
				})
			if err != nil {
				return nil, err
			}
			ov := float64(v.Cycles) / float64(base.Cycles)
			row.Overhead = append(row.Overhead, ov)
			row.Moves = append(row.Moves, moves)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{Rates: Fig9Rates}
	perRate := make([][]float64, len(Fig9Rates))
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		for i, ov := range rp.Overhead {
			perRate[i] = append(perRate[i], ov)
		}
	}
	for _, xs := range perRate {
		res.Geomeans = append(res.Geomeans, geomean(xs))
	}
	return res, nil
}

// Print renders the figure's bars.
func (r *Fig9Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 9: worst-case page movement overhead (normalized to CARAT baseline)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprint(tw, "benchmark")
		for _, rate := range r.Rates {
			fmt.Fprintf(tw, "\t%.0f/s", rate)
		}
		fmt.Fprintln(tw, "\tmoves@max")
		for _, row := range r.Rows {
			fmt.Fprint(tw, row.Name)
			for _, ov := range row.Overhead {
				fmt.Fprintf(tw, "\t%.3f", ov)
			}
			fmt.Fprintf(tw, "\t%d\n", row.Moves[len(row.Moves)-1])
		}
		fmt.Fprint(tw, "geomean")
		for _, g := range r.Geomeans {
			fmt.Fprintf(tw, "\t%.3f", g)
		}
		fmt.Fprintln(tw)
	})
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one benchmark's per-move cycle breakdown.
type Table3Row struct {
	Name          string  `json:"name"`
	PageExpand    float64 `json:"page_expand"` // avg cycles
	PatchGenExec  float64 `json:"patch_gen_exec"`
	RegisterPatch float64 `json:"register_patch"`
	AllocAndMove  float64 `json:"alloc_and_move"`
	ProtoCost     float64 `json:"proto_cost"`      // expand + patch + regs
	ProtoNoExpand float64 `json:"proto_no_expand"` // patch + regs
	TotalCost     float64 `json:"total_cost"`
	FracNoExpand  float64 `json:"frac_no_expand"` // ProtoNoExpand / TotalCost (rightmost column)
	Moves         int     `json:"moves"`
}

// Table3Result reproduces Table 3, "Worst-case Page Movement Costs in
// Cycles".
type Table3Result struct {
	Rows    []Table3Row `json:"rows"`
	GeoMean Table3Row   `json:"geomean"`
}

// Table3 forces a steady worst-case move stream on each benchmark and
// averages the runtime's per-move breakdowns.
func Table3(o Options) (*Table3Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Table3Row, error) {
		var vref *vm.VM
		_, _, err := o.buildAndRun(w, passes.LevelTracking, vm.ModeCARAT, guard.MechRange,
			func(v *vm.VM) {
				vref = v
				v.SetMovePolicy(moveEveryInstrs(o), func() error { return v.InjectWorstCaseMove() })
			})
		if err != nil {
			return nil, err
		}
		stats := vref.Runtime().MoveStats
		if len(stats) == 0 {
			return nil, nil // nothing movable: skip this workload
		}
		row := averageBreakdown(w.Name, stats)
		return &row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table3Result{GeoMean: Table3Row{Name: "Geo. Mean"}}
	var expands, patches, regs, movesC, protos, noexp, totals, fracs []float64
	for _, rp := range rows {
		if rp == nil {
			continue
		}
		row := *rp
		res.Rows = append(res.Rows, row)
		expands = append(expands, row.PageExpand)
		patches = append(patches, row.PatchGenExec)
		regs = append(regs, row.RegisterPatch)
		movesC = append(movesC, row.AllocAndMove)
		protos = append(protos, row.ProtoCost)
		noexp = append(noexp, row.ProtoNoExpand)
		totals = append(totals, row.TotalCost)
		fracs = append(fracs, row.FracNoExpand)
	}
	res.GeoMean.PageExpand = geomean(expands)
	res.GeoMean.PatchGenExec = geomean(patches)
	res.GeoMean.RegisterPatch = geomean(regs)
	res.GeoMean.AllocAndMove = geomean(movesC)
	res.GeoMean.ProtoCost = geomean(protos)
	res.GeoMean.ProtoNoExpand = geomean(noexp)
	res.GeoMean.TotalCost = geomean(totals)
	res.GeoMean.FracNoExpand = geomean(fracs)
	return res, nil
}

// moveEveryInstrs picks a forcing period that yields a healthy sample of
// moves at the configured scale.
func moveEveryInstrs(o Options) uint64 {
	return 50_000
}

func averageBreakdown(name string, stats []runtime.MoveBreakdown) Table3Row {
	var row Table3Row
	row.Name = name
	n := float64(len(stats))
	for _, bd := range stats {
		row.PageExpand += float64(bd.ExpandCycles)
		row.PatchGenExec += float64(bd.PatchCycles)
		row.RegisterPatch += float64(bd.RegCycles)
		row.AllocAndMove += float64(bd.MoveCycles)
	}
	row.PageExpand /= n
	row.PatchGenExec /= n
	row.RegisterPatch /= n
	row.AllocAndMove /= n
	row.ProtoCost = row.PageExpand + row.PatchGenExec + row.RegisterPatch
	row.ProtoNoExpand = row.PatchGenExec + row.RegisterPatch
	row.TotalCost = row.ProtoCost + row.AllocAndMove
	if row.TotalCost > 0 {
		row.FracNoExpand = row.ProtoNoExpand / row.TotalCost
	}
	row.Moves = len(stats)
	return row
}

// Print renders the table.
func (r *Table3Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 3: worst-case page movement costs in cycles")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\texpand\tpatch\tregs\talloc+move\tproto\tproto w/o exp\ttotal\tw/o exp / total\tmoves")
		emit := func(row Table3Row) {
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.4f\t%d\n",
				row.Name, row.PageExpand, row.PatchGenExec, row.RegisterPatch,
				row.AllocAndMove, row.ProtoCost, row.ProtoNoExpand, row.TotalCost,
				row.FracNoExpand, row.Moves)
		}
		for _, row := range r.Rows {
			emit(row)
		}
		emit(r.GeoMean)
	})
}
