package bench

import (
	"fmt"
	"io"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options, w io.Writer) error
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "L1 DTLB misses per 1000 instructions", func(o Options, w io.Writer) error {
			r, err := Fig2(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"table1", "Effectiveness of compiler optimizations", func(o Options, w io.Writer) error {
			r, err := Table1(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig3a", "Guard overhead, general optimizations", func(o Options, w io.Writer) error {
			r, err := Fig3(o, false)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig3b", "Guard overhead, CARAT optimizations", func(o Options, w io.Writer) error {
			r, err := Fig3(o, true)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig4", "Multi-region software guard cost", func(o Options, w io.Writer) error {
			r, err := Fig4(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"table2", "Page allocation and movement rates", func(o Options, w io.Writer) error {
			r, err := Table2(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig5", "Escapes per allocation", func(o Options, w io.Writer) error {
			r, err := Fig5(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig6", "Memory overhead of tracking", func(o Options, w io.Writer) error {
			r, err := Fig6(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig7", "Time overhead of tracking", func(o Options, w io.Writer) error {
			r, err := Fig7(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig9", "Worst-case page movement overheads", func(o Options, w io.Writer) error {
			r, err := Fig9(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"table3", "Per-move cycle breakdown", func(o Options, w io.Writer) error {
			r, err := Table3(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"abl-alloc", "Ablation: allocation- vs page-granularity moves", func(o Options, w io.Writer) error {
			r, err := AblationAllocGranularity(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"abl-capsule", "Ablation: capsule vs multi-region layout", func(o Options, w io.Writer) error {
			r, err := AblationCapsule(o)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
	}
}

// RunByID executes one experiment by id ("fig2", "table1", ... or "all").
func RunByID(id string, o Options, w io.Writer) error {
	if id == "all" {
		for _, e := range Experiments() {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
			if err := e.Run(o, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(o, w)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q (try: fig2 table1 fig3a fig3b fig4 table2 fig5 fig6 fig7 fig9 table3 abl-alloc abl-capsule all)", id)
}
