package bench

import (
	"fmt"
	"io"
	"strings"
)

// Result is what every experiment produces: a typed, JSON-encodable value
// that can also render itself as the paper's text table. The concrete types
// (Fig2Result, Table3Result, ...) carry lowercase json tags so the same
// value feeds both the human table and the machine-readable document
// (see json.go).
type Result interface {
	Print(w io.Writer)
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (Result, error)
}

// Experiments lists every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2", "L1 DTLB misses per 1000 instructions",
			func(o Options) (Result, error) { return Fig2(o) }},
		{"table1", "Effectiveness of compiler optimizations",
			func(o Options) (Result, error) { return Table1(o) }},
		{"fig3a", "Guard overhead, general optimizations",
			func(o Options) (Result, error) { return Fig3(o, false) }},
		{"fig3b", "Guard overhead, CARAT optimizations",
			func(o Options) (Result, error) { return Fig3(o, true) }},
		{"fig4", "Multi-region software guard cost",
			func(o Options) (Result, error) { return Fig4(o) }},
		{"table2", "Page allocation and movement rates",
			func(o Options) (Result, error) { return Table2(o) }},
		{"fig5", "Escapes per allocation",
			func(o Options) (Result, error) { return Fig5(o) }},
		{"fig6", "Memory overhead of tracking",
			func(o Options) (Result, error) { return Fig6(o) }},
		{"fig7", "Time overhead of tracking",
			func(o Options) (Result, error) { return Fig7(o) }},
		{"fig9", "Worst-case page movement overheads",
			func(o Options) (Result, error) { return Fig9(o) }},
		{"table3", "Per-move cycle breakdown",
			func(o Options) (Result, error) { return Table3(o) }},
		{"abl-alloc", "Ablation: allocation- vs page-granularity moves",
			func(o Options) (Result, error) { return AblationAllocGranularity(o) }},
		{"abl-capsule", "Ablation: capsule vs multi-region layout",
			func(o Options) (Result, error) { return AblationCapsule(o) }},
		{"defrag", "Policy daemon: defragmentation to a superpage run",
			func(o Options) (Result, error) { return Defrag(o) }},
		{"tiering", "Policy daemon: hot/cold tiering via swap",
			func(o Options) (Result, error) { return Tiering(o) }},
		{"policy", "Policy daemon: multi-process pressure, all policies",
			func(o Options) (Result, error) { return Policy(o) }},
	}
}

// ExperimentIDs returns every valid experiment id, in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// selected resolves an id ("fig2", ... or "all") to the experiments to run.
func selected(id string) ([]Experiment, error) {
	if id == "all" {
		return Experiments(), nil
	}
	for _, e := range Experiments() {
		if e.ID == id {
			return []Experiment{e}, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q (valid ids: %s all)",
		id, strings.Join(ExperimentIDs(), " "))
}

// RunByID executes one experiment by id ("fig2", "table1", ... or "all")
// and prints the text tables to w.
func RunByID(id string, o Options, w io.Writer) error {
	exps, err := selected(id)
	if err != nil {
		return err
	}
	for _, e := range exps {
		if id == "all" {
			fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
		}
		r, err := e.Run(o)
		if err != nil {
			return err
		}
		r.Print(w)
		if id == "all" {
			fmt.Fprintln(w)
		}
	}
	return nil
}
