package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/vm"
	"carat/internal/workload"
)

// ---------------------------------------------------------------- Figure 2

// Fig2Row is one benchmark's traditional-model translation behaviour.
type Fig2Row struct {
	Name          string  `json:"name"`
	DTLBMPKI      float64 `json:"dtlb_mpki"`    // level-1 DTLB misses per 1000 instructions
	WalksPerKI    float64 `json:"walks_per_ki"` // completed pagewalks per 1000 instructions
	AvgWalkCycles float64 `json:"avg_walk_cycles"`
	Instrs        uint64  `json:"instrs"`
}

// Fig2Result reproduces Figure 2 (and the surrounding §3 prose: walks/KI
// and average walk latency).
type Fig2Result struct {
	Rows []Fig2Row `json:"rows"`
}

// Fig2 runs every benchmark uninstrumented under the traditional model and
// reports DTLB miss rates.
func Fig2(o Options) (*Fig2Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Fig2Row, error) {
		v, _, err := o.buildAndRun(w, passes.LevelNone, vm.ModeTraditional, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		h := v.Hierarchy()
		return &Fig2Row{
			Name:          w.Name,
			DTLBMPKI:      h.DTLBMPKI(v.Instrs),
			WalksPerKI:    h.WalksPerKI(v.Instrs),
			AvgWalkCycles: h.AvgWalkCycles(),
			Instrs:        v.Instrs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{}
	for _, row := range rows {
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

// Print renders the figure's data series.
func (r *Fig2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: Level-1 DTLB misses per 1000 instructions (traditional model)")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tDTLB MPKI\twalks/KI\tavg walk cyc\tinstrs")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.1f\t%d\n",
				row.Name, row.DTLBMPKI, row.WalksPerKI, row.AvgWalkCycles, row.Instrs)
		}
	})
}

// ---------------------------------------------------------------- Table 1

// Table1Row mirrors one row of Table 1.
type Table1Row struct {
	Name      string  `json:"name"`
	OptGuards float64 `json:"opt_guards"` // fraction of guards statically remaining
	Untouched float64 `json:"untouched"`
	Opt1      float64 `json:"opt1"` // hoisting
	Opt2      float64 `json:"opt2"` // scalar evolution
	Opt3      float64 `json:"opt3"` // redundancy elimination
}

// Table1Result reproduces Table 1, "Effectiveness of Compiler
// Optimizations".
type Table1Result struct {
	Rows []Table1Row `json:"rows"`
	Mean Table1Row   `json:"mean"` // arithmetic mean, as the paper reports
}

// Table1 compiles every benchmark at LevelGuardsOpt and reports the
// per-optimization guard attribution.
func Table1(o Options) (*Table1Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Table1Row, error) {
		_, st, err := o.compileOnly(w, passes.LevelGuardsOpt)
		if err != nil {
			return nil, err
		}
		return &Table1Row{
			Name:      w.Name,
			OptGuards: st.FracRemaining(),
			Untouched: st.FracUntouched(),
			Opt1:      st.FracHoisted(),
			Opt2:      st.FracMerged(),
			Opt3:      st.FracRemoved(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table1Result{Mean: Table1Row{Name: "Arith. Mean"}}
	for _, rp := range rows {
		row := *rp
		res.Rows = append(res.Rows, row)
		res.Mean.OptGuards += row.OptGuards
		res.Mean.Untouched += row.Untouched
		res.Mean.Opt1 += row.Opt1
		res.Mean.Opt2 += row.Opt2
		res.Mean.Opt3 += row.Opt3
	}
	n := float64(len(res.Rows))
	if n > 0 {
		res.Mean.OptGuards /= n
		res.Mean.Untouched /= n
		res.Mean.Opt1 /= n
		res.Mean.Opt2 /= n
		res.Mean.Opt3 /= n
	}
	return res, nil
}

// Print renders the table.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1: Effectiveness of Compiler Optimizations")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tOpt. Guards\tUntouched\tOpt.1\tOpt.2\tOpt.3")
		emit := func(row Table1Row) {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
				row.Name, row.OptGuards, row.Untouched, row.Opt1, row.Opt2, row.Opt3)
		}
		for _, row := range r.Rows {
			emit(row)
		}
		emit(r.Mean)
	})
}

// ---------------------------------------------------------------- Figure 3

// Fig3Row is one benchmark's normalized guard overhead.
type Fig3Row struct {
	Name       string  `json:"name"`
	Baseline   float64 `json:"baseline"`    // always 1.0
	MPXGuard   float64 `json:"mpx_guard"`   // cycles(guards, MPX) / cycles(baseline)
	RangeGuard float64 `json:"range_guard"` // cycles(guards, compare+branch) / cycles(baseline)
}

// Fig3Result reproduces Figure 3: protection overhead with (a) general
// optimizations only, or (b) CARAT-specific optimizations.
type Fig3Result struct {
	CARATOpts bool      `json:"carat_opts"`
	Rows      []Fig3Row `json:"rows"`
	GeoMPX    float64   `json:"geomean_mpx"`
	GeoRange  float64   `json:"geomean_range"`
}

// Fig3 measures guard overhead at the chosen optimization level.
func Fig3(o Options, caratOpts bool) (*Fig3Result, error) {
	lvl := passes.LevelGuardsOnly
	if caratOpts {
		lvl = passes.LevelGuardsOpt
	}
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Fig3Row, error) {
		base, _, err := o.buildAndRun(w, passes.LevelNone, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		mpx, _, err := o.buildAndRun(w, lvl, vm.ModeCARAT, guard.MechMPX, nil)
		if err != nil {
			return nil, err
		}
		rng, _, err := o.buildAndRun(w, lvl, vm.ModeCARAT, guard.MechRange, nil)
		if err != nil {
			return nil, err
		}
		return &Fig3Row{
			Name:       w.Name,
			Baseline:   1,
			MPXGuard:   float64(mpx.Cycles) / float64(base.Cycles),
			RangeGuard: float64(rng.Cycles) / float64(base.Cycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{CARATOpts: caratOpts}
	var mpxs, ranges []float64
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		mpxs = append(mpxs, rp.MPXGuard)
		ranges = append(ranges, rp.RangeGuard)
	}
	res.GeoMPX = geomean(mpxs)
	res.GeoRange = geomean(ranges)
	return res, nil
}

// Print renders the figure's data series.
func (r *Fig3Result) Print(w io.Writer) {
	which := "(a) general optimizations only"
	if r.CARATOpts {
		which = "(b) CARAT-specific optimizations"
	}
	fmt.Fprintf(w, "Figure 3%s: normalized guard overhead\n", which)
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tbaseline\tMPX guard\trange guard")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", row.Name, row.Baseline, row.MPXGuard, row.RangeGuard)
		}
		fmt.Fprintf(tw, "geomean\t1.000\t%.3f\t%.3f\n", r.GeoMPX, r.GeoRange)
	})
}
