package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"carat/internal/kernel"
	"carat/internal/mmpolicy"
	"carat/internal/runtime"
	"carat/internal/workload"
)

// Policy-daemon experiments (§7): the paper argues that once CARAT makes
// moves cheap, kernel memory-management services — compaction for
// superpages, tiering via swap, NUMA migration — become ordinary policy
// code. These experiments run the mmpolicy daemon against the
// multi-process pressure harness and report what it did, with per-move
// costs in the same cycle units as Table 3.

// policyMemBytes sizes the shared physical memory: small enough that the
// workloads actually create fragmentation and pressure.
func policyMemBytes(o Options) uint64 {
	if o.Scale == workload.ScaleTest {
		return 1 << 21 // 512 pages
	}
	return 1 << 22 // 1024 pages
}

func policySteps(o Options, test, full int) int {
	if o.Scale == workload.ScaleTest {
		return test
	}
	return full
}

// policyProcScale doubles workload footprints at non-test scales so the
// fragmentation and pressure the experiments rely on track the larger
// memory.
func policyProcScale(o Options) int {
	if o.Scale == workload.ScaleTest {
		return 1
	}
	return 2
}

// defragTargetRun is the contiguous free run the defrag experiment must
// assemble — a superpage-candidate window.
const defragTargetRun = 64

// pauseLine renders the carat.runtime.pause_cycles percentiles from a
// policy document — the bounded-pause figure of merit every world-stop
// (move, abort, protect, swap) in the run contributes to.
func pauseLine(w io.Writer, doc *mmpolicy.Document) {
	if doc == nil || doc.PauseCycles == nil {
		return
	}
	p := doc.PauseCycles
	fmt.Fprintf(w, "pause cycles (%d world stops): p50 %.0f, p95 %.0f, p99 %.0f, max %d",
		p.Count, p.P50, p.P95, p.P99, p.Max)
	if doc.PauseBudgetCycles > 0 {
		status := "within"
		if p.Max > doc.PauseBudgetCycles {
			status = "OVER"
		}
		fmt.Fprintf(w, " [budget %d: %s]", doc.PauseBudgetCycles, status)
	}
	fmt.Fprintln(w)
}

// DefragResult reports the defragmentation experiment.
type DefragResult struct {
	TargetRun  uint64             `json:"target_run"`
	FragBefore kernel.FragStats   `json:"frag_before"`
	FragAfter  kernel.FragStats   `json:"frag_after"`
	Ticks      int                `json:"ticks"`
	Moves      uint64             `json:"moves"`
	Vetoes     uint64             `json:"vetoes"`
	Restored   bool               `json:"restored"`  // largest run >= target at the end
	Breakdown  Table3Row          `json:"breakdown"` // avg cycles per daemon-issued move
	Verified   bool               `json:"verified"`  // harness integrity check passed
	Policy     *mmpolicy.Document `json:"policy"`
}

// Defrag fragments a multi-process heap with churn workloads, then lets
// the daemon compact until a superpage-sized contiguous free run exists.
func Defrag(o Options) (*DefragResult, error) {
	s := policyProcScale(o)
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes: policyMemBytes(o),
		Procs: []mmpolicy.ProcSpec{
			{Name: "churn-a", Kind: mmpolicy.Churn, Slots: 48 * s, MaxPages: 4, Seed: 11},
			{Name: "churn-b", Kind: mmpolicy.Churn, Slots: 48 * s, MaxPages: 4, Seed: 12},
			{Name: "churn-c", Kind: mmpolicy.Churn, Slots: 48 * s, MaxPages: 4, Seed: 13},
		},
		Policies:    []mmpolicy.Policy{mmpolicy.NewDefrag(defragTargetRun)},
		Obs:         o.Obs,
		Trace:       o.Trace,
		Fault:       o.Fault,
		Sampler:     o.Sampler,
		PauseBudget: o.PauseBudget,
	})
	if err != nil {
		return nil, err
	}
	// Phase 1: fragment. No ticks — the daemon sleeps while churn runs.
	if err := h.Run(policySteps(o, 500, 2000)); err != nil {
		return nil, err
	}
	h.D.CaptureFragBefore()
	before := h.K.Alloc.FragStats()

	// Phase 2: compact. Tick until the target run exists (bounded).
	res := &DefragResult{TargetRun: defragTargetRun, FragBefore: before}
	for res.Ticks < 50 {
		consumed, err := h.D.Tick(h.Cycles)
		h.Cycles += consumed
		if err != nil {
			return nil, err
		}
		res.Ticks++
		if h.K.Alloc.FragStats().LargestRun >= defragTargetRun {
			break
		}
	}
	res.FragAfter = h.K.Alloc.FragStats()
	res.Restored = res.FragAfter.LargestRun >= defragTargetRun

	if err := h.Verify(); err != nil {
		return nil, fmt.Errorf("bench: defrag harness integrity: %w", err)
	}
	res.Verified = true

	var stats []runtime.MoveBreakdown
	for _, wp := range h.Procs {
		stats = append(stats, wp.MP.RT.MoveStats...)
	}
	if len(stats) > 0 {
		res.Breakdown = averageBreakdown("defrag moves", stats)
	}
	res.Policy = h.D.Report()
	res.Moves = res.Policy.Totals.Moves
	res.Vetoes = res.Policy.Totals.Vetoes
	if o.PolicySink != nil {
		o.PolicySink(res.Policy)
	}
	return res, nil
}

// Print renders the defrag report.
func (r *DefragResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Defragmentation: assemble a %d-page contiguous run\n", r.TargetRun)
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "\tfree pages\tfree runs\tlargest run\tfrag score")
		fmt.Fprintf(tw, "before\t%d\t%d\t%d\t%.3f\n",
			r.FragBefore.FreePages, r.FragBefore.FreeRuns, r.FragBefore.LargestRun, r.FragBefore.Score)
		fmt.Fprintf(tw, "after\t%d\t%d\t%d\t%.3f\n",
			r.FragAfter.FreePages, r.FragAfter.FreeRuns, r.FragAfter.LargestRun, r.FragAfter.Score)
	})
	fmt.Fprintf(w, "restored=%v in %d ticks: %d moves, %d vetoes, verified=%v\n",
		r.Restored, r.Ticks, r.Moves, r.Vetoes, r.Verified)
	if r.Breakdown.Moves > 0 {
		fmt.Fprintf(w, "per-move cycles: expand %.0f, patch %.0f, regs %.0f, alloc+move %.0f (total %.0f)\n",
			r.Breakdown.PageExpand, r.Breakdown.PatchGenExec, r.Breakdown.RegisterPatch,
			r.Breakdown.AllocAndMove, r.Breakdown.TotalCost)
	}
	pauseLine(w, r.Policy)
}

// TieringResult reports the hot/cold tiering experiment.
type TieringResult struct {
	SwapOuts   uint64             `json:"swap_outs"`
	SwapIns    uint64             `json:"swap_ins"`
	FreeBefore uint64             `json:"free_pages_before"`
	FreeAfter  uint64             `json:"free_pages_after"`
	Ticks      int                `json:"ticks"`
	Verified   bool               `json:"verified"`
	Policy     *mmpolicy.Document `json:"policy"`
}

// Tiering runs hot (stream), cold (coldstore), and churn processes in a
// memory too small for all of them: the daemon must evict cold memory to
// keep the allocator above its watermark, and the workloads fault evicted
// allocations back in on access.
func Tiering(o Options) (*TieringResult, error) {
	s := policyProcScale(o)
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes:  policyMemBytes(o) / 2,
		TickEvery: 40_000,
		Procs: []mmpolicy.ProcSpec{
			{Name: "stream", Kind: mmpolicy.Stream, Slots: 12 * s, MaxPages: 2, Seed: 21},
			{Name: "cold", Kind: mmpolicy.ColdStore, Slots: 72 * s, MaxPages: 2, Seed: 22},
			{Name: "churn", Kind: mmpolicy.Churn, Slots: 96 * s, MaxPages: 3, Seed: 23},
		},
		Policies:    []mmpolicy.Policy{mmpolicy.NewTiering()},
		Obs:         o.Obs,
		Trace:       o.Trace,
		Fault:       o.Fault,
		Sampler:     o.Sampler,
		PauseBudget: o.PauseBudget,
	})
	if err != nil {
		return nil, err
	}
	res := &TieringResult{FreeBefore: h.K.Alloc.FreePages()}
	if err := h.Run(policySteps(o, 600, 2400)); err != nil {
		return nil, err
	}
	res.FreeAfter = h.K.Alloc.FreePages()
	// Verify faults every still-swapped allocation back in, closing the
	// round trip (and checking no stamp was lost on the way).
	if err := h.Verify(); err != nil {
		return nil, fmt.Errorf("bench: tiering harness integrity: %w", err)
	}
	res.Verified = true
	res.Policy = h.D.Report()
	res.SwapOuts = res.Policy.Totals.SwapOuts
	res.SwapIns = res.Policy.Totals.SwapIns
	res.Ticks = res.Policy.Ticks
	if o.PolicySink != nil {
		o.PolicySink(res.Policy)
	}
	return res, nil
}

// Print renders the tiering report.
func (r *TieringResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Hot/cold tiering under memory pressure")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "swap-outs\tswap-ins\tfree before\tfree after\tticks\tverified")
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%v\n",
			r.SwapOuts, r.SwapIns, r.FreeBefore, r.FreeAfter, r.Ticks, r.Verified)
	})
	pauseLine(w, r.Policy)
}

// PolicyActionCount is one policy's slice of the decision log.
type PolicyActionCount struct {
	Policy string `json:"policy"`
	Moves  uint64 `json:"moves"`
	Swaps  uint64 `json:"swaps"`
	Vetoes uint64 `json:"vetoes"`
	Cycles uint64 `json:"cycles"`
}

// PolicyResult reports the combined multi-policy pressure run.
type PolicyResult struct {
	Procs      []string            `json:"procs"`
	Steps      int                 `json:"steps"`
	Cycles     uint64              `json:"cycles"`
	Ticks      int                 `json:"ticks"`
	PerPolicy  []PolicyActionCount `json:"per_policy"`
	Totals     mmpolicy.Totals     `json:"totals"`
	FragBefore kernel.FragStats    `json:"frag_before"`
	FragAfter  kernel.FragStats    `json:"frag_after"`
	Verified   bool                `json:"verified"`
	Policy     *mmpolicy.Document  `json:"policy"`
}

// Policy is the full pressure experiment: every workload kind, every
// policy, daemon auto-ticking on the shared cycle clock.
func Policy(o Options) (*PolicyResult, error) {
	s := policyProcScale(o)
	specs := []mmpolicy.ProcSpec{
		{Name: "churn-a", Kind: mmpolicy.Churn, Slots: 96 * s, MaxPages: 4, Seed: 31},
		{Name: "churn-b", Kind: mmpolicy.Churn, Slots: 96 * s, MaxPages: 4, Seed: 32},
		{Name: "stream", Kind: mmpolicy.Stream, Slots: 12 * s, MaxPages: 2, Seed: 33},
		{Name: "cold", Kind: mmpolicy.ColdStore, Slots: 48 * s, MaxPages: 2, Seed: 34},
	}
	h, err := mmpolicy.NewHarness(mmpolicy.HarnessConfig{
		MemBytes:  policyMemBytes(o),
		TickEvery: 50_000,
		Procs:     specs,
		Policies: []mmpolicy.Policy{
			mmpolicy.NewDefrag(defragTargetRun),
			mmpolicy.NewTiering(),
			mmpolicy.NewNUMARebalance(),
		},
		Obs:         o.Obs,
		Trace:       o.Trace,
		Fault:       o.Fault,
		Sampler:     o.Sampler,
		PauseBudget: o.PauseBudget,
	})
	if err != nil {
		return nil, err
	}
	h.D.CaptureFragBefore()
	steps := policySteps(o, 800, 3200)
	if err := h.Run(steps); err != nil {
		return nil, err
	}
	if err := h.Verify(); err != nil {
		return nil, fmt.Errorf("bench: policy harness integrity: %w", err)
	}
	doc := h.D.Report()

	res := &PolicyResult{
		Steps:    steps,
		Cycles:   h.Cycles,
		Ticks:    doc.Ticks,
		Totals:   doc.Totals,
		Verified: true,
		Policy:   doc,
	}
	for _, s := range specs {
		res.Procs = append(res.Procs, fmt.Sprintf("%s(%s)", s.Name, s.Kind))
	}
	if doc.FragBefore != nil {
		res.FragBefore = *doc.FragBefore
	}
	if doc.FragAfter != nil {
		res.FragAfter = *doc.FragAfter
	}
	counts := make(map[string]*PolicyActionCount)
	names := append([]string(nil), doc.Policies...)
	for _, name := range names {
		counts[name] = &PolicyActionCount{Policy: name}
	}
	for _, dec := range doc.Decisions {
		c, ok := counts[dec.Policy]
		if !ok {
			c = &PolicyActionCount{Policy: dec.Policy}
			counts[dec.Policy] = c
			names = append(names, dec.Policy)
		}
		switch dec.Action {
		case mmpolicy.ActionMove:
			c.Moves++
		case mmpolicy.ActionSwapOut, mmpolicy.ActionSwapIn:
			c.Swaps++
		case mmpolicy.ActionVeto:
			c.Vetoes++
		}
		c.Cycles += dec.Cycles
	}
	for _, name := range names {
		res.PerPolicy = append(res.PerPolicy, *counts[name])
	}
	if o.PolicySink != nil {
		o.PolicySink(doc)
	}
	return res, nil
}

// Print renders the combined policy report.
func (r *PolicyResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Policy daemon under multi-process pressure (%d steps, %d ticks)\n",
		r.Steps, r.Ticks)
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "policy\tmoves\tswaps\tvetoes\tcycles")
		for _, c := range r.PerPolicy {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\n", c.Policy, c.Moves, c.Swaps, c.Vetoes, c.Cycles)
		}
	})
	fmt.Fprintf(w, "largest free run %d -> %d pages; daemon overhead %d cycles; verified=%v\n",
		r.FragBefore.LargestRun, r.FragAfter.LargestRun, r.Totals.DaemonCycles, r.Verified)
	pauseLine(w, r.Policy)
}
