package bench

import (
	"reflect"
	"testing"

	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/workload"
)

// compileAt builds workload w at level lvl with the given worker count and
// returns the printed IR plus the merged statistics.
func compileAt(t testing.TB, w *workload.Workload, lvl passes.Level, workers int) (string, passes.Stats) {
	m := w.Build(workload.ScaleTest)
	pl := passes.Build(lvl)
	pl.Workers = workers
	if err := pl.Run(m); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return m.String(), pl.Stats
}

// TestCompileWorkersDeterministic is the determinism gate: for every
// workload, compiling with 1 worker and with 8 workers must produce
// byte-identical printed IR and identical statistics. CI runs this under
// -race, which also exercises the pool for data races.
func TestCompileWorkersDeterministic(t *testing.T) {
	for _, w := range workload.All() {
		seq, seqStats := compileAt(t, w, passes.LevelTracking, 1)
		par, parStats := compileAt(t, w, passes.LevelTracking, 8)
		if seq != par {
			t.Errorf("%s: -workers=1 and -workers=8 produced different IR", w.Name)
		}
		if !reflect.DeepEqual(seqStats, parStats) {
			t.Errorf("%s: -workers=1 and -workers=8 produced different stats:\n%+v\n%+v",
				w.Name, seqStats, parStats)
		}
	}
}

// TestTable1WorkersDeterministic checks the experiment sweep itself: the
// per-workload pool must fold to exactly the sequential Table 1.
func TestTable1WorkersDeterministic(t *testing.T) {
	seq := DefaultOptions(workload.ScaleTest)
	seq.Workers = 1
	par := DefaultOptions(workload.ScaleTest)
	par.Workers = 8
	rs, err := Table1(seq)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Table1(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Error("Table1 with Workers=1 and Workers=8 differ")
	}
}

// TestAnalysisCacheEffective asserts the caching tentpole pays off on real
// workloads: across Opt1→Opt2→Opt3 the shared analyses must hit.
func TestAnalysisCacheEffective(t *testing.T) {
	m := workload.All()[0].Build(workload.ScaleTest)
	pl := passes.Build(passes.LevelGuardsOpt)
	if err := pl.Run(m); err != nil {
		t.Fatal(err)
	}
	cs := pl.AnalysisStats()
	if cs.Hits == 0 {
		t.Error("analysis cache hits = 0 on a real workload")
	}
	if cs.Hits < cs.Misses {
		t.Errorf("hits (%d) < misses (%d): cache is not earning its keep", cs.Hits, cs.Misses)
	}
}

// benchModules builds every workload module once so the benchmarks measure
// only pass-pipeline time.
func benchModules(b *testing.B) []*ir.Module {
	b.Helper()
	var ms []*ir.Module
	for _, w := range workload.All() {
		ms = append(ms, w.Build(workload.ScaleTest))
	}
	return ms
}

func benchCompile(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ms := benchModules(b)
		b.StartTimer()
		for _, m := range ms {
			pl := passes.Build(passes.LevelTracking)
			pl.Workers = workers
			if err := pl.Run(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkCompileSequential(b *testing.B) { benchCompile(b, 1) }
func BenchmarkCompileParallel(b *testing.B)   { benchCompile(b, 0) }

// BenchmarkTable1Sequential/Parallel measure the experiment sweep pool.
func BenchmarkTable1Sequential(b *testing.B) { benchTable1(b, 1) }
func BenchmarkTable1Parallel(b *testing.B)   { benchTable1(b, 0) }

func benchTable1(b *testing.B, workers int) {
	o := DefaultOptions(workload.ScaleTest)
	o.Workers = workers
	for i := 0; i < b.N; i++ {
		if _, err := Table1(o); err != nil {
			b.Fatal(err)
		}
	}
}
