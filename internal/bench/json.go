package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"carat/internal/obs"
)

// Machine-readable experiment output. The document format is versioned so
// downstream tooling can detect incompatible changes; bump ResultVersion
// whenever a field is renamed, removed, or changes meaning (additions are
// compatible). The schema is documented in DESIGN.md ("Observability").

// ResultSchema identifies the bench output document format.
const ResultSchema = "carat.bench.result"

// ResultVersion is the current document format version. v2 added the
// per-experiment wall_ms field and the top-level workers field.
const ResultVersion = 2

// ExperimentResult is one experiment's typed result inside a Document.
type ExperimentResult struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// WallMS is the experiment's wall-clock duration in milliseconds
	// (host time, not simulated time).
	WallMS float64 `json:"wall_ms"`
	Data   Result  `json:"data"`
}

// Document is the top-level machine-readable output of a bench run.
type Document struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Tool records the producing command ("caratbench").
	Tool  string `json:"tool"`
	Scale string `json:"scale"`
	// Workers is the worker-pool width the sweep ran with.
	Workers int `json:"workers"`
	// Results holds one entry per experiment run, in paper order.
	Results []ExperimentResult `json:"results"`
	// Metrics, when metrics collection was enabled, is the final registry
	// snapshot accumulated across every VM run in the sweep.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// RunJSON executes the experiment (or "all") and writes the versioned JSON
// document to w. When o.Obs is set its final snapshot is embedded.
func RunJSON(id string, o Options, w io.Writer) error {
	exps, err := selected(id)
	if err != nil {
		return err
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	doc := Document{
		Schema:  ResultSchema,
		Version: ResultVersion,
		Tool:    "caratbench",
		Scale:   o.Scale.String(),
		Workers: workers,
	}
	for _, e := range exps {
		start := time.Now()
		r, err := e.Run(o)
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, ExperimentResult{
			Experiment: e.ID, Title: e.Title,
			WallMS: float64(time.Since(start).Nanoseconds()) / 1e6,
			Data:   r,
		})
	}
	if o.Obs != nil {
		snap := o.Obs.Snapshot()
		doc.Metrics = &snap
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
