package bench

import (
	"encoding/json"
	"io"

	"carat/internal/obs"
)

// Machine-readable experiment output. The document format is versioned so
// downstream tooling can detect incompatible changes; bump ResultVersion
// whenever a field is renamed, removed, or changes meaning (additions are
// compatible). The schema is documented in DESIGN.md ("Observability").

// ResultSchema identifies the bench output document format.
const ResultSchema = "carat.bench.result"

// ResultVersion is the current document format version.
const ResultVersion = 1

// ExperimentResult is one experiment's typed result inside a Document.
type ExperimentResult struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	Data       Result `json:"data"`
}

// Document is the top-level machine-readable output of a bench run.
type Document struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	// Tool records the producing command ("caratbench").
	Tool  string `json:"tool"`
	Scale string `json:"scale"`
	// Results holds one entry per experiment run, in paper order.
	Results []ExperimentResult `json:"results"`
	// Metrics, when metrics collection was enabled, is the final registry
	// snapshot accumulated across every VM run in the sweep.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// RunJSON executes the experiment (or "all") and writes the versioned JSON
// document to w. When o.Obs is set its final snapshot is embedded.
func RunJSON(id string, o Options, w io.Writer) error {
	exps, err := selected(id)
	if err != nil {
		return err
	}
	doc := Document{
		Schema:  ResultSchema,
		Version: ResultVersion,
		Tool:    "caratbench",
		Scale:   o.Scale.String(),
	}
	for _, e := range exps {
		r, err := e.Run(o)
		if err != nil {
			return err
		}
		doc.Results = append(doc.Results, ExperimentResult{
			Experiment: e.ID, Title: e.Title, Data: r,
		})
	}
	if o.Obs != nil {
		snap := o.Obs.Snapshot()
		doc.Metrics = &snap
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
