package bench

import (
	"testing"

	"carat/internal/passes"
)

// The engine configurations of the interpreter, measured over the same
// guard-heavy kernel. Run via `make bench`:
//
//	go test -run '^$' -bench BenchmarkExec ./internal/bench/
//
// b.N counts whole program executions; the per-op metric is therefore one
// full kernel run. ReportMetric adds modeled-instructions-per-host-second,
// the figure of merit BENCH_exec.json records.

func benchEngine(b *testing.B, predecode, xcache, closure bool) {
	b.Helper()
	const iters = 20
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := ExecBenchModule(iters, passes.LevelGuardsOnly)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		v, _, err := runExecOnce(m, execEngine{predecode: predecode, xcache: xcache, closure: closure}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs = v.Instrs
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstrs/s")
}

func BenchmarkExecBaseline(b *testing.B)  { benchEngine(b, false, false, false) }
func BenchmarkExecPredecode(b *testing.B) { benchEngine(b, true, false, false) }
func BenchmarkExecXCache(b *testing.B)    { benchEngine(b, true, true, false) }
func BenchmarkExecClosure(b *testing.B)   { benchEngine(b, true, true, true) }

// TestExecBenchGate runs the same measurement the CI gate uses, at reduced
// size, and checks the document invariants (schema header, engine-invariant
// modeled results are asserted inside RunExecBench itself).
func TestExecBenchGate(t *testing.T) {
	doc, err := RunExecBench(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != ExecBenchSchema || doc.Version != ExecBenchVersion {
		t.Errorf("schema header %s v%d, want %s v%d", doc.Schema, doc.Version, ExecBenchSchema, ExecBenchVersion)
	}
	if len(doc.Engines) != 5 {
		t.Fatalf("engines = %d, want 5", len(doc.Engines))
	}
	for _, e := range doc.Engines {
		if e.Instrs == 0 || e.WallMS <= 0 {
			t.Errorf("engine %s: empty measurement %+v", e.Engine, e)
		}
	}
	full := doc.Engines[2]
	if full.XCacheHits == 0 {
		t.Error("full engine recorded no xcache hits")
	}
	clo := doc.Engines[3]
	if !clo.Closure {
		t.Errorf("engine %s should be the closure leg", clo.Engine)
	}
	if clo.XCacheHits == 0 {
		t.Error("closure leg recorded no xcache hits")
	}
	tele := doc.Engines[4]
	if !tele.Telemetry || !tele.Closure {
		t.Errorf("engine %s should be the closure telemetry leg", tele.Engine)
	}
	if tele.XCacheHits == 0 {
		t.Error("telemetry leg recorded no xcache hits")
	}
	if doc.SpeedupFull <= 0 || doc.SpeedupClosure <= 0 {
		t.Error("speedup not computed")
	}
	// The overhead figure must be computed (any finite value; the CI bench
	// job, not this smoke test, gates its magnitude).
	if doc.TelemetryOverheadPct >= 100 {
		t.Errorf("telemetry overhead %.1f%% nonsensical", doc.TelemetryOverheadPct)
	}
}
