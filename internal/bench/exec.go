package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/obs/telemetry"
	"carat/internal/passes"
	"carat/internal/vm"
)

// Execution-engine microbenchmark: measures HOST throughput (modeled
// instructions retired per host second) of the interpreter across its
// engine configurations — baseline dispatch, predecoded dispatch,
// predecode plus the guard/translation cache, and the closure
// compilation tier. The modeled results (return value, cycles, guard
// stats) are asserted identical across engines before any timing is
// reported: the engines are host-speed optimizations only.

// ExecBenchSchema identifies the exec-bench output document.
const ExecBenchSchema = "carat.bench.exec"

// ExecBenchVersion is the current document format version. v2: every
// engine leg emits xcache_hits/xcache_misses (zero for legs without the
// cache), and the matrix gains the full+telemetry leg with its
// telemetry_overhead_pct summary. v3: the matrix gains the closure
// compilation tier (with ic_hits/ic_misses/deopts per leg and the
// speedup_closure summary), and the telemetry leg rides the closure
// engine — the tax is measured against the fastest tier.
const ExecBenchVersion = 3

// execBenchSrc is a guard-heavy kernel: every loop iteration performs
// several guarded loads/stores over three arrays plus enough integer work
// to exercise the dispatch path. Compiled at LevelGuardsOnly so guards are
// not hoisted away — this is deliberately the worst case for software
// address translation, where the cache has the most to recover. The outer
// latch calls @mix once per outer iteration (feeding the loop bound, so it
// cannot fold away) to exercise the closure tier's call-site inline cache
// without perturbing the inner-loop hot path.
const execBenchSrc = `module "execbench"
global @a : [4096 x i64]
global @b : [4096 x i64]
global @c : [4096 x i64]
func @mix(%x: i64) -> i64 {
entry:
  %z = xor i64 %x, %x
  %r = add i64 %z, 1
  ret i64 %r
}
func @main() -> i64 {
entry:
  br ^outer
outer:
  %o = phi i64 [0, ^entry], [%o1, ^olatch]
  br ^inner
inner:
  %i = phi i64 [0, ^outer], [%i1, ^inner]
  %acc = phi i64 [0, ^outer], [%acc2, ^inner]
  %m = and i64 %i, 4095
  %pa = gep i64, @a, %m
  %x = load i64, %pa
  %x1 = add i64 %x, %o
  %pb = gep i64, @b, %m
  store i64 %x1, %pb
  %y = load i64, %pb
  %y1 = mul i64 %y, 3
  %y2 = xor i64 %y1, %acc
  %pc = gep i64, @c, %m
  store i64 %y2, %pc
  %acc2 = add i64 %acc, %y2
  %i1 = add i64 %i, 1
  %ci = icmp slt i64 %i1, 4096
  condbr %ci, ^inner, ^olatch
olatch:
  %s = call i64 @mix(i64 %o)
  %o1 = add i64 %o, %s
  %co = icmp slt i64 %o1, %iters
  condbr %co, ^outer, ^done
done:
  %p0 = gep i64, @c, 7
  %r = load i64, %p0
  ret i64 %r
}`

// ExecBenchModule builds the exec-bench program with the given outer
// iteration count, compiled at the given pipeline level.
func ExecBenchModule(iters int, lvl passes.Level) (*ir.Module, error) {
	src := execBenchSrc
	m, err := ir.Parse(replaceIters(src, iters))
	if err != nil {
		return nil, fmt.Errorf("bench: execbench parse: %w", err)
	}
	pl := passes.Build(lvl)
	pl.Workers = 1
	if err := pl.Run(m); err != nil {
		return nil, fmt.Errorf("bench: execbench passes: %w", err)
	}
	return m, nil
}

func replaceIters(src string, iters int) string {
	out := ""
	for i := 0; i < len(src); i++ {
		if src[i] == '%' && i+6 <= len(src) && src[i:i+6] == "%iters" {
			out += fmt.Sprintf("%d", iters)
			i += 5
			continue
		}
		out += string(src[i])
	}
	return out
}

// ExecEngineResult is one engine configuration's measurement.
type ExecEngineResult struct {
	Engine    string  `json:"engine"`
	Predecode bool    `json:"predecode"`
	XCache    bool    `json:"xcache"`
	Closure   bool    `json:"closure"`
	WallMS    float64 `json:"wall_ms"`
	// Instrs/Cycles are modeled quantities — identical across engines by
	// construction (verified before this document is emitted).
	Instrs uint64 `json:"instrs"`
	Cycles uint64 `json:"cycles"`
	// MInstrsPerSec is modeled instructions retired per host second, in
	// millions: the host-throughput figure of merit.
	MInstrsPerSec float64 `json:"minstrs_per_sec"`
	// XCacheHits/XCacheMisses are emitted for every leg (zero when the
	// engine runs without the cache) so consumers see one row shape.
	XCacheHits   uint64 `json:"xcache_hits"`
	XCacheMisses uint64 `json:"xcache_misses"`
	// ICHits/ICMisses/Deopts are the closure tier's call-site inline-cache
	// and deoptimization counters (zero for legs without the tier).
	ICHits   uint64 `json:"ic_hits"`
	ICMisses uint64 `json:"ic_misses"`
	Deopts   uint64 `json:"deopts"`
	// Telemetry marks the leg that ran with the cycle-sampling profiler
	// attached and a live HTTP telemetry server listening.
	Telemetry bool `json:"telemetry"`
}

// ExecBenchDoc is the machine-readable exec-bench output (BENCH_exec.json).
type ExecBenchDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Iters is the outer-loop trip count the kernel ran with.
	Iters   int                `json:"iters"`
	Engines []ExecEngineResult `json:"engines"`
	// SpeedupPredecode is baseline wall time over predecode-only wall
	// time; SpeedupFull is baseline over predecode+xcache; SpeedupClosure
	// is baseline over the closure compilation tier. Ratios are
	// host-machine dependent in absolute terms but stable enough across
	// runs on one machine to gate regressions.
	SpeedupPredecode float64 `json:"speedup_predecode"`
	SpeedupFull      float64 `json:"speedup_full"`
	SpeedupClosure   float64 `json:"speedup_closure"`
	// TelemetryOverheadPct is how much full-engine throughput drops when
	// the sampler and HTTP telemetry server are enabled. It comes from a
	// dedicated paired measurement (see measureTelemetryOverhead): ABBA
	// blocks of back-to-back plain/telemetry runs whose symmetric order
	// and sum ratios cancel host drift and load spikes, retried on a
	// noisy host until a quiet measurement window is found. Negative
	// values (telemetry leg faster, i.e. the difference is below the
	// noise floor) are kept as-is. The CI bench job gates this at 5%.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`
}

// execEngine is one engine configuration of the matrix.
type execEngine struct {
	name                       string
	predecode, xcache, closure bool
	// telemetry attaches the cycle-sampling profiler and starts a live
	// HTTP telemetry server for the duration of the leg, measuring the
	// observability tax on the fastest engine.
	telemetry bool
}

// execEngines is the fixed engine matrix, slowest first. The telemetry
// leg rides the closure tier so the observability tax is measured where
// it hurts most: against the fastest engine.
var execEngines = []execEngine{
	{name: "baseline"},
	{name: "predecode", predecode: true},
	{name: "predecode+xcache", predecode: true, xcache: true},
	{name: "closure", predecode: true, xcache: true, closure: true},
	{name: "closure+telemetry", predecode: true, xcache: true, closure: true, telemetry: true},
}

// runExecOnce executes the module under one engine configuration and
// returns the VM (for modeled stats) plus host wall time. reg and sampler
// are nil for non-telemetry legs.
func runExecOnce(m *ir.Module, eng execEngine, reg *obs.Registry, sampler *obs.Sampler) (*vm.VM, time.Duration, error) {
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	cfg.GuardMech = guard.MechBinarySearch
	cfg.Predecode = eng.predecode
	cfg.XCache = eng.xcache
	cfg.Closure = eng.closure
	cfg.Obs = reg
	cfg.Sampler = sampler
	v, err := vm.Load(m, cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := v.Run(); err != nil {
		return nil, 0, err
	}
	return v, time.Since(start), nil
}

// RunExecBench measures every engine leg over the same program and
// returns the document. reps > 1 keeps the best (minimum) wall time per
// engine, the standard cure for scheduler noise in microbenchmarks. Reps
// run rep-major (every engine once per round, not every rep of one engine
// in a block) so a host load spike or thermal drift hits all legs alike.
// The telemetry-overhead figure does not reuse these walls: it gets its
// own noise-hardened paired measurement (measureTelemetryOverhead).
//
// The closure+telemetry leg runs with a fresh registry, a cycle sampler,
// and a live telemetry HTTP server on a loopback port. It passes the same
// modeled-result invariance check as every other leg — the proof that
// sampling never perturbs modeled execution.
func RunExecBench(iters, reps int) (*ExecBenchDoc, error) {
	if iters <= 0 {
		iters = 60
	}
	if reps <= 0 {
		reps = 3
	}
	doc := &ExecBenchDoc{Schema: ExecBenchSchema, Version: ExecBenchVersion, Tool: "benchexec", Iters: iters}

	var teleReg *obs.Registry
	var teleSampler *obs.Sampler
	var tele *telemetry.Server
	for _, eng := range execEngines {
		if eng.telemetry {
			teleReg = obs.NewRegistry()
			teleSampler = obs.NewSampler(0)
			tele = &telemetry.Server{Registry: teleReg, Sampler: teleSampler}
			if _, err := tele.Start("127.0.0.1:0"); err != nil {
				return nil, fmt.Errorf("bench: execbench telemetry: %w", err)
			}
			tele.SetReady(true)
			defer tele.Close()
		}
	}

	bests := make([]time.Duration, len(execEngines))
	bestVMs := make([]*vm.VM, len(execEngines))
	for r := 0; r < reps; r++ {
		for i, eng := range execEngines {
			m, err := ExecBenchModule(iters, passes.LevelGuardsOnly)
			if err != nil {
				return nil, err
			}
			var reg *obs.Registry
			var sampler *obs.Sampler
			if eng.telemetry {
				reg, sampler = teleReg, teleSampler
			}
			v, wall, err := runExecOnce(m, eng, reg, sampler)
			if err != nil {
				return nil, fmt.Errorf("bench: execbench %s: %w", eng.name, err)
			}
			if bestVMs[i] == nil || wall < bests[i] {
				bests[i], bestVMs[i] = wall, v
			}
		}
	}

	// Modeled results must be engine-invariant.
	refInstrs, refCycles := bestVMs[0].Instrs, bestVMs[0].Cycles
	for i, eng := range execEngines {
		if bestVMs[i].Instrs != refInstrs || bestVMs[i].Cycles != refCycles {
			return nil, fmt.Errorf("bench: engine %s changed modeled results: instrs %d (want %d), cycles %d (want %d)",
				eng.name, bestVMs[i].Instrs, refInstrs, bestVMs[i].Cycles, refCycles)
		}
		res := ExecEngineResult{
			Engine:        eng.name,
			Predecode:     eng.predecode,
			XCache:        eng.xcache,
			Closure:       eng.closure,
			Telemetry:     eng.telemetry,
			WallMS:        float64(bests[i].Nanoseconds()) / 1e6,
			Instrs:        bestVMs[i].Instrs,
			Cycles:        bestVMs[i].Cycles,
			MInstrsPerSec: float64(bestVMs[i].Instrs) / bests[i].Seconds() / 1e6,
		}
		if eng.xcache {
			res.XCacheHits, res.XCacheMisses, _ = bestVMs[i].XCacheStats()
		}
		if eng.closure {
			_, res.Deopts, res.ICHits, res.ICMisses = bestVMs[i].ClosureStats()
		}
		doc.Engines = append(doc.Engines, res)
	}
	doc.SpeedupPredecode = doc.Engines[0].WallMS / doc.Engines[1].WallMS
	doc.SpeedupFull = doc.Engines[0].WallMS / doc.Engines[2].WallMS
	doc.SpeedupClosure = doc.Engines[0].WallMS / doc.Engines[3].WallMS
	ovh, err := measureTelemetryOverhead(iters, teleReg, teleSampler)
	if err != nil {
		return nil, err
	}
	doc.TelemetryOverheadPct = ovh
	return doc, nil
}

// Telemetry-overhead measurement parameters. One "set" is
// overheadBlocks ABBA blocks: plain, telemetry, telemetry, plain — the
// symmetric order cancels linear host drift across the block, and the
// within-block sum ratio cancels any load spike that spans the block.
// The set estimate is the midsummary (mean of the two middle block
// ratios), which discards one spike-hit block on each side. A sustained
// host burst can still poison an entire set, so up to overheadMaxSets
// sets run with a short pause in between and the MINIMUM set estimate
// wins: contention only ever inflates a paired ratio, never deflates it,
// so the quietest set is the closest measurement of the true tax. A set
// at or below overheadQuietPct is accepted immediately — the host was
// demonstrably quiet, no retry needed.
const (
	overheadBlocks   = 4
	overheadMaxSets  = 5
	overheadQuietPct = 2.5
)

// measureTelemetryOverhead measures the percent wall-time slowdown of the
// full engine when the cycle sampler (and shared registry behind the live
// HTTP server) is attached. Negative values mean the difference was below
// the host's noise floor.
func measureTelemetryOverhead(iters int, reg *obs.Registry, sampler *obs.Sampler) (float64, error) {
	run := func(eng execEngine, r *obs.Registry, sm *obs.Sampler) (time.Duration, error) {
		m, err := ExecBenchModule(iters, passes.LevelGuardsOnly)
		if err != nil {
			return 0, err
		}
		_, w, err := runExecOnce(m, eng, r, sm)
		if err != nil {
			return 0, fmt.Errorf("bench: telemetry overhead %s: %w", eng.name, err)
		}
		return w, nil
	}
	plain := execEngines[3]
	tele := execEngines[4]
	set := func() (float64, error) {
		ratios := make([]float64, 0, overheadBlocks)
		for b := 0; b < overheadBlocks; b++ {
			a1, err := run(plain, nil, nil)
			if err != nil {
				return 0, err
			}
			b1, err := run(tele, reg, sampler)
			if err != nil {
				return 0, err
			}
			b2, err := run(tele, reg, sampler)
			if err != nil {
				return 0, err
			}
			a2, err := run(plain, nil, nil)
			if err != nil {
				return 0, err
			}
			ratios = append(ratios, float64(b1+b2)/float64(a1+a2))
		}
		sort.Float64s(ratios)
		mid := (ratios[overheadBlocks/2-1] + ratios[overheadBlocks/2]) / 2
		return (mid - 1) * 100, nil
	}
	best, err := set()
	if err != nil {
		return 0, err
	}
	for i := 1; i < overheadMaxSets && best > overheadQuietPct; i++ {
		time.Sleep(500 * time.Millisecond)
		e, err := set()
		if err != nil {
			return 0, err
		}
		if e < best {
			best = e
		}
	}
	return best, nil
}

// WriteJSON emits the document to w.
func (d *ExecBenchDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
