package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

// Execution-engine microbenchmark: measures HOST throughput (modeled
// instructions retired per host second) of the interpreter across its
// engine configurations — baseline dispatch, predecoded dispatch, and
// predecode plus the guard/translation cache. The modeled results (return
// value, cycles, guard stats) are asserted identical across engines before
// any timing is reported: the engines are host-speed optimizations only.

// ExecBenchSchema identifies the exec-bench output document.
const ExecBenchSchema = "carat.bench.exec"

// ExecBenchVersion is the current document format version.
const ExecBenchVersion = 1

// execBenchSrc is a guard-heavy kernel: every loop iteration performs
// several guarded loads/stores over three arrays plus enough integer work
// to exercise the dispatch path. Compiled at LevelGuardsOnly so guards are
// not hoisted away — this is deliberately the worst case for software
// address translation, where the cache has the most to recover.
const execBenchSrc = `module "execbench"
global @a : [4096 x i64]
global @b : [4096 x i64]
global @c : [4096 x i64]
func @main() -> i64 {
entry:
  br ^outer
outer:
  %o = phi i64 [0, ^entry], [%o1, ^olatch]
  br ^inner
inner:
  %i = phi i64 [0, ^outer], [%i1, ^inner]
  %acc = phi i64 [0, ^outer], [%acc2, ^inner]
  %m = and i64 %i, 4095
  %pa = gep i64, @a, %m
  %x = load i64, %pa
  %x1 = add i64 %x, %o
  %pb = gep i64, @b, %m
  store i64 %x1, %pb
  %y = load i64, %pb
  %y1 = mul i64 %y, 3
  %y2 = xor i64 %y1, %acc
  %pc = gep i64, @c, %m
  store i64 %y2, %pc
  %acc2 = add i64 %acc, %y2
  %i1 = add i64 %i, 1
  %ci = icmp slt i64 %i1, 4096
  condbr %ci, ^inner, ^olatch
olatch:
  %o1 = add i64 %o, 1
  %co = icmp slt i64 %o1, %iters
  condbr %co, ^outer, ^done
done:
  %p0 = gep i64, @c, 7
  %r = load i64, %p0
  ret i64 %r
}`

// ExecBenchModule builds the exec-bench program with the given outer
// iteration count, compiled at the given pipeline level.
func ExecBenchModule(iters int, lvl passes.Level) (*ir.Module, error) {
	src := execBenchSrc
	m, err := ir.Parse(replaceIters(src, iters))
	if err != nil {
		return nil, fmt.Errorf("bench: execbench parse: %w", err)
	}
	pl := passes.Build(lvl)
	pl.Workers = 1
	if err := pl.Run(m); err != nil {
		return nil, fmt.Errorf("bench: execbench passes: %w", err)
	}
	return m, nil
}

func replaceIters(src string, iters int) string {
	out := ""
	for i := 0; i < len(src); i++ {
		if src[i] == '%' && i+6 <= len(src) && src[i:i+6] == "%iters" {
			out += fmt.Sprintf("%d", iters)
			i += 5
			continue
		}
		out += string(src[i])
	}
	return out
}

// ExecEngineResult is one engine configuration's measurement.
type ExecEngineResult struct {
	Engine    string  `json:"engine"`
	Predecode bool    `json:"predecode"`
	XCache    bool    `json:"xcache"`
	WallMS    float64 `json:"wall_ms"`
	// Instrs/Cycles are modeled quantities — identical across engines by
	// construction (verified before this document is emitted).
	Instrs uint64 `json:"instrs"`
	Cycles uint64 `json:"cycles"`
	// MInstrsPerSec is modeled instructions retired per host second, in
	// millions: the host-throughput figure of merit.
	MInstrsPerSec float64 `json:"minstrs_per_sec"`
	XCacheHits    uint64  `json:"xcache_hits,omitempty"`
	XCacheMisses  uint64  `json:"xcache_misses,omitempty"`
}

// ExecBenchDoc is the machine-readable exec-bench output (BENCH_exec.json).
type ExecBenchDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Iters is the outer-loop trip count the kernel ran with.
	Iters   int                `json:"iters"`
	Engines []ExecEngineResult `json:"engines"`
	// SpeedupPredecode is baseline wall time over predecode-only wall
	// time; SpeedupFull is baseline over predecode+xcache. Ratios are
	// host-machine dependent in absolute terms but stable enough across
	// runs on one machine to gate regressions.
	SpeedupPredecode float64 `json:"speedup_predecode"`
	SpeedupFull      float64 `json:"speedup_full"`
}

// execEngines is the fixed engine matrix, slowest first.
var execEngines = []struct {
	name              string
	predecode, xcache bool
}{
	{"baseline", false, false},
	{"predecode", true, false},
	{"predecode+xcache", true, true},
}

// runExecOnce executes the module under one engine configuration and
// returns the VM (for modeled stats) plus host wall time.
func runExecOnce(m *ir.Module, predecode, xcache bool) (*vm.VM, time.Duration, error) {
	cfg := vm.DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	cfg.GuardMech = guard.MechBinarySearch
	cfg.Predecode = predecode
	cfg.XCache = xcache
	v, err := vm.Load(m, cfg)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := v.Run(); err != nil {
		return nil, 0, err
	}
	return v, time.Since(start), nil
}

// RunExecBench measures all three engines over the same program and
// returns the document. reps > 1 keeps the best (minimum) wall time per
// engine, the standard cure for scheduler noise in microbenchmarks.
func RunExecBench(iters, reps int) (*ExecBenchDoc, error) {
	if iters <= 0 {
		iters = 60
	}
	if reps <= 0 {
		reps = 3
	}
	doc := &ExecBenchDoc{Schema: ExecBenchSchema, Version: ExecBenchVersion, Tool: "benchexec", Iters: iters}
	var refInstrs, refCycles uint64
	for _, eng := range execEngines {
		var best time.Duration
		var bestVM *vm.VM
		for r := 0; r < reps; r++ {
			m, err := ExecBenchModule(iters, passes.LevelGuardsOnly)
			if err != nil {
				return nil, err
			}
			v, wall, err := runExecOnce(m, eng.predecode, eng.xcache)
			if err != nil {
				return nil, fmt.Errorf("bench: execbench %s: %w", eng.name, err)
			}
			if bestVM == nil || wall < best {
				best, bestVM = wall, v
			}
		}
		// Modeled results must be engine-invariant.
		if refInstrs == 0 {
			refInstrs, refCycles = bestVM.Instrs, bestVM.Cycles
		} else if bestVM.Instrs != refInstrs || bestVM.Cycles != refCycles {
			return nil, fmt.Errorf("bench: engine %s changed modeled results: instrs %d (want %d), cycles %d (want %d)",
				eng.name, bestVM.Instrs, refInstrs, bestVM.Cycles, refCycles)
		}
		res := ExecEngineResult{
			Engine:        eng.name,
			Predecode:     eng.predecode,
			XCache:        eng.xcache,
			WallMS:        float64(best.Nanoseconds()) / 1e6,
			Instrs:        bestVM.Instrs,
			Cycles:        bestVM.Cycles,
			MInstrsPerSec: float64(bestVM.Instrs) / best.Seconds() / 1e6,
		}
		if eng.xcache {
			res.XCacheHits, res.XCacheMisses, _ = bestVM.XCacheStats()
		}
		doc.Engines = append(doc.Engines, res)
	}
	doc.SpeedupPredecode = doc.Engines[0].WallMS / doc.Engines[1].WallMS
	doc.SpeedupFull = doc.Engines[0].WallMS / doc.Engines[2].WallMS
	return doc, nil
}

// WriteJSON emits the document to w.
func (d *ExecBenchDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
