package bench

import (
	"bytes"
	"strings"
	"testing"

	"carat/internal/mmpolicy"
	"carat/internal/workload"
)

// quickOpts restricts experiments to a fast, representative benchmark
// subset at test scale.
func quickOpts(names ...string) Options {
	o := DefaultOptions(workload.ScaleTest)
	o.Only = names
	return o
}

func TestFig2ShapeHolds(t *testing.T) {
	r, err := Fig2(quickOpts("EP", "blackscholes", "canneal", "mcf_s"))
	if err != nil {
		t.Fatal(err)
	}
	mpki := map[string]float64{}
	for _, row := range r.Rows {
		mpki[row.Name] = row.DTLBMPKI
	}
	// The paper's headline: random/huge-footprint workloads orders of
	// magnitude above tiny-footprint ones.
	if mpki["canneal"] < 3*mpki["EP"] {
		t.Errorf("canneal MPKI %.3f not well above EP %.3f", mpki["canneal"], mpki["EP"])
	}
	// mcf's pointer chasing must stay well above the tiny-footprint EP.
	// (The full spread vs streaming benchmarks needs -scale small; test
	// scale keeps footprints deliberately small.)
	if mpki["mcf_s"] < 2*mpki["EP"] {
		t.Errorf("mcf MPKI %.3f not well above EP %.3f", mpki["mcf_s"], mpki["EP"])
	}
	for _, row := range r.Rows {
		if row.Instrs == 0 {
			t.Errorf("%s executed nothing", row.Name)
		}
	}
}

func TestTable1FractionsValid(t *testing.T) {
	r, err := Table1(quickOpts("LU", "canneal", "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		sum := row.Untouched + row.Opt1 + row.Opt2 + row.Opt3
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %.3f", row.Name, sum)
		}
		if row.OptGuards < 0 || row.OptGuards > 1.5 {
			t.Errorf("%s: remaining fraction %.3f out of range", row.Name, row.OptGuards)
		}
	}
	if r.Mean.Untouched == 0 && r.Mean.Opt3 == 0 {
		t.Error("mean row not computed")
	}
}

func TestFig3MPXBeatsRange(t *testing.T) {
	r, err := Fig3(quickOpts("canneal", "LU"), true)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.GeoMPX >= 1 && r.GeoRange >= 1) {
		t.Errorf("overheads below 1: mpx %.3f range %.3f", r.GeoMPX, r.GeoRange)
	}
	if r.GeoMPX > r.GeoRange+1e-9 {
		t.Errorf("MPX (%.3f) costlier than range guards (%.3f)", r.GeoMPX, r.GeoRange)
	}
}

func TestFig3OptsReduceOverhead(t *testing.T) {
	naive, err := Fig3(quickOpts("LU", "lbm_s"), false)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Fig3(quickOpts("LU", "lbm_s"), true)
	if err != nil {
		t.Fatal(err)
	}
	if opt.GeoRange >= naive.GeoRange {
		t.Errorf("CARAT opts did not reduce range-guard overhead: %.3f -> %.3f",
			naive.GeoRange, opt.GeoRange)
	}
}

func TestFig4Shapes(t *testing.T) {
	r, err := Fig4(DefaultOptions(workload.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	// Index points by (mech, pattern, regions).
	get := func(mech, pat string, regions int) float64 {
		for _, p := range r.Points {
			if p.Mechanism == mech && p.Pattern == pat && p.Regions == regions {
				return p.AvgCycles
			}
		}
		t.Fatalf("missing point %s/%s/%d", mech, pat, regions)
		return 0
	}
	// Random cost grows with region count.
	if get("iftree", "random", 16384) <= get("iftree", "random", 4) {
		t.Error("if-tree random cost did not grow with regions")
	}
	if get("bsearch", "random", 16384) <= get("bsearch", "random", 4) {
		t.Error("bsearch random cost did not grow with regions")
	}
	// Small-stride access much cheaper than random at high region counts.
	if get("iftree", "stride 8", 4096)*2 > get("iftree", "random", 4096) {
		t.Error("strided access not well below random")
	}
}

func TestTable2RatesShape(t *testing.T) {
	r, err := Table2(quickOpts("EP", "swaptions", "mcf_s"))
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Table2Row{}
	for _, row := range r.Rows {
		rows[row.Name] = row
	}
	// Move rates must be far below allocation rates everywhere.
	for name, row := range rows {
		if row.PageMoves*100 > row.PageAllocs {
			t.Errorf("%s: moves (%d) not rare vs allocs (%d)", name, row.PageMoves, row.PageAllocs)
		}
	}
	// EP allocates almost nothing beyond its initial mapping.
	if ep, mcf := rows["EP"], rows["mcf_s"]; ep.PageAllocs >= mcf.PageAllocs {
		t.Errorf("EP allocs (%d) not below mcf (%d)", ep.PageAllocs, mcf.PageAllocs)
	}
}

func TestFig5NABOutlier(t *testing.T) {
	r, err := Fig5(quickOpts("EP", "nab_s"))
	if err != nil {
		t.Fatal(err)
	}
	var nab, ep Fig5Row
	for _, row := range r.Rows {
		switch row.Name {
		case "nab_s":
			nab = row
		case "EP":
			ep = row
		}
	}
	if nab.Max <= 50 {
		t.Errorf("nab_s max escapes = %d, want > 50", nab.Max)
	}
	if ep.Max > 10 {
		t.Errorf("EP max escapes = %d, want small", ep.Max)
	}
}

func TestFig6SwaptionsOutlier(t *testing.T) {
	r, err := Fig6(quickOpts("EP", "swaptions"))
	if err != nil {
		t.Fatal(err)
	}
	var sw, ep float64
	for _, row := range r.Rows {
		if row.Ratio < 1 {
			t.Errorf("%s: ratio %.3f below 1", row.Name, row.Ratio)
		}
		switch row.Name {
		case "swaptions":
			sw = row.Ratio
		case "EP":
			ep = row.Ratio
		}
	}
	if sw <= ep {
		t.Errorf("swaptions ratio (%.3f) not above EP (%.3f)", sw, ep)
	}
}

func TestFig7OverheadSmall(t *testing.T) {
	r, err := Fig7(quickOpts("EP", "LU", "canneal"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Geomean < 0.99 {
		t.Errorf("tracking made programs faster? geomean %.3f", r.Geomean)
	}
	if r.Geomean > 1.6 {
		t.Errorf("tracking overhead too high: geomean %.3f (paper: ~2%%)", r.Geomean)
	}
}

func TestFig9OverheadGrowsWithRate(t *testing.T) {
	r, err := Fig9(quickOpts("canneal"))
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	// Higher rates must not be cheaper, and the top rate must do moves.
	first, last := row.Overhead[0], row.Overhead[len(row.Overhead)-1]
	if last < first {
		t.Errorf("overhead fell with rate: %.3f -> %.3f", first, last)
	}
	if row.Moves[len(row.Moves)-1] == 0 {
		t.Error("no moves at the highest rate")
	}
}

func TestTable3Breakdown(t *testing.T) {
	r, err := Table3(quickOpts("canneal", "nab_s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		if row.Moves == 0 {
			t.Errorf("%s: no moves recorded", row.Name)
		}
		if row.TotalCost < row.ProtoCost {
			t.Errorf("%s: total < prototype cost", row.Name)
		}
		if row.FracNoExpand <= 0 || row.FracNoExpand >= 1 {
			t.Errorf("%s: w/o-expand fraction %.4f out of (0,1)", row.Name, row.FracNoExpand)
		}
	}
}

func TestRunByIDAndPrinting(t *testing.T) {
	var buf bytes.Buffer
	o := quickOpts("EP")
	if err := RunByID("fig2", o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") || !strings.Contains(buf.String(), "EP") {
		t.Errorf("fig2 output malformed:\n%s", buf.String())
	}
	if err := RunByID("nosuch", o, &buf); err == nil {
		t.Error("unknown experiment id accepted")
	}
	if len(Experiments()) != 16 {
		t.Errorf("experiment registry has %d entries, want 16", len(Experiments()))
	}
}

func TestAblationAllocGranularity(t *testing.T) {
	r, err := AblationAllocGranularity(quickOpts("canneal", "nab_s"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no ablation rows")
	}
	// Allocation-granularity must be cheaper per move.
	if r.GeoReduction <= 0 {
		t.Errorf("geomean reduction = %.3f, want > 0", r.GeoReduction)
	}
}

func TestAblationCapsule(t *testing.T) {
	r, err := AblationCapsule(quickOpts("canneal", "LU"))
	if err != nil {
		t.Fatal(err)
	}
	if r.GeoSpeedup < 1.0 {
		t.Errorf("capsule geomean speedup %.3f below 1.0", r.GeoSpeedup)
	}
}

func TestDefragRestoresSuperpageRun(t *testing.T) {
	r, err := Defrag(DefaultOptions(workload.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	if r.FragBefore.LargestRun >= r.TargetRun {
		t.Errorf("churn phase did not fragment: largest run %d before compaction",
			r.FragBefore.LargestRun)
	}
	if !r.Restored {
		t.Errorf("daemon failed to assemble %d-page run (largest %d after %d ticks)",
			r.TargetRun, r.FragAfter.LargestRun, r.Ticks)
	}
	if !r.Verified {
		t.Error("harness integrity not verified")
	}
	if r.Moves == 0 {
		t.Error("no compaction moves recorded")
	}
	// Per-move costs must decompose like Table 3: a real total built from
	// patch and copy work.
	if r.Breakdown.TotalCost <= 0 || r.Breakdown.AllocAndMove <= 0 {
		t.Errorf("degenerate move breakdown: %+v", r.Breakdown)
	}
	if r.Policy == nil || r.Policy.Schema != "carat.policy" {
		t.Error("missing or mislabeled policy document")
	}
}

func TestTieringSwapsUnderPressure(t *testing.T) {
	r, err := Tiering(DefaultOptions(workload.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	if r.SwapOuts == 0 {
		t.Error("no evictions despite pressure")
	}
	if r.SwapIns == 0 {
		t.Error("nothing faulted back in")
	}
	if !r.Verified {
		t.Error("harness integrity not verified")
	}
}

func TestPolicyPressureRun(t *testing.T) {
	r, err := Policy(DefaultOptions(workload.ScaleTest))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Error("harness integrity not verified")
	}
	if r.Ticks == 0 {
		t.Error("daemon never ticked")
	}
	total := r.Totals.Moves + r.Totals.SwapOuts
	if total == 0 {
		t.Error("no policy activity under pressure")
	}
	if r.Totals.DaemonCycles == 0 {
		t.Error("daemon overhead unaccounted")
	}
	var sink int
	o := DefaultOptions(workload.ScaleTest)
	o.PolicySink = func(doc *mmpolicy.Document) {
		sink++
		if doc == nil || len(doc.Decisions) == 0 {
			t.Error("sink received empty document")
		}
	}
	if _, err := Policy(o); err != nil {
		t.Fatal(err)
	}
	if sink != 1 {
		t.Errorf("policy sink called %d times, want 1", sink)
	}
}
