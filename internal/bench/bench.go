// Package bench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each experiment returns a
// typed result with one row per benchmark plus summary statistics, and can
// render itself as the text table the paper prints. cmd/caratbench and the
// top-level benchmark suite both drive this package.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"text/tabwriter"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/mmpolicy"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/vm"
	"carat/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Scale selects problem sizes (workload.ScaleTest for smoke runs,
	// ScaleSmall for paper-shaped results).
	Scale workload.Scale
	// Only, when non-empty, restricts the benchmark set by name.
	Only []string
	// MemBytes / HeapBytes configure the simulated machine.
	MemBytes  uint64
	HeapBytes uint64
	// Workers bounds how many per-workload experiment legs run
	// concurrently; 0 means GOMAXPROCS, 1 runs sequentially. Results are
	// identical across worker counts: legs are independent and fold in
	// workload order.
	Workers int
	// Obs, when non-nil, collects every VM's and pipeline's metrics in one
	// registry (counters accumulate across the sweep).
	Obs *obs.Registry
	// Trace, when non-nil, receives trace events from every VM run.
	Trace *obs.Tracer
	// PolicySink, when non-nil, receives the carat.policy document of each
	// policy-daemon experiment (defrag, tiering, policy) after it runs.
	PolicySink func(*mmpolicy.Document)
	// Fault, when non-nil, threads a seeded fault injector through the
	// policy-daemon experiments (caratbench's -faults flag).
	Fault *fault.Injector
	// Sampler, when non-nil, attaches the cycle-sampling profiler to every
	// VM run (one track each) and to the policy daemon ("policy" phase).
	Sampler *obs.Sampler
	// PauseBudget, when non-zero, runs the policy-daemon experiments'
	// processes under the incremental move protocol with the largest batch
	// whose worst-case pause fits the budget (caratbench's -pausebudget
	// flag). 0 keeps the legacy full-stop protocol.
	PauseBudget uint64
	// Closure runs every VM on the closure compilation tier (caratbench's
	// -closure flag). Modeled results are byte-identical with the default
	// predecode tier; only host wall time changes.
	Closure bool
}

// DefaultOptions returns the standard configuration for scale s.
func DefaultOptions(s workload.Scale) Options {
	return Options{Scale: s, MemBytes: 1 << 28, HeapBytes: 1 << 26}
}

func (o Options) workloads() []*workload.Workload {
	all := workload.All()
	if len(o.Only) == 0 {
		return all
	}
	var out []*workload.Workload
	for _, w := range all {
		for _, n := range o.Only {
			if w.Name == n {
				out = append(out, w)
			}
		}
	}
	return out
}

// eachWorkload evaluates fn for every selected workload over a bounded
// pool (o.Workers wide) and returns the results in workload order, so a
// parallel sweep folds to exactly what a sequential one produces. A nil
// result with a nil error means fn skipped the workload; callers filter.
// The first error in workload order wins, matching sequential behaviour.
func eachWorkload[T any](o Options, fn func(*workload.Workload) (*T, error)) ([]*T, error) {
	ws := o.workloads()
	out := make([]*T, len(ws))
	errs := make([]error, len(ws))
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ws) {
		workers = len(ws)
	}
	if workers <= 1 {
		for i, w := range ws {
			out[i], errs[i] = fn(w)
			if errs[i] != nil {
				break
			}
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					out[i], errs[i] = fn(ws[i])
				}
			}()
		}
		for i := range ws {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (o Options) vmConfig(mode vm.Mode, mech guard.Mechanism) vm.Config {
	cfg := vm.DefaultConfig()
	cfg.Mode = mode
	cfg.GuardMech = mech
	cfg.MemBytes = o.MemBytes
	cfg.HeapBytes = o.HeapBytes
	cfg.Obs = o.Obs
	cfg.Trace = o.Trace
	cfg.Sampler = o.Sampler
	cfg.Closure = o.Closure
	return cfg
}

// buildAndRun compiles w at the given level and executes it.
func (o Options) buildAndRun(w *workload.Workload, lvl passes.Level, mode vm.Mode,
	mech guard.Mechanism, tweak func(*vm.VM)) (*vm.VM, *passes.Stats, error) {
	m := w.Build(o.Scale)
	pl := passes.Build(lvl)
	pl.Obs = o.Obs
	// Workload legs are the parallel unit of a sweep; compiling each small
	// workload module with one worker avoids nested parallelism.
	pl.Workers = 1
	if err := pl.Run(m); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	v, err := vm.Load(m, o.vmConfig(mode, mech))
	if err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	if tweak != nil {
		tweak(v)
	}
	if _, err := v.Run(); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	return v, &pl.Stats, nil
}

// compileOnly runs the pipeline without executing (Table 1).
func (o Options) compileOnly(w *workload.Workload, lvl passes.Level) (*ir.Module, *passes.Stats, error) {
	m := w.Build(o.Scale)
	pl := passes.Build(lvl)
	pl.Obs = o.Obs
	pl.Workers = 1
	if err := pl.Run(m); err != nil {
		return nil, nil, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	return m, &pl.Stats, nil
}

// CPUFreqHz is the modeled clock (the paper's E5-2695v3 runs at 2.3 GHz);
// rate-based experiments (Table 2, Figure 9) convert cycles to seconds
// with it.
const CPUFreqHz = 2.3e9

// geomean returns the geometric mean of xs (ignoring non-positives).
func geomean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// harmean returns the harmonic mean of positive xs.
func harmean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += 1 / x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(n) / sum
}

// table writes rows through a tabwriter.
func table(w io.Writer, write func(tw *tabwriter.Writer)) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	write(tw)
	tw.Flush()
}

// pagesOf converts bytes to 4 KB pages, rounding up.
func pagesOf(bytes uint64) uint64 {
	return (bytes + kernel.PageSize - 1) / kernel.PageSize
}
