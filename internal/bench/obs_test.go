package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"carat/internal/obs"
	"carat/internal/runtime"
	"carat/internal/workload"
)

// TestTracingDoesNotChangeResults is the differential check behind the
// zero-interference requirement: the same experiment with and without a
// live tracer must produce byte-identical results (tracing observes the
// modeled cycles, it never charges any).
func TestTracingDoesNotChangeResults(t *testing.T) {
	plain := quickOpts("canneal", "LU")
	rPlain, err := Table3(plain)
	if err != nil {
		t.Fatal(err)
	}

	traced := quickOpts("canneal", "LU")
	var buf bytes.Buffer
	traced.Trace = obs.NewTracer(&buf, nil)
	traced.Obs = obs.NewRegistry()
	rTraced, err := Table3(traced)
	if err != nil {
		t.Fatal(err)
	}
	if err := traced.Trace.Close(); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(rPlain, rTraced) {
		t.Errorf("tracing changed the Table 3 result:\nplain:  %+v\ntraced: %+v", rPlain, rTraced)
	}
	if buf.Len() == 0 {
		t.Fatal("tracer produced no output")
	}
}

// TestTraceContainsAllMoveSteps checks the Fig-8 protocol coverage the
// acceptance criteria demand: a traced Table 3 run must emit the parent
// "move" span and all 11 named step spans, and the whole file must parse
// as Chrome trace_event JSON.
func TestTraceContainsAllMoveSteps(t *testing.T) {
	o := quickOpts("canneal")
	var buf bytes.Buffer
	o.Trace = obs.NewTracer(&buf, nil)
	if _, err := Table3(o); err != nil {
		t.Fatal(err)
	}
	if err := o.Trace.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Schema      string `json:"schema"`
		Version     int    `json:"version"`
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.Schema != obs.TraceSchema || doc.Version != obs.TraceSchemaVersion {
		t.Errorf("trace schema = %s v%d, want %s v%d",
			doc.Schema, doc.Version, obs.TraceSchema, obs.TraceSchemaVersion)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	if !seen["move"] {
		t.Error("trace has no parent \"move\" span")
	}
	for _, step := range runtime.MoveStepNames {
		if !seen[step] {
			t.Errorf("trace missing move step span %q", step)
		}
	}
}

// TestRunJSONDocument checks the machine-readable bench document: schema
// header, per-experiment payloads, and the embedded metrics snapshot.
func TestRunJSONDocument(t *testing.T) {
	o := quickOpts("canneal")
	o.Obs = obs.NewRegistry()
	var buf bytes.Buffer
	if err := RunJSON("table3", o, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		Tool    string `json:"tool"`
		Scale   string `json:"scale"`
		Results []struct {
			Experiment string `json:"experiment"`
			Title      string `json:"title"`
			Data       struct {
				Rows []map[string]any `json:"rows"`
			} `json:"data"`
		} `json:"results"`
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document is not valid JSON: %v", err)
	}
	if doc.Schema != ResultSchema || doc.Version != ResultVersion {
		t.Errorf("schema = %s v%d, want %s v%d", doc.Schema, doc.Version, ResultSchema, ResultVersion)
	}
	if doc.Scale != "test" {
		t.Errorf("scale = %q, want \"test\"", doc.Scale)
	}
	if len(doc.Results) != 1 || doc.Results[0].Experiment != "table3" {
		t.Fatalf("results = %+v, want one table3 entry", doc.Results)
	}
	rows := doc.Results[0].Data.Rows
	if len(rows) == 0 {
		t.Fatal("table3 result has no rows")
	}
	for _, key := range []string{"page_expand", "patch_gen_exec", "register_patch",
		"alloc_and_move", "total_cost"} {
		if _, ok := rows[0][key]; !ok {
			t.Errorf("table3 row missing breakdown field %q", key)
		}
	}
	if doc.Metrics == nil {
		t.Fatal("document has no metrics snapshot")
	}
	if doc.Metrics.Counters["carat.runtime.moves"] == 0 {
		t.Error("metrics snapshot shows no runtime moves despite forced move policy")
	}
	if doc.Metrics.Counters["carat.passes.guards_injected"] == 0 {
		t.Error("metrics snapshot shows no injected guards")
	}
}

// TestUnknownExperimentListsIDs pins the satellite requirement: the error
// for a bad id must enumerate every valid id so the user need not consult
// the source.
func TestUnknownExperimentListsIDs(t *testing.T) {
	err := RunByID("nosuch", quickOpts("canneal"), &bytes.Buffer{})
	if err == nil {
		t.Fatal("unknown experiment id did not error")
	}
	for _, id := range ExperimentIDs() {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not mention valid id %q", err, id)
		}
	}
	if !strings.Contains(err.Error(), "all") {
		t.Errorf("error %q does not mention the \"all\" pseudo-id", err)
	}
}

// TestExperimentIDsMatchRegistry keeps ExperimentIDs and Experiments in
// lockstep.
func TestExperimentIDsMatchRegistry(t *testing.T) {
	ids := ExperimentIDs()
	exps := Experiments()
	if len(ids) != len(exps) {
		t.Fatalf("%d ids vs %d experiments", len(ids), len(exps))
	}
	for i, e := range exps {
		if ids[i] != e.ID {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], e.ID)
		}
	}
}

// TestUnknownScaleListsScales pins the other satellite: ParseScale's error
// must list the valid spellings.
func TestUnknownScaleListsScales(t *testing.T) {
	_, err := workload.ParseScale("huge")
	if err == nil {
		t.Fatal("unknown scale did not error")
	}
	for _, name := range workload.ScaleNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention scale %q", err, name)
		}
	}
}
