package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/mmpolicy"
	"carat/internal/passes"
	"carat/internal/vm"
	"carat/internal/workload"
)

// Table2Row is one benchmark's paging-behaviour measurement.
type Table2Row struct {
	Name            string  `json:"name"`
	StaticFootprint uint64  `json:"static_footprint_pages"` // pages the loader is obligated to provide
	InitialPages    uint64  `json:"initial_pages"`          // resident right after exec()
	PageAllocs      uint64  `json:"page_allocs"`
	PageMoves       uint64  `json:"page_moves"`
	ExecSeconds     float64 `json:"exec_seconds"` // simulated (cycles / CPUFreqHz)
	AllocRate       float64 `json:"alloc_rate"`   // allocations per simulated second
	MoveRate        float64 `json:"move_rate"`
}

// Table2Result reproduces Table 2, "Page (4KB) Allocation and Movement
// Rates", using the MMU-notifier-equivalent accounting of the kernel's
// paging model.
type Table2Result struct {
	Rows              []Table2Row `json:"rows"`
	GeoAllocRate      float64     `json:"geomean_alloc_rate"`
	GeoMoveRate       float64     `json:"geomean_move_rate"`
	HarmonicAllocRate float64     `json:"harmonic_alloc_rate"`
	HarmonicMoveRate  float64     `json:"harmonic_move_rate"`
}

// migrationPeriod models the rare kernel-initiated migrations (NUMA
// balancing, compaction): roughly one per hundred thousand demand
// allocations, which lands the move rates deep below 1/s as the paper
// measures. The pacing itself is mmpolicy.RareMigration — the same policy
// object the Figure 9 injector uses — so both figures share one model.
const migrationPeriod = 100_000

// Table2 runs every benchmark uninstrumented under the traditional model
// with the demand-paging observer attached.
func Table2(o Options) (*Table2Result, error) {
	rows, err := eachWorkload(o, func(w *workload.Workload) (*Table2Row, error) {
		m := w.Build(o.Scale)
		pl := passes.Build(passes.LevelNone)
		pl.Obs = o.Obs
		pl.Workers = 1
		if err := pl.Run(m); err != nil {
			return nil, err
		}
		staticPages := staticFootprintPages(m, o)
		initial := initialPages(m)
		paging := kernel.NewPagingModel(staticPages, initial)
		paging.Migrator = mmpolicy.NewRareMigration(migrationPeriod)

		cfg := o.vmConfig(vm.ModeTraditional, guard.MechRange)
		cfg.Paging = paging
		v, err := vm.Load(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}
		if _, err := v.Run(); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", w.Name, err)
		}

		secs := float64(v.Cycles) / CPUFreqHz
		row := &Table2Row{
			Name:            w.Name,
			StaticFootprint: staticPages,
			InitialPages:    initial,
			PageAllocs:      paging.PageAllocs,
			PageMoves:       paging.PageMoves,
			ExecSeconds:     secs,
		}
		if secs > 0 {
			row.AllocRate = float64(paging.PageAllocs) / secs
			row.MoveRate = float64(paging.PageMoves) / secs
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Table2Result{}
	var allocRates, moveRates []float64
	for _, rp := range rows {
		res.Rows = append(res.Rows, *rp)
		allocRates = append(allocRates, rp.AllocRate)
		moveRates = append(moveRates, rp.MoveRate)
	}
	res.GeoAllocRate = geomean(allocRates)
	res.GeoMoveRate = geomean(moveRates)
	res.HarmonicAllocRate = harmean(allocRates)
	res.HarmonicMoveRate = harmean(moveRates)
	return res, nil
}

// staticFootprintPages is the "static footprint capture" of §3: the LOAD
// sections the loader must provide — code, data+bss (globals), and the
// initial stack.
func staticFootprintPages(m *ir.Module, o Options) uint64 {
	var bytes uint64
	bytes += uint64(len(m.Funcs)*64 + 64) // code
	for _, g := range m.Globals {
		bytes += uint64(g.Size())
	}
	bytes += vm.DefaultConfig().StackBytes
	return pagesOf(bytes)
}

// initialPages is the "initial mapping capture": what is resident right
// after exec() — code and initialized data (file-backed content the loader
// copies), plus one stack page. bss is demand-zeroed later.
func initialPages(m *ir.Module) uint64 {
	var bytes uint64
	bytes += uint64(len(m.Funcs)*64 + 64)
	for _, g := range m.Globals {
		if len(g.Init) > 0 {
			bytes += uint64(len(g.Init))
		}
	}
	return pagesOf(bytes) + 1
}

// Print renders the table.
func (r *Table2Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 2: Page (4KB) Allocation and Movement Rates")
	table(w, func(tw *tabwriter.Writer) {
		fmt.Fprintln(tw, "benchmark\tstatic fp\tinitial\tallocs\tmoves\texec(s)\talloc rate\tmove rate")
		for _, row := range r.Rows {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.6f\t%.0f/s\t%s\n",
				row.Name, row.StaticFootprint, row.InitialPages, row.PageAllocs,
				row.PageMoves, row.ExecSeconds, row.AllocRate, rateStr(row.MoveRate))
		}
		fmt.Fprintf(tw, "geo mean\t\t\t\t\t\t%.0f/s\t%s\n", r.GeoAllocRate, rateStr(r.GeoMoveRate))
		fmt.Fprintf(tw, "harm mean\t\t\t\t\t\t%.0f/s\t%s\n", r.HarmonicAllocRate, rateStr(r.HarmonicMoveRate))
	})
}

func rateStr(r float64) string {
	if r == 0 {
		return "0/s"
	}
	if r < 1 {
		return "< 1/s"
	}
	return fmt.Sprintf("%.0f/s", r)
}
