package bench

import (
	"encoding/json"
	"fmt"
	"io"
	hostrt "runtime"
	"time"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/passes"
	"carat/internal/vm"
)

// Multi-core scaling benchmark: N processes of one simulated machine run
// truly concurrently (vm.Group) over the shared physical memory, each
// with a self-move policy so the ragged-safepoint protocol is exercised
// under load — and the aggregate host throughput is measured at several
// GOMAXPROCS settings. Two properties are checked: per-process model
// results (the digest folds cycles, outputs, and the process's arena
// bytes) are byte-identical at every GOMAXPROCS and under injected move
// aborts, and aggregate throughput scales with cores.

// ScaleBenchSchema identifies the scale-bench output document.
const ScaleBenchSchema = "carat.bench.scale"

// ScaleBenchVersion is the current document format version.
const ScaleBenchVersion = 1

// scaleArenaPages sizes each process's private arena (4 MB): code,
// globals, stack, heap, and move headroom for the exec-bench kernel.
const scaleArenaPages = 1024

// ScaleLegResult is one (GOMAXPROCS, fault-injection) configuration's
// measurement over the whole process group.
type ScaleLegResult struct {
	GOMAXPROCS int  `json:"gomaxprocs"`
	Aborts     bool `json:"aborts"` // injected move aborts + patch failures
	// WallMS is the host wall time of the whole group run (best of reps).
	WallMS float64 `json:"wall_ms"`
	// AggInstrs is the modeled instruction total across all processes.
	AggInstrs uint64 `json:"agg_instrs"`
	// AggMInstrsPerSec is aggregate modeled instructions per host second,
	// in millions: the scaling figure of merit.
	AggMInstrsPerSec float64 `json:"agg_minstrs_per_sec"`
	// Digests are the per-process result digests in process order. Legs of
	// the same family (same Aborts flag) must agree element-wise.
	Digests []uint64 `json:"digests"`
	// Rollbacks counts move rollbacks across the group (abort legs only).
	Rollbacks uint64 `json:"rollbacks"`
}

// ScaleBenchDoc is the machine-readable scale-bench output
// (BENCH_scale.json).
type ScaleBenchDoc struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	// Procs is the number of concurrent processes per leg; Iters the
	// exec-bench outer trip count of the FIRST process (process i runs
	// Iters+i so every digest is distinct — a cross-process mixup cannot
	// alias).
	Procs int `json:"procs"`
	Iters int `json:"iters"`
	// UsableCPUs is the host's core count when the bench ran. Scaling
	// floors are a function of it: a 1-core host cannot demonstrate an
	// 8-core speedup, but it can still prove determinism.
	UsableCPUs int              `json:"usable_cpus"`
	Legs       []ScaleLegResult `json:"legs"`
	// SpeedupAt8 is plain-leg aggregate throughput at GOMAXPROCS=8 over
	// GOMAXPROCS=1.
	SpeedupAt8 float64 `json:"speedup_8v1"`
	// DeterminismOK records that per-process digests were element-wise
	// identical across every GOMAXPROCS within each leg family. RunScaleBench
	// fails hard when they are not; the field makes the contract visible in
	// the artifact.
	DeterminismOK bool `json:"determinism_ok"`
	// MinSpeedupFloor is the floor the gating tool enforced for this run
	// (core-scaled; see scripts/benchexec). Recorded for the artifact.
	MinSpeedupFloor float64 `json:"min_speedup_floor"`
}

// scaleLegSpecs is the fixed leg matrix: plain legs sweep GOMAXPROCS for
// the scaling curve; abort legs re-run the determinism check with
// injected move aborts and patch failures at two core counts.
var scaleLegSpecs = []struct {
	gomaxprocs int
	aborts     bool
}{
	{1, false},
	{2, false},
	{8, false},
	{1, true},
	{8, true},
}

// buildScaleGroup assembles the process group for one leg run.
func buildScaleGroup(procs, iters int, aborts bool) (*vm.Group, error) {
	g := vm.NewGroup(1 << 26)
	for i := 0; i < procs; i++ {
		m, err := ExecBenchModule(iters+i, passes.LevelGuardsOnly)
		if err != nil {
			return nil, err
		}
		cfg := vm.DefaultConfig()
		cfg.HeapBytes = 1 << 20
		cfg.GuardMech = guard.MechBinarySearch
		cfg.Predecode = true
		cfg.XCache = true
		cfg.Closure = true
		if aborts {
			inj := fault.New(int64(1000+i), nil)
			inj.SetRate(fault.MoveAbort, 0.5)
			inj.SetRate(fault.PatchFail, 0.5)
			cfg.Fault = inj
		}
		v, err := g.Add(fmt.Sprintf("p%d", i), m, cfg, scaleArenaPages)
		if err != nil {
			return nil, err
		}
		// Self-moves paced by the process's own instruction counter: the
		// move pattern (and with it the ragged-safepoint traffic) is part
		// of the deterministic per-process model, never wall-clock timed.
		period := uint64(200_000 + i*17_000)
		v.SetMovePolicy(period, func() error {
			err := v.InjectWorstCaseMove()
			if fault.Injected(err) {
				return nil // rolled back; the program must not notice
			}
			return err
		})
	}
	return g, nil
}

// runScaleLeg runs one leg once and returns wall time plus the results.
func runScaleLeg(procs, iters, gomaxprocs int, aborts bool) (time.Duration, []vm.GroupResult, uint64, error) {
	prev := hostrt.GOMAXPROCS(gomaxprocs)
	defer hostrt.GOMAXPROCS(prev)
	g, err := buildScaleGroup(procs, iters, aborts)
	if err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	res := g.Run()
	wall := time.Since(start)
	for _, r := range res {
		if r.Err != nil {
			return 0, nil, 0, fmt.Errorf("process %s: %w", r.Name, r.Err)
		}
	}
	if err := g.Close(); err != nil {
		return 0, nil, 0, err
	}
	rollbacks := g.Kernel().Obs.Counter("carat.runtime.move_rollbacks").Get()
	return wall, res, rollbacks, nil
}

// RunScaleBench measures every leg and returns the document. reps > 1
// keeps the best (minimum) wall per leg, rep-major so host noise hits all
// legs alike. Per-process digests are checked element-wise across every
// leg of a family (plain and aborts) before any timing is reported — a
// mismatch is a hard error, not a summary field.
func RunScaleBench(procs, iters, reps int) (*ScaleBenchDoc, error) {
	if procs <= 0 {
		procs = 8
	}
	if iters <= 0 {
		iters = 40
	}
	if reps <= 0 {
		reps = 3
	}
	doc := &ScaleBenchDoc{
		Schema:     ScaleBenchSchema,
		Version:    ScaleBenchVersion,
		Tool:       "benchexec",
		Procs:      procs,
		Iters:      iters,
		UsableCPUs: hostrt.NumCPU(),
	}

	bests := make([]time.Duration, len(scaleLegSpecs))
	digests := make([][]uint64, len(scaleLegSpecs))
	aggInstrs := make([]uint64, len(scaleLegSpecs))
	rollbacks := make([]uint64, len(scaleLegSpecs))
	for r := 0; r < reps; r++ {
		for i, spec := range scaleLegSpecs {
			wall, res, rb, err := runScaleLeg(procs, iters, spec.gomaxprocs, spec.aborts)
			if err != nil {
				return nil, fmt.Errorf("bench: scale GOMAXPROCS=%d aborts=%v: %w",
					spec.gomaxprocs, spec.aborts, err)
			}
			var agg uint64
			ds := make([]uint64, len(res))
			for j, pr := range res {
				agg += pr.Instrs
				ds[j] = pr.Digest
			}
			if digests[i] == nil {
				digests[i], aggInstrs[i], rollbacks[i] = ds, agg, rb
				bests[i] = wall
			} else {
				// Reps of one leg must reproduce the digests exactly.
				for j := range ds {
					if ds[j] != digests[i][j] {
						return nil, fmt.Errorf("bench: scale GOMAXPROCS=%d aborts=%v rep %d: process %d digest %#x, earlier rep had %#x",
							spec.gomaxprocs, spec.aborts, r, j, ds[j], digests[i][j])
					}
				}
				if wall < bests[i] {
					bests[i] = wall
				}
			}
		}
	}

	// Cross-leg determinism within each family: the per-process model is a
	// function of the process alone, never of GOMAXPROCS or sibling timing.
	for i, spec := range scaleLegSpecs {
		ref := 0
		if spec.aborts {
			ref = 3 // first abort leg
		}
		for j := range digests[i] {
			if digests[i][j] != digests[ref][j] {
				return nil, fmt.Errorf("bench: scale determinism violation: process %d digest %#x at GOMAXPROCS=%d (aborts=%v), want %#x from GOMAXPROCS=%d",
					j, digests[i][j], spec.gomaxprocs, spec.aborts, digests[ref][j], scaleLegSpecs[ref].gomaxprocs)
			}
		}
	}
	doc.DeterminismOK = true

	for i, spec := range scaleLegSpecs {
		doc.Legs = append(doc.Legs, ScaleLegResult{
			GOMAXPROCS:       spec.gomaxprocs,
			Aborts:           spec.aborts,
			WallMS:           float64(bests[i].Nanoseconds()) / 1e6,
			AggInstrs:        aggInstrs[i],
			AggMInstrsPerSec: float64(aggInstrs[i]) / bests[i].Seconds() / 1e6,
			Digests:          digests[i],
			Rollbacks:        rollbacks[i],
		})
	}
	doc.SpeedupAt8 = doc.Legs[2].AggMInstrsPerSec / doc.Legs[0].AggMInstrsPerSec
	return doc, nil
}

// ScaleFloorFor returns the aggregate-speedup floor appropriate for a
// host with the given core count: the strict ISSUE gate (3x at 8 procs)
// when 8 cores are actually available, degrading gracefully below — a
// 1-core host can only prove that the goroutine runner is not SLOWER than
// time-sharing (plus determinism, which is gated unconditionally).
func ScaleFloorFor(cpus int) float64 {
	switch {
	case cpus >= 8:
		return 3.0
	case cpus >= 4:
		return 1.8
	case cpus >= 2:
		return 1.2
	default:
		return 0.7
	}
}

// WriteJSON emits the document to w.
func (d *ScaleBenchDoc) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
