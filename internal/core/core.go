// Package core is the public facade over the CARAT system: it wires the
// compiler pipeline (internal/passes), binary signing (internal/signing),
// the simulated kernel/runtime (internal/kernel, internal/runtime), and
// the execution substrate (internal/vm) into the workflow of Figure 1(b):
//
//	source IR → transform + optimize → sign → kernel verifies → load → run
package core

import (
	"crypto/rand"
	"fmt"

	"carat/internal/ir"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/signing"
	"carat/internal/vm"
)

// Compiler is a CARAT toolchain instance: a pass pipeline level plus a
// signing identity.
type Compiler struct {
	Level     passes.Level
	Toolchain *signing.Toolchain
	// Workers bounds how many functions are compiled concurrently; 0 means
	// GOMAXPROCS, 1 compiles sequentially. Output is byte-identical across
	// worker counts.
	Workers int
	// Obs, when non-nil, receives the carat.passes.* compile-time metrics.
	Obs *obs.Registry
}

// NewCompiler creates a compiler at the given instrumentation level with a
// fresh toolchain identity.
func NewCompiler(level passes.Level) (*Compiler, error) {
	tc, err := signing.NewToolchain("carat-cc", rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Compiler{Level: level, Toolchain: tc}, nil
}

// Result is a compiled, signed binary plus compile statistics.
type Result struct {
	Binary *signing.SignedModule
	Stats  passes.Stats
}

// Compile runs the pipeline over m (mutating it) and signs the output.
func (c *Compiler) Compile(m *ir.Module) (*Result, error) {
	pl := passes.Build(c.Level)
	pl.Workers = c.Workers
	pl.Obs = c.Obs
	if err := pl.Run(m); err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	return &Result{Binary: c.Toolchain.Sign(m), Stats: pl.Stats}, nil
}

// System is the OS side: a trust store of toolchain keys plus the machine
// configuration used to load processes.
type System struct {
	Trust  *signing.TrustStore
	Config vm.Config
}

// NewSystem returns a system trusting the given compiler.
func NewSystem(c *Compiler, cfg vm.Config) *System {
	ts := signing.NewTrustStore()
	ts.Trust(c.Toolchain.Name, c.Toolchain.Public())
	return &System{Trust: ts, Config: cfg}
}

// Load validates the binary's signature against the trust store (the
// load-time check of §2.2) and places the process into a fresh machine.
func (s *System) Load(r *Result) (*vm.VM, error) {
	if err := s.Trust.Verify(r.Binary); err != nil {
		return nil, fmt.Errorf("core: load rejected: %w", err)
	}
	return vm.Load(r.Binary.Module, s.Config)
}

// Run is Load followed by execution to completion.
func (s *System) Run(r *Result) (*vm.VM, int64, error) {
	v, err := s.Load(r)
	if err != nil {
		return nil, 0, err
	}
	ret, err := v.Run()
	return v, ret, err
}

// CompileAndRun is the one-call convenience used by examples and tests:
// compile m at the given level, then run it on a default machine.
func CompileAndRun(m *ir.Module, level passes.Level, cfg vm.Config) (*vm.VM, int64, error) {
	c, err := NewCompiler(level)
	if err != nil {
		return nil, 0, err
	}
	r, err := c.Compile(m)
	if err != nil {
		return nil, 0, err
	}
	return NewSystem(c, cfg).Run(r)
}
