package core

import (
	"strings"
	"testing"

	"carat/internal/ir"
	"carat/internal/passes"
	"carat/internal/vm"
)

func smallProgram() *ir.Module {
	return ir.MustParse(`module "p"
global @g : [8 x i64]
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^loop]
  %p = gep i64, @g, %i
  store i64 %i, %p
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 8
  condbr %c, ^loop, ^out
out:
  %q = gep i64, @g, 7
  %v = load i64, %q
  ret i64 %v
}`)
}

func cfg() vm.Config {
	c := vm.DefaultConfig()
	c.MemBytes = 1 << 22
	c.HeapBytes = 1 << 18
	return c
}

func TestEndToEnd(t *testing.T) {
	v, ret, err := CompileAndRun(smallProgram(), passes.LevelTracking, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if ret != 7 {
		t.Errorf("result = %d, want 7", ret)
	}
	if v.GuardChecks == 0 {
		t.Error("no guard checks in tracked build")
	}
}

func TestUntrustedBinaryRejected(t *testing.T) {
	good, err := NewCompiler(passes.LevelGuardsOnly)
	if err != nil {
		t.Fatal(err)
	}
	evil, err := NewCompiler(passes.LevelGuardsOnly)
	if err != nil {
		t.Fatal(err)
	}
	r, err := evil.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(good, cfg()) // trusts only `good`
	if _, err := sys.Load(r); err == nil {
		t.Fatal("binary from untrusted toolchain was loaded")
	} else if !strings.Contains(err.Error(), "rejected") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestTamperedBinaryRejected(t *testing.T) {
	c, err := NewCompiler(passes.LevelGuardsOnly)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	// Strip the guards post-signing: a malicious loader bypass attempt.
	for _, f := range r.Binary.Module.Funcs {
		for _, b := range f.Blocks {
			for i := 0; i < len(b.Instrs); i++ {
				if b.Instrs[i].Op == ir.OpGuard {
					b.Remove(b.Instrs[i])
					i--
				}
			}
		}
	}
	sys := NewSystem(c, cfg())
	if _, err := sys.Load(r); err == nil {
		t.Fatal("tampered (guard-stripped) binary was loaded")
	}
}

func TestCompileStatsExposed(t *testing.T) {
	c, err := NewCompiler(passes.LevelGuardsOpt)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Compile(smallProgram())
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.GuardsInjected == 0 {
		t.Error("no guard statistics recorded")
	}
}
