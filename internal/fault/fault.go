// Package fault is a deterministic, seed-driven fault injector for the
// kernel/runtime move negotiation (Figure 8), the swap machinery, and the
// escape-tracking path. Production-scale CARAT must survive a move, patch,
// or swap failing mid-flight without corrupting an address space — the
// "pitfalls" class of bug that sank early software-VM ports — so every
// layer threads an *Injector through its failure-prone steps and CI soaks
// the whole system under randomized fault schedules (scripts/soak).
//
// Determinism is the design center: an Injector draws every decision from
// one seeded stream, so a harness that replays the same seed sees the
// exact same faults at the exact same points — a failing soak seed is a
// reproducer, not a flake. A nil *Injector is valid everywhere and injects
// nothing, so the hot paths carry no conditional wiring.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"carat/internal/obs"
)

// Point identifies one injection site class. The sites cover the failure
// surface of the Fig-8 move protocol and its neighbors: kernel-side
// vetoes, mid-move aborts between protocol steps, per-escape patch
// failures, swap I/O errors and slow paths, and escape-buffer flush
// failures.
type Point string

// Injection points.
const (
	// KernelVeto fails the kernel's destination negotiation (step 5 of
	// Figure 8): the kernel refuses the move and the runtime sees a veto.
	KernelVeto Point = "kernel.veto_move"
	// MoveAbort aborts an in-flight move at the protocol-step boundary
	// where it is checked; the runtime rolls the move back.
	MoveAbort Point = "move.abort"
	// PatchFail fails the patch of one individual escape location; the
	// runtime aborts and rolls back every escape already patched.
	PatchFail Point = "move.patch_escape"
	// SwapOutIO fails a swap-out before it mutates anything (the write to
	// the swap device failed).
	SwapOutIO Point = "swap.out_io"
	// SwapInIO fails a swap-in before it mutates anything (the read from
	// the swap device failed); callers retry.
	SwapInIO Point = "swap.in_io"
	// SwapDelay injects a modeled slow-path delay (in cycles) into swap
	// traffic rather than an error.
	SwapDelay Point = "swap.delay"
	// FlushFail fails one attempt to drain an escape buffer into the
	// allocation table; the buffer retries until the flush lands.
	FlushFail Point = "escape.flush"
	// MoveBatch aborts an incremental move at a batch boundary — the
	// window close where mutator threads briefly resume between patch
	// batches. Only checked when the incremental protocol is enabled; the
	// runtime rolls the move back exactly as for MoveAbort.
	MoveBatch Point = "move.batch_boundary"
)

// Points lists every injection point, in a fixed order (rate schedules and
// reports iterate it).
var Points = []Point{
	KernelVeto, MoveAbort, PatchFail, SwapOutIO, SwapInIO, SwapDelay, FlushFail,
	MoveBatch,
}

// Error is the error an injected fault produces. Injected faults model
// transient conditions: callers that can retry (swap-in, mmpolicy moves)
// test for it with Injected and try again.
type Error struct {
	Point  Point
	Detail string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s (%s)", e.Point, e.Detail)
}

// Injected reports whether err, or any error it wraps, is an injected
// fault.
func Injected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// Injector decides, deterministically from a seed, whether each checked
// injection point fires. Two mechanisms combine: per-point probability
// rates drawn from the seeded stream (the soak harness's randomized
// schedules), and one-shot armed countdowns that fire on the nth check of
// a point (tests forcing an abort at an exact protocol step). All entry
// points are safe on a nil receiver, which never injects.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	rates map[Point]float64
	armed map[Point]int

	reg      *obs.Registry
	tr       *obs.Tracer
	checks   *obs.Counter
	injected *obs.Counter
	perPoint map[Point]*obs.Counter
}

// New creates an injector drawing from the given seed, with every rate
// zero. Metrics land in reg under carat.fault.* (a private registry is
// created if reg is nil).
func New(seed int64, reg *obs.Registry) *Injector {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Injector{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		rates:    make(map[Point]float64),
		armed:    make(map[Point]int),
		reg:      reg,
		checks:   reg.Counter("carat.fault.checks"),
		injected: reg.Counter("carat.fault.injected"),
		perPoint: make(map[Point]*obs.Counter),
	}
}

// Seed returns the seed the injector draws from.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// SetTracer attaches an event tracer: every injected fault then appears
// as a fault.inject instant (nil disables).
func (in *Injector) SetTracer(tr *obs.Tracer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tr = tr
}

// SetRate sets point p's injection probability (0 disables; rates at or
// above 1 always fire). A zero-rate point consumes nothing from the
// seeded stream, so disabled points do not perturb replay.
func (in *Injector) SetRate(p Point, rate float64) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rate <= 0 {
		delete(in.rates, p)
		return
	}
	in.rates[p] = rate
}

// Rates returns a copy of the non-zero per-point rates.
func (in *Injector) Rates() map[Point]float64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]float64, len(in.rates))
	for p, r := range in.rates {
		out[p] = r
	}
	return out
}

// Arm schedules a one-shot fault: the nth subsequent check of p (1-based)
// fires regardless of p's rate. Tests use this to force an abort at an
// exact protocol step. Arming does not consume the seeded stream.
func (in *Injector) Arm(p Point, nth int) {
	if in == nil || nth < 1 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed[p] = nth
}

// Should reports whether the fault at point p fires on this check.
func (in *Injector) Should(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	in.checks.Inc()
	fire := false
	if n, ok := in.armed[p]; ok {
		if n <= 1 {
			delete(in.armed, p)
			fire = true
		} else {
			in.armed[p] = n - 1
		}
	}
	if !fire {
		if rate, ok := in.rates[p]; ok && in.rng.Float64() < rate {
			fire = true
		}
	}
	var tr *obs.Tracer
	if fire {
		in.injected.Inc()
		c := in.perPoint[p]
		if c == nil {
			c = in.reg.Counter("carat.fault.injected." + string(p))
			in.perPoint[p] = c
		}
		c.Inc()
		tr = in.tr
	}
	in.mu.Unlock()
	if fire {
		tr.Instant("fault.inject", "fault", obs.A("point", string(p)))
	}
	return fire
}

// Fail returns an injected *Error for point p if it fires, else nil.
func (in *Injector) Fail(p Point, detail string) error {
	if in.Should(p) {
		return &Error{Point: p, Detail: detail}
	}
	return nil
}

// Delay returns a modeled delay in cycles for point p: zero unless the
// point fires, in which case the delay is 1..max drawn from the seeded
// stream.
func (in *Injector) Delay(p Point, max uint64) uint64 {
	if in == nil || max == 0 || !in.Should(p) {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return 1 + uint64(in.rng.Int63n(int64(max)))
}

// InjectedCount returns how many faults have fired so far.
func (in *Injector) InjectedCount() uint64 {
	if in == nil {
		return 0
	}
	return in.injected.Get()
}

// ParseSpec parses the "seed:rate" format of caratbench's -faults flag,
// e.g. "42:0.01" — seed 42, every point at 1% probability.
func ParseSpec(s string) (seed int64, rate float64, err error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("fault: spec %q not in seed:rate form", s)
	}
	seed, err = strconv.ParseInt(s[:colon], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: bad seed in %q: %w", s, err)
	}
	rate, err = strconv.ParseFloat(s[colon+1:], 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fault: bad rate in %q: %w", s, err)
	}
	if rate < 0 || rate > 1 {
		return 0, 0, fmt.Errorf("fault: rate %v outside [0,1]", rate)
	}
	return seed, rate, nil
}
