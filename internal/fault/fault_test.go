package fault

import (
	"errors"
	"testing"

	"carat/internal/obs"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.Should(MoveAbort) {
		t.Error("nil injector fired")
	}
	if err := in.Fail(KernelVeto, "x"); err != nil {
		t.Error("nil injector returned an error")
	}
	if d := in.Delay(SwapDelay, 100); d != 0 {
		t.Errorf("nil injector delayed %d cycles", d)
	}
	in.SetRate(MoveAbort, 1)
	in.Arm(MoveAbort, 1)
	in.SetTracer(nil)
	if in.Seed() != 0 || in.InjectedCount() != 0 || in.Rates() != nil {
		t.Error("nil injector reported state")
	}
}

func TestSeededReplayIsDeterministic(t *testing.T) {
	draw := func() []bool {
		in := New(7, nil)
		in.SetRate(MoveAbort, 0.3)
		in.SetRate(SwapInIO, 0.5)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.Should(MoveAbort), in.Should(SwapInIO))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across replays of the same seed", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rates 0.3/0.5 fired %d of %d checks", fired, len(a))
	}
}

func TestZeroRatePointsDoNotPerturbTheStream(t *testing.T) {
	with := New(11, nil)
	with.SetRate(MoveAbort, 0.5)
	without := New(11, nil)
	without.SetRate(MoveAbort, 0.5)
	for i := 0; i < 100; i++ {
		// The extra zero-rate checks on `with` must not consume draws.
		with.Should(KernelVeto)
		with.Should(FlushFail)
		if with.Should(MoveAbort) != without.Should(MoveAbort) {
			t.Fatalf("check %d: zero-rate points perturbed the seeded stream", i)
		}
	}
}

func TestArmFiresOnNthCheckOnce(t *testing.T) {
	in := New(1, nil)
	in.Arm(PatchFail, 3)
	got := []bool{}
	for i := 0; i < 6; i++ {
		got = append(got, in.Should(PatchFail))
	}
	want := []bool{false, false, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("armed check sequence = %v, want %v", got, want)
		}
	}
}

func TestRatesAlwaysAndNever(t *testing.T) {
	in := New(3, nil)
	in.SetRate(SwapOutIO, 1)
	for i := 0; i < 10; i++ {
		if !in.Should(SwapOutIO) {
			t.Fatal("rate 1 did not fire")
		}
		if in.Should(SwapInIO) {
			t.Fatal("unset rate fired")
		}
	}
	in.SetRate(SwapOutIO, 0)
	if in.Should(SwapOutIO) {
		t.Fatal("cleared rate fired")
	}
}

func TestErrorWrappingAndInjected(t *testing.T) {
	in := New(5, nil)
	in.SetRate(KernelVeto, 1)
	err := in.Fail(KernelVeto, "negotiation")
	if err == nil {
		t.Fatal("rate-1 Fail returned nil")
	}
	wrapped := errorsJoinLike(err)
	if !Injected(wrapped) {
		t.Error("Injected did not see through wrapping")
	}
	var fe *Error
	if !errors.As(wrapped, &fe) || fe.Point != KernelVeto {
		t.Errorf("wrapped error lost its point: %v", wrapped)
	}
	if Injected(errors.New("plain")) {
		t.Error("plain error reported as injected")
	}
}

func errorsJoinLike(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "outer: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestMetricsAndDelay(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(9, reg)
	in.SetRate(SwapDelay, 1)
	d := in.Delay(SwapDelay, 500)
	if d < 1 || d > 500 {
		t.Errorf("delay %d outside [1,500]", d)
	}
	if in.Delay(SwapDelay, 0) != 0 {
		t.Error("max 0 returned a delay")
	}
	if in.InjectedCount() == 0 {
		t.Error("injected count not advanced")
	}
	if reg.Counter("carat.fault.injected.swap.delay").Get() == 0 {
		t.Error("per-point counter not advanced")
	}
	if reg.Counter("carat.fault.checks").Get() == 0 {
		t.Error("check counter not advanced")
	}
}

func TestParseSpec(t *testing.T) {
	seed, rate, err := ParseSpec("42:0.01")
	if err != nil || seed != 42 || rate != 0.01 {
		t.Fatalf("ParseSpec = %d, %v, %v", seed, rate, err)
	}
	for _, bad := range []string{"", "42", ":0.5", "x:0.5", "1:nope", "1:1.5", "1:-0.1"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
