package ir

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses the textual IR syntax produced by Module.String and returns
// the module. Parse is the inverse of printing: for any module m,
// Parse(m.String()) yields a module whose printing equals m.String().
func Parse(src string) (*Module, error) {
	p := &parser{lex: newLexer(src)}
	m, err := p.parseModule()
	if err != nil {
		return nil, fmt.Errorf("ir: parse: line %d: %w", p.lex.line, err)
	}
	return m, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type tokKind int

const (
	tEOF    tokKind = iota
	tIdent          // bare identifier or keyword
	tLocal          // %name
	tGlobal         // @name
	tLabel          // ^name
	tNum            // integer or float literal
	tStr            // "..."
	tHex            // #hexbytes
	tPunct          // single punctuation or "->"
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
	tok  token
	next *token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.advance()
	return l
}

func (l *lexer) peek() token {
	if l.next == nil {
		save := l.tok
		l.advance()
		nx := l.tok
		l.next = &nx
		l.tok = save
	}
	return *l.next
}

func (l *lexer) advance() {
	if l.next != nil {
		l.tok = *l.next
		l.next = nil
		return
	}
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) {
		l.tok = token{kind: tEOF, line: l.line}
		return
	}
	c := l.src[l.pos]
	switch {
	case c == '%' || c == '@' || c == '^':
		l.pos++
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		kind := map[byte]tokKind{'%': tLocal, '@': tGlobal, '^': tLabel}[c]
		l.tok = token{kind: kind, text: l.src[start+1 : l.pos], line: l.line}
	case c == '#':
		l.pos++
		for l.pos < len(l.src) && isHexChar(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tHex, text: l.src[start+1 : l.pos], line: l.line}
	case c == '"':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		text := l.src[start+1 : l.pos]
		if l.pos < len(l.src) {
			l.pos++
		}
		l.tok = token{kind: tStr, text: text, line: l.line}
	case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
		l.pos += 2
		l.tok = token{kind: tPunct, text: "->", line: l.line}
	case c == '-' || c >= '0' && c <= '9':
		l.pos++
		for l.pos < len(l.src) && (isNumChar(l.src[l.pos])) {
			l.pos++
		}
		l.tok = token{kind: tNum, text: l.src[start:l.pos], line: l.line}
	case isIdentChar(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tIdent, text: l.src[start:l.pos], line: l.line}
	default:
		l.pos++
		l.tok = token{kind: tPunct, text: string(c), line: l.line}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\n' {
			l.line++
			l.pos++
		} else if c == ';' { // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		} else if unicode.IsSpace(rune(c)) {
			l.pos++
		} else {
			return
		}
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isHexChar(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func isNumChar(c byte) bool {
	return c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-'
}

type fixup struct {
	instr *Instr
	arg   int
	name  string
}

type parser struct {
	lex    *lexer
	mod    *Module
	fn     *Func
	locals map[string]Value
	fixups []fixup
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func (p *parser) expectPunct(s string) error {
	if p.lex.tok.kind != tPunct || p.lex.tok.text != s {
		return p.errf("expected %q, got %q", s, p.lex.tok.text)
	}
	p.lex.advance()
	return nil
}

func (p *parser) expectIdent(s string) error {
	if p.lex.tok.kind != tIdent || p.lex.tok.text != s {
		return p.errf("expected %q, got %q", s, p.lex.tok.text)
	}
	p.lex.advance()
	return nil
}

func (p *parser) parseModule() (*Module, error) {
	if err := p.expectIdent("module"); err != nil {
		return nil, err
	}
	if p.lex.tok.kind != tStr {
		return nil, p.errf("expected module name string")
	}
	p.mod = NewModule(p.lex.tok.text)
	p.lex.advance()

	// First pass: scan for func headers so calls can be resolved forward.
	if err := p.prescan(); err != nil {
		return nil, err
	}

	for p.lex.tok.kind != tEOF {
		switch {
		case p.lex.tok.kind == tIdent && p.lex.tok.text == "global":
			if err := p.parseGlobal(); err != nil {
				return nil, err
			}
		case p.lex.tok.kind == tIdent && p.lex.tok.text == "func":
			if err := p.parseFunc(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected token %q at top level", p.lex.tok.text)
		}
	}
	return p.mod, nil
}

// prescan registers every function name with its signature so that call
// instructions can reference functions defined later in the file.
func (p *parser) prescan() error {
	saveLex := *p.lex
	for p.lex.tok.kind != tEOF {
		if p.lex.tok.kind == tIdent && p.lex.tok.text == "func" {
			p.lex.advance()
			if p.lex.tok.kind != tGlobal {
				return p.errf("expected function name after func")
			}
			name := p.lex.tok.text
			p.lex.advance()
			params, ret, err := p.parseSig()
			if err != nil {
				return err
			}
			p.mod.AddFunc(name, ret, params...)
		} else {
			p.lex.advance()
		}
	}
	*p.lex = saveLex
	return nil
}

func (p *parser) parseSig() ([]*Param, *Type, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	var params []*Param
	for !(p.lex.tok.kind == tPunct && p.lex.tok.text == ")") {
		if len(params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, nil, err
			}
		}
		if p.lex.tok.kind != tLocal {
			return nil, nil, p.errf("expected parameter name, got %q", p.lex.tok.text)
		}
		name := p.lex.tok.text
		p.lex.advance()
		if err := p.expectPunct(":"); err != nil {
			return nil, nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, nil, err
		}
		params = append(params, &Param{Name: name, Typ: t})
	}
	p.lex.advance() // ")"
	if err := p.expectPunct("->"); err != nil {
		return nil, nil, err
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, nil, err
	}
	return params, ret, nil
}

func (p *parser) parseType() (*Type, error) {
	tok := p.lex.tok
	switch {
	case tok.kind == tIdent:
		p.lex.advance()
		switch tok.text {
		case "void":
			return Void, nil
		case "i1":
			return I1, nil
		case "i8":
			return I8, nil
		case "i16":
			return I16, nil
		case "i32":
			return I32, nil
		case "i64":
			return I64, nil
		case "f64":
			return F64, nil
		case "ptr":
			return Ptr, nil
		}
		return nil, p.errf("unknown type %q", tok.text)
	case tok.kind == tPunct && tok.text == "[":
		p.lex.advance()
		if p.lex.tok.kind != tNum {
			return nil, p.errf("expected array length")
		}
		n, err := strconv.Atoi(p.lex.tok.text)
		if err != nil {
			return nil, err
		}
		p.lex.advance()
		if err := p.expectIdent("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return ArrayOf(elem, n), nil
	case tok.kind == tPunct && tok.text == "{":
		p.lex.advance()
		var fields []*Type
		for !(p.lex.tok.kind == tPunct && p.lex.tok.text == "}") {
			if len(fields) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			f, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		}
		p.lex.advance()
		return StructOf(fields...), nil
	}
	return nil, p.errf("expected type, got %q", tok.text)
}

func (p *parser) parseGlobal() error {
	p.lex.advance() // "global"
	if p.lex.tok.kind != tGlobal {
		return p.errf("expected global name")
	}
	name := p.lex.tok.text
	p.lex.advance()
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	elem, err := p.parseType()
	if err != nil {
		return err
	}
	g := p.mod.AddGlobal(name, elem)
	if p.lex.tok.kind == tPunct && p.lex.tok.text == "=" {
		p.lex.advance()
		if p.lex.tok.kind != tHex {
			return p.errf("expected #hex initializer")
		}
		b, err := hex.DecodeString(p.lex.tok.text)
		if err != nil {
			return err
		}
		g.Init = b
		p.lex.advance()
	}
	if p.lex.tok.kind == tIdent && p.lex.tok.text == "ptrs" {
		p.lex.advance()
		if err := p.expectPunct("["); err != nil {
			return err
		}
		for !(p.lex.tok.kind == tPunct && p.lex.tok.text == "]") {
			if len(g.PtrInit) > 0 {
				if err := p.expectPunct(","); err != nil {
					return err
				}
			}
			if p.lex.tok.kind != tNum {
				return p.errf("expected pointer offset")
			}
			off, err := strconv.ParseInt(p.lex.tok.text, 10, 64)
			if err != nil {
				return err
			}
			g.PtrInit = append(g.PtrInit, off)
			p.lex.advance()
		}
		p.lex.advance()
	}
	return nil
}

func (p *parser) parseFunc() error {
	p.lex.advance() // "func"
	if p.lex.tok.kind != tGlobal {
		return p.errf("expected function name")
	}
	name := p.lex.tok.text
	p.lex.advance()
	if _, _, err := p.parseSig(); err != nil { // signature already prescanned
		return err
	}
	fn := p.mod.Func(name)
	p.fn = fn
	if !(p.lex.tok.kind == tPunct && p.lex.tok.text == "{") {
		return nil // declaration only
	}
	p.lex.advance()

	p.locals = make(map[string]Value)
	p.fixups = nil
	for _, prm := range fn.Params {
		p.locals[prm.Name] = prm
	}

	// Collect block labels first so branches can be forward.
	blocks := make(map[string]*Block)
	var order []*Block // blocks in source (label) order
	var cur *Block
	for !(p.lex.tok.kind == tPunct && p.lex.tok.text == "}") {
		if p.lex.tok.kind == tEOF {
			return p.errf("unexpected EOF in function body")
		}
		// Label line: ident ":"
		if p.lex.tok.kind == tIdent && p.lex.peek().kind == tPunct && p.lex.peek().text == ":" {
			lbl := p.lex.tok.text
			p.lex.advance()
			p.lex.advance()
			b, ok := blocks[lbl]
			if !ok {
				b = fn.NewBlock(lbl)
				b.Name = lbl
				blocks[lbl] = b
			}
			order = append(order, b)
			cur = b
			continue
		}
		if cur == nil {
			return p.errf("instruction before first block label")
		}
		in, err := p.parseInstr(blocks)
		if err != nil {
			return err
		}
		cur.Append(in)
		if in.Name != "" {
			p.locals[in.Name] = in
		}
	}
	p.lex.advance() // "}"

	if len(order) != len(fn.Blocks) {
		return p.errf("branch to undefined label in @%s", fn.Name)
	}
	fn.Blocks = order // restore source order

	// Resolve fixups (forward value references, e.g. in phis).
	for _, fx := range p.fixups {
		v, ok := p.locals[fx.name]
		if !ok {
			return p.errf("undefined value %%%s in @%s", fx.name, fn.Name)
		}
		fx.instr.Args[fx.arg] = v
	}
	return nil
}

// blockRef returns (creating if needed) the block with the given label.
func (p *parser) blockRef(blocks map[string]*Block, name string) *Block {
	if b, ok := blocks[name]; ok {
		return b
	}
	b := p.fn.NewBlock(name)
	b.Name = name
	blocks[name] = b
	return b
}

// operand parses a value reference in a context expecting type t. Unknown
// local names produce a fixup resolved at end of function.
func (p *parser) operand(in *Instr, argIdx int, t *Type) (Value, error) {
	tok := p.lex.tok
	switch tok.kind {
	case tLocal:
		p.lex.advance()
		if v, ok := p.locals[tok.text]; ok {
			return v, nil
		}
		p.fixups = append(p.fixups, fixup{instr: in, arg: argIdx, name: tok.text})
		return placeholder{t}, nil
	case tGlobal:
		p.lex.advance()
		if g := p.mod.Global(tok.text); g != nil {
			return g, nil
		}
		if f := p.mod.Func(tok.text); f != nil {
			return f, nil
		}
		return nil, p.errf("undefined global @%s", tok.text)
	case tNum:
		p.lex.advance()
		if t.IsFloat() {
			f, err := strconv.ParseFloat(tok.text, 64)
			if err != nil {
				return nil, err
			}
			return ConstFloat(f), nil
		}
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, err
		}
		if t.IsPtr() {
			return &Const{Typ: Ptr, Int: n}, nil
		}
		return ConstInt(t, n), nil
	case tIdent:
		if tok.text == "null" {
			p.lex.advance()
			return ConstNull(), nil
		}
		if strings.HasPrefix(tok.text, "ptr") {
			// ptr:0x... form
		}
	}
	return nil, p.errf("expected operand, got %q", tok.text)
}

// placeholder stands in for a forward-referenced value until fixup.
type placeholder struct{ t *Type }

func (ph placeholder) Type() *Type { return ph.t }
func (ph placeholder) Ref() string { return "%?" }

func (p *parser) parseInstr(blocks map[string]*Block) (*Instr, error) {
	var name string
	if p.lex.tok.kind == tLocal {
		name = p.lex.tok.text
		p.lex.advance()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
	}
	if p.lex.tok.kind != tIdent {
		return nil, p.errf("expected opcode, got %q", p.lex.tok.text)
	}
	opName := p.lex.tok.text
	op, ok := opByName[opName]
	if !ok {
		return nil, p.errf("unknown opcode %q", opName)
	}
	p.lex.advance()
	in := &Instr{Op: op, Name: name}

	switch {
	case op.IsBinary():
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = t
		in.Args = make([]Value, 2)
		if in.Args[0], err = p.operand(in, 0, t); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[1], err = p.operand(in, 1, t); err != nil {
			return nil, err
		}

	case op == OpICmp || op == OpFCmp:
		if p.lex.tok.kind != tIdent {
			return nil, p.errf("expected predicate")
		}
		var pr Pred
		found := false
		for k, v := range predNames {
			if v == p.lex.tok.text {
				pr, found = k, true
				break
			}
		}
		if !found {
			return nil, p.errf("unknown predicate %q", p.lex.tok.text)
		}
		p.lex.advance()
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Pred = pr
		in.Typ = I1
		in.Args = make([]Value, 2)
		if in.Args[0], err = p.operand(in, 0, t); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[1], err = p.operand(in, 1, t); err != nil {
			return nil, err
		}

	case op.IsCast():
		from, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Args = make([]Value, 1)
		if in.Args[0], err = p.operand(in, 0, from); err != nil {
			return nil, err
		}
		if err := p.expectIdent("to"); err != nil {
			return nil, err
		}
		to, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = to

	case op == OpAlloca:
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		in.Elem, in.Typ = elem, Ptr
		in.Args = make([]Value, 1)
		if in.Args[0], err = p.operand(in, 0, I64); err != nil {
			return nil, err
		}

	case op == OpLoad:
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		in.Elem, in.Typ = elem, elem
		in.Args = make([]Value, 1)
		if in.Args[0], err = p.operand(in, 0, Ptr); err != nil {
			return nil, err
		}

	case op == OpStore:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = Void
		in.Args = make([]Value, 2)
		if in.Args[0], err = p.operand(in, 0, t); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[1], err = p.operand(in, 1, Ptr); err != nil {
			return nil, err
		}

	case op == OpGEP:
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		in.Elem, in.Typ = elem, Ptr
		in.Args = make([]Value, 1, 3)
		if in.Args[0], err = p.operand(in, 0, Ptr); err != nil {
			return nil, err
		}
		for p.lex.tok.kind == tPunct && p.lex.tok.text == "," {
			p.lex.advance()
			in.Args = append(in.Args, nil)
			idx := len(in.Args) - 1
			if in.Args[idx], err = p.operand(in, idx, I64); err != nil {
				return nil, err
			}
		}

	case op == OpPhi:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = t
		for {
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			in.Args = append(in.Args, nil)
			idx := len(in.Args) - 1
			if in.Args[idx], err = p.operand(in, idx, t); err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			if p.lex.tok.kind != tLabel {
				return nil, p.errf("expected block label in phi")
			}
			in.Preds = append(in.Preds, p.blockRef(blocks, p.lex.tok.text))
			p.lex.advance()
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if !(p.lex.tok.kind == tPunct && p.lex.tok.text == ",") {
				break
			}
			p.lex.advance()
		}

	case op == OpSelect:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = t
		in.Args = make([]Value, 3)
		if in.Args[0], err = p.operand(in, 0, I1); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[1], err = p.operand(in, 1, t); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[2], err = p.operand(in, 2, t); err != nil {
			return nil, err
		}

	case op == OpCall:
		ret, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Typ = ret
		if p.lex.tok.kind != tGlobal {
			return nil, p.errf("expected callee")
		}
		callee := p.mod.Func(p.lex.tok.text)
		if callee == nil {
			return nil, p.errf("undefined function @%s", p.lex.tok.text)
		}
		in.Callee = callee
		p.lex.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for !(p.lex.tok.kind == tPunct && p.lex.tok.text == ")") {
			if len(in.Args) > 0 {
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
			}
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, nil)
			idx := len(in.Args) - 1
			if in.Args[idx], err = p.operand(in, idx, t); err != nil {
				return nil, err
			}
		}
		p.lex.advance()

	case op == OpBr:
		in.Typ = Void
		if p.lex.tok.kind != tLabel {
			return nil, p.errf("expected branch target")
		}
		in.Succs = []*Block{p.blockRef(blocks, p.lex.tok.text)}
		p.lex.advance()

	case op == OpCondBr:
		in.Typ = Void
		in.Args = make([]Value, 1)
		var err error
		if in.Args[0], err = p.operand(in, 0, I1); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.lex.tok.kind != tLabel {
			return nil, p.errf("expected then target")
		}
		then := p.blockRef(blocks, p.lex.tok.text)
		p.lex.advance()
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.lex.tok.kind != tLabel {
			return nil, p.errf("expected else target")
		}
		els := p.blockRef(blocks, p.lex.tok.text)
		p.lex.advance()
		in.Succs = []*Block{then, els}

	case op == OpRet:
		in.Typ = Void
		if p.lex.tok.kind == tIdent && p.lex.tok.text == "void" {
			p.lex.advance()
			break
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.Args = make([]Value, 1)
		if in.Args[0], err = p.operand(in, 0, t); err != nil {
			return nil, err
		}

	case op == OpUnreachable:
		in.Typ = Void

	case op == OpGuard:
		in.Typ = Void
		if p.lex.tok.kind != tIdent {
			return nil, p.errf("expected guard kind")
		}
		var k GuardKind
		found := false
		for gk, s := range guardKindNames {
			if s == p.lex.tok.text {
				k, found = gk, true
				break
			}
		}
		if !found {
			return nil, p.errf("unknown guard kind %q", p.lex.tok.text)
		}
		in.Kind = k
		p.lex.advance()
		in.Args = make([]Value, 2)
		var err error
		if in.Args[0], err = p.operand(in, 0, Ptr); err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if in.Args[1], err = p.operand(in, 1, I64); err != nil {
			return nil, err
		}

	default:
		return nil, p.errf("unhandled opcode %q", opName)
	}
	return in, nil
}
