package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		want int64
	}{
		{I1, 1}, {I8, 1}, {I16, 2}, {I32, 4}, {I64, 8}, {F64, 8}, {Ptr, 8},
		{ArrayOf(F64, 10), 80},
		{ArrayOf(ArrayOf(I32, 4), 3), 48},
		{StructOf(I64, Ptr, I8), 17},
		{StructOf(), 0},
		{Void, 0},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.want {
			t.Errorf("Size(%s) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"i1": I1, "i64": I64, "f64": F64, "ptr": Ptr, "void": Void,
		"[4 x f64]":      ArrayOf(F64, 4),
		"{i64, ptr}":     StructOf(I64, Ptr),
		"[2 x {i8}]":     ArrayOf(StructOf(I8), 2),
		"f64 (i32, ptr)": FuncOf(F64, I32, Ptr),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	if !ArrayOf(F64, 4).Equal(ArrayOf(F64, 4)) {
		t.Error("structurally identical arrays not Equal")
	}
	if ArrayOf(F64, 4).Equal(ArrayOf(F64, 5)) {
		t.Error("different lengths Equal")
	}
	if StructOf(I64).Equal(StructOf(I32)) {
		t.Error("different fields Equal")
	}
	if I32.Equal(I64) {
		t.Error("i32 equals i64")
	}
	if !FuncOf(Void, Ptr).Equal(FuncOf(Void, Ptr)) {
		t.Error("identical func types not Equal")
	}
}

func TestFieldOffset(t *testing.T) {
	s := StructOf(I64, I8, F64, Ptr)
	wants := []int64{0, 8, 9, 17}
	for i, w := range wants {
		if got := s.FieldOffset(i); got != w {
			t.Errorf("FieldOffset(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestConstRef(t *testing.T) {
	cases := []struct {
		c    *Const
		want string
	}{
		{ConstInt(I64, 42), "42"},
		{ConstInt(I32, -7), "-7"},
		{ConstFloat(1.5), "1.5"},
		{ConstFloat(2), "2.0"},
		{ConstNull(), "null"},
	}
	for _, c := range cases {
		if got := c.c.Ref(); got != c.want {
			t.Errorf("Ref() = %q, want %q", got, c.want)
		}
	}
}

// buildLoopSum constructs: func sum(n) { s=0; for i in 0..n { s += a[i] }; return s }
func buildLoopSum(t testing.TB) *Module {
	m := NewModule("test")
	g := m.AddGlobal("a", ArrayOf(I64, 64))
	_ = g
	f := m.AddFunc("sum", I64, &Param{Name: "n", Typ: I64})
	b := NewBuilder(f)
	acc := b.Alloca(I64, nil)
	b.Store(b.I64(0), acc)
	b.Loop(b.I64(0), f.Params[0], b.I64(1), func(i Value) {
		p := b.GEP(I64, m.Global("a"), i)
		x := b.Load(I64, p)
		cur := b.Load(I64, acc)
		b.Store(b.Add(cur, x), acc)
	})
	b.Ret(b.Load(I64, acc))
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestBuilderLoopVerifies(t *testing.T) {
	buildLoopSum(t)
}

func TestRoundTrip(t *testing.T) {
	m := buildLoopSum(t)
	text1 := m.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, text1)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("Verify after parse: %v", err)
	}
	text2 := m2.String()
	if text1 != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                     // no module
		`module "m" func`,      // incomplete func
		`module "m" global @g`, // missing type
		`module "m" func @f() -> i64 { entry: ret i64 %undef }`, // undefined value
		`module "m" func @f() -> i64 { entry: br ^nowhere }`,    // undefined label... label created but never defined
		`module "m" func @f() -> i64 { entry: frobnicate }`,     // unknown op
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `module "c"
; a comment line
func @f(%x: i64) -> i64 {
entry: ; trailing comment
  %y = add i64 %x, 1
  ret i64 %y
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Func("f") == nil || m.Func("f").NumInstrs() != 2 {
		t.Error("comment parsing corrupted function")
	}
}

func TestParsePhiForwardRef(t *testing.T) {
	src := `module "m"
func @f(%n: i64) -> i64 {
entry:
  br ^head
head:
  %i = phi i64 [0, ^entry], [%next, ^head]
  %next = add i64 %i, 1
  %c = icmp slt i64 %next, %n
  condbr %c, ^head, ^done
done:
  ret i64 %i
}`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	phi := m.Func("f").Blocks[1].Instrs[0]
	if phi.Op != OpPhi || len(phi.Args) != 2 {
		t.Fatalf("phi malformed: %s", phi)
	}
	if phi.Args[1].Ref() != "%next" {
		t.Errorf("forward ref not resolved: %s", phi.Args[1].Ref())
	}
}

func TestVerifyCatchesBadIR(t *testing.T) {
	// Unterminated block.
	m := NewModule("v")
	f := m.AddFunc("f", Void)
	f.NewBlock("entry")
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted unterminated block")
	}

	// Type mismatch in add.
	m2 := NewModule("v2")
	f2 := m2.AddFunc("f", Void)
	b := NewBuilder(f2)
	b.Blk.Append(&Instr{Op: OpAdd, Name: "x", Typ: I64, Args: []Value{ConstInt(I64, 1), ConstInt(I32, 2)}})
	b.Ret(nil)
	if err := m2.Verify(); err == nil {
		t.Error("Verify accepted mismatched add operands")
	}

	// Call arity mismatch.
	m3 := NewModule("v3")
	callee := m3.AddFunc("g", Void, &Param{Name: "x", Typ: I64})
	f3 := m3.AddFunc("f", Void)
	b3 := NewBuilder(f3)
	b3.Blk.Append(&Instr{Op: OpCall, Typ: Void, Callee: callee})
	b3.Ret(nil)
	if err := m3.Verify(); err == nil {
		t.Error("Verify accepted call arity mismatch")
	}

	// Duplicate global.
	m4 := NewModule("v4")
	m4.AddGlobal("g", I64)
	m4.AddGlobal("g", I64)
	if err := m4.Verify(); err == nil {
		t.Error("Verify accepted duplicate global")
	}
}

func TestBlockInsertRemove(t *testing.T) {
	m := NewModule("b")
	f := m.AddFunc("f", Void)
	b := NewBuilder(f)
	i1 := b.Add(b.I64(1), b.I64(2))
	i3 := b.Add(b.I64(3), b.I64(4))
	i2 := &Instr{Op: OpAdd, Name: "mid", Typ: I64, Args: []Value{ConstInt(I64, 5), ConstInt(I64, 6)}}
	b.Blk.InsertBefore(i2, i3)
	if b.Blk.Instrs[1] != i2 {
		t.Fatal("InsertBefore misplaced instruction")
	}
	b.Blk.Remove(i2)
	if len(b.Blk.Instrs) != 2 || b.Blk.Instrs[0] != i1 || b.Blk.Instrs[1] != i3 {
		t.Fatal("Remove corrupted block")
	}
}

func TestPhisRun(t *testing.T) {
	m := MustParse(`module "m"
func @f(%n: i64) -> i64 {
entry:
  br ^head
head:
  %a = phi i64 [0, ^entry], [%a, ^head]
  %b = phi i64 [1, ^entry], [%b, ^head]
  %c = icmp slt i64 %a, %n
  condbr %c, ^head, ^out
out:
  ret i64 %b
}`)
	head := m.Func("f").Blocks[1]
	if got := len(head.Phis()); got != 2 {
		t.Errorf("Phis() = %d, want 2", got)
	}
}

func TestDeclareFuncIdempotent(t *testing.T) {
	m := NewModule("d")
	f1 := m.DeclareFunc(FnMalloc, Ptr, I64)
	f2 := m.DeclareFunc(FnMalloc, Ptr, I64)
	if f1 != f2 {
		t.Error("DeclareFunc created a duplicate")
	}
	if !f1.IsDecl() {
		t.Error("declared function has a body")
	}
}

func TestGlobalInitRoundTrip(t *testing.T) {
	m := NewModule("g")
	g := m.AddGlobal("data", ArrayOf(I8, 4))
	g.Init = []byte{0xde, 0xad, 0xbe, 0xef}
	g.PtrInit = []int64{0}
	m2, err := Parse(m.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g2 := m2.Global("data")
	if g2 == nil || len(g2.Init) != 4 || g2.Init[0] != 0xde || g2.Init[3] != 0xef {
		t.Fatalf("initializer lost in round trip: %+v", g2)
	}
	if len(g2.PtrInit) != 1 || g2.PtrInit[0] != 0 {
		t.Fatalf("ptr offsets lost in round trip: %+v", g2.PtrInit)
	}
}

// Property: integer constants of any value round-trip through print+parse
// in an instruction context.
func TestQuickConstRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		m := NewModule("q")
		fn := m.AddFunc("f", I64)
		b := NewBuilder(fn)
		b.Ret(b.Add(b.I64(v), b.I64(0)))
		m2, err := Parse(m.String())
		if err != nil {
			return false
		}
		in := m2.Func("f").Blocks[0].Instrs[0]
		c, ok := in.Args[0].(*Const)
		return ok && c.Int == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct size equals sum of field sizes for arbitrary small shapes.
func TestQuickStructSize(t *testing.T) {
	prims := []*Type{I1, I8, I16, I32, I64, F64, Ptr}
	f := func(picks []uint8) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		var fields []*Type
		var want int64
		for _, p := range picks {
			ft := prims[int(p)%len(prims)]
			fields = append(fields, ft)
			want += ft.Size()
		}
		return StructOf(fields...).Size() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStringForms(t *testing.T) {
	m := buildLoopSum(t)
	text := m.String()
	for _, want := range []string{"alloca i64", "gep i64, @a", "load i64", "store i64", "phi i64", "icmp slt", "condbr", "ret i64"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
}
