// Package ir defines the intermediate representation used by the CARAT
// compiler. It is a small, typed, SSA-form IR in the style of LLVM bitcode:
// modules contain globals and functions, functions contain basic blocks, and
// blocks contain instructions ending in a single terminator.
//
// Pointers are opaque (as in modern LLVM): there is a single pointer type,
// and address arithmetic is expressed with GEP instructions that carry an
// element type. Memory is byte-addressable; the VM in internal/vm executes
// this IR directly against simulated physical memory.
package ir

import (
	"fmt"
	"strings"
)

// TypeKind discriminates the members of the IR type system.
type TypeKind int

// The type kinds.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PtrKind
	ArrayKind
	StructKind
	FuncKind
)

// Type describes an IR type. Types are structural: two types with the same
// shape are interchangeable. The primitive types are interned singletons
// (Void, I1 ... I64, F64, Ptr); aggregate types are built with ArrayOf,
// StructOf, and FuncOf.
type Type struct {
	Kind   TypeKind
	Bits   int     // IntKind: width in bits (1, 8, 16, 32, 64)
	Elem   *Type   // ArrayKind: element type
	Len    int     // ArrayKind: element count
	Fields []*Type // StructKind: field types
	Params []*Type // FuncKind: parameter types
	Ret    *Type   // FuncKind: return type
	Vararg bool    // FuncKind: accepts trailing arguments
}

// Interned primitive types.
var (
	Void = &Type{Kind: VoidKind}
	I1   = &Type{Kind: IntKind, Bits: 1}
	I8   = &Type{Kind: IntKind, Bits: 8}
	I16  = &Type{Kind: IntKind, Bits: 16}
	I32  = &Type{Kind: IntKind, Bits: 32}
	I64  = &Type{Kind: IntKind, Bits: 64}
	F64  = &Type{Kind: FloatKind}
	Ptr  = &Type{Kind: PtrKind}
)

// IntType returns the interned integer type of the given bit width.
// It panics on widths other than 1, 8, 16, 32, or 64.
func IntType(bits int) *Type {
	switch bits {
	case 1:
		return I1
	case 8:
		return I8
	case 16:
		return I16
	case 32:
		return I32
	case 64:
		return I64
	}
	panic(fmt.Sprintf("ir: unsupported integer width %d", bits))
}

// ArrayOf returns the type of an array of n elements of type elem.
func ArrayOf(elem *Type, n int) *Type {
	if n < 0 {
		panic("ir: negative array length")
	}
	return &Type{Kind: ArrayKind, Elem: elem, Len: n}
}

// StructOf returns a struct type with the given field types.
func StructOf(fields ...*Type) *Type {
	return &Type{Kind: StructKind, Fields: fields}
}

// FuncOf returns a function type with the given return and parameter types.
func FuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: FuncKind, Ret: ret, Params: params}
}

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == IntKind }

// IsFloat reports whether t is the floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == FloatKind }

// IsPtr reports whether t is the pointer type.
func (t *Type) IsPtr() bool { return t.Kind == PtrKind }

// IsAgg reports whether t is an aggregate (array or struct) type.
func (t *Type) IsAgg() bool { return t.Kind == ArrayKind || t.Kind == StructKind }

// Size returns the size of a value of type t in bytes as laid out in the
// simulated machine. i1 and i8 occupy one byte; all scalars are stored at
// their natural size with no padding inside aggregates (packed layout).
func (t *Type) Size() int64 {
	switch t.Kind {
	case VoidKind:
		return 0
	case IntKind:
		if t.Bits == 1 {
			return 1
		}
		return int64(t.Bits / 8)
	case FloatKind:
		return 8
	case PtrKind:
		return 8
	case ArrayKind:
		return int64(t.Len) * t.Elem.Size()
	case StructKind:
		var n int64
		for _, f := range t.Fields {
			n += f.Size()
		}
		return n
	case FuncKind:
		return 8 // function "values" are code addresses
	}
	panic("ir: unknown type kind")
}

// FieldOffset returns the byte offset of field i within struct type t.
func (t *Type) FieldOffset(i int) int64 {
	if t.Kind != StructKind {
		panic("ir: FieldOffset on non-struct")
	}
	var off int64
	for j := 0; j < i; j++ {
		off += t.Fields[j].Size()
	}
	return off
}

// Equal reports whether t and u are structurally identical types.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case VoidKind, FloatKind, PtrKind:
		return true
	case IntKind:
		return t.Bits == u.Bits
	case ArrayKind:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case StructKind:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(u.Fields[i]) {
				return false
			}
		}
		return true
	case FuncKind:
		if len(t.Params) != len(u.Params) || t.Vararg != u.Vararg || !t.Ret.Equal(u.Ret) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String returns the textual syntax of t, e.g. "i32", "ptr", "[4 x f64]",
// "{i64, ptr}", "f64 (i32, ptr)".
func (t *Type) String() string {
	switch t.Kind {
	case VoidKind:
		return "void"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case FloatKind:
		return "f64"
	case PtrKind:
		return "ptr"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case StructKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case FuncKind:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		if t.Vararg {
			parts = append(parts, "...")
		}
		return fmt.Sprintf("%s (%s)", t.Ret, strings.Join(parts, ", "))
	}
	return "?"
}
