package ir

import "fmt"

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator. Blocks also serve as branch targets.
type Block struct {
	Name   string
	Instrs []*Instr
	Fn     *Func
}

// Append adds an instruction to the end of the block and sets its owner.
func (b *Block) Append(in *Instr) *Instr {
	in.Block = b
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in immediately before pos, which must be in b.
func (b *Block) InsertBefore(in, pos *Instr) {
	for i, x := range b.Instrs {
		if x == pos {
			in.Block = b
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			return
		}
	}
	panic("ir: InsertBefore: position not in block")
}

// Remove deletes in from the block. It panics if in is not in b.
func (b *Block) Remove(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.Block = nil
			return
		}
	}
	panic("ir: Remove: instruction not in block")
}

// Term returns the block's terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Succs returns the block's successor blocks (empty for ret/unreachable).
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Succs
}

// Phis returns the run of phi instructions at the head of the block.
func (b *Block) Phis() []*Instr {
	var n int
	for n < len(b.Instrs) && b.Instrs[n].Op == OpPhi {
		n++
	}
	return b.Instrs[:n]
}

// Ref returns the block's label syntax.
func (b *Block) Ref() string { return "^" + b.Name }

// Func is an IR function. Functions may be defined (Blocks non-empty) or
// declared externally (Blocks empty), in which case the VM resolves them to
// built-in implementations (e.g. malloc, free, runtime callbacks).
type Func struct {
	Name   string
	Params []*Param
	RetTyp *Type
	Blocks []*Block
	Mod    *Module

	// StackFootprint is the maximum number of stack bytes the function's
	// compiler-produced code may touch (allocas + spill estimate). Call
	// guards check this against the current region, per paper §3.
	StackFootprint int64

	nameCnt  int
	freshCnt int
}

// FreshName returns a new SSA value name "prefix.N" with a per-function
// counter, so names synthesized by passes are deterministic regardless of
// which other functions were compiled (or in what order) before this one.
func (f *Func) FreshName(prefix string) string {
	f.freshCnt++
	return fmt.Sprintf("%s.%d", prefix, f.freshCnt)
}

// Type implements Value: a function used as an operand is its code address.
func (f *Func) Type() *Type { return Ptr }

// Ref implements Value.
func (f *Func) Ref() string { return "@" + f.Name }

// Entry returns the function's entry block.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// IsDecl reports whether f is an external declaration with no body.
func (f *Func) IsDecl() bool { return len(f.Blocks) == 0 }

// NewBlock appends a new block with a unique name derived from hint.
func (f *Func) NewBlock(hint string) *Block {
	if hint == "" {
		hint = "bb"
	}
	name := hint
	for _, b := range f.Blocks {
		if b.Name == name {
			f.nameCnt++
			name = fmt.Sprintf("%s%d", hint, f.nameCnt)
		}
	}
	b := &Block{Name: name, Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// uniqueName returns a fresh SSA value name from hint.
func (f *Func) uniqueName(hint string) string {
	if hint == "" {
		hint = "v"
	}
	f.nameCnt++
	return fmt.Sprintf("%s%d", hint, f.nameCnt)
}

// ForEachInstr calls fn for every instruction in the function in block
// order. fn may not mutate block structure.
func (f *Func) ForEachInstr(fn func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(in)
		}
	}
}

// NumInstrs returns the total instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a translation unit: globals plus functions. A module is the
// unit of compilation, signing, loading, and execution.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// AddFunc creates a function with the given signature and adds it to m.
func (m *Module) AddFunc(name string, ret *Type, params ...*Param) *Func {
	f := &Func{Name: name, RetTyp: ret, Params: params, Mod: m}
	for i, p := range params {
		p.Idx = i
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// AddGlobal adds a global variable of the given element type to m.
func (m *Module) AddGlobal(name string, elem *Type) *Global {
	g := &Global{Name: name, Elem: elem, Mutable: true}
	m.Globals = append(m.Globals, g)
	return g
}

// DeclareFunc returns the declaration of an external function, creating it
// if needed. Used for runtime entry points (malloc, free, carat.*).
func (m *Module) DeclareFunc(name string, ret *Type, paramTypes ...*Type) *Func {
	if f := m.Func(name); f != nil {
		return f
	}
	params := make([]*Param, len(paramTypes))
	for i, t := range paramTypes {
		params[i] = &Param{Name: fmt.Sprintf("a%d", i), Typ: t, Idx: i}
	}
	return m.AddFunc(name, ret, params...)
}

// NumInstrs returns the total instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// Names of the runtime entry points recognized by the VM and inserted by
// the tracking pass. They mirror the paper's runtime callbacks (§4.1.2).
const (
	FnMalloc       = "malloc"
	FnCalloc       = "calloc"
	FnFree         = "free"
	FnTrackAlloc   = "carat.alloc"   // (ptr, i64 size)
	FnTrackFree    = "carat.free"    // (ptr)
	FnTrackEscape  = "carat.escape"  // (ptr loc, ptr value)
	FnTrackCallGrd = "carat.callgrd" // internal use by cost accounting
	FnPrintI64     = "print_i64"
	FnPrintF64     = "print_f64"
	FnThreadSpawn  = "thread_spawn" // (ptr fn, ptr arg)
	FnThreadJoin   = "thread_join"  // (i64 tid)
)

// IsRuntimeFn reports whether name names a VM-provided builtin.
func IsRuntimeFn(name string) bool {
	switch name {
	case FnMalloc, FnCalloc, FnFree, FnTrackAlloc, FnTrackFree, FnTrackEscape,
		FnTrackCallGrd, FnPrintI64, FnPrintF64, FnThreadSpawn, FnThreadJoin:
		return true
	}
	return false
}

// IsAllocFn reports whether name is a heap allocation function.
func IsAllocFn(name string) bool { return name == FnMalloc || name == FnCalloc }

// IsTrackingFn reports whether name is a CARAT tracking callback.
func IsTrackingFn(name string) bool {
	return name == FnTrackAlloc || name == FnTrackFree || name == FnTrackEscape
}
