package ir

import "fmt"

// Builder provides a convenient, positioned API for constructing IR, in the
// style of LLVM's IRBuilder. A builder points at the end of a block; every
// emit method appends there and returns the new instruction (which is also
// a Value when the op produces a result).
type Builder struct {
	Fn  *Func
	Blk *Block
}

// NewBuilder returns a builder positioned at the end of the entry block of
// f, creating the entry block if the function has none.
func NewBuilder(f *Func) *Builder {
	if len(f.Blocks) == 0 {
		f.NewBlock("entry")
	}
	return &Builder{Fn: f, Blk: f.Blocks[0]}
}

// SetBlock repositions the builder at the end of b.
func (bld *Builder) SetBlock(b *Block) { bld.Blk = b }

// NewBlock creates a block in the builder's function without moving the
// insertion point.
func (bld *Builder) NewBlock(hint string) *Block { return bld.Fn.NewBlock(hint) }

func (bld *Builder) emit(in *Instr) *Instr {
	if in.Name == "" && in.Op.HasResult() && in.Typ != Void {
		in.Name = bld.Fn.uniqueName("v")
	}
	return bld.Blk.Append(in)
}

// Binary emits a two-operand arithmetic or bitwise instruction.
func (bld *Builder) Binary(op Op, a, b Value) *Instr {
	if !op.IsBinary() {
		panic(fmt.Sprintf("ir: Binary with op %v", op))
	}
	return bld.emit(&Instr{Op: op, Typ: a.Type(), Args: []Value{a, b}})
}

// Add emits an integer add.
func (bld *Builder) Add(a, b Value) *Instr { return bld.Binary(OpAdd, a, b) }

// Sub emits an integer subtract.
func (bld *Builder) Sub(a, b Value) *Instr { return bld.Binary(OpSub, a, b) }

// Mul emits an integer multiply.
func (bld *Builder) Mul(a, b Value) *Instr { return bld.Binary(OpMul, a, b) }

// And emits a bitwise and.
func (bld *Builder) And(a, b Value) *Instr { return bld.Binary(OpAnd, a, b) }

// Or emits a bitwise or.
func (bld *Builder) Or(a, b Value) *Instr { return bld.Binary(OpOr, a, b) }

// Xor emits a bitwise xor.
func (bld *Builder) Xor(a, b Value) *Instr { return bld.Binary(OpXor, a, b) }

// Shl emits a left shift.
func (bld *Builder) Shl(a, b Value) *Instr { return bld.Binary(OpShl, a, b) }

// LShr emits a logical right shift.
func (bld *Builder) LShr(a, b Value) *Instr { return bld.Binary(OpLShr, a, b) }

// SRem emits a signed remainder.
func (bld *Builder) SRem(a, b Value) *Instr { return bld.Binary(OpSRem, a, b) }

// URem emits an unsigned remainder.
func (bld *Builder) URem(a, b Value) *Instr { return bld.Binary(OpURem, a, b) }

// SDiv emits a signed division.
func (bld *Builder) SDiv(a, b Value) *Instr { return bld.Binary(OpSDiv, a, b) }

// FAdd emits a floating add.
func (bld *Builder) FAdd(a, b Value) *Instr { return bld.Binary(OpFAdd, a, b) }

// FSub emits a floating subtract.
func (bld *Builder) FSub(a, b Value) *Instr { return bld.Binary(OpFSub, a, b) }

// FMul emits a floating multiply.
func (bld *Builder) FMul(a, b Value) *Instr { return bld.Binary(OpFMul, a, b) }

// FDiv emits a floating divide.
func (bld *Builder) FDiv(a, b Value) *Instr { return bld.Binary(OpFDiv, a, b) }

// ICmp emits an integer comparison producing i1.
func (bld *Builder) ICmp(p Pred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpICmp, Typ: I1, Pred: p, Args: []Value{a, b}})
}

// FCmp emits a floating comparison producing i1.
func (bld *Builder) FCmp(p Pred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpFCmp, Typ: I1, Pred: p, Args: []Value{a, b}})
}

// Cast emits a conversion of v to type to.
func (bld *Builder) Cast(op Op, v Value, to *Type) *Instr {
	if !op.IsCast() {
		panic(fmt.Sprintf("ir: Cast with op %v", op))
	}
	return bld.emit(&Instr{Op: op, Typ: to, Args: []Value{v}})
}

// Alloca emits a stack allocation of count elements of type elem.
func (bld *Builder) Alloca(elem *Type, count Value) *Instr {
	if count == nil {
		count = ConstInt(I64, 1)
	}
	return bld.emit(&Instr{Op: OpAlloca, Typ: Ptr, Elem: elem, Args: []Value{count}})
}

// Load emits a load of an elem-typed value from ptr.
func (bld *Builder) Load(elem *Type, ptr Value) *Instr {
	return bld.emit(&Instr{Op: OpLoad, Typ: elem, Elem: elem, Args: []Value{ptr}})
}

// Store emits a store of val to ptr.
func (bld *Builder) Store(val, ptr Value) *Instr {
	return bld.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{val, ptr}})
}

// GEP emits pointer arithmetic: ptr + sum(indices scaled by elem size).
// With one index i the result is ptr + i*sizeof(elem); additional indices
// step into aggregate fields/elements as in LLVM.
func (bld *Builder) GEP(elem *Type, ptr Value, indices ...Value) *Instr {
	args := append([]Value{ptr}, indices...)
	return bld.emit(&Instr{Op: OpGEP, Typ: Ptr, Elem: elem, Args: args})
}

// Phi emits an empty phi of type t; fill it with AddIncoming.
func (bld *Builder) Phi(t *Type) *Instr {
	// Phis must precede non-phi instructions; insert after existing phis.
	in := &Instr{Op: OpPhi, Typ: t, Name: bld.Fn.uniqueName("v")}
	phis := bld.Blk.Phis()
	if len(phis) == len(bld.Blk.Instrs) {
		bld.Blk.Append(in)
	} else {
		bld.Blk.InsertBefore(in, bld.Blk.Instrs[len(phis)])
	}
	return in
}

// AddIncoming appends an incoming (value, predecessor) pair to a phi.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	if phi.Op != OpPhi {
		panic("ir: AddIncoming on non-phi")
	}
	phi.Args = append(phi.Args, v)
	phi.Preds = append(phi.Preds, pred)
}

// Select emits select cond ? a : b.
func (bld *Builder) Select(cond, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpSelect, Typ: a.Type(), Args: []Value{cond, a, b}})
}

// Call emits a direct call to callee.
func (bld *Builder) Call(callee *Func, args ...Value) *Instr {
	return bld.emit(&Instr{Op: OpCall, Typ: callee.RetTyp, Callee: callee, Args: args})
}

// Br emits an unconditional branch.
func (bld *Builder) Br(target *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Typ: Void, Succs: []*Block{target}})
}

// CondBr emits a conditional branch.
func (bld *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return bld.emit(&Instr{Op: OpCondBr, Typ: Void, Args: []Value{cond}, Succs: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (bld *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bld.emit(in)
}

// Unreachable emits an unreachable terminator.
func (bld *Builder) Unreachable() *Instr {
	return bld.emit(&Instr{Op: OpUnreachable, Typ: Void})
}

// Guard emits a CARAT guard protecting an access of size bytes at addr.
func (bld *Builder) Guard(kind GuardKind, addr Value, size Value) *Instr {
	return bld.emit(&Instr{Op: OpGuard, Typ: Void, Kind: kind, Args: []Value{addr, size}})
}

// I64 is shorthand for an i64 constant.
func (bld *Builder) I64(v int64) *Const { return ConstInt(I64, v) }

// I32 is shorthand for an i32 constant.
func (bld *Builder) I32(v int64) *Const { return ConstInt(I32, v) }

// F64V is shorthand for an f64 constant.
func (bld *Builder) F64V(v float64) *Const { return ConstFloat(v) }

// Loop is a convenience for emitting a canonical counted loop
//
//	for i := from; i < to; i += step { body(i) }
//
// It creates header/body/latch/exit blocks, positions the builder in the
// body when calling body with the induction value, and leaves the builder
// in the exit block. body must not terminate its final block.
func (bld *Builder) Loop(from, to, step Value, body func(i Value)) {
	header := bld.NewBlock("loop.header")
	bodyB := bld.NewBlock("loop.body")
	latch := bld.NewBlock("loop.latch")
	exit := bld.NewBlock("loop.exit")

	pre := bld.Blk
	bld.Br(header)

	bld.SetBlock(header)
	iv := bld.Phi(from.Type())
	AddIncoming(iv, from, pre)
	cmp := bld.ICmp(PredLT, iv, to)
	bld.CondBr(cmp, bodyB, exit)

	bld.SetBlock(bodyB)
	body(iv)
	bld.Br(latch)

	bld.SetBlock(latch)
	next := bld.Add(iv, step)
	AddIncoming(iv, next, latch)
	bld.Br(header)

	bld.SetBlock(exit)
}
