package ir

import (
	"fmt"
)

// Verify checks structural and type well-formedness of the module:
// terminated blocks, operand/def dominance is NOT checked (the VM tolerates
// non-SSA uses produced by simple builders), phi/pred consistency, operand
// type agreement, and callee signature agreement. It returns the first
// problem found, or nil.
func (m *Module) Verify() error {
	names := make(map[string]bool)
	for _, g := range m.Globals {
		if names["@"+g.Name] {
			return fmt.Errorf("ir: duplicate global @%s", g.Name)
		}
		names["@"+g.Name] = true
		if g.Elem == nil || g.Elem == Void {
			return fmt.Errorf("ir: global @%s has invalid element type", g.Name)
		}
		if g.Init != nil && int64(len(g.Init)) > g.Elem.Size() {
			return fmt.Errorf("ir: global @%s initializer larger than storage", g.Name)
		}
	}
	for _, f := range m.Funcs {
		if names["@"+f.Name] {
			return fmt.Errorf("ir: duplicate symbol @%s", f.Name)
		}
		names["@"+f.Name] = true
		if err := verifyFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// VerifyFunc checks a single function's structural well-formedness: the
// per-function subset of Verify. The parallel pass manager calls it after
// each pass so a corrupting transformation is caught without taking a
// module-wide lock; it only reads f (and the signatures of its callees).
func VerifyFunc(f *Func) error { return verifyFunc(f) }

func verifyFunc(f *Func) error {
	if f.IsDecl() {
		return nil
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	preds := predecessors(f)
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			return fmt.Errorf("ir: @%s/^%s: block not terminated", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("ir: @%s/^%s: terminator %s not last", f.Name, b.Name, in.Op)
			}
			if in.Op == OpPhi && i > 0 && b.Instrs[i-1].Op != OpPhi {
				return fmt.Errorf("ir: @%s/^%s: phi after non-phi", f.Name, b.Name)
			}
			if err := verifyInstr(f, b, in, blockSet, preds); err != nil {
				return err
			}
		}
	}
	return nil
}

// predecessors computes the predecessor sets of every block in f.
func predecessors(f *Func) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

func verifyInstr(f *Func, b *Block, in *Instr, blockSet map[*Block]bool, preds map[*Block][]*Block) error {
	where := func() string { return fmt.Sprintf("ir: @%s/^%s: %s", f.Name, b.Name, in) }
	for _, a := range in.Args {
		if a == nil {
			return fmt.Errorf("%s: nil operand", where())
		}
		if _, isPH := a.(placeholder); isPH {
			return fmt.Errorf("%s: unresolved operand", where())
		}
	}
	for _, s := range in.Succs {
		if !blockSet[s] {
			return fmt.Errorf("%s: successor ^%s not in function", where(), s.Name)
		}
	}
	switch {
	case in.Op.IsBinary():
		if len(in.Args) != 2 {
			return fmt.Errorf("%s: want 2 operands", where())
		}
		wantFloat := in.Op >= OpFAdd && in.Op <= OpFDiv
		for _, a := range in.Args {
			if wantFloat && !a.Type().IsFloat() {
				return fmt.Errorf("%s: float op with non-float operand", where())
			}
			if !wantFloat && !a.Type().IsInt() {
				return fmt.Errorf("%s: int op with non-int operand", where())
			}
		}
		if !in.Args[0].Type().Equal(in.Args[1].Type()) {
			return fmt.Errorf("%s: operand type mismatch", where())
		}
	case in.Op == OpICmp:
		if !in.Args[0].Type().Equal(in.Args[1].Type()) {
			return fmt.Errorf("%s: icmp operand mismatch", where())
		}
		if !in.Args[0].Type().IsInt() && !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("%s: icmp on non-integer", where())
		}
	case in.Op == OpFCmp:
		if !in.Args[0].Type().IsFloat() || !in.Args[1].Type().IsFloat() {
			return fmt.Errorf("%s: fcmp on non-float", where())
		}
	case in.Op == OpLoad:
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("%s: load from non-pointer", where())
		}
	case in.Op == OpStore:
		if !in.Args[1].Type().IsPtr() {
			return fmt.Errorf("%s: store to non-pointer", where())
		}
	case in.Op == OpGEP:
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("%s: gep base not a pointer", where())
		}
		for _, idx := range in.Args[1:] {
			if !idx.Type().IsInt() {
				return fmt.Errorf("%s: gep index not an integer", where())
			}
		}
	case in.Op == OpPhi:
		if len(in.Args) != len(in.Preds) {
			return fmt.Errorf("%s: phi args/preds mismatch", where())
		}
		want := preds[b]
		if len(in.Args) != len(want) {
			return fmt.Errorf("%s: phi has %d incoming, block has %d preds", where(), len(in.Args), len(want))
		}
		for _, pb := range in.Preds {
			found := false
			for _, w := range want {
				if w == pb {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%s: phi incoming ^%s is not a predecessor", where(), pb.Name)
			}
		}
		for _, a := range in.Args {
			if !a.Type().Equal(in.Typ) {
				return fmt.Errorf("%s: phi incoming type mismatch", where())
			}
		}
	case in.Op == OpCall:
		if in.Callee == nil {
			return fmt.Errorf("%s: call without callee", where())
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("%s: call to @%s with %d args, want %d",
				where(), in.Callee.Name, len(in.Args), len(in.Callee.Params))
		}
		for i, a := range in.Args {
			if !a.Type().Equal(in.Callee.Params[i].Typ) {
				return fmt.Errorf("%s: arg %d type mismatch calling @%s", where(), i, in.Callee.Name)
			}
		}
		if !in.Typ.Equal(in.Callee.RetTyp) {
			return fmt.Errorf("%s: result type does not match @%s return", where(), in.Callee.Name)
		}
	case in.Op == OpCondBr:
		if !in.Args[0].Type().Equal(I1) {
			return fmt.Errorf("%s: condbr condition not i1", where())
		}
		if len(in.Succs) != 2 {
			return fmt.Errorf("%s: condbr needs 2 successors", where())
		}
	case in.Op == OpBr:
		if len(in.Succs) != 1 {
			return fmt.Errorf("%s: br needs 1 successor", where())
		}
	case in.Op == OpRet:
		if f.RetTyp == Void {
			if len(in.Args) != 0 {
				return fmt.Errorf("%s: ret with value in void function", where())
			}
		} else {
			if len(in.Args) != 1 || !in.Args[0].Type().Equal(f.RetTyp) {
				return fmt.Errorf("%s: ret type mismatch", where())
			}
		}
	case in.Op == OpGuard:
		if len(in.Args) != 2 {
			return fmt.Errorf("%s: guard wants (addr, size)", where())
		}
		if !in.Args[0].Type().IsPtr() {
			return fmt.Errorf("%s: guard address not a pointer", where())
		}
		if !in.Args[1].Type().IsInt() {
			return fmt.Errorf("%s: guard size not an integer", where())
		}
	case in.Op == OpSelect:
		if !in.Args[0].Type().Equal(I1) {
			return fmt.Errorf("%s: select condition not i1", where())
		}
		if !in.Args[1].Type().Equal(in.Args[2].Type()) {
			return fmt.Errorf("%s: select arm type mismatch", where())
		}
	}
	return nil
}
