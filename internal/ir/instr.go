package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op int

// Instruction opcodes.
const (
	OpInvalid Op = iota

	// Integer arithmetic and bitwise ops: two integer operands.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpUDiv
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating-point arithmetic: two f64 operands.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons: produce i1. Pred field selects the predicate.
	OpICmp
	OpFCmp

	// Conversions: one operand; result type in Typ.
	OpTrunc
	OpZExt
	OpSExt
	OpPtrToInt
	OpIntToPtr
	OpSIToFP
	OpFPToSI

	// Memory.
	OpAlloca // stack allocation; Elem type + count operand
	OpLoad   // load Elem from pointer operand
	OpStore  // store operand[0] to pointer operand[1]
	OpGEP    // pointer arithmetic; Elem type scales index operands

	// Control flow and misc.
	OpPhi    // SSA phi; operands parallel to Preds blocks
	OpSelect // select cond, a, b
	OpCall   // call Callee(operands...)
	OpBr     // unconditional branch to Succs[0]
	OpCondBr // conditional branch: operand[0] ? Succs[0] : Succs[1]
	OpRet    // return (optional operand)
	OpUnreachable

	// CARAT instrumentation. These are inserted by the CARAT passes
	// (internal/passes) and consumed by the VM and the cost model.
	OpGuard // validate [addr, addr+size) against the kernel region set
)

// Pred is a comparison predicate for ICmp and FCmp.
type Pred int

// Comparison predicates. Integer comparisons are signed unless prefixed U.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredULT
	PredULE
	PredUGT
	PredUGE
)

var predNames = map[Pred]string{
	PredEQ: "eq", PredNE: "ne", PredLT: "slt", PredLE: "sle",
	PredGT: "sgt", PredGE: "sge", PredULT: "ult", PredULE: "ule",
	PredUGT: "ugt", PredUGE: "uge",
}

// String returns the textual predicate name ("eq", "slt", ...).
func (p Pred) String() string { return predNames[p] }

// GuardKind says what kind of access a guard protects; the distinction
// matters for the cost model and for Table 1/Figure 3 accounting.
type GuardKind int

// Guard kinds.
const (
	GuardLoad       GuardKind = iota // precedes a load
	GuardStore                       // precedes a store
	GuardCall                        // precedes a call: checks the callee's stack footprint
	GuardRange                       // merged read guard covering [lo, lo+span) (Opt 2 output)
	GuardRangeStore                  // merged write guard covering [lo, lo+span)
)

var guardKindNames = map[GuardKind]string{
	GuardLoad: "load", GuardStore: "store", GuardCall: "call",
	GuardRange: "range", GuardRangeStore: "rangestore",
}

// String returns the guard kind's textual name.
func (k GuardKind) String() string { return guardKindNames[k] }

// Instr is a single IR instruction. All opcodes share this struct; the
// meaning of the fields depends on Op as documented on the Op constants.
type Instr struct {
	Op   Op
	Name string  // SSA name of the result ("" when the op produces no value)
	Typ  *Type   // result type (Void for stores, branches, guards, ...)
	Args []Value // operands

	Pred  Pred      // ICmp/FCmp predicate
	Elem  *Type     // Alloca/Load/GEP element type
	Kind  GuardKind // Guard kind
	Preds []*Block  // Phi: incoming blocks, parallel to Args
	Succs []*Block  // Br/CondBr: successor blocks

	Callee *Func // Call: target (direct calls only; see Func.Name)

	Block *Block // owning block (maintained by Block methods)
}

// Type implements Value.
func (in *Instr) Type() *Type { return in.Typ }

// Ref implements Value.
func (in *Instr) Ref() string { return "%" + in.Name }

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpCondBr, OpRet, OpUnreachable:
		return true
	}
	return false
}

// IsMemAccess reports whether the instruction reads or writes memory
// through a pointer (loads and stores; calls are handled separately).
func (in *Instr) IsMemAccess() bool { return in.Op == OpLoad || in.Op == OpStore }

// Addr returns the pointer operand of a load, store, or guard. It panics
// for other opcodes.
func (in *Instr) Addr() Value {
	switch in.Op {
	case OpLoad:
		return in.Args[0]
	case OpStore:
		return in.Args[1]
	case OpGuard:
		return in.Args[0]
	}
	panic(fmt.Sprintf("ir: Addr on %v", in.Op))
}

// AccessSize returns the number of bytes accessed by a load or store.
func (in *Instr) AccessSize() int64 {
	switch in.Op {
	case OpLoad:
		return in.Elem.Size()
	case OpStore:
		return in.Args[0].Type().Size()
	}
	panic(fmt.Sprintf("ir: AccessSize on %v", in.Op))
}

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpSRem: "srem",
	OpUDiv: "udiv", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr", OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpPhi: "phi", OpSelect: "select", OpCall: "call",
	OpBr: "br", OpCondBr: "condbr", OpRet: "ret", OpUnreachable: "unreachable",
	OpGuard: "guard",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, s := range opNames {
		m[s] = op
	}
	return m
}()

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether o is a two-operand arithmetic/bitwise op.
func (o Op) IsBinary() bool {
	return (o >= OpAdd && o <= OpAShr) || (o >= OpFAdd && o <= OpFDiv)
}

// IsCast reports whether o is a conversion op.
func (o Op) IsCast() bool { return o >= OpTrunc && o <= OpFPToSI }

// HasResult reports whether an instruction with opcode o produces an SSA
// value.
func (o Op) HasResult() bool {
	switch o {
	case OpStore, OpBr, OpCondBr, OpRet, OpUnreachable, OpGuard:
		return false
	case OpCall:
		return true // caller must check for void result type
	}
	return true
}
