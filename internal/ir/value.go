package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, functions, and instructions themselves.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ref returns the value's operand syntax, e.g. "%3", "@g", "42".
	Ref() string
}

// Const is a compile-time constant of integer, float, or pointer type.
// Pointer constants are restricted to null (Int == 0) and the special
// non-canonical poison addresses used by the kernel to make pages
// unavailable.
type Const struct {
	Typ   *Type
	Int   int64   // value when Typ is integer or pointer
	Float float64 // value when Typ is f64
}

// ConstInt returns an integer constant of type t.
func ConstInt(t *Type, v int64) *Const {
	if !t.IsInt() {
		panic("ir: ConstInt with non-integer type")
	}
	return &Const{Typ: t, Int: v}
}

// ConstFloat returns an f64 constant.
func ConstFloat(v float64) *Const { return &Const{Typ: F64, Float: v} }

// ConstNull returns the null pointer constant.
func ConstNull() *Const { return &Const{Typ: Ptr} }

// Type implements Value.
func (c *Const) Type() *Type { return c.Typ }

// Ref implements Value.
func (c *Const) Ref() string {
	switch {
	case c.Typ.IsFloat():
		if c.Float == math.Trunc(c.Float) && math.Abs(c.Float) < 1e15 {
			return strconv.FormatFloat(c.Float, 'f', 1, 64)
		}
		return strconv.FormatFloat(c.Float, 'g', -1, 64)
	case c.Typ.IsPtr():
		if c.Int == 0 {
			return "null"
		}
		return fmt.Sprintf("ptr:%#x", uint64(c.Int))
	default:
		return strconv.FormatInt(c.Int, 10)
	}
}

// IsZero reports whether c is a zero constant (0, 0.0, or null).
func (c *Const) IsZero() bool { return c.Int == 0 && c.Float == 0 }

// Global is a module-level variable (the IR analogue of data/bss). Its
// value, when used as an operand, is the address of its storage, so the
// operand type is always ptr.
type Global struct {
	Name    string
	Elem    *Type   // type of the pointed-to storage
	Init    []byte  // initial contents; nil means zero-fill (bss)
	Mutable bool    // false for constant data
	PtrInit []int64 // byte offsets within the storage that hold pointers
}

// Type implements Value: a global evaluates to its address.
func (g *Global) Type() *Type { return Ptr }

// Ref implements Value.
func (g *Global) Ref() string { return "@" + g.Name }

// Size returns the size in bytes of the global's storage.
func (g *Global) Size() int64 { return g.Elem.Size() }

// Param is a formal parameter of a function.
type Param struct {
	Name string
	Typ  *Type
	Idx  int
}

// Type implements Value.
func (p *Param) Type() *Type { return p.Typ }

// Ref implements Value.
func (p *Param) Ref() string { return "%" + p.Name }
