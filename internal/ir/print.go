package ir

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// String renders the module in its textual syntax. The output parses back
// to an equivalent module (see Parse).
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %q\n", m.Name)
	for _, g := range m.Globals {
		sb.WriteString("\n")
		sb.WriteString(g.String())
		sb.WriteString("\n")
	}
	for _, f := range m.Funcs {
		sb.WriteString("\n")
		sb.WriteString(f.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// String renders the global's definition line.
func (g *Global) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "global @%s : %s", g.Name, g.Elem)
	if len(g.Init) > 0 {
		fmt.Fprintf(&sb, " = #%s", hex.EncodeToString(g.Init))
	}
	if len(g.PtrInit) > 0 {
		sb.WriteString(" ptrs [")
		for i, off := range g.PtrInit {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", off)
		}
		sb.WriteString("]")
	}
	return sb.String()
}

// String renders the function definition or declaration.
func (f *Func) String() string {
	var sb strings.Builder
	sb.WriteString("func @")
	sb.WriteString(f.Name)
	sb.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%%%s: %s", p.Name, p.Typ)
	}
	fmt.Fprintf(&sb, ") -> %s", f.RetTyp)
	if f.IsDecl() {
		return sb.String()
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteString("\n")
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// String renders one instruction in its textual syntax.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.Op.HasResult() && in.Typ != Void {
		fmt.Fprintf(&sb, "%%%s = ", in.Name)
	}
	switch {
	case in.Op.IsBinary():
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Typ, in.Args[0].Ref(), in.Args[1].Ref())
	case in.Op == OpICmp || in.Op == OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s %s, %s", in.Op, in.Pred, in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Ref())
	case in.Op.IsCast():
		fmt.Fprintf(&sb, "%s %s %s to %s", in.Op, in.Args[0].Type(), in.Args[0].Ref(), in.Typ)
	case in.Op == OpAlloca:
		fmt.Fprintf(&sb, "alloca %s, %s", in.Elem, in.Args[0].Ref())
	case in.Op == OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Elem, in.Args[0].Ref())
	case in.Op == OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s", in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Ref())
	case in.Op == OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s", in.Elem, in.Args[0].Ref())
		for _, idx := range in.Args[1:] {
			fmt.Fprintf(&sb, ", %s", idx.Ref())
		}
	case in.Op == OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Typ)
		for i := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, ^%s]", in.Args[i].Ref(), in.Preds[i].Name)
		}
	case in.Op == OpSelect:
		fmt.Fprintf(&sb, "select %s %s, %s, %s", in.Typ, in.Args[0].Ref(), in.Args[1].Ref(), in.Args[2].Ref())
	case in.Op == OpCall:
		fmt.Fprintf(&sb, "call %s @%s(", in.Typ, in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", a.Type(), a.Ref())
		}
		sb.WriteString(")")
	case in.Op == OpBr:
		fmt.Fprintf(&sb, "br ^%s", in.Succs[0].Name)
	case in.Op == OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, ^%s, ^%s", in.Args[0].Ref(), in.Succs[0].Name, in.Succs[1].Name)
	case in.Op == OpRet:
		if len(in.Args) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s %s", in.Args[0].Type(), in.Args[0].Ref())
		}
	case in.Op == OpUnreachable:
		sb.WriteString("unreachable")
	case in.Op == OpGuard:
		fmt.Fprintf(&sb, "guard %s %s, %s", in.Kind, in.Args[0].Ref(), in.Args[1].Ref())
	default:
		fmt.Fprintf(&sb, "%s ???", in.Op)
	}
	return sb.String()
}
