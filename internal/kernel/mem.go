// Package kernel simulates the OS side of the CARAT co-design: a flat
// physical memory, a physical page allocator, per-process region sets, and
// the change-request machinery (protection changes and page moves) that the
// CARAT runtime negotiates with (paper §2.2, §4.3). It also implements the
// Linux-like demand-paging/copy-on-write accounting that Table 2 measures
// through MMU notifiers on real hardware.
package kernel

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the physical page size, matching the paper's 4 KB pages.
const PageSize = 4096

// PhysMem is the machine's physical memory: a flat byte array addressed by
// physical address. Address 0 is kept unmapped so that null dereferences
// always fault.
type PhysMem struct {
	data []byte
}

// NewPhysMem returns a physical memory of the given size in bytes, rounded
// up to a whole number of pages.
func NewPhysMem(size uint64) *PhysMem {
	pages := (size + PageSize - 1) / PageSize
	return &PhysMem{data: make([]byte, pages*PageSize)}
}

// Size returns the memory size in bytes.
func (m *PhysMem) Size() uint64 { return uint64(len(m.data)) }

// Pages returns the number of physical pages.
func (m *PhysMem) Pages() uint64 { return m.Size() / PageSize }

// InBounds reports whether [addr, addr+n) lies inside physical memory.
func (m *PhysMem) InBounds(addr, n uint64) bool {
	return addr > 0 && addr+n >= addr && addr+n <= m.Size()
}

// ReadAt copies n bytes at addr into a fresh slice.
func (m *PhysMem) ReadAt(addr, n uint64) ([]byte, error) {
	if !m.InBounds(addr, n) {
		return nil, fmt.Errorf("kernel: physical read [%#x,%#x) out of bounds", addr, addr+n)
	}
	out := make([]byte, n)
	copy(out, m.data[addr:addr+n])
	return out, nil
}

// WriteAt copies b into memory at addr.
func (m *PhysMem) WriteAt(addr uint64, b []byte) error {
	if !m.InBounds(addr, uint64(len(b))) {
		return fmt.Errorf("kernel: physical write [%#x,%#x) out of bounds", addr, addr+uint64(len(b)))
	}
	copy(m.data[addr:], b)
	return nil
}

// Load64 reads a little-endian 64-bit value. It panics on out-of-bounds
// access; callers (the VM) must have guarded or bounds-checked already.
func (m *PhysMem) Load64(addr uint64) uint64 {
	return binary.LittleEndian.Uint64(m.data[addr : addr+8 : addr+8])
}

// Store64 writes a little-endian 64-bit value.
func (m *PhysMem) Store64(addr uint64, v uint64) {
	binary.LittleEndian.PutUint64(m.data[addr:addr+8:addr+8], v)
}

// LoadN reads an n-byte little-endian value (n in 1,2,4,8).
func (m *PhysMem) LoadN(addr uint64, n int) uint64 {
	switch n {
	case 1:
		return uint64(m.data[addr])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.data[addr : addr+2 : addr+2]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr : addr+4 : addr+4]))
	case 8:
		return m.Load64(addr)
	}
	panic(fmt.Sprintf("kernel: LoadN with width %d", n))
}

// StoreN writes an n-byte little-endian value (n in 1,2,4,8).
func (m *PhysMem) StoreN(addr uint64, v uint64, n int) {
	switch n {
	case 1:
		m.data[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.data[addr:addr+2:addr+2], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:addr+4:addr+4], uint32(v))
	case 8:
		m.Store64(addr, v)
	default:
		panic(fmt.Sprintf("kernel: StoreN with width %d", n))
	}
}

// Move copies n bytes from src to dst (ranges may not overlap) and zeroes
// the source, modeling a page migration's data movement.
func (m *PhysMem) Move(dst, src, n uint64) error {
	if !m.InBounds(src, n) || !m.InBounds(dst, n) {
		return fmt.Errorf("kernel: move [%#x,%#x)->[%#x,%#x) out of bounds", src, src+n, dst, dst+n)
	}
	if src < dst+n && dst < src+n {
		return fmt.Errorf("kernel: move ranges overlap")
	}
	copy(m.data[dst:dst+n], m.data[src:src+n])
	for i := src; i < src+n; i++ {
		m.data[i] = 0
	}
	return nil
}

// Checksum returns an FNV-1a hash over the entire physical memory image.
// The soak harness compares it across replays of the same seed: the final
// memory bytes must be identical, not merely invariant-clean.
func (m *PhysMem) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// ChecksumRange returns the FNV-1a hash of [addr, addr+n) only. The group
// runner digests each process's arena with it: concurrent processes leave
// the whole-memory image interleaving-dependent (freed frames keep their
// contents), but an arena-confined process's own range is deterministic.
func (m *PhysMem) ChecksumRange(addr, n uint64) (uint64, error) {
	if !m.InBounds(addr, n) {
		return 0, fmt.Errorf("kernel: checksum [%#x,%#x) out of bounds", addr, addr+n)
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range m.data[addr : addr+n] {
		h ^= uint64(b)
		h *= prime64
	}
	return h, nil
}

// Zero clears [addr, addr+n).
func (m *PhysMem) Zero(addr, n uint64) error {
	if !m.InBounds(addr, n) {
		return fmt.Errorf("kernel: zero [%#x,%#x) out of bounds", addr, addr+n)
	}
	for i := addr; i < addr+n; i++ {
		m.data[i] = 0
	}
	return nil
}
