package kernel

import "carat/internal/obs"

// MMU-notifier-style event stream (§3 "dynamic paging capture"): the paper
// learns of Linux's paging activity through the MMU notifier interface,
// which reports PTE changes (a page's contents moved to a different frame)
// and range invalidations. The simulated kernel exposes the same stream so
// observers (the Table 2 accounting, tests, or external tooling) can watch
// paging activity without hooking the kernel's internals.

// MMUEventKind discriminates notifier events.
type MMUEventKind int

// The events the paper's methodology distinguishes (§3).
const (
	// EventPTEChange: a valid translation now points at a different
	// physical frame — a page move.
	EventPTEChange MMUEventKind = iota
	// EventInvalidateRange: a range of translations was invalidated
	// (protection change, unmap).
	EventInvalidateRange
	// EventAllocate: a previously-invalid page became valid (demand
	// paging; derived from address-space growth in the paper because the
	// notifier interface does not report it directly).
	EventAllocate
)

// String names the event kind.
func (k MMUEventKind) String() string {
	switch k {
	case EventPTEChange:
		return "pte-change"
	case EventInvalidateRange:
		return "invalidate"
	case EventAllocate:
		return "allocate"
	}
	return "unknown"
}

// MMUEvent is one notification.
type MMUEvent struct {
	Kind  MMUEventKind
	Base  uint64 // page-aligned start of the affected range
	Len   uint64 // bytes
	NewPA uint64 // EventPTEChange: the new physical base
}

// MMUNotifier receives paging events. Implementations must not call back
// into the kernel.
type MMUNotifier interface {
	Notify(ev MMUEvent)
}

// NotifierFunc adapts a function to MMUNotifier.
type NotifierFunc func(MMUEvent)

// Notify implements MMUNotifier.
func (f NotifierFunc) Notify(ev MMUEvent) { f(ev) }

// RegisterNotifier subscribes n to this process's paging events.
func (p *Process) RegisterNotifier(n MMUNotifier) {
	p.notifiers = append(p.notifiers, n)
}

func (p *Process) notify(ev MMUEvent) {
	// Invalidations and remaps are shootdowns: each delivery forces the
	// receivers (guard/translation caches, the TLB hierarchy) to drop
	// state — the kernel-side counterpart of the runtime's pause causes.
	if ev.Kind == EventInvalidateRange || ev.Kind == EventPTEChange {
		p.K.Stats.Shootdowns.Inc()
	}
	p.K.tr.Instant("mmu."+ev.Kind.String(), "paging",
		obs.A("base", ev.Base), obs.A("len", ev.Len))
	for _, n := range p.notifiers {
		n.Notify(ev)
	}
}

// EventLog is a convenience notifier that records every event.
type EventLog struct {
	Events []MMUEvent
}

// Notify implements MMUNotifier.
func (l *EventLog) Notify(ev MMUEvent) { l.Events = append(l.Events, ev) }

// Count returns how many events of kind k were observed.
func (l *EventLog) Count(k MMUEventKind) int {
	n := 0
	for _, ev := range l.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}
