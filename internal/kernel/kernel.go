package kernel

import (
	"errors"
	"fmt"
	"sync"

	"carat/internal/fault"
	"carat/internal/guard"
	"carat/internal/obs"
)

// ErrQuota is wrapped by page-grant failures caused by a Limiter: the
// process asked for frames its quota does not cover. Distinct from
// ErrNoMemory (the machine itself is out of frames) so a multi-tenant
// server can answer "your quota" and "global pressure" differently.
var ErrQuota = errors.New("kernel: page quota exceeded")

// Limiter is an optional per-process admission hook on page grants. A
// multi-tenant host (cmd/caratd) installs one per tenant: every region
// grant — including move destinations negotiated by the runtime — first
// reserves its page count, and every release returns it. ReservePages
// errors should wrap ErrQuota. Implementations must be safe for
// concurrent use; one Limiter is typically shared by all of a tenant's
// processes.
type Limiter interface {
	ReservePages(n uint64) error
	ReleasePages(n uint64)
}

// Kernel owns physical memory and page frames, and manages CARAT processes:
// it grants regions, accepts change requests, and coordinates moves with
// the process's runtime through the MoveHandler upcall interface
// (the kernel module of paper §4.3).
type Kernel struct {
	Mem   *PhysMem
	Alloc *PageAllocator
	Stats Stats

	// Obs backs Stats; tr, when set, mirrors MMU-notifier events into the
	// trace stream; inj, when set, injects kernel-side faults into the
	// move negotiation (see internal/fault).
	Obs *obs.Registry
	tr  *obs.Tracer
	inj *fault.Injector

	// ownMu guards the page-ownership map (physical page index -> owning
	// process) and the process-ID counter. The map backs OwnerOf/OwnersOf:
	// the stop-set computation of the ragged safepoint protocol (see
	// arena.go).
	ownMu  sync.Mutex
	owners map[uint64]*Process
	nextID uint64
}

// Stats is the kernel's typed view over its carat.kernel.* metrics. The
// kernel layer owns the page-frame lifecycle — grants, frees, moves,
// protection changes — while the runtime layer owns tracking and per-move
// cost attribution (carat.runtime.*); see DESIGN.md "Observability".
type Stats struct {
	PageAllocs  *obs.Counter // page frames handed out
	PageFrees   *obs.Counter
	PageMoves   *obs.Counter // pages moved by executed change requests
	ProtChanges *obs.Counter // protection change requests executed
	MoveVetoes  *obs.Counter // moves vetoed during negotiation
	Shootdowns  *obs.Counter // invalidate/PTE-change notifier deliveries
}

func newStats(reg *obs.Registry) Stats {
	return Stats{
		PageAllocs:  reg.Counter("carat.kernel.page_allocs"),
		PageFrees:   reg.Counter("carat.kernel.page_frees"),
		PageMoves:   reg.Counter("carat.kernel.page_moves"),
		ProtChanges: reg.Counter("carat.kernel.prot_changes"),
		MoveVetoes:  reg.Counter("carat.kernel.move_vetoes"),
		Shootdowns:  reg.Counter("carat.kernel.shootdowns"),
	}
}

// New creates a kernel with the given physical memory size in bytes.
// Metrics go to a private registry; use NewWith to share one.
func New(memBytes uint64) *Kernel {
	return NewWith(memBytes, nil)
}

// NewWith is New with an explicit metrics registry (created if nil).
func NewWith(memBytes uint64, reg *obs.Registry) *Kernel {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mem := NewPhysMem(memBytes)
	return &Kernel{
		Mem:   mem,
		Alloc: NewPageAllocator(mem.Pages()),
		Stats: newStats(reg),
		Obs:   reg,
	}
}

// SetTracer attaches an event tracer (nil disables tracing). Paging
// events then appear in the trace as mmu.* instants.
func (k *Kernel) SetTracer(tr *obs.Tracer) { k.tr = tr }

// SetInjector attaches a fault injector (nil disables injection): the
// kernel then vetoes a seed-determined fraction of move negotiations, the
// way a real kernel refuses a move whose destination it cannot satisfy.
func (k *Kernel) SetInjector(in *fault.Injector) { k.inj = in }

// NonCanonical is the base of the poison address range used to mark
// unavailable pages (§2.2): patching a pointer into this range guarantees
// a fault on use, and the low bits encode why the page is unavailable.
const NonCanonical = uint64(0xFFFF_8000_0000_0000)

// PoisonKind encodes conditions in the non-canonical address space.
type PoisonKind uint64

// Poison kinds.
const (
	PoisonSwapped PoisonKind = iota + 1
	PoisonDemand
	PoisonNull
)

// Poison returns the non-canonical address encoding kind.
func Poison(kind PoisonKind) uint64 { return NonCanonical | uint64(kind)<<32 }

// IsPoison reports whether addr lies in the non-canonical range.
func IsPoison(addr uint64) bool { return addr >= NonCanonical }

// MoveHandler is the upcall interface the CARAT runtime registers with the
// kernel module. The kernel invokes it to execute steps 2-12 of Figure 8;
// the handler stops the world, negotiates the final range, patches escapes
// and registers, moves the data, and reports the realized move.
type MoveHandler interface {
	// HandleMove is invoked with the kernel's proposed source range and
	// the negotiated destination. It returns the realized source range
	// (possibly expanded so no allocation straddles its boundary).
	HandleMove(req *MoveRequest) (MoveResult, error)
	// HandleProtect is invoked for a protection change: the handler stops
	// the world so the next guard observes the new region set.
	HandleProtect(apply func() error) error
}

// MoveRequest is a kernel-initiated page move (step 1 of Figure 8).
type MoveRequest struct {
	Src    uint64 // page-aligned source base
	Pages  uint64 // number of pages requested
	kernel *Kernel
	proc   *Process
}

// Regions exposes the requesting process's region set. The runtime uses it
// to open the forwarding window of an incremental move (guard.OpenForward)
// on the same set the process's guards evaluate against.
func (r *MoveRequest) Regions() *guard.RegionSet { return r.proc.Regions }

// MoveResult reports what the runtime actually moved.
type MoveResult struct {
	Src   uint64 // realized (possibly expanded) source base
	Dst   uint64
	Pages uint64
}

// Process is a loaded CARAT process: its region set and its registered
// runtime handler. The region set lives, conceptually, in the runtime's
// landing zone; the kernel is its only writer (§4.2 "Protection").
type Process struct {
	K *Kernel
	// ID orders processes machine-wide. Ragged-stop protocols acquire
	// per-process suspensions in ascending ID order, so two concurrent
	// movers whose stop sets overlap can never deadlock.
	ID      uint64
	Regions *guard.RegionSet
	Handler MoveHandler

	// limiter, when set, meters this process's page grants (see Limiter).
	limiter Limiter

	// arena, when set, is the private page range every grant and move
	// destination of this process is served from (see arena.go).
	arena *Arena

	// notifiers receive MMU-notifier-style paging events (see notifier.go).
	notifiers []MMUNotifier
}

// NewProcess registers a process with an empty region set.
func (k *Kernel) NewProcess() *Process {
	k.ownMu.Lock()
	k.nextID++
	id := k.nextID
	k.ownMu.Unlock()
	return &Process{K: k, ID: id, Regions: guard.NewRegionSet()}
}

// SetArena routes all of this process's page allocations (grants and move
// destinations) through a private arena. Install before the first grant:
// frames allocated earlier came from the machine allocator and would be
// freed into the wrong pool.
func (p *Process) SetArena(a *Arena) { p.arena = a }

// Arena returns the process's private arena (nil when unset).
func (p *Process) Arena() *Arena { return p.arena }

// allocFrames grabs n contiguous page frames from the process's arena, or
// from the machine allocator when no arena is installed, and records this
// process as their owner.
func (p *Process) allocFrames(n uint64) (uint64, error) {
	var base uint64
	var err error
	if p.arena != nil {
		base, err = p.arena.allocPages(n)
	} else {
		base, err = p.K.Alloc.Alloc(n)
	}
	if err != nil {
		return 0, err
	}
	p.K.setOwner(base, n, p)
	return base, nil
}

// freeFrames returns n page frames to whichever allocator owns them and
// clears their ownership records.
func (p *Process) freeFrames(base, n uint64) error {
	var err error
	if p.arena != nil && p.arena.Contains(base) {
		err = p.arena.freePages(base, n)
	} else {
		err = p.K.Alloc.Free(base, n)
	}
	if err != nil {
		return err
	}
	p.K.clearOwner(base, n)
	return nil
}

// SetLimiter installs a page-grant limiter (nil removes it). Call before
// the first grant: the limiter only meters grants made while installed,
// and releases are only reported for pages it metered in.
func (p *Process) SetLimiter(l Limiter) { p.limiter = l }

// reservePages charges n pages against the limiter (no-op without one).
func (p *Process) reservePages(n uint64) error {
	if p.limiter == nil {
		return nil
	}
	return p.limiter.ReservePages(n)
}

// releasePages returns n pages to the limiter (no-op without one).
func (p *Process) releasePages(n uint64) {
	if p.limiter != nil {
		p.limiter.ReleasePages(n)
	}
}

// GrantRegion allocates sizeBytes of contiguous physical memory (rounded
// up to pages), adds it to the process's region set with permission p, and
// returns its base address.
func (p *Process) GrantRegion(sizeBytes uint64, perm guard.Perm) (uint64, error) {
	pages := (sizeBytes + PageSize - 1) / PageSize
	if err := p.reservePages(pages); err != nil {
		return 0, err
	}
	base, err := p.allocFrames(pages)
	if err != nil {
		p.releasePages(pages)
		return 0, err
	}
	p.K.Stats.PageAllocs.Add(pages)
	if err := p.K.Mem.Zero(base, pages*PageSize); err != nil {
		p.releasePages(pages)
		return 0, err
	}
	if err := p.Regions.Add(guard.Region{Base: base, Len: pages * PageSize, Perm: perm}); err != nil {
		p.releasePages(pages)
		return 0, err
	}
	p.notify(MMUEvent{Kind: EventAllocate, Base: base, Len: pages * PageSize})
	return base, nil
}

// ReleaseRegion removes [base, base+len) from the region set and frees its
// page frames. base and len must be page-aligned.
func (p *Process) ReleaseRegion(base, length uint64) error {
	if base%PageSize != 0 || length%PageSize != 0 {
		return fmt.Errorf("kernel: unaligned region release")
	}
	p.Regions.Remove(base, length)
	if err := p.freeFrames(base, length/PageSize); err != nil {
		return err
	}
	p.K.Stats.PageFrees.Add(length / PageSize)
	p.releasePages(length / PageSize)
	p.notify(MMUEvent{Kind: EventInvalidateRange, Base: base, Len: length})
	return nil
}

// ReleaseAll frees every region still in the process's region set —
// process teardown for a long-running host that loads and retires many
// processes over one shared physical memory. Safe to call on a partially
// loaded process (e.g. after a mid-load grant failure); a second call is
// a no-op.
func (p *Process) ReleaseAll() error {
	regs := append([]guard.Region(nil), p.Regions.Regions()...)
	var firstErr error
	for _, r := range regs {
		if err := p.ReleaseRegion(r.Base, r.Len); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// RequestProtect executes a protection change request through the runtime's
// world-stop protocol: a simpler variant of a move with no patching (§4.4).
func (p *Process) RequestProtect(base, length uint64, perm guard.Perm) error {
	apply := func() error { return p.Regions.SetPerm(base, length, perm) }
	if p.Handler == nil {
		if err := apply(); err != nil {
			return err
		}
	} else if err := p.Handler.HandleProtect(apply); err != nil {
		return err
	}
	p.K.Stats.ProtChanges.Inc()
	p.notify(MMUEvent{Kind: EventInvalidateRange, Base: base, Len: length})
	return nil
}

// RequestMove asks the process to vacate the page range starting at src
// (step 1 of Figure 8). The runtime may expand the range during
// negotiation. The kernel allocates the destination, the runtime patches
// and moves, and the kernel retires the source frames.
func (p *Process) RequestMove(src uint64, pages uint64) (MoveResult, error) {
	if p.Handler == nil {
		return MoveResult{}, fmt.Errorf("kernel: process has no registered runtime")
	}
	if src%PageSize != 0 {
		return MoveResult{}, fmt.Errorf("kernel: unaligned move source %#x", src)
	}
	req := &MoveRequest{Src: src, Pages: pages, kernel: p.K, proc: p}
	res, err := p.Handler.HandleMove(req)
	if err != nil {
		return MoveResult{}, err
	}
	p.K.Stats.PageMoves.Add(res.Pages)
	p.notify(MMUEvent{Kind: EventPTEChange, Base: res.Src, Len: res.Pages * PageSize, NewPA: res.Dst})
	return res, nil
}

// NegotiateDst is called by the runtime during step 5 of Figure 8 once the
// final (possibly expanded) source range is known: the kernel allocates a
// destination range of equal size and installs it in the region set with
// the same permissions as the source.
func (r *MoveRequest) NegotiateDst(src uint64, pages uint64) (uint64, error) {
	reg, ok := r.proc.Regions.Find(src)
	if !ok {
		return 0, fmt.Errorf("kernel: move source %#x not in any region", src)
	}
	if err := r.kernel.inj.Fail(fault.KernelVeto,
		fmt.Sprintf("move of [%#x,+%d pages)", src, pages)); err != nil {
		return 0, err
	}
	// The destination counts against the quota until RetireSrc returns the
	// source: a move transiently needs both ranges resident.
	if err := r.proc.reservePages(pages); err != nil {
		return 0, err
	}
	dst, err := r.proc.allocFrames(pages)
	if err != nil {
		r.proc.releasePages(pages)
		return 0, err
	}
	r.kernel.Stats.PageAllocs.Add(pages)
	if err := r.proc.Regions.Add(guard.Region{Base: dst, Len: pages * PageSize, Perm: reg.Perm}); err != nil {
		_ = r.proc.freeFrames(dst, pages)
		r.proc.releasePages(pages)
		return 0, err
	}
	return dst, nil
}

// RetireSrc is called by the runtime after the data movement (step 10):
// the kernel removes the vacated range from the region set and frees its
// frames.
func (r *MoveRequest) RetireSrc(src uint64, pages uint64) error {
	return r.proc.ReleaseRegion(src, pages*PageSize)
}

// Veto aborts a move during negotiation (§4.3: "The kernel module can then
// veto or approve the move"), releasing nothing.
func (r *MoveRequest) Veto() {
	r.kernel.Stats.MoveVetoes.Inc()
}

// AbortDst releases a destination range obtained from NegotiateDst when
// the runtime aborts the move after negotiation: the range leaves the
// region set, its frames return to the allocator, and an
// EventInvalidateRange reaches the MMU notifiers so the VM's
// guard/translation caches drop anything covering the stillborn
// destination. Part of the move protocol's rollback path.
func (r *MoveRequest) AbortDst(dst uint64, pages uint64) error {
	return r.proc.ReleaseRegion(dst, pages*PageSize)
}
