package kernel

import (
	"testing"

	"carat/internal/fault"
	"carat/internal/guard"
)

// recordingHandler is a MoveHandler that negotiates and immediately
// vetoes, capturing what the kernel passed it.
type recordingHandler struct {
	moves     int
	negotiate bool // call NegotiateDst before vetoing
	lastErr   error
}

func (h *recordingHandler) HandleMove(req *MoveRequest) (MoveResult, error) {
	h.moves++
	if h.negotiate {
		if _, err := req.NegotiateDst(req.Src, req.Pages); err != nil {
			h.lastErr = err
			req.Veto()
			return MoveResult{}, err
		}
	}
	req.Veto()
	return MoveResult{}, errAlwaysVeto
}

func (h *recordingHandler) HandleProtect(apply func() error) error { return apply() }

var errAlwaysVeto = &fault.Error{Point: "test.veto", Detail: "handler refuses"}

func TestRequestMoveWithoutHandler(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	if _, err := p.RequestMove(PageSize, 1); err == nil {
		t.Fatal("RequestMove without a registered runtime must fail")
	}
	if k.Stats.PageMoves.Get() != 0 {
		t.Error("failed move counted pages moved")
	}
}

func TestRequestMoveUnalignedSource(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	h := &recordingHandler{}
	p.Handler = h
	if _, err := p.RequestMove(PageSize+8, 1); err == nil {
		t.Fatal("unaligned move source must be rejected")
	}
	if h.moves != 0 {
		t.Error("unaligned request reached the handler")
	}
}

func TestVetoAccounting(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	p.Handler = &recordingHandler{}
	for i := 0; i < 3; i++ {
		if _, err := p.RequestMove(PageSize, 1); err == nil {
			t.Fatal("vetoing handler reported success")
		}
	}
	if got := k.Stats.MoveVetoes.Get(); got != 3 {
		t.Errorf("carat.kernel.move_vetoes = %d, want 3", got)
	}
	if k.Stats.PageMoves.Get() != 0 {
		t.Error("vetoed moves counted pages moved")
	}
}

// TestInjectedKernelVeto verifies an armed kernel.veto_move fault fails
// destination negotiation without leaking frames or region-set entries,
// and flows into the veto accounting.
func TestInjectedKernelVeto(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	h := &recordingHandler{negotiate: true}
	p.Handler = h
	if _, err := p.GrantRegion(PageSize, guard.PermRW); err != nil {
		t.Fatal(err)
	}
	inj := fault.New(1, k.Obs)
	k.SetInjector(inj)

	freeBefore := k.Alloc.FreePages()
	regionsBefore := len(p.Regions.Regions())
	inj.Arm(fault.KernelVeto, 1)
	if _, err := p.RequestMove(PageSize, 1); err == nil {
		t.Fatal("injected veto did not fail the move")
	}
	if !fault.Injected(h.lastErr) {
		t.Fatalf("negotiation error is not the injected fault: %v", h.lastErr)
	}
	if got := k.Alloc.FreePages(); got != freeBefore {
		t.Errorf("free pages = %d, want %d (vetoed negotiation leaked frames)", got, freeBefore)
	}
	if got := len(p.Regions.Regions()); got != regionsBefore {
		t.Errorf("regions = %d, want %d (vetoed negotiation leaked a region)", got, regionsBefore)
	}
	if k.Stats.MoveVetoes.Get() != 1 {
		t.Errorf("move vetoes = %d, want 1", k.Stats.MoveVetoes.Get())
	}
	if k.Obs.Counter("carat.fault.injected.kernel.veto_move").Get() != 1 {
		t.Error("per-point fault counter not advanced")
	}
}

// TestAbortDstReturnsNegotiatedRange verifies AbortDst undoes exactly
// what NegotiateDst did: the destination leaves the region set and its
// frames return to the allocator.
func TestAbortDstReturnsNegotiatedRange(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	base, err := p.GrantRegion(PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := k.Alloc.FreePages()
	regionsBefore := len(p.Regions.Regions())

	req := &MoveRequest{Src: base, Pages: 1, kernel: k, proc: p}
	dst, err := req.NegotiateDst(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Regions.Find(dst); !ok {
		t.Fatal("negotiated destination not in region set")
	}
	if err := req.AbortDst(dst, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Regions.Find(dst); ok {
		t.Error("aborted destination still in region set")
	}
	if got := k.Alloc.FreePages(); got != freeBefore {
		t.Errorf("free pages = %d, want %d", got, freeBefore)
	}
	if got := len(p.Regions.Regions()); got != regionsBefore {
		t.Errorf("regions = %d, want %d", got, regionsBefore)
	}
}
