package kernel

import (
	"fmt"
	"sort"
)

// Per-process page arenas and the page-ownership map: the kernel-side half
// of the multi-core execution model.
//
// When processes from one machine run truly concurrently, two properties
// must hold that the shared first-fit allocator alone cannot give:
//
//  1. Determinism. A process's physical layout must not depend on how its
//     grants interleave with other processes' grants — guard walk order,
//     translation-cache indexing, and the final memory image all key off
//     absolute addresses. An Arena is a contiguous page range carved out
//     of the machine once (at a deterministic point, before the processes
//     start) with a private allocator inside it: every grant and every
//     move destination of the owning process lands in its arena, so its
//     addresses are a pure function of its own allocation history.
//
//  2. Ragged stops. A page move must pause only the process that owns the
//     affected pages. The ownership map (physical page -> Process) is what
//     lets a mover answer "whose world must acknowledge this?" without
//     consulting every process's region set.

// Arena is a contiguous page range reserved for one process, with a
// private allocator inside it. Page 0 of the arena is kept reserved (the
// inner allocator's null-page convention), so an arena of n pages serves
// n-1. Create with Kernel.NewArena, install with Process.SetArena before
// the process's first grant, and return it with Kernel.ReleaseArena after
// the process has released every region.
type Arena struct {
	base  uint64 // physical address of the first arena page
	pages uint64
	alloc *PageAllocator
}

// NewArena carves a contiguous range of pages out of the machine's
// allocator and wraps it in a private arena allocator.
func (k *Kernel) NewArena(pages uint64) (*Arena, error) {
	if pages < 2 {
		return nil, fmt.Errorf("kernel: arena needs at least 2 pages")
	}
	base, err := k.Alloc.Alloc(pages)
	if err != nil {
		return nil, fmt.Errorf("kernel: arena: %w", err)
	}
	return &Arena{base: base, pages: pages, alloc: NewPageAllocator(pages)}, nil
}

// ReleaseArena returns an arena's pages to the machine allocator. Every
// page inside it must have been freed (regions released) first.
func (k *Kernel) ReleaseArena(a *Arena) error {
	if used := a.UsedPages(); used != 0 {
		return fmt.Errorf("kernel: arena release with %d pages still allocated", used)
	}
	return k.Alloc.Free(a.base, a.pages)
}

// Base returns the arena's first physical address.
func (a *Arena) Base() uint64 { return a.base }

// Pages returns the arena size in pages.
func (a *Arena) Pages() uint64 { return a.pages }

// Bytes returns the arena size in bytes.
func (a *Arena) Bytes() uint64 { return a.pages * PageSize }

// Contains reports whether addr lies inside the arena.
func (a *Arena) Contains(addr uint64) bool {
	return addr >= a.base && addr < a.base+a.Bytes()
}

// UsedPages returns the number of pages currently allocated inside the
// arena (excluding the permanently reserved page 0).
func (a *Arena) UsedPages() uint64 {
	return a.alloc.TotalPages() - 1 - a.alloc.FreePages()
}

// allocPages grabs n contiguous pages inside the arena, returning a
// machine physical address.
func (a *Arena) allocPages(n uint64) (uint64, error) {
	off, err := a.alloc.Alloc(n)
	if err != nil {
		return 0, err
	}
	return a.base + off, nil
}

// freePages releases n pages at machine physical address addr back to the
// arena.
func (a *Arena) freePages(addr, n uint64) error {
	if !a.Contains(addr) {
		return fmt.Errorf("kernel: arena free of foreign address %#x", addr)
	}
	return a.alloc.Free(addr-a.base, n)
}

// setOwner records p as the owner of the page range. Called with every
// successful frame allocation a process makes.
func (k *Kernel) setOwner(base, pages uint64, p *Process) {
	k.ownMu.Lock()
	if k.owners == nil {
		k.owners = make(map[uint64]*Process)
	}
	first := base / PageSize
	for pg := first; pg < first+pages; pg++ {
		k.owners[pg] = p
	}
	k.ownMu.Unlock()
}

// clearOwner removes ownership records for the page range.
func (k *Kernel) clearOwner(base, pages uint64) {
	k.ownMu.Lock()
	first := base / PageSize
	for pg := first; pg < first+pages; pg++ {
		delete(k.owners, pg)
	}
	k.ownMu.Unlock()
}

// OwnerOf returns the process owning the page containing addr.
func (k *Kernel) OwnerOf(addr uint64) (*Process, bool) {
	k.ownMu.Lock()
	defer k.ownMu.Unlock()
	p, ok := k.owners[addr/PageSize]
	return p, ok
}

// OwnersOf returns every process owning at least one page in
// [base, base+length), in ascending process-ID order. A mover uses this to
// build the stop set of a ragged safepoint: only the returned processes
// must acknowledge the stop; every other process keeps running.
func (k *Kernel) OwnersOf(base, length uint64) []*Process {
	k.ownMu.Lock()
	seen := make(map[*Process]bool)
	var out []*Process
	first := base / PageSize
	last := (base + length + PageSize - 1) / PageSize
	for pg := first; pg < last; pg++ {
		if p, ok := k.owners[pg]; ok && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	k.ownMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OwnedPageCount returns the total number of pages with a recorded owner —
// zero once every process has released all regions (the group teardown
// integrity check).
func (k *Kernel) OwnedPageCount() int {
	k.ownMu.Lock()
	defer k.ownMu.Unlock()
	return len(k.owners)
}
