package kernel

// PagingModel reproduces the measurement methodology behind Table 2: the
// static footprint / initial mapping / dynamic paging capture that the
// paper performs with ELF inspection, a preload library, and an MMU-notifier
// kernel module. The VM feeds it the running program's page touches; the
// model applies Linux-like demand paging (first touch allocates) and a
// configurable rare-migration policy (NUMA balancing, compaction, KSM) that
// generates the paper's "incredibly rare" page-move events.
type PagingModel struct {
	// StaticFootprintPages is the LOAD-section page count (code + data +
	// bss + initial stack): what the kernel is obligated to eventually
	// allocate (§3 "static footprint capture").
	StaticFootprintPages uint64
	// InitialPages is the resident page count right after exec()
	// ("initial mapping capture").
	InitialPages uint64

	// PageAllocs counts demand-paging allocations (first touches plus the
	// initial mapping), matching the paper's accounting where COW and
	// demand-zero faults count as allocations.
	PageAllocs uint64
	// PageMoves counts kernel-initiated migrations of mapped pages.
	PageMoves uint64

	// Migrator, when non-nil, is consulted after every demand allocation
	// and decides whether a rare kernel-initiated migration (NUMA
	// balancing, compaction, KSM) fires. The paper measures between 0 and
	// 52 moves over entire benchmark runs; mmpolicy.RareMigration is the
	// standard implementation.
	Migrator Migrator

	resident map[uint64]struct{}
}

// Migrator is the policy hook behind the paging model's rare-migration
// events: Due is called with the cumulative demand-allocation count and
// reports whether a migration should fire now. The same interface paces
// the VM's move injection, so the Table 2 model and the Figure 9 injector
// share one policy mechanism.
type Migrator interface {
	Due(now uint64) bool
}

// MigratorFunc adapts a plain function to the Migrator interface.
type MigratorFunc func(now uint64) bool

// Due implements Migrator.
func (f MigratorFunc) Due(now uint64) bool { return f(now) }

// NewPagingModel creates a model with the given static footprint and
// initial resident set (both in pages). The initial pages count as
// allocations, as they do in the paper's methodology.
func NewPagingModel(staticPages, initialPages uint64) *PagingModel {
	m := &PagingModel{
		StaticFootprintPages: staticPages,
		InitialPages:         initialPages,
		resident:             make(map[uint64]struct{}),
	}
	for p := uint64(0); p < initialPages; p++ {
		m.resident[p] = struct{}{}
	}
	m.PageAllocs = initialPages
	return m
}

// Touch records an access to the page containing addr. A first touch is a
// demand-paging allocation; the Migrator may additionally decide it
// triggers a migration event.
func (m *PagingModel) Touch(addr uint64) {
	page := addr / PageSize
	if _, ok := m.resident[page]; ok {
		return
	}
	m.resident[page] = struct{}{}
	m.PageAllocs++
	if m.Migrator != nil && m.Migrator.Due(m.PageAllocs) {
		m.PageMoves++
	}
}

// ResidentPages returns the current resident set size in pages.
func (m *PagingModel) ResidentPages() uint64 { return uint64(len(m.resident)) }
