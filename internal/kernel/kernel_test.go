package kernel

import (
	"testing"
	"testing/quick"

	"carat/internal/guard"
)

func TestPhysMemBounds(t *testing.T) {
	m := NewPhysMem(2 * PageSize)
	if m.Size() != 2*PageSize {
		t.Fatalf("size = %d", m.Size())
	}
	if m.InBounds(0, 8) {
		t.Error("address 0 must be unmapped")
	}
	if !m.InBounds(8, 8) {
		t.Error("low address should be in bounds")
	}
	if m.InBounds(2*PageSize-4, 8) {
		t.Error("straddling end should be out of bounds")
	}
	if m.InBounds(^uint64(0)-4, 8) {
		t.Error("wraparound not caught")
	}
}

func TestPhysMemRoundTrip(t *testing.T) {
	m := NewPhysMem(PageSize)
	m.Store64(64, 0xdeadbeefcafef00d)
	if got := m.Load64(64); got != 0xdeadbeefcafef00d {
		t.Errorf("Load64 = %#x", got)
	}
	for _, n := range []int{1, 2, 4, 8} {
		m.StoreN(128, 0xA5A5A5A5A5A5A5A5, n)
		want := uint64(0xA5A5A5A5A5A5A5A5)
		if n < 8 {
			want &= 1<<(8*uint(n)) - 1
		}
		if got := m.LoadN(128, n); got != want {
			t.Errorf("LoadN(%d) = %#x, want %#x", n, got, want)
		}
	}
}

func TestPhysMemMove(t *testing.T) {
	m := NewPhysMem(4 * PageSize)
	if err := m.WriteAt(PageSize, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Move(3*PageSize, PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	b, _ := m.ReadAt(3*PageSize, 4)
	if b[0] != 1 || b[3] != 4 {
		t.Error("moved data wrong")
	}
	b, _ = m.ReadAt(PageSize, 4)
	if b[0] != 0 {
		t.Error("source not zeroed")
	}
	if err := m.Move(PageSize+8, PageSize, 64); err == nil {
		t.Error("overlapping move accepted")
	}
}

func TestPageAllocatorBasic(t *testing.T) {
	a := NewPageAllocator(64)
	if a.FreePages() != 63 { // page 0 reserved
		t.Fatalf("free = %d, want 63", a.FreePages())
	}
	addr, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if addr == 0 || addr%PageSize != 0 {
		t.Fatalf("bad allocation address %#x", addr)
	}
	if a.FreePages() != 59 {
		t.Errorf("free after alloc = %d", a.FreePages())
	}
	if !a.Reserved(addr) || !a.Reserved(addr+3*PageSize) {
		t.Error("allocated pages not marked reserved")
	}
	if err := a.Free(addr, 4); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 63 {
		t.Errorf("free after free = %d", a.FreePages())
	}
	if err := a.Free(addr, 4); err == nil {
		t.Error("double free accepted")
	}
}

func TestPageAllocatorContiguity(t *testing.T) {
	a := NewPageAllocator(16)
	// Fragment: allocate all, free alternating single pages.
	var addrs []uint64
	for {
		addr, err := a.Alloc(1)
		if err != nil {
			break
		}
		addrs = append(addrs, addr)
	}
	for i := 0; i < len(addrs); i += 2 {
		if err := a.Free(addrs[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(2); err == nil {
		t.Error("contiguous alloc from fragmented memory should fail")
	}
	if _, err := a.Alloc(1); err != nil {
		t.Error("single page should still be available")
	}
}

func TestFragStatsOnFragmentedArena(t *testing.T) {
	a := NewPageAllocator(16)
	// Same fragmentation as TestPageAllocatorContiguity: all 15 usable
	// pages allocated singly, then every other one freed — pages 1, 3,
	// ..., 15 become eight isolated free pages.
	var addrs []uint64
	for {
		addr, err := a.Alloc(1)
		if err != nil {
			break
		}
		addrs = append(addrs, addr)
	}
	for i := 0; i < len(addrs); i += 2 {
		if err := a.Free(addrs[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	fs := a.FragStats()
	if fs.TotalPages != 16 || fs.FreePages != 8 {
		t.Fatalf("stats = %+v, want 16 total / 8 free", fs)
	}
	if fs.FreeRuns != 8 || fs.LargestRun != 1 {
		t.Errorf("runs = %d largest = %d, want 8 single-page runs", fs.FreeRuns, fs.LargestRun)
	}
	if len(fs.RunHist) != 1 || fs.RunHist[0] != 8 {
		t.Errorf("run histogram = %v, want [8]", fs.RunHist)
	}
	if fs.Score != 1-1.0/8 {
		t.Errorf("score = %v, want %v", fs.Score, 1-1.0/8)
	}

	// Compacting by hand (free everything) collapses to one run.
	for i := 1; i < len(addrs); i += 2 {
		if err := a.Free(addrs[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	fs = a.FragStats()
	if fs.FreeRuns != 1 || fs.LargestRun != 15 || fs.Score != 0 {
		t.Errorf("after compaction: %+v, want one 15-page run, score 0", fs)
	}
	if len(fs.RunHist) != 4 || fs.RunHist[3] != 1 {
		t.Errorf("run histogram = %v, want one run in the [8,16) bucket", fs.RunHist)
	}
}

func TestFreeErrorPaths(t *testing.T) {
	a := NewPageAllocator(16)
	addr, err := a.Alloc(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr+8, 1); err == nil {
		t.Error("unaligned free accepted")
	}
	if err := a.Free(addr, 20); err == nil {
		t.Error("out-of-range free accepted")
	}
	if err := a.Free(15*PageSize, 2); err == nil {
		t.Error("free straddling memory end accepted")
	}
	if err := a.Free(addr, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(addr, 2); err == nil {
		t.Error("double free accepted")
	}
	// A failed free must not corrupt the free count.
	if a.FreePages() != 15 {
		t.Errorf("free pages = %d, want 15", a.FreePages())
	}
}

func TestIsolationExcludesWindowFromAllocation(t *testing.T) {
	a := NewPageAllocator(64)
	a.Isolate(1, 32) // pages [1,33) off limits
	for i := 0; i < 4; i++ {
		addr, err := a.Alloc(4)
		if err != nil {
			t.Fatal(err)
		}
		if p := addr / PageSize; p < 33 {
			t.Errorf("allocation %d landed on isolated page %d", i, p)
		}
	}
	// The isolated window still counts as free, so a too-large request
	// fails on contiguity, not accounting.
	if _, err := a.Alloc(32); err == nil {
		t.Error("allocation inside isolated window succeeded")
	}
	a.ClearIsolation()
	if _, err := a.Alloc(32); err != nil {
		t.Errorf("allocation after ClearIsolation failed: %v", err)
	}
}

func TestPreferenceSteersAllocation(t *testing.T) {
	a := NewPageAllocator(64)
	a.Prefer(40, 24) // prefer the upper third
	addr, err := a.Alloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if p := addr / PageSize; p < 40 {
		t.Errorf("preferred allocation landed at page %d, want >= 40", p)
	}
	// A request larger than the preferred window falls back to the rest.
	big, err := a.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if p := big / PageSize; p >= 40 {
		t.Errorf("oversized allocation landed at page %d inside the window", p)
	}
	a.ClearPreference()
	if _, err := a.Alloc(1); err != nil {
		t.Fatal(err)
	}
}

func TestPageAllocatorExhaustion(t *testing.T) {
	a := NewPageAllocator(8)
	if _, err := a.Alloc(8); err == nil { // only 7 available
		t.Error("overcommit accepted")
	}
	if _, err := a.Alloc(7); err != nil {
		t.Errorf("full allocation failed: %v", err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("allocation from empty allocator succeeded")
	}
}

func TestQuickAllocatorNeverHandsOutPageZeroOrOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewPageAllocator(256)
		owned := map[uint64]bool{}
		for _, s := range sizes {
			n := uint64(s%7) + 1
			addr, err := a.Alloc(n)
			if err != nil {
				continue
			}
			if addr == 0 {
				return false
			}
			for p := addr / PageSize; p < addr/PageSize+n; p++ {
				if owned[p] {
					return false // overlap!
				}
				owned[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGrantAndReleaseRegion(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	base, err := p.GrantRegion(10000, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Regions.Check(base, 10000, guard.PermRead) {
		t.Error("granted region not readable")
	}
	if !p.Regions.Check(base+PageSize*2, 8, guard.PermWrite) {
		t.Error("granted region not writable")
	}
	// 10000 bytes → 3 pages.
	if k.Stats.PageAllocs.Get() != 3 {
		t.Errorf("PageAllocs = %d, want 3", k.Stats.PageAllocs.Get())
	}
	if err := p.ReleaseRegion(base, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	if p.Regions.Check(base, 8, guard.PermRead) {
		t.Error("released region still accessible")
	}
}

func TestRequestProtectWithoutHandler(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	base, err := p.GrantRegion(2*PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RequestProtect(base, PageSize, guard.PermRead); err != nil {
		t.Fatal(err)
	}
	if p.Regions.Check(base, 8, guard.PermWrite) {
		t.Error("write still allowed after protect")
	}
	if !p.Regions.Check(base+PageSize, 8, guard.PermWrite) {
		t.Error("unprotected half lost write permission")
	}
	if k.Stats.ProtChanges.Get() != 1 {
		t.Errorf("ProtChanges = %d", k.Stats.ProtChanges.Get())
	}
}

// fakeHandler approves every move by copying pages verbatim.
type fakeHandler struct {
	k *Kernel
	p *Process
}

func (h *fakeHandler) HandleMove(req *MoveRequest) (MoveResult, error) {
	dst, err := req.NegotiateDst(req.Src, req.Pages)
	if err != nil {
		return MoveResult{}, err
	}
	if err := h.k.Mem.Move(dst, req.Src, req.Pages*PageSize); err != nil {
		return MoveResult{}, err
	}
	if err := req.RetireSrc(req.Src, req.Pages); err != nil {
		return MoveResult{}, err
	}
	return MoveResult{Src: req.Src, Dst: dst, Pages: req.Pages}, nil
}

func (h *fakeHandler) HandleProtect(apply func() error) error { return apply() }

func TestRequestMoveProtocol(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	p.Handler = &fakeHandler{k: k, p: p}
	base, err := p.GrantRegion(4*PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	k.Mem.Store64(base+16, 0x1234)

	res, err := p.RequestMove(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dst == base {
		t.Error("move did not relocate")
	}
	if got := k.Mem.Load64(res.Dst + 16); got != 0x1234 {
		t.Errorf("data not moved: %#x", got)
	}
	// Old first page removed from regions; rest still there.
	if p.Regions.Check(base, 8, guard.PermRead) {
		t.Error("vacated page still permitted")
	}
	if !p.Regions.Check(base+PageSize, 8, guard.PermRead) {
		t.Error("unmoved pages lost permission")
	}
	if !p.Regions.Check(res.Dst, 8, guard.PermRead) {
		t.Error("destination pages not permitted")
	}
	if k.Stats.PageMoves.Get() != 1 {
		t.Errorf("PageMoves = %d", k.Stats.PageMoves.Get())
	}
}

func TestPoisonEncoding(t *testing.T) {
	for _, kind := range []PoisonKind{PoisonSwapped, PoisonDemand, PoisonNull} {
		a := Poison(kind)
		if !IsPoison(a) {
			t.Errorf("Poison(%d) not detected as poison", kind)
		}
	}
	if IsPoison(0x7fff_ffff_ffff) {
		t.Error("ordinary address flagged as poison")
	}
}

func TestPagingModelDemandPaging(t *testing.T) {
	m := NewPagingModel(100, 10)
	if m.PageAllocs != 10 {
		t.Fatalf("initial allocs = %d", m.PageAllocs)
	}
	// Touch the already-resident pages: no new allocations.
	for p := uint64(0); p < 10; p++ {
		m.Touch(p * PageSize)
	}
	if m.PageAllocs != 10 {
		t.Errorf("resident touches allocated: %d", m.PageAllocs)
	}
	// Touch 50 new pages.
	for p := uint64(100); p < 150; p++ {
		m.Touch(p*PageSize + 123)
	}
	if m.PageAllocs != 60 {
		t.Errorf("allocs = %d, want 60", m.PageAllocs)
	}
	if m.ResidentPages() != 60 {
		t.Errorf("resident = %d, want 60", m.ResidentPages())
	}
	if m.PageMoves != 0 {
		t.Errorf("moves = %d, want 0 with no migration policy", m.PageMoves)
	}
}

func TestPagingModelMigrations(t *testing.T) {
	m := NewPagingModel(100, 0)
	// Period-25 migrator through the policy interface (mmpolicy's
	// RareMigration has the same firing pattern for unit increments).
	m.Migrator = MigratorFunc(func(allocs uint64) bool { return allocs%25 == 0 })
	for p := uint64(0); p < 100; p++ {
		m.Touch(p * PageSize)
	}
	if m.PageMoves != 4 {
		t.Errorf("moves = %d, want 4 (100 allocs / period 25)", m.PageMoves)
	}
}

func TestMMUNotifierStream(t *testing.T) {
	k := New(1 << 20)
	p := k.NewProcess()
	p.Handler = &fakeHandler{k: k, p: p}
	log := &EventLog{}
	p.RegisterNotifier(log)

	base, err := p.GrantRegion(4*PageSize, guard.PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if log.Count(EventAllocate) != 1 {
		t.Errorf("allocate events = %d, want 1", log.Count(EventAllocate))
	}
	if err := p.RequestProtect(base, PageSize, guard.PermRead); err != nil {
		t.Fatal(err)
	}
	if log.Count(EventInvalidateRange) != 1 {
		t.Errorf("invalidate events = %d, want 1", log.Count(EventInvalidateRange))
	}
	res, err := p.RequestMove(base+PageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A move produces a PTE-change event plus the source retirement's
	// invalidation (the two notification kinds the paper's methodology
	// distinguishes, §3).
	if log.Count(EventPTEChange) != 1 {
		t.Errorf("pte-change events = %d, want 1", log.Count(EventPTEChange))
	}
	var ptev MMUEvent
	for _, ev := range log.Events {
		if ev.Kind == EventPTEChange {
			ptev = ev
		}
	}
	if ptev.Base != res.Src || ptev.NewPA != res.Dst {
		t.Errorf("pte-change event = %+v, want src %#x dst %#x", ptev, res.Src, res.Dst)
	}
	// Functional notifier adapter works too.
	calls := 0
	p.RegisterNotifier(NotifierFunc(func(MMUEvent) { calls++ }))
	if _, err := p.GrantRegion(PageSize, guard.PermRead); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("func notifier calls = %d, want 1", calls)
	}
}
