package kernel

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"carat/internal/guard"
)

// testLimiter is a minimal Limiter: a hard page cap shared by every
// process it is installed on (the shape caratd uses per tenant).
type testLimiter struct {
	mu         sync.Mutex
	live       uint64
	max        uint64
	rejections int
}

func (l *testLimiter) ReservePages(n uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.live+n > l.max {
		l.rejections++
		return fmt.Errorf("test: %d+%d pages over cap %d: %w", l.live, n, l.max, ErrQuota)
	}
	l.live += n
	return nil
}

func (l *testLimiter) ReleasePages(n uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > l.live {
		l.live = 0
		return
	}
	l.live -= n
}

// TestConcurrentProcessLifecycle creates and tears down processes from
// many goroutines over ONE shared physical memory — the caratd serving
// pattern. Each goroutine stamps a unique byte into every page it was
// granted and re-verifies before teardown, so any allocator overlap
// between concurrently-live processes shows up as corruption (and the
// -race run catches unsynchronized allocator state).
func TestConcurrentProcessLifecycle(t *testing.T) {
	k := New(1 << 26)
	initialFree := k.Alloc.FreePages()

	const goroutines = 16
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stamp := byte(g + 1)
			for i := 0; i < iters; i++ {
				proc := k.NewProcess()
				var bases []uint64
				var lens []uint64
				for r := 0; r < 1+(g+i)%3; r++ {
					size := uint64(1+(g+i+r)%4) * PageSize
					base, err := proc.GrantRegion(size, guard.PermRW)
					if err != nil {
						t.Errorf("g%d i%d: grant: %v", g, i, err)
						return
					}
					pages := size / PageSize
					buf := make([]byte, PageSize)
					for b := range buf {
						buf[b] = stamp
					}
					for pg := uint64(0); pg < pages; pg++ {
						if err := k.Mem.WriteAt(base+pg*PageSize, buf); err != nil {
							t.Errorf("g%d i%d: write: %v", g, i, err)
							return
						}
					}
					bases, lens = append(bases, base), append(lens, size)
				}
				// Re-read everything: another process being granted an
				// overlapping frame would have clobbered our stamp.
				for r, base := range bases {
					for off := uint64(0); off < lens[r]; off += PageSize {
						got, err := k.Mem.ReadAt(base+off, 8)
						if err != nil {
							t.Errorf("g%d i%d: read: %v", g, i, err)
							return
						}
						if got[0] != stamp {
							t.Errorf("g%d i%d: frame %#x stamped %d, want %d (allocator overlap)",
								g, i, base+off, got[0], stamp)
							return
						}
					}
				}
				if err := proc.ReleaseAll(); err != nil {
					t.Errorf("g%d i%d: teardown: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if free := k.Alloc.FreePages(); free != initialFree {
		t.Errorf("free pages after teardown = %d, want %d (leak)", free, initialFree)
	}
}

// TestConcurrentQuotaExhaustion drives one shared limiter to its cap from
// many goroutines at once: reservations must never overshoot the cap,
// every rejection must be ErrQuota (not ErrNoMemory — physical memory is
// ample), and releasing everything must return the accounting to zero.
func TestConcurrentQuotaExhaustion(t *testing.T) {
	k := New(1 << 24)
	initialFree := k.Alloc.FreePages()
	lim := &testLimiter{max: 64}

	const goroutines = 8
	procs := make([]*Process, goroutines)
	quotaErrs := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			proc := k.NewProcess()
			proc.SetLimiter(lim)
			procs[g] = proc
			// Grab 8-page regions until the shared quota rejects us; all
			// goroutines hold their grants, so exhaustion is guaranteed.
			for {
				_, err := proc.GrantRegion(8*PageSize, guard.PermRW)
				if err == nil {
					continue
				}
				if !errors.Is(err, ErrQuota) {
					t.Errorf("g%d: got %v, want ErrQuota", g, err)
				}
				if errors.Is(err, ErrNoMemory) {
					t.Errorf("g%d: quota rejection misreported as ErrNoMemory: %v", g, err)
				}
				quotaErrs[g]++
				return
			}
		}(g)
	}
	wg.Wait()

	lim.mu.Lock()
	live, rejections := lim.live, lim.rejections
	lim.mu.Unlock()
	if live > 64 {
		t.Errorf("limiter reserved %d pages, cap is 64 (overshoot)", live)
	}
	if rejections == 0 {
		t.Error("quota never rejected despite 8 goroutines contending for 64 pages")
	}
	for g, n := range quotaErrs {
		if n == 0 {
			t.Errorf("g%d never hit the quota", g)
		}
	}

	var granted uint64
	for _, proc := range procs {
		for _, r := range proc.Regions.Regions() {
			granted += r.Len / PageSize
		}
	}
	if granted != live {
		t.Errorf("limiter says %d live pages, region sets hold %d", live, granted)
	}

	for _, proc := range procs {
		if err := proc.ReleaseAll(); err != nil {
			t.Errorf("teardown: %v", err)
		}
	}
	lim.mu.Lock()
	live = lim.live
	lim.mu.Unlock()
	if live != 0 {
		t.Errorf("limiter live = %d after teardown, want 0", live)
	}
	if free := k.Alloc.FreePages(); free != initialFree {
		t.Errorf("free pages after teardown = %d, want %d (leak)", free, initialFree)
	}
}

// TestPartialLoadTeardown covers the mid-load failure path: a process
// whose later grant is rejected by quota must still return every page it
// did get via ReleaseAll, and a second ReleaseAll must be a no-op.
func TestPartialLoadTeardown(t *testing.T) {
	k := New(1 << 22)
	initialFree := k.Alloc.FreePages()
	lim := &testLimiter{max: 12}

	proc := k.NewProcess()
	proc.SetLimiter(lim)
	if _, err := proc.GrantRegion(8*PageSize, guard.PermRW); err != nil {
		t.Fatalf("first grant: %v", err)
	}
	if _, err := proc.GrantRegion(8*PageSize, guard.PermRW); !errors.Is(err, ErrQuota) {
		t.Fatalf("second grant: got %v, want ErrQuota", err)
	}
	if err := proc.ReleaseAll(); err != nil {
		t.Fatalf("teardown: %v", err)
	}
	if err := proc.ReleaseAll(); err != nil {
		t.Fatalf("second teardown should be a no-op, got: %v", err)
	}
	if lim.live != 0 {
		t.Errorf("limiter live = %d, want 0", lim.live)
	}
	if free := k.Alloc.FreePages(); free != initialFree {
		t.Errorf("free pages = %d, want %d", free, initialFree)
	}
}
