package kernel

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoMemory is wrapped by every allocation failure caused by exhaustion
// or fragmentation of physical memory (as opposed to caller mistakes like
// a zero-page request). The caratd admission layer matches on it to map
// transient memory pressure to 429 responses.
var ErrNoMemory = errors.New("kernel: out of physical memory")

// PageAllocator hands out physical page frames. It supports contiguous
// multi-page allocation with a first-fit scan over a bitmap, which is all
// the CARAT kernel needs: region-sized contiguous grants for code, data,
// stack, and heap, plus single-page allocations for demand paging.
//
// All methods are safe for concurrent use: one allocator is shared by
// every process of a machine, and under caratd processes are created and
// torn down from concurrent request goroutines.
type PageAllocator struct {
	mu      sync.Mutex
	bitmap  []uint64 // 1 = in use
	pages   uint64
	free    uint64
	scanPos uint64 // next-fit hint

	// isoStart/isoLen, when isoLen != 0, exclude a page window from
	// allocation: free pages inside it are treated as busy by Alloc. This
	// models Linux's MIGRATE_ISOLATE pageblock isolation — a compaction
	// daemon isolates its target window so move destinations cannot land
	// inside the run it is trying to assemble.
	isoStart, isoLen uint64
	// prefStart/prefLen, when prefLen != 0, is a window Alloc tries first
	// (NUMA home-node placement preference).
	prefStart, prefLen uint64
}

// NewPageAllocator manages n pages; page 0 is permanently reserved so that
// physical address 0 (null) is never handed out.
func NewPageAllocator(n uint64) *PageAllocator {
	a := &PageAllocator{
		bitmap: make([]uint64, (n+63)/64),
		pages:  n,
		free:   n,
	}
	a.mark(0, true)
	a.free--
	return a
}

// FreePages returns the number of currently free page frames.
func (a *PageAllocator) FreePages() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free
}

// TotalPages returns the managed page count.
func (a *PageAllocator) TotalPages() uint64 { return a.pages }

func (a *PageAllocator) inUse(p uint64) bool { return a.bitmap[p/64]&(1<<(p%64)) != 0 }

func (a *PageAllocator) mark(p uint64, used bool) {
	if used {
		a.bitmap[p/64] |= 1 << (p % 64)
	} else {
		a.bitmap[p/64] &^= 1 << (p % 64)
	}
}

// Alloc grabs n contiguous page frames and returns the physical address of
// the first.
func (a *PageAllocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("kernel: zero-page allocation")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > a.free {
		return 0, fmt.Errorf("%w (%d pages requested, %d free)", ErrNoMemory, n, a.free)
	}
	try := func(from, to uint64) (uint64, bool) {
		if to > a.pages {
			to = a.pages
		}
		var run, start uint64
		for p := from; p < to; p++ {
			if a.blocked(p) {
				run = 0
				continue
			}
			if run == 0 {
				start = p
			}
			run++
			if run == n {
				return start, true
			}
		}
		return 0, false
	}
	var start uint64
	ok := false
	if a.prefLen != 0 {
		start, ok = try(a.prefStart, a.prefStart+a.prefLen)
	}
	if !ok {
		start, ok = try(a.scanPos, a.pages)
	}
	if !ok {
		start, ok = try(1, a.scanPos+n)
	}
	if !ok {
		return 0, fmt.Errorf("%w: no contiguous run of %d pages", ErrNoMemory, n)
	}
	for p := start; p < start+n; p++ {
		a.mark(p, true)
	}
	a.free -= n
	a.scanPos = start + n
	return start * PageSize, nil
}

// Free releases n contiguous page frames starting at physical address addr
// (which must be page-aligned).
func (a *PageAllocator) Free(addr, n uint64) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("kernel: free of unaligned address %#x", addr)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	start := addr / PageSize
	if start+n > a.pages {
		return fmt.Errorf("kernel: free beyond memory end")
	}
	for p := start; p < start+n; p++ {
		if !a.inUse(p) {
			return fmt.Errorf("kernel: double free of page %d", p)
		}
	}
	for p := start; p < start+n; p++ {
		a.mark(p, false)
	}
	a.free += n
	return nil
}

// Reserved reports whether the page containing addr is allocated.
func (a *PageAllocator) Reserved(addr uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	p := addr / PageSize
	return p < a.pages && a.inUse(p)
}

// blocked reports whether Alloc must skip page p: in use, or free but
// inside the isolation window.
func (a *PageAllocator) blocked(p uint64) bool {
	if a.inUse(p) {
		return true
	}
	return a.isoLen != 0 && p >= a.isoStart && p < a.isoStart+a.isoLen
}

// Isolate excludes the page window [start, start+pages) from allocation
// until ClearIsolation: free pages inside it are skipped by Alloc. Frees
// are unaffected, so a compaction pass can drain the window while keeping
// new allocations (including move destinations) out of it.
func (a *PageAllocator) Isolate(start, pages uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.isoStart, a.isoLen = start, pages
}

// ClearIsolation lifts the isolation window.
func (a *PageAllocator) ClearIsolation() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.isoLen = 0
}

// Prefer makes Alloc try the page window [start, start+pages) before the
// regular next-fit scan, until ClearPreference. Allocations that do not
// fit the window fall back to the whole arena.
func (a *PageAllocator) Prefer(start, pages uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prefStart, a.prefLen = start, pages
}

// ClearPreference lifts the placement preference.
func (a *PageAllocator) ClearPreference() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prefStart, a.prefLen = 0, 0
}

// FragStats summarizes external fragmentation from the raw bitmap (the
// isolation window does not count as busy here): the free-run histogram
// and largest contiguous free run a defragmentation policy steers by.
type FragStats struct {
	TotalPages uint64 `json:"total_pages"`
	FreePages  uint64 `json:"free_pages"`
	// FreeRuns counts maximal runs of contiguous free pages.
	FreeRuns uint64 `json:"free_runs"`
	// LargestRun is the longest contiguous free run, in pages.
	LargestRun uint64 `json:"largest_run"`
	// RunHist[i] counts free runs with length in [2^i, 2^(i+1)).
	RunHist []uint64 `json:"run_hist"`
	// Score is 1 - LargestRun/FreePages: 0 when all free memory is one
	// run, approaching 1 as free memory shatters into single pages.
	Score float64 `json:"score"`
}

// FragStats scans the bitmap and returns the current fragmentation
// picture.
func (a *PageAllocator) FragStats() FragStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	fs := FragStats{TotalPages: a.pages, FreePages: a.free}
	var run uint64
	endRun := func() {
		if run == 0 {
			return
		}
		fs.FreeRuns++
		if run > fs.LargestRun {
			fs.LargestRun = run
		}
		bucket := 0
		for r := run; r > 1; r >>= 1 {
			bucket++
		}
		for len(fs.RunHist) <= bucket {
			fs.RunHist = append(fs.RunHist, 0)
		}
		fs.RunHist[bucket]++
		run = 0
	}
	for p := uint64(0); p < a.pages; p++ {
		if a.inUse(p) {
			endRun()
		} else {
			run++
		}
	}
	endRun()
	if fs.FreePages > 0 {
		fs.Score = 1 - float64(fs.LargestRun)/float64(fs.FreePages)
	}
	return fs
}
