package kernel

import (
	"fmt"
)

// PageAllocator hands out physical page frames. It supports contiguous
// multi-page allocation with a first-fit scan over a bitmap, which is all
// the CARAT kernel needs: region-sized contiguous grants for code, data,
// stack, and heap, plus single-page allocations for demand paging.
type PageAllocator struct {
	bitmap  []uint64 // 1 = in use
	pages   uint64
	free    uint64
	scanPos uint64 // next-fit hint
}

// NewPageAllocator manages n pages; page 0 is permanently reserved so that
// physical address 0 (null) is never handed out.
func NewPageAllocator(n uint64) *PageAllocator {
	a := &PageAllocator{
		bitmap: make([]uint64, (n+63)/64),
		pages:  n,
		free:   n,
	}
	a.mark(0, true)
	a.free--
	return a
}

// FreePages returns the number of currently free page frames.
func (a *PageAllocator) FreePages() uint64 { return a.free }

// TotalPages returns the managed page count.
func (a *PageAllocator) TotalPages() uint64 { return a.pages }

func (a *PageAllocator) inUse(p uint64) bool { return a.bitmap[p/64]&(1<<(p%64)) != 0 }

func (a *PageAllocator) mark(p uint64, used bool) {
	if used {
		a.bitmap[p/64] |= 1 << (p % 64)
	} else {
		a.bitmap[p/64] &^= 1 << (p % 64)
	}
}

// Alloc grabs n contiguous page frames and returns the physical address of
// the first.
func (a *PageAllocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("kernel: zero-page allocation")
	}
	if n > a.free {
		return 0, fmt.Errorf("kernel: out of memory (%d pages requested, %d free)", n, a.free)
	}
	try := func(from, to uint64) (uint64, bool) {
		if to > a.pages {
			to = a.pages
		}
		var run, start uint64
		for p := from; p < to; p++ {
			if a.inUse(p) {
				run = 0
				continue
			}
			if run == 0 {
				start = p
			}
			run++
			if run == n {
				return start, true
			}
		}
		return 0, false
	}
	start, ok := try(a.scanPos, a.pages)
	if !ok {
		start, ok = try(1, a.scanPos+n)
	}
	if !ok {
		return 0, fmt.Errorf("kernel: no contiguous run of %d pages", n)
	}
	for p := start; p < start+n; p++ {
		a.mark(p, true)
	}
	a.free -= n
	a.scanPos = start + n
	return start * PageSize, nil
}

// Free releases n contiguous page frames starting at physical address addr
// (which must be page-aligned).
func (a *PageAllocator) Free(addr, n uint64) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("kernel: free of unaligned address %#x", addr)
	}
	start := addr / PageSize
	if start+n > a.pages {
		return fmt.Errorf("kernel: free beyond memory end")
	}
	for p := start; p < start+n; p++ {
		if !a.inUse(p) {
			return fmt.Errorf("kernel: double free of page %d", p)
		}
	}
	for p := start; p < start+n; p++ {
		a.mark(p, false)
	}
	a.free += n
	return nil
}

// Reserved reports whether the page containing addr is allocated.
func (a *PageAllocator) Reserved(addr uint64) bool {
	p := addr / PageSize
	return p < a.pages && a.inUse(p)
}
