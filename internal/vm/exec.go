package vm

import (
	"fmt"
	"math"

	"carat/internal/guard"
	"carat/internal/ir"
	"carat/internal/kernel"
	"carat/internal/obs"
	"carat/internal/passes"
	"carat/internal/runtime"
)

// Per-instruction base cycle costs. Simple in-order-ish model: ALU ops are
// single-cycle, multiplies and divides cost their usual latencies, loads
// cost an L1 hit. The TLB hierarchy (traditional mode) and the guard
// evaluator (CARAT mode) add their own cycles on top.
var opCycles = [...]uint64{
	ir.OpAdd: 1, ir.OpSub: 1, ir.OpMul: 3, ir.OpSDiv: 20, ir.OpSRem: 20,
	ir.OpUDiv: 20, ir.OpURem: 20,
	ir.OpAnd: 1, ir.OpOr: 1, ir.OpXor: 1, ir.OpShl: 1, ir.OpLShr: 1, ir.OpAShr: 1,
	ir.OpFAdd: 3, ir.OpFSub: 3, ir.OpFMul: 4, ir.OpFDiv: 13,
	ir.OpICmp: 1, ir.OpFCmp: 2,
	ir.OpTrunc: 1, ir.OpZExt: 1, ir.OpSExt: 1, ir.OpPtrToInt: 1, ir.OpIntToPtr: 1,
	ir.OpSIToFP: 4, ir.OpFPToSI: 4,
	ir.OpAlloca: 1, ir.OpLoad: 4, ir.OpStore: 1, ir.OpGEP: 1,
	ir.OpPhi: 0, ir.OpSelect: 1, ir.OpCall: 3,
	ir.OpBr: 1, ir.OpCondBr: 1, ir.OpRet: 1, ir.OpUnreachable: 0,
	ir.OpGuard: 0, // charged through the guard evaluator
}

// callFunc interprets one function activation on thread t.
func (v *VM) callFunc(t *thread, f *ir.Func, args []uint64) (uint64, error) {
	if f.IsDecl() {
		return v.callBuiltin(t, f, args)
	}
	fi := v.funcs[f]
	fi.prof.Calls++
	fr := &frame{fn: f, fi: fi, regs: make([]uint64, fi.nSlots), spSave: t.sp}
	for i := range f.Params {
		fr.regs[fi.slotOf[f.Params[i]]] = args[i]
	}
	t.frames = append(t.frames, fr)
	defer func() {
		t.frames = t.frames[:len(t.frames)-1]
		// Returning destroys this frame's allocas: the runtime must
		// forget their allocation entries before the stack space is
		// reused by a later call at the same depth.
		if t.sp < fr.spSave {
			v.rt.UntrackStackRange(t.sp, fr.spSave)
		}
		t.sp = fr.spSave
	}()
	if len(t.frames) > 10000 {
		return 0, fmt.Errorf("vm: call stack overflow in @%s", f.Name)
	}

	block := f.Entry()
	var prev *ir.Block
	for {
		if err := t.safepoint(); err != nil {
			return 0, err
		}
		// Phase 1: evaluate phis in parallel against the incoming edge.
		phis := block.Phis()
		if len(phis) > 0 {
			vals := make([]uint64, len(phis))
			for i, phi := range phis {
				found := false
				for j, pb := range phi.Preds {
					if pb == prev {
						vals[i] = v.val(fr, phi.Args[j])
						found = true
						break
					}
				}
				if !found {
					prevName := "<entry>"
					if prev != nil {
						prevName = prev.Name
					}
					return 0, fmt.Errorf("vm: phi in ^%s has no incoming for ^%s", block.Name, prevName)
				}
			}
			for i, phi := range phis {
				fr.regs[fi.slotOf[phi]] = vals[i]
			}
			v.Instrs += uint64(len(phis))
			fi.prof.Instrs += uint64(len(phis))
		}

		for _, in := range block.Instrs[len(phis):] {
			v.Instrs++
			c := opCycles[in.Op]
			v.Cycles += c
			v.Prof.Cat[obs.CatCompute] += c
			fi.prof.Instrs++
			fi.prof.Cycles += c
			switch in.Op {
			case ir.OpBr:
				prev, block = block, in.Succs[0]
			case ir.OpCondBr:
				if v.val(fr, in.Args[0])&1 != 0 {
					prev, block = block, in.Succs[0]
				} else {
					prev, block = block, in.Succs[1]
				}
			case ir.OpRet:
				if len(in.Args) == 1 {
					return v.val(fr, in.Args[0]), nil
				}
				return 0, nil
			case ir.OpUnreachable:
				return 0, fmt.Errorf("vm: reached unreachable in @%s", f.Name)
			default:
				if err := v.execInstr(t, fr, in); err != nil {
					return 0, err
				}
				continue
			}
			break // terminator taken: next block
		}
	}
}

// val evaluates an operand. Globals and functions are resolved live so
// that kernel-initiated moves are observed immediately.
func (v *VM) val(fr *frame, x ir.Value) uint64 {
	switch c := x.(type) {
	case *ir.Const:
		if c.Typ.IsFloat() {
			return math.Float64bits(c.Float)
		}
		return uint64(c.Int)
	case *ir.Global:
		return v.globalAddr[c]
	case *ir.Func:
		return v.codeOf[c]
	default:
		return fr.regs[fr.fi.slotOf[x]]
	}
}

func (v *VM) execInstr(t *thread, fr *frame, in *ir.Instr) error {
	fi := fr.fi
	set := func(val uint64) {
		if in.Op.HasResult() && in.Typ != ir.Void {
			fr.regs[fi.slotOf[in]] = val
		}
	}
	switch {
	case in.Op.IsBinary():
		a, b := v.val(fr, in.Args[0]), v.val(fr, in.Args[1])
		if in.Op >= ir.OpFAdd && in.Op <= ir.OpFDiv {
			x, y := math.Float64frombits(a), math.Float64frombits(b)
			var r float64
			switch in.Op {
			case ir.OpFAdd:
				r = x + y
			case ir.OpFSub:
				r = x - y
			case ir.OpFMul:
				r = x * y
			case ir.OpFDiv:
				r = x / y
			}
			set(math.Float64bits(r))
			return nil
		}
		r, err := intBinop(in.Op, a, b, in.Typ.Bits)
		if err != nil {
			return fmt.Errorf("vm: @%s: %s: %w", fr.fn.Name, in, err)
		}
		set(r)
		return nil

	case in.Op == ir.OpICmp:
		a, b := v.val(fr, in.Args[0]), v.val(fr, in.Args[1])
		// Unsigned predicates compare the width-masked representation;
		// values are stored sign-extended, which would corrupt them.
		if in.Pred >= ir.PredULT {
			if t := in.Args[0].Type(); t.IsInt() && t.Bits < 64 {
				a, b = maskToWidth(a, t.Bits), maskToWidth(b, t.Bits)
			}
		}
		set(boolBit(icmp(in.Pred, a, b)))
		return nil

	case in.Op == ir.OpFCmp:
		x := math.Float64frombits(v.val(fr, in.Args[0]))
		y := math.Float64frombits(v.val(fr, in.Args[1]))
		set(boolBit(fcmp(in.Pred, x, y)))
		return nil

	case in.Op.IsCast():
		a := v.val(fr, in.Args[0])
		switch in.Op {
		case ir.OpTrunc:
			// Values are stored sign-extended per their width.
			set(uint64(signExtend(a, in.Typ.Bits)))
		case ir.OpZExt:
			// Zero-extension reads the source's width-masked bits.
			set(maskToWidth(a, in.Args[0].Type().Bits))
		case ir.OpSExt:
			set(uint64(signExtend(a, in.Args[0].Type().Bits)))
		case ir.OpPtrToInt, ir.OpIntToPtr:
			set(a)
		case ir.OpSIToFP:
			set(math.Float64bits(float64(int64(a))))
		case ir.OpFPToSI:
			set(maskSigned(int64(math.Float64frombits(a)), in.Typ.Bits))
		}
		return nil

	case in.Op == ir.OpAlloca:
		count := int64(v.val(fr, in.Args[0]))
		size := alignTo(uint64(count)*uint64(in.Elem.Size()), heapAlign)
		if t.sp < t.stackBase+size {
			return &Fault{Addr: t.sp - size, Size: size, Perm: guard.PermRW, Msg: "stack overflow"}
		}
		t.sp -= size
		if t.sp < t.minSP {
			t.minSP = t.sp
		}
		set(t.sp)
		return nil

	case in.Op == ir.OpLoad:
		n := int(in.Elem.Size())
		paddr, err := v.dataAddr(fr, in, 0, uint64(n), guard.PermRead)
		if err != nil {
			return err
		}
		raw := v.kern.Mem.LoadN(paddr, loadWidth(n))
		if in.Elem.IsInt() {
			raw = uint64(signExtend(raw, in.Elem.Bits))
		}
		set(raw)
		return nil

	case in.Op == ir.OpStore:
		val := v.val(fr, in.Args[0])
		n := int(in.Args[0].Type().Size())
		paddr, err := v.dataAddr(fr, in, 1, uint64(n), guard.PermWrite)
		if err != nil {
			return err
		}
		v.kern.Mem.StoreN(paddr, val, loadWidth(n))
		return nil

	case in.Op == ir.OpGEP:
		set(v.gepAddr(fr, in))
		return nil

	case in.Op == ir.OpSelect:
		if v.val(fr, in.Args[0])&1 != 0 {
			set(v.val(fr, in.Args[1]))
		} else {
			set(v.val(fr, in.Args[2]))
		}
		return nil

	case in.Op == ir.OpGuard:
		return v.execGuard(t, fr, in)

	case in.Op == ir.OpCall:
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = v.val(fr, a)
		}
		ret, err := v.call(t, in.Callee, args)
		if err != nil {
			return err
		}
		set(ret)
		return nil
	}
	return fmt.Errorf("vm: unimplemented op %v", in.Op)
}

// gepAddr computes a GEP's address with the same stepping rules the
// analysis package uses (first index scales by Elem; later indices walk
// into aggregates).
func (v *VM) gepAddr(fr *frame, in *ir.Instr) uint64 {
	addr := v.val(fr, in.Args[0])
	typ := in.Elem
	for i, idxV := range in.Args[1:] {
		idx := int64(v.val(fr, idxV))
		if i == 0 {
			addr += uint64(idx * typ.Size())
			continue
		}
		switch typ.Kind {
		case ir.ArrayKind:
			typ = typ.Elem
			addr += uint64(idx * typ.Size())
		case ir.StructKind:
			addr += uint64(typ.FieldOffset(int(idx)))
			typ = typ.Fields[idx]
		default:
			addr += uint64(idx * typ.Size())
		}
	}
	return addr
}

// execGuard evaluates a CARAT guard against the kernel region set.
func (v *VM) execGuard(t *thread, fr *frame, in *ir.Instr) error {
	var addr, size uint64
	var perm guard.Perm
	switch in.Kind {
	case ir.GuardLoad, ir.GuardRange:
		addr, size, perm = v.val(fr, in.Args[0]), v.val(fr, in.Args[1]), guard.PermRead
	case ir.GuardStore, ir.GuardRangeStore:
		addr, size, perm = v.val(fr, in.Args[0]), v.val(fr, in.Args[1]), guard.PermWrite
	case ir.GuardCall:
		foot := v.val(fr, in.Args[1])
		if foot == 0 {
			foot = passes.DefaultStackFootprint
		}
		addr, size, perm = t.sp-foot, foot, guard.PermRW
	}
	if int64(size) <= 0 {
		return nil // zero-trip range guard: nothing will be accessed
	}
	if v.checkGuard(t, addr, size, perm) {
		return nil
	}
	return v.guardMiss(fr, in, addr, size, perm, func() uint64 { return v.val(fr, in.Args[0]) })
}

// checkGuard evaluates one guard through the thread's translation cache
// when enabled, or the full evaluator walk otherwise. CheckCached replays
// the recorded walk cost on a hit, so modeled cycles are byte-identical
// either way.
func (v *VM) checkGuard(t *thread, addr, size uint64, perm guard.Perm) bool {
	if t.xc != nil {
		return v.eval.CheckCached(t.xc, addr, size, perm)
	}
	return v.eval.Check(addr, size, perm)
}

// guardMiss is the shared cold path for a failed guard check (both
// engines). A failed guard aborts to the kernel (§4.1.1). A swapped-pointer
// poison address triggers the swap-in path: the kernel restores the
// allocation, the runtime patches every poisoned pointer forward
// (including the frame slot the guard read its address from), and the
// guard retries. reval re-reads the guard's address operand post-patch.
func (v *VM) guardMiss(fr *frame, in *ir.Instr, addr, size uint64, perm guard.Perm, reval func() uint64) error {
	v.tr.Instant("guard.fault", "guard",
		obs.A("addr", addr), obs.A("size", size), obs.A("perm", perm.String()))
	if slot, _, ok := runtime.DecodeSwapPoison(addr); ok {
		if err := v.swapIn(slot); err != nil {
			return &Fault{Addr: addr, Size: size, Perm: perm, Msg: "swap-in failed: " + err.Error()}
		}
		retryAddr := reval()
		if v.eval.Check(retryAddr, size, perm) {
			return nil
		}
		return &Fault{Addr: retryAddr, Size: size, Perm: perm, Msg: "guard rejected access after swap-in"}
	}
	msg := "guard rejected access"
	if kernel.IsPoison(addr) {
		msg = "access to unavailable (poisoned) page"
	}
	if in.Kind == ir.GuardCall {
		msg = "stack footprint check failed"
	}
	if debugFaults {
		fmt.Printf("FAULT guard %s in @%s/^%s addr=%#x arg=%s\n", in, fr.fn.Name, in.Block.Name, addr, in.Args[0].Ref())
	}
	return &Fault{Addr: addr, Size: size, Perm: perm, Msg: msg}
}

// debugFaults enables fault-site dumps during development.
var debugFaults = false

// swapIn services a swapped-pointer guard fault: allocate a destination in
// the heap and have the runtime restore and re-patch (§2.2's demand
// swap-in, with the kernel's role played by the heap grant).
func (v *VM) swapIn(slot uint64) error {
	length, err := v.rt.SwappedLen(slot)
	if err != nil {
		return err
	}
	dst := v.heap.alloc(length)
	if dst == 0 {
		return fmt.Errorf("heap exhausted during swap-in")
	}
	return v.rt.SwapIn(slot, dst)
}

// dataAddr resolves the address operand of a load or store. When the
// access traps on a swapped-pointer poison address — the hardware fault
// that is the paper's mechanism for regaining control on unavailable
// memory (§2.2) — the kernel swaps the allocation back in, the runtime
// patches every poisoned pointer (including the frame slot the operand
// lives in), and the access retries once.
func (v *VM) dataAddr(fr *frame, in *ir.Instr, argIdx int, size uint64, perm guard.Perm) (uint64, error) {
	addr := v.val(fr, in.Args[argIdx])
	paddr, err := v.translate(addr, size, perm)
	if err == nil {
		return paddr, nil
	}
	if slot, _, ok := runtime.DecodeSwapPoison(addr); ok {
		if serr := v.swapIn(slot); serr != nil {
			return 0, &Fault{Addr: addr, Size: size, Perm: perm, Msg: "swap-in failed: " + serr.Error()}
		}
		addr = v.val(fr, in.Args[argIdx])
		return v.translate(addr, size, perm)
	}
	return 0, err
}

// translate maps a program address to a physical address, charging
// translation costs. In CARAT mode this is the identity (physical
// addressing); the bounds check stands in for the bus fault real hardware
// would raise. In traditional mode it walks the TLB hierarchy with
// demand paging.
func (v *VM) translate(addr, size uint64, perm guard.Perm) (uint64, error) {
	if v.cfg.Mode == ModeCARAT {
		// The epoch-barrier read path of the incremental move protocol: while
		// a forwarding window is open, an access racing the half-patched
		// state is redirected to wherever the data currently lives (already-
		// patched pointers name the destination before the copy; stale ones
		// name the source after it). Under the baton discipline mutators
		// never actually run mid-move, so this never fires live here — it
		// exists so the access path is correct under a preemptive world, and
		// its unit tests drive it directly. Identity when no window is open.
		if rs := v.proc.Regions; rs.ForwardActive() {
			addr = rs.Forward(addr)
		}
		if !v.kern.Mem.InBounds(addr, size) {
			return 0, &Fault{Addr: addr, Size: size, Perm: perm, Msg: "physical access out of bounds"}
		}
		return addr, nil
	}
	pa, cyc, ok := v.hier.Translate(addr)
	v.Cycles += cyc
	v.Prof.Cat[obs.CatPagewalk] += cyc
	if !ok {
		// Demand paging: a fault on a region the process owns maps the
		// page (identity) and retries; anything else is a real fault.
		if v.proc.Regions.Check(addr, 1, guard.PermRead) {
			if v.cfg.Paging != nil {
				v.cfg.Paging.Touch(addr)
			}
			v.hier.PT.Map(addr>>12, addr>>12)
			v.Cycles += 600 // page-fault handling cost
			v.Prof.Cat[obs.CatPageFault] += 600
			v.tr.Instant("page.demand_alloc", "paging", obs.A("addr", addr))
			pa2, cyc2, ok2 := v.hier.Translate(addr)
			v.Cycles += cyc2
			v.Prof.Cat[obs.CatPagewalk] += cyc2
			if ok2 {
				return pa2, nil
			}
		}
		return 0, &Fault{Addr: addr, Size: size, Perm: perm, Msg: "page fault"}
	}
	return pa, nil
}

// callBuiltin dispatches declared (external) functions to the VM runtime.
func (v *VM) callBuiltin(t *thread, f *ir.Func, args []uint64) (uint64, error) {
	switch f.Name {
	case ir.FnMalloc:
		addr := v.heap.alloc(args[0])
		if addr == 0 {
			return 0, fmt.Errorf("vm: out of heap memory (malloc %d)", args[0])
		}
		v.Cycles += 30
		v.Prof.Cat[obs.CatAlloc] += 30
		v.allocHist.Observe(args[0])
		return addr, nil
	case ir.FnCalloc:
		n := args[0] * args[1]
		addr := v.heap.alloc(n)
		if addr == 0 {
			return 0, fmt.Errorf("vm: out of heap memory (calloc %d)", n)
		}
		if err := v.kern.Mem.Zero(addr, n); err != nil {
			return 0, err
		}
		v.Cycles += 30 + n/16
		v.Prof.Cat[obs.CatAlloc] += 30 + n/16
		v.allocHist.Observe(n)
		return addr, nil
	case ir.FnFree:
		if args[0] == 0 {
			return 0, nil // free(NULL)
		}
		if err := v.heap.free(args[0]); err != nil {
			return 0, err
		}
		v.Cycles += 25
		v.Prof.Cat[obs.CatAlloc] += 25
		return 0, nil
	case ir.FnTrackAlloc:
		if err := v.rt.TrackAlloc(args[0], args[1]); err != nil {
			return 0, fmt.Errorf("vm: %w", err)
		}
		return 0, nil
	case ir.FnTrackFree:
		if err := v.rt.TrackFree(args[0]); err != nil {
			return 0, fmt.Errorf("vm: %w", err)
		}
		return 0, nil
	case ir.FnTrackEscape:
		// Per-thread escape batch: enqueue locally, flush at yields and
		// thread completion (plus the size-triggered self-flush).
		t.escBuf.Track(args[0], args[1])
		return 0, nil
	case ir.FnPrintI64:
		v.Output = append(v.Output, int64(args[0]))
		return 0, nil
	case ir.FnPrintF64:
		v.Output = append(v.Output, int64(math.Float64frombits(args[0])*1e6))
		return 0, nil
	case ir.FnThreadSpawn:
		id, err := v.sched.spawn(args[0], args[1])
		return uint64(id), err
	case ir.FnThreadJoin:
		v.sched.join(t, int64(args[0]))
		return 0, nil
	}
	return 0, fmt.Errorf("vm: call to undefined external @%s", f.Name)
}

// --- scalar helpers ---

func loadWidth(n int) int {
	switch n {
	case 1, 2, 4, 8:
		return n
	}
	panic(fmt.Sprintf("vm: unsupported access width %d", n))
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func maskToWidth(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

func signExtend(v uint64, bits int) int64 {
	if bits >= 64 || bits == 0 {
		return int64(v)
	}
	shift := uint(64 - bits)
	return int64(v<<shift) >> shift
}

func maskSigned(v int64, bits int) uint64 {
	return uint64(signExtend(uint64(v), bits))
}

func intBinop(op ir.Op, a, b uint64, bits int) (uint64, error) {
	sa, sb := signExtend(a, bits), signExtend(b, bits)
	var r int64
	switch op {
	case ir.OpAdd:
		r = sa + sb
	case ir.OpSub:
		r = sa - sb
	case ir.OpMul:
		r = sa * sb
	case ir.OpSDiv:
		if sb == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		r = sa / sb
	case ir.OpSRem:
		if sb == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		r = sa % sb
	case ir.OpUDiv:
		if sb == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		r = int64(maskToWidth(a, bits) / maskToWidth(b, bits))
	case ir.OpURem:
		if sb == 0 {
			return 0, fmt.Errorf("remainder by zero")
		}
		r = int64(maskToWidth(a, bits) % maskToWidth(b, bits))
	case ir.OpAnd:
		r = sa & sb
	case ir.OpOr:
		r = sa | sb
	case ir.OpXor:
		r = sa ^ sb
	case ir.OpShl:
		r = sa << (uint64(sb) & 63)
	case ir.OpLShr:
		r = int64(maskToWidth(a, bits) >> (uint64(sb) & 63))
	case ir.OpAShr:
		r = sa >> (uint64(sb) & 63)
	default:
		return 0, fmt.Errorf("bad binop %v", op)
	}
	return maskSigned(r, bits), nil
}

func icmp(p ir.Pred, a, b uint64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return int64(a) < int64(b)
	case ir.PredLE:
		return int64(a) <= int64(b)
	case ir.PredGT:
		return int64(a) > int64(b)
	case ir.PredGE:
		return int64(a) >= int64(b)
	case ir.PredULT:
		return a < b
	case ir.PredULE:
		return a <= b
	case ir.PredUGT:
		return a > b
	case ir.PredUGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT, ir.PredULT:
		return a < b
	case ir.PredLE, ir.PredULE:
		return a <= b
	case ir.PredGT, ir.PredUGT:
		return a > b
	case ir.PredGE, ir.PredUGE:
		return a >= b
	}
	return false
}

// DebugFaults toggles fault-site dumps (development aid).
func DebugFaults(on bool) { debugFaults = on }
