package vm

import (
	"strings"
	"testing"

	"carat/internal/obs"
	"carat/internal/passes"
)

// samplerSrc churns the heap inside a guarded loop so every profiled
// phase — exec, guard, escape-flush — accumulates enough cycles to clear
// several sampling intervals.
const samplerSrc = `module "samprec"
global @slot : ptr
global @a : [256 x i64]
func @malloc(%sz: i64) -> ptr
func @free(%p: ptr) -> void
func @main() -> i64 {
entry:
  br ^loop
loop:
  %i = phi i64 [0, ^entry], [%i1, ^latch]
  %acc = phi i64 [0, ^entry], [%acc2, ^latch]
  %p = call ptr @malloc(i64 128)
  store ptr %p, @slot
  %q = gep i64, %p, 2
  store i64 %i, %q
  %x = load i64, %q
  %m = and i64 %i, 255
  %pa = gep i64, @a, %m
  store i64 %x, %pa
  %y = load i64, %pa
  %acc2 = add i64 %acc, %y
  call void @free(ptr %p)
  br ^latch
latch:
  %i1 = add i64 %i, 1
  %c = icmp slt i64 %i1, 200
  condbr %c, ^loop, ^done
done:
  ret i64 %acc2
}`

// TestSamplerReconcilesWithCycleCounters runs a real program with the
// profiler attached and checks the acceptance invariant: per-phase sample
// totals times the interval reconcile with the underlying cycle-attribution
// counters to within one sampling interval per track.
func TestSamplerReconcilesWithCycleCounters(t *testing.T) {
	const interval = 64
	m := compile(t, samplerSrc, passes.LevelTracking)
	cfg := DefaultConfig()
	cfg.MemBytes = 1 << 24
	cfg.HeapBytes = 1 << 20
	s := obs.NewSampler(interval)
	cfg.Sampler = s
	v, _ := run(t, m, cfg)

	// Reconstruct the pre-fold execution clock: Run folds tracking, guard,
	// and protocol cycles into v.Cycles after the final exec sample.
	tracking := v.rt.Stats.TrackingCycle.Get() - v.trackStart
	var protocol uint64
	for _, bd := range v.rt.MoveStats {
		protocol += bd.TotalCycles()
	}
	execPre := v.Cycles - tracking - v.eval.Cycles - protocol

	ps := s.PhaseSamples()
	checks := []struct {
		phase  string
		cycles uint64
	}{
		{"exec", execPre},
		{"guard", v.eval.Cycles},
		{"escape-flush", tracking},
	}
	for _, c := range checks {
		folded := ps[c.phase] * interval
		if folded > c.cycles || c.cycles-folded >= interval {
			t.Errorf("phase %s: %d samples * %d = %d cycles vs counter %d: off by >= one interval",
				c.phase, ps[c.phase], interval, folded, c.cycles)
		}
	}
	if ps["exec"] == 0 || ps["guard"] == 0 || ps["escape-flush"] == 0 {
		t.Errorf("phase samples missing: %v", ps)
	}

	// Exec samples carry the guest stack, rooted at the entry function.
	doc := s.Snapshot()
	foundMain := false
	for _, fs := range doc.Stacks {
		if fs.Phase == "exec" && strings.HasPrefix(fs.Stack, "main") {
			foundMain = true
		}
	}
	if !foundMain {
		t.Errorf("no exec sample attributed to main: %+v", doc.Stacks)
	}
}

// TestSamplerDoesNotPerturbModeledResults is the sampler's core contract:
// attaching the profiler (at any interval) must leave modeled instructions,
// cycles, and the program result byte-identical.
func TestSamplerDoesNotPerturbModeledResults(t *testing.T) {
	runOnce := func(sampler *obs.Sampler, closure bool) (*VM, int64) {
		m := compile(t, sumSrc, passes.LevelTracking)
		cfg := DefaultConfig()
		cfg.MemBytes = 1 << 24
		cfg.HeapBytes = 1 << 20
		cfg.Sampler = sampler
		cfg.Closure = closure
		return run(t, m, cfg)
	}
	for _, closure := range []bool{false, true} {
		base, baseRet := runOnce(nil, closure)
		for _, interval := range []uint64{1, 64, 4096} {
			v, ret := runOnce(obs.NewSampler(interval), closure)
			if ret != baseRet || v.Instrs != base.Instrs || v.Cycles != base.Cycles {
				t.Errorf("interval %d (closure=%v) perturbed the model: ret %d/%d, instrs %d/%d, cycles %d/%d",
					interval, closure, ret, baseRet, v.Instrs, base.Instrs, v.Cycles, base.Cycles)
			}
		}
	}
}
