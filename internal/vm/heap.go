package vm

import "fmt"

// heap is the process's dynamic memory allocator: a bump allocator with
// size-class free lists over the kernel-granted heap region. Its metadata
// is address-based and therefore move-aware: rebase is called by the VM's
// move listener whenever the kernel relocates pages.
type heap struct {
	base, end, brk uint64
	// freeLists maps a size class to reusable block addresses.
	freeLists map[uint64][]uint64
	// sizeOf remembers each live block's allocation size for free().
	sizeOf map[uint64]uint64
}

const heapAlign = 16

func newHeap(base, size uint64) heap {
	return heap{
		base: base, end: base + size, brk: base,
		freeLists: make(map[uint64][]uint64),
		sizeOf:    make(map[uint64]uint64),
	}
}

func sizeClass(n uint64) uint64 {
	if n < heapAlign {
		n = heapAlign
	}
	return (n + heapAlign - 1) &^ (heapAlign - 1)
}

// alloc returns the address of a block of at least n bytes, or 0 when the
// heap is exhausted.
func (h *heap) alloc(n uint64) uint64 {
	cls := sizeClass(n)
	if lst := h.freeLists[cls]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		h.freeLists[cls] = lst[:len(lst)-1]
		h.sizeOf[addr] = cls
		return addr
	}
	if h.brk+cls > h.end {
		return 0
	}
	addr := h.brk
	h.brk += cls
	h.sizeOf[addr] = cls
	return addr
}

// free returns a block to its size-class list.
func (h *heap) free(addr uint64) error {
	cls, ok := h.sizeOf[addr]
	if !ok {
		return fmt.Errorf("vm: free of unallocated address %#x", addr)
	}
	delete(h.sizeOf, addr)
	h.freeLists[cls] = append(h.freeLists[cls], addr)
	return nil
}

// donate registers a raw address range as a reusable block of class cls —
// used when the allocation-granularity move engine vacates a heap block.
func (h *heap) donate(addr, cls uint64) {
	h.freeLists[cls] = append(h.freeLists[cls], addr)
}

// live reports whether addr is the base of a live block.
func (h *heap) live(addr uint64) bool {
	_, ok := h.sizeOf[addr]
	return ok
}

// rebase rewrites all heap metadata addresses within the moved range
// [src, src+length) to their new location at dst.
func (h *heap) rebase(src, dst, length uint64) {
	reb := func(a uint64) uint64 {
		if a >= src && a < src+length {
			return a - src + dst
		}
		return a
	}
	// The region boundaries only shift when the whole heap area moved;
	// handle the common case of interior page moves by leaving base/end
	// alone unless they fall inside the range.
	h.base = reb(h.base)
	h.end = reb(h.end)
	// The bump pointer must NOT follow the moved data: the vacated range
	// is no longer mapped, and the destination range is exactly sized for
	// the data it received. Skip the hole and keep bumping above it.
	if h.brk >= src && h.brk < src+length {
		h.brk = src + length
	}
	for cls, lst := range h.freeLists {
		for i, a := range lst {
			lst[i] = reb(a)
		}
		h.freeLists[cls] = lst
	}
	moved := make(map[uint64]uint64)
	for a, sz := range h.sizeOf {
		if na := reb(a); na != a {
			moved[a] = na
			_ = sz
		}
	}
	for a, na := range moved {
		h.sizeOf[na] = h.sizeOf[a]
		delete(h.sizeOf, a)
	}
}
